// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), plus microbenchmarks of each controller stage and of the §6.5
// overhead claims. Figure benches report the experiment's headline numbers
// as custom metrics (gain_pct, fairness) so `go test -bench` output doubles
// as a results table; EXPERIMENTS.md records a paper-vs-measured index.
//
// Experiment benches use 2 repeats per pair to keep one benchmark
// iteration to seconds; run `cmd/dps-sim -exp all -repeats 10` for
// paper-scale statistics.
package dps_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"dps"
	"dps/internal/core"
	"dps/internal/exp"
	"dps/internal/hier"
	"dps/internal/history"
	"dps/internal/kalman"
	"dps/internal/power"
	"dps/internal/priority"
	"dps/internal/proto"
	"dps/internal/signal"
	"dps/internal/stateless"
	"dps/internal/trace"
	"dps/internal/workload"
)

func benchOpts() exp.Options { return exp.Options{Repeats: 2, Seed: 11} }

// BenchmarkFigure1Motivation replays the two-unit motivational scenario
// under all four policies (E1).
func BenchmarkFigure1Motivation(b *testing.B) {
	var imbalance power.Watts
	for i := 0; i < b.N; i++ {
		mot, err := exp.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		imbalance = mot.FinalImbalance("SLURM") - mot.FinalImbalance("DPS")
	}
	b.ReportMetric(float64(imbalance), "slurm_minus_dps_imbalance_w")
}

// BenchmarkFigure2Traces generates the three power-phase traces (E2).
func BenchmarkFigure2Traces(b *testing.B) {
	var samples int
	for i := 0; i < b.N; i++ {
		traces, err := exp.Figure2(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		samples = 0
		for _, tr := range traces {
			samples += len(tr.Power)
		}
	}
	b.ReportMetric(float64(samples), "trace_samples")
}

// BenchmarkTable2SparkBaseline measures all Spark workloads under constant
// allocation (E3).
func BenchmarkTable2SparkBaseline(b *testing.B) {
	opts := exp.Options{Repeats: 1, Seed: 11}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range res.Rows {
			rel := row.Values["duration_s"]/row.Values["paper_s"] - 1
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst*100, "worst_duration_error_pct")
}

// BenchmarkTable4NPBBaseline measures all NPB workloads under constant
// allocation (E4).
func BenchmarkTable4NPBBaseline(b *testing.B) {
	opts := exp.Options{Repeats: 1, Seed: 11}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Table4(opts)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range res.Rows {
			rel := row.Values["duration_s"]/row.Values["paper_s"] - 1
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	b.ReportMetric(worst*100, "worst_duration_error_pct")
}

// BenchmarkFigure4LowUtility runs the 28-pair low-utility experiment (E5).
func BenchmarkFigure4LowUtility(b *testing.B) {
	var dpsMean float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range res.Rows {
			sum += row.Values["DPS"]
		}
		dpsMean = sum / float64(len(res.Rows))
	}
	b.ReportMetric((dpsMean-1)*100, "dps_gain_pct")
}

// BenchmarkFigure5HighUtility runs the GMM-paired high-utility experiment
// (E6).
func BenchmarkFigure5HighUtility(b *testing.B) {
	var dpsOverSlurm float64
	for i := 0; i < b.N; i++ {
		_, fb, err := exp.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range fb.Rows {
			sum += row.Values["DPS"]/row.Values["SLURM"] - 1
		}
		dpsOverSlurm = sum / float64(len(fb.Rows))
	}
	b.ReportMetric(dpsOverSlurm*100, "dps_over_slurm_pct")
}

// BenchmarkFigure6SparkNPB runs the 56-pair Spark × NPB experiment (E7).
func BenchmarkFigure6SparkNPB(b *testing.B) {
	var dpsMean float64
	for i := 0; i < b.N; i++ {
		fa, _, err := exp.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range fa.Rows {
			sum += row.Values["DPS"]
		}
		dpsMean = sum / float64(len(fa.Rows))
	}
	b.ReportMetric((dpsMean-1)*100, "dps_gain_pct")
}

// BenchmarkFigure7Fairness runs the fairness analysis (E8).
func BenchmarkFigure7Fairness(b *testing.B) {
	var dpsFair, slurmFair float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Name {
			case "high-utility/DPS":
				dpsFair = row.Values["mean"]
			case "high-utility/SLURM":
				slurmFair = row.Values["mean"]
			}
		}
	}
	b.ReportMetric(dpsFair, "dps_fairness")
	b.ReportMetric(slurmFair, "slurm_fairness")
}

// BenchmarkSweepPowerLimits runs the multi-budget sweep (the evaluation
// the paper leaves as future work; E11 in DESIGN.md).
func BenchmarkSweepPowerLimits(b *testing.B) {
	var tightMargin float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Sweep(benchOpts(), []float64{0.5, 0.667, 0.85})
		if err != nil {
			b.Fatal(err)
		}
		tightMargin = res.Rows[0].Values["dps_over_slurm"]
	}
	b.ReportMetric(tightMargin*100, "dps_over_slurm_at_50pct_tdp")
}

// BenchmarkDRAMStudy runs the package/DRAM plane-splitting study (E15).
func BenchmarkDRAMStudy(b *testing.B) {
	var memGain float64
	for i := 0; i < b.N; i++ {
		res, err := exp.DRAMStudy(exp.Options{Repeats: 1, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "memory" {
				memGain = row.Values["Static(85/15)"]/row.Values["Dynamic"] - 1
			}
		}
	}
	b.ReportMetric(memGain*100, "dynamic_gain_on_memory_pct")
}

// BenchmarkBaselinesExperiment runs the widened manager lineup (E14).
func BenchmarkBaselinesExperiment(b *testing.B) {
	var fbVsSlurm float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Baselines(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "MEAN" {
				fbVsSlurm = row.Values["Feedback"]/row.Values["SLURM"] - 1
			}
		}
	}
	b.ReportMetric(fbVsSlurm*100, "feedback_over_slurm_pct")
}

// BenchmarkThroughputExperiment runs the job-stream study (E13).
func BenchmarkThroughputExperiment(b *testing.B) {
	var dpsVsConst float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Throughput(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var dpsT, constT float64
		for _, row := range res.Rows {
			switch row.Name {
			case "DPS":
				dpsT = row.Values["turnaround_s"]
			case "Constant":
				constT = row.Values["turnaround_s"]
			}
		}
		if dpsT > 0 {
			dpsVsConst = constT/dpsT - 1
		}
	}
	b.ReportMetric(dpsVsConst*100, "dps_turnaround_gain_pct")
}

// --- §6.5 overhead: the controller decision loop at scale (E9) ---

func benchControllerLoop(b *testing.B, units int) {
	budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
	cfg := core.DefaultConfig(units, budget)
	d, err := core.NewDPS(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	readings := make(power.Vector, units)
	for i := range readings {
		readings[i] = power.Watts(40 + rng.Float64()*120)
	}
	snap := core.Snapshot{Power: readings, Interval: 1}
	for i := 0; i < 25; i++ { // fill the history
		d.Decide(snap)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readings[i%units] += power.Watts(rng.NormFloat64() * 2)
		d.Decide(snap)
	}
}

func BenchmarkControllerLoop20(b *testing.B)    { benchControllerLoop(b, 20) }
func BenchmarkControllerLoop200(b *testing.B)   { benchControllerLoop(b, 200) }
func BenchmarkControllerLoop2000(b *testing.B)  { benchControllerLoop(b, 2000) }
func BenchmarkControllerLoop20000(b *testing.B) { benchControllerLoop(b, 20000) }

// BenchmarkDecideScaling compares the sequential decision pipeline
// against the sharded one at cluster scale. Sub-benchmark names are
// stable (N=<units>/shards=<p>) so CI can select one size:
//
//	go test -bench 'DecideScaling/N=4096' -benchtime 1x .
//
// Each row reports allocations (steady state must be 0 on the sequential
// path — the regression test in internal/core pins it) and a priority_ns
// metric so the per-PR trajectory of the dominant per-unit stage is
// visible; scripts/bench_decide.sh turns this output into
// BENCH_decide.json. On a multi-core host the shards=max rows should
// show the per-unit stages scaling with core count; on one core the
// sharded path measures pure coordination overhead.
func BenchmarkDecideScaling(b *testing.B) {
	for _, units := range []int{1024, 4096, 16384, 65536, 262144} {
		budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
		shardCounts := []int{1}
		if p := runtime.GOMAXPROCS(0); p > 1 {
			shardCounts = append(shardCounts, p)
		} else {
			// One core: a parallel row would only measure coordination
			// overhead against itself, but keep a 4-shard row so the
			// pool machinery stays on the benched path everywhere.
			shardCounts = append(shardCounts, 4)
		}
		for _, shards := range shardCounts {
			b.Run(fmt.Sprintf("N=%d/shards=%d", units, shards), func(b *testing.B) {
				cfg := core.DefaultConfig(units, budget)
				cfg.Shards = shards
				d, err := core.NewDPS(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				rng := rand.New(rand.NewSource(1))
				readings := make(power.Vector, units)
				for i := range readings {
					readings[i] = power.Watts(40 + rng.Float64()*120)
				}
				snap := core.Snapshot{Power: readings, Interval: 1}
				for i := 0; i < 25; i++ { // fill the history
					d.Decide(snap)
				}
				var priorityNS, kalmanNS time.Duration
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					readings[i%units] += power.Watts(rng.NormFloat64() * 2)
					_, st := d.DecideStats(snap)
					priorityNS += st.Timings.Priority
					kalmanNS += st.Timings.Kalman
				}
				b.ReportMetric(float64(priorityNS.Nanoseconds())/float64(b.N), "priority_ns")
				b.ReportMetric(float64(kalmanNS.Nanoseconds())/float64(b.N), "kalman_ns")
			})
		}
	}

	// Sparse rows: the deployed configuration (sparse rounds on, dirty
	// masks from ingest) at three dirty fractions. dirty=100 is the
	// worst case — every unit changes every round, so the sparse
	// machinery runs with nothing to skip; dirty=5 is the overprovisioned
	// steady state the design targets, where 95% of units report no
	// change and the round touches only the dirty set, the refresh block
	// and the global stages.
	for _, units := range []int{16384, 65536, 262144} {
		budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
		for _, pct := range []int{100, 50, 5} {
			b.Run(fmt.Sprintf("N=%d/shards=1/dirty=%d", units, pct), func(b *testing.B) {
				cfg := core.DefaultConfig(units, budget)
				cfg.SparseRounds = true
				d, err := core.NewDPS(cfg)
				if err != nil {
					b.Fatal(err)
				}
				defer d.Close()
				readings := make(power.Vector, units)
				for u := range readings {
					readings[u] = power.Watts(40 + u%40)
				}
				// The dirty set: contiguous 64-unit blocks spread evenly
				// across the range, the shape delta-suppressing agents
				// produce (whole busy nodes among quiet ones).
				nDirty := units * pct / 100
				dirty := make([]int, 0, nDirty)
				mask := core.NewDirtyMask(units)
				if pct == 100 {
					for u := 0; u < units; u++ {
						dirty = append(dirty, u)
					}
				} else {
					blocks := nDirty / 64
					stride := units / blocks
					for blk := 0; blk < blocks; blk++ {
						for j := 0; j < 64; j++ {
							dirty = append(dirty, blk*stride+j)
						}
					}
				}
				// Dirty units warm up at their oscillation mean so their
				// caps converge into the MIMD dead band before the timer
				// starts — the steady state the rounds then measure is
				// pipeline work, not cap churn.
				for _, u := range dirty {
					readings[u] = 94
				}
				// First round: everything is new (the handshake burst)...
				first := core.NewDirtyMask(units)
				first.SetAll()
				d.Decide(core.Snapshot{Power: readings, Interval: 1, Dirty: first})
				// ...then quiet rounds until the clean majority settles
				// (rings uniform, Kalman filters at their fixed points).
				empty := core.NewDirtyMask(units)
				for i := 0; i < 200; i++ {
					d.Decide(core.Snapshot{Power: readings, Interval: 1, Dirty: empty})
				}
				for _, u := range dirty {
					mask.Mark(u)
				}
				snap := core.Snapshot{Power: readings, Interval: 1, Dirty: mask}
				var skipped, dirtyCount uint64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// In-band oscillation: every dirty unit's reading moves
					// every round, comfortably under its cap, so the rounds
					// measure per-unit pipeline work rather than budget
					// churn.
					for _, u := range dirty {
						readings[u] = power.Watts(92 + (u*7+i*13)%5)
					}
					_, st := d.DecideStats(snap)
					skipped += uint64(st.SkippedUnits)
					dirtyCount += uint64(st.DirtyUnits)
				}
				b.ReportMetric(float64(skipped)/float64(b.N), "skipped_units")
				b.ReportMetric(float64(dirtyCount)/float64(b.N), "dirty_units")
			})
		}
	}
}

// BenchmarkDecideTraceOverhead measures what span recording costs the
// decision loop: the same steady-state workload with the recorder off
// (the production default; must stay allocation-free — the regression
// test in internal/core pins 0 allocs/op) and with it on. The off/on
// delta is the §6.5-style overhead number scripts/bench_decide.sh
// reports as its tracing column.
func BenchmarkDecideTraceOverhead(b *testing.B) {
	const units = 4096
	for _, on := range []bool{false, true} {
		name := "tracer=off"
		if on {
			name = "tracer=on"
		}
		b.Run(name, func(b *testing.B) {
			budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
			d, err := core.NewDPS(core.DefaultConfig(units, budget))
			if err != nil {
				b.Fatal(err)
			}
			rec := trace.NewRecorder(trace.DefaultSpanCapacity)
			rec.SetEnabled(on)
			d.SetTracer(rec)
			rng := rand.New(rand.NewSource(1))
			readings := make(power.Vector, units)
			for i := range readings {
				readings[i] = power.Watts(40 + rng.Float64()*120)
			}
			snap := core.Snapshot{Power: readings, Interval: 1}
			for i := 0; i < 25; i++ { // fill the history
				d.Decide(snap)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				readings[i%units] += power.Watts(rng.NormFloat64() * 2)
				d.Decide(snap)
			}
		})
	}
}

// benchControllerStages reports where a decision step's time goes, using
// the controller's own per-stage instrumentation: kalman_ns, stateless_ns,
// priority_ns, readjust_ns custom metrics alongside ns/op.
func benchControllerStages(b *testing.B, units int) {
	budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
	d, err := core.NewDPS(core.DefaultConfig(units, budget))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	readings := make(power.Vector, units)
	for i := range readings {
		readings[i] = power.Watts(40 + rng.Float64()*120)
	}
	snap := core.Snapshot{Power: readings, Interval: 1}
	for i := 0; i < 25; i++ {
		d.Decide(snap)
	}
	var stages core.StageTimings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readings[i%units] += power.Watts(rng.NormFloat64() * 2)
		_, st := d.DecideStats(snap)
		stages.Kalman += st.Timings.Kalman
		stages.Stateless += st.Timings.Stateless
		stages.Priority += st.Timings.Priority
		stages.Readjust += st.Timings.Readjust
	}
	n := float64(b.N)
	b.ReportMetric(float64(stages.Kalman.Nanoseconds())/n, "kalman_ns")
	b.ReportMetric(float64(stages.Stateless.Nanoseconds())/n, "stateless_ns")
	b.ReportMetric(float64(stages.Priority.Nanoseconds())/n, "priority_ns")
	b.ReportMetric(float64(stages.Readjust.Nanoseconds())/n, "readjust_ns")
}

func BenchmarkControllerStages20(b *testing.B)   { benchControllerStages(b, 20) }
func BenchmarkControllerStages2000(b *testing.B) { benchControllerStages(b, 2000) }

// benchHierLoop measures the two-level controller at scale; compare with
// the flat controller at the same unit count.
func benchHierLoop(b *testing.B, groups, unitsPerGroup int) {
	units := groups * unitsPerGroup
	budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
	cfg := hier.DefaultConfig(groups, unitsPerGroup, budget)
	m, err := hier.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	readings := make(power.Vector, units)
	for i := range readings {
		readings[i] = power.Watts(40 + rng.Float64()*120)
	}
	snap := core.Snapshot{Power: readings, Interval: 1}
	for i := 0; i < 25; i++ {
		m.Decide(snap)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		readings[i%units] += power.Watts(rng.NormFloat64() * 2)
		m.Decide(snap)
	}
}

func BenchmarkHierLoop20x1000(b *testing.B) { benchHierLoop(b, 20, 1000) }
func BenchmarkHierLoop100x200(b *testing.B) { benchHierLoop(b, 100, 200) }

// BenchmarkHierarchyExperiment runs the two-level-vs-flat study (DESIGN.md
// E12).
func BenchmarkHierarchyExperiment(b *testing.B) {
	var kept float64
	for i := 0; i < b.N; i++ {
		res, err := exp.Hierarchy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "MEAN" {
				flat, hr := row.Values["DPS"]-1, row.Values["HierDPS"]-1
				if flat > 0 {
					kept = hr / flat
				}
			}
		}
	}
	b.ReportMetric(kept*100, "gain_retention_pct")
}

// BenchmarkProtoRoundTrip measures one node's wire work per decision round
// (report batch out, cap batch in — 2 sockets, the paper's 3-byte records).
func BenchmarkProtoRoundTrip(b *testing.B) {
	vals := []power.Watts{110.5, 87.3}
	buf := make([]byte, 2*proto.RecordSize)
	dst := make([]power.Watts, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u, v := range vals {
			proto.PutRecord(buf[u*proto.RecordSize:], proto.Record{LocalUnit: uint8(u), Value: proto.ToDeciwatts(v)})
		}
		for u := range dst {
			rec := proto.GetRecord(buf[u*proto.RecordSize:])
			dst[rec.LocalUnit] = proto.FromDeciwatts(rec.Value)
		}
	}
	b.ReportMetric(float64(len(buf)), "bytes_per_direction")
}

// --- controller-stage microbenchmarks ---

func BenchmarkKalmanStep(b *testing.B) {
	f, err := kalman.New(kalman.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		f.Step(power.Watts(100 + i%20))
	}
}

func BenchmarkPeakDetection(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]power.Watts, 20) // the default history length
	for i := range xs {
		xs[i] = power.Watts(60 + rng.Float64()*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		signal.CountProminentPeaks(xs, 20)
	}
}

func BenchmarkStatelessStep(b *testing.B) {
	m, err := stateless.New(stateless.DefaultConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	budget := power.Budget{Total: 2200, UnitMax: 165, UnitMin: 10}
	caps := power.NewVector(20, 110)
	readings := make(power.Vector, 20)
	rng := rand.New(rand.NewSource(1))
	for i := range readings {
		readings[i] = power.Watts(40 + rng.Float64()*120)
	}
	changed := make([]bool, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(readings, caps, budget, changed)
	}
}

func BenchmarkPriorityUpdate(b *testing.B) {
	const units = 20
	m, err := priority.New(priority.DefaultConfig(), units)
	if err != nil {
		b.Fatal(err)
	}
	hist := history.NewSet(units, 20)
	rng := rand.New(rand.NewSource(1))
	for u := 0; u < units; u++ {
		for s := 0; s < 20; s++ {
			hist.Push(power.UnitID(u), power.Watts(60+rng.Float64()*100), 1)
		}
	}
	readings := power.NewVector(units, 100)
	caps := power.NewVector(units, 110)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Update(hist, readings, caps, 110)
	}
}

// BenchmarkMachineStep measures the simulated platform itself: one
// discrete-time step of the 20-socket machine with two active workloads.
func BenchmarkMachineStep(b *testing.B) {
	m, err := dps.NewMachine(dps.DefaultMachineConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	gmm, err := dps.WorkloadByName("GMM")
	if err != nil {
		b.Fatal(err)
	}
	lda, err := dps.WorkloadByName("LDA")
	if err != nil {
		b.Fatal(err)
	}
	m.Cluster(0).SetRun(dps.NewWorkloadRun(gmm, rng))
	m.Cluster(1).SetRun(dps.NewWorkloadRun(lda, rng))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Step(1); err != nil {
			b.Fatal(err)
		}
		// Keep the clusters busy across long benches.
		if r := m.Cluster(0).Run(); r == nil || r.Done() {
			m.Cluster(0).SetRun(dps.NewWorkloadRun(gmm, rng))
		}
		if r := m.Cluster(1).Run(); r == nil || r.Done() {
			m.Cluster(1).SetRun(dps.NewWorkloadRun(lda, rng))
		}
	}
}

// BenchmarkPairExperiment measures a complete small co-execution
// experiment end to end (workload generation, closed-loop control,
// metrics).
func BenchmarkPairExperiment(b *testing.B) {
	a, err := dps.WorkloadByName("Sort")
	if err != nil {
		b.Fatal(err)
	}
	w, err := dps.WorkloadByName("Wordcount")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := dps.RunPair(dps.PairConfig{
			WorkloadA: a, WorkloadB: w, Repeats: 2, Seed: int64(i + 1),
		}, dps.DPSFactory())
		if err != nil {
			b.Fatal(err)
		}
		if res.BudgetViolations != 0 {
			b.Fatalf("budget violated %d times", res.BudgetViolations)
		}
	}
}

// --- ablation benches: the design choices DESIGN.md calls out, measured
// on the hardest pair (LDA + GMM under contention) ---

func benchAblation(b *testing.B, modify func(*core.Config)) {
	lda, err := dps.WorkloadByName("LDA")
	if err != nil {
		b.Fatal(err)
	}
	gmm, err := dps.WorkloadByName("GMM")
	if err != nil {
		b.Fatal(err)
	}
	cfg := dps.PairConfig{WorkloadA: lda, WorkloadB: gmm, Repeats: 2, Seed: 7}
	var gain float64
	for i := 0; i < b.N; i++ {
		base, err := dps.RunPair(cfg, dps.ConstantFactory())
		if err != nil {
			b.Fatal(err)
		}
		res, err := dps.RunPair(cfg, dps.DPSFactoryWith(modify))
		if err != nil {
			b.Fatal(err)
		}
		sa, err := dps.Speedup(base.A.HMeanDuration, res.A.HMeanDuration)
		if err != nil {
			b.Fatal(err)
		}
		sb, err := dps.Speedup(base.B.HMeanDuration, res.B.HMeanDuration)
		if err != nil {
			b.Fatal(err)
		}
		gain = dps.HMean([]float64{sa, sb})
	}
	b.ReportMetric((gain-1)*100, "gain_over_constant_pct")
}

func BenchmarkAblationFullDPS(b *testing.B) { benchAblation(b, nil) }
func BenchmarkAblationNoKalman(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableKalman = true })
}
func BenchmarkAblationNoFrequency(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableFrequency = true })
}
func BenchmarkAblationNoRestore(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisableRestore = true })
}
func BenchmarkAblationNoPriority(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.DisablePriority = true })
}
func BenchmarkAblationNoAtCap(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.Priority.AtCapFraction = 0 })
}
func BenchmarkAblationHistory5(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.HistoryLen = 5 })
}
func BenchmarkAblationHistory60(b *testing.B) {
	benchAblation(b, func(c *core.Config) { c.HistoryLen = 60 })
}

// BenchmarkWorkloadGeneration measures phase-list generation for the whole
// catalog (the per-run cost of the workload substrate).
func BenchmarkWorkloadGeneration(b *testing.B) {
	specs := workload.All()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.NewRun(specs[i%len(specs)], rng)
	}
}
