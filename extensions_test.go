package dps_test

import (
	"bytes"
	"testing"

	"dps"
)

func TestPublicHierarchicalDPS(t *testing.T) {
	budget := dps.Budget{Total: 880, UnitMax: 165, UnitMin: 10}
	m, err := dps.NewHierarchicalDPS(dps.DefaultHierConfig(2, 4, budget))
	if err != nil {
		t.Fatal(err)
	}
	caps := m.Decide(dps.Snapshot{Power: dps.NewVector(8, 100), Interval: 1})
	if caps.Sum() > budget.Total+1e-6 {
		t.Errorf("caps sum %v exceeds budget", caps.Sum())
	}
}

func TestPublicP2P(t *testing.T) {
	budget := dps.Budget{Total: 440, UnitMax: 165, UnitMin: 10}
	m, err := dps.NewP2P(dps.DefaultP2PConfig(4, budget))
	if err != nil {
		t.Fatal(err)
	}
	before := m.Caps().Sum()
	caps := m.Decide(dps.Snapshot{Power: dps.NewVector(4, 110), Interval: 1})
	if caps.Sum() != before {
		t.Errorf("p2p trades not zero-sum: %v -> %v", before, caps.Sum())
	}
}

func TestPublicFeedback(t *testing.T) {
	budget := dps.Budget{Total: 440, UnitMax: 165, UnitMin: 10}
	m, err := dps.NewFeedback(4, budget, dps.DefaultFeedbackConfig())
	if err != nil {
		t.Fatal(err)
	}
	caps := m.Decide(dps.Snapshot{Power: dps.NewVector(4, 110), Interval: 1})
	if caps.Sum() > budget.Total+1e-6 {
		t.Errorf("caps sum %v exceeds budget", caps.Sum())
	}
}

func TestPublicPlaneStudy(t *testing.T) {
	ws := dps.PlaneCatalog()
	if len(ws) != 3 {
		t.Fatalf("plane catalog has %d workloads", len(ws))
	}
	res, err := dps.RunPlaneStudy(ws[1], 130, dps.DefaultPlaneLimits(), dps.DynamicPlaneSplitter(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 || res.BudgetViolations != 0 {
		t.Errorf("plane study result: %+v", res)
	}
	static, err := dps.RunPlaneStudy(ws[1], 130, dps.DefaultPlaneLimits(), dps.StaticPlaneSplitter(0.85), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration >= static.Duration {
		t.Errorf("dynamic %.0fs not below static %.0fs on the memory workload", res.Duration, static.Duration)
	}
}

func TestPublicTraceLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := dps.NewTraceWriter(&buf)
	if err := w.WriteStep(1, dps.Vector{100, 50}, dps.Vector{110, 90}, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := dps.NewTraceReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sum, err := dps.SummarizeLog(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Units) != 2 {
		t.Errorf("summary units: %d", len(sum.Units))
	}
	ga, gb, score, err := dps.LogBalance(sum,
		dps.LogGroup{Name: "a", First: 0, Count: 1},
		dps.LogGroup{Name: "b", First: 1, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = ga
	_ = gb
	if score < 0 || score > 1 {
		t.Errorf("balance score %v", score)
	}
}

func TestPublicBatchScheduling(t *testing.T) {
	sortW, err := dps.WorkloadByName("Sort")
	if err != nil {
		t.Fatal(err)
	}
	toy, err := dps.ScaledWorkload(sortW, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []dps.SchedJob{{ID: 0, Workload: toy}, {ID: 1, Workload: toy}}
	machine := dps.DefaultMachineConfig()
	machine.Clusters = 2
	machine.NodesPerCluster = 1
	res, err := dps.RunBatch(dps.SchedConfig{Machine: machine, Jobs: jobs, Seed: 1}, dps.DPSFactory())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 || res.TimedOut {
		t.Errorf("batch result: %d jobs, timedout=%v", len(res.Jobs), res.TimedOut)
	}
}
