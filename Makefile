GO ?= go

.PHONY: all build vet staticcheck test race bench bench-smoke ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs only where the tool is installed; CI images without it
# fall through to vet alone rather than failing the gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# The race detector multiplies runtime ~10x; -short skips the longest
# simulation suites while still exercising every concurrent code path
# (daemon, agent, telemetry registry, flight recorder, sharded decision
# core).
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-smoke proves the sequential and sharded decision pipelines both
# complete a cluster-scale round; it is a compile-and-run check, not a
# timing run (use `make bench` or -benchtime 10x for numbers).
bench-smoke:
	$(GO) test -run xxx -bench 'DecideScaling/N=4096' -benchtime 1x .

# ci is the tier-1 gate: static checks, a full build, the complete test
# suite, the race detector over the concurrency-bearing packages, and a
# smoke run of the scaling benchmark.
ci: vet staticcheck build test race bench-smoke
