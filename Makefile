GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime ~10x; -short skips the longest
# simulation suites while still exercising every concurrent code path
# (daemon, agent, telemetry registry, flight recorder).
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# ci is the tier-1 gate: static checks, a full build, the complete test
# suite, and the race detector over the concurrency-bearing packages.
ci: vet build test race
