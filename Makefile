GO ?= go

# VERSION is stamped into the binaries (dps_build_info, -version) via
# internal/version. Local builds of a dirty tree report e.g.
# `v0.3-2-gabc123-dirty`; outside a tag history it falls back to the
# short commit, and outside git entirely to "dev".
VERSION ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -ldflags "-X dps/internal/version.Version=$(VERSION)"

.PHONY: all build vet staticcheck test race bench bench-smoke bench-json bench-ingest bench-restore alloc-check chaos fuzz-smoke trace-smoke watch-smoke failover-smoke blackbox-smoke ci

all: ci

build:
	$(GO) build $(LDFLAGS) ./...

vet:
	$(GO) vet ./...

# staticcheck runs only where the tool is installed; CI images without it
# fall through to vet alone rather than failing the gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

test:
	$(GO) test ./...

# The race detector multiplies runtime ~10x; -short skips the longest
# simulation suites while still exercising every concurrent code path
# (daemon, agent, telemetry registry, flight recorder, sharded decision
# core, series sampler) plus the dense/sparse equivalence suites
# (TestSparse* in internal/core and internal/daemon), which run in full
# under -short.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-smoke proves the sequential, sharded and sparse (dirty-fraction)
# decision pipelines all complete a cluster-scale round with -benchmem
# reporting, and that the BENCH_decide.json emitter parses the output; it
# is a compile-and-run check, not a timing run. The smoke JSON goes to an
# untracked path so it never clobbers the committed timing record.
bench-smoke:
	BENCHTIME=1x OUT=BENCH_decide.smoke.json ./scripts/bench_decide.sh

# bench-json refreshes the committed BENCH_decide.json with real timings.
bench-json:
	./scripts/bench_decide.sh

# bench-ingest refreshes the committed BENCH_ingest.json: server-side
# ingest throughput at 16k units across per-reading frames, raw node
# frames, v2 batch frames, and sparse deltas.
bench-ingest:
	./scripts/bench_ingest.sh

# bench-restore refreshes the committed BENCH_restore.json: snapshot
# encode/decode at 16k and 262k units, and cold-vs-warm takeover
# time-to-first-caps at 16k and 64k.
bench-restore:
	./scripts/bench_restore.sh

# chaos runs the full fault-injection suite under the race detector:
# the deterministic kill/restart script, the wall-clock run over real TCP
# with injected connection drops and device crash-restarts (with the
# watchdog attached as a second oracle), the high-availability pair —
# kill/restore-from-snapshot against an uninterrupted bitwise twin, and
# warm-standby takeover over a fault-injected replication link — and the
# faultinject package's own determinism tests. The deterministic half
# also runs inside `make ci` (race is -short); the wall-clock half only
# runs here.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Conn|Device|Readings' ./internal/daemon/ ./internal/faultinject/

# alloc-check is the allocation-regression gate: a warm DecideStats
# round must not allocate — bare, with a disabled tracer attached, on
# the sharded fork/join path, on the sparse path (masked and maskless,
# sequential and sharded), with the full self-monitoring stack
# (series sampler + watchdog audits) running beside the daemon's
# decision loop, and on the black-box recorder's warm append path.
alloc-check:
	$(GO) test -run 'TestDecideStatsSteadyStateZeroAlloc|TestDecideTracerOffZeroAlloc|TestDecideShardedSteadyStateZeroAlloc|TestDecideSparseSteadyStateZeroAlloc|TestDecideSparseShardedSteadyStateZeroAlloc' -count=1 ./internal/core
	$(GO) test -run 'TestDecideSamplerSteadyStateZeroAlloc|TestIngestSteadyStateZeroAlloc|TestReplicateSteadyStateZeroAlloc' -count=1 ./internal/daemon
	$(GO) test -run 'TestBlackboxWriterSteadyStateZeroAlloc' -count=1 ./internal/blackbox

# fuzz-smoke gives the wire-protocol decoders a short fuzz shake on every
# CI run (the corpus under internal/proto/testdata grows across runs).
# `go test` accepts one -fuzz pattern per invocation, hence one command
# per decoder (anchored: -fuzz must match exactly one target).
fuzz-smoke:
	$(GO) test -fuzz='FuzzReadHello$$' -fuzztime=5s -run xxx ./internal/proto/
	$(GO) test -fuzz='FuzzReadBatchFrame$$' -fuzztime=5s -run xxx ./internal/proto/
	$(GO) test -fuzz='FuzzSnapshotDecode$$' -fuzztime=5s -run xxx ./internal/snapshot/
	$(GO) test -fuzz='FuzzBlackboxDecode$$' -fuzztime=5s -run xxx ./internal/blackbox/

# trace-smoke runs a short traced simulation and validates the exported
# Chrome trace_event JSON covers every pipeline stage in every round.
trace-smoke:
	$(GO) test -run TestTraceSmoke -count=1 ./internal/sim/

# watch-smoke is the self-monitoring end-to-end gate: a simulated pair
# experiment with a scheduled budget fault must fire budget_conservation
# within one round of the fault and resolve within one round of recovery,
# and a clean run must end with every builtin audit inactive.
watch-smoke:
	$(GO) test -run 'TestWatchSmoke|TestWatchOracleCleanRun' -count=1 ./internal/sim/

# failover-smoke is the high-availability end-to-end gate: an in-process
# primary serving real reconnecting agents over TCP, a warm standby
# following its replication stream, a deterministic faultinject crash of
# the link, and convergence of every agent onto the standby — with the
# standby's watchdog silent across the handover.
failover-smoke:
	$(GO) test -run TestFailoverSmoke -count=1 ./internal/daemon/

# blackbox-smoke is the crash-safety gate for the black-box flight
# recorder: a daemon appending rounds is killed with SIGKILL mid-run and
# `dpsctl blackbox dump` must recover every completed round from the
# dead process's on-disk ring (at most the one in-flight round may
# tear).
blackbox-smoke:
	$(GO) test -run 'TestBlackboxSmoke$$' -count=1 -v ./cmd/dpsctl/

# ci is the tier-1 gate: static checks, a full build, the complete test
# suite, the race detector over the concurrency-bearing packages, the
# allocation-regression gates, a protocol fuzz shake, the traced-sim,
# watchdog, failover and black-box crash smokes, and a smoke run of the
# scaling benchmark.
ci: vet staticcheck build test race alloc-check fuzz-smoke trace-smoke watch-smoke failover-smoke blackbox-smoke bench-smoke
