package dps_test

import (
	"fmt"
	"testing"

	"dps"
)

// TestPublicManagerLifecycle drives every manager the facade exposes
// through a realistic decision sequence, verifying the budget invariant at
// the public API boundary.
func TestPublicManagerLifecycle(t *testing.T) {
	const units = 4
	budget := dps.Budget{Total: 440, UnitMax: 165, UnitMin: 10}

	d, err := dps.NewDPS(dps.DefaultConfig(units, budget))
	if err != nil {
		t.Fatal(err)
	}
	c, err := dps.NewConstant(units, budget)
	if err != nil {
		t.Fatal(err)
	}
	s, err := dps.NewSLURM(units, budget, dps.DefaultStatelessConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := dps.NewOracle(units, budget, dps.DefaultOracleConfig())
	if err != nil {
		t.Fatal(err)
	}

	demand := dps.Vector{160, 40, 90, 150}
	for step := 0; step < 30; step++ {
		for _, mgr := range []dps.Manager{d, c, s, o} {
			caps := mgr.Caps()
			drawn := make(dps.Vector, units)
			for u := range drawn {
				drawn[u] = demand[u]
				if caps[u] < drawn[u] {
					drawn[u] = caps[u]
				}
			}
			next := mgr.Decide(dps.Snapshot{Power: drawn, Interval: 1, Demand: demand})
			if got := next.Sum(); got > budget.Total+1e-6 {
				t.Fatalf("%s: caps sum %v exceeds budget at step %d", mgr.Name(), got, step)
			}
		}
	}
}

func TestPublicWorkloadCatalog(t *testing.T) {
	if got := len(dps.SparkWorkloads()); got != 11 {
		t.Errorf("SparkWorkloads = %d, want 11", got)
	}
	if got := len(dps.NPBWorkloads()); got != 8 {
		t.Errorf("NPBWorkloads = %d, want 8", got)
	}
	if got := len(dps.AllWorkloads()); got != 19 {
		t.Errorf("AllWorkloads = %d, want 19", got)
	}
	if _, err := dps.WorkloadByName("LDA"); err != nil {
		t.Errorf("WorkloadByName(LDA): %v", err)
	}
}

func TestPublicSimulation(t *testing.T) {
	a, err := dps.WorkloadByName("Sort")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dps.WorkloadByName("Wordcount")
	if err != nil {
		t.Fatal(err)
	}
	res, err := dps.RunPair(dps.PairConfig{
		WorkloadA: a, WorkloadB: b, Repeats: 2, Seed: 3,
	}, dps.DPSFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetViolations != 0 {
		t.Errorf("budget violations: %d", res.BudgetViolations)
	}
	if len(res.A.Runs) < 2 || len(res.B.Runs) < 2 {
		t.Errorf("runs: A=%d B=%d", len(res.A.Runs), len(res.B.Runs))
	}
}

func TestPublicRAPL(t *testing.T) {
	dev, err := dps.NewSimRAPL(dps.DefaultSimRAPLConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(120)
	if err := dev.SetCap(100); err != nil {
		t.Fatal(err)
	}
	meter := dps.NewMeter(dev)
	if _, err := meter.Read(1); err != nil {
		t.Fatal(err)
	}
	dev.Advance(1)
	w, err := meter.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if w < 90 || w > 110 {
		t.Errorf("metered %v W under a 100 W cap (σ=2 noise)", w)
	}
}

// ExampleNewDPS shows the minimal control loop: readings in, caps out.
func ExampleNewDPS() {
	budget := dps.Budget{Total: 220, UnitMax: 165, UnitMin: 10}
	mgr, err := dps.NewDPS(dps.DefaultConfig(2, budget))
	if err != nil {
		panic(err)
	}
	// Unit 0 draws its full cap (throttled); unit 1 idles at 20 W.
	var caps dps.Vector
	for i := 0; i < 5; i++ {
		caps = mgr.Decide(dps.Snapshot{Power: dps.Vector{mgr.Caps()[0], 20}, Interval: 1})
	}
	fmt.Printf("budget respected: %v\n", caps.Sum() <= budget.Total)
	fmt.Printf("throttled unit got more than idle unit: %v\n", caps[0] > caps[1])
	// Output:
	// budget respected: true
	// throttled unit got more than idle unit: true
}

// ExampleHMean shows the paper's aggregate for paired workloads.
func ExampleHMean() {
	fmt.Printf("%.2f\n", dps.HMean([]float64{2, 6}))
	// Output:
	// 3.00
}
