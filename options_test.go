package dps_test

import (
	"os"
	"path/filepath"
	"testing"

	"dps"
)

// TestNewMatchesNewDPS pins the contract of the option constructor: New
// with no options is DefaultConfig, and the controllers it builds make
// the same decisions as the low-level path for the same seed.
func TestNewMatchesNewDPS(t *testing.T) {
	const units = 8
	budget := dps.Budget{Total: 880, UnitMax: 165, UnitMin: 10}

	a, err := dps.New(units, budget, dps.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dps.DefaultConfig(units, budget)
	cfg.Seed = 7
	b, err := dps.NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}

	demand := dps.Vector{160, 40, 90, 150, 20, 140, 70, 110}
	capsA, capsB := a.Caps().Clone(), b.Caps().Clone()
	for step := 0; step < 50; step++ {
		drawn := make(dps.Vector, units)
		for u := range drawn {
			drawn[u] = demand[u]
			if capsA[u] < drawn[u] {
				drawn[u] = capsA[u]
			}
		}
		nextA, stA := a.DecideStats(dps.Snapshot{Power: drawn, Interval: 1})
		nextB, stB := b.DecideStats(dps.Snapshot{Power: drawn, Interval: 1})
		for u := range nextA {
			if nextA[u] != nextB[u] {
				t.Fatalf("step %d unit %d: New cap %v != NewDPS cap %v", step, u, nextA[u], nextB[u])
			}
		}
		// Timings are wall-clock, so compare only the decision outcomes.
		if stA.Step != stB.Step || stA.Restored != stB.Restored ||
			stA.HighPriority != stB.HighPriority || stA.PriorityFlips != stB.PriorityFlips ||
			stA.BudgetExhausted != stB.BudgetExhausted || stA.BudgetClamped != stB.BudgetClamped {
			t.Fatalf("step %d: stats %+v != %+v", step, stA, stB)
		}
		copy(capsA, nextA)
		copy(capsB, nextB)
	}
}

// TestOptionsApply checks each option lands on the field it documents.
func TestOptionsApply(t *testing.T) {
	budget := dps.Budget{Total: 880, UnitMax: 165, UnitMin: 10}
	def := dps.DefaultConfig(8, budget)
	mgr, err := dps.New(8, budget,
		dps.WithSeed(7),
		dps.WithHistoryLen(30),
		dps.WithShards(4),
		dps.WithStateless(dps.DefaultStatelessConfig()),
		dps.WithKalman(def.Kalman),
		dps.WithPriority(def.Priority),
		dps.WithReadjust(def.Readjust),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if got := mgr.Shards(); got != 4 {
		t.Errorf("Shards() = %d, want 4", got)
	}
	_, st := mgr.DecideStats(dps.Snapshot{Power: dps.NewVector(8, 60), Interval: 1})
	if st.Shards != 4 {
		t.Errorf("RoundStats.Shards = %d, want 4", st.Shards)
	}

	if _, err := dps.New(8, budget, dps.WithShards(-1)); err == nil {
		t.Error("WithShards(-1) accepted; want validation error")
	}
}

// TestWithAblation checks ablations disable the mechanisms they name:
// with priority off, DPS reduces to its stateless module and never flags
// a unit high-priority.
func TestWithAblation(t *testing.T) {
	const units = 4
	budget := dps.Budget{Total: 200, UnitMax: 165, UnitMin: 10}
	mgr, err := dps.New(units, budget, dps.WithSeed(3),
		dps.WithAblation(dps.Ablation{Kalman: true, Priority: true}))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		mgr.Decide(dps.Snapshot{Power: dps.Vector{150, 150, 20, 20}, Interval: 1})
		for u, hp := range mgr.Priorities() {
			if hp {
				t.Fatalf("step %d: unit %d high-priority with Priority ablated", step, u)
			}
		}
	}
}

// TestLoadDaemonConfig exercises the daemon entry points re-exported by
// the facade, including the sharding knob in the JSON file format.
func TestLoadDaemonConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dpsd.json")
	blob := []byte(`{"units": 16, "budget_w": 1600, "policy": "dps", "seed": 7, "shards": 2}`)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	fc, err := dps.LoadDaemonConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Units != 16 || fc.Shards != 2 {
		t.Fatalf("LoadDaemonConfig = %+v, want Units 16, Shards 2", fc)
	}
	mgr, err := fc.BuildManager()
	if err != nil {
		t.Fatal(err)
	}
	d, ok := mgr.(*dps.DPS)
	if !ok {
		t.Fatalf("BuildManager returned %T, want *dps.DPS", mgr)
	}
	defer d.Close()
	if got := d.Shards(); got != 2 {
		t.Errorf("daemon-built controller Shards() = %d, want 2", got)
	}

	var st dps.DaemonStatus
	st.Units = fc.Units // the alias is the daemon's own Status type
	if st.Units != 16 {
		t.Fatal("DaemonStatus alias mismatch")
	}
}
