module dps

go 1.22
