package stateless

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dps/internal/power"
)

var testBudget = power.Budget{Total: 440, UnitMax: 165, UnitMin: 10}

func mustNew(t *testing.T, seed int64) *Module {
	t.Helper()
	m, err := New(DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{IncThreshold: 0, DecThreshold: 0.8, IncFactor: 1.1, DecFactor: 0.9},
		{IncThreshold: 1.2, DecThreshold: 0.8, IncFactor: 1.1, DecFactor: 0.9},
		{IncThreshold: 0.95, DecThreshold: -0.1, IncFactor: 1.1, DecFactor: 0.9},
		{IncThreshold: 0.95, DecThreshold: 0.96, IncFactor: 1.1, DecFactor: 0.9},
		{IncThreshold: 0.95, DecThreshold: 0.8, IncFactor: 1.0, DecFactor: 0.9},
		{IncThreshold: 0.95, DecThreshold: 0.8, IncFactor: 1.1, DecFactor: 1.0},
		{IncThreshold: 0.95, DecThreshold: 0.8, IncFactor: 1.1, DecFactor: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
	if _, err := New(Config{}, 1); err == nil {
		t.Error("New accepted the zero config")
	}
}

func TestDecreaseIdleUnit(t *testing.T) {
	m := mustNew(t, 1)
	caps := power.Vector{110, 110}
	// Unit 0 draws 40 W, well under 80 % of 110; unit 1 is at cap.
	m.Apply(power.Vector{40, 110}, caps, testBudget, nil)
	if caps[0] >= 110 {
		t.Errorf("idle unit's cap %v not decreased", caps[0])
	}
	if caps[0] < 40 {
		t.Errorf("cap %v cut below the unit's current power 40", caps[0])
	}
	// Multiplicative: one step of DecFactor, not further.
	want := power.Watts(110 * DefaultConfig().DecFactor)
	if caps[0] != want {
		t.Errorf("cap after one decrease = %v, want %v", caps[0], want)
	}
}

func TestDecreaseStopsAtPower(t *testing.T) {
	m := mustNew(t, 1)
	caps := power.Vector{50}
	budget := power.Budget{Total: 165, UnitMax: 165, UnitMin: 10}
	// Power 45 sits between the bands: above 0.8·50 = 40 (no decrease) and
	// below 0.95·50 = 47.5 (no increase).
	m.Apply(power.Vector{45}, caps, budget, nil)
	if caps[0] != 50 {
		t.Errorf("cap moved to %v despite power within the dead band", caps[0])
	}
	// Power 30 → cut to max(30, 0.85·50 = 42.5).
	m.Apply(power.Vector{30}, caps, budget, nil)
	if caps[0] != 42.5 {
		t.Errorf("cap = %v, want 42.5", caps[0])
	}
	// Deep idle converges into the stable band [power, power/DecThreshold]:
	// once the cap is within 25 % of the power, the dec condition stops
	// firing. This band is load-bearing — it is the visible headroom that
	// lets DPS's priority module see a capped unit's demand rise.
	for i := 0; i < 20; i++ {
		m.Apply(power.Vector{30}, caps, budget, nil)
	}
	if caps[0] < 30 || caps[0] > 30/power.Watts(DefaultConfig().DecThreshold)+1e-9 {
		t.Errorf("cap converged to %v, want within [30, %v]", caps[0], 30/DefaultConfig().DecThreshold)
	}
}

func TestDecreaseRespectsUnitMin(t *testing.T) {
	m := mustNew(t, 1)
	caps := power.Vector{12}
	for i := 0; i < 5; i++ {
		m.Apply(power.Vector{0}, caps, testBudget, nil)
		if caps[0] < testBudget.UnitMin {
			t.Fatalf("cap %v fell below UnitMin %v", caps[0], testBudget.UnitMin)
		}
	}
	if caps[0] != testBudget.UnitMin {
		t.Errorf("cap = %v after repeated zero-power steps, want UnitMin %v", caps[0], testBudget.UnitMin)
	}
}

func TestIncreaseAtCapUnit(t *testing.T) {
	m := mustNew(t, 1)
	caps := power.Vector{110, 110}
	// Unit 0 pinned at its cap; budget has headroom (440−220).
	m.Apply(power.Vector{110, 90}, caps, testBudget, nil)
	want := power.Watts(110 * DefaultConfig().IncFactor)
	if caps[0] != want {
		t.Errorf("capped unit raised to %v, want %v", caps[0], want)
	}
	if caps[1] != 110 {
		t.Errorf("uncapped unit's cap moved to %v", caps[1])
	}
}

func TestIncreaseLimitedByBudget(t *testing.T) {
	m := mustNew(t, 1)
	budget := power.Budget{Total: 222, UnitMax: 165, UnitMin: 10}
	caps := power.Vector{110, 110}
	// Both at cap; only 2 W of headroom exist in total.
	m.Apply(power.Vector{110, 110}, caps, budget, nil)
	if got := caps.Sum(); got > budget.Total+1e-9 {
		t.Errorf("caps sum %v exceeds budget %v", got, budget.Total)
	}
}

func TestIncreaseRespectsUnitMax(t *testing.T) {
	m := mustNew(t, 1)
	budget := power.Budget{Total: 400, UnitMax: 165, UnitMin: 10}
	caps := power.Vector{160}
	m.Apply(power.Vector{160}, caps, budget, nil)
	if caps[0] != 165 {
		t.Errorf("cap = %v, want clamped to UnitMax 165", caps[0])
	}
}

func TestChangedFlags(t *testing.T) {
	m := mustNew(t, 1)
	caps := power.Vector{110, 110, 110}
	changed := make([]bool, 3)
	// Unit 0 idle (decrease), unit 1 at cap (increase), unit 2 in band.
	got := m.Apply(power.Vector{40, 110, 95}, caps, testBudget, changed)
	if !got[0] || !got[1] || got[2] {
		t.Errorf("changed = %v, want [true true false]", got)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func(seed int64) power.Vector {
		m, err := New(DefaultConfig(), seed)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		caps := power.NewVector(8, 55)
		budget := power.Budget{Total: 8 * 55, UnitMax: 165, UnitMin: 10}
		for i := 0; i < 50; i++ {
			pw := make(power.Vector, 8)
			for u := range pw {
				pw[u] = power.Watts(rng.Float64() * 165)
			}
			m.Apply(pw, caps, budget, nil)
		}
		return caps
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
}

// The MIMD step never violates the budget and never leaves the hardware
// range, from any starting state the controller could reach.
func TestBudgetInvariantProperty(t *testing.T) {
	m, err := New(DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	budget := power.Budget{Total: 440, UnitMax: 165, UnitMin: 10}
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		caps := power.Vector{110, 110, 110, 110}
		for s := 0; s < int(steps%40)+1; s++ {
			pw := make(power.Vector, 4)
			for u := range pw {
				pw[u] = power.Watts(rng.Float64() * 165)
			}
			m.Apply(pw, caps, budget, nil)
			if !budget.Respected(caps, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyPanicsOnSizeMismatch(t *testing.T) {
	m := mustNew(t, 1)
	defer func() {
		if recover() == nil {
			t.Error("Apply with mismatched sizes did not panic")
		}
	}()
	m.Apply(power.Vector{1}, power.Vector{1, 2}, testBudget, nil)
}

func TestRandomOrderCoversAllUnits(t *testing.T) {
	// With scarce leftover budget, the random visiting order must not
	// systematically favour low indices: over many steps every unit should
	// receive raises.
	m := mustNew(t, 5)
	budget := power.Budget{Total: 403, UnitMax: 165, UnitMin: 10}
	raised := make([]int, 4)
	for trial := 0; trial < 200; trial++ {
		caps := power.Vector{100, 100, 100, 100}
		before := caps.Clone()
		m.Apply(power.Vector{100, 100, 100, 100}, caps, budget, nil)
		for u := range caps {
			if caps[u] > before[u] {
				raised[u]++
			}
		}
	}
	for u, n := range raised {
		if n == 0 {
			t.Errorf("unit %d never received a raise in 200 scarce-budget steps", u)
		}
	}
}
