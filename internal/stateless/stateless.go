// Package stateless implements the paper's Algorithm 1: a
// Multiplicative-Increase-Multiplicative-Decrease (MIMD) power-cap
// controller modeled on SLURM's power management plugin.
//
// The module looks only at the current power of each unit. Units drawing
// well below their cap have the cap cut multiplicatively (releasing budget),
// and units pressing against their cap receive a multiplicative raise from
// whatever budget remains, visited in random order so no unit is
// systematically favoured. Used alone this module *is* the SLURM baseline;
// inside DPS its output is the temporary allocation the cap-readjusting
// module corrects.
package stateless

import (
	"fmt"
	"math/bits"
	"math/rand"

	"dps/internal/power"
)

// Config holds Algorithm 1's four tuning parameters.
type Config struct {
	// IncThreshold is the fraction of its cap a unit's power must exceed to
	// be considered capped and eligible for an increase (inc_threshold).
	IncThreshold float64
	// DecThreshold is the fraction of its cap a unit's power must fall
	// below for the cap to be decreased (dec_threshold).
	DecThreshold float64
	// IncFactor is the multiplicative raise applied to an eligible unit's
	// cap (inc_percentile, > 1).
	IncFactor float64
	// DecFactor is the multiplicative cut applied to an idle unit's cap
	// (dec_percentile, < 1). The cap never drops below the unit's current
	// power.
	DecFactor float64
}

// DefaultConfig mirrors the behaviour of SLURM's plugin defaults scaled to
// a one-second decision loop: treat a unit as capped when it is within 5 %
// of its cap, reclaim budget when it draws less than 80 % of its cap,
// raise caps 5 % per step and cut them 15 % per step. The conservative
// raise is what makes the pure stateless policy slow to follow fast phase
// transitions (the behaviour DPS's priority mechanism fixes); raising it
// is an ablation, not a fairness fix, because the stuck-at-cap starvation
// of Figure 1 persists at any rate.
func DefaultConfig() Config {
	return Config{
		IncThreshold: 0.95,
		DecThreshold: 0.80,
		IncFactor:    1.05,
		DecFactor:    0.85,
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.IncThreshold <= 0 || c.IncThreshold > 1:
		return fmt.Errorf("stateless: IncThreshold %v outside (0,1]", c.IncThreshold)
	case c.DecThreshold < 0 || c.DecThreshold >= 1:
		return fmt.Errorf("stateless: DecThreshold %v outside [0,1)", c.DecThreshold)
	case c.DecThreshold >= c.IncThreshold:
		return fmt.Errorf("stateless: DecThreshold %v >= IncThreshold %v", c.DecThreshold, c.IncThreshold)
	case c.IncFactor <= 1:
		return fmt.Errorf("stateless: IncFactor %v must exceed 1", c.IncFactor)
	case c.DecFactor <= 0 || c.DecFactor >= 1:
		return fmt.Errorf("stateless: DecFactor %v outside (0,1)", c.DecFactor)
	}
	return nil
}

// countingSource wraps the standard PRNG source and counts every state
// advance. math/rand's generator state is opaque, but it is a pure
// function of (seed, number of advances): re-seeding and discarding the
// same number of draws lands on the identical stream position. The count
// is therefore the module's entire serializable PRNG state — snapshots
// store (seed, draws) instead of the 607-word generator internals, and
// the replayed stream stays bit-for-bit the one an uninterrupted module
// would have produced. Both Int63 and Uint64 advance the underlying
// generator exactly once, so a single counter covers every draw path
// rand.Rand takes.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// Module is a reusable MIMD controller. It is deterministic given its seed:
// the random visiting order of the cap-increasing loop comes from an owned
// PRNG so experiments are reproducible.
type Module struct {
	cfg   Config
	rng   *rand.Rand
	src   *countingSource
	order []int // scratch permutation of eligible units, reused across steps
}

// New returns a module with the given configuration and seed.
func New(cfg Config, seed int64) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &Module{cfg: cfg, rng: rand.New(src), src: src}, nil
}

// RNGDraws returns the number of PRNG state advances consumed so far —
// together with the construction seed, the module's complete
// serializable randomness state.
func (m *Module) RNGDraws() uint64 { return m.src.draws }

// RestoreRNG re-seeds the module's PRNG and fast-forwards it by draws
// state advances, restoring the exact stream position RNGDraws reported.
// The replay cost is linear in draws; a snapshot of a long-lived module
// pays it once at restore time, never per round.
func (m *Module) RestoreRNG(seed int64, draws uint64) {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	for i := uint64(0); i < draws; i++ {
		src.src.Uint64()
	}
	src.draws = draws
	m.src = src
	m.rng = rand.New(src)
}

// Config returns the module's configuration.
func (m *Module) Config() Config { return m.cfg }

// Apply runs one MIMD step: given each unit's current power it mutates caps
// in place, never letting the sum of caps exceed budget.Total nor any cap
// leave [budget.UnitMin, budget.UnitMax]. changed[u] reports whether unit
// u's cap moved this step.
//
// Deviation from the paper's pseudocode (documented in DESIGN.md): the
// increase loop raises a cap to min(cap·IncFactor, cap+avail, UnitMax) and
// deducts only the delta from the available budget; the paper's literal
// text would overwrite the cap with the leftover budget and double-charge
// it.
func (m *Module) Apply(powerNow power.Vector, caps power.Vector, budget power.Budget, changed []bool) []bool {
	n := len(caps)
	if len(powerNow) != n {
		panic(fmt.Sprintf("stateless: %d readings for %d caps", len(powerNow), n))
	}
	if cap(changed) < n {
		changed = make([]bool, n)
	}
	changed = changed[:n]
	for i := range changed {
		changed[i] = false
	}

	// First loop: decrease caps of units drawing well below them.
	for u := 0; u < n; u++ {
		if powerNow[u] < caps[u]*power.Watts(m.cfg.DecThreshold) {
			next := caps[u] * power.Watts(m.cfg.DecFactor)
			if powerNow[u] > next {
				next = powerNow[u]
			}
			if next < budget.UnitMin {
				next = budget.UnitMin
			}
			if next != caps[u] {
				caps[u] = next
				changed[u] = true
			}
		}
	}

	// Second loop: increase caps of capped units, in random order. Only
	// eligible (near-cap) units are collected and shuffled: a unit's
	// eligibility is fixed once the decrease pass ends (raises touch only
	// the raised unit's own cap), so the permutation of the ineligible
	// majority could never matter — shuffling just the eligible set draws
	// the same uniform visiting order over the units that act at O(capped)
	// instead of O(n) PRNG cost. In an overprovisioned steady state the
	// eligible set is empty and the pass is a predicate scan.
	avail := budget.Total - caps.Sum()
	if avail <= 0 {
		return changed
	}
	m.collectEligible(powerNow, caps)
	m.shuffleOrder()
	for _, u := range m.order {
		if avail <= 0 {
			break
		}
		next := caps[u] * power.Watts(m.cfg.IncFactor)
		if max := caps[u] + avail; next > max {
			next = max
		}
		if next > budget.UnitMax {
			next = budget.UnitMax
		}
		if next > caps[u] {
			avail -= next - caps[u]
			caps[u] = next
			changed[u] = true
		}
	}
	return changed
}

// ApplyMasked is Apply with the decrease pass restricted to the units
// whose bits are set in visit (least-significant bit of visit[0] = unit
// 0). A clear bit is the caller's guarantee that the unit's
// (powerNow[u], caps[u]) pair is unchanged since a previous
// Apply/ApplyMasked step on this module in which the decrease pass left
// its cap unchanged — skipping it is then a provable no-op and the
// result is bitwise identical to Apply. The increase pass always runs in
// full: it depends on the shared available-budget pool and the random
// visiting order, not on per-unit staleness.
//
// cachedSum with sumValid=true must be the bitwise value caps.Sum()
// would return on entry; it is used for the available-budget computation
// only when the decrease pass moved nothing (otherwise the sum is
// recomputed). The PRNG stream stays aligned with Apply's: the eligible
// set is collected iff avail > 0 and shuffled iff non-empty, and both
// avail and the set are bitwise identical by construction.
//
// decChanged/raiseChanged report whether the decrease or increase pass
// moved any cap. changed must have length len(caps); it is reset and
// filled exactly as Apply fills it.
func (m *Module) ApplyMasked(powerNow power.Vector, caps power.Vector, budget power.Budget, changed []bool, visit []uint64, cachedSum power.Watts, sumValid bool) (decChanged, raiseChanged bool) {
	n := len(caps)
	if len(powerNow) != n {
		panic(fmt.Sprintf("stateless: %d readings for %d caps", len(powerNow), n))
	}
	if len(changed) != n {
		panic(fmt.Sprintf("stateless: %d changed flags for %d caps", len(changed), n))
	}
	if len(visit)*64 < n {
		panic(fmt.Sprintf("stateless: visit mask covers %d units, need %d", len(visit)*64, n))
	}
	clear(changed)

	for wi, w := range visit {
		if w == 0 {
			continue
		}
		base := wi << 6
		for w != 0 {
			u := base + bits.TrailingZeros64(w)
			w &= w - 1
			if u >= n {
				break
			}
			if powerNow[u] < caps[u]*power.Watts(m.cfg.DecThreshold) {
				next := caps[u] * power.Watts(m.cfg.DecFactor)
				if powerNow[u] > next {
					next = powerNow[u]
				}
				if next < budget.UnitMin {
					next = budget.UnitMin
				}
				if next != caps[u] {
					caps[u] = next
					changed[u] = true
					decChanged = true
				}
			}
		}
	}

	sum := cachedSum
	if decChanged || !sumValid {
		sum = caps.Sum()
	}
	avail := budget.Total - sum
	if avail <= 0 {
		return decChanged, false
	}
	m.collectEligible(powerNow, caps)
	m.shuffleOrder()
	for _, u := range m.order {
		if avail <= 0 {
			break
		}
		next := caps[u] * power.Watts(m.cfg.IncFactor)
		if max := caps[u] + avail; next > max {
			next = max
		}
		if next > budget.UnitMax {
			next = budget.UnitMax
		}
		if next > caps[u] {
			avail -= next - caps[u]
			caps[u] = next
			changed[u] = true
			raiseChanged = true
		}
	}
	return decChanged, raiseChanged
}

// collectEligible fills m.order with the units eligible for a raise, in
// unit order. Apply and ApplyMasked both reach here with bitwise
// identical (powerNow, caps), so both collect the same list and consume
// the same PRNG draws — the alignment the masked path's equivalence
// contract needs.
func (m *Module) collectEligible(powerNow, caps power.Vector) {
	if cap(m.order) < len(caps) {
		m.order = make([]int, 0, len(caps))
	}
	m.order = m.order[:0]
	thr := power.Watts(m.cfg.IncThreshold)
	for u := range caps {
		if powerNow[u] > caps[u]*thr {
			m.order = append(m.order, u)
		}
	}
}

// shuffleOrder permutes m.order uniformly at random. The PRNG is only
// consumed when the list is non-empty, and only len(order)-1 draws are
// made — deterministic given the module's seed and input history.
func (m *Module) shuffleOrder() {
	if len(m.order) == 0 {
		return
	}
	m.rng.Shuffle(len(m.order), func(i, j int) {
		m.order[i], m.order[j] = m.order[j], m.order[i]
	})
}
