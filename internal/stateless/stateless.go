// Package stateless implements the paper's Algorithm 1: a
// Multiplicative-Increase-Multiplicative-Decrease (MIMD) power-cap
// controller modeled on SLURM's power management plugin.
//
// The module looks only at the current power of each unit. Units drawing
// well below their cap have the cap cut multiplicatively (releasing budget),
// and units pressing against their cap receive a multiplicative raise from
// whatever budget remains, visited in random order so no unit is
// systematically favoured. Used alone this module *is* the SLURM baseline;
// inside DPS its output is the temporary allocation the cap-readjusting
// module corrects.
package stateless

import (
	"fmt"
	"math/rand"

	"dps/internal/power"
)

// Config holds Algorithm 1's four tuning parameters.
type Config struct {
	// IncThreshold is the fraction of its cap a unit's power must exceed to
	// be considered capped and eligible for an increase (inc_threshold).
	IncThreshold float64
	// DecThreshold is the fraction of its cap a unit's power must fall
	// below for the cap to be decreased (dec_threshold).
	DecThreshold float64
	// IncFactor is the multiplicative raise applied to an eligible unit's
	// cap (inc_percentile, > 1).
	IncFactor float64
	// DecFactor is the multiplicative cut applied to an idle unit's cap
	// (dec_percentile, < 1). The cap never drops below the unit's current
	// power.
	DecFactor float64
}

// DefaultConfig mirrors the behaviour of SLURM's plugin defaults scaled to
// a one-second decision loop: treat a unit as capped when it is within 5 %
// of its cap, reclaim budget when it draws less than 80 % of its cap,
// raise caps 5 % per step and cut them 15 % per step. The conservative
// raise is what makes the pure stateless policy slow to follow fast phase
// transitions (the behaviour DPS's priority mechanism fixes); raising it
// is an ablation, not a fairness fix, because the stuck-at-cap starvation
// of Figure 1 persists at any rate.
func DefaultConfig() Config {
	return Config{
		IncThreshold: 0.95,
		DecThreshold: 0.80,
		IncFactor:    1.05,
		DecFactor:    0.85,
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.IncThreshold <= 0 || c.IncThreshold > 1:
		return fmt.Errorf("stateless: IncThreshold %v outside (0,1]", c.IncThreshold)
	case c.DecThreshold < 0 || c.DecThreshold >= 1:
		return fmt.Errorf("stateless: DecThreshold %v outside [0,1)", c.DecThreshold)
	case c.DecThreshold >= c.IncThreshold:
		return fmt.Errorf("stateless: DecThreshold %v >= IncThreshold %v", c.DecThreshold, c.IncThreshold)
	case c.IncFactor <= 1:
		return fmt.Errorf("stateless: IncFactor %v must exceed 1", c.IncFactor)
	case c.DecFactor <= 0 || c.DecFactor >= 1:
		return fmt.Errorf("stateless: DecFactor %v outside (0,1)", c.DecFactor)
	}
	return nil
}

// Module is a reusable MIMD controller. It is deterministic given its seed:
// the random visiting order of the cap-increasing loop comes from an owned
// PRNG so experiments are reproducible.
type Module struct {
	cfg   Config
	rng   *rand.Rand
	order []int // scratch permutation, reused across steps
}

// New returns a module with the given configuration and seed.
func New(cfg Config, seed int64) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Module{cfg: cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// Config returns the module's configuration.
func (m *Module) Config() Config { return m.cfg }

// Apply runs one MIMD step: given each unit's current power it mutates caps
// in place, never letting the sum of caps exceed budget.Total nor any cap
// leave [budget.UnitMin, budget.UnitMax]. changed[u] reports whether unit
// u's cap moved this step.
//
// Deviation from the paper's pseudocode (documented in DESIGN.md): the
// increase loop raises a cap to min(cap·IncFactor, cap+avail, UnitMax) and
// deducts only the delta from the available budget; the paper's literal
// text would overwrite the cap with the leftover budget and double-charge
// it.
func (m *Module) Apply(powerNow power.Vector, caps power.Vector, budget power.Budget, changed []bool) []bool {
	n := len(caps)
	if len(powerNow) != n {
		panic(fmt.Sprintf("stateless: %d readings for %d caps", len(powerNow), n))
	}
	if cap(changed) < n {
		changed = make([]bool, n)
	}
	changed = changed[:n]
	for i := range changed {
		changed[i] = false
	}

	// First loop: decrease caps of units drawing well below them.
	for u := 0; u < n; u++ {
		if powerNow[u] < caps[u]*power.Watts(m.cfg.DecThreshold) {
			next := caps[u] * power.Watts(m.cfg.DecFactor)
			if powerNow[u] > next {
				next = powerNow[u]
			}
			if next < budget.UnitMin {
				next = budget.UnitMin
			}
			if next != caps[u] {
				caps[u] = next
				changed[u] = true
			}
		}
	}

	// Second loop: increase caps of capped units, in random order.
	avail := budget.Total - caps.Sum()
	if avail <= 0 {
		return changed
	}
	m.shuffleOrder(n)
	for _, u := range m.order {
		if avail <= 0 {
			break
		}
		if powerNow[u] > caps[u]*power.Watts(m.cfg.IncThreshold) {
			next := caps[u] * power.Watts(m.cfg.IncFactor)
			if max := caps[u] + avail; next > max {
				next = max
			}
			if next > budget.UnitMax {
				next = budget.UnitMax
			}
			if next > caps[u] {
				avail -= next - caps[u]
				caps[u] = next
				changed[u] = true
			}
		}
	}
	return changed
}

// shuffleOrder refreshes m.order with a uniform random permutation of
// [0,n), reusing the backing array.
func (m *Module) shuffleOrder(n int) {
	if cap(m.order) < n {
		m.order = make([]int, n)
	}
	m.order = m.order[:n]
	for i := range m.order {
		m.order[i] = i
	}
	m.rng.Shuffle(n, func(i, j int) {
		m.order[i], m.order[j] = m.order[j], m.order[i]
	})
}
