// Package sched adds a job-scheduling substrate on top of the cluster
// simulator: a FIFO queue of workload jobs dispatched onto free clusters,
// all sharing one power budget under one power manager. The paper
// evaluates co-executed pairs; this generalizes to the steady job streams
// real overprovisioned systems run, the setting in which prior work
// (Ellsworth et al., "Dynamic power sharing for higher job throughput",
// SC '15, cited in §2.3) measures power management as *throughput*:
// makespan, turnaround, and waiting time over a whole job batch.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"dps/internal/cluster"
	"dps/internal/core"
	"dps/internal/metrics"
	"dps/internal/power"
	"dps/internal/sim"
	"dps/internal/workload"
)

// Job is one queued workload execution.
type Job struct {
	// ID is the job's position in the submission order.
	ID int
	// Workload is what runs.
	Workload *workload.Spec
	// Arrival is when the job enters the queue.
	Arrival power.Seconds
}

// Config describes a batch-scheduling experiment.
type Config struct {
	// Machine is the simulated platform. Unlike the pair engine, any
	// cluster count works; each job occupies one whole cluster.
	Machine cluster.Config
	// Budget is the cluster-wide power envelope (zero = 110 W per socket).
	Budget power.Budget
	// Jobs is the submission list (sorted by Arrival internally).
	Jobs []Job
	// DT is the decision interval (default 1 s).
	DT power.Seconds
	// Gap is the idle time a cluster needs between jobs (teardown/setup).
	Gap power.Seconds
	// Seed drives workload jitter and manager tie-breaking.
	Seed int64
	// MaxTime aborts a runaway experiment (zero = generous bound).
	MaxTime power.Seconds
}

func (c Config) withDefaults() Config {
	if c.Machine.Clusters == 0 {
		c.Machine = cluster.DefaultConfig()
		c.Machine.Seed = c.Seed
	}
	if c.Budget.Total == 0 {
		units := c.Machine.Units()
		c.Budget = power.Budget{
			Total:   power.Watts(units) * 110,
			UnitMax: c.Machine.Rapl.TDP,
			UnitMin: c.Machine.Rapl.MinCap,
		}
	}
	if c.DT == 0 {
		c.DT = 1
	}
	if c.Gap == 0 {
		c.Gap = 8
	}
	if c.MaxTime == 0 {
		var total float64
		for _, j := range c.Jobs {
			total += float64(j.Workload.TableDuration)
		}
		// Serial execution on one cluster is the worst case; quadruple it.
		c.MaxTime = power.Seconds(total*4 + 3600)
	}
	return c
}

// Validate reports whether the experiment is runnable.
func (c Config) Validate() error {
	if len(c.Jobs) == 0 {
		return fmt.Errorf("sched: no jobs")
	}
	for _, j := range c.Jobs {
		if j.Workload == nil {
			return fmt.Errorf("sched: job %d has no workload", j.ID)
		}
		if j.Arrival < 0 {
			return fmt.Errorf("sched: job %d arrives at negative time %v", j.ID, j.Arrival)
		}
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	return c.Budget.Validate(c.Machine.Units())
}

// JobResult is one completed job's timing.
type JobResult struct {
	Job
	// Start is when the job began executing on a cluster.
	Start power.Seconds
	// End is when it completed.
	End power.Seconds
	// Wait = Start − Arrival (queueing delay).
	Wait power.Seconds
	// Duration = End − Start (execution time under the manager's caps).
	Duration power.Seconds
	// Cluster is where it ran.
	Cluster int
}

// Result aggregates a batch run.
type Result struct {
	Manager string
	Jobs    []JobResult
	// Makespan is when the last job finished.
	Makespan power.Seconds
	// MeanTurnaround averages End − Arrival.
	MeanTurnaround power.Seconds
	// MeanWait averages queueing delay.
	MeanWait power.Seconds
	// ThroughputPerHour is completed jobs per simulated hour.
	ThroughputPerHour float64
	// Steps and BudgetViolations mirror the pair engine.
	Steps            int
	BudgetViolations int
	TimedOut         bool
}

// Run executes the batch under the manager the factory builds.
func Run(cfg Config, factory sim.ManagerFactory) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	mach, err := cluster.NewMachine(cfg.Machine)
	if err != nil {
		return Result{}, err
	}
	mgr, err := factory(mach.Units(), cfg.Budget, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	if err := mach.ApplyCaps(mgr.Caps()); err != nil {
		return Result{}, err
	}

	queue := append([]Job(nil), cfg.Jobs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })

	type slot struct {
		job       Job
		busy      bool
		freeAt    power.Seconds
		startedAt power.Seconds
	}
	slots := make([]slot, mach.NumClusters())
	rng := rand.New(rand.NewSource(cfg.Seed*2_000_003 + 17))

	res := Result{Manager: mgr.Name()}
	var t power.Seconds
	eps := power.Watts(1e-6)

	for len(res.Jobs) < len(cfg.Jobs) {
		if t >= cfg.MaxTime {
			res.TimedOut = true
			break
		}
		// Dispatch arrived jobs onto free clusters (FIFO).
		for ci := range slots {
			if slots[ci].busy || t < slots[ci].freeAt || len(queue) == 0 {
				continue
			}
			if queue[0].Arrival > t {
				break // FIFO: the head hasn't arrived yet
			}
			job := queue[0]
			queue = queue[1:]
			mach.Cluster(ci).SetRun(workload.NewRun(job.Workload, rng))
			slots[ci] = slot{job: job, busy: true, startedAt: t}
		}

		readings, err := mach.Step(cfg.DT)
		if err != nil {
			return Result{}, err
		}

		// Harvest completions.
		for ci := range slots {
			if !slots[ci].busy {
				continue
			}
			run := mach.Cluster(ci).Run()
			if run == nil || !run.Done() {
				continue
			}
			end := t + cfg.DT
			jr := JobResult{
				Job:      slots[ci].job,
				Start:    slots[ci].startedAt,
				End:      end,
				Wait:     slots[ci].startedAt - slots[ci].job.Arrival,
				Duration: run.Elapsed(),
				Cluster:  ci,
			}
			res.Jobs = append(res.Jobs, jr)
			mach.Cluster(ci).SetRun(nil)
			slots[ci] = slot{freeAt: end + cfg.Gap}
		}

		caps := mgr.Decide(core.Snapshot{
			Power:    readings,
			Interval: cfg.DT,
			Demand:   mach.TrueDemands(),
		})
		if caps.Sum() > cfg.Budget.Total+eps {
			res.BudgetViolations++
		}
		if err := mach.ApplyCaps(caps); err != nil {
			return Result{}, err
		}
		t += cfg.DT
		res.Steps++
	}

	sort.Slice(res.Jobs, func(i, j int) bool { return res.Jobs[i].ID < res.Jobs[j].ID })
	var turn, wait []power.Seconds
	for _, j := range res.Jobs {
		if j.End > res.Makespan {
			res.Makespan = j.End
		}
		turn = append(turn, j.End-j.Arrival)
		wait = append(wait, j.Wait)
	}
	res.MeanTurnaround = metrics.MeanDurations(turn)
	res.MeanWait = metrics.MeanDurations(wait)
	if res.Makespan > 0 {
		res.ThroughputPerHour = float64(len(res.Jobs)) / float64(res.Makespan) * 3600
	}
	return res, nil
}

// RandomBatch draws n jobs from the given specs with exponential
// inter-arrival times of the given mean, deterministically for a seed.
func RandomBatch(specs []*workload.Spec, n int, meanInterarrival power.Seconds, seed int64) ([]Job, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sched: no workloads to draw from")
	}
	if n <= 0 {
		return nil, fmt.Errorf("sched: non-positive batch size %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	var jobs []Job
	var t power.Seconds
	for i := 0; i < n; i++ {
		jobs = append(jobs, Job{
			ID:       i,
			Workload: specs[rng.Intn(len(specs))],
			Arrival:  t,
		})
		t += power.Seconds(rng.ExpFloat64() * float64(meanInterarrival))
	}
	return jobs, nil
}
