package sched

import (
	"testing"

	"dps/internal/cluster"
	"dps/internal/power"
	"dps/internal/sim"
	"dps/internal/workload"
)

// smallMachine: 4 clusters × 1 node × 2 sockets, noise-free for exact
// scheduling assertions.
func smallMachine(seed int64) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Clusters = 4
	cfg.NodesPerCluster = 1
	cfg.SocketsPerNode = 2
	cfg.Rapl.NoiseStdDev = 0
	cfg.DemandJitterSD = 0
	cfg.Seed = seed
	return cfg
}

func lowJobs(t *testing.T, n int) []Job {
	t.Helper()
	sortW, err := workload.ByName("Sort")
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: i, Workload: sortW, Arrival: 0}
	}
	return jobs
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("Validate accepted an empty config")
	}
	cfg := Config{Machine: smallMachine(1), Jobs: []Job{{ID: 0}}}
	cfg.Budget = power.Budget{Total: 880, UnitMax: 165, UnitMin: 10}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a job without a workload")
	}
	w, _ := workload.ByName("Sort")
	cfg.Jobs = []Job{{ID: 0, Workload: w, Arrival: -1}}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a negative arrival")
	}
}

func TestBatchCompletesAllJobs(t *testing.T) {
	cfg := Config{Machine: smallMachine(1), Jobs: lowJobs(t, 10), Seed: 1}
	res, err := Run(cfg, sim.ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("batch timed out")
	}
	if len(res.Jobs) != 10 {
		t.Fatalf("completed %d/10 jobs", len(res.Jobs))
	}
	if res.BudgetViolations != 0 {
		t.Errorf("budget violations: %d", res.BudgetViolations)
	}
	for _, j := range res.Jobs {
		if j.Start < j.Arrival {
			t.Errorf("job %d started before it arrived", j.ID)
		}
		if j.End <= j.Start || j.Duration <= 0 {
			t.Errorf("job %d degenerate timing: %+v", j.ID, j)
		}
		if j.Cluster < 0 || j.Cluster >= 4 {
			t.Errorf("job %d ran on cluster %d", j.ID, j.Cluster)
		}
	}
	if res.Makespan <= 0 || res.ThroughputPerHour <= 0 {
		t.Errorf("aggregates: makespan=%v throughput=%v", res.Makespan, res.ThroughputPerHour)
	}
}

func TestParallelismAcrossClusters(t *testing.T) {
	// 4 identical jobs on 4 clusters: they must run concurrently, so the
	// makespan is near one job's duration, not four.
	cfg := Config{Machine: smallMachine(1), Jobs: lowJobs(t, 4), Seed: 1}
	res, err := Run(cfg, sim.ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	oneJob := res.Jobs[0].Duration
	if res.Makespan > oneJob*2 {
		t.Errorf("makespan %v for 4 parallel jobs of ~%v each; no parallelism?", res.Makespan, oneJob)
	}
	clustersUsed := map[int]bool{}
	for _, j := range res.Jobs {
		clustersUsed[j.Cluster] = true
	}
	if len(clustersUsed) != 4 {
		t.Errorf("only %d clusters used for 4 simultaneous jobs", len(clustersUsed))
	}
}

func TestFIFOOrderRespected(t *testing.T) {
	// More jobs than clusters with simultaneous arrival: start times must
	// be non-decreasing in ID order (FIFO).
	cfg := Config{Machine: smallMachine(1), Jobs: lowJobs(t, 9), Seed: 1}
	res, err := Run(cfg, sim.ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Jobs); i++ {
		if res.Jobs[i].Start < res.Jobs[i-1].Start {
			t.Errorf("job %d started at %v before job %d at %v",
				res.Jobs[i].ID, res.Jobs[i].Start, res.Jobs[i-1].ID, res.Jobs[i-1].Start)
		}
	}
	// Later jobs must actually have waited.
	if res.Jobs[8].Wait <= 0 {
		t.Errorf("9th job on 4 clusters waited %v", res.Jobs[8].Wait)
	}
}

func TestArrivalsDelayDispatch(t *testing.T) {
	w, _ := workload.ByName("Sort")
	jobs := []Job{
		{ID: 0, Workload: w, Arrival: 0},
		{ID: 1, Workload: w, Arrival: 100},
	}
	cfg := Config{Machine: smallMachine(1), Jobs: jobs, Seed: 1}
	res, err := Run(cfg, sim.ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].Start < 100 {
		t.Errorf("job 1 started at %v, before its arrival at 100", res.Jobs[1].Start)
	}
}

func TestMaxTimeAborts(t *testing.T) {
	cfg := Config{Machine: smallMachine(1), Jobs: lowJobs(t, 50), Seed: 1, MaxTime: 30}
	res, err := Run(cfg, sim.ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("MaxTime stop not reported")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		cfg := Config{Machine: smallMachine(3), Jobs: lowJobs(t, 6), Seed: 3}
		res, err := Run(cfg, sim.DPSFactory())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Steps != b.Steps {
		t.Fatalf("same-seed batches diverged: %v/%d vs %v/%d", a.Makespan, a.Steps, b.Makespan, b.Steps)
	}
}

func TestRandomBatch(t *testing.T) {
	specs := workload.LowSpark()
	jobs, err := RandomBatch(specs, 20, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 20 {
		t.Fatalf("%d jobs", len(jobs))
	}
	for i, j := range jobs {
		if j.ID != i {
			t.Errorf("job %d has ID %d", i, j.ID)
		}
		if j.Workload == nil {
			t.Errorf("job %d has no workload", i)
		}
		if i > 0 && j.Arrival < jobs[i-1].Arrival {
			t.Errorf("arrivals not monotone at %d", i)
		}
	}
	// Determinism.
	again, err := RandomBatch(specs, 20, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Arrival != again[i].Arrival || jobs[i].Workload != again[i].Workload {
			t.Fatal("RandomBatch not deterministic for a seed")
		}
	}
	if _, err := RandomBatch(nil, 5, 30, 1); err == nil {
		t.Error("RandomBatch accepted an empty spec list")
	}
	if _, err := RandomBatch(specs, 0, 30, 1); err == nil {
		t.Error("RandomBatch accepted a zero batch size")
	}
}

// TestDPSImprovesThroughput is the headline scheduling assertion: on a
// contended batch of high-power jobs, DPS's makespan and mean turnaround
// beat SLURM's.
func TestDPSImprovesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a contended batch under 3 managers")
	}
	mids := workload.MidHighSpark()
	var specs []*workload.Spec
	for _, s := range mids {
		if s.Name == "Bayes" || s.Name == "RF" || s.Name == "LR" {
			specs = append(specs, s)
		}
	}
	jobs, err := RandomBatch(specs, 8, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(f sim.ManagerFactory) Result {
		cfg := Config{Machine: smallMachine(5), Jobs: jobs, Seed: 5}
		res, err := Run(cfg, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatal("batch timed out")
		}
		if res.BudgetViolations != 0 {
			t.Fatalf("%s: %d budget violations", res.Manager, res.BudgetViolations)
		}
		return res
	}
	constant := run(sim.ConstantFactory())
	slurm := run(sim.SLURMFactory())
	dps := run(sim.DPSFactory())
	t.Logf("makespan: constant=%v slurm=%v dps=%v", constant.Makespan, slurm.Makespan, dps.Makespan)
	t.Logf("mean turnaround: constant=%v slurm=%v dps=%v",
		constant.MeanTurnaround, slurm.MeanTurnaround, dps.MeanTurnaround)
	if dps.MeanTurnaround > slurm.MeanTurnaround*1.01 {
		t.Errorf("DPS mean turnaround %v above SLURM %v", dps.MeanTurnaround, slurm.MeanTurnaround)
	}
	if dps.MeanTurnaround > constant.MeanTurnaround*1.01 {
		t.Errorf("DPS mean turnaround %v above constant %v", dps.MeanTurnaround, constant.MeanTurnaround)
	}
}
