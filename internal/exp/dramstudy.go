package exp

import (
	"dps/internal/dram"
	"dps/internal/power"
)

// DRAMStudy runs the two-plane power-partitioning micro-study (E15; Sarood
// et al., CLUSTER '13, cited in §2.1): compute-, memory-, and mixed-phase
// workloads on one socket under a shared package+DRAM budget, split
// statically (85/15), proportionally to measured draw, or dynamically by
// DPS's at-cap methodology. Values are completion times in seconds (lower
// is better).
func DRAMStudy(opts Options) (Result, error) {
	opts = opts.withDefaults()
	const budget = power.Watts(130)
	limits := dram.DefaultLimits()
	splitters := []dram.Splitter{
		dram.Static{CPUFraction: 0.85},
		dram.Proportional{Headroom: 3},
		dram.DefaultDynamic(),
	}

	res := Result{
		ID:      "DRAM",
		Title:   "Package/DRAM plane splitting: completion seconds per splitter",
		Columns: []string{},
	}
	for _, sp := range splitters {
		res.Columns = append(res.Columns, sp.Name())
	}
	for _, w := range dram.Catalog() {
		row := Row{Name: w.Name, Values: map[string]float64{}}
		for _, sp := range splitters {
			out, err := dram.Run(w, budget, limits, sp, 2, opts.Seed)
			if err != nil {
				return Result{}, err
			}
			if out.BudgetViolations > 0 {
				return Result{}, errBudget(w.Name, sp.Name())
			}
			row.Values[sp.Name()] = float64(out.Duration)
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"130 W per-socket plane budget; dynamic splitting recovers the static split's losses on memory-bound phases")
	return res, nil
}

type budgetErr struct{ workload, splitter string }

func (e budgetErr) Error() string {
	return "exp: dram study " + e.workload + " under " + e.splitter + " violated the plane budget"
}

func errBudget(workload, splitter string) error {
	return budgetErr{workload, splitter}
}
