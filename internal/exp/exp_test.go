package exp

import (
	"strings"
	"testing"
)

// quickOpts keeps experiment tests fast while preserving the qualitative
// shape; the bench harness and cmd/dps-sim run the paper-scale versions.
func quickOpts() Options { return Options{Repeats: 2, Seed: 11} }

func TestResultFormat(t *testing.T) {
	r := Result{
		ID:      "Test",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows: []Row{
			{Name: "w1", Values: map[string]float64{"a": 1.5}},
		},
		Notes: []string{"hello"},
	}
	out := r.Format()
	for _, want := range []string{"Test", "demo", "w1", "1.5000", "hello", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Motivation(t *testing.T) {
	mot, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(mot.Steps) != 4 {
		t.Fatalf("policies simulated: %d", len(mot.Steps))
	}
	// Constant never moves.
	for _, st := range mot.Steps["Constant"] {
		if st.Caps[0] != 110 || st.Caps[1] != 110 {
			t.Fatalf("constant caps moved: %+v", st)
		}
	}
	// The budget holds for every policy at every step.
	for pol, steps := range mot.Steps {
		for _, st := range steps {
			if st.Caps.Sum() > mot.Budget.Total+1e-6 {
				t.Errorf("%s step %d: caps %v exceed the budget", pol, st.T, st.Caps)
			}
		}
	}
	// The figure's story: the stateless policy ends skewed; DPS and the
	// oracle end balanced.
	dpsImb := mot.FinalImbalance("DPS")
	slurmImb := mot.FinalImbalance("SLURM")
	oracleImb := mot.FinalImbalance("Oracle")
	if dpsImb > 5 {
		t.Errorf("DPS final imbalance %v W, want balanced", dpsImb)
	}
	if oracleImb > 5 {
		t.Errorf("oracle final imbalance %v W, want balanced", oracleImb)
	}
	if slurmImb < 15 {
		t.Errorf("SLURM final imbalance %v W, want the stateless skew (> 15 W)", slurmImb)
	}
	if out := mot.Format(); !strings.Contains(out, "dps") || !strings.Contains(out, "demand0") {
		t.Error("Format output incomplete")
	}
}

func TestFigure2Traces(t *testing.T) {
	traces, err := Figure2(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("Figure2 returned %d traces, want LDA/Bayes/LR", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Power) < 100 {
			t.Errorf("%s trace only %d samples", tr.Workload, len(tr.Power))
		}
		if out := tr.Format(80); !strings.Contains(out, tr.Workload) {
			t.Errorf("%s: Format output missing the name", tr.Workload)
		}
	}
	if _, err := Traces(1, 1, "NoSuchWorkload"); err == nil {
		t.Error("Traces accepted an unknown workload")
	}
}

func TestTablesCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every workload under constant allocation")
	}
	opts := Options{Repeats: 1, Seed: 11}
	for _, tc := range []struct {
		name string
		run  func(Options) (Result, error)
		rows int
	}{
		{"Table2", Table2, 11},
		{"Table4", Table4, 8},
	} {
		res, err := tc.run(opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.Rows) != tc.rows {
			t.Fatalf("%s: %d rows, want %d", tc.name, len(res.Rows), tc.rows)
		}
		for _, row := range res.Rows {
			measured := row.Values["duration_s"]
			paper := row.Values["paper_s"]
			if rel := abs(measured-paper) / paper; rel > 0.15 {
				t.Errorf("%s %s: measured %.1f s vs paper %.1f s (%.0f%% off)",
					tc.name, row.Name, measured, paper, rel*100)
			}
			if abs(row.Values["above110"]-row.Values["paper_f"]) > 0.08 {
				t.Errorf("%s %s: above-110W %.3f vs paper %.3f",
					tc.name, row.Name, row.Values["above110"], row.Values["paper_f"])
			}
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 7 contended pairs under 3 managers")
	}
	a, b, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 7 || len(b.Rows) != 7 {
		t.Fatalf("rows: 5a=%d 5b=%d, want 7 each", len(a.Rows), len(b.Rows))
	}
	for _, row := range a.Rows {
		// Paper: DPS delivers the same performance or improvements
		// compared to constant allocation (lower bound).
		if row.Values["DPS"] < 0.98 {
			t.Errorf("5a %s: DPS gain %.3f below the constant-allocation lower bound", row.Name, row.Values["DPS"])
		}
	}
	slurmPenalized := 0
	for _, row := range a.Rows {
		if row.Values["SLURM"] < 0.99 {
			slurmPenalized++
		}
	}
	// Paper: SLURM penalizes all paired workloads except GMM itself.
	if slurmPenalized < 5 {
		t.Errorf("SLURM penalized only %d/7 workloads; expected the stateless penalty", slurmPenalized)
	}
	for _, row := range b.Rows {
		if row.Values["DPS"] < row.Values["SLURM"]-0.005 {
			t.Errorf("5b %s: DPS %.3f below SLURM %.3f", row.Name, row.Values["DPS"], row.Values["SLURM"])
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 28 pairs under 4 managers")
	}
	res, err := Figure4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(res.Rows))
	}
	var dpsSum, oracleSum float64
	for _, row := range res.Rows {
		dps, oracle := row.Values["DPS"], row.Values["Oracle"]
		dpsSum += dps
		oracleSum += oracle
		// Low utility: DPS at or above constant for every workload.
		if dps < 0.99 {
			t.Errorf("%s: DPS gain %.3f below constant at low utility", row.Name, dps)
		}
		// The oracle caps what any manager can achieve (within noise).
		if dps > oracle+0.03 {
			t.Errorf("%s: DPS %.3f implausibly above the oracle %.3f", row.Name, dps, oracle)
		}
	}
	// Paper: both DPS and the oracle improve 5–8 % on average.
	if mean := dpsSum / 7; mean < 1.03 || mean > 1.12 {
		t.Errorf("DPS mean low-utility gain %.3f outside the paper's 5–8%% band (±3%%)", mean)
	}
	// Paper: SLURM loses on the high-frequency workloads (LR −4 %).
	for _, row := range res.Rows {
		if row.Name == "LR" && row.Values["SLURM"] > 1.0 {
			t.Errorf("LR under SLURM gained %.3f; the paper's high-frequency penalty is absent", row.Values["SLURM"])
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 56 pairs under 3 managers")
	}
	a, b, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 7 || len(b.Rows) != 8 {
		t.Fatalf("rows: 6a=%d 6b=%d", len(a.Rows), len(b.Rows))
	}
	// Paper: DPS improves every Spark group and every NPB group, and
	// always beats SLURM.
	for _, res := range []Result{a, b} {
		for _, row := range res.Rows {
			if row.Values["DPS"] < 1.0 {
				t.Errorf("%s %s: DPS gain %.3f below constant", res.ID, row.Name, row.Values["DPS"])
			}
			if row.Values["DPS"] <= row.Values["SLURM"] {
				t.Errorf("%s %s: DPS %.3f not above SLURM %.3f", res.ID, row.Name, row.Values["DPS"], row.Values["SLURM"])
			}
		}
	}
	// Paper §6.3: SLURM does comparatively better with short-duration NPB
	// kernels (FT, MG) than with long ones (SP, BT).
	short := (b.rowValue(t, "FT", "SLURM") + b.rowValue(t, "MG", "SLURM")) / 2
	long := (b.rowValue(t, "SP", "SLURM") + b.rowValue(t, "BT", "SLURM")) / 2
	if short <= long {
		t.Errorf("SLURM short-NPB gain %.3f not above long-NPB gain %.3f", short, long)
	}
}

// rowValue fetches one cell, failing the test if absent.
func (r Result) rowValue(t *testing.T, name, col string) float64 {
	t.Helper()
	for _, row := range r.Rows {
		if row.Name == name {
			if v, ok := row.Values[col]; ok {
				return v
			}
		}
	}
	t.Fatalf("%s: no value for %s/%s", r.ID, name, col)
	return 0
}

func TestFigure7Fairness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates both contended groups")
	}
	res, err := Figure7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	get := func(name string) float64 { return res.rowValue(t, name, "mean") }
	// Paper §6.4: DPS is fairer than SLURM in both contended groups.
	if get("high-utility/DPS") <= get("high-utility/SLURM") {
		t.Errorf("high utility: DPS fairness %.3f not above SLURM %.3f",
			get("high-utility/DPS"), get("high-utility/SLURM"))
	}
	if get("spark-npb/DPS") <= get("spark-npb/SLURM") {
		t.Errorf("spark-npb: DPS fairness %.3f not above SLURM %.3f",
			get("spark-npb/DPS"), get("spark-npb/SLURM"))
	}
	// DPS fairness near the paper's 0.96–0.97.
	if get("high-utility/DPS") < 0.90 {
		t.Errorf("high-utility DPS fairness %.3f, paper reports 0.97", get("high-utility/DPS"))
	}
}

func TestSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates both contended groups")
	}
	res, err := Summary(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Values["mean"] <= 0 {
			t.Errorf("%s: mean DPS-over-SLURM gain %.3f, want positive (paper: 5.4%%/8.0%%)",
				row.Name, row.Values["mean"])
		}
		// At the test's 2 repeats, Spark run-to-run variance can push a
		// single pair slightly negative; at the paper's scale (Repeats ≥ 4)
		// the minimum is positive (+1.7 %, matching the paper exactly).
		if row.Values["min"] < -0.04 {
			t.Errorf("%s: min gain %.3f; the paper reports DPS always outperforms SLURM", row.Name, row.Values["min"])
		}
	}
}

func TestOverhead(t *testing.T) {
	res, err := Overhead([]int{20, 200}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		us := row.Values["us_per_step"]
		// A one-second decision loop leaves 10^6 µs; the controller must
		// use a tiny fraction even at 200 units.
		if us > 100_000 {
			t.Errorf("%s: %v µs per decision step", row.Name, us)
		}
		if row.Values["bytes_per_node"] != 12 {
			t.Errorf("%s: %v bytes per node per round, want 12 (2 sockets × 3 B × 2 dirs)",
				row.Name, row.Values["bytes_per_node"])
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 9 pairs under 9 manager variants")
	}
	res, err := Ablations(Options{Repeats: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var mean Row
	for _, row := range res.Rows {
		if row.Name == "MEAN" {
			mean = row
		}
	}
	if mean.Values == nil {
		t.Fatal("no MEAN row")
	}
	full := mean.Values["DPS"]
	if full < 1.0 {
		t.Errorf("full DPS mean gain %.3f below constant", full)
	}
	// Removing the priority machinery must hurt the most (it reduces DPS
	// to a stateless controller).
	if mean.Values["NoPrio"] >= full {
		t.Errorf("NoPrio ablation %.3f not below full DPS %.3f", mean.Values["NoPrio"], full)
	}
	// No ablation should *beat* full DPS by a meaningful margin.
	for name, v := range mean.Values {
		if v > full+0.02 {
			t.Errorf("ablation %s mean %.3f beats full DPS %.3f", name, v, full)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
