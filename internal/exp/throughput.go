package exp

import (
	"fmt"

	"dps/internal/cluster"
	"dps/internal/sched"
	"dps/internal/sim"
	"dps/internal/workload"
)

// Throughput measures power management as job throughput: a randomized
// batch of mid/high-power Spark jobs streams through a 4-cluster machine
// under one shared power budget, and each manager is scored on makespan,
// mean turnaround, and jobs per hour. This is the job-stream setting in
// which prior work (Ellsworth et al., SC '15) motivates dynamic power
// sharing; the pair experiments of §6 are its two-job special case.
func Throughput(opts Options) (Result, error) {
	opts = opts.withDefaults()

	machine := cluster.DefaultConfig()
	machine.Clusters = 4
	machine.NodesPerCluster = 2
	machine.SocketsPerNode = 2
	machine.Seed = opts.Seed

	var specs []*workload.Spec
	for _, s := range workload.MidHighSpark() {
		switch s.Name {
		case "Bayes", "RF", "LR", "Linear":
			specs = append(specs, s)
		}
	}
	// Repeats scales the batch size: 4 jobs per repeat keeps the run
	// bounded while saturating the 4 clusters.
	jobs, err := sched.RandomBatch(specs, 4*opts.Repeats, 45, opts.Seed)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:      "Throughput",
		Title:   "Batch job stream: makespan / turnaround / throughput per manager",
		Columns: []string{"makespan_s", "turnaround_s", "wait_s", "jobs_per_h"},
	}
	managers := []struct {
		name    string
		factory sim.ManagerFactory
	}{
		{"Constant", sim.ConstantFactory()},
		{"SLURM", sim.SLURMFactory()},
		{"DPS", sim.DPSFactory()},
		{"HierDPS", sim.HierarchicalDPSFactory(4, 4)},
	}
	var constantTurn, dpsTurn, slurmTurn float64
	for _, m := range managers {
		cfg := sched.Config{Machine: machine, Jobs: jobs, Seed: opts.Seed}
		out, err := sched.Run(cfg, m.factory)
		if err != nil {
			return Result{}, fmt.Errorf("exp: throughput under %s: %w", m.name, err)
		}
		if out.TimedOut {
			return Result{}, fmt.Errorf("exp: throughput under %s timed out", m.name)
		}
		if out.BudgetViolations > 0 {
			return Result{}, fmt.Errorf("exp: throughput under %s violated the budget", m.name)
		}
		res.Rows = append(res.Rows, Row{
			Name: m.name,
			Values: map[string]float64{
				"makespan_s":   float64(out.Makespan),
				"turnaround_s": float64(out.MeanTurnaround),
				"wait_s":       float64(out.MeanWait),
				"jobs_per_h":   out.ThroughputPerHour,
			},
		})
		switch m.name {
		case "Constant":
			constantTurn = float64(out.MeanTurnaround)
		case "SLURM":
			slurmTurn = float64(out.MeanTurnaround)
		case "DPS":
			dpsTurn = float64(out.MeanTurnaround)
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d jobs over 4 clusters, shared %d-socket budget", len(jobs), machine.Units()),
		fmt.Sprintf("DPS turnaround vs constant %+.1f%%, vs SLURM %+.1f%%",
			(dpsTurn/constantTurn-1)*100, (dpsTurn/slurmTurn-1)*100))
	return res, nil
}
