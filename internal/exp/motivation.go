package exp

import (
	"fmt"
	"strings"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/sim"
)

// MotivationStep is one timestep of the Figure 1 scenario for one policy.
type MotivationStep struct {
	T       int
	Demand  power.Vector // the two units' uncapped demand
	Power   power.Vector // what each unit actually drew
	Caps    power.Vector // caps the policy assigned for the next step
	Manager string
}

// MotivationResult is the Figure 1 scenario replayed under every policy.
type MotivationResult struct {
	Budget   power.Budget
	Policies []string
	Steps    map[string][]MotivationStep
}

// Figure1 reproduces the paper's motivational example: a two-unit
// overprovisioned system where unit 0 ramps to maximum power two steps
// before unit 1, under a budget that cannot hold both at maximum. The
// stateless policy ends up starving unit 1 (it keeps the skewed
// allocation once both sit at their caps); the oracle and DPS converge to
// a balanced split.
//
// The schedule stretches the paper's five schematic timesteps so DPS has
// the few samples of history its priority module needs.
func Figure1() (MotivationResult, error) {
	const steps = 16
	budget := power.Budget{Total: 220, UnitMax: 165, UnitMin: 10}
	demand := func(t int) power.Vector {
		d := power.Vector{40, 40}
		if t >= 4 { // unit 0 ramps first
			d[0] = 165
		}
		switch { // unit 1 ramps two steps later, through an intermediate level
		case t >= 8:
			d[1] = 165
		case t >= 6:
			d[1] = 100
		}
		return d
	}

	factories := sim.StandardFactories(true)
	res := MotivationResult{
		Budget:   budget,
		Policies: []string{"Constant", "Oracle", "SLURM", "DPS"},
		Steps:    make(map[string][]MotivationStep),
	}
	for _, name := range res.Policies {
		mgr, err := factories[name](2, budget, 1)
		if err != nil {
			return MotivationResult{}, err
		}
		caps := mgr.Caps().Clone()
		var trace []MotivationStep
		for t := 0; t < steps; t++ {
			d := demand(t)
			drew := power.Vector{min2(d[0], caps[0]), min2(d[1], caps[1])}
			next := mgr.Decide(core.Snapshot{Power: drew, Interval: 1, Demand: d})
			trace = append(trace, MotivationStep{
				T: t, Demand: d.Clone(), Power: drew, Caps: next.Clone(), Manager: name,
			})
			caps = next.Clone()
		}
		res.Steps[name] = trace
	}
	return res, nil
}

func min2(a, b power.Watts) power.Watts {
	if a < b {
		return a
	}
	return b
}

// Format renders the scenario as a per-policy cap table.
func (m MotivationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — motivational example (budget %.0f W, unit max %.0f W)\n", m.Budget.Total, m.Budget.UnitMax)
	if len(m.Steps) == 0 {
		return b.String()
	}
	any := m.Steps[m.Policies[0]]
	fmt.Fprintf(&b, "  %-9s", "t:")
	for _, st := range any {
		fmt.Fprintf(&b, " %6d", st.T)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-9s", "demand0")
	for _, st := range any {
		fmt.Fprintf(&b, " %6.0f", st.Demand[0])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-9s", "demand1")
	for _, st := range any {
		fmt.Fprintf(&b, " %6.0f", st.Demand[1])
	}
	b.WriteByte('\n')
	for _, pol := range m.Policies {
		for u := 0; u < 2; u++ {
			fmt.Fprintf(&b, "  %-9s", fmt.Sprintf("%s c%d", shortPolicy(pol), u))
			for _, st := range m.Steps[pol] {
				fmt.Fprintf(&b, " %6.0f", st.Caps[u])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func shortPolicy(p string) string {
	switch p {
	case "Constant":
		return "const"
	case "Oracle":
		return "orcl"
	default:
		return strings.ToLower(p)
	}
}

// FinalImbalance returns |cap0 − cap1| at the last step for the given
// policy — the quantity Figure 1 is about: stateless stays skewed, DPS
// converges to balance.
func (m MotivationResult) FinalImbalance(policy string) power.Watts {
	trace := m.Steps[policy]
	if len(trace) == 0 {
		return 0
	}
	last := trace[len(trace)-1]
	return power.AbsDiff(last.Caps[0], last.Caps[1])
}
