// Package exp defines one entry per table and figure of the paper's
// evaluation (§6), each regenerating the corresponding rows from the
// simulated platform. DESIGN.md carries the experiment index (E1–E10)
// mapping each artifact to the modules and bench targets involved.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"dps/internal/cluster"
	"dps/internal/metrics"
	"dps/internal/power"
	"dps/internal/sim"
	"dps/internal/workload"
)

// defaultMachine returns the paper's platform seeded for one experiment.
func defaultMachine(seed int64) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// Options scales every experiment. The paper repeats each workload at
// least 10 times over 1,000+ machine-hours; the simulator replays the same
// protocol in seconds, so Repeats trades precision for runtime.
type Options struct {
	// Repeats is the minimum completed runs per workload per pair.
	Repeats int
	// Seed drives all randomness.
	Seed int64
	// Progress, if non-nil, receives one line per finished pair.
	Progress func(format string, args ...any)
}

// DefaultOptions runs 4 repeats per pair with a fixed seed.
func DefaultOptions() Options { return Options{Repeats: 4, Seed: 42} }

func (o Options) withDefaults() Options {
	if o.Repeats == 0 {
		o.Repeats = 4
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// Row is one labeled row of an experiment result: a workload (or pair)
// name mapping to one value per manager/column.
type Row struct {
	Name   string
	Values map[string]float64
}

// Result is a rendered experiment: an ID matching the paper artifact,
// ordered columns, and rows.
type Result struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
	// Notes carry derived aggregates ("mean DPS gain 8.0%") for
	// EXPERIMENTS.md.
	Notes []string
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	nameW := len("workload")
	for _, row := range r.Rows {
		if len(row.Name) > nameW {
			nameW = len(row.Name)
		}
	}
	fmt.Fprintf(&b, "  %-*s", nameW, "workload")
	for _, c := range r.Columns {
		fmt.Fprintf(&b, "  %10s", c)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-*s", nameW, row.Name)
		for _, c := range r.Columns {
			v, ok := row.Values[c]
			if !ok {
				fmt.Fprintf(&b, "  %10s", "-")
				continue
			}
			fmt.Fprintf(&b, "  %10.4f", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// pairOutcome bundles every manager's result for one workload pair.
type pairOutcome struct {
	a, b    *workload.Spec
	results map[string]sim.PairResult
}

// runPairAll executes one pair under each factory with a shared
// deterministic seed derived from the pair identity.
func runPairAll(opts Options, a, b *workload.Spec, factories map[string]sim.ManagerFactory) (pairOutcome, error) {
	out := pairOutcome{a: a, b: b, results: make(map[string]sim.PairResult, len(factories))}
	seed := opts.Seed
	for _, c := range a.Name + "|" + b.Name {
		seed = seed*131 + int64(c)
	}
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic execution order
	for _, name := range names {
		cfg := sim.PairConfig{
			WorkloadA: a,
			WorkloadB: b,
			Repeats:   opts.Repeats,
			Seed:      seed,
		}
		res, err := sim.RunPair(cfg, factories[name])
		if err != nil {
			return out, fmt.Errorf("exp: pair %s+%s under %s: %w", a.Name, b.Name, name, err)
		}
		if res.BudgetViolations > 0 {
			return out, fmt.Errorf("exp: pair %s+%s under %s violated the budget %d times", a.Name, b.Name, name, res.BudgetViolations)
		}
		out.results[name] = res
	}
	opts.progress("pair %s + %s done", a.Name, b.Name)
	return out, nil
}

// speedups returns the per-cluster speedups of manager mgr relative to the
// Constant result of the same pair: baselineHMean / hmean(runs under mgr).
func (p pairOutcome) speedups(mgr string) (sa, sb float64, err error) {
	base, ok := p.results["Constant"]
	if !ok {
		return 0, 0, fmt.Errorf("exp: pair %s+%s has no Constant baseline", p.a.Name, p.b.Name)
	}
	res, ok := p.results[mgr]
	if !ok {
		return 0, 0, fmt.Errorf("exp: pair %s+%s has no %s result", p.a.Name, p.b.Name, mgr)
	}
	sa, err = metrics.Speedup(power.Seconds(base.A.HMeanDuration), power.Seconds(res.A.HMeanDuration))
	if err != nil {
		return 0, 0, err
	}
	sb, err = metrics.Speedup(power.Seconds(base.B.HMeanDuration), power.Seconds(res.B.HMeanDuration))
	return sa, sb, err
}

// pairHMeanGain returns the harmonic mean of the two workloads' speedups
// under mgr, the paper's headline pair metric (Figures 5b and 6).
func (p pairOutcome) pairHMeanGain(mgr string) (float64, error) {
	sa, sb, err := p.speedups(mgr)
	if err != nil {
		return 0, err
	}
	return metrics.HMean([]float64{sa, sb}), nil
}
