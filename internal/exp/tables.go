package exp

import (
	"math/rand"

	"dps/internal/metrics"
	"dps/internal/power"
	"dps/internal/sim"
	"dps/internal/workload"
)

// tableFor measures each workload's baseline behaviour: the mean latency
// under constant 110 W/socket allocation (the paper's Duration column) and
// the fraction of uncapped time above 110 W (the Above-110W column). The
// constant-allocation run pairs the workload with itself — under fixed
// caps the partner cluster cannot influence the measurement.
func tableFor(opts Options, specs []*workload.Spec, id, title string) (Result, error) {
	opts = opts.withDefaults()
	res := Result{
		ID:      id,
		Title:   title,
		Columns: []string{"duration_s", "paper_s", "above110", "paper_f"},
	}
	constant := map[string]sim.ManagerFactory{"Constant": sim.ConstantFactory()}
	for _, spec := range specs {
		out, err := runPairAll(opts, spec, spec, constant)
		if err != nil {
			return Result{}, err
		}
		base := out.results["Constant"]
		durs := append([]sim.RunRecord{}, base.A.Runs...)
		durs = append(durs, base.B.Runs...)
		var ds []power.Seconds
		for _, r := range durs {
			ds = append(ds, r.Duration)
		}

		// Above-110W comes from the uncapped demand model directly.
		rng := rand.New(rand.NewSource(opts.Seed))
		var above []float64
		for i := 0; i < opts.Repeats; i++ {
			run := workload.NewRun(spec, rng)
			above = append(above, run.FractionAbove(110))
		}

		res.Rows = append(res.Rows, Row{
			Name: spec.Name,
			Values: map[string]float64{
				"duration_s": float64(metrics.MeanDurations(ds)),
				"paper_s":    float64(spec.TableDuration),
				"above110":   metrics.Mean(above),
				"paper_f":    spec.TableAbove110,
			},
		})
	}
	return res, nil
}

// Table2 reproduces the Spark benchmark workload table (paper Table 2).
func Table2(opts Options) (Result, error) {
	return tableFor(opts, workload.Spark(), "Table 2",
		"Spark workloads under constant 110 W: measured vs paper")
}

// Table4 reproduces the NPB workload table (paper Table 4).
func Table4(opts Options) (Result, error) {
	return tableFor(opts, workload.NPBSuite(), "Table 4",
		"NPB workloads under constant 110 W: measured vs paper")
}

// Summary reproduces the key-results summary (paper §6.6): DPS's gain over
// SLURM across the two contended groups, reusing the Figure 5/6 pair
// protocol.
func Summary(opts Options) (Result, error) {
	opts = opts.withDefaults()
	factories := sim.StandardFactories(false)

	gmm, err := workload.ByName("GMM")
	if err != nil {
		return Result{}, err
	}
	type group struct {
		name  string
		pairs [][2]*workload.Spec
	}
	var groups []group
	var high group
	high.name = "high-utility"
	for _, w := range workload.MidHighSpark() {
		high.pairs = append(high.pairs, [2]*workload.Spec{w, gmm})
	}
	groups = append(groups, high)
	var snpb group
	snpb.name = "spark-npb"
	for _, sp := range workload.MidHighSpark() {
		for _, nb := range workload.NPBSuite() {
			snpb.pairs = append(snpb.pairs, [2]*workload.Spec{sp, nb})
		}
	}
	groups = append(groups, snpb)

	res := Result{
		ID:      "Section 6.6",
		Title:   "Summary: DPS gain over SLURM (pair hmean)",
		Columns: []string{"mean", "min", "max"},
	}
	for _, g := range groups {
		var diffs []float64
		for _, p := range g.pairs {
			out, err := runPairAll(opts, p[0], p[1], factories)
			if err != nil {
				return Result{}, err
			}
			d, err := out.pairHMeanGain("DPS")
			if err != nil {
				return Result{}, err
			}
			s, err := out.pairHMeanGain("SLURM")
			if err != nil {
				return Result{}, err
			}
			diffs = append(diffs, d/s-1)
		}
		min, max, _ := metrics.MinMax(diffs)
		res.Rows = append(res.Rows, Row{
			Name: g.name,
			Values: map[string]float64{
				"mean": metrics.Mean(diffs),
				"min":  min,
				"max":  max,
			},
		})
	}
	res.Notes = append(res.Notes, "paper: DPS outperforms SLURM by 1.7%–21.3% in high-utility scenarios")
	return res, nil
}
