package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"dps/internal/power"
	"dps/internal/signal"
	"dps/internal/workload"
)

// Trace is one workload's uncapped power-demand time series (the paper's
// Figure 2 plots these for LDA, Bayes, and LR).
type Trace struct {
	Workload string
	DT       power.Seconds
	Power    []power.Watts
}

// Figure2 samples the uncapped demand of the three workloads the paper
// plots, at 1 Hz, for one seeded run each.
func Figure2(seed int64) ([]Trace, error) {
	return Traces(seed, 1, "LDA", "Bayes", "LR")
}

// Traces samples uncapped demand for any named workloads.
func Traces(seed int64, dt power.Seconds, names ...string) ([]Trace, error) {
	var out []Trace
	for i, name := range names {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed*257 + int64(i)))
		run := workload.NewRun(spec, rng)
		out = append(out, Trace{Workload: name, DT: dt, Power: run.DemandTrace(dt)})
	}
	return out, nil
}

// Format renders a trace as an ASCII strip chart plus the power-dynamics
// statistics the paper's §3.1 observations are about.
func (t Trace) Format(width int) string {
	if width <= 0 {
		width = 72
	}
	var b strings.Builder
	max := power.Watts(1)
	for _, p := range t.Power {
		if p > max {
			max = p
		}
	}
	fmt.Fprintf(&b, "%s — %d s uncapped demand (peak %.0f W)\n", t.Workload, len(t.Power), max)
	// Downsample to the requested width, one row per ~20 W band.
	const bands = 8
	cols := len(t.Power)
	if cols > width {
		cols = width
	}
	grid := make([][]byte, bands)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for c := 0; c < cols; c++ {
		idx := c * len(t.Power) / cols
		level := int(float64(t.Power[idx]) / float64(max) * bands)
		if level >= bands {
			level = bands - 1
		}
		for r := 0; r <= level; r++ {
			grid[bands-1-r][c] = '#'
		}
	}
	for r, rowBytes := range grid {
		fmt.Fprintf(&b, "  %3.0fW |%s|\n", float64(max)*float64(bands-r)/bands, rowBytes)
	}
	peaks := signal.CountProminentPeaks(t.Power, 20)
	fmt.Fprintf(&b, "  prominent peaks (>20 W): %d, stddev: %.1f W, above 110 W: %.1f%%\n",
		peaks, signal.StdDev(t.Power), 100*fractionAbove(t.Power, 110))
	return b.String()
}

func fractionAbove(ps []power.Watts, thr power.Watts) float64 {
	if len(ps) == 0 {
		return 0
	}
	n := 0
	for _, p := range ps {
		if p > thr {
			n++
		}
	}
	return float64(n) / float64(len(ps))
}
