package exp

import "testing"

func TestThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a batch under 4 managers")
	}
	res, err := Throughput(Options{Repeats: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	get := func(mgr, col string) float64 { return res.rowValue(t, mgr, col) }
	// DPS must not be slower than constant or SLURM on turnaround.
	if get("DPS", "turnaround_s") > get("Constant", "turnaround_s")*1.02 {
		t.Errorf("DPS turnaround %v above constant %v",
			get("DPS", "turnaround_s"), get("Constant", "turnaround_s"))
	}
	if get("DPS", "turnaround_s") > get("SLURM", "turnaround_s")*1.02 {
		t.Errorf("DPS turnaround %v above SLURM %v",
			get("DPS", "turnaround_s"), get("SLURM", "turnaround_s"))
	}
	// The hierarchy stays close to flat DPS.
	if get("HierDPS", "turnaround_s") > get("DPS", "turnaround_s")*1.10 {
		t.Errorf("hierarchical turnaround %v more than 10%% above flat %v",
			get("HierDPS", "turnaround_s"), get("DPS", "turnaround_s"))
	}
	for _, row := range res.Rows {
		if row.Values["jobs_per_h"] <= 0 || row.Values["makespan_s"] <= 0 {
			t.Errorf("%s: degenerate aggregates %+v", row.Name, row.Values)
		}
	}
}
