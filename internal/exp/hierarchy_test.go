package exp

import "testing"

func TestHierarchyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 5 pairs under 4 managers")
	}
	res, err := Hierarchy(Options{Repeats: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var mean Row
	for _, row := range res.Rows {
		if row.Name == "MEAN" {
			mean = row
		}
	}
	if mean.Values == nil {
		t.Fatal("no MEAN row")
	}
	flat, hier, slurm := mean.Values["DPS"], mean.Values["HierDPS"], mean.Values["SLURM"]
	// The hierarchy must keep most of flat DPS's gain...
	if got := retention(hier, flat); got < 0.7 {
		t.Errorf("hierarchy retained only %.0f%% of flat DPS's gain (flat %.3f, hier %.3f)",
			got*100, flat, hier)
	}
	// ...and must not beat it (flat DPS sees everything every step).
	if hier > flat+0.01 {
		t.Errorf("hierarchy %.3f implausibly above flat DPS %.3f", hier, flat)
	}
	// It must clearly beat both SLURM and the constant baseline.
	if hier <= slurm || hier < 1.0 {
		t.Errorf("hierarchy %.3f does not dominate SLURM %.3f / constant 1.0", hier, slurm)
	}
	// Per-pair: the hierarchy never falls below the constant baseline.
	for _, row := range res.Rows {
		if row.Values["HierDPS"] < 0.99 {
			t.Errorf("%s: hierarchical gain %.3f below constant", row.Name, row.Values["HierDPS"])
		}
	}
}
