package exp

import "testing"

func TestSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 3 pairs × 3 managers × 4 budgets")
	}
	fractions := []float64{0.50, 0.667, 0.85}
	res, err := Sweep(Options{Repeats: 2, Seed: 11}, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(fractions) {
		t.Fatalf("%d rows for %d fractions", len(res.Rows), len(fractions))
	}
	// DPS stays at or above constant at every budget (the lower bound).
	for _, row := range res.Rows {
		if row.Values["DPS"] < 0.99 {
			t.Errorf("%s: DPS gain %.3f below constant", row.Name, row.Values["DPS"])
		}
	}
	// The DPS-over-SLURM margin widens as the budget tightens: tightest
	// budget must show a clearly larger margin than the loosest.
	tight := res.Rows[0].Values["dps_over_slurm"]
	loose := res.Rows[len(res.Rows)-1].Values["dps_over_slurm"]
	if tight <= loose {
		t.Errorf("margin at 50%% TDP (%.3f) not above margin at 85%% TDP (%.3f)", tight, loose)
	}
	if tight < 0.05 {
		t.Errorf("tight-budget margin %.3f, want the contention effect (> 5%%)", tight)
	}
}

func TestSweepRejectsUnknownDefaults(t *testing.T) {
	// Default fractions path must work too (smoke, tiny repeats).
	if testing.Short() {
		t.Skip("simulates the default 5-point sweep")
	}
	res, err := Sweep(Options{Repeats: 1, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("default sweep has %d rows, want 5", len(res.Rows))
	}
}
