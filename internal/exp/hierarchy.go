package exp

import (
	"fmt"

	"dps/internal/metrics"
	"dps/internal/sim"
	"dps/internal/workload"
)

// Hierarchy evaluates the two-level DPS extension against flat DPS and
// SLURM on representative contended pairs. Flat DPS is the accuracy
// ceiling — the hierarchy trades a bounded amount of cross-group agility
// (budgets move only at epoch boundaries) for per-level controller state
// that is constant in the group size. The experiment verifies the trade is
// small: the hierarchy should keep most of flat DPS's gain and stay above
// both SLURM and constant allocation.
func Hierarchy(opts Options) (Result, error) {
	opts = opts.withDefaults()
	factories := map[string]sim.ManagerFactory{
		"Constant": sim.ConstantFactory(),
		"SLURM":    sim.SLURMFactory(),
		"DPS":      sim.DPSFactory(),
		// 4 groups of 5 sockets: group boundaries cut through each
		// 10-socket cluster, the harder case for a hierarchy.
		"HierDPS": sim.HierarchicalDPSFactory(4, 5),
	}
	columns := []string{"SLURM", "DPS", "HierDPS"}

	pairs := [][2]string{
		{"LDA", "GMM"},
		{"Kmeans", "GMM"},
		{"LR", "GMM"},
		{"LDA", "BT"},
		{"Bayes", "SP"},
	}
	res := Result{
		ID:      "Hierarchy",
		Title:   "Two-level DPS vs flat DPS: pair hmean gain over constant",
		Columns: columns,
	}
	sums := map[string][]float64{}
	for _, p := range pairs {
		a, err := workload.ByName(p[0])
		if err != nil {
			return Result{}, err
		}
		b, err := workload.ByName(p[1])
		if err != nil {
			return Result{}, err
		}
		out, err := runPairAll(opts, a, b, factories)
		if err != nil {
			return Result{}, err
		}
		row := Row{Name: p[0] + "+" + p[1], Values: map[string]float64{}}
		for _, mgr := range columns {
			hm, err := out.pairHMeanGain(mgr)
			if err != nil {
				return Result{}, err
			}
			row.Values[mgr] = hm
			sums[mgr] = append(sums[mgr], hm)
		}
		res.Rows = append(res.Rows, row)
	}
	mean := Row{Name: "MEAN", Values: map[string]float64{}}
	for _, mgr := range columns {
		mean.Values[mgr] = metrics.Mean(sums[mgr])
	}
	res.Rows = append(res.Rows, mean)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"hierarchy: 4 groups × 5 sockets, top-level budget reassignment every 5 s; flat DPS retained %.0f%% of its gain",
		retention(mean.Values["HierDPS"], mean.Values["DPS"])*100))
	return res, nil
}

func retention(hier, flat float64) float64 {
	if flat <= 1 {
		return 1
	}
	return (hier - 1) / (flat - 1)
}
