package exp

import "testing"

func TestBaselinesOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 7 pairs under 5 managers")
	}
	res, err := Baselines(Options{Repeats: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var mean Row
	for _, row := range res.Rows {
		if row.Name == "MEAN" {
			mean = row
		}
	}
	if mean.Values == nil {
		t.Fatal("no MEAN row")
	}
	slurm := mean.Values["SLURM"]
	fb := mean.Values["Feedback"]
	p2pGain := mean.Values["P2P"]
	dps := mean.Values["DPS"]
	oracle := mean.Values["Oracle"]
	// The expected ordering under contention:
	// SLURM < Feedback ≲ P2P ≲ DPS ≤ Oracle.
	if fb <= slurm {
		t.Errorf("feedback %.3f not above SLURM %.3f", fb, slurm)
	}
	if p2pGain <= fb {
		t.Errorf("P2P %.3f not above feedback %.3f", p2pGain, fb)
	}
	if dps < p2pGain-0.01 {
		t.Errorf("DPS %.3f below P2P %.3f", dps, p2pGain)
	}
	if dps <= fb {
		t.Errorf("DPS %.3f not above feedback %.3f", dps, fb)
	}
	if dps > oracle+0.02 {
		t.Errorf("DPS %.3f implausibly above the oracle %.3f", dps, oracle)
	}
	// Feedback has no lower-bound guarantee; DPS does.
	for _, row := range res.Rows {
		if row.Name == "MEAN" {
			continue
		}
		if row.Values["DPS"] < 0.99 {
			t.Errorf("%s: DPS %.3f below the constant-allocation lower bound", row.Name, row.Values["DPS"])
		}
	}
}
