package exp

import "testing"

func TestDRAMStudyShape(t *testing.T) {
	res, err := DRAMStudy(Options{Repeats: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	static := "Static(85/15)"
	for _, row := range res.Rows {
		dyn := row.Values["Dynamic"]
		st := row.Values[static]
		prop := row.Values["Proportional"]
		if dyn <= 0 || st <= 0 || prop <= 0 {
			t.Fatalf("%s: degenerate durations %+v", row.Name, row.Values)
		}
		switch row.Name {
		case "memory", "mixed":
			// The Sarood et al. effect: dynamic clearly beats the static
			// CPU-heavy split on memory-bound phases.
			if dyn >= st*0.95 {
				t.Errorf("%s: dynamic %.0fs not clearly below static %.0fs", row.Name, dyn, st)
			}
		case "compute":
			// Compute-bound workloads barely touch DRAM: all splitters land
			// within a few percent.
			if dyn > st*1.05 {
				t.Errorf("compute: dynamic %.0fs worse than static %.0fs", dyn, st)
			}
		}
		// The informed proportional splitter bounds dynamic within ~10 %.
		if dyn > prop*1.10 {
			t.Errorf("%s: dynamic %.0fs more than 10%% behind proportional %.0fs", row.Name, dyn, prop)
		}
	}
}
