package exp

import (
	"fmt"

	"dps/internal/metrics"
	"dps/internal/sim"
	"dps/internal/workload"
)

// Figure4 reproduces the Spark low-utility experiment (paper Figure 4):
// every mid/high-power Spark workload co-executed with every low-power
// micro workload (28 pairs), under Constant, SLURM, DPS, and the Oracle.
// Each row is the ML workload's harmonic-mean performance gain normalized
// to constant allocation.
func Figure4(opts Options) (Result, error) {
	opts = opts.withDefaults()
	mids := workload.MidHighSpark()
	lows := workload.LowSpark()
	factories := sim.StandardFactories(true)
	managers := []string{"SLURM", "DPS", "Oracle"}

	res := Result{
		ID:      "Figure 4",
		Title:   "Spark low utility: hmean gain over constant 110 W",
		Columns: managers,
	}
	perMgrAll := map[string][]float64{}
	for _, mid := range mids {
		gains := map[string][]float64{}
		for _, low := range lows {
			out, err := runPairAll(opts, mid, low, factories)
			if err != nil {
				return Result{}, err
			}
			for _, mgr := range managers {
				sa, _, err := out.speedups(mgr)
				if err != nil {
					return Result{}, err
				}
				gains[mgr] = append(gains[mgr], sa)
			}
		}
		row := Row{Name: mid.Name, Values: map[string]float64{}}
		for _, mgr := range managers {
			v := metrics.HMean(gains[mgr])
			row.Values[mgr] = v
			perMgrAll[mgr] = append(perMgrAll[mgr], v)
		}
		res.Rows = append(res.Rows, row)
	}
	for _, mgr := range managers {
		mean := metrics.Mean(perMgrAll[mgr])
		min, max, _ := metrics.MinMax(perMgrAll[mgr])
		res.Notes = append(res.Notes, fmt.Sprintf("%s mean gain %+.1f%% (min %+.1f%%, max %+.1f%%)",
			mgr, (mean-1)*100, (min-1)*100, (max-1)*100))
	}
	return res, nil
}

// Figure5 reproduces the Spark high-utility experiment (paper Figure 5):
// every mid/high-power Spark workload paired with the high-power GMM.
// Figure 5a reports each paired workload's own gain; Figure 5b the
// harmonic mean of the workload's and GMM's gains. Both are returned,
// 5a first.
func Figure5(opts Options) (Result, Result, error) {
	opts = opts.withDefaults()
	factories := sim.StandardFactories(false)
	managers := []string{"SLURM", "DPS"}

	gmm, err := workload.ByName("GMM")
	if err != nil {
		return Result{}, Result{}, err
	}
	resA := Result{
		ID:      "Figure 5a",
		Title:   "Spark high utility: paired workload's own hmean gain",
		Columns: managers,
	}
	resB := Result{
		ID:      "Figure 5b",
		Title:   "Spark high utility: hmean gain of workload and its paired GMM",
		Columns: managers,
	}
	perMgrB := map[string][]float64{}
	for _, w := range workload.MidHighSpark() {
		out, err := runPairAll(opts, w, gmm, factories)
		if err != nil {
			return Result{}, Result{}, err
		}
		rowA := Row{Name: w.Name, Values: map[string]float64{}}
		rowB := Row{Name: w.Name, Values: map[string]float64{}}
		for _, mgr := range managers {
			sa, _, err := out.speedups(mgr)
			if err != nil {
				return Result{}, Result{}, err
			}
			hm, err := out.pairHMeanGain(mgr)
			if err != nil {
				return Result{}, Result{}, err
			}
			rowA.Values[mgr] = sa
			rowB.Values[mgr] = hm
			perMgrB[mgr] = append(perMgrB[mgr], hm)
		}
		resA.Rows = append(resA.Rows, rowA)
		resB.Rows = append(resB.Rows, rowB)
	}
	var diffs []float64
	for i := range resB.Rows {
		diffs = append(diffs, resB.Rows[i].Values["DPS"]/resB.Rows[i].Values["SLURM"]-1)
	}
	resB.Notes = append(resB.Notes, fmt.Sprintf("DPS over SLURM: mean %+.1f%%, max %+.1f%%",
		metrics.Mean(diffs)*100, maxOf(diffs)*100))
	return resA, resB, nil
}

// Figure6 reproduces the Spark & NPB experiment (paper Figure 6): all 56
// pairs of {7 mid/high Spark} × {8 NPB} workloads. Figure 6a groups the
// per-pair harmonic-mean gains by the Spark workload, 6b by the NPB
// workload.
func Figure6(opts Options) (Result, Result, error) {
	opts = opts.withDefaults()
	factories := sim.StandardFactories(false)
	managers := []string{"SLURM", "DPS"}

	sparks := workload.MidHighSpark()
	npbs := workload.NPBSuite()

	bySpark := map[string]map[string][]float64{}
	byNPB := map[string]map[string][]float64{}
	var dpsOverSlurm []float64
	for _, sp := range sparks {
		bySpark[sp.Name] = map[string][]float64{}
		for _, nb := range npbs {
			if byNPB[nb.Name] == nil {
				byNPB[nb.Name] = map[string][]float64{}
			}
			out, err := runPairAll(opts, sp, nb, factories)
			if err != nil {
				return Result{}, Result{}, err
			}
			pairGain := map[string]float64{}
			for _, mgr := range managers {
				hm, err := out.pairHMeanGain(mgr)
				if err != nil {
					return Result{}, Result{}, err
				}
				bySpark[sp.Name][mgr] = append(bySpark[sp.Name][mgr], hm)
				byNPB[nb.Name][mgr] = append(byNPB[nb.Name][mgr], hm)
				pairGain[mgr] = hm
			}
			dpsOverSlurm = append(dpsOverSlurm, pairGain["DPS"]/pairGain["SLURM"]-1)
		}
	}

	resA := Result{ID: "Figure 6a", Title: "Spark & NPB: pair hmean gain grouped by Spark workload", Columns: managers}
	for _, sp := range sparks {
		row := Row{Name: sp.Name, Values: map[string]float64{}}
		for _, mgr := range managers {
			row.Values[mgr] = metrics.HMean(bySpark[sp.Name][mgr])
		}
		resA.Rows = append(resA.Rows, row)
	}
	resB := Result{ID: "Figure 6b", Title: "Spark & NPB: pair hmean gain grouped by NPB workload", Columns: managers}
	for _, nb := range npbs {
		row := Row{Name: nb.Name, Values: map[string]float64{}}
		for _, mgr := range managers {
			row.Values[mgr] = metrics.HMean(byNPB[nb.Name][mgr])
		}
		resB.Rows = append(resB.Rows, row)
	}
	min, max, _ := metrics.MinMax(dpsOverSlurm)
	resA.Notes = append(resA.Notes, fmt.Sprintf("DPS over SLURM across all %d pairs: mean %+.1f%%, min %+.1f%%, max %+.1f%%",
		len(dpsOverSlurm), metrics.Mean(dpsOverSlurm)*100, min*100, max*100))
	return resA, resB, nil
}

// Figure7 reproduces the fairness analysis (paper Figure 7 and §6.4): the
// distribution of per-pair fairness under DPS and SLURM for the two
// contended groups. Rows are distribution statistics per group/manager.
func Figure7(opts Options) (Result, error) {
	opts = opts.withDefaults()
	factories := sim.StandardFactories(false)

	gather := func(pairs [][2]*workload.Spec) (map[string][]float64, error) {
		fair := map[string][]float64{}
		for _, p := range pairs {
			out, err := runPairAll(opts, p[0], p[1], factories)
			if err != nil {
				return nil, err
			}
			for _, mgr := range []string{"SLURM", "DPS"} {
				fair[mgr] = append(fair[mgr], out.results[mgr].Fairness)
			}
		}
		return fair, nil
	}

	gmm, err := workload.ByName("GMM")
	if err != nil {
		return Result{}, err
	}
	var highPairs [][2]*workload.Spec
	for _, w := range workload.MidHighSpark() {
		highPairs = append(highPairs, [2]*workload.Spec{w, gmm})
	}
	var npbPairs [][2]*workload.Spec
	for _, sp := range workload.MidHighSpark() {
		for _, nb := range workload.NPBSuite() {
			npbPairs = append(npbPairs, [2]*workload.Spec{sp, nb})
		}
	}

	highFair, err := gather(highPairs)
	if err != nil {
		return Result{}, err
	}
	npbFair, err := gather(npbPairs)
	if err != nil {
		return Result{}, err
	}

	res := Result{
		ID:      "Figure 7",
		Title:   "Fairness distribution of the contended workload groups",
		Columns: []string{"mean", "min", "max"},
	}
	addRows := func(group string, fair map[string][]float64) {
		for _, mgr := range []string{"SLURM", "DPS"} {
			min, max, _ := metrics.MinMax(fair[mgr])
			res.Rows = append(res.Rows, Row{
				Name: fmt.Sprintf("%s/%s", group, mgr),
				Values: map[string]float64{
					"mean": metrics.Mean(fair[mgr]),
					"min":  min,
					"max":  max,
				},
			})
		}
	}
	addRows("high-utility", highFair)
	addRows("spark-npb", npbFair)
	res.Notes = append(res.Notes,
		fmt.Sprintf("high-utility mean fairness: DPS %.2f vs SLURM %.2f (paper: 0.97 vs 0.75)",
			metrics.Mean(highFair["DPS"]), metrics.Mean(highFair["SLURM"])),
		fmt.Sprintf("spark-npb mean fairness: DPS %.2f vs SLURM %.2f (paper: 0.96 vs 0.71)",
			metrics.Mean(npbFair["DPS"]), metrics.Mean(npbFair["SLURM"])))
	return res, nil
}

func maxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
