package exp

import (
	"fmt"

	"dps/internal/core"
	"dps/internal/metrics"
	"dps/internal/sim"
	"dps/internal/workload"
)

// Ablations evaluates the design choices DESIGN.md calls out by removing
// one DPS mechanism at a time and re-running a representative contended
// pair set (every mid/high Spark workload against GMM, plus two
// Spark × NPB pairs covering long- and short-duration NPB kernels).
// Values are pair harmonic-mean gains over constant allocation, so the
// full DPS column should dominate each ablated variant.
func Ablations(opts Options) (Result, error) {
	opts = opts.withDefaults()

	variants := map[string]sim.ManagerFactory{
		"Constant": sim.ConstantFactory(),
		"DPS":      sim.DPSFactory(),
		"NoKalman": sim.DPSFactoryWith(func(c *core.Config) {
			c.DisableKalman = true
		}),
		"NoFreq": sim.DPSFactoryWith(func(c *core.Config) {
			c.DisableFrequency = true
		}),
		"NoRestore": sim.DPSFactoryWith(func(c *core.Config) {
			c.DisableRestore = true
		}),
		"NoPrio": sim.DPSFactoryWith(func(c *core.Config) {
			c.DisablePriority = true
		}),
		"NoAtCap": sim.DPSFactoryWith(func(c *core.Config) {
			c.Priority.AtCapFraction = 0
		}),
		"Hist5": sim.DPSFactoryWith(func(c *core.Config) {
			c.HistoryLen = 5
		}),
		"Hist60": sim.DPSFactoryWith(func(c *core.Config) {
			c.HistoryLen = 60
		}),
	}
	columns := []string{"DPS", "NoKalman", "NoFreq", "NoRestore", "NoPrio", "NoAtCap", "Hist5", "Hist60"}

	gmm, err := workload.ByName("GMM")
	if err != nil {
		return Result{}, err
	}
	var pairs [][2]*workload.Spec
	for _, w := range workload.MidHighSpark() {
		pairs = append(pairs, [2]*workload.Spec{w, gmm})
	}
	for _, npbName := range []string{"BT", "FT"} {
		nb, err := workload.ByName(npbName)
		if err != nil {
			return Result{}, err
		}
		lda, err := workload.ByName("LDA")
		if err != nil {
			return Result{}, err
		}
		pairs = append(pairs, [2]*workload.Spec{lda, nb})
	}

	res := Result{
		ID:      "Ablations",
		Title:   "DPS mechanism ablations: pair hmean gain over constant",
		Columns: columns,
	}
	sums := map[string][]float64{}
	for _, p := range pairs {
		out, err := runPairAll(opts, p[0], p[1], variants)
		if err != nil {
			return Result{}, err
		}
		row := Row{Name: p[0].Name + "+" + p[1].Name, Values: map[string]float64{}}
		for _, v := range columns {
			hm, err := out.pairHMeanGain(v)
			if err != nil {
				return Result{}, err
			}
			row.Values[v] = hm
			sums[v] = append(sums[v], hm)
		}
		res.Rows = append(res.Rows, row)
	}
	mean := Row{Name: "MEAN", Values: map[string]float64{}}
	for _, v := range columns {
		mean.Values[v] = metrics.Mean(sums[v])
	}
	res.Rows = append(res.Rows, mean)
	res.Notes = append(res.Notes, fmt.Sprintf("%d contended pairs; higher is better; full DPS should lead", len(pairs)))
	return res, nil
}
