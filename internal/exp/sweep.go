package exp

import (
	"fmt"

	"dps/internal/metrics"
	"dps/internal/power"
	"dps/internal/sim"
	"dps/internal/workload"
)

// Sweep implements the evaluation the paper explicitly leaves open (§6:
// "experiments with multiple power limits lower than the TDP can provide a
// more comprehensive evaluation of DPS"): the same contended pairs under a
// range of cluster power limits, from near-starvation to near-TDP.
//
// Expected shape: at generous budgets every manager meets every demand and
// the gains converge; as the budget tightens, the stateless manager's
// unfairness costs more and DPS's margin over SLURM widens, until budgets
// are so tight that even fair allocations pin everything at the floor and
// the differences compress again.
func Sweep(opts Options, fractions []float64) (Result, error) {
	opts = opts.withDefaults()
	if len(fractions) == 0 {
		// 66.7 % is the paper's single operating point.
		fractions = []float64{0.50, 0.60, 0.667, 0.75, 0.85}
	}
	pairs := [][2]string{
		{"LDA", "GMM"},   // long phases vs sustained high power
		{"LR", "GMM"},    // high frequency vs sustained high power
		{"Kmeans", "BT"}, // Spark iterations vs NPB kernel
	}

	res := Result{
		ID:      "Sweep",
		Title:   "DPS and SLURM pair hmean gain vs cluster power limit (fraction of TDP)",
		Columns: []string{"SLURM", "DPS", "dps_over_slurm"},
	}
	factories := sim.StandardFactories(false)

	for _, frac := range fractions {
		var slurmGains, dpsGains []float64
		for _, p := range pairs {
			a, err := workload.ByName(p[0])
			if err != nil {
				return Result{}, err
			}
			b, err := workload.ByName(p[1])
			if err != nil {
				return Result{}, err
			}
			out, err := runPairBudget(opts, a, b, frac, factories)
			if err != nil {
				return Result{}, err
			}
			s, err := out.pairHMeanGain("SLURM")
			if err != nil {
				return Result{}, err
			}
			d, err := out.pairHMeanGain("DPS")
			if err != nil {
				return Result{}, err
			}
			slurmGains = append(slurmGains, s)
			dpsGains = append(dpsGains, d)
		}
		s := metrics.HMean(slurmGains)
		d := metrics.HMean(dpsGains)
		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("%.1f%% TDP", frac*100),
			Values: map[string]float64{
				"SLURM":          s,
				"DPS":            d,
				"dps_over_slurm": d/s - 1,
			},
		})
	}
	res.Notes = append(res.Notes,
		"constant allocation at the same limit is each column's baseline (gain 1.0)",
		"paper's operating point is 66.7% of TDP (110 W per 165 W socket)")
	return res, nil
}

// runPairBudget is runPairAll with an explicit cluster power limit.
func runPairBudget(opts Options, a, b *workload.Spec, tdpFraction float64, factories map[string]sim.ManagerFactory) (pairOutcome, error) {
	out := pairOutcome{a: a, b: b, results: make(map[string]sim.PairResult, len(factories))}
	seed := opts.Seed
	for _, c := range a.Name + "|" + b.Name {
		seed = seed*131 + int64(c)
	}
	seed += int64(tdpFraction * 1000)

	machine := defaultMachine(seed)
	units := machine.Units()
	budget := power.Budget{
		Total:   power.Watts(float64(units) * float64(machine.Rapl.TDP) * tdpFraction),
		UnitMax: machine.Rapl.TDP,
		UnitMin: machine.Rapl.MinCap,
	}
	for name, factory := range factories {
		cfg := sim.PairConfig{
			Machine:   machine,
			Budget:    budget,
			WorkloadA: a,
			WorkloadB: b,
			Repeats:   opts.Repeats,
			Seed:      seed,
		}
		res, err := sim.RunPair(cfg, factory)
		if err != nil {
			return out, fmt.Errorf("exp: sweep pair %s+%s at %.0f%% under %s: %w",
				a.Name, b.Name, tdpFraction*100, name, err)
		}
		if res.BudgetViolations > 0 {
			return out, fmt.Errorf("exp: sweep pair %s+%s at %.0f%% under %s violated the budget",
				a.Name, b.Name, tdpFraction*100, name)
		}
		out.results[name] = res
	}
	opts.progress("sweep pair %s + %s at %.1f%% done", a.Name, b.Name, tdpFraction*100)
	return out, nil
}
