package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
)

// Overhead reproduces the paper's overhead analysis (§6.5): the
// controller's decision-loop latency at increasing unit counts, and the
// wire cost per node per round. The paper claims the controller handles
// tens of thousands of nodes with a one-second loop; the decision time
// here plus a few milliseconds of network fan-out confirms the same
// headroom.
func Overhead(unitCounts []int, stepsPerCount int, seed int64) (Result, error) {
	if len(unitCounts) == 0 {
		unitCounts = []int{20, 200, 2000, 20000}
	}
	if stepsPerCount <= 0 {
		stepsPerCount = 200
	}
	res := Result{
		ID:      "Section 6.5",
		Title:   "Controller overhead per decision step",
		Columns: []string{"units", "us_per_step", "us_kalman", "us_stateless", "us_priority", "us_readjust", "allocs_per_step", "bytes_per_node"},
	}
	for _, n := range unitCounts {
		budget := power.Budget{Total: power.Watts(n) * 110, UnitMax: 165, UnitMin: 10}
		cfg := core.DefaultConfig(n, budget)
		cfg.Seed = seed
		d, err := core.NewDPS(cfg)
		if err != nil {
			return Result{}, err
		}
		rng := rand.New(rand.NewSource(seed))
		readings := make(power.Vector, n)
		for i := range readings {
			readings[i] = power.Watts(40 + rng.Float64()*120)
		}
		snap := core.Snapshot{Power: readings, Interval: 1}

		// Warm the history so the steady-state (not the cold-start) path
		// is measured.
		for i := 0; i < 25; i++ {
			d.Decide(snap)
		}
		var stages core.StageTimings
		// Mallocs delta across the timed loop ties the steady-state
		// zero-allocation claim (sequential path; see
		// internal/core/alloc_test.go) to the measured experiment. The
		// sharded path forks goroutines, so large counts report the
		// fork/join cost rather than 0.
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		for i := 0; i < stepsPerCount; i++ {
			// Perturb readings so the Kalman filters and priority module
			// do real work each step.
			for j := range readings {
				readings[j] += power.Watts(rng.NormFloat64() * 2)
				if readings[j] < 0 {
					readings[j] = 0
				}
			}
			_, st := d.DecideStats(snap)
			stages.Kalman += st.Timings.Kalman
			stages.Stateless += st.Timings.Stateless
			stages.Priority += st.Timings.Priority
			stages.Readjust += st.Timings.Readjust
		}
		perStep := time.Since(start) / time.Duration(stepsPerCount)
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		allocsPerStep := float64(msAfter.Mallocs-msBefore.Mallocs) / float64(stepsPerCount)
		perStageUS := func(total time.Duration) float64 {
			return float64(total.Microseconds()) / float64(stepsPerCount)
		}

		// Wire cost: one 3-byte record per unit in each direction, 2 units
		// per node on the paper's platform.
		const socketsPerNode = 2
		bytesPerNode := float64(2 * socketsPerNode * proto.RecordSize)

		res.Rows = append(res.Rows, Row{
			Name: fmt.Sprintf("%d units", n),
			Values: map[string]float64{
				"units":           float64(n),
				"us_per_step":     float64(perStep.Microseconds()),
				"us_kalman":       perStageUS(stages.Kalman),
				"us_stateless":    perStageUS(stages.Stateless),
				"us_priority":     perStageUS(stages.Priority),
				"us_readjust":     perStageUS(stages.Readjust),
				"allocs_per_step": allocsPerStep,
				"bytes_per_node":  bytesPerNode,
			},
		})
	}
	res.Notes = append(res.Notes,
		"paper: <0.5% controller CPU at 10 nodes; 3 bytes per request per node; 1 s decision loop")
	return res, nil
}
