package exp

import (
	"dps/internal/metrics"
	"dps/internal/sim"
	"dps/internal/workload"
)

// Baselines widens the manager lineup beyond the paper's (E14): the
// high-utility GMM pairs replayed under constant allocation, SLURM, a
// PShifter-style feedback controller (the §2.2 feedback-model family), a
// Penelope-style peer-to-peer manager (§6.5's decentralized comparison),
// DPS, and the oracle. The expected ordering under contention:
//
//	SLURM < Feedback ≲ P2P ≲ DPS ≤ Oracle
//
// Feedback shifts power smoothly toward throttled units but cannot
// anticipate phases; P2P applies DPS-like trades pairwise and pays a
// gossip-speed convergence penalty; neither carries DPS's explicit
// constant-allocation lower bound.
func Baselines(opts Options) (Result, error) {
	opts = opts.withDefaults()
	factories := map[string]sim.ManagerFactory{
		"Constant": sim.ConstantFactory(),
		"SLURM":    sim.SLURMFactory(),
		"Feedback": sim.FeedbackFactory(),
		"P2P":      sim.P2PFactory(),
		"DPS":      sim.DPSFactory(),
		"Oracle":   sim.OracleFactory(),
	}
	columns := []string{"SLURM", "Feedback", "P2P", "DPS", "Oracle"}

	gmm, err := workload.ByName("GMM")
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:      "Baselines",
		Title:   "Manager lineup on the high-utility GMM pairs: pair hmean gain",
		Columns: columns,
	}
	sums := map[string][]float64{}
	for _, w := range workload.MidHighSpark() {
		out, err := runPairAll(opts, w, gmm, factories)
		if err != nil {
			return Result{}, err
		}
		row := Row{Name: w.Name, Values: map[string]float64{}}
		for _, mgr := range columns {
			hm, err := out.pairHMeanGain(mgr)
			if err != nil {
				return Result{}, err
			}
			row.Values[mgr] = hm
			sums[mgr] = append(sums[mgr], hm)
		}
		res.Rows = append(res.Rows, row)
	}
	mean := Row{Name: "MEAN", Values: map[string]float64{}}
	for _, mgr := range columns {
		mean.Values[mgr] = metrics.Mean(sums[mgr])
	}
	res.Rows = append(res.Rows, mean)
	return res, nil
}
