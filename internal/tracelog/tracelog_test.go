package tracelog

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"dps/internal/power"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Time: 0, Unit: 0, Power: 109.5, Cap: 110, HighPriority: false},
		{Time: 1, Unit: 1, Power: 88.123, Cap: 165, HighPriority: true},
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 2 {
		t.Errorf("Rows = %d", w.Rows())
	}

	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if got[i].Unit != recs[i].Unit || got[i].HighPriority != recs[i].HighPriority {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
		if float64(got[i].Power-recs[i].Power) > 0.001 {
			t.Errorf("record %d power %v, want %v", i, got[i].Power, recs[i].Power)
		}
	}
}

func TestWriteStep(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	readings := power.Vector{100, 50}
	caps := power.Vector{110, 90}
	if err := w.WriteStep(3, readings, caps, []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want one per unit", len(got))
	}
	if got[0].Time != 3 || got[0].Unit != 0 || !got[0].HighPriority {
		t.Errorf("record 0 = %+v", got[0])
	}
	if got[1].Cap != 90 || got[1].HighPriority {
		t.Errorf("record 1 = %+v", got[1])
	}
}

func TestWriteStepNilPriorities(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteStep(0, power.Vector{1}, power.Vector{2}, nil); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].HighPriority {
		t.Error("nil priorities produced a high-priority record")
	}
}

func TestReaderAcceptsHeaderlessFiles(t *testing.T) {
	raw := "1.000,3,100.000,110.000,true\n"
	got, err := NewReader(strings.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Unit != 3 || !got[0].HighPriority {
		t.Errorf("parsed %+v", got)
	}
}

func TestReaderRejectsMalformedRows(t *testing.T) {
	cases := []string{
		"time_s,unit,power_w,cap_w,high_priority\nx,0,1,2,false\n",
		"time_s,unit,power_w,cap_w,high_priority\n1,x,1,2,false\n",
		"time_s,unit,power_w,cap_w,high_priority\n1,0,x,2,false\n",
		"time_s,unit,power_w,cap_w,high_priority\n1,0,1,x,false\n",
		"time_s,unit,power_w,cap_w,high_priority\n1,0,1,2,maybe\n",
	}
	for i, raw := range cases {
		if _, err := NewReader(strings.NewReader(raw)).ReadAll(); err == nil {
			t.Errorf("case %d: malformed row accepted", i)
		}
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("Read on empty input = %v, want io.EOF", err)
	}
}
