// Package tracelog reads and writes the per-step experiment logs the
// paper's artifact produces: for every decision cycle and every socket,
// the average power during the cycle, the cap set, and (when DPS runs) the
// priority. The format is CSV so the paper's plotting scripts — and any
// spreadsheet — can consume it directly.
package tracelog

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dps/internal/power"
)

// Record is one unit's state at one decision step.
type Record struct {
	// Time is the virtual (or wall-clock) time of the step in seconds.
	Time power.Seconds
	// Unit is the global power-capping unit ID.
	Unit power.UnitID
	// Power is the measured average power over the step.
	Power power.Watts
	// Cap is the cap assigned for the next interval.
	Cap power.Watts
	// HighPriority is DPS's priority flag (always false for other
	// managers).
	HighPriority bool
}

var header = []string{"time_s", "unit", "power_w", "cap_w", "high_priority"}

// Writer streams records as CSV.
type Writer struct {
	cw      *csv.Writer
	started bool
	rows    int
}

// NewWriter wraps w. The header row is emitted with the first record.
func NewWriter(w io.Writer) *Writer {
	return &Writer{cw: csv.NewWriter(w)}
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if !w.started {
		if err := w.cw.Write(header); err != nil {
			return fmt.Errorf("tracelog: writing header: %w", err)
		}
		w.started = true
	}
	row := []string{
		strconv.FormatFloat(float64(r.Time), 'f', 3, 64),
		strconv.Itoa(int(r.Unit)),
		strconv.FormatFloat(float64(r.Power), 'f', 3, 64),
		strconv.FormatFloat(float64(r.Cap), 'f', 3, 64),
		strconv.FormatBool(r.HighPriority),
	}
	if err := w.cw.Write(row); err != nil {
		return fmt.Errorf("tracelog: writing record: %w", err)
	}
	w.rows++
	return nil
}

// WriteStep appends one record per unit for a whole decision step.
// priorities may be nil for managers without priorities.
func (w *Writer) WriteStep(t power.Seconds, readings, caps power.Vector, priorities []bool) error {
	for u := range readings {
		rec := Record{Time: t, Unit: power.UnitID(u), Power: readings[u], Cap: caps[u]}
		if priorities != nil && u < len(priorities) {
			rec.HighPriority = priorities[u]
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// Rows returns the number of data rows written so far.
func (w *Writer) Rows() int { return w.rows }

// Flush forces buffered rows to the underlying writer.
func (w *Writer) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// Reader parses a trace log.
type Reader struct {
	cr     *csv.Reader
	header bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	return &Reader{cr: cr}
}

// Read returns the next record, or io.EOF.
func (r *Reader) Read() (Record, error) {
	for {
		row, err := r.cr.Read()
		if err != nil {
			return Record{}, err
		}
		if !r.header {
			r.header = true
			if row[0] == header[0] {
				continue
			}
			// Headerless files are accepted; fall through and parse.
		}
		return parseRow(row)
	}
}

// ReadAll drains the log.
func (r *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

func parseRow(row []string) (Record, error) {
	t, err := strconv.ParseFloat(row[0], 64)
	if err != nil {
		return Record{}, fmt.Errorf("tracelog: bad time %q: %w", row[0], err)
	}
	u, err := strconv.Atoi(row[1])
	if err != nil {
		return Record{}, fmt.Errorf("tracelog: bad unit %q: %w", row[1], err)
	}
	p, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("tracelog: bad power %q: %w", row[2], err)
	}
	c, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("tracelog: bad cap %q: %w", row[3], err)
	}
	hp, err := strconv.ParseBool(row[4])
	if err != nil {
		return Record{}, fmt.Errorf("tracelog: bad priority %q: %w", row[4], err)
	}
	return Record{
		Time:         power.Seconds(t),
		Unit:         power.UnitID(u),
		Power:        power.Watts(p),
		Cap:          power.Watts(c),
		HighPriority: hp,
	}, nil
}
