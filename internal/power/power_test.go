package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewVector(t *testing.T) {
	v := NewVector(4, 110)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, w := range v {
		if w != 110 {
			t.Errorf("v[%d] = %v, want 110", i, w)
		}
	}
}

func TestVectorCloneIsIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("mutating the clone changed the original: %v", v)
	}
}

func TestVectorSumMaxMin(t *testing.T) {
	v := Vector{10, 40, 25}
	if got := v.Sum(); got != 75 {
		t.Errorf("Sum = %v, want 75", got)
	}
	if got := v.Max(); got != 40 {
		t.Errorf("Max = %v, want 40", got)
	}
	if got := v.Min(); got != 10 {
		t.Errorf("Min = %v, want 10", got)
	}
}

func TestVectorEmptyEdges(t *testing.T) {
	var v Vector
	if v.Sum() != 0 || v.Max() != 0 || v.Min() != 0 {
		t.Errorf("empty vector: Sum=%v Max=%v Min=%v, want zeros", v.Sum(), v.Max(), v.Min())
	}
}

func TestVectorClamp(t *testing.T) {
	v := Vector{5, 50, 500}
	v.Clamp(10, 165)
	want := Vector{10, 50, 165}
	for i := range v {
		if v[i] != want[i] {
			t.Errorf("Clamp: v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestBudgetConstantCap(t *testing.T) {
	b := Budget{Total: 2200, UnitMax: 165, UnitMin: 10}
	if got := b.ConstantCap(20); got != 110 {
		t.Errorf("ConstantCap(20) = %v, want 110", got)
	}
	// Clamped to UnitMax when the budget is generous.
	if got := b.ConstantCap(2); got != 165 {
		t.Errorf("ConstantCap(2) = %v, want UnitMax 165", got)
	}
	// Clamped to UnitMin when the budget is starved.
	if got := b.ConstantCap(1000); got != 10 {
		t.Errorf("ConstantCap(1000) = %v, want UnitMin 10", got)
	}
	if got := b.ConstantCap(0); got != 0 {
		t.Errorf("ConstantCap(0) = %v, want 0", got)
	}
}

func TestBudgetValidate(t *testing.T) {
	good := Budget{Total: 2200, UnitMax: 165, UnitMin: 10}
	if err := good.Validate(20); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
	cases := []struct {
		name string
		b    Budget
		n    int
	}{
		{"zero units", good, 0},
		{"negative total", Budget{Total: -1, UnitMax: 165}, 2},
		{"zero unit max", Budget{Total: 100, UnitMax: 0}, 2},
		{"negative unit min", Budget{Total: 100, UnitMax: 165, UnitMin: -1}, 2},
		{"min above max", Budget{Total: 100, UnitMax: 50, UnitMin: 60}, 2},
		{"mins exceed total", Budget{Total: 100, UnitMax: 165, UnitMin: 60}, 2},
	}
	for _, c := range cases {
		if err := c.b.Validate(c.n); err == nil {
			t.Errorf("%s: Validate accepted %+v for %d units", c.name, c.b, c.n)
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	b := Budget{Total: 220, UnitMax: 165, UnitMin: 10}
	if !b.Respected(Vector{110, 110}, 1e-6) {
		t.Error("even split reported as violating")
	}
	if b.Respected(Vector{165, 165}, 1e-6) {
		t.Error("sum 330 > 220 reported as respected")
	}
	if b.Respected(Vector{5, 100}, 1e-6) {
		t.Error("cap below UnitMin reported as respected")
	}
	if b.Respected(Vector{170, 40}, 1e-6) {
		t.Error("cap above UnitMax reported as respected")
	}
	// eps absorbs float drift.
	if !b.Respected(Vector{110, 110.0000001}, 1e-3) {
		t.Error("tiny float drift rejected despite eps")
	}
}

func TestHMeanKnownValues(t *testing.T) {
	if got := HMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("HMean(1,1,1) = %v, want 1", got)
	}
	// hmean(2, 6) = 3.
	if got := HMean([]float64{2, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("HMean(2,6) = %v, want 3", got)
	}
	if got := HMean(nil); got != 0 {
		t.Errorf("HMean(nil) = %v, want 0", got)
	}
	if got := HMean([]float64{1, 0}); got != 0 {
		t.Errorf("HMean with zero = %v, want 0", got)
	}
	if got := HMean([]float64{1, -2}); got != 0 {
		t.Errorf("HMean with negative = %v, want 0", got)
	}
}

// HMean never exceeds the arithmetic mean and is bounded by the extremes
// (AM–HM inequality) — the property that makes it the paper's conservative
// aggregate for paired workloads.
func TestHMeanBoundedByMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var sum, min, max float64
		min = math.Inf(1)
		for i, r := range raw {
			// Map arbitrary floats into a positive, finite range.
			x := 0.1 + math.Mod(math.Abs(r), 100)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			xs[i] = x
			sum += x
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		h := HMean(xs)
		am := sum / float64(len(xs))
		const eps = 1e-9
		return h <= am+eps && h >= min-eps && h <= max+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAbsDiff(t *testing.T) {
	if got := AbsDiff(10, 4); got != 6 {
		t.Errorf("AbsDiff(10,4) = %v, want 6", got)
	}
	if got := AbsDiff(4, 10); got != 6 {
		t.Errorf("AbsDiff(4,10) = %v, want 6", got)
	}
}
