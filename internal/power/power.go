// Package power defines the basic quantities shared by every part of the
// DPS reproduction: power in watts, energy in joules, the identity of a
// power-capping unit, and vectors of readings and caps exchanged between a
// cluster and a power manager.
//
// The paper manages power at the granularity of a "unit": the smallest part
// of a machine that supports independent power capping (a socket on the
// evaluation platform). All cluster-level arithmetic in this module works on
// per-unit vectors indexed by UnitID.
package power

import (
	"fmt"
	"math"
)

// Watts is instantaneous power. The paper's hardware reports socket power as
// a fixed-point value derived from RAPL energy counters; we keep float64 and
// quantize only at the RAPL and protocol layers.
type Watts float64

// Joules is accumulated energy.
type Joules float64

// Seconds is a duration in seconds. The control loop granularity dT is
// expressed in Seconds (default 1.0, matching the paper's one-second loop).
type Seconds float64

// UnitID identifies one power-capping unit (a socket in the paper's setup).
// IDs are dense indices assigned by the cluster: 0..NumUnits-1.
type UnitID int

// Reading is one power measurement for one unit, as delivered to the
// controller each timestep.
type Reading struct {
	Unit UnitID
	// Power is the (possibly noisy) measured average power over the last
	// interval.
	Power Watts
	// Interval is the measurement interval that produced Power.
	Interval Seconds
}

// Vector is a per-unit slice of watt values (caps, readings or demands),
// indexed by UnitID.
type Vector []Watts

// NewVector returns a Vector of n units, every entry set to v.
func NewVector(n int, v Watts) Vector {
	vec := make(Vector, n)
	for i := range vec {
		vec[i] = v
	}
	return vec
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Sum returns the total watts across all units.
func (v Vector) Sum() Watts {
	var s Watts
	for _, w := range v {
		s += w
	}
	return s
}

// Max returns the largest entry (0 for an empty vector).
func (v Vector) Max() Watts {
	var m Watts
	for _, w := range v {
		if w > m {
			m = w
		}
	}
	return m
}

// Min returns the smallest entry (0 for an empty vector).
func (v Vector) Min() Watts {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, w := range v[1:] {
		if w < m {
			m = w
		}
	}
	return m
}

// Clamp limits every entry to [lo, hi].
func (v Vector) Clamp(lo, hi Watts) {
	for i, w := range v {
		if w < lo {
			v[i] = lo
		} else if w > hi {
			v[i] = hi
		}
	}
}

// Budget describes the cluster-wide power envelope the manager must respect.
type Budget struct {
	// Total is the cluster-wide power limit (sum of caps must not exceed it).
	Total Watts
	// UnitMax is the hardware maximum cap per unit (TDP; spec_max_cap in
	// Algorithm 4).
	UnitMax Watts
	// UnitMin is the lowest cap the hardware accepts. RAPL refuses caps
	// below a platform floor; we default to a small positive value so no
	// unit is ever fully power-starved.
	UnitMin Watts
}

// ConstantCap returns the per-unit cap of the constant-allocation scheme:
// the total budget divided evenly among n units, clamped to hardware limits.
func (b Budget) ConstantCap(n int) Watts {
	if n <= 0 {
		return 0
	}
	c := b.Total / Watts(n)
	if c > b.UnitMax {
		c = b.UnitMax
	}
	if c < b.UnitMin {
		c = b.UnitMin
	}
	return c
}

// Validate reports whether the budget is self-consistent for n units.
func (b Budget) Validate(n int) error {
	switch {
	case n <= 0:
		return fmt.Errorf("power: budget for %d units", n)
	case b.Total <= 0:
		return fmt.Errorf("power: non-positive total budget %v", b.Total)
	case b.UnitMax <= 0:
		return fmt.Errorf("power: non-positive unit max %v", b.UnitMax)
	case b.UnitMin < 0:
		return fmt.Errorf("power: negative unit min %v", b.UnitMin)
	case b.UnitMin > b.UnitMax:
		return fmt.Errorf("power: unit min %v above unit max %v", b.UnitMin, b.UnitMax)
	case Watts(n)*b.UnitMin > b.Total:
		return fmt.Errorf("power: %d units at min %v exceed total budget %v", n, b.UnitMin, b.Total)
	}
	return nil
}

// Respected reports whether the cap vector fits the budget: the sum of caps
// is at most Total (within eps to absorb float rounding) and every cap is
// within [UnitMin, UnitMax].
func (b Budget) Respected(caps Vector, eps Watts) bool {
	if caps.Sum() > b.Total+eps {
		return false
	}
	for _, c := range caps {
		if c < b.UnitMin-eps || c > b.UnitMax+eps {
			return false
		}
	}
	return true
}

// HMean returns the harmonic mean of xs. It is the paper's aggregate for
// performance across paired workloads. Zero or negative entries yield 0.
func HMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv
}

// AbsDiff returns |a-b| in watts.
func AbsDiff(a, b Watts) Watts {
	return Watts(math.Abs(float64(a - b)))
}
