package blackbox

import (
	"testing"
)

// FuzzBlackboxDecode shakes the segment decoder with arbitrary bytes:
// it must never panic, and whatever it returns must be a plausible
// decode (every record self-consistent in size). The seed corpus covers
// the interesting shapes — a valid multi-record segment, a torn tail at
// several cut points, and single-bit flips — and `make fuzz-smoke`
// grows it on every CI run.
func FuzzBlackboxDecode(f *testing.F) {
	valid := appendHeader(nil)
	for n := uint64(1); n <= 3; n++ {
		valid = AppendRecord(valid, testRound(n, 3))
	}
	f.Add(valid)
	f.Add(appendHeader(nil))
	// Torn tails at a few depths, including mid-header of a record.
	for _, cut := range []int{1, headerSize, headerSize + 3, len(valid) - 1, len(valid) - 17} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Bit flips in the header, a length field, a payload, and a CRC.
	for _, off := range []int{0, 5, headerSize + 2, headerSize + 40, len(valid) - 2} {
		flipped := append([]byte(nil), valid...)
		flipped[off] ^= 0x80
		f.Add(flipped)
	}
	// A valid unknown-id section followed by a real record must decode
	// the real record (forward compatibility).
	f.Add([]byte("DPSB\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rounds, err := DecodeSegment(data)
		if err != nil {
			if len(rounds) != 0 {
				t.Fatalf("error %v with %d rounds returned", err, len(rounds))
			}
			return
		}
		// Each decoded record's unit slice must match the size its
		// payload claimed — decodeRecord enforces the framing equation,
		// so a violation here means the decoder read out of bounds.
		for i := range rounds {
			if len(rounds[i].Units) > maxUnits {
				t.Fatalf("record %d: %d units exceeds bound", i, len(rounds[i].Units))
			}
		}
		// The decode must be a fixed point: re-encoding the decoded
		// records and decoding again must reproduce them.
		re := appendHeader(nil)
		for i := range rounds {
			re = AppendRecord(re, &rounds[i])
		}
		again, err := DecodeSegment(re)
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if len(again) != len(rounds) {
			t.Fatalf("re-encode round count %d != %d", len(again), len(rounds))
		}
	})
}
