package blackbox

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dps/internal/trace"
)

// testRound builds a distinguishable record for round n with u units.
func testRound(n uint64, u int) *Round {
	r := &Round{
		Round:         n,
		UnixNano:      int64(1_700_000_000_000_000_000 + n*1_000_000),
		IntervalS:     0.25,
		BudgetW:       3000,
		CapSumW:       2990.5 + float64(n),
		KalmanS:       1e-4,
		StatelessS:    2e-4,
		PriorityS:     3e-4,
		ReadjustS:     4e-4,
		TotalS:        1.1e-3,
		Restored:      n == 1,
		BudgetClamped: n%3 == 0,
		PriorityFlips: int(n % 5),
		StaleUnits:    1,
		DirtyUnits:    u / 2,
		Units:         make([]UnitRound, u),
	}
	for i := range r.Units {
		r.Units[i] = UnitRound{
			ReadingDW: uint16(1000 + i),
			CapDW:     uint16(1500 + i),
			Prio:      i%2 == 0,
			Health:    uint8(i % 3),
			Reason:    trace.Reason(i % 9),
		}
	}
	return r
}

// segPath returns the path of the writer's only expected segment when
// the directory holds exactly one file.
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("got %d segments, want 1", len(seqs))
	}
	return filepath.Join(dir, segName(seqs[0]))
}

func TestBlackboxRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	var want []Round
	for n := uint64(1); n <= 5; n++ {
		r := testRound(n, 4)
		if _, _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, *r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Dump(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dump mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Appending after Close must fail, not tear the file.
	if _, _, err := w.Append(testRound(6, 4)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

func TestBlackboxTailAndEmptyDump(t *testing.T) {
	dir := t.TempDir()
	if rounds, err := Dump(filepath.Join(dir, "fresh")); err == nil || len(rounds) != 0 {
		t.Fatalf("Dump of missing dir: rounds=%d err=%v, want error", len(rounds), err)
	}
	w, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(1); n <= 9; n++ {
		if _, _, err := w.Append(testRound(n, 2)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	tail, err := Tail(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 3 || tail[0].Round != 7 || tail[2].Round != 9 {
		t.Fatalf("Tail(3) = %+v, want rounds 7..9", tail)
	}
	all, err := Tail(dir, 0)
	if err != nil || len(all) != 9 {
		t.Fatalf("Tail(0) = %d rounds, err=%v, want all 9", len(all), err)
	}
}

func TestBlackboxRingEviction(t *testing.T) {
	dir := t.TempDir()
	// rounds=8 → segRounds=2, maxSegs=5: capacity 8..10 records.
	w, err := Open(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	totalEvicted := 0
	for n := uint64(1); n <= 40; n++ {
		_, evicted, err := w.Append(testRound(n, 1))
		if err != nil {
			t.Fatal(err)
		}
		totalEvicted += evicted
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Dump(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 8 || len(got) > 10 {
		t.Fatalf("ring holds %d rounds, want 8..10", len(got))
	}
	if got[len(got)-1].Round != 40 {
		t.Fatalf("newest retained round = %d, want 40", got[len(got)-1].Round)
	}
	// Everything retained plus everything evicted accounts for every append.
	if totalEvicted+len(got) != 40 {
		t.Fatalf("evicted %d + retained %d != 40 appended", totalEvicted, len(got))
	}
	// Retained rounds are contiguous.
	for i := 1; i < len(got); i++ {
		if got[i].Round != got[i-1].Round+1 {
			t.Fatalf("gap in retained rounds: %d then %d", got[i-1].Round, got[i].Round)
		}
	}
}

func TestBlackboxTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(1); n <= 3; n++ {
		if _, _, err := w.Append(testRound(n, 2)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := onlySegment(t, dir)
	full := AppendRecord(nil, testRound(4, 2))
	for cut := 1; cut < len(full); cut += 7 {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := append(append([]byte(nil), data...), full[:cut]...)
		rounds, err := DecodeSegment(torn)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(rounds) != 3 || rounds[2].Round != 3 {
			t.Fatalf("cut=%d: decoded %d rounds, want the 3 intact ones", cut, len(rounds))
		}
	}
}

func TestBlackboxBitFlipTruncates(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	var recLen int
	for n := uint64(1); n <= 4; n++ {
		wrote, _, err := w.Append(testRound(n, 2))
		if err != nil {
			t.Fatal(err)
		}
		recLen = wrote
	}
	w.Close()
	data, err := os.ReadFile(onlySegment(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte inside the third record: records 1–2 survive,
	// 3 fails its CRC, and 4 — though intact on disk — is unreachable
	// because the walk cannot trust framing after a corrupt record.
	off := headerSize + 2*recLen + 20
	data[off] ^= 0xff
	rounds, err := DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 2 || rounds[1].Round != 2 {
		t.Fatalf("decoded %d rounds after bit flip, want the 2 before the damage", len(rounds))
	}
}

func TestBlackboxCorruptHeader(t *testing.T) {
	if _, err := DecodeSegment([]byte("DPSB")); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := DecodeSegment([]byte("NOPE\x01\x00\x00\x00")); err == nil {
		t.Fatal("bad magic accepted")
	}
	future := appendHeader(nil)
	future[4] = 0xff // version 0x00ff
	if _, err := DecodeSegment(future); err == nil {
		t.Fatal("future version accepted")
	}
	if rounds, err := DecodeSegment(appendHeader(nil)); err != nil || len(rounds) != 0 {
		t.Fatalf("empty segment: rounds=%d err=%v", len(rounds), err)
	}
}

func TestBlackboxRestartContinuation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(1); n <= 3; n++ {
		if _, _, err := w.Append(testRound(n, 2)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Second life: a fresh segment, never appending to the first one.
	w2, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(4); n <= 6; n++ {
		if _, _, err := w2.Append(testRound(n, 2)); err != nil {
			t.Fatal(err)
		}
	}
	w2.Close()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 2 {
		t.Fatalf("restart reused a segment: %v", seqs)
	}
	rounds, err := Dump(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 6 || rounds[0].Round != 1 || rounds[5].Round != 6 {
		t.Fatalf("dump after restart = %d rounds, want 1..6", len(rounds))
	}
}

// TestBlackboxRestartAfterTornTail is the crash-then-restart sequence:
// the first life's segment ends in a torn record, and the second life
// must still open, write, and dump the intact prefix plus its own rounds.
func TestBlackboxRestartAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(1); n <= 3; n++ {
		if _, _, err := w.Append(testRound(n, 2)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	path := onlySegment(t, dir)
	torn := AppendRecord(nil, testRound(4, 2))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn[:len(torn)/2])
	f.Close()

	w2, err := Open(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w2.Append(testRound(5, 2)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	rounds, err := Dump(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 5}
	if len(rounds) != len(want) {
		t.Fatalf("dump = %d rounds, want %d", len(rounds), len(want))
	}
	for i, n := range want {
		if rounds[i].Round != n {
			t.Fatalf("rounds[%d].Round = %d, want %d", i, rounds[i].Round, n)
		}
	}
}

// TestBlackboxWriterSteadyStateZeroAlloc is the alloc-check gate for the
// warm write path: once the scratch buffer has grown to the record size,
// Append must not allocate.
func TestBlackboxWriterSteadyStateZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, 1<<20) // segRounds is large: no rotation below
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r := testRound(1, 64)
	if _, _, err := w.Append(r); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		r.Round++
		if _, _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Append allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestBlackboxUnitAccessors(t *testing.T) {
	u := UnitRound{ReadingDW: 123, CapDW: 4500, Health: 1}
	if u.ReadingW() != 12.3 || u.CapW() != 450 {
		t.Fatalf("watt accessors: %v %v", u.ReadingW(), u.CapW())
	}
	names := []string{"fresh", "stale", "dead"}
	for h, want := range names {
		if got := (UnitRound{Health: uint8(h)}).HealthString(); got != want {
			t.Fatalf("HealthString(%d) = %q, want %q", h, got, want)
		}
	}
}
