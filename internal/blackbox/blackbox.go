// Package blackbox is the controller's persistent flight recorder: an
// append-only, segmented on-disk ring of per-round records that survives
// the process that wrote it. The in-memory observability surfaces
// (internal/telemetry's flight recorder, internal/trace's span ring) die
// with the daemon — which is exactly when a forensic record matters
// most. This package keeps the last N decision rounds on disk so
// `dpsctl blackbox dump` can reconstruct the controller's final moments
// from a dead daemon's files.
//
// # On-disk format
//
// A blackbox is a directory of segment files named bb-%08d.dpsbb with
// monotonically increasing sequence numbers. Each segment is a fixed
// header followed by self-framed record sections, reusing the
// internal/snapshot framing idioms:
//
//	header:  magic "DPSB" | version u16 | flags u16 (reserved, zero)
//	record:  id u16 (0x0001) | length u32 | payload [length] | crc32 u32
//
// All integers are little-endian; floats are IEEE-754 bit patterns. Each
// record's CRC covers its id, length, and payload. The writer always
// starts a fresh segment on Open — it never appends after a tail it did
// not write — so a restart (or a standby takeover pointed at the same
// directory) extends the ring with a new segment rather than risking a
// write after a torn record.
//
// # Crash safety
//
// Records are written with one write(2) call each, so a SIGKILL can tear
// at most the record that was in flight. The decoder walks a segment
// record by record and stops at the first structural defect — truncated
// framing, CRC mismatch, malformed payload — keeping the valid prefix.
// A kill -9 therefore loses at most the final in-flight round.
//
// # Ring semantics
//
// The ring retains roughly `rounds` records split across segments of
// rounds/4 each; rotating past the retention limit deletes the oldest
// segment whole. Eviction happens at segment granularity (like any log-
// structured ring), so the directory holds between `rounds` and
// `rounds + rounds/4` records in steady state.
package blackbox

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"dps/internal/trace"
)

// Version is the current segment format version. Decoders reject
// segments with a newer version.
const Version = 1

// magic identifies a blackbox segment file.
var magic = [4]byte{'D', 'P', 'S', 'B'}

// headerSize is the fixed segment prefix before the first record.
const headerSize = 8

// RecordID is the section id of a round record.
const RecordID uint16 = 0x0001

// DefaultRounds is the ring capacity when the configured round count is
// zero: about 68 minutes of history at a one-second decision loop.
const DefaultRounds = 4096

// maxUnits bounds the decoded per-record unit count, so a corrupted
// length field cannot demand an absurd allocation before the payload
// size check rejects it.
const maxUnits = 1 << 22

// recordFixedSize is the payload size before the per-unit tail.
const recordFixedSize = 8 + 8 + 8*8 + 1 + 5*4 + 4

// unitSize is the per-unit payload contribution.
const unitSize = 5

// Record flag bits.
const (
	flagRestored        = 1 << 0
	flagBudgetExhausted = 1 << 1
	flagBudgetClamped   = 1 << 2
)

// UnitRound is one unit's view of a recorded round. Power values are
// stored in wire deciwatts — the same quantization the protocol uses —
// which keeps a record at 5 bytes per unit.
type UnitRound struct {
	// ReadingDW/CapDW are the unit's reported power and assigned cap in
	// deciwatts.
	ReadingDW uint16 `json:"reading_dw"`
	CapDW     uint16 `json:"cap_dw"`
	// Prio is the DPS high-priority flag (false for non-DPS managers).
	Prio bool `json:"prio,omitempty"`
	// Health is the degraded-mode state: 0 fresh, 1 stale, 2 dead.
	Health uint8 `json:"health,omitempty"`
	// Reason is the cap-provenance reason (trace.Reason).
	Reason trace.Reason `json:"reason,omitempty"`
}

// ReadingW returns the reported power in watts.
func (u UnitRound) ReadingW() float64 { return float64(u.ReadingDW) / 10 }

// CapW returns the assigned cap in watts.
func (u UnitRound) CapW() float64 { return float64(u.CapDW) / 10 }

// HealthString names the unit's health state.
func (u UnitRound) HealthString() string {
	switch u.Health {
	case 0:
		return "fresh"
	case 1:
		return "stale"
	default:
		return "dead"
	}
}

// Round is one decision round's black-box record: the round-level
// aggregates plus a 5-byte-per-unit tail. The daemon retains one Round
// (Units included) and re-fills it every round, so the warm write path
// allocates nothing.
type Round struct {
	Round    uint64 `json:"round"`
	UnixNano int64  `json:"unix_nano"`

	IntervalS float64 `json:"interval_s"`
	BudgetW   float64 `json:"budget_w"`
	CapSumW   float64 `json:"cap_sum_w"`

	// Per-stage wall times (zero for managers without stage stats).
	KalmanS    float64 `json:"kalman_s,omitempty"`
	StatelessS float64 `json:"stateless_s,omitempty"`
	PriorityS  float64 `json:"priority_s,omitempty"`
	ReadjustS  float64 `json:"readjust_s,omitempty"`
	TotalS     float64 `json:"total_s"`

	Restored        bool `json:"restored,omitempty"`
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	BudgetClamped   bool `json:"budget_clamped,omitempty"`

	PriorityFlips int `json:"priority_flips,omitempty"`
	StaleUnits    int `json:"stale_units,omitempty"`
	DeadUnits     int `json:"dead_units,omitempty"`
	DirtyUnits    int `json:"dirty_units,omitempty"`
	SkippedUnits  int `json:"skipped_units,omitempty"`

	Units []UnitRound `json:"units"`
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

// appendHeader appends the segment header to dst.
func appendHeader(dst []byte) []byte {
	dst = append(dst, magic[:]...)
	dst = appendU16(dst, Version)
	dst = appendU16(dst, 0)
	return dst
}

// AppendRecord encodes one round record (section framing included) onto
// dst and returns the extended slice. Reusing dst across calls makes a
// warm append allocation-free.
func AppendRecord(dst []byte, r *Round) []byte {
	start := len(dst)
	dst = appendU16(dst, RecordID)
	dst = appendU32(dst, 0) // length backfilled below

	dst = appendU64(dst, r.Round)
	dst = appendU64(dst, uint64(r.UnixNano))
	dst = appendF64(dst, r.IntervalS)
	dst = appendF64(dst, r.BudgetW)
	dst = appendF64(dst, r.CapSumW)
	dst = appendF64(dst, r.KalmanS)
	dst = appendF64(dst, r.StatelessS)
	dst = appendF64(dst, r.PriorityS)
	dst = appendF64(dst, r.ReadjustS)
	dst = appendF64(dst, r.TotalS)
	var flags byte
	if r.Restored {
		flags |= flagRestored
	}
	if r.BudgetExhausted {
		flags |= flagBudgetExhausted
	}
	if r.BudgetClamped {
		flags |= flagBudgetClamped
	}
	dst = append(dst, flags)
	dst = appendU32(dst, uint32(r.PriorityFlips))
	dst = appendU32(dst, uint32(r.StaleUnits))
	dst = appendU32(dst, uint32(r.DeadUnits))
	dst = appendU32(dst, uint32(r.DirtyUnits))
	dst = appendU32(dst, uint32(r.SkippedUnits))
	dst = appendU32(dst, uint32(len(r.Units)))
	for i := range r.Units {
		u := &r.Units[i]
		dst = appendU16(dst, u.ReadingDW)
		dst = appendU16(dst, u.CapDW)
		meta := byte(u.Reason) << 3
		meta |= (u.Health & 0x3) << 1
		if u.Prio {
			meta |= 1
		}
		dst = append(dst, meta)
	}

	payloadLen := uint32(len(dst) - start - 6)
	dst[start+2] = byte(payloadLen)
	dst[start+3] = byte(payloadLen >> 8)
	dst[start+4] = byte(payloadLen >> 16)
	dst[start+5] = byte(payloadLen >> 24)
	crc := crc32.Checksum(dst[start:], crc32.IEEETable)
	return appendU32(dst, crc)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

// segInfo tracks one live segment: its sequence number and how many
// rounds it holds.
type segInfo struct {
	seq    uint64
	rounds int
}

// Writer appends round records to a segmented on-disk ring. It is not
// safe for concurrent use; the daemon serializes Append and Close under
// its replication lock.
type Writer struct {
	dir       string
	segRounds int // rounds per segment before rotation
	maxSegs   int // live segments before the oldest is evicted
	f         *os.File
	buf       []byte // retained encode scratch
	segs      []segInfo
}

// segName returns the file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("bb-%08d.dpsbb", seq) }

// parseSegName extracts a segment's sequence number (ok=false for
// non-segment files).
func parseSegName(name string) (seq uint64, ok bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "bb-%d.dpsbb", &n); err != nil {
		return 0, false
	}
	if segName(n) != name {
		return 0, false
	}
	return n, true
}

// Open creates a writer over dir (created if absent), retaining roughly
// `rounds` round records (DefaultRounds when rounds <= 0). It always
// starts a fresh segment after any existing ones: appending after a tail
// another process wrote — possibly torn by a crash — is never safe, and
// a new segment costs one small file. Existing segments stay in the ring
// and age out normally.
func Open(dir string, rounds int) (*Writer, error) {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blackbox: creating %s: %w", dir, err)
	}
	segRounds := rounds / 4
	if segRounds < 1 {
		segRounds = 1
	}
	w := &Writer{
		dir:       dir,
		segRounds: segRounds,
		maxSegs:   (rounds+segRounds-1)/segRounds + 1,
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var maxSeq uint64
	for _, seq := range seqs {
		n, derr := countRounds(filepath.Join(dir, segName(seq)))
		if derr != nil {
			// An unreadable pre-existing segment still occupies a ring slot;
			// treat it as empty for eviction accounting.
			n = 0
		}
		w.segs = append(w.segs, segInfo{seq: seq, rounds: n})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	if err := w.openSegment(maxSeq + 1); err != nil {
		return nil, err
	}
	return w, nil
}

// openSegment creates segment seq, writes its header, and makes it
// current.
func (w *Writer) openSegment(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("blackbox: creating segment: %w", err)
	}
	w.buf = appendHeader(w.buf[:0])
	if _, err := f.Write(w.buf); err != nil {
		f.Close()
		return fmt.Errorf("blackbox: writing segment header: %w", err)
	}
	w.f = f
	w.segs = append(w.segs, segInfo{seq: seq})
	return nil
}

// Append writes one round record and returns the bytes written plus the
// number of previously retained rounds the rotation evicted (zero except
// when a rotation dropped the oldest segment). The warm path — no
// rotation — performs exactly one write(2) and allocates nothing once
// the scratch buffer has grown to the record size.
func (w *Writer) Append(r *Round) (wrote, evicted int, err error) {
	if w.f == nil {
		return 0, 0, errors.New("blackbox: writer closed")
	}
	cur := &w.segs[len(w.segs)-1]
	if cur.rounds >= w.segRounds {
		if evicted, err = w.rotate(); err != nil {
			return 0, evicted, err
		}
		cur = &w.segs[len(w.segs)-1]
	}
	w.buf = AppendRecord(w.buf[:0], r)
	n, err := w.f.Write(w.buf)
	if err != nil {
		return n, evicted, fmt.Errorf("blackbox: appending round %d: %w", r.Round, err)
	}
	cur.rounds++
	return n, evicted, nil
}

// rotate closes the current segment, opens the next, and evicts the
// oldest segments beyond the retention limit, returning how many rounds
// the eviction dropped.
func (w *Writer) rotate() (evicted int, err error) {
	seq := w.segs[len(w.segs)-1].seq
	w.f.Close()
	w.f = nil
	if err := w.openSegment(seq + 1); err != nil {
		return 0, err
	}
	for len(w.segs) > w.maxSegs {
		old := w.segs[0]
		if err := os.Remove(filepath.Join(w.dir, segName(old.seq))); err != nil && !errors.Is(err, os.ErrNotExist) {
			return evicted, fmt.Errorf("blackbox: evicting segment %d: %w", old.seq, err)
		}
		evicted += old.rounds
		w.segs = w.segs[1:]
	}
	return evicted, nil
}

// Close flushes and closes the current segment. Further Appends fail.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

// ErrCorrupt marks a segment whose header is unusable (bad magic,
// truncated header, unsupported version). Damage after a valid header is
// not an error: the decoder keeps the valid prefix, which is the whole
// point of a black box.
var ErrCorrupt = errors.New("blackbox: corrupt")

// breader is a bounds-checked cursor over one record payload. Reads past
// the end set err and return zeros; the decoder checks err once.
type breader struct {
	b   []byte
	off int
	err error
}

func (r *breader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.err = errors.New("truncated")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *breader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.err = errors.New("truncated")
		return 0
	}
	b := r.b[r.off:]
	r.off += 2
	return uint16(b[0]) | uint16(b[1])<<8
}

func (r *breader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.err = errors.New("truncated")
		return 0
	}
	b := r.b[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *breader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.err = errors.New("truncated")
		return 0
	}
	b := r.b[r.off:]
	r.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *breader) f64() float64 { return math.Float64frombits(r.u64()) }

// decodeRecord parses one record payload. ok=false on any structural
// defect (the caller stops its walk there).
func decodeRecord(payload []byte) (Round, bool) {
	r := breader{b: payload}
	var out Round
	out.Round = r.u64()
	out.UnixNano = int64(r.u64())
	out.IntervalS = r.f64()
	out.BudgetW = r.f64()
	out.CapSumW = r.f64()
	out.KalmanS = r.f64()
	out.StatelessS = r.f64()
	out.PriorityS = r.f64()
	out.ReadjustS = r.f64()
	out.TotalS = r.f64()
	flags := r.u8()
	out.Restored = flags&flagRestored != 0
	out.BudgetExhausted = flags&flagBudgetExhausted != 0
	out.BudgetClamped = flags&flagBudgetClamped != 0
	out.PriorityFlips = int(r.u32())
	out.StaleUnits = int(r.u32())
	out.DeadUnits = int(r.u32())
	out.DirtyUnits = int(r.u32())
	out.SkippedUnits = int(r.u32())
	units := r.u32()
	if r.err != nil || units > maxUnits {
		return Round{}, false
	}
	// The payload size is fully determined by the unit count; anything
	// else is a framing defect, checked before the per-unit allocation.
	if len(payload) != recordFixedSize+int(units)*unitSize {
		return Round{}, false
	}
	out.Units = make([]UnitRound, units)
	for i := range out.Units {
		u := &out.Units[i]
		u.ReadingDW = r.u16()
		u.CapDW = r.u16()
		meta := r.u8()
		u.Prio = meta&1 != 0
		u.Health = (meta >> 1) & 0x3
		u.Reason = trace.Reason(meta >> 3)
	}
	if r.err != nil || r.off != len(payload) {
		return Round{}, false
	}
	return out, true
}

// DecodeSegment parses one segment image into round records. It returns
// an error only when the header itself is unusable; any later damage —
// a torn tail from a crash, a flipped bit — truncates the result at the
// last fully valid record instead. It never panics on malformed input.
func DecodeSegment(data []byte) ([]Round, error) {
	return AppendSegmentRounds(nil, data)
}

// AppendSegmentRounds is DecodeSegment appending onto dst.
func AppendSegmentRounds(dst []Round, data []byte) ([]Round, error) {
	if len(data) < headerSize {
		return dst, fmt.Errorf("%w: %d bytes, want at least the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] || data[3] != magic[3] {
		return dst, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:4])
	}
	if v := uint16(data[4]) | uint16(data[5])<<8; v > Version {
		return dst, fmt.Errorf("%w: segment version %d, decoder supports <= %d", ErrCorrupt, v, Version)
	}
	rest := data[headerSize:]
	for len(rest) >= 10 {
		id := uint16(rest[0]) | uint16(rest[1])<<8
		n := uint32(rest[2]) | uint32(rest[3])<<8 | uint32(rest[4])<<16 | uint32(rest[5])<<24
		total := uint64(6) + uint64(n) + 4
		if uint64(len(rest)) < total {
			break // torn tail
		}
		crcOff := 6 + int(n)
		want := uint32(rest[crcOff]) | uint32(rest[crcOff+1])<<8 | uint32(rest[crcOff+2])<<16 | uint32(rest[crcOff+3])<<24
		if crc32.Checksum(rest[:crcOff], crc32.IEEETable) != want {
			break // bit flip or tear inside the record
		}
		payload := rest[6:crcOff]
		rest = rest[total:]
		if id != RecordID {
			continue // unknown section with a valid CRC: forward compatibility
		}
		r, ok := decodeRecord(payload)
		if !ok {
			break
		}
		dst = append(dst, r)
	}
	return dst, nil
}

// countRounds decodes a segment file just far enough to count its valid
// records.
func countRounds(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	rounds, err := DecodeSegment(data)
	return len(rounds), err
}

// listSegments returns the sequence numbers of dir's segment files in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blackbox: reading %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Dump decodes every segment in dir, oldest first, and returns all valid
// round records. Segments with unusable headers (a crash can tear even
// the 8-byte header write of the newest segment) are skipped; damage
// inside a segment truncates that segment's contribution. Works on a
// live daemon's directory and on a dead one's.
func Dump(dir string) ([]Round, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	var out []Round
	for _, seq := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			continue
		}
		out, _ = AppendSegmentRounds(out, data)
	}
	return out, nil
}

// Tail returns the newest n records from dir (all of them when n <= 0).
func Tail(dir string, n int) ([]Round, error) {
	all, err := Dump(dir)
	if err != nil {
		return nil, err
	}
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all, nil
}
