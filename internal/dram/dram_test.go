package dram

import (
	"testing"

	"dps/internal/power"
)

const budget = power.Watts(130) // per-socket plane budget for the study

func TestLimitsValidate(t *testing.T) {
	if err := DefaultLimits().Validate(); err != nil {
		t.Errorf("default limits invalid: %v", err)
	}
	bad := []PlaneLimits{
		{CPUMax: 0, DRAMMax: 48},
		{CPUMax: 165, DRAMMax: 48, CPUMin: 200},
		{CPUMax: 165, DRAMMax: 48, DRAMMin: 60},
		{CPUMax: 165, DRAMMax: 48, CPUIdle: 300},
		{CPUMax: 165, DRAMMax: 48, DRAMIdle: 60},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", l)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Workload{Name: "empty"}, budget, DefaultLimits(), Static{0.8}, 0, 1); err == nil {
		t.Error("Run accepted an empty workload")
	}
	if _, err := Run(Catalog()[0], 5, DefaultLimits(), Static{0.8}, 0, 1); err == nil {
		t.Error("Run accepted a budget below the plane floors")
	}
}

func TestStaticSplitRespectsBudgetAndLimits(t *testing.T) {
	limits := DefaultLimits()
	cpu, dram := Static{0.8}.Split(budget, limits, 0, 0, 0, 0)
	if cpu+dram > budget+1e-9 {
		t.Errorf("split %v+%v exceeds budget", cpu, dram)
	}
	if dram > limits.DRAMMax {
		t.Errorf("DRAM cap %v above its TDP", dram)
	}
	// Extreme ratio still clamps to the DRAM plane's range.
	_, dram = Static{0.1}.Split(budget, limits, 0, 0, 0, 0)
	if dram > limits.DRAMMax {
		t.Errorf("DRAM cap %v above its TDP at a DRAM-heavy ratio", dram)
	}
}

func TestDynamicShiftsTowardPinnedPlane(t *testing.T) {
	limits := DefaultLimits()
	d := DefaultDynamic()
	// DRAM pinned at its 30 W cap, CPU drawing 60 of 100.
	cpu, dram := d.Split(130, limits, 100, 30, 60, 30)
	if dram <= 30 {
		t.Errorf("pinned DRAM plane not granted budget: %v", dram)
	}
	if cpu >= 100 {
		t.Errorf("donor CPU plane not reduced: %v", cpu)
	}
	if cpu+dram > 130+1e-9 {
		t.Errorf("split %v+%v exceeds budget", cpu, dram)
	}
	// Symmetric: CPU pinned.
	cpu2, _ := d.Split(130, limits, 90, 40, 90, 20)
	if cpu2 <= 90 {
		t.Errorf("pinned CPU plane not granted budget: %v", cpu2)
	}
	// Both pinned: hold (after budget rescale the ratio persists).
	cpu3, dram3 := d.Split(130, limits, 95, 35, 95, 35)
	if power.AbsDiff(cpu3, 95) > 1e-6 || power.AbsDiff(dram3, 35) > 1e-6 {
		t.Errorf("both-pinned split moved: %v/%v", cpu3, dram3)
	}
}

func TestMemoryBoundPrefersDynamicSplit(t *testing.T) {
	// The Sarood et al. effect: a memory-bound workload under a CPU-heavy
	// static split crawls; dynamic splitting recovers most of the loss.
	var memory Workload
	for _, w := range Catalog() {
		if w.Name == "memory" {
			memory = w
		}
	}
	static, err := Run(memory, budget, DefaultLimits(), Static{0.85}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := Run(memory, budget, DefaultLimits(), DefaultDynamic(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	prop, err := Run(memory, budget, DefaultLimits(), Proportional{Headroom: 3}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.Duration >= static.Duration {
		t.Errorf("dynamic %.0fs not faster than static %.0fs on a memory-bound workload",
			dynamic.Duration, static.Duration)
	}
	// The informed proportional splitter bounds what dynamic can achieve
	// (within a few percent).
	if float64(dynamic.Duration) > float64(prop.Duration)*1.10 {
		t.Errorf("dynamic %.0fs more than 10%% behind proportional %.0fs",
			dynamic.Duration, prop.Duration)
	}
	for _, r := range []Result{static, dynamic, prop} {
		if r.BudgetViolations != 0 {
			t.Errorf("%s: %d budget violations", r.Splitter, r.BudgetViolations)
		}
	}
}

func TestComputeBoundIndifferentToSplit(t *testing.T) {
	// A compute-bound workload barely uses DRAM: static 85/15 and dynamic
	// should finish within a few percent of each other.
	var compute Workload
	for _, w := range Catalog() {
		if w.Name == "compute" {
			compute = w
		}
	}
	static, err := Run(compute, budget, DefaultLimits(), Static{0.85}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := Run(compute, budget, DefaultLimits(), DefaultDynamic(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dynamic.Duration) / float64(static.Duration)
	if ratio > 1.05 || ratio < 0.90 {
		t.Errorf("compute-bound durations diverge: static %.0fs dynamic %.0fs",
			static.Duration, dynamic.Duration)
	}
}

func TestMixedPhasesFavorDynamic(t *testing.T) {
	var mixed Workload
	for _, w := range Catalog() {
		if w.Name == "mixed" {
			mixed = w
		}
	}
	static, err := Run(mixed, budget, DefaultLimits(), Static{0.85}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := Run(mixed, budget, DefaultLimits(), DefaultDynamic(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.Duration >= static.Duration {
		t.Errorf("dynamic %.0fs not faster than static %.0fs on phased two-plane demand",
			dynamic.Duration, static.Duration)
	}
}

func TestRunDeterminism(t *testing.T) {
	w := Catalog()[2]
	a, err := Run(w, budget, DefaultLimits(), DefaultDynamic(), 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, budget, DefaultLimits(), DefaultDynamic(), 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.MeanCPUCap != b.MeanCPUCap {
		t.Errorf("same-seed runs diverged: %+v vs %+v", a, b)
	}
}

func TestSplitterNames(t *testing.T) {
	if (Static{0.8}).Name() == "" || (Proportional{}).Name() == "" || DefaultDynamic().Name() == "" {
		t.Error("splitter names empty")
	}
}
