// Package dram studies intra-socket power partitioning between the CPU
// package plane and the DRAM plane — the extension of constant-allocation
// overprovisioning that the paper cites as Sarood et al. (CLUSTER '13,
// §2.1: "extended this system to include power limits on DRAM"). RAPL
// exposes both planes (intel-rapl:N and its :N:0 DRAM subdomain); a unit's
// power budget must be split between them, and the right split depends on
// whether the running phase is compute- or memory-bound.
//
// The module is a self-contained micro-study: a single socket with two
// planes, phase-structured two-plane demand, and three splitting policies —
//
//   - Static: a fixed CPU:DRAM ratio (the Sarood et al. baseline practice);
//   - Proportional: split by the planes' measured power plus headroom (an
//     oracle-flavoured splitter — it sees the current draw of both planes);
//   - Dynamic: DPS's methodology at plane granularity — a plane pinned at
//     its cap takes budget from an unpinned plane, multiplicatively, from
//     power readings alone.
//
// Execution speed is the minimum of the planes' speeds (the bottleneck
// model: a starved memory system stalls the cores and vice versa), so a
// memory-bound phase under a CPU-heavy static split crawls — exactly the
// effect dynamic splitting removes.
package dram

import (
	"fmt"
	"math/rand"

	"dps/internal/power"
	"dps/internal/workload"
)

// Phase is one two-plane power phase.
type Phase struct {
	// CPU is the package plane's uncapped demand.
	CPU power.Watts
	// DRAM is the memory plane's uncapped demand.
	DRAM power.Watts
	// Work is seconds of execution at full speed.
	Work power.Seconds
}

// Workload is a named two-plane phase sequence.
type Workload struct {
	Name   string
	Phases []Phase
}

// PlaneLimits is the hardware envelope of one socket's planes.
type PlaneLimits struct {
	// CPUMax/DRAMMax are the planes' maximum settable caps.
	CPUMax, DRAMMax power.Watts
	// CPUMin/DRAMMin are the planes' floors.
	CPUMin, DRAMMin power.Watts
	// CPUIdle/DRAMIdle are drawn even with no load.
	CPUIdle, DRAMIdle power.Watts
}

// DefaultLimits models one socket: 165 W package TDP, 48 W DRAM TDP.
func DefaultLimits() PlaneLimits {
	return PlaneLimits{
		CPUMax: 165, DRAMMax: 48,
		CPUMin: 10, DRAMMin: 4,
		CPUIdle: 20, DRAMIdle: 5,
	}
}

// Validate reports whether the limits are physical.
func (l PlaneLimits) Validate() error {
	switch {
	case l.CPUMax <= 0 || l.DRAMMax <= 0:
		return fmt.Errorf("dram: non-positive plane maxima %v/%v", l.CPUMax, l.DRAMMax)
	case l.CPUMin < 0 || l.CPUMin > l.CPUMax:
		return fmt.Errorf("dram: CPU min %v outside [0,%v]", l.CPUMin, l.CPUMax)
	case l.DRAMMin < 0 || l.DRAMMin > l.DRAMMax:
		return fmt.Errorf("dram: DRAM min %v outside [0,%v]", l.DRAMMin, l.DRAMMax)
	case l.CPUIdle < 0 || l.CPUIdle > l.CPUMax:
		return fmt.Errorf("dram: CPU idle %v outside [0,%v]", l.CPUIdle, l.CPUMax)
	case l.DRAMIdle < 0 || l.DRAMIdle > l.DRAMMax:
		return fmt.Errorf("dram: DRAM idle %v outside [0,%v]", l.DRAMIdle, l.DRAMMax)
	}
	return nil
}

// Splitter divides one socket's power budget between its planes, from the
// planes' measured power alone (the same observability constraint DPS
// operates under).
type Splitter interface {
	Name() string
	// Split returns the plane caps for the next interval. caps in effect
	// and measured plane powers for the last interval are provided; the
	// returned caps must sum to at most budget.
	Split(budget power.Watts, limits PlaneLimits, cpuCap, dramCap, cpuPower, dramPower power.Watts) (power.Watts, power.Watts)
}

// Static is a fixed-ratio splitter.
type Static struct {
	// CPUFraction of the budget goes to the package plane.
	CPUFraction float64
}

// Name implements Splitter.
func (s Static) Name() string {
	return fmt.Sprintf("Static(%.0f/%.0f)", s.CPUFraction*100, (1-s.CPUFraction)*100)
}

// Split implements Splitter.
func (s Static) Split(budget power.Watts, limits PlaneLimits, _, _, _, _ power.Watts) (power.Watts, power.Watts) {
	cpu := budget * power.Watts(s.CPUFraction)
	dram := budget - cpu
	return clampPlanes(cpu, dram, budget, limits)
}

// Proportional splits by the planes' measured draw plus equal headroom —
// it needs both planes' current power, making it the informed reference.
type Proportional struct {
	// Headroom is granted above each plane's measured power before
	// distributing the remainder evenly.
	Headroom power.Watts
}

// Name implements Splitter.
func (p Proportional) Name() string { return "Proportional" }

// Split implements Splitter.
func (p Proportional) Split(budget power.Watts, limits PlaneLimits, _, _, cpuPower, dramPower power.Watts) (power.Watts, power.Watts) {
	want1 := cpuPower + p.Headroom
	want2 := dramPower + p.Headroom
	total := want1 + want2
	if total <= 0 {
		return clampPlanes(budget/2, budget/2, budget, limits)
	}
	cpu := budget * want1 / total
	return clampPlanes(cpu, budget-cpu, budget, limits)
}

// Dynamic is the DPS-methodology splitter: multiplicative shifts driven by
// which plane is pinned at its cap. A pinned plane takes ShiftFraction of
// the other plane's slack each step; if both or neither are pinned, the
// split holds.
type Dynamic struct {
	// AtCap is the pinned-detection threshold (fraction of the cap).
	AtCap float64
	// ShiftFraction of the donor plane's slack moves per step.
	ShiftFraction float64
	// Margin is the minimum measured slack (watts) before any shift.
	// Without it, measurement noise ratchets budget away from a throttled
	// plane: a downward noise dip fabricates slack that gets donated, and
	// the both-pinned hold never returns it. Set it above ~3σ of the
	// sensor noise.
	Margin power.Watts
}

// DefaultDynamic mirrors the stateless module's thresholds, with a 6 W
// slack margin (3σ of the default 2 W sensor noise).
func DefaultDynamic() Dynamic { return Dynamic{AtCap: 0.95, ShiftFraction: 0.5, Margin: 6} }

// Name implements Splitter.
func (d Dynamic) Name() string { return "Dynamic" }

// Split implements Splitter.
func (d Dynamic) Split(budget power.Watts, limits PlaneLimits, cpuCap, dramCap, cpuPower, dramPower power.Watts) (power.Watts, power.Watts) {
	if cpuCap <= 0 || dramCap <= 0 {
		return clampPlanes(budget/2, budget/2, budget, limits)
	}
	cpuPinned := cpuPower >= cpuCap*power.Watts(d.AtCap)
	dramPinned := dramPower >= dramCap*power.Watts(d.AtCap)
	cpu, dram := cpuCap, dramCap
	switch {
	case cpuPinned && !dramPinned:
		slack := dramCap - dramPower
		if slack > d.Margin {
			move := (slack - d.Margin) * power.Watts(d.ShiftFraction)
			cpu += move
			dram -= move
		}
	case dramPinned && !cpuPinned:
		slack := cpuCap - cpuPower
		if slack > d.Margin {
			move := (slack - d.Margin) * power.Watts(d.ShiftFraction)
			dram += move
			cpu -= move
		}
	}
	// Rescale to the budget (handles budget changes between steps).
	if sum := cpu + dram; sum > 0 && sum != budget {
		cpu = cpu * budget / sum
		dram = budget - cpu
	}
	return clampPlanes(cpu, dram, budget, limits)
}

// clampPlanes enforces plane hardware ranges while keeping the sum within
// the budget.
func clampPlanes(cpu, dram, budget power.Watts, limits PlaneLimits) (power.Watts, power.Watts) {
	if cpu > limits.CPUMax {
		cpu = limits.CPUMax
	}
	if cpu < limits.CPUMin {
		cpu = limits.CPUMin
	}
	if dram > limits.DRAMMax {
		dram = limits.DRAMMax
	}
	if dram < limits.DRAMMin {
		dram = limits.DRAMMin
	}
	// If clamping pushed the sum over the budget, trim the larger plane.
	if cpu+dram > budget {
		over := cpu + dram - budget
		if cpu-over >= limits.CPUMin {
			cpu -= over
		} else if dram-over >= limits.DRAMMin {
			dram -= over
		}
	}
	return cpu, dram
}

// Result is one run's outcome under a splitter.
type Result struct {
	Splitter string
	Workload string
	// Duration is wall-clock completion time.
	Duration power.Seconds
	// MeanCPUCap/MeanDRAMCap are time-averaged plane caps.
	MeanCPUCap, MeanDRAMCap power.Watts
	// BudgetViolations counts steps where plane caps exceeded the budget.
	BudgetViolations int
}

// Run executes one workload on one socket under a total plane budget and
// a splitter, with Gaussian measurement noise on plane readings.
func Run(w Workload, budget power.Watts, limits PlaneLimits, sp Splitter, noiseSD power.Watts, seed int64) (Result, error) {
	if err := limits.Validate(); err != nil {
		return Result{}, err
	}
	if len(w.Phases) == 0 {
		return Result{}, fmt.Errorf("dram: workload %q has no phases", w.Name)
	}
	if budget < limits.CPUMin+limits.DRAMMin {
		return Result{}, fmt.Errorf("dram: budget %v below the plane floors", budget)
	}
	perf := workload.DefaultPerfModel()
	dramPerf := workload.PerfModel{IdlePower: limits.DRAMIdle, MinSpeed: perf.MinSpeed, Exponent: perf.Exponent}
	cpuPerf := workload.PerfModel{IdlePower: limits.CPUIdle, MinSpeed: perf.MinSpeed, Exponent: perf.Exponent}
	rng := rand.New(rand.NewSource(seed))

	res := Result{Splitter: sp.Name(), Workload: w.Name}
	cpuCap, dramCap := clampPlanes(budget/2, budget/2, budget, limits)
	const dt = power.Seconds(1)
	var capCPUSum, capDRAMSum float64
	steps := 0
	phase := 0
	var done power.Seconds

	for phase < len(w.Phases) {
		if steps > 1_000_000 {
			return Result{}, fmt.Errorf("dram: run exceeded a million steps")
		}
		ph := w.Phases[phase]
		// Planes draw their demand clipped by their caps (never below idle).
		cpuDraw := minW(ph.CPU, cpuCap)
		if cpuDraw < limits.CPUIdle {
			cpuDraw = limits.CPUIdle
		}
		dramDraw := minW(ph.DRAM, dramCap)
		if dramDraw < limits.DRAMIdle {
			dramDraw = limits.DRAMIdle
		}
		// Bottleneck progress.
		speed := cpuPerf.Speed(cpuCap, ph.CPU)
		if s := dramPerf.Speed(dramCap, ph.DRAM); s < speed {
			speed = s
		}
		remaining := dt
		for remaining > 1e-9 && phase < len(w.Phases) {
			ph = w.Phases[phase]
			left := ph.Work - done
			need := left / power.Seconds(speed)
			if need <= remaining {
				phase++
				done = 0
				remaining -= need
				if phase < len(w.Phases) {
					// Recompute speed for the new phase.
					speed = cpuPerf.Speed(cpuCap, w.Phases[phase].CPU)
					if s := dramPerf.Speed(dramCap, w.Phases[phase].DRAM); s < speed {
						speed = s
					}
				}
			} else {
				done += power.Seconds(speed) * remaining
				remaining = 0
			}
		}
		res.Duration += dt
		capCPUSum += float64(cpuCap)
		capDRAMSum += float64(dramCap)
		steps++

		// Noisy readings → next split.
		cpuMeas := cpuDraw + power.Watts(rng.NormFloat64())*noiseSD
		dramMeas := dramDraw + power.Watts(rng.NormFloat64())*noiseSD
		if cpuMeas < 0 {
			cpuMeas = 0
		}
		if dramMeas < 0 {
			dramMeas = 0
		}
		cpuCap, dramCap = sp.Split(budget, limits, cpuCap, dramCap, cpuMeas, dramMeas)
		if cpuCap+dramCap > budget+1e-6 {
			res.BudgetViolations++
		}
	}
	res.MeanCPUCap = power.Watts(capCPUSum / float64(steps))
	res.MeanDRAMCap = power.Watts(capDRAMSum / float64(steps))
	return res, nil
}

func minW(a, b power.Watts) power.Watts {
	if a < b {
		return a
	}
	return b
}

// Catalog returns the micro-study's workloads: compute-bound,
// memory-bound, and a phased mix, all with 300 s of nominal work.
func Catalog() []Workload {
	return []Workload{
		{Name: "compute", Phases: []Phase{{CPU: 150, DRAM: 12, Work: 300}}},
		{Name: "memory", Phases: []Phase{{CPU: 70, DRAM: 44, Work: 300}}},
		{Name: "mixed", Phases: repeatPhases([]Phase{
			{CPU: 150, DRAM: 12, Work: 30},
			{CPU: 70, DRAM: 44, Work: 30},
		}, 5)},
	}
}

func repeatPhases(ps []Phase, n int) []Phase {
	var out []Phase
	for i := 0; i < n; i++ {
		out = append(out, ps...)
	}
	return out
}
