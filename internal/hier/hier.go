// Package hier implements a two-level hierarchical DPS, the scaling
// structure the paper's related work attributes to the Argo project's
// "conclave-node two-level" power management (§2.3) — here built from
// power dynamics at both levels instead of stateless rules.
//
// Units are partitioned into groups (racks, sub-clusters). Each group runs
// a local DPS over its own units under a *group budget*. A top-level DPS
// treats every group as one aggregate unit — its "power reading" is the
// group's total measured power, its "cap" is the group budget — and
// reassigns group budgets every epoch from the groups' power dynamics. The
// same algorithmic machinery therefore shifts watts between sockets inside
// a group every step, and between whole groups every epoch.
//
// Why it matters: a single controller over N units does O(N) work per step
// and sees O(N) messages; the hierarchy bounds the top level at the group
// count and lets group controllers run near their nodes. The budget
// invariant composes: the top level never hands out more than the cluster
// budget, and each local DPS never exceeds its group budget.
package hier

import (
	"fmt"

	"dps/internal/core"
	"dps/internal/power"
)

// Config assembles a hierarchical manager.
type Config struct {
	// Groups is the number of first-level domains.
	Groups int
	// UnitsPerGroup is the unit count per group (uniform partition; unit u
	// belongs to group u / UnitsPerGroup).
	UnitsPerGroup int
	// Budget is the cluster-wide envelope; UnitMax/UnitMin are per *unit*.
	Budget power.Budget
	// Epoch is the number of decision steps between top-level budget
	// reassignments (local decisions happen every step).
	Epoch int
	// Local configures the per-group controllers; zero value takes DPS
	// defaults. Units and Budget fields are overwritten per group.
	Local *core.Config
	// Top configures the group-level controller; zero value takes DPS
	// defaults. Units and Budget fields are overwritten.
	Top *core.Config
	// Seed derives all controller seeds.
	Seed int64
}

// DefaultConfig returns a hierarchy of `groups` × `unitsPerGroup` units
// with a 5-step top-level epoch.
func DefaultConfig(groups, unitsPerGroup int, budget power.Budget) Config {
	return Config{
		Groups:        groups,
		UnitsPerGroup: unitsPerGroup,
		Budget:        budget,
		Epoch:         5,
		Seed:          1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Groups <= 0:
		return fmt.Errorf("hier: non-positive group count %d", c.Groups)
	case c.UnitsPerGroup <= 0:
		return fmt.Errorf("hier: non-positive units per group %d", c.UnitsPerGroup)
	case c.Epoch <= 0:
		return fmt.Errorf("hier: non-positive epoch %d", c.Epoch)
	}
	return c.Budget.Validate(c.Groups * c.UnitsPerGroup)
}

// Manager is the two-level controller. It implements core.Manager over the
// full unit space.
type Manager struct {
	cfg    Config
	units  int
	top    *core.DPS
	locals []*core.DPS

	groupBudgets power.Vector // current per-group totals (top-level caps)
	groupPower   power.Vector // scratch: per-group summed readings
	caps         power.Vector // assembled per-unit caps
	steps        uint64
}

var _ core.Manager = (*Manager)(nil)

// New builds the hierarchy. Group budgets start even, every local DPS
// starts at its constant cap — identical to flat DPS's initial condition.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	units := cfg.Groups * cfg.UnitsPerGroup

	// Top level: one "unit" per group. The group's hardware range is the
	// sum of its members' ranges.
	topCfg := core.DefaultConfig(cfg.Groups, power.Budget{
		Total:   cfg.Budget.Total,
		UnitMax: cfg.Budget.UnitMax * power.Watts(cfg.UnitsPerGroup),
		UnitMin: cfg.Budget.UnitMin * power.Watts(cfg.UnitsPerGroup),
	})
	if cfg.Top != nil {
		topCfg = *cfg.Top
		topCfg.Units = cfg.Groups
		topCfg.Budget = power.Budget{
			Total:   cfg.Budget.Total,
			UnitMax: cfg.Budget.UnitMax * power.Watts(cfg.UnitsPerGroup),
			UnitMin: cfg.Budget.UnitMin * power.Watts(cfg.UnitsPerGroup),
		}
	}
	topCfg.Seed = cfg.Seed * 7919
	top, err := core.NewDPS(topCfg)
	if err != nil {
		return nil, fmt.Errorf("hier: building top level: %w", err)
	}

	m := &Manager{
		cfg:          cfg,
		units:        units,
		top:          top,
		locals:       make([]*core.DPS, cfg.Groups),
		groupBudgets: top.Caps().Clone(),
		groupPower:   make(power.Vector, cfg.Groups),
		caps:         make(power.Vector, units),
	}
	for g := 0; g < cfg.Groups; g++ {
		localBudget := power.Budget{
			Total:   m.groupBudgets[g],
			UnitMax: cfg.Budget.UnitMax,
			UnitMin: cfg.Budget.UnitMin,
		}
		localCfg := core.DefaultConfig(cfg.UnitsPerGroup, localBudget)
		if cfg.Local != nil {
			localCfg = *cfg.Local
			localCfg.Units = cfg.UnitsPerGroup
			localCfg.Budget = localBudget
		}
		localCfg.Seed = cfg.Seed*104729 + int64(g)
		local, err := core.NewDPS(localCfg)
		if err != nil {
			return nil, fmt.Errorf("hier: building group %d: %w", g, err)
		}
		m.locals[g] = local
		copy(m.caps[g*cfg.UnitsPerGroup:(g+1)*cfg.UnitsPerGroup], local.Caps())
	}
	return m, nil
}

// Name implements core.Manager.
func (m *Manager) Name() string { return "DPS(hierarchical)" }

// Budget implements core.Manager.
func (m *Manager) Budget() power.Budget { return m.cfg.Budget }

// Caps implements core.Manager.
func (m *Manager) Caps() power.Vector { return m.caps }

// GroupBudgets returns the current per-group power totals (owned by the
// manager; for logging and tests).
func (m *Manager) GroupBudgets() power.Vector { return m.groupBudgets }

// Group returns group g's local controller (for inspection in tests).
func (m *Manager) Group(g int) *core.DPS { return m.locals[g] }

// Decide implements core.Manager: local decisions every step, a top-level
// budget reassignment every Epoch steps.
func (m *Manager) Decide(snap core.Snapshot) power.Vector {
	if len(snap.Power) != m.units {
		panic(fmt.Sprintf("hier: %d readings for %d units", len(snap.Power), m.units))
	}
	upg := m.cfg.UnitsPerGroup

	// Aggregate group power for the top level.
	for g := 0; g < m.cfg.Groups; g++ {
		var sum power.Watts
		for _, p := range snap.Power[g*upg : (g+1)*upg] {
			sum += p
		}
		m.groupPower[g] = sum
	}

	// Top level: reassign group budgets once per epoch. The top-level DPS
	// still observes every step so its power histories stay current.
	topCaps := m.top.Decide(core.Snapshot{Power: m.groupPower, Interval: snap.Interval})
	if m.steps%uint64(m.cfg.Epoch) == 0 {
		copy(m.groupBudgets, topCaps)
		for g, local := range m.locals {
			if err := local.SetTotalBudget(m.groupBudgets[g]); err != nil {
				// A top-level cap below unitsPerGroup×UnitMin cannot occur:
				// the top budget's UnitMin enforces it. Keep the previous
				// budget if it ever does.
				continue
			}
		}
	}
	m.steps++

	// Local level: every group decides within its current budget.
	for g, local := range m.locals {
		caps := local.Decide(core.Snapshot{
			Power:    snap.Power[g*upg : (g+1)*upg],
			Interval: snap.Interval,
		})
		copy(m.caps[g*upg:(g+1)*upg], caps)
	}
	return m.caps
}

// Steps returns the number of Decide calls so far.
func (m *Manager) Steps() uint64 { return m.steps }
