package hier

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dps/internal/core"
	"dps/internal/power"
)

func testBudget(units int) power.Budget {
	return power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(2, 10, testBudget(20))
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{Groups: 0, UnitsPerGroup: 10, Budget: testBudget(20), Epoch: 5},
		{Groups: 2, UnitsPerGroup: 0, Budget: testBudget(20), Epoch: 5},
		{Groups: 2, UnitsPerGroup: 10, Budget: testBudget(20), Epoch: 0},
		{Groups: 2, UnitsPerGroup: 10, Budget: power.Budget{}, Epoch: 5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted %+v", i, cfg)
		}
	}
}

func TestInitialConditionMatchesFlatDPS(t *testing.T) {
	m, err := New(DefaultConfig(2, 10, testBudget(20)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "DPS(hierarchical)" {
		t.Errorf("Name = %q", m.Name())
	}
	for u, c := range m.Caps() {
		if c != 110 {
			t.Errorf("initial cap[%d] = %v, want the constant cap 110", u, c)
		}
	}
	gb := m.GroupBudgets()
	if gb[0] != 1100 || gb[1] != 1100 {
		t.Errorf("initial group budgets %v, want an even 1100/1100 split", gb)
	}
}

func TestDecidePanicsOnSizeMismatch(t *testing.T) {
	m, err := New(DefaultConfig(2, 2, testBudget(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Decide with wrong reading count did not panic")
		}
	}()
	m.Decide(core.Snapshot{Power: power.Vector{1, 2}, Interval: 1})
}

// The composed budget invariant: cluster-wide cap sum within the cluster
// budget, and each group's cap sum within that group's assigned budget,
// for arbitrary reading sequences.
func TestComposedBudgetInvariantProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		cfg := DefaultConfig(3, 4, testBudget(12))
		cfg.Seed = seed
		m, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < int(steps%50)+1; s++ {
			readings := make(power.Vector, 12)
			for u := range readings {
				readings[u] = power.Watts(rng.Float64() * 180)
			}
			caps := m.Decide(core.Snapshot{Power: readings, Interval: 1})
			if caps.Sum() > cfg.Budget.Total+1e-6 {
				return false
			}
			gb := m.GroupBudgets()
			if gb.Sum() > cfg.Budget.Total+1e-6 {
				return false
			}
			for g := 0; g < 3; g++ {
				var groupSum power.Watts
				for _, c := range caps[g*4 : (g+1)*4] {
					groupSum += c
				}
				if groupSum > gb[g]+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopLevelReallocatesBetweenGroups(t *testing.T) {
	// Group 0 saturates while group 1 idles: after a few epochs the top
	// level must move budget toward group 0.
	cfg := DefaultConfig(2, 4, testBudget(8)) // 880 W total, 440 each
	cfg.Epoch = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		readings := make(power.Vector, 8)
		caps := m.Caps()
		for u := 0; u < 4; u++ { // group 0: wants 165 per unit
			readings[u] = min2(165, caps[u])
		}
		for u := 4; u < 8; u++ { // group 1: idle
			readings[u] = 20
		}
		m.Decide(core.Snapshot{Power: readings, Interval: 1})
	}
	gb := m.GroupBudgets()
	if gb[0] <= gb[1] {
		t.Errorf("group budgets %v: the saturated group did not receive more", gb)
	}
	if gb[0] < 500 {
		t.Errorf("saturated group budget %v, want a clear majority of the 880 W", gb[0])
	}
}

func TestRebalanceAfterLateGroupRamps(t *testing.T) {
	// The Figure 1 story across *groups*: group 0 hogs the budget, then
	// group 1 ramps; the top level must pull budgets back toward even.
	cfg := DefaultConfig(2, 4, testBudget(8))
	cfg.Epoch = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	step := func(d0, d1 power.Watts) {
		readings := make(power.Vector, 8)
		caps := m.Caps()
		for u := 0; u < 4; u++ {
			readings[u] = min2(d0, caps[u])
		}
		for u := 4; u < 8; u++ {
			readings[u] = min2(d1, caps[u])
		}
		m.Decide(core.Snapshot{Power: readings, Interval: 1})
	}
	for i := 0; i < 30; i++ {
		step(165, 20)
	}
	skewed := m.GroupBudgets().Clone()
	if skewed[0] <= skewed[1] {
		t.Fatal("setup failed: budget not skewed toward group 0")
	}
	for i := 0; i < 60; i++ {
		step(165, 165)
	}
	gb := m.GroupBudgets()
	imbalance := power.AbsDiff(gb[0], gb[1])
	if imbalance > 60 {
		t.Errorf("group budgets %v still imbalanced by %v W after group 1 ramped", gb, imbalance)
	}
}

func TestEpochGatesTopLevelChanges(t *testing.T) {
	cfg := DefaultConfig(2, 2, testBudget(4))
	cfg.Epoch = 10
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate group 0 for a few steps (< epoch): group budgets must not
	// move between epoch boundaries.
	var prev power.Vector
	for step := 0; step < 9; step++ {
		readings := power.Vector{165, 165, 20, 20}
		caps := m.Caps()
		readings[0] = min2(readings[0], caps[0])
		readings[1] = min2(readings[1], caps[1])
		m.Decide(core.Snapshot{Power: readings, Interval: 1})
		gb := m.GroupBudgets().Clone()
		if step > 0 { // step 0 is an epoch boundary (steps counter starts at 0)
			for g := range gb {
				if gb[g] != prev[g] {
					t.Fatalf("group budgets moved mid-epoch at step %d: %v -> %v", step, prev, gb)
				}
			}
		}
		prev = gb
	}
}

func TestCustomLocalAndTopConfigs(t *testing.T) {
	localCfg := core.DefaultConfig(1, testBudget(1)) // Units/Budget overwritten
	localCfg.DisablePriority = true
	topCfg := core.DefaultConfig(1, testBudget(1))
	cfg := DefaultConfig(2, 3, testBudget(6))
	cfg.Local = &localCfg
	cfg.Top = &topCfg
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Group(0).Name() != "DPS(stateless-only)" {
		t.Errorf("local config not applied: %q", m.Group(0).Name())
	}
}

func min2(a, b power.Watts) power.Watts {
	if a < b {
		return a
	}
	return b
}
