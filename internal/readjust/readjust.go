// Package readjust implements the paper's cap readjusting module
// (Algorithms 3 and 4): the stage that turns the stateless module's
// temporary allocation plus the priority module's flags into DPS's final
// cap decision.
//
// It has two parts. Restore (Algorithm 3) notices when no unit in the whole
// system is drawing meaningful power and resets every cap to the constant
// cap, guaranteeing headroom for whichever unit's work arrives next.
// Readjust (Algorithm 4) then either grants leftover budget to
// high-priority units (more to those with lower caps, who are further from
// their anticipated peak) or — when the budget is exhausted — equalizes the
// caps of all high-priority units so that no unit that ramped up early can
// permanently starve one that ramped up late. The equalization step is what
// lets DPS escape the stateless local optimum shown in the paper's Figure 1.
package readjust

import (
	"fmt"

	"dps/internal/power"
)

// Config holds the module's parameters.
type Config struct {
	// RestoreThreshold is the fraction of the constant cap below which a
	// unit counts as quiet (Algorithm 3's inc_threshold). All units must be
	// quiet for restoration to trigger.
	RestoreThreshold float64
	// EnforceFloor adds an explicit guarantee pass after equalization: if
	// the equalized high-priority cap falls below the constant cap, budget
	// is reclaimed from low-priority units holding more than the constant
	// cap until every high-priority unit reaches it. The paper argues this
	// situation cannot arise (§4.3.4); enforcing it makes the
	// constant-allocation lower bound hold by construction even under
	// adversarial stateless-module states. Disable for ablation.
	EnforceFloor bool
	// DisableRestore skips Algorithm 3 entirely (ablation knob).
	DisableRestore bool
}

// DefaultConfig treats a unit as quiet below 50 % of the constant cap and
// enforces the lower-bound floor.
func DefaultConfig() Config {
	return Config{RestoreThreshold: 0.5, EnforceFloor: true}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	if c.RestoreThreshold <= 0 || c.RestoreThreshold > 1 {
		return fmt.Errorf("readjust: RestoreThreshold %v outside (0,1]", c.RestoreThreshold)
	}
	return nil
}

// Module applies restore and readjust to a cap vector.
type Module struct {
	cfg Config
}

// New returns a module with the given configuration.
func New(cfg Config) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Module{cfg: cfg}, nil
}

// Config returns the module's configuration.
func (m *Module) Config() Config { return m.cfg }

// Restore implements Algorithm 3. If every unit's current power is below
// RestoreThreshold × constantCap, all caps are reset to constantCap and the
// corresponding changed flags are set. It returns whether restoration
// happened; when it does, Readjust must be skipped.
func (m *Module) Restore(powerNow, caps power.Vector, constantCap power.Watts, changed []bool) bool {
	if m.cfg.DisableRestore {
		return false
	}
	limit := constantCap * power.Watts(m.cfg.RestoreThreshold)
	for _, p := range powerNow {
		if p > limit {
			return false
		}
	}
	for u := range caps {
		if caps[u] != constantCap {
			caps[u] = constantCap
			if changed != nil {
				changed[u] = true
			}
		}
	}
	return true
}

// Outcome reports which branch of Algorithm 4 a Readjust call took, so
// callers can count how often the budget was exhausted versus granted.
type Outcome int

const (
	// OutcomeNone means no high-priority units existed; caps untouched.
	OutcomeNone Outcome = iota
	// OutcomeGrant means leftover budget was distributed (Algorithm 4's
	// budget-available branch).
	OutcomeGrant
	// OutcomeEqualize means the budget was exhausted and high-priority
	// caps were equalized (the branch that escapes Figure 1's local
	// optimum).
	OutcomeEqualize
)

// String names the outcome for logs and metrics labels.
func (o Outcome) String() string {
	switch o {
	case OutcomeGrant:
		return "grant"
	case OutcomeEqualize:
		return "equalize"
	default:
		return "none"
	}
}

// Readjust implements Algorithm 4. prio[u] marks high-priority units.
//
//   - If unassigned budget remains, it is divided among high-priority units
//     with weights inversely proportional to their current caps (a unit far
//     below its anticipated peak gets more), each cap clamped to
//     budget.UnitMax. Deviation from the paper's literal pseudocode
//     (DESIGN.md): the share is *added* to the existing cap rather than
//     replacing it.
//   - Otherwise the caps of all high-priority units are equalized at their
//     mean, forcing equal penalties on all units that need power, and — with
//     EnforceFloor — never below the constant cap.
//
// Low-priority units are never touched. The sum of caps never increases by
// more than the unassigned budget, so the cluster budget stays respected.
// The returned Outcome identifies the branch taken.
func (m *Module) Readjust(caps power.Vector, prio []bool, budget power.Budget, constantCap power.Watts, changed []bool) Outcome {
	n := len(caps)
	if len(prio) != n {
		panic(fmt.Sprintf("readjust: %d priorities for %d caps", len(prio), n))
	}
	countHigh := 0
	for _, p := range prio {
		if p {
			countHigh++
		}
	}
	return m.ReadjustCounted(caps, prio, budget, constantCap, changed, countHigh)
}

// ReadjustCounted is Readjust with the high-priority count supplied by
// the caller instead of rescanned. The sparse decision path maintains
// that count incrementally (classification touches only changed units,
// so the O(N) tally here would otherwise dominate its quiet rounds);
// countHigh must equal the number of true entries in prio. Bitwise
// identical to Readjust given a correct count.
func (m *Module) ReadjustCounted(caps power.Vector, prio []bool, budget power.Budget, constantCap power.Watts, changed []bool, countHigh int) Outcome {
	n := len(caps)
	if len(prio) != n {
		panic(fmt.Sprintf("readjust: %d priorities for %d caps", len(prio), n))
	}
	if countHigh == 0 {
		return OutcomeNone
	}

	avail := budget.Total - caps.Sum()
	if avail > 0 {
		m.grantLeftover(caps, prio, budget, avail, changed)
		return OutcomeGrant
	}
	m.equalize(caps, prio, budget, constantCap, countHigh, changed)
	return OutcomeEqualize
}

// grantLeftover distributes avail watts to high-priority units, weighting
// each unit by the inverse of its current cap.
func (m *Module) grantLeftover(caps power.Vector, prio []bool, budget power.Budget, avail power.Watts, changed []bool) {
	// Weights: w_u = 1/cap_u (with a floor to avoid division blow-up). The
	// paper's budget_high/cap_u numerator cancels during normalization.
	const minDivisor = 1.0 // watts
	var totalWeight float64
	for u := range caps {
		if prio[u] {
			d := float64(caps[u])
			if d < minDivisor {
				d = minDivisor
			}
			totalWeight += 1 / d
		}
	}
	if totalWeight <= 0 {
		return
	}
	for u := range caps {
		if !prio[u] {
			continue
		}
		d := float64(caps[u])
		if d < minDivisor {
			d = minDivisor
		}
		share := avail * power.Watts((1/d)/totalWeight)
		next := caps[u] + share
		if next > budget.UnitMax {
			next = budget.UnitMax
		}
		if next != caps[u] {
			caps[u] = next
			if changed != nil {
				changed[u] = true
			}
		}
	}
}

// equalize sets every high-priority unit's cap to the group mean (clamped
// to hardware limits), optionally raising the mean to the constant cap by
// reclaiming surplus from low-priority units.
func (m *Module) equalize(caps power.Vector, prio []bool, budget power.Budget, constantCap power.Watts, countHigh int, changed []bool) {
	var budgetHigh power.Watts
	for u := range caps {
		if prio[u] {
			budgetHigh += caps[u]
		}
	}
	target := budgetHigh / power.Watts(countHigh)

	if m.cfg.EnforceFloor && target < constantCap {
		// Reclaim surplus (cap − constantCap) from low-priority units until
		// high-priority units can all reach the constant cap.
		needed := (constantCap - target) * power.Watts(countHigh)
		var surplus power.Watts
		for u := range caps {
			if !prio[u] && caps[u] > constantCap {
				surplus += caps[u] - constantCap
			}
		}
		take := needed
		if take > surplus {
			take = surplus
		}
		if surplus > 0 && take > 0 {
			frac := take / surplus
			for u := range caps {
				if !prio[u] && caps[u] > constantCap {
					delta := (caps[u] - constantCap) * frac
					caps[u] -= delta
					if changed != nil {
						changed[u] = true
					}
				}
			}
			target += take / power.Watts(countHigh)
		}
	}

	if target > budget.UnitMax {
		target = budget.UnitMax
	}
	if target < budget.UnitMin {
		target = budget.UnitMin
	}
	for u := range caps {
		if prio[u] && caps[u] != target {
			caps[u] = target
			if changed != nil {
				changed[u] = true
			}
		}
	}
}
