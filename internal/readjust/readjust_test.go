package readjust

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dps/internal/power"
)

var budget = power.Budget{Total: 440, UnitMax: 165, UnitMin: 10}

const constCap = power.Watts(110)

func mustNew(t *testing.T, cfg Config) *Module {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	for _, thr := range []float64{0, -0.1, 1.1} {
		cfg := DefaultConfig()
		cfg.RestoreThreshold = thr
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted RestoreThreshold %v", thr)
		}
	}
}

func TestRestoreWhenAllQuiet(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	caps := power.Vector{150, 40, 90, 60}
	changed := make([]bool, 4)
	// Everybody under 0.5·110 = 55 W.
	restored := m.Restore(power.Vector{30, 20, 50, 10}, caps, constCap, changed)
	if !restored {
		t.Fatal("restore did not trigger with all units quiet")
	}
	for u, c := range caps {
		if c != constCap {
			t.Errorf("cap[%d] = %v, want constant cap %v", u, c, constCap)
		}
	}
	// Only caps that actually moved are flagged.
	if !changed[0] || !changed[1] || !changed[2] || !changed[3] {
		t.Errorf("changed = %v, want all true (every cap differed from 110)", changed)
	}
}

func TestRestoreSkipsFlagsForUnchangedCaps(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	caps := power.Vector{constCap, 40}
	changed := make([]bool, 2)
	if !m.Restore(power.Vector{10, 10}, caps, constCap, changed) {
		t.Fatal("restore did not trigger")
	}
	if changed[0] {
		t.Error("unit already at the constant cap flagged as changed")
	}
	if !changed[1] {
		t.Error("restored unit not flagged as changed")
	}
}

func TestRestoreBlockedByOneBusyUnit(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	caps := power.Vector{150, 40}
	// Unit 0 draws 80 W > 55 W: no restoration.
	if m.Restore(power.Vector{80, 20}, caps, constCap, nil) {
		t.Fatal("restore triggered despite a busy unit")
	}
	if caps[0] != 150 || caps[1] != 40 {
		t.Errorf("caps mutated without restoration: %v", caps)
	}
}

func TestRestoreDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableRestore = true
	m := mustNew(t, cfg)
	caps := power.Vector{150, 40}
	if m.Restore(power.Vector{10, 10}, caps, constCap, nil) {
		t.Error("restore ran despite DisableRestore")
	}
}

func TestReadjustNoHighPriorityIsNoop(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	caps := power.Vector{150, 40}
	m.Readjust(caps, []bool{false, false}, budget, constCap, nil)
	if caps[0] != 150 || caps[1] != 40 {
		t.Errorf("caps changed with no high-priority units: %v", caps)
	}
}

func TestGrantLeftoverFavorsLowCaps(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// 440 − 380 = 60 W leftover; units 0 (cap 60) and 1 (cap 120) are
	// high priority. Weight ∝ 1/cap ⇒ unit 0 gets twice unit 1's share,
	// and neither grant reaches the 165 W hardware clamp.
	caps := power.Vector{60, 120, 100, 100}
	prio := []bool{true, true, false, false}
	m.Readjust(caps, prio, budget, constCap, nil)
	grant0 := float64(caps[0] - 60)
	grant1 := float64(caps[1] - 120)
	if grant0 <= grant1 {
		t.Errorf("low-cap unit granted %v, high-cap unit %v; want more to the low cap", grant0, grant1)
	}
	if math.Abs(grant0-2*grant1) > 1e-6 {
		t.Errorf("grants %v and %v, want 2:1 ratio", grant0, grant1)
	}
	if caps[2] != 100 || caps[3] != 100 {
		t.Errorf("low-priority caps touched: %v", caps)
	}
	if got := caps.Sum(); got > budget.Total+1e-9 {
		t.Errorf("caps sum %v exceeds budget", got)
	}
}

func TestGrantLeftoverClampsAtUnitMax(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	caps := power.Vector{160, 10, 10, 10}
	prio := []bool{true, false, false, false}
	m.Readjust(caps, prio, budget, constCap, nil)
	if caps[0] > budget.UnitMax {
		t.Errorf("cap %v exceeds UnitMax %v", caps[0], budget.UnitMax)
	}
}

func TestEqualizeWhenBudgetExhausted(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// Sum is exactly the budget: the Figure 1 deadlock state. Units 0 and
	// 1 high priority with skewed caps.
	caps := power.Vector{165, 55, 110, 110}
	prio := []bool{true, true, false, false}
	changed := make([]bool, 4)
	m.Readjust(caps, prio, budget, constCap, changed)
	if caps[0] != caps[1] {
		t.Errorf("high-priority caps not equalized: %v vs %v", caps[0], caps[1])
	}
	if caps[0] != 110 { // (165+55)/2
		t.Errorf("equalized cap = %v, want 110", caps[0])
	}
	if caps[2] != 110 || caps[3] != 110 {
		t.Errorf("low-priority caps touched: %v", caps)
	}
	if !changed[0] || !changed[1] {
		t.Errorf("changed = %v, want the equalized units flagged", changed)
	}
}

func TestEqualizeEnforcesConstantCapFloor(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// High-priority units average below the constant cap while
	// low-priority units hold surplus above it: the floor pass must
	// reclaim the surplus.
	caps := power.Vector{80, 80, 140, 140}
	prio := []bool{true, true, false, false}
	m.Readjust(caps, prio, budget, constCap, nil)
	if caps[0] < constCap-1e-9 {
		t.Errorf("high-priority cap %v below the constant-allocation floor %v", caps[0], constCap)
	}
	if caps[2] >= 140 {
		t.Errorf("low-priority surplus not reclaimed: %v", caps[2])
	}
	if got := caps.Sum(); got > budget.Total+1e-6 {
		t.Errorf("caps sum %v exceeds budget", got)
	}
}

func TestEqualizeConservesSum(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	// Exhausted budget with the high-priority mean already above the
	// constant cap: equalization must redistribute within the group
	// without changing the total and without touching low-priority units.
	caps := power.Vector{150, 100, 95, 95}
	prio := []bool{true, true, false, false}
	before := caps.Sum()
	m.Readjust(caps, prio, budget, constCap, nil)
	if got := caps.Sum(); math.Abs(float64(got-before)) > 1e-6 {
		t.Errorf("equalization changed the cap sum: %v → %v", before, got)
	}
	if caps[0] != 125 || caps[1] != 125 {
		t.Errorf("caps = %v, want high-priority units at the 125 mean", caps)
	}
	if caps[2] != 95 || caps[3] != 95 {
		t.Errorf("low-priority caps touched: %v", caps)
	}
}

// The floor pass can always be fully satisfied when the cap sum does not
// exceed the budget: with sum = budget, the low-priority surplus above the
// constant cap is at least (constantCap − highMean)·countHigh by
// conservation. This lemma is why EnforceFloor makes the lower-bound
// guarantee unconditional; the property test demonstrates it.
func TestFloorAlwaysSatisfiableAtFullBudgetProperty(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 3
		b := power.Budget{Total: power.Watts(n) * 110, UnitMax: 165, UnitMin: 10}
		caps := make(power.Vector, n)
		prio := make([]bool, n)
		prio[0] = true // at least one high-priority unit
		for u := range caps {
			caps[u] = 10 + power.Watts(rng.Float64()*155)
			if u > 0 {
				prio[u] = rng.Intn(2) == 0
			}
		}
		// Scale toward the budget. Hardware clamping can leave the sum
		// slightly under it, in which case Readjust takes the
		// leftover-granting branch instead; the floor lemma is asserted
		// only when the exhausted-budget (equalize) branch actually runs.
		scale := b.Total / caps.Sum()
		for u := range caps {
			caps[u] *= scale
			if caps[u] > b.UnitMax {
				caps[u] = b.UnitMax
			}
			if caps[u] < b.UnitMin {
				caps[u] = b.UnitMin
			}
		}
		exhausted := caps.Sum() >= b.Total
		m.Readjust(caps, prio, b, b.ConstantCap(n), nil)
		if exhausted {
			for u := range caps {
				if prio[u] && caps[u] < b.ConstantCap(n)-1e-6 {
					return false
				}
			}
		}
		return caps.Sum() <= b.Total+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualizeFloorDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnforceFloor = false
	m := mustNew(t, cfg)
	caps := power.Vector{80, 80, 140, 140}
	prio := []bool{true, true, false, false}
	m.Readjust(caps, prio, budget, constCap, nil)
	if caps[0] != 80 {
		t.Errorf("cap = %v; without the floor the mean of {80,80} is 80", caps[0])
	}
	if caps[2] != 140 {
		t.Errorf("low-priority cap touched with floor disabled: %v", caps[2])
	}
}

func TestReadjustPanicsOnSizeMismatch(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("Readjust with mismatched priorities did not panic")
		}
	}()
	m.Readjust(power.Vector{1, 2}, []bool{true}, budget, constCap, nil)
}

// Readjust never grows the cap sum beyond the budget and never shrinks a
// high-priority group below its own mass minus reclaimed surplus — i.e.
// the total stays within [previous total, budget].
func TestReadjustBudgetInvariantProperty(t *testing.T) {
	m := mustNew(t, DefaultConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 2
		caps := make(power.Vector, n)
		prio := make([]bool, n)
		b := power.Budget{Total: power.Watts(n) * 110, UnitMax: 165, UnitMin: 10}
		for u := range caps {
			caps[u] = 10 + power.Watts(rng.Float64()*130)
			prio[u] = rng.Intn(2) == 0
		}
		// Keep the starting state legal (the pipeline guarantees this).
		if caps.Sum() > b.Total {
			scale := b.Total / caps.Sum()
			for u := range caps {
				caps[u] *= scale
			}
		}
		before := caps.Sum()
		m.Readjust(caps, prio, b, b.ConstantCap(n), nil)
		after := caps.Sum()
		if after > b.Total+1e-6 {
			return false
		}
		// Equalization conserves; granting only adds.
		return after >= before-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadjustOutcome(t *testing.T) {
	m := mustNew(t, DefaultConfig())

	caps := power.Vector{150, 40}
	if got := m.Readjust(caps, []bool{false, false}, budget, constCap, nil); got != OutcomeNone {
		t.Errorf("no high-priority units: outcome %v, want %v", got, OutcomeNone)
	}

	// 440 − 320 = 120 W leftover: the grant branch.
	caps = power.Vector{60, 60, 100, 100}
	if got := m.Readjust(caps, []bool{true, false, false, false}, budget, constCap, nil); got != OutcomeGrant {
		t.Errorf("leftover budget: outcome %v, want %v", got, OutcomeGrant)
	}

	// Sum at the 440 W budget: the equalize branch.
	caps = power.Vector{140, 100, 100, 100}
	if got := m.Readjust(caps, []bool{true, true, false, false}, budget, constCap, nil); got != OutcomeEqualize {
		t.Errorf("exhausted budget: outcome %v, want %v", got, OutcomeEqualize)
	}

	for o, want := range map[Outcome]string{OutcomeNone: "none", OutcomeGrant: "grant", OutcomeEqualize: "equalize"} {
		if o.String() != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), o.String(), want)
		}
	}
}
