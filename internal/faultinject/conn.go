package faultinject

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ConnConfig schedules faults on a wrapped connection. Probabilities are
// evaluated per operation (one Read or Write call) from the seeded
// stream; count-based triggers fire deterministically on the Nth
// operation. The zero value injects nothing.
type ConnConfig struct {
	// Seed drives the fault schedule. Two conns with the same seed and
	// config inject identically.
	Seed int64

	// DropProb closes the connection on an operation with this
	// probability; the operation fails with ErrDropped.
	DropProb float64
	// DropAfterOps closes the connection deterministically once this many
	// operations have completed (0 = never).
	DropAfterOps int

	// DelayProb stalls an operation for Delay before performing it,
	// modelling network jitter and scheduling hiccups.
	DelayProb float64
	Delay     time.Duration

	// TruncateProb makes a Write send only a prefix of its buffer and
	// fail with ErrTruncated, leaving the peer mid-frame.
	TruncateProb float64

	// PartitionAfterOps blackholes the connection once this many
	// operations have completed (0 = never): writes report success
	// without sending and reads block until the connection is closed —
	// a hung link, exactly the failure a server-side read deadline must
	// reap. A partition does not heal; recovery is a new connection.
	PartitionAfterOps int
	// PartitionProb blackholes the connection probabilistically instead.
	PartitionProb float64
}

// Conn wraps a net.Conn with the configured fault schedule. It is safe
// for the two-goroutine use the daemon's agent makes of a connection
// (one reader, one writer).
type Conn struct {
	net.Conn
	cfg      ConnConfig
	counters *Counters

	mu          sync.Mutex
	rng         *rand.Rand
	ops         int
	partitioned bool

	closeOnce sync.Once
	closed    chan struct{}
}

// WrapConn wraps inner with the fault schedule in cfg. counters may be
// nil.
func WrapConn(inner net.Conn, cfg ConnConfig, counters *Counters) *Conn {
	return &Conn{
		Conn:     inner,
		cfg:      cfg,
		counters: counters,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		closed:   make(chan struct{}),
	}
}

// connAction is the fault decision for one operation.
type connAction int

const (
	actNone connAction = iota
	actDrop
	actDelay
	actPartition
)

// decide consumes the operation's slot in the fault schedule. Exactly one
// action fires per operation so schedules stay easy to reason about.
func (c *Conn) decide(write bool) (connAction, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	if c.partitioned {
		return actPartition, false
	}
	if c.cfg.PartitionAfterOps > 0 && c.ops > c.cfg.PartitionAfterOps {
		c.partitioned = true
		c.counters.incConnPartition()
		return actPartition, false
	}
	if c.cfg.DropAfterOps > 0 && c.ops > c.cfg.DropAfterOps {
		return actDrop, false
	}
	if c.cfg.DropProb > 0 && c.rng.Float64() < c.cfg.DropProb {
		return actDrop, false
	}
	if c.cfg.PartitionProb > 0 && c.rng.Float64() < c.cfg.PartitionProb {
		c.partitioned = true
		c.counters.incConnPartition()
		return actPartition, false
	}
	truncate := false
	if write && c.cfg.TruncateProb > 0 && c.rng.Float64() < c.cfg.TruncateProb {
		truncate = true
	}
	if c.cfg.DelayProb > 0 && c.cfg.Delay > 0 && c.rng.Float64() < c.cfg.DelayProb {
		return actDelay, truncate
	}
	return actNone, truncate
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	act, _ := c.decide(false)
	switch act {
	case actDrop:
		c.counters.incConnDrop()
		c.Close()
		return 0, ErrDropped
	case actPartition:
		// A partitioned read hangs like a dead link: nothing arrives until
		// someone closes the connection.
		<-c.closed
		return 0, ErrDropped
	case actDelay:
		c.counters.incConnDelay()
		c.sleep()
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	act, truncate := c.decide(true)
	switch act {
	case actDrop:
		c.counters.incConnDrop()
		c.Close()
		return 0, ErrDropped
	case actPartition:
		// A partitioned write is silently swallowed — the sender cannot
		// tell; only the receiver's staleness clock can.
		return len(p), nil
	case actDelay:
		c.counters.incConnDelay()
		c.sleep()
	}
	if truncate && len(p) > 1 {
		c.counters.incConnTruncate()
		n, err := c.Conn.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, ErrTruncated
	}
	return c.Conn.Write(p)
}

// sleep waits for the configured delay, cut short by Close.
func (c *Conn) sleep() {
	t := time.NewTimer(c.cfg.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closed:
	}
}

// Close implements net.Conn, releasing any partitioned or delayed
// operations.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// Ops returns the number of operations attempted so far.
func (c *Conn) Ops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Partitioned reports whether the connection is blackholed.
func (c *Conn) Partitioned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitioned
}
