package faultinject

import (
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"dps/internal/power"
	"dps/internal/rapl"
	"dps/internal/telemetry"
)

// TestConnDeterministicReplay pins the reproducibility contract: two conns
// with the same seed and config inject the same fault at the same op.
func TestConnDeterministicReplay(t *testing.T) {
	run := func() int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		fc := WrapConn(a, ConnConfig{Seed: 42, DropProb: 0.2}, nil)
		go func() {
			buf := make([]byte, 4)
			for {
				if _, err := b.Read(buf); err != nil {
					return
				}
			}
		}()
		for i := 0; i < 100; i++ {
			if _, err := fc.Write([]byte("ping")); err != nil {
				if !errors.Is(err, ErrDropped) {
					t.Fatalf("op %d: unexpected error %v", i, err)
				}
				return i
			}
		}
		t.Fatal("seeded schedule with DropProb=0.2 never dropped in 100 ops")
		return -1
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("same seed dropped at op %d then op %d", first, second)
	}
}

// TestConnDropAfterOps verifies the deterministic drop trigger and that
// the underlying connection really closes.
func TestConnDropAfterOps(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, ConnConfig{DropAfterOps: 3}, nil)
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if _, err := fc.Write([]byte("x")); err != nil {
			t.Fatalf("op %d failed before the trigger: %v", i, err)
		}
	}
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrDropped) {
		t.Fatalf("op 4 error = %v, want ErrDropped", err)
	}
	// Underlying conn is closed: the peer sees EOF promptly.
	b.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Error("peer read succeeded after drop")
	}
}

// TestConnPartitionBlackholes verifies partition semantics: writes pretend
// success, reads hang until Close, and the partition is counted.
func TestConnPartitionBlackholes(t *testing.T) {
	reg := telemetry.NewRegistry()
	counters := NewCounters(reg)
	a, b := net.Pipe()
	defer b.Close()
	fc := WrapConn(a, ConnConfig{PartitionAfterOps: 1}, counters)

	go func() {
		buf := make([]byte, 1)
		b.Read(buf)
	}()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatalf("pre-partition write: %v", err)
	}
	// Partitioned now: the write "succeeds" but nothing arrives.
	if n, err := fc.Write([]byte("y")); n != 1 || err != nil {
		t.Fatalf("partitioned write = (%d, %v), want silent success", n, err)
	}
	if !fc.Partitioned() {
		t.Fatal("conn not partitioned after trigger")
	}

	readDone := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("partitioned read returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	fc.Close()
	select {
	case err := <-readDone:
		if !errors.Is(err, ErrDropped) {
			t.Fatalf("partitioned read after close = %v, want ErrDropped", err)
		}
	case <-time.After(time.Second):
		t.Fatal("partitioned read did not unblock on Close")
	}
	if got := counters.connPartition.Value(); got != 1 {
		t.Errorf("partition counter = %d, want 1", got)
	}
}

// TestConnTruncateWrites verifies a truncated write sends a strict prefix
// and surfaces ErrTruncated.
func TestConnTruncateWrites(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := WrapConn(a, ConnConfig{Seed: 7, TruncateProb: 1}, nil)

	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- n
	}()
	n, err := fc.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("write error = %v, want ErrTruncated", err)
	}
	if n != 4 {
		t.Fatalf("truncated write sent %d bytes, want 4", n)
	}
	if peer := <-got; peer != 4 {
		t.Fatalf("peer received %d bytes, want 4", peer)
	}
}

// TestDeviceTransientErrors verifies the deterministic every-Nth error
// trigger against a healthy inner device.
func TestDeviceTransientErrors(t *testing.T) {
	inner, err := rapl.NewSimDevice(rapl.DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := WrapDevice(inner, DeviceConfig{ErrEvery: 3}, nil)
	for i := 1; i <= 9; i++ {
		_, err := dev.EnergyMicroJoules()
		if i%3 == 0 {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("read %d error = %v, want ErrTransient", i, err)
			}
		} else if err != nil {
			t.Fatalf("read %d failed: %v", i, err)
		}
	}
}

// TestDeviceCrashRestart verifies a crash rebases the energy counter to
// zero and resets the cap to the hardware maximum.
func TestDeviceCrashRestart(t *testing.T) {
	cfg := rapl.DefaultSimConfig()
	cfg.NoiseStdDev = 0
	inner, err := rapl.NewSimDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inner.SetLoad(100)
	inner.Advance(10) // accrue ~1000 J
	if err := inner.SetCap(50); err != nil {
		t.Fatal(err)
	}

	// CrashEvery=2: read 1 is healthy, read 2 crash-restarts the device.
	dev := WrapDevice(inner, DeviceConfig{CrashEvery: 2}, nil)
	healthy, err := dev.EnergyMicroJoules()
	if err != nil {
		t.Fatal(err)
	}
	if healthy < 900_000_000 {
		t.Fatalf("pre-crash counter = %d µJ, want ≈1000 J", healthy)
	}
	uj, err := dev.EnergyMicroJoules()
	if err != nil {
		t.Fatal(err)
	}
	if uj != 0 {
		t.Fatalf("post-crash counter = %d µJ, want 0 (rebased)", uj)
	}
	if dev.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", dev.Crashes())
	}
	c, _ := dev.Cap()
	if c != inner.MaxPower() {
		t.Fatalf("post-crash cap = %v, want uncapped %v", c, inner.MaxPower())
	}
	// The counter keeps counting from its new base.
	inner.SetLoad(100)
	inner.Advance(1)
	uj2, err := dev.EnergyMicroJoules()
	if err != nil {
		t.Fatal(err)
	}
	if uj2 < 90_000_000 || uj2 > 110_000_000 {
		t.Fatalf("post-crash interval energy = %d µJ, want ≈100 J", uj2)
	}
}

// TestDeviceSpike verifies an injected counter jump shows up as a huge
// apparent energy delta.
func TestDeviceSpike(t *testing.T) {
	cfg := rapl.DefaultSimConfig()
	cfg.NoiseStdDev = 0
	inner, err := rapl.NewSimDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := WrapDevice(inner, DeviceConfig{Seed: 1, SpikeProb: 1, SpikeUJ: 500_000_000}, nil)
	before, err := dev.EnergyMicroJoules() // one spike folded in
	if err != nil {
		t.Fatal(err)
	}
	if before < 500_000_000 {
		t.Fatalf("spiked counter = %d, want ≥ 500 MµJ", before)
	}
}

// TestReadingsCorrupt verifies the corrupter produces each garbage class
// and counts what it did.
func TestReadingsCorrupt(t *testing.T) {
	reg := telemetry.NewRegistry()
	counters := NewCounters(reg)
	r := NewReadings(ReadingConfig{Seed: 3, NaNProb: 0.25, InfProb: 0.25, NegativeProb: 0.25, SpikeProb: 0.25}, counters)
	v := make(power.Vector, 400)
	for i := range v {
		v[i] = 100
	}
	n := r.Corrupt(v)
	if n == 0 {
		t.Fatal("corrupter touched nothing at combined probability 1-(0.75)^4-ish")
	}
	var nan, inf, neg, spike int
	for _, w := range v {
		f := float64(w)
		switch {
		case math.IsNaN(f):
			nan++
		case math.IsInf(f, 0):
			inf++
		case f < 0:
			neg++
		case f == 10_000:
			spike++
		}
	}
	if nan == 0 || inf == 0 || neg == 0 || spike == 0 {
		t.Fatalf("corruption classes missing: nan=%d inf=%d neg=%d spike=%d", nan, inf, neg, spike)
	}
	if got := int(counters.reading.Value()); got != n {
		t.Errorf("reading counter = %d, Corrupt returned %d", got, n)
	}
}
