package faultinject

import (
	"fmt"

	"dps/internal/core"
	"dps/internal/power"
)

// ManagerConfig schedules a budget fault: during decision rounds
// [FromRound, UntilRound) (1-based, counting this wrapper's Decide calls)
// the wrapped manager's caps are multiplied by Scale before delivery. A
// Scale > 1 manufactures exactly the failure the watchdog's
// budget_conservation audit exists to catch — a cap vector whose sum
// exceeds the budget — at a deterministic round, so chaos tests can use
// the alert itself as the oracle.
type ManagerConfig struct {
	// FromRound is the first faulted round, 1-based. Zero disables.
	FromRound uint64
	// UntilRound ends the fault window (exclusive). Zero means the fault
	// never ends.
	UntilRound uint64
	// Scale multiplies every cap during the window. Values <= 0 are
	// rejected.
	Scale float64
}

func (c ManagerConfig) validate() error {
	if c.FromRound > 0 && c.Scale <= 0 {
		return fmt.Errorf("faultinject: non-positive cap scale %v", c.Scale)
	}
	return nil
}

// Manager wraps a core.Manager and scales its decided caps during a
// configured round window. It intentionally does not implement the
// stats-returning decision API: the daemon falls back to plain Decide, so
// the corrupted vector flows through the delivery path like any
// health-blind policy's would.
type Manager struct {
	inner    core.Manager
	cfg      ManagerConfig
	counters *Counters
	rounds   uint64
	out      power.Vector
}

// WrapManager wraps inner with a scheduled budget fault.
func WrapManager(inner core.Manager, cfg ManagerConfig, counters *Counters) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Manager{inner: inner, cfg: cfg, counters: counters}, nil
}

// Name identifies the wrapper in /status.
func (m *Manager) Name() string { return m.inner.Name() + "+fault" }

// Budget returns the inner manager's envelope.
func (m *Manager) Budget() power.Budget { return m.inner.Budget() }

// Faulting reports whether the given 1-based round falls in the fault
// window.
func (m *Manager) faulting(round uint64) bool {
	return m.cfg.FromRound > 0 && round >= m.cfg.FromRound &&
		(m.cfg.UntilRound == 0 || round < m.cfg.UntilRound)
}

// Decide runs the inner manager, then corrupts the result inside the
// fault window. The corrupted vector lives in the wrapper's own buffer —
// the inner manager's state stays consistent, so recovery after the
// window is immediate.
func (m *Manager) Decide(snap core.Snapshot) power.Vector {
	caps := m.inner.Decide(snap)
	m.rounds++
	if !m.faulting(m.rounds) {
		return caps
	}
	m.counters.incBudget()
	if m.out == nil {
		m.out = make(power.Vector, len(caps))
	}
	for u, c := range caps {
		m.out[u] = power.Watts(m.cfg.Scale) * c
	}
	return m.out
}

// Caps mirrors the inner manager's current assignment (the uncorrupted
// view — what the controller believes).
func (m *Manager) Caps() power.Vector { return m.inner.Caps() }
