package faultinject

import (
	"math"
	"math/rand"
	"sync"

	"dps/internal/power"
	"dps/internal/rapl"
)

// DeviceConfig schedules faults on a wrapped rapl.Device. The zero value
// injects nothing.
type DeviceConfig struct {
	// Seed drives the fault schedule.
	Seed int64

	// ErrProb fails an EnergyMicroJoules read with ErrTransient — the
	// EAGAIN-class sysfs hiccup a tolerant meter must ride through.
	ErrProb float64
	// ErrEvery fails every Nth energy read deterministically (0 = never).
	ErrEvery int

	// SpikeProb advances the reported counter by SpikeUJ on a read,
	// which the meter above turns into an impossible power spike.
	SpikeProb float64
	// SpikeUJ is the injected counter jump (default 2 GJ-worth of µJ is
	// far beyond any real interval at socket power levels).
	SpikeUJ uint64

	// CrashEvery crash-restarts the device on every Nth energy read
	// (0 = never): the energy counter rebases to zero — exactly what a
	// node reboot does to RAPL — and the programmed cap resets to the
	// hardware maximum, like firmware coming back up uncapped.
	CrashEvery int

	// SetCapErrProb fails SetCap with ErrTransient.
	SetCapErrProb float64
}

// Device wraps a rapl.Device with the configured fault schedule. It is
// safe for concurrent use to the same degree as the wrapped device.
type Device struct {
	inner    rapl.Device
	cfg      DeviceConfig
	counters *Counters

	mu      sync.Mutex
	rng     *rand.Rand
	reads   int
	rebase  uint64 // counter value at the last crash-restart
	rebased bool
	spike   uint64 // accumulated injected counter jumps
	crashes int
}

var _ rapl.Device = (*Device)(nil)

// WrapDevice wraps inner with the fault schedule in cfg. counters may be
// nil.
func WrapDevice(inner rapl.Device, cfg DeviceConfig, counters *Counters) *Device {
	if cfg.SpikeUJ == 0 {
		cfg.SpikeUJ = 2_000_000_000 // ≈2 kJ: a >2 kW reading over one second
	}
	return &Device{
		inner:    inner,
		cfg:      cfg,
		counters: counters,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
}

// EnergyMicroJoules implements rapl.Device with injected transient
// errors, counter spikes, and crash-restarts.
func (d *Device) EnergyMicroJoules() (uint64, error) {
	d.mu.Lock()
	d.reads++
	if d.cfg.ErrEvery > 0 && d.reads%d.cfg.ErrEvery == 0 {
		d.mu.Unlock()
		d.counters.incDevErr()
		return 0, ErrTransient
	}
	if d.cfg.ErrProb > 0 && d.rng.Float64() < d.cfg.ErrProb {
		d.mu.Unlock()
		d.counters.incDevErr()
		return 0, ErrTransient
	}
	crash := d.cfg.CrashEvery > 0 && d.reads%d.cfg.CrashEvery == 0
	spike := d.cfg.SpikeProb > 0 && d.rng.Float64() < d.cfg.SpikeProb
	d.mu.Unlock()

	raw, err := d.inner.EnergyMicroJoules()
	if err != nil {
		return raw, err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if crash {
		// The counter rebases to zero and the cap comes back uncapped.
		d.rebase = raw
		d.rebased = true
		d.spike = 0
		d.crashes++
		d.counters.incDevCrash()
		// Reset outside the lock would race a concurrent crash; SetCap on
		// the wrapped device is cheap and lock-free here because we call
		// the inner device directly.
		d.inner.SetCap(d.inner.MaxPower())
	}
	if spike {
		d.spike += d.cfg.SpikeUJ
		d.counters.incDevSpike()
	}
	v := raw
	if d.rebased {
		v = (raw - d.rebase + rapl.CounterWrap) % rapl.CounterWrap
	}
	return (v + d.spike) % rapl.CounterWrap, nil
}

// SetCap implements rapl.Device with injected transient errors.
func (d *Device) SetCap(w power.Watts) error {
	if d.cfg.SetCapErrProb > 0 {
		d.mu.Lock()
		fail := d.rng.Float64() < d.cfg.SetCapErrProb
		d.mu.Unlock()
		if fail {
			d.counters.incDevErr()
			return ErrTransient
		}
	}
	return d.inner.SetCap(w)
}

// Cap implements rapl.Device.
func (d *Device) Cap() (power.Watts, error) { return d.inner.Cap() }

// MaxPower implements rapl.Device.
func (d *Device) MaxPower() power.Watts { return d.inner.MaxPower() }

// MinPower implements rapl.Device.
func (d *Device) MinPower() power.Watts { return d.inner.MinPower() }

// Crashes returns the number of crash-restarts injected so far.
func (d *Device) Crashes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashes
}

// ReadingConfig schedules corruption of a readings vector: the garbage a
// buggy agent or broken sensor stack could feed a controller, which the
// server boundary must reject. The zero value corrupts nothing.
type ReadingConfig struct {
	// Seed drives the corruption schedule.
	Seed int64
	// NaNProb, InfProb, and NegativeProb each replace a reading.
	NaNProb      float64
	InfProb      float64
	NegativeProb float64
	// SpikeProb replaces a reading with SpikeW (default 10 kW, far above
	// any socket TDP).
	SpikeProb float64
	SpikeW    power.Watts
}

// Readings corrupts power vectors in place with a seeded schedule.
type Readings struct {
	cfg      ReadingConfig
	counters *Counters

	mu  sync.Mutex
	rng *rand.Rand
}

// NewReadings builds a corrupter. counters may be nil.
func NewReadings(cfg ReadingConfig, counters *Counters) *Readings {
	if cfg.SpikeW == 0 {
		cfg.SpikeW = 10_000
	}
	return &Readings{cfg: cfg, counters: counters, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Corrupt mutates v in place per the schedule and returns the number of
// entries corrupted.
func (r *Readings) Corrupt(v power.Vector) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range v {
		switch {
		case r.cfg.NaNProb > 0 && r.rng.Float64() < r.cfg.NaNProb:
			v[i] = power.Watts(math.NaN())
		case r.cfg.InfProb > 0 && r.rng.Float64() < r.cfg.InfProb:
			v[i] = power.Watts(math.Inf(1))
		case r.cfg.NegativeProb > 0 && r.rng.Float64() < r.cfg.NegativeProb:
			v[i] = -v[i] - 1
		case r.cfg.SpikeProb > 0 && r.rng.Float64() < r.cfg.SpikeProb:
			v[i] = r.cfg.SpikeW
		default:
			continue
		}
		n++
		r.counters.incReading()
	}
	return n
}
