// Package faultinject provides deterministic, seedable fault wrappers for
// exercising the degraded-mode control plane: a net.Conn that drops,
// delays, truncates, and partitions; a rapl.Device that returns transient
// errors, spiked readings, and crash-restarts; and a readings corrupter
// that poisons power vectors with NaN/Inf/negative/spike values.
//
// Every wrapper owns a rand.Rand seeded from its config, so a fixed seed
// replays the same fault schedule — chaos tests are reproducible, not
// flaky. Deterministic count-based triggers (drop after N operations,
// crash every Nth read) are provided alongside the probabilistic knobs
// for tests that need a fault at an exact point.
//
// Injected faults are counted through an optional Counters, which
// registers one dps_fault_injected_total{kind=...} series per fault kind
// in a telemetry.Registry — the same registry the daemon and agent
// export, so a chaos run's injected faults and the control plane's
// observed health transitions land in one scrape.
package faultinject

import (
	"errors"

	"dps/internal/telemetry"
)

// Injected fault sentinels. Callers distinguish injected failures from
// real ones with errors.Is.
var (
	// ErrDropped is returned by a Conn operation that closed the
	// connection mid-flight.
	ErrDropped = errors.New("faultinject: connection dropped")
	// ErrTruncated is returned by a Conn write that sent only a prefix.
	ErrTruncated = errors.New("faultinject: write truncated")
	// ErrTransient is returned by an injected device read error.
	ErrTransient = errors.New("faultinject: transient device error")
)

// Counters exports per-kind injection counts to a telemetry registry.
// A nil *Counters is valid everywhere and counts nothing.
type Counters struct {
	connDrop      *telemetry.Counter
	connDelay     *telemetry.Counter
	connTruncate  *telemetry.Counter
	connPartition *telemetry.Counter
	devErr        *telemetry.Counter
	devSpike      *telemetry.Counter
	devCrash      *telemetry.Counter
	reading       *telemetry.Counter
	budget        *telemetry.Counter
}

// NewCounters registers the dps_fault_injected_total family in reg.
func NewCounters(reg *telemetry.Registry) *Counters {
	const name = "dps_fault_injected_total"
	const help = "Faults injected by the faultinject harness."
	kind := func(k string) *telemetry.Counter {
		return reg.Counter(name, help, telemetry.Label{Key: "kind", Value: k})
	}
	return &Counters{
		connDrop:      kind("conn_drop"),
		connDelay:     kind("conn_delay"),
		connTruncate:  kind("conn_truncate"),
		connPartition: kind("conn_partition"),
		devErr:        kind("device_error"),
		devSpike:      kind("device_spike"),
		devCrash:      kind("device_crash"),
		reading:       kind("reading_corrupt"),
		budget:        kind("budget"),
	}
}

// The inc* methods are nil-safe so wrappers can count unconditionally.

func (c *Counters) incConnDrop() {
	if c != nil {
		c.connDrop.Inc()
	}
}

func (c *Counters) incConnDelay() {
	if c != nil {
		c.connDelay.Inc()
	}
}

func (c *Counters) incConnTruncate() {
	if c != nil {
		c.connTruncate.Inc()
	}
}

func (c *Counters) incConnPartition() {
	if c != nil {
		c.connPartition.Inc()
	}
}

func (c *Counters) incDevErr() {
	if c != nil {
		c.devErr.Inc()
	}
}

func (c *Counters) incDevSpike() {
	if c != nil {
		c.devSpike.Inc()
	}
}

func (c *Counters) incDevCrash() {
	if c != nil {
		c.devCrash.Inc()
	}
}

func (c *Counters) incReading() {
	if c != nil {
		c.reading.Inc()
	}
}

func (c *Counters) incBudget() {
	if c != nil {
		c.budget.Inc()
	}
}
