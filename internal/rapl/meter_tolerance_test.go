package rapl

import (
	"errors"
	"math"
	"testing"

	"dps/internal/power"
)

// flakyDevice scripts energy-counter failures: reads fail while failing
// is set, otherwise report the counter.
type flakyDevice struct {
	uj      uint64
	failing bool
	cap     power.Watts
}

var errFlaky = errors.New("rapl test: injected read failure")

func (d *flakyDevice) EnergyMicroJoules() (uint64, error) {
	if d.failing {
		return 0, errFlaky
	}
	return d.uj, nil
}
func (d *flakyDevice) SetCap(w power.Watts) error { d.cap = w; return nil }
func (d *flakyDevice) Cap() (power.Watts, error)  { return d.cap, nil }
func (d *flakyDevice) MaxPower() power.Watts      { return 165 }
func (d *flakyDevice) MinPower() power.Watts      { return 10 }

// TestTolerantMeterHoldsLastSample pins the tolerance contract: up to K
// consecutive failed reads return the last good sample, the K+1th
// surfaces the error.
func TestTolerantMeterHoldsLastSample(t *testing.T) {
	dev := &flakyDevice{}
	m := NewTolerantMeter(dev, 3)
	if _, err := m.Read(1); err != nil {
		t.Fatal(err)
	}
	dev.uj += 100_000_000 // 100 J over 1 s = 100 W
	w, err := m.Read(1)
	if err != nil || w != 100 {
		t.Fatalf("good read = (%v, %v), want (100, nil)", w, err)
	}

	dev.failing = true
	for i := 1; i <= 3; i++ {
		w, err := m.Read(1)
		if err != nil {
			t.Fatalf("tolerated read %d surfaced error: %v", i, err)
		}
		if w != 100 {
			t.Fatalf("tolerated read %d = %v, want held sample 100", i, w)
		}
		if m.ErrStreak() != i {
			t.Fatalf("streak after read %d = %d", i, m.ErrStreak())
		}
	}
	if _, err := m.Read(1); !errors.Is(err, errFlaky) {
		t.Fatalf("read past tolerance = %v, want the device error", err)
	}
}

// TestTolerantMeterAveragesOverGap verifies the elapsed accumulation: the
// first good read after tolerated failures averages over the whole gap
// instead of inventing a spike from several intervals of accrued energy.
func TestTolerantMeterAveragesOverGap(t *testing.T) {
	dev := &flakyDevice{}
	m := NewTolerantMeter(dev, 3)
	if _, err := m.Read(1); err != nil {
		t.Fatal(err)
	}

	// Two failed intervals, then a good read. The device accrued 100 W for
	// all three seconds; the recovered read must report ~100 W, not 300 W.
	dev.failing = true
	for i := 0; i < 2; i++ {
		if _, err := m.Read(1); err != nil {
			t.Fatal(err)
		}
	}
	dev.failing = false
	dev.uj += 300_000_000
	w, err := m.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(w)-100) > 1e-9 {
		t.Fatalf("recovered read = %v W, want 100 (averaged over the 3 s gap)", w)
	}
	if m.ErrStreak() != 0 {
		t.Fatalf("streak not reset after a good read: %d", m.ErrStreak())
	}
}

// TestTolerantMeterStreakResets verifies the tolerance is per-streak, not
// lifetime: failures separated by good reads never accumulate.
func TestTolerantMeterStreakResets(t *testing.T) {
	dev := &flakyDevice{}
	m := NewTolerantMeter(dev, 1)
	if _, err := m.Read(1); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		dev.failing = true
		if _, err := m.Read(1); err != nil {
			t.Fatalf("round %d: single failure surfaced: %v", round, err)
		}
		dev.failing = false
		dev.uj += 50_000_000
		if _, err := m.Read(1); err != nil {
			t.Fatalf("round %d: good read failed: %v", round, err)
		}
	}
}

// TestTolerantMeterUnprimedFailureSurfaces verifies there is no sample to
// hold before priming, so a priming failure always surfaces (the agent
// handshake depends on this to tear down cleanly).
func TestTolerantMeterUnprimedFailureSurfaces(t *testing.T) {
	dev := &flakyDevice{failing: true}
	m := NewTolerantMeter(dev, 5)
	if _, err := m.Read(1); !errors.Is(err, errFlaky) {
		t.Fatalf("unprimed read = %v, want the device error", err)
	}
}

// TestNewMeterStaysStrict pins that the plain constructor keeps the
// original zero-tolerance semantics.
func TestNewMeterStaysStrict(t *testing.T) {
	dev := &flakyDevice{}
	m := NewMeter(dev)
	if _, err := m.Read(1); err != nil {
		t.Fatal(err)
	}
	dev.failing = true
	if _, err := m.Read(1); !errors.Is(err, errFlaky) {
		t.Fatalf("strict meter tolerated a failure: %v", err)
	}
}
