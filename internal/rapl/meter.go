package rapl

import (
	"fmt"

	"dps/internal/power"
)

// Meter turns a Device's cumulative energy counter into average power per
// interval, handling 32-bit counter wraparound. This is exactly what the
// paper's node client does between decision steps: two counter reads and a
// division.
type Meter struct {
	dev    Device
	lastUJ uint64
	primed bool
}

// NewMeter wraps a device. The first Read primes the meter and reports the
// device's idle assumption (0 W) because no interval has elapsed yet.
func NewMeter(dev Device) *Meter {
	return &Meter{dev: dev}
}

// Read returns the average power since the previous Read, over the given
// elapsed interval. It tolerates exactly one counter wrap per interval —
// the same constraint real RAPL monitoring has. A 32-bit µJ counter holds
// ~4295 J, so at the 165 W TDP it wraps every ~26 s; a 1 s decision loop
// consumes under 4 % of the counter range per interval, far from the
// one-wrap limit.
func (m *Meter) Read(elapsed power.Seconds) (power.Watts, error) {
	uj, err := m.dev.EnergyMicroJoules()
	if err != nil {
		return 0, fmt.Errorf("rapl: reading energy counter: %w", err)
	}
	if !m.primed {
		m.primed = true
		m.lastUJ = uj
		return 0, nil
	}
	var delta uint64
	if uj >= m.lastUJ {
		delta = uj - m.lastUJ
	} else {
		delta = CounterWrap - m.lastUJ + uj
	}
	m.lastUJ = uj
	if elapsed <= 0 {
		return 0, fmt.Errorf("rapl: non-positive meter interval %v", elapsed)
	}
	return power.Watts(float64(delta) / 1e6 / float64(elapsed)), nil
}

// Primed reports whether the meter has a baseline counter value.
func (m *Meter) Primed() bool { return m.primed }
