package rapl

import (
	"fmt"

	"dps/internal/power"
)

// Meter turns a Device's cumulative energy counter into average power per
// interval, handling 32-bit counter wraparound. This is exactly what the
// paper's node client does between decision steps: two counter reads and a
// division.
type Meter struct {
	dev    Device
	lastUJ uint64
	primed bool

	// tolerance is the number of consecutive failed counter reads to ride
	// through by holding the last good sample; pendingElapsed accumulates
	// the unmeasured interval so the next successful read averages over
	// the whole gap instead of inventing a power spike.
	tolerance      int
	errStreak      int
	lastW          power.Watts
	pendingElapsed power.Seconds
}

// NewMeter wraps a device. The first Read primes the meter and reports the
// device's idle assumption (0 W) because no interval has elapsed yet.
func NewMeter(dev Device) *Meter {
	return &Meter{dev: dev}
}

// NewTolerantMeter wraps a device like NewMeter but rides through up to
// tolerance consecutive counter-read errors: each failed Read returns the
// last good sample instead of an error — real RAPL sysfs reads hiccup
// with EAGAIN under load, and one blip should not tear down an agent
// session. The (tolerance+1)th consecutive failure surfaces, and a meter
// that was never primed has no sample to hold, so priming failures always
// surface.
func NewTolerantMeter(dev Device, tolerance int) *Meter {
	if tolerance < 0 {
		tolerance = 0
	}
	return &Meter{dev: dev, tolerance: tolerance}
}

// Read returns the average power since the previous Read, over the given
// elapsed interval. It tolerates exactly one counter wrap per interval —
// the same constraint real RAPL monitoring has. A 32-bit µJ counter holds
// ~4295 J, so at the 165 W TDP it wraps every ~26 s; a 1 s decision loop
// consumes under 4 % of the counter range per interval, far from the
// one-wrap limit.
func (m *Meter) Read(elapsed power.Seconds) (power.Watts, error) {
	uj, err := m.dev.EnergyMicroJoules()
	if err != nil {
		if m.primed && m.errStreak < m.tolerance {
			m.errStreak++
			if elapsed > 0 {
				m.pendingElapsed += elapsed
			}
			return m.lastW, nil
		}
		return 0, fmt.Errorf("rapl: reading energy counter: %w", err)
	}
	m.errStreak = 0
	if !m.primed {
		m.primed = true
		m.lastUJ = uj
		return 0, nil
	}
	var delta uint64
	if uj >= m.lastUJ {
		delta = uj - m.lastUJ
	} else {
		delta = CounterWrap - m.lastUJ + uj
	}
	m.lastUJ = uj
	if elapsed <= 0 {
		return 0, fmt.Errorf("rapl: non-positive meter interval %v", elapsed)
	}
	// Average over the whole span since the last good read, including
	// intervals whose reads failed and returned the held sample.
	elapsed += m.pendingElapsed
	m.pendingElapsed = 0
	w := power.Watts(float64(delta) / 1e6 / float64(elapsed))
	m.lastW = w
	return w, nil
}

// ErrStreak returns the current run of consecutive tolerated read errors.
func (m *Meter) ErrStreak() int { return m.errStreak }

// Primed reports whether the meter has a baseline counter value.
func (m *Meter) Primed() bool { return m.primed }
