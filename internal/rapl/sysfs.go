package rapl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dps/internal/power"
)

// SysfsDevice drives one RAPL package domain through the Linux powercap
// sysfs interface, the deployment path on a real cluster:
//
//	<dir>/energy_uj                    cumulative energy counter (µJ)
//	<dir>/max_energy_range_uj          counter modulus
//	<dir>/constraint_0_power_limit_uw  long-term power limit (µW)
//	<dir>/constraint_0_max_power_uw    hardware maximum (TDP, µW)
//
// where <dir> is typically /sys/class/powercap/intel-rapl:0 for socket 0.
// Tests exercise this implementation against a fake sysfs tree.
type SysfsDevice struct {
	dir      string
	maxPower power.Watts
	minPower power.Watts
	wrapUJ   uint64
}

var _ Device = (*SysfsDevice)(nil)

// OpenSysfs opens a powercap domain directory. minCap is the lowest cap
// the caller intends to set (the powercap driver itself accepts any value;
// platforms misbehave below a floor, so we clamp in software).
func OpenSysfs(dir string, minCap power.Watts) (*SysfsDevice, error) {
	maxUW, err := readUintFile(filepath.Join(dir, "constraint_0_max_power_uw"))
	if err != nil {
		return nil, fmt.Errorf("rapl: opening powercap domain %s: %w", dir, err)
	}
	wrap, err := readUintFile(filepath.Join(dir, "max_energy_range_uj"))
	if err != nil {
		// Older kernels omit the range file; fall back to the 32-bit span.
		wrap = CounterWrap
	}
	d := &SysfsDevice{
		dir:      dir,
		maxPower: power.Watts(float64(maxUW) / 1e6),
		minPower: minCap,
		wrapUJ:   wrap,
	}
	if _, err := d.EnergyMicroJoules(); err != nil {
		return nil, fmt.Errorf("rapl: powercap domain %s has no readable energy counter: %w", dir, err)
	}
	return d, nil
}

// Dir returns the sysfs directory backing the device.
func (d *SysfsDevice) Dir() string { return d.dir }

// WrapMicroJoules returns the counter modulus advertised by the kernel.
func (d *SysfsDevice) WrapMicroJoules() uint64 { return d.wrapUJ }

// EnergyMicroJoules implements Device.
func (d *SysfsDevice) EnergyMicroJoules() (uint64, error) {
	return readUintFile(filepath.Join(d.dir, "energy_uj"))
}

// SetCap implements Device, writing the long-term constraint in µW.
func (d *SysfsDevice) SetCap(w power.Watts) error {
	if w < d.minPower {
		w = d.minPower
	}
	if w > d.maxPower {
		w = d.maxPower
	}
	uw := strconv.FormatUint(uint64(float64(w)*1e6), 10)
	path := filepath.Join(d.dir, "constraint_0_power_limit_uw")
	if err := os.WriteFile(path, []byte(uw), 0o644); err != nil {
		return fmt.Errorf("rapl: setting power limit: %w", err)
	}
	return nil
}

// Cap implements Device.
func (d *SysfsDevice) Cap() (power.Watts, error) {
	uw, err := readUintFile(filepath.Join(d.dir, "constraint_0_power_limit_uw"))
	if err != nil {
		return 0, fmt.Errorf("rapl: reading power limit: %w", err)
	}
	return power.Watts(float64(uw) / 1e6), nil
}

// MaxPower implements Device.
func (d *SysfsDevice) MaxPower() power.Watts { return d.maxPower }

// MinPower implements Device.
func (d *SysfsDevice) MinPower() power.Watts { return d.minPower }

// DiscoverSysfs lists powercap package-domain directories under root
// (normally /sys/class/powercap), skipping sub-domains like
// intel-rapl:0:0 (DRAM/core planes) so each returned directory is one
// socket. Results are sorted by name for stable unit numbering.
func DiscoverSysfs(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("rapl: listing powercap root %s: %w", root, err)
	}
	var dirs []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "intel-rapl:") {
			continue
		}
		// Package domains have exactly one colon: intel-rapl:N.
		if strings.Count(name, ":") != 1 {
			continue
		}
		dirs = append(dirs, filepath.Join(root, name))
	}
	return dirs, nil
}

func readUintFile(path string) (uint64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	s := strings.TrimSpace(string(b))
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	return v, nil
}
