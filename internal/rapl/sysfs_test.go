package rapl

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fakeDomain builds one powercap package-domain directory.
func fakeDomain(t *testing.T, root, name string, energyUJ, maxUW uint64, withRange bool) string {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(file, val string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, file), []byte(val+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("energy_uj", strconv.FormatUint(energyUJ, 10))
	write("constraint_0_max_power_uw", strconv.FormatUint(maxUW, 10))
	write("constraint_0_power_limit_uw", strconv.FormatUint(maxUW, 10))
	if withRange {
		write("max_energy_range_uj", strconv.FormatUint(262143328850, 10))
	}
	return dir
}

func TestOpenSysfsReadsHardwareLimits(t *testing.T) {
	root := t.TempDir()
	dir := fakeDomain(t, root, "intel-rapl:0", 123456789, 165_000_000, true)
	dev, err := OpenSysfs(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dev.MaxPower() != 165 {
		t.Errorf("MaxPower = %v, want 165", dev.MaxPower())
	}
	if dev.MinPower() != 10 {
		t.Errorf("MinPower = %v, want 10", dev.MinPower())
	}
	if dev.WrapMicroJoules() != 262143328850 {
		t.Errorf("WrapMicroJoules = %d", dev.WrapMicroJoules())
	}
	if dev.Dir() != dir {
		t.Errorf("Dir = %q", dev.Dir())
	}
	uj, err := dev.EnergyMicroJoules()
	if err != nil {
		t.Fatal(err)
	}
	if uj != 123456789 {
		t.Errorf("energy = %d, want 123456789", uj)
	}
}

func TestOpenSysfsWithoutRangeFileFallsBack(t *testing.T) {
	root := t.TempDir()
	dir := fakeDomain(t, root, "intel-rapl:0", 1, 165_000_000, false)
	dev, err := OpenSysfs(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dev.WrapMicroJoules() != CounterWrap {
		t.Errorf("WrapMicroJoules = %d, want the 32-bit fallback %d", dev.WrapMicroJoules(), CounterWrap)
	}
}

func TestOpenSysfsErrors(t *testing.T) {
	root := t.TempDir()
	// Missing max-power file.
	dir := filepath.Join(root, "intel-rapl:0")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSysfs(dir, 10); err == nil {
		t.Error("OpenSysfs succeeded on an empty domain")
	}
	// Max power present but energy counter missing.
	if err := os.WriteFile(filepath.Join(dir, "constraint_0_max_power_uw"), []byte("165000000"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSysfs(dir, 10); err == nil {
		t.Error("OpenSysfs succeeded without an energy counter")
	}
	// Garbage counter contents.
	if err := os.WriteFile(filepath.Join(dir, "energy_uj"), []byte("bogus"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSysfs(dir, 10); err == nil {
		t.Error("OpenSysfs accepted a non-numeric energy counter")
	}
}

func TestSysfsSetCapWritesMicrowatts(t *testing.T) {
	root := t.TempDir()
	dir := fakeDomain(t, root, "intel-rapl:0", 0, 165_000_000, true)
	dev, err := OpenSysfs(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetCap(110); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "constraint_0_power_limit_uw"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "110000000" {
		t.Errorf("limit file = %q, want 110000000", b)
	}
	c, err := dev.Cap()
	if err != nil {
		t.Fatal(err)
	}
	if c != 110 {
		t.Errorf("Cap = %v, want 110", c)
	}
}

func TestSysfsSetCapClamps(t *testing.T) {
	root := t.TempDir()
	dir := fakeDomain(t, root, "intel-rapl:0", 0, 165_000_000, true)
	dev, err := OpenSysfs(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.SetCap(500); err != nil {
		t.Fatal(err)
	}
	if c, _ := dev.Cap(); c != 165 {
		t.Errorf("cap = %v, want clamped to 165", c)
	}
	if err := dev.SetCap(1); err != nil {
		t.Fatal(err)
	}
	if c, _ := dev.Cap(); c != 10 {
		t.Errorf("cap = %v, want clamped to the software floor 10", c)
	}
}

func TestDiscoverSysfsFiltersSubdomains(t *testing.T) {
	root := t.TempDir()
	fakeDomain(t, root, "intel-rapl:0", 0, 165_000_000, true)
	fakeDomain(t, root, "intel-rapl:1", 0, 165_000_000, true)
	// Sub-domains (DRAM/core planes) and unrelated entries must be skipped.
	fakeDomain(t, root, "intel-rapl:0:0", 0, 165_000_000, true)
	if err := os.MkdirAll(filepath.Join(root, "dtpm"), 0o755); err != nil {
		t.Fatal(err)
	}
	dirs, err := DiscoverSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 {
		t.Fatalf("discovered %v, want exactly the two package domains", dirs)
	}
	if filepath.Base(dirs[0]) != "intel-rapl:0" || filepath.Base(dirs[1]) != "intel-rapl:1" {
		t.Errorf("discovered %v, want sorted package domains", dirs)
	}
}

func TestDiscoverSysfsMissingRoot(t *testing.T) {
	if _, err := DiscoverSysfs(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("DiscoverSysfs succeeded on a missing root")
	}
}

func TestSysfsMeterIntegration(t *testing.T) {
	// A meter over a sysfs device: bump the counter file and read power.
	root := t.TempDir()
	dir := fakeDomain(t, root, "intel-rapl:0", 0, 165_000_000, true)
	dev, err := OpenSysfs(dir, 10)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(dev)
	if _, err := m.Read(1); err != nil {
		t.Fatal(err)
	}
	// 110 J over 1 s → 110 W.
	if err := os.WriteFile(filepath.Join(dir, "energy_uj"), []byte("110000000"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := m.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 110 {
		t.Errorf("metered %v W, want 110", w)
	}
}
