package rapl

import (
	"math"
	"sync"
	"testing"

	"dps/internal/power"
)

// noiseless returns a sim config with measurement noise disabled, so
// energy arithmetic is exact.
func noiseless() SimConfig {
	cfg := DefaultSimConfig()
	cfg.NoiseStdDev = 0
	return cfg
}

func TestSimConfigValidate(t *testing.T) {
	if err := DefaultSimConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []SimConfig{
		{TDP: 0},
		{TDP: 165, MinCap: -1},
		{TDP: 165, MinCap: 200},
		{TDP: 165, IdlePower: -1},
		{TDP: 165, IdlePower: 200},
		{TDP: 165, NoiseStdDev: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", cfg)
		}
	}
}

func TestCapEnforcement(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(150)
	if err := dev.SetCap(100); err != nil {
		t.Fatal(err)
	}
	if draw := dev.Advance(1); draw != 100 {
		t.Errorf("draw = %v with demand 150 under cap 100, want 100", draw)
	}
	// Raising the cap above demand frees the full draw.
	dev.SetCap(165)
	if draw := dev.Advance(1); draw != 150 {
		t.Errorf("draw = %v uncapped, want the demand 150", draw)
	}
}

func TestIdleFloor(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(0) // raised to idle power
	if got := dev.Demand(); got != noiseless().IdlePower {
		t.Errorf("demand = %v, want idle floor %v", got, noiseless().IdlePower)
	}
	// RAPL cannot cap below leakage: even with the minimum cap the socket
	// draws idle power.
	dev.SetCap(0) // clamps to MinCap 10
	if draw := dev.Advance(1); draw != noiseless().IdlePower {
		t.Errorf("draw = %v, want idle floor %v", draw, noiseless().IdlePower)
	}
}

func TestCapClampedToHardwareRange(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetCap(500)
	if c, _ := dev.Cap(); c != 165 {
		t.Errorf("cap = %v, want TDP 165", c)
	}
	dev.SetCap(1)
	if c, _ := dev.Cap(); c != 10 {
		t.Errorf("cap = %v, want MinCap 10", c)
	}
	if dev.MaxPower() != 165 || dev.MinPower() != 10 {
		t.Errorf("MaxPower/MinPower = %v/%v", dev.MaxPower(), dev.MinPower())
	}
}

func TestEnergyAccumulation(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(100)
	for i := 0; i < 10; i++ {
		dev.Advance(1)
	}
	if got := dev.TrueEnergy(); math.Abs(float64(got)-1000) > 1e-6 {
		t.Errorf("TrueEnergy = %v J after 10 s at 100 W, want 1000", got)
	}
	uj, err := dev.EnergyMicroJoules()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(uj)-1000e6) > 10 {
		t.Errorf("counter = %d µJ, want ~1e9", uj)
	}
}

func TestCounterWrap(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(165)
	dev.SetCap(165)
	// 2^32 µJ ≈ 4295 J ≈ 26 s at 165 W: run a minute and the counter must
	// have wrapped while staying under the modulus.
	var prev uint64
	wrapped := false
	for i := 0; i < 60; i++ {
		dev.Advance(1)
		uj, _ := dev.EnergyMicroJoules()
		if uj >= CounterWrap {
			t.Fatalf("counter %d at or above the modulus", uj)
		}
		if uj < prev {
			wrapped = true
		}
		prev = uj
	}
	if !wrapped {
		t.Error("counter never wrapped in 60 s at TDP")
	}
	// Ground truth keeps counting.
	if got := dev.TrueEnergy(); math.Abs(float64(got)-60*165) > 1e-6 {
		t.Errorf("TrueEnergy = %v, want %v", got, 60*165)
	}
}

func TestMeterAveragesPower(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(dev)
	if _, err := m.Read(1); err != nil { // prime
		t.Fatal(err)
	}
	if !m.Primed() {
		t.Error("meter not primed after first read")
	}
	dev.SetLoad(120)
	dev.Advance(2)
	got, err := m.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(got)-120) > 0.01 {
		t.Errorf("meter = %v W, want 120", got)
	}
}

func TestMeterHandlesWrap(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(dev)
	if _, err := m.Read(1); err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(165)
	total := 0.0
	n := 0
	for i := 0; i < 60; i++ {
		dev.Advance(1)
		w, err := m.Read(1)
		if err != nil {
			t.Fatal(err)
		}
		total += float64(w)
		n++
	}
	// Average across the wrap must still be ~165 W; a wrap bug would show
	// up as a wild outlier.
	if avg := total / float64(n); math.Abs(avg-165) > 0.5 {
		t.Errorf("mean metered power %v, want ~165", avg)
	}
}

func TestMeterRejectsBadInterval(t *testing.T) {
	dev, err := NewSimDevice(noiseless())
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(dev)
	m.Read(1) // prime
	if _, err := m.Read(0); err == nil {
		t.Error("Read(0) did not error")
	}
}

func TestNoiseAffectsCounterNotDraw(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.NoiseStdDev = 5
	dev, err := NewSimDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev.SetLoad(100)
	var draws []power.Watts
	for i := 0; i < 100; i++ {
		draws = append(draws, dev.Advance(1))
	}
	for _, d := range draws {
		if d != 100 {
			t.Fatalf("true draw %v with noise configured, want exactly 100", d)
		}
	}
	// The counter, however, carries the noise: over 100 s the measured
	// mean should still be near 100 W but individual intervals jitter.
	m := NewMeter(dev)
	m.Read(1)
	dev.Advance(1)
	w1, _ := m.Read(1)
	dev.Advance(1)
	w2, _ := m.Read(1)
	if w1 == 100 && w2 == 100 {
		t.Error("metered power shows no noise despite NoiseStdDev 5")
	}
}

func TestNoiseIsSeedDeterministic(t *testing.T) {
	mk := func() []power.Watts {
		cfg := DefaultSimConfig()
		cfg.Seed = 42
		dev, err := NewSimDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := NewMeter(dev)
		m.Read(1)
		dev.SetLoad(100)
		var out []power.Watts
		for i := 0; i < 10; i++ {
			dev.Advance(1)
			w, _ := m.Read(1)
			out = append(out, w)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed devices produced different noise: %v vs %v", a, b)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	// The daemon reads the device from a network goroutine while a driver
	// advances it; run with -race to verify the locking.
	dev, err := NewSimDevice(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				switch g {
				case 0:
					dev.SetLoad(power.Watts(i % 165))
				case 1:
					dev.Advance(0.01)
				case 2:
					dev.SetCap(power.Watts(50 + i%100))
				default:
					dev.EnergyMicroJoules()
					dev.Cap()
					dev.LastDraw()
				}
			}
		}(g)
	}
	wg.Wait()
}
