// Package rapl models the hardware interface DPS depends on: Intel's
// Running Average Power Limit. DPS interacts with hardware in exactly two
// ways (paper §4.2) — reading power and setting power caps — so this
// package provides exactly those two verbs behind the Device interface.
//
// Two implementations are provided. SimDevice is a simulated socket with a
// RAPL-like energy counter: microjoule quantization, 32-bit wraparound, cap
// enforcement, and configurable Gaussian measurement noise (the paper
// pessimistically assumes RAPL readings are noisy; the noise here is what
// DPS's Kalman filter exists to absorb). SysfsDevice drives the Linux
// powercap sysfs interface (/sys/class/powercap/intel-rapl*) used on real
// clusters; it is exercised in tests against a fake sysfs tree.
package rapl

import (
	"fmt"
	"math/rand"
	"sync"

	"dps/internal/power"
)

// CounterWrap is the modulus of the RAPL 32-bit energy counter in
// microjoules. Real RAPL counters are 32-bit registers scaled by an
// energy-status unit; at socket power levels they wrap every few minutes,
// and power meters must handle the wrap.
const CounterWrap = uint64(1) << 32

// Device is one power-capping unit's hardware interface: the two verbs DPS
// needs and nothing more.
type Device interface {
	// EnergyMicroJoules returns the cumulative energy counter in µJ,
	// modulo CounterWrap.
	EnergyMicroJoules() (uint64, error)
	// SetCap sets the unit's power limit. Implementations clamp to the
	// hardware range.
	SetCap(w power.Watts) error
	// Cap returns the currently programmed power limit.
	Cap() (power.Watts, error)
	// MaxPower returns the hardware's maximum settable limit (TDP).
	MaxPower() power.Watts
	// MinPower returns the hardware's minimum settable limit.
	MinPower() power.Watts
}

// SimConfig describes a simulated socket.
type SimConfig struct {
	// TDP is the socket's thermal design power, the maximum cap (165 W on
	// the paper's Xeon Gold 6240 sockets).
	TDP power.Watts
	// MinCap is the lowest accepted power limit.
	MinCap power.Watts
	// IdlePower is drawn even with no load.
	IdlePower power.Watts
	// NoiseStdDev is the σ of the Gaussian noise added to measured power
	// (applied at the energy counter, like real RAPL estimation error).
	NoiseStdDev power.Watts
	// Seed makes the noise stream reproducible.
	Seed int64
}

// DefaultSimConfig models one socket of the paper's evaluation platform.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		TDP:         165,
		MinCap:      10,
		IdlePower:   20,
		NoiseStdDev: 2,
		Seed:        1,
	}
}

// Validate reports whether the configuration is physically sensible.
func (c SimConfig) Validate() error {
	switch {
	case c.TDP <= 0:
		return fmt.Errorf("rapl: non-positive TDP %v", c.TDP)
	case c.MinCap < 0 || c.MinCap > c.TDP:
		return fmt.Errorf("rapl: MinCap %v outside [0, TDP=%v]", c.MinCap, c.TDP)
	case c.IdlePower < 0 || c.IdlePower > c.TDP:
		return fmt.Errorf("rapl: IdlePower %v outside [0, TDP=%v]", c.IdlePower, c.TDP)
	case c.NoiseStdDev < 0:
		return fmt.Errorf("rapl: negative noise σ %v", c.NoiseStdDev)
	}
	return nil
}

// SimDevice is a simulated RAPL socket. The embedding simulation drives it
// by setting the socket's uncapped power demand (SetLoad) and advancing
// virtual time (Advance); controllers see only the Device interface.
//
// SimDevice is safe for concurrent use: the daemon path reads it from a
// network goroutine while the simulation advances it.
type SimDevice struct {
	mu     sync.Mutex
	cfg    SimConfig
	rng    *rand.Rand
	cap    power.Watts
	demand power.Watts
	// energyUJ is the wrapped 32-bit µJ counter; totalJ the unwrapped
	// ground truth for tests and satisfaction accounting.
	energyUJ uint64
	totalJ   power.Joules
	lastDraw power.Watts
}

var _ Device = (*SimDevice)(nil)

// NewSimDevice returns a simulated socket with its cap at TDP and no load.
func NewSimDevice(cfg SimConfig) (*SimDevice, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SimDevice{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cap: cfg.TDP,
	}, nil
}

// SetLoad sets the socket's current uncapped power demand (what the
// workload would draw with no cap). Demand below idle power is raised to
// idle; demand above TDP is clamped to TDP.
func (d *SimDevice) SetLoad(w power.Watts) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w < d.cfg.IdlePower {
		w = d.cfg.IdlePower
	}
	if w > d.cfg.TDP {
		w = d.cfg.TDP
	}
	d.demand = w
}

// Demand returns the current uncapped demand.
func (d *SimDevice) Demand() power.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.demand
}

// Advance moves virtual time forward by dt: the socket draws
// min(demand, cap) watts (never below idle — RAPL cannot cap below the
// leakage floor) and accrues energy, with Gaussian noise folded into the
// counter increment exactly like RAPL's event-counter estimation error.
// It returns the true (noise-free) power drawn during the interval.
func (d *SimDevice) Advance(dt power.Seconds) power.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	if dt <= 0 {
		return d.lastDraw
	}
	draw := d.demand
	if draw > d.cap {
		draw = d.cap
	}
	if draw < d.cfg.IdlePower {
		draw = d.cfg.IdlePower
	}
	d.lastDraw = draw

	measured := draw
	if d.cfg.NoiseStdDev > 0 {
		measured += power.Watts(d.rng.NormFloat64()) * d.cfg.NoiseStdDev
		if measured < 0 {
			measured = 0
		}
	}
	incUJ := uint64(float64(measured) * float64(dt) * 1e6)
	d.energyUJ = (d.energyUJ + incUJ) % CounterWrap
	d.totalJ += power.Joules(float64(draw) * float64(dt))
	return draw
}

// EnergyMicroJoules implements Device.
func (d *SimDevice) EnergyMicroJoules() (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energyUJ, nil
}

// TrueEnergy returns the unwrapped, noise-free energy in joules, the
// simulation's ground truth (used for satisfaction accounting in tests and
// experiments, never visible to controllers).
func (d *SimDevice) TrueEnergy() power.Joules {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totalJ
}

// LastDraw returns the true power drawn in the most recent interval.
func (d *SimDevice) LastDraw() power.Watts {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastDraw
}

// SetCap implements Device, clamping to [MinCap, TDP] like the powercap
// driver does.
func (d *SimDevice) SetCap(w power.Watts) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if w < d.cfg.MinCap {
		w = d.cfg.MinCap
	}
	if w > d.cfg.TDP {
		w = d.cfg.TDP
	}
	d.cap = w
	return nil
}

// Cap implements Device.
func (d *SimDevice) Cap() (power.Watts, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cap, nil
}

// MaxPower implements Device.
func (d *SimDevice) MaxPower() power.Watts { return d.cfg.TDP }

// MinPower implements Device.
func (d *SimDevice) MinPower() power.Watts { return d.cfg.MinCap }
