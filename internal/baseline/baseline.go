// Package baseline implements the three power managers the paper compares
// DPS against (§1, §5.2):
//
//   - Constant allocation: every unit gets budget/N, forever. Trivially
//     respects the budget; wastes headroom when demands are skewed. It is
//     the normalization baseline of every figure.
//   - SLURM: the stateless MIMD controller of Algorithm 1 used alone,
//     modeling SLURM's power management plugin.
//   - Oracle: an unrealizable manager that sees each unit's true uncapped
//     power demand and water-fills the budget proportionally to demand,
//     equalizing instantaneous satisfaction. The paper uses it only in the
//     low-utility experiments where an oracle is computable.
package baseline

import (
	"fmt"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/stateless"
)

// Constant is the constant-allocation manager.
type Constant struct {
	budget power.Budget
	caps   power.Vector
}

var _ core.Manager = (*Constant)(nil)

// NewConstant returns a constant-allocation manager for n units.
func NewConstant(n int, budget power.Budget) (*Constant, error) {
	if err := budget.Validate(n); err != nil {
		return nil, err
	}
	return &Constant{
		budget: budget,
		caps:   power.NewVector(n, budget.ConstantCap(n)),
	}, nil
}

// Name implements core.Manager.
func (c *Constant) Name() string { return "Constant" }

// Budget implements core.Manager.
func (c *Constant) Budget() power.Budget { return c.budget }

// Caps implements core.Manager.
func (c *Constant) Caps() power.Vector { return c.caps }

// Decide implements core.Manager: the caps never move.
func (c *Constant) Decide(snap core.Snapshot) power.Vector {
	if len(snap.Power) != len(c.caps) {
		panic(fmt.Sprintf("baseline: %d readings for %d units", len(snap.Power), len(c.caps)))
	}
	return c.caps
}

// SLURM is the stateless model-free manager: Algorithm 1 alone, decisions
// from instantaneous power only.
type SLURM struct {
	budget  power.Budget
	module  *stateless.Module
	caps    power.Vector
	changed []bool
}

var _ core.Manager = (*SLURM)(nil)

// NewSLURM returns a stateless manager for n units. Seed fixes the random
// cap-raise ordering.
func NewSLURM(n int, budget power.Budget, cfg stateless.Config, seed int64) (*SLURM, error) {
	if err := budget.Validate(n); err != nil {
		return nil, err
	}
	m, err := stateless.New(cfg, seed)
	if err != nil {
		return nil, err
	}
	return &SLURM{
		budget:  budget,
		module:  m,
		caps:    power.NewVector(n, budget.ConstantCap(n)),
		changed: make([]bool, n),
	}, nil
}

// Name implements core.Manager.
func (s *SLURM) Name() string { return "SLURM" }

// Budget implements core.Manager.
func (s *SLURM) Budget() power.Budget { return s.budget }

// Caps implements core.Manager.
func (s *SLURM) Caps() power.Vector { return s.caps }

// Decide implements core.Manager: one MIMD step on the raw readings.
func (s *SLURM) Decide(snap core.Snapshot) power.Vector {
	s.module.Apply(snap.Power, s.caps, s.budget, s.changed)
	return s.caps
}

// OracleConfig tunes the oracle's allocation.
type OracleConfig struct {
	// Headroom is added on top of each unit's true demand when the budget
	// suffices, so a unit can immediately ramp into a new phase. Watts.
	Headroom power.Watts
}

// DefaultOracleConfig gives each unit 5 W of anticipatory headroom.
func DefaultOracleConfig() OracleConfig { return OracleConfig{Headroom: 5} }

// Oracle allocates the budget knowing every unit's true uncapped power
// demand for the coming interval. If the total demand (plus headroom) fits
// the budget, every unit gets its demand plus headroom, and remaining
// budget is spread evenly. Otherwise caps are proportional to demand —
// cap_i = budget · d_i / Σd — which equalizes instantaneous satisfaction
// (the paper's demand-proportional fairness, §3).
type Oracle struct {
	budget power.Budget
	cfg    OracleConfig
	caps   power.Vector
}

var _ core.Manager = (*Oracle)(nil)

// NewOracle returns an oracle manager for n units.
func NewOracle(n int, budget power.Budget, cfg OracleConfig) (*Oracle, error) {
	if err := budget.Validate(n); err != nil {
		return nil, err
	}
	if cfg.Headroom < 0 {
		return nil, fmt.Errorf("baseline: negative oracle headroom %v", cfg.Headroom)
	}
	return &Oracle{
		budget: budget,
		cfg:    cfg,
		caps:   power.NewVector(n, budget.ConstantCap(n)),
	}, nil
}

// Name implements core.Manager.
func (o *Oracle) Name() string { return "Oracle" }

// Budget implements core.Manager.
func (o *Oracle) Budget() power.Budget { return o.budget }

// Caps implements core.Manager.
func (o *Oracle) Caps() power.Vector { return o.caps }

// Decide implements core.Manager. It requires snap.Demand; using the oracle
// without true demands is a programming error.
func (o *Oracle) Decide(snap core.Snapshot) power.Vector {
	n := len(o.caps)
	if len(snap.Demand) != n {
		panic(fmt.Sprintf("baseline: oracle needs %d true demands, got %d", n, len(snap.Demand)))
	}
	b := o.budget

	var want power.Vector = make(power.Vector, n)
	var total power.Watts
	for u := 0; u < n; u++ {
		w := snap.Demand[u] + o.cfg.Headroom
		if w > b.UnitMax {
			w = b.UnitMax
		}
		if w < b.UnitMin {
			w = b.UnitMin
		}
		want[u] = w
		total += w
	}

	if total <= b.Total {
		// Demands fit: grant them, spread the slack evenly (more headroom
		// never hurts and keeps the full budget in play, like the paper's
		// perfect model-based row in Figure 1).
		slack := (b.Total - total) / power.Watts(n)
		for u := 0; u < n; u++ {
			c := want[u] + slack
			if c > b.UnitMax {
				c = b.UnitMax
			}
			o.caps[u] = c
		}
		return o.caps
	}

	// Contention: proportional to demand, respecting UnitMin as a floor.
	// Iterate because clamping at the floor frees/needs budget.
	remaining := b.Total
	var demandSum power.Watts
	for u := 0; u < n; u++ {
		demandSum += want[u]
	}
	if demandSum <= 0 {
		for u := 0; u < n; u++ {
			o.caps[u] = b.ConstantCap(n)
		}
		return o.caps
	}
	floorBudget := power.Watts(n) * b.UnitMin
	scalable := remaining - floorBudget
	var aboveFloor power.Watts
	for u := 0; u < n; u++ {
		aboveFloor += want[u] - b.UnitMin
	}
	for u := 0; u < n; u++ {
		c := b.UnitMin
		if aboveFloor > 0 && scalable > 0 {
			c += scalable * (want[u] - b.UnitMin) / aboveFloor
		}
		if c > b.UnitMax {
			c = b.UnitMax
		}
		o.caps[u] = c
	}
	return o.caps
}
