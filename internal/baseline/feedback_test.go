package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dps/internal/core"
	"dps/internal/power"
)

func TestFeedbackConfigValidation(t *testing.T) {
	if err := DefaultFeedbackConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []FeedbackConfig{
		{Setpoint: 0, Gain: 0.5, MaxStep: 8},
		{Setpoint: 1, Gain: 0.5, MaxStep: 8},
		{Setpoint: 0.9, Gain: 0, MaxStep: 8},
		{Setpoint: 0.9, Gain: 1.5, MaxStep: 8},
		{Setpoint: 0.9, Gain: 0.5, MaxStep: 0},
	}
	for _, cfg := range bad {
		if _, err := NewFeedback(2, testBudget, cfg); err == nil {
			t.Errorf("NewFeedback accepted %+v", cfg)
		}
	}
}

func TestFeedbackShiftsTowardThrottledUnit(t *testing.T) {
	budget := power.Budget{Total: 220, UnitMax: 165, UnitMin: 10}
	f, err := NewFeedback(2, budget, DefaultFeedbackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "Feedback" {
		t.Errorf("Name = %q", f.Name())
	}
	// Unit 0 pinned at its cap, unit 1 at 30 % utilization.
	var caps power.Vector
	for i := 0; i < 40; i++ {
		caps = f.Caps()
		readings := power.Vector{caps[0], caps[1] * 0.3}
		caps = f.Decide(core.Snapshot{Power: readings, Interval: 1})
	}
	if caps[0] <= caps[1] {
		t.Errorf("caps %v: throttled unit did not receive budget", caps)
	}
	if caps[0] < 130 {
		t.Errorf("throttled unit's cap %v after 40 steps, want a substantial shift", caps[0])
	}
}

func TestFeedbackConservesBudgetProperty(t *testing.T) {
	budget := power.Budget{Total: 440, UnitMax: 165, UnitMin: 10}
	f := func(seed int64, steps uint8) bool {
		mgr, err := NewFeedback(4, budget, DefaultFeedbackConfig())
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for s := 0; s < int(steps%60)+1; s++ {
			readings := make(power.Vector, 4)
			for u := range readings {
				readings[u] = power.Watts(rng.Float64() * 180)
			}
			caps := mgr.Decide(core.Snapshot{Power: readings, Interval: 1})
			if !budget.Respected(caps, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFeedbackStabilizesOnBalancedLoad(t *testing.T) {
	budget := power.Budget{Total: 220, UnitMax: 165, UnitMin: 10}
	f, err := NewFeedback(2, budget, DefaultFeedbackConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Both units permanently at cap: symmetric pressure, caps must stay
	// within a few watts of each other (no runaway oscillation).
	for i := 0; i < 100; i++ {
		caps := f.Caps()
		f.Decide(core.Snapshot{Power: power.Vector{caps[0], caps[1]}, Interval: 1})
	}
	caps := f.Caps()
	if power.AbsDiff(caps[0], caps[1]) > 5 {
		t.Errorf("symmetric load diverged: %v", caps)
	}
}

func TestFeedbackPanicsOnSizeMismatch(t *testing.T) {
	f, err := NewFeedback(2, testBudget, DefaultFeedbackConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Decide with wrong reading count did not panic")
		}
	}()
	f.Decide(core.Snapshot{Power: power.Vector{1}, Interval: 1})
}
