package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/stateless"
)

var testBudget = power.Budget{Total: 440, UnitMax: 165, UnitMin: 10}

func TestConstantNeverMoves(t *testing.T) {
	c, err := NewConstant(4, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "Constant" {
		t.Errorf("Name = %q", c.Name())
	}
	want := testBudget.ConstantCap(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		readings := make(power.Vector, 4)
		for u := range readings {
			readings[u] = power.Watts(rng.Float64() * 165)
		}
		caps := c.Decide(core.Snapshot{Power: readings, Interval: 1})
		for u, cap := range caps {
			if cap != want {
				t.Fatalf("step %d: cap[%d] = %v, want %v", i, u, cap, want)
			}
		}
	}
}

func TestConstantValidatesBudget(t *testing.T) {
	if _, err := NewConstant(0, testBudget); err == nil {
		t.Error("NewConstant accepted zero units")
	}
}

func TestConstantPanicsOnSizeMismatch(t *testing.T) {
	c, err := NewConstant(4, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Decide with wrong reading count did not panic")
		}
	}()
	c.Decide(core.Snapshot{Power: power.Vector{1}, Interval: 1})
}

func TestSLURMIsTheStatelessModule(t *testing.T) {
	// The SLURM manager must behave exactly like a bare stateless module
	// with the same seed — it adds nothing else.
	s, err := NewSLURM(3, testBudget, stateless.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SLURM" {
		t.Errorf("Name = %q", s.Name())
	}
	m, err := stateless.New(stateless.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	budget3 := power.Budget{Total: 330, UnitMax: 165, UnitMin: 10}
	s2, err := NewSLURM(3, budget3, stateless.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	refCaps := power.NewVector(3, budget3.ConstantCap(3))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		readings := make(power.Vector, 3)
		for u := range readings {
			readings[u] = power.Watts(rng.Float64() * 165)
		}
		got := s2.Decide(core.Snapshot{Power: readings, Interval: 1})
		m.Apply(readings, refCaps, budget3, nil)
		for u := range got {
			if got[u] != refCaps[u] {
				t.Fatalf("step %d unit %d: SLURM %v vs stateless %v", i, u, got[u], refCaps[u])
			}
		}
	}
	_ = s
}

func TestOracleMeetsDemandsWhenBudgetSuffices(t *testing.T) {
	o, err := NewOracle(4, testBudget, DefaultOracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "Oracle" {
		t.Errorf("Name = %q", o.Name())
	}
	demand := power.Vector{50, 80, 30, 60} // total 220 + headroom ≪ 440
	caps := o.Decide(core.Snapshot{Power: demand, Interval: 1, Demand: demand})
	for u := range demand {
		if caps[u] < demand[u]+DefaultOracleConfig().Headroom {
			t.Errorf("cap[%d] = %v below demand %v plus headroom", u, caps[u], demand[u])
		}
	}
	if got := caps.Sum(); got > testBudget.Total+1e-9 {
		t.Errorf("caps sum %v exceeds budget", got)
	}
}

func TestOracleProportionalUnderContention(t *testing.T) {
	budget := power.Budget{Total: 220, UnitMax: 165, UnitMin: 10}
	o, err := NewOracle(2, budget, OracleConfig{Headroom: 0})
	if err != nil {
		t.Fatal(err)
	}
	demand := power.Vector{160, 80} // total 240 > 220
	caps := o.Decide(core.Snapshot{Power: demand, Interval: 1, Demand: demand})
	if got := caps.Sum(); math.Abs(float64(got-220)) > 1e-6 {
		t.Errorf("contended oracle should spend the whole budget, sum = %v", got)
	}
	// Shares above the floor must be proportional to demand above the
	// floor: (160−10):(80−10) = 15:7.
	r0 := float64(caps[0] - 10)
	r1 := float64(caps[1] - 10)
	if math.Abs(r0/r1-150.0/70.0) > 1e-6 {
		t.Errorf("allocation ratio %v, want %v", r0/r1, 150.0/70.0)
	}
	// Equal satisfaction is the goal: cap/demand roughly equal.
	s0 := float64(caps[0]) / 160
	s1 := float64(caps[1]) / 80
	if math.Abs(s0-s1) > 0.08 {
		t.Errorf("satisfactions %v and %v diverge", s0, s1)
	}
}

func TestOracleClampsToUnitMax(t *testing.T) {
	budget := power.Budget{Total: 1000, UnitMax: 165, UnitMin: 10}
	o, err := NewOracle(2, budget, DefaultOracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	demand := power.Vector{300, 20}
	caps := o.Decide(core.Snapshot{Power: demand, Interval: 1, Demand: demand})
	if caps[0] > 165 {
		t.Errorf("cap %v exceeds UnitMax", caps[0])
	}
}

func TestOraclePanicsWithoutDemand(t *testing.T) {
	o, err := NewOracle(2, testBudget, DefaultOracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("oracle accepted a snapshot without true demands")
		}
	}()
	o.Decide(core.Snapshot{Power: power.Vector{100, 100}, Interval: 1})
}

func TestOracleZeroDemandFallsBackToConstant(t *testing.T) {
	budget := power.Budget{Total: 220, UnitMax: 165, UnitMin: 0}
	o, err := NewOracle(2, budget, OracleConfig{Headroom: 0})
	if err != nil {
		t.Fatal(err)
	}
	caps := o.Decide(core.Snapshot{Power: power.Vector{0, 0}, Interval: 1, Demand: power.Vector{0, 0}})
	// Zero demand fits any budget; each unit gets the spread slack.
	if caps.Sum() > budget.Total+1e-9 {
		t.Errorf("caps sum %v exceeds budget", caps.Sum())
	}
}

func TestOracleRejectsNegativeHeadroom(t *testing.T) {
	if _, err := NewOracle(2, testBudget, OracleConfig{Headroom: -1}); err == nil {
		t.Error("NewOracle accepted negative headroom")
	}
}

// All three baselines respect the budget for arbitrary inputs.
func TestBaselinesBudgetProperty(t *testing.T) {
	budget := power.Budget{Total: 330, UnitMax: 165, UnitMin: 10}
	c, _ := NewConstant(3, budget)
	s, _ := NewSLURM(3, budget, stateless.DefaultConfig(), 1)
	o, _ := NewOracle(3, budget, DefaultOracleConfig())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		readings := make(power.Vector, 3)
		demand := make(power.Vector, 3)
		for u := range readings {
			readings[u] = power.Watts(rng.Float64() * 165)
			demand[u] = power.Watts(rng.Float64() * 200)
		}
		snap := core.Snapshot{Power: readings, Interval: 1, Demand: demand}
		for _, mgr := range []core.Manager{c, s, o} {
			if caps := mgr.Decide(snap); caps.Sum() > budget.Total+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
