package baseline

import (
	"fmt"

	"dps/internal/core"
	"dps/internal/power"
)

// FeedbackConfig tunes the PShifter-style baseline.
type FeedbackConfig struct {
	// Setpoint is the target utilization (power / cap) for every unit.
	// Units above it receive budget, units below it donate.
	Setpoint float64
	// Gain is the integral gain: the fraction of a unit's accumulated
	// utilization error converted to watts each step.
	Gain float64
	// MaxStep bounds the per-step cap movement in watts, for stability.
	MaxStep power.Watts
}

// DefaultFeedbackConfig: aim for 90 % utilization, move up to 8 W per
// second per unit.
func DefaultFeedbackConfig() FeedbackConfig {
	return FeedbackConfig{Setpoint: 0.90, Gain: 0.5, MaxStep: 8}
}

// Validate reports whether the configuration is stable.
func (c FeedbackConfig) Validate() error {
	switch {
	case c.Setpoint <= 0 || c.Setpoint >= 1:
		return fmt.Errorf("baseline: feedback setpoint %v outside (0,1)", c.Setpoint)
	case c.Gain <= 0 || c.Gain > 1:
		return fmt.Errorf("baseline: feedback gain %v outside (0,1]", c.Gain)
	case c.MaxStep <= 0:
		return fmt.Errorf("baseline: non-positive feedback step %v", c.MaxStep)
	}
	return nil
}

// Feedback is a feedback-control power shifter in the spirit of PShifter
// (Gholkar et al., HPDC '18, cited in the paper's §2.2): each unit runs an
// integral controller on its utilization error relative to a setpoint, and
// the manager shifts watts from donors (utilization below setpoint) to
// receivers (above), conserving the budget exactly. Like DPS it needs no
// model; unlike DPS it keeps only a scalar error integral per unit — no
// power dynamics — so it reacts smoothly but cannot anticipate phases and
// has no constant-allocation lower bound.
type Feedback struct {
	budget   power.Budget
	cfg      FeedbackConfig
	caps     power.Vector
	integral []float64
}

var _ core.Manager = (*Feedback)(nil)

// NewFeedback returns a feedback manager for n units starting at the
// constant allocation.
func NewFeedback(n int, budget power.Budget, cfg FeedbackConfig) (*Feedback, error) {
	if err := budget.Validate(n); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Feedback{
		budget:   budget,
		cfg:      cfg,
		caps:     power.NewVector(n, budget.ConstantCap(n)),
		integral: make([]float64, n),
	}, nil
}

// Name implements core.Manager.
func (f *Feedback) Name() string { return "Feedback" }

// Budget implements core.Manager.
func (f *Feedback) Budget() power.Budget { return f.budget }

// Caps implements core.Manager.
func (f *Feedback) Caps() power.Vector { return f.caps }

// Decide implements core.Manager: accumulate utilization error, derive a
// desired per-unit delta, then balance deltas so the budget is conserved.
func (f *Feedback) Decide(snap core.Snapshot) power.Vector {
	n := len(f.caps)
	if len(snap.Power) != n {
		panic(fmt.Sprintf("baseline: %d readings for %d units", len(snap.Power), n))
	}
	desired := make([]float64, n)
	var posSum, negSum float64
	for u := 0; u < n; u++ {
		util := 0.0
		if f.caps[u] > 0 {
			util = float64(snap.Power[u] / f.caps[u])
			if util > 1 {
				util = 1
			}
		}
		err := util - f.cfg.Setpoint
		// Sign-flip anti-windup: a unit that just became throttled must
		// not pay down an integral accumulated during its idle phase (and
		// vice versa) — without this, phase transitions stall for the
		// whole windup depth and the controller starves ramping units.
		if (err > 0 && f.integral[u] < 0) || (err < 0 && f.integral[u] > 0) {
			f.integral[u] = 0
		}
		f.integral[u] += err
		const windup = 2
		if f.integral[u] > windup {
			f.integral[u] = windup
		}
		if f.integral[u] < -windup {
			f.integral[u] = -windup
		}
		// PI form: the proportional term reacts within a step, the
		// integral sustains pressure while the error persists.
		d := float64(f.cfg.MaxStep) * (1.2*err + f.cfg.Gain*f.integral[u])
		if d > float64(f.cfg.MaxStep) {
			d = float64(f.cfg.MaxStep)
		}
		if d < -float64(f.cfg.MaxStep) {
			d = -float64(f.cfg.MaxStep)
		}
		desired[u] = d
		if d > 0 {
			posSum += d
		} else {
			negSum -= d
		}
	}

	// Conserve: receivers can only take what donors give (plus any slack
	// between the current cap sum and the budget).
	slack := float64(f.budget.Total - f.caps.Sum())
	if slack < 0 {
		slack = 0
	}
	avail := negSum + slack
	scale := 1.0
	if posSum > avail && posSum > 0 {
		scale = avail / posSum
	}
	for u := 0; u < n; u++ {
		d := desired[u]
		if d > 0 {
			d *= scale
		}
		next := f.caps[u] + power.Watts(d)
		if next > f.budget.UnitMax {
			next = f.budget.UnitMax
		}
		if next < f.budget.UnitMin {
			next = f.budget.UnitMin
		}
		f.caps[u] = next
	}
	// Final conservation clamp against rounding drift.
	if total := f.caps.Sum(); total > f.budget.Total {
		excess := total - f.budget.Total
		var above power.Watts
		for _, c := range f.caps {
			above += c - f.budget.UnitMin
		}
		if above > 0 {
			frac := excess / above
			for u := range f.caps {
				f.caps[u] -= (f.caps[u] - f.budget.UnitMin) * frac
			}
		}
	}
	return f.caps
}
