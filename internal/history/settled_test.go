package history

import (
	"math/rand"
	"testing"

	"dps/internal/power"
)

// TestSettledForPushNoOp is the property backing the sparse decision
// path: whenever SettledFor(p, dt) reports true, an actual Push(p, dt)
// must leave the ring's stored samples and running aggregates bitwise
// unchanged. The head index and push counter are exempt: head phase is
// unobservable on a uniform ring (every read — At, Segments consumers,
// recompute, directTail — is phase-invariant there), and the push
// counter is what AdvancePushes re-synchronizes. Randomized over
// capacities, fill histories, and values (including awkward floats
// reached through accumulation).
func TestSettledForPushNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	settledSeen := 0
	for iter := 0; iter < 2000; iter++ {
		capacity := 1 + rng.Intn(24)
		r := NewRing(capacity)
		r.SetTailWindow(1 + rng.Intn(capacity))
		// Random prehistory so head phase and accumulated drift vary.
		pre := rng.Intn(4 * capacity)
		for i := 0; i < pre; i++ {
			r.Push(power.Watts(rng.Float64()*200), power.Seconds(0.5+rng.Float64()))
		}
		p := power.Watts(rng.Float64() * 200)
		dt := power.Seconds(0.5 + rng.Float64())
		if rng.Intn(3) == 0 {
			// Sometimes uniform-fill so the settled case actually occurs.
			for i := 0; i < capacity+rng.Intn(capacity+1); i++ {
				r.Push(p, dt)
			}
		}
		settled := r.SettledFor(p, dt)
		before := *r
		beforePowers := append([]power.Watts(nil), r.powers...)
		beforeDurs := append([]power.Seconds(nil), r.durations...)
		r.Push(p, dt)
		same := r.n == before.n &&
			r.sum == before.sum && r.sumSq == before.sumSq &&
			r.durSum == before.durSum && r.tailDur == before.tailDur
		for i := range beforePowers {
			// Physical slots (not logical indices): a uniform ring's arrays
			// are invariant under the head rotation Push performs.
			same = same && r.powers[i] == beforePowers[i] && r.durations[i] == beforeDurs[i]
		}
		if settled && !same {
			t.Fatalf("iter %d: SettledFor true but Push changed the ring (cap=%d pre=%d p=%v dt=%v)",
				iter, capacity, pre, p, dt)
		}
		if settled {
			settledSeen++
		}
	}
	if settledSeen == 0 {
		t.Fatal("property never exercised the settled case")
	}
}

// TestSettledForRejects pins the conservative refusals: not-full rings,
// non-uniform content, mismatched dt, and rings without a tail window
// must never certify.
func TestSettledForRejects(t *testing.T) {
	r := NewRing(4)
	r.SetTailWindow(2)
	if r.SettledFor(50, 1) {
		t.Fatal("empty ring certified")
	}
	for i := 0; i < 3; i++ {
		r.Push(50, 1)
	}
	if r.SettledFor(50, 1) {
		t.Fatal("partial ring certified")
	}
	r.Push(50, 1)
	if !r.SettledFor(50, 1) {
		t.Fatal("uniform full ring refused")
	}
	if r.SettledFor(50.5, 1) || r.SettledFor(50, 2) {
		t.Fatal("mismatched value or dt certified")
	}
	r.Push(60, 1)
	if r.SettledFor(50, 1) {
		t.Fatal("non-uniform ring certified")
	}

	noTail := NewRing(4)
	for i := 0; i < 4; i++ {
		noTail.Push(50, 1)
	}
	if noTail.SettledFor(50, 1) {
		t.Fatal("ring without tail window certified (Push is never a no-op on it)")
	}
}

// TestAdvancePushesMatchesElidedPushes verifies the recompute-schedule
// catch-up: k elided no-op pushes accounted via AdvancePushes leave the
// push counter — and therefore the round on which the next recompute
// fires — identical to actually pushing k times on a settled ring.
func TestAdvancePushesMatchesElidedPushes(t *testing.T) {
	build := func() *Ring {
		r := NewRing(8)
		r.SetTailWindow(3)
		for i := 0; i < 8; i++ {
			r.Push(75, 1)
		}
		return r
	}
	for _, k := range []int{0, 1, 7, recomputeEvery - 1, recomputeEvery, 3 * recomputeEvery, 1000} {
		pushed, advanced := build(), build()
		if !pushed.SettledFor(75, 1) {
			t.Fatal("setup ring not settled")
		}
		for i := 0; i < k; i++ {
			pushed.Push(75, 1)
		}
		advanced.AdvancePushes(k)
		// The dense ring's counter resets through real recomputes; the
		// advanced one wraps arithmetically. Both must agree mod the
		// recompute period — they then recompute on the same future push.
		if pushed.pushes%recomputeEvery != advanced.pushes%recomputeEvery {
			t.Fatalf("k=%d: pushes %d (dense) vs %d (advanced)", k, pushed.pushes, advanced.pushes)
		}
		if pushed.sum != advanced.sum || pushed.sumSq != advanced.sumSq ||
			pushed.durSum != advanced.durSum || pushed.tailDur != advanced.tailDur {
			t.Fatalf("k=%d: aggregates diverged", k)
		}
	}
}
