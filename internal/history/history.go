// Package history provides fixed-capacity ring buffers for recent power
// samples. DPS is "stateful" precisely in that it keeps this small history:
// the paper's default is 20 estimated power samples per unit plus the
// duration of each measurement interval, which together are the only state
// the priority module consumes.
//
// Beyond storage, each ring maintains incremental sufficient statistics —
// the running sum, sum of squares, total duration and a configurable
// tail-duration window — so the statistics the priority module reads every
// decision round (mean, standard deviation, windowed derivative) are O(1)
// instead of O(history length), and require no copying of the ring into
// scratch buffers. The aggregates are updated on every Push/evict and
// re-derived exactly from the stored samples every recomputeEvery pushes,
// which bounds floating-point drift to what a few hundred add/subtract
// pairs can accumulate (well below any decision threshold; see DESIGN.md
// §8).
package history

import (
	"fmt"
	"math"

	"dps/internal/power"
)

// recomputeEvery is the number of pushes between exact recomputations of a
// ring's incremental aggregates. Each recompute is O(capacity) — 20 float
// reads for the paper's default history — so at 256 it amortizes to a
// fraction of one element's work per push while keeping the worst-case
// incremental drift far below every decision threshold (the property tests
// in history_test.go pin the bound).
const recomputeEvery = 256

// Ring is a fixed-capacity FIFO of power samples with their measurement
// intervals. The zero value is not usable; construct with NewRing.
type Ring struct {
	powers    []power.Watts
	durations []power.Seconds
	head      int // index of the oldest sample
	n         int // number of valid samples

	// Incremental sufficient statistics over the stored samples. float64
	// accumulators (not the Watts/Seconds wrappers) to make the arithmetic
	// explicit.
	sum    float64 // Σ powers
	sumSq  float64 // Σ powers²
	durSum float64 // Σ durations
	// tailDur is the running sum of the last min(tailK, n) durations — the
	// denominator of the priority module's windowed derivative. Maintained
	// only when tailK > 0 (SetTailWindow).
	tailK   int
	tailDur float64
	// pushes counts Push calls since the last exact recompute.
	pushes int
}

// NewRing returns a ring holding at most capacity samples.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("history: non-positive ring capacity %d", capacity))
	}
	return &Ring{
		powers:    make([]power.Watts, capacity),
		durations: make([]power.Seconds, capacity),
	}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.powers) }

// Len returns the number of samples currently stored.
func (r *Ring) Len() int { return r.n }

// Full reports whether the ring holds Cap() samples.
func (r *Ring) Full() bool { return r.n == len(r.powers) }

// SetTailWindow makes the ring maintain an O(1) running sum of its last k
// measurement intervals (TailDuration(k) and WindowedDerivative(k+1) then
// cost O(1)). k is clamped to the capacity; k <= 0 disables the window.
// The aggregate is rebuilt from the stored samples, so the window may be
// (re)configured at any time.
func (r *Ring) SetTailWindow(k int) {
	if k < 0 {
		k = 0
	}
	if k > len(r.powers) {
		k = len(r.powers)
	}
	r.tailK = k
	r.tailDur = r.directTail(k)
}

// TailWindow returns the configured tail-duration window (0 = disabled).
func (r *Ring) TailWindow() int { return r.tailK }

// idx maps the logical sample index i (0 = oldest) to its slot in the
// backing arrays. The caller guarantees 0 <= i < Cap(), so one conditional
// subtraction replaces the modulo — measurably cheaper in the per-unit
// decision loop.
func (r *Ring) idx(i int) int {
	j := r.head + i
	if j >= len(r.powers) {
		j -= len(r.powers)
	}
	return j
}

// Push appends a sample, evicting the oldest if the ring is full, and
// folds the change into the running aggregates.
func (r *Ring) Push(p power.Watts, dt power.Seconds) {
	// The sample leaving the tail-duration window (if any) must be read
	// before any slot is overwritten.
	if r.tailK > 0 && r.n >= r.tailK {
		r.tailDur -= float64(r.durations[r.idx(r.n-r.tailK)])
	}
	slot := r.idx(r.n) // == head when full: the slot being evicted
	if r.n == len(r.powers) {
		old := float64(r.powers[r.head])
		r.sum -= old
		r.sumSq -= old * old
		r.durSum -= float64(r.durations[r.head])
		r.head++
		if r.head == len(r.powers) {
			r.head = 0
		}
	} else {
		r.n++
	}
	r.powers[slot] = p
	r.durations[slot] = dt
	r.sum += float64(p)
	r.sumSq += float64(p) * float64(p)
	r.durSum += float64(dt)
	r.tailDur += float64(dt)
	r.pushes++
	if r.pushes >= recomputeEvery {
		r.recompute()
	}
}

// recompute re-derives every aggregate exactly from the stored samples,
// discarding accumulated floating-point drift.
func (r *Ring) recompute() {
	r.sum, r.sumSq, r.durSum = 0, 0, 0
	for i := 0; i < r.n; i++ {
		p := float64(r.powers[r.idx(i)])
		r.sum += p
		r.sumSq += p * p
		r.durSum += float64(r.durations[r.idx(i)])
	}
	r.tailDur = r.directTail(r.tailK)
	r.pushes = 0
}

// directTail sums the last min(k, n) durations directly.
func (r *Ring) directTail(k int) float64 {
	if k > r.n {
		k = r.n
	}
	var s float64
	for i := r.n - k; i < r.n; i++ {
		s += float64(r.durations[r.idx(i)])
	}
	return s
}

// SettledFor reports whether pushing (p, dt) would leave the ring — the
// stored samples, the running aggregates, and therefore every derived
// statistic — bitwise unchanged. That holds when the ring is full and
// uniform at exactly (p, dt), the aggregates survive the push's
// evict-then-insert float round-trips bit for bit, and a recompute would
// reproduce the stored aggregates exactly (so the periodic drift-wash is
// also a no-op and its phase becomes unobservable). The sparse decision
// path uses a true result to elide the per-round Push for unchanged
// units; see AdvancePushes for how the elided pushes are accounted.
//
// Rings with no configured tail window (SetTailWindow 0) never report
// settled: Push unconditionally accumulates into the tail-duration
// aggregate, so it is never a bitwise no-op on them.
func (r *Ring) SettledFor(p power.Watts, dt power.Seconds) bool {
	if r.tailK <= 0 || r.n != len(r.powers) || r.n == 0 {
		return false
	}
	// Uniformity: physical order equals logical content for a uniform
	// ring, so head phase is irrelevant here.
	for _, v := range r.powers {
		if v != p {
			return false
		}
	}
	for _, d := range r.durations {
		if d != dt {
			return false
		}
	}
	// Push round-trip identities, in Push's exact operation order:
	// evict-subtract then insert-add must land back on the same bits.
	fp, fdt := float64(p), float64(dt)
	if (r.sum-fp)+fp != r.sum || (r.sumSq-fp*fp)+fp*fp != r.sumSq {
		return false
	}
	if (r.durSum-fdt)+fdt != r.durSum || (r.tailDur-fdt)+fdt != r.tailDur {
		return false
	}
	// Recompute identity: the drift-wash's sequential re-summation must
	// reproduce the incremental aggregates exactly (same per-iteration
	// order as recompute over a uniform ring).
	var sum, sumSq, durSum float64
	for i := 0; i < r.n; i++ {
		sum += fp
		sumSq += fp * fp
		durSum += fdt
	}
	if sum != r.sum || sumSq != r.sumSq || durSum != r.durSum {
		return false
	}
	if r.directTail(r.tailK) != r.tailDur {
		return false
	}
	return true
}

// AdvancePushes accounts k elided pushes in the recompute schedule, as if
// Push had been called k times. The caller must guarantee each elided
// push would have been a bitwise no-op including its recompute (exactly
// what SettledFor certifies): then the only dense-path state the elisions
// touch is the push counter, whose evolution is pure arithmetic mod the
// recompute period, and this catch-up keeps the next real recompute
// firing on the same round as an always-dense ring — bit-identical
// aggregates forever, not just until the next drift-wash.
func (r *Ring) AdvancePushes(k int) {
	if k <= 0 {
		return
	}
	r.pushes = (r.pushes + k) % recomputeEvery
}

// At returns the i-th sample, 0 being the oldest. It panics if i is out of
// range, mirroring slice semantics.
func (r *Ring) At(i int) (power.Watts, power.Seconds) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("history: index %d out of range [0,%d)", i, r.n))
	}
	j := r.idx(i)
	return r.powers[j], r.durations[j]
}

// Last returns the most recent sample. ok is false if the ring is empty.
func (r *Ring) Last() (p power.Watts, dt power.Seconds, ok bool) {
	if r.n == 0 {
		return 0, 0, false
	}
	p, dt = r.At(r.n - 1)
	return p, dt, true
}

// Segments returns the stored power samples as up to two contiguous spans
// of the backing array: first holds the oldest samples, second (possibly
// nil) the samples that wrapped past the array end. Concatenated they are
// exactly Powers(), with zero copying — the priority module's peak scan
// runs directly over them. The spans alias ring storage: they are
// invalidated by the next Push/Reset and must not be mutated.
func (r *Ring) Segments() (first, second []power.Watts) {
	if r.head+r.n <= len(r.powers) {
		return r.powers[r.head : r.head+r.n], nil
	}
	split := len(r.powers) - r.head
	return r.powers[r.head:], r.powers[:r.n-split]
}

// DurationSegments is Segments for the measurement intervals.
func (r *Ring) DurationSegments() (first, second []power.Seconds) {
	if r.head+r.n <= len(r.powers) {
		return r.durations[r.head : r.head+r.n], nil
	}
	split := len(r.durations) - r.head
	return r.durations[r.head:], r.durations[:r.n-split]
}

// Mean returns the mean of the stored power samples in O(1) from the
// running aggregates (0 for an empty ring).
func (r *Ring) Mean() power.Watts {
	if r.n == 0 {
		return 0
	}
	return power.Watts(r.sum / float64(r.n))
}

// StdDev returns the population standard deviation of the stored power
// samples in O(1) from the running aggregates (0 for an empty ring). The
// E[x²]−E[x]² formulation can differ from the two-pass direct computation
// by cancellation on the order of 1e-6 W for realistic power magnitudes —
// far below the priority module's thresholds (DESIGN.md §8); the variance
// is clamped at 0 so drift can never produce NaN.
func (r *Ring) StdDev() power.Watts {
	if r.n == 0 {
		return 0
	}
	m := r.sum / float64(r.n)
	v := r.sumSq/float64(r.n) - m*m
	if v < 0 {
		v = 0
	}
	return power.Watts(math.Sqrt(v))
}

// WindowedDerivative estimates the average first derivative of the stored
// power over the last window samples, in watts per second — the ring-native
// equivalent of signal.WindowedDerivative (Algorithm 2 line 16):
//
//	(x[last] − x[last−window+1]) / Σ durations of the last window−1 samples
//
// It is O(1) when the elapsed time comes from an aggregate: the whole-ring
// case uses durSum minus the oldest duration, and window == TailWindow()+1
// uses the maintained tail sum. Other windows fall back to summing
// window−1 stored durations directly. Returns 0 with fewer than two
// samples or no elapsed time.
func (r *Ring) WindowedDerivative(window int) power.Watts {
	n := r.n
	if n < 2 {
		return 0
	}
	if window > n {
		window = n
	}
	if window < 2 {
		window = 2
	}
	var elapsed float64
	switch {
	case window == n:
		elapsed = r.durSum - float64(r.durations[r.head])
	case r.tailK == window-1:
		elapsed = r.tailDur
	default:
		elapsed = r.directTail(window - 1)
	}
	if elapsed <= 0 {
		return 0
	}
	return (r.powers[r.idx(n-1)] - r.powers[r.idx(n-window)]) / power.Watts(elapsed)
}

// PowersInto fills dst with the stored power samples, oldest first, and
// returns the filled prefix. It avoids allocation when dst has capacity
// for Len() samples. New code should prefer Segments, which avoids the
// copy entirely.
func (r *Ring) PowersInto(dst []power.Watts) []power.Watts {
	if cap(dst) < r.n {
		dst = make([]power.Watts, r.n)
	}
	dst = dst[:r.n]
	a, b := r.Segments()
	copy(dst, a)
	copy(dst[len(a):], b)
	return dst
}

// TailDuration returns the summed duration of the most recent k samples
// (all samples if k exceeds Len). This is the denominator of the priority
// module's windowed derivative (Algorithm 2 line 16). It reads the running
// aggregates — O(1) — when k covers the whole ring or matches the
// configured tail window, and sums k stored durations otherwise.
func (r *Ring) TailDuration(k int) power.Seconds {
	switch {
	case k <= 0:
		return 0
	case k >= r.n:
		return power.Seconds(r.durSum)
	case k == r.tailK:
		return power.Seconds(r.tailDur)
	}
	return power.Seconds(r.directTail(k))
}

// State is one ring's complete serializable state: the raw sample slots
// in physical order plus every running aggregate, bit for bit. The
// aggregates are carried rather than re-derived because the incremental
// values legitimately drift from an exact recomputation between
// drift-washes; restoring recomputed values would fork the bitstream
// from the exporting ring's. The capacity and tail window are
// construction inputs and excluded (ImportState checks the capacity).
type State struct {
	Powers                      []power.Watts
	Durations                   []power.Seconds
	Head, N                     int
	Sum, SumSq, DurSum, TailDur float64
	Pushes                      int
}

// ExportState copies the ring's state into st, reusing st's slices when
// they have capacity (allocation-free once warm).
func (r *Ring) ExportState(st *State) {
	if cap(st.Powers) < len(r.powers) {
		st.Powers = make([]power.Watts, len(r.powers))
	}
	st.Powers = st.Powers[:len(r.powers)]
	copy(st.Powers, r.powers)
	if cap(st.Durations) < len(r.durations) {
		st.Durations = make([]power.Seconds, len(r.durations))
	}
	st.Durations = st.Durations[:len(r.durations)]
	copy(st.Durations, r.durations)
	st.Head, st.N = r.head, r.n
	st.Sum, st.SumSq, st.DurSum, st.TailDur = r.sum, r.sumSq, r.durSum, r.tailDur
	st.Pushes = r.pushes
}

// ImportState overwrites the ring's samples and aggregates bitwise from
// st. The configured tail window is kept — it is construction input —
// and the stored TailDur is adopted as-is, NOT rebuilt via SetTailWindow:
// a recomputed tail sum could differ in the last bit from the exporting
// ring's incremental one and break restore equivalence. Errors (without
// mutating) if CheckState rejects st.
func (r *Ring) ImportState(st *State) error {
	if err := r.CheckState(st); err != nil {
		return err
	}
	copy(r.powers, st.Powers)
	copy(r.durations, st.Durations)
	r.head, r.n = st.Head, st.N
	r.sum, r.sumSq, r.durSum, r.tailDur = st.Sum, st.SumSq, st.DurSum, st.TailDur
	r.pushes = st.Pushes
	return nil
}

// CheckState reports whether st can be imported into this ring without
// checking anything bitwise: capacity match, head/count bounds, pushes
// inside the recompute period. Callers restoring many rings atomically
// validate them all with CheckState before the first ImportState.
func (r *Ring) CheckState(st *State) error {
	if len(st.Powers) != len(r.powers) || len(st.Durations) != len(r.durations) {
		return fmt.Errorf("history: state capacity %d/%d, ring capacity %d", len(st.Powers), len(st.Durations), len(r.powers))
	}
	if st.N < 0 || st.N > len(r.powers) || st.Head < 0 || st.Head >= len(r.powers) {
		return fmt.Errorf("history: state head=%d n=%d invalid for capacity %d", st.Head, st.N, len(r.powers))
	}
	if st.Pushes < 0 || st.Pushes >= recomputeEvery {
		return fmt.Errorf("history: state pushes=%d outside [0,%d)", st.Pushes, recomputeEvery)
	}
	return nil
}

// Reset discards all samples but keeps the capacity and the configured
// tail window. All running aggregates restart from exact zero.
func (r *Ring) Reset() {
	r.head = 0
	r.n = 0
	r.sum, r.sumSq, r.durSum, r.tailDur = 0, 0, 0, 0
	r.pushes = 0
}

// Set holds one ring per unit, the controller-side "estimated power
// history" global of Figure 3.
//
// Concurrency: the set is immutable after construction and each ring
// holds one unit's samples, so pushing to *distinct* units from different
// goroutines is race-free — the property the sharded controller relies
// on. Individual rings are not safe for concurrent use.
type Set struct {
	rings []*Ring
}

// NewSet creates n rings of the given capacity.
func NewSet(n, capacity int) *Set {
	s := &Set{rings: make([]*Ring, n)}
	for i := range s.rings {
		s.rings[i] = NewRing(capacity)
	}
	return s
}

// SetTailWindow configures every ring's maintained tail-duration window
// (see Ring.SetTailWindow).
func (s *Set) SetTailWindow(k int) {
	for _, r := range s.rings {
		r.SetTailWindow(k)
	}
}

// Unit returns the ring for unit u.
func (s *Set) Unit(u power.UnitID) *Ring { return s.rings[u] }

// Len returns the number of units.
func (s *Set) Len() int { return len(s.rings) }

// Push records one sample for unit u. Safe to call concurrently for
// distinct units (see the Set doc comment).
func (s *Set) Push(u power.UnitID, p power.Watts, dt power.Seconds) {
	s.rings[u].Push(p, dt)
}
