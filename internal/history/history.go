// Package history provides fixed-capacity ring buffers for recent power
// samples. DPS is "stateful" precisely in that it keeps this small history:
// the paper's default is 20 estimated power samples per unit plus the
// duration of each measurement interval, which together are the only state
// the priority module consumes.
package history

import (
	"fmt"

	"dps/internal/power"
)

// Ring is a fixed-capacity FIFO of power samples with their measurement
// intervals. The zero value is not usable; construct with NewRing.
type Ring struct {
	powers    []power.Watts
	durations []power.Seconds
	head      int // index of the oldest sample
	n         int // number of valid samples
}

// NewRing returns a ring holding at most capacity samples.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic(fmt.Sprintf("history: non-positive ring capacity %d", capacity))
	}
	return &Ring{
		powers:    make([]power.Watts, capacity),
		durations: make([]power.Seconds, capacity),
	}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.powers) }

// Len returns the number of samples currently stored.
func (r *Ring) Len() int { return r.n }

// Full reports whether the ring holds Cap() samples.
func (r *Ring) Full() bool { return r.n == len(r.powers) }

// Push appends a sample, evicting the oldest if the ring is full.
func (r *Ring) Push(p power.Watts, dt power.Seconds) {
	idx := (r.head + r.n) % len(r.powers)
	r.powers[idx] = p
	r.durations[idx] = dt
	if r.n < len(r.powers) {
		r.n++
	} else {
		r.head = (r.head + 1) % len(r.powers)
	}
}

// At returns the i-th sample, 0 being the oldest. It panics if i is out of
// range, mirroring slice semantics.
func (r *Ring) At(i int) (power.Watts, power.Seconds) {
	if i < 0 || i >= r.n {
		panic(fmt.Sprintf("history: index %d out of range [0,%d)", i, r.n))
	}
	idx := (r.head + i) % len(r.powers)
	return r.powers[idx], r.durations[idx]
}

// Last returns the most recent sample. ok is false if the ring is empty.
func (r *Ring) Last() (p power.Watts, dt power.Seconds, ok bool) {
	if r.n == 0 {
		return 0, 0, false
	}
	p, dt = r.At(r.n - 1)
	return p, dt, true
}

// Powers copies the stored power samples, oldest first, into a new slice.
func (r *Ring) Powers() []power.Watts {
	out := make([]power.Watts, r.n)
	for i := 0; i < r.n; i++ {
		out[i], _ = r.At(i)
	}
	return out
}

// PowersInto fills dst with the stored power samples, oldest first, and
// returns the filled prefix. It avoids allocation when dst has capacity
// for Len() samples; the controller's hot loop uses this form.
func (r *Ring) PowersInto(dst []power.Watts) []power.Watts {
	if cap(dst) < r.n {
		dst = make([]power.Watts, r.n)
	}
	dst = dst[:r.n]
	for i := 0; i < r.n; i++ {
		dst[i], _ = r.At(i)
	}
	return dst
}

// Durations copies the stored measurement intervals, oldest first.
func (r *Ring) Durations() []power.Seconds {
	out := make([]power.Seconds, r.n)
	for i := 0; i < r.n; i++ {
		_, out[i] = r.At(i)
	}
	return out
}

// TailDuration returns the summed duration of the most recent k samples
// (all samples if k exceeds Len). This is the denominator of the priority
// module's windowed derivative (Algorithm 2 line 16).
func (r *Ring) TailDuration(k int) power.Seconds {
	if k > r.n {
		k = r.n
	}
	var s power.Seconds
	for i := r.n - k; i < r.n; i++ {
		_, dt := r.At(i)
		s += dt
	}
	return s
}

// Reset discards all samples but keeps the capacity.
func (r *Ring) Reset() {
	r.head = 0
	r.n = 0
}

// Set holds one ring per unit, the controller-side "estimated power
// history" global of Figure 3.
//
// Concurrency: the set is immutable after construction and each ring
// holds one unit's samples, so pushing to *distinct* units from different
// goroutines is race-free — the property the sharded controller relies
// on. Individual rings are not safe for concurrent use.
type Set struct {
	rings []*Ring
}

// NewSet creates n rings of the given capacity.
func NewSet(n, capacity int) *Set {
	s := &Set{rings: make([]*Ring, n)}
	for i := range s.rings {
		s.rings[i] = NewRing(capacity)
	}
	return s
}

// Unit returns the ring for unit u.
func (s *Set) Unit(u power.UnitID) *Ring { return s.rings[u] }

// Len returns the number of units.
func (s *Set) Len() int { return len(s.rings) }

// Push records one sample for unit u. Safe to call concurrently for
// distinct units (see the Set doc comment).
func (s *Set) Push(u power.UnitID, p power.Watts, dt power.Seconds) {
	s.rings[u].Push(p, dt)
}
