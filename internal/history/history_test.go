package history

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dps/internal/power"
	"dps/internal/signal"
)

// ringPowers reads the stored samples oldest-first through the zero-copy
// segment API — the replacement for the deprecated allocating Powers().
func ringPowers(r *Ring) []power.Watts {
	a, b := r.Segments()
	return append(append([]power.Watts{}, a...), b...)
}

// ringDurations is ringPowers for the measurement intervals.
func ringDurations(r *Ring) []power.Seconds {
	a, b := r.DurationSegments()
	return append(append([]power.Seconds{}, a...), b...)
}

func TestRingPushAndOrder(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Full() {
		t.Fatalf("fresh ring: Len=%d Full=%v", r.Len(), r.Full())
	}
	r.Push(1, 1)
	r.Push(2, 1)
	if got := ringPowers(r); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Segments = %v, want [1 2]", got)
	}
	r.Push(3, 1)
	if !r.Full() {
		t.Error("ring with Cap samples not Full")
	}
	r.Push(4, 1) // evicts 1
	got := ringPowers(r)
	want := []power.Watts{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after eviction Segments = %v, want %v", got, want)
		}
	}
}

// TestRingSegmentsContiguity pins the segment contract: first holds the
// oldest run, second the wrapped run (nil before any wrap), and their
// concatenation equals the At-order view for every fill level of a small
// ring.
func TestRingSegmentsContiguity(t *testing.T) {
	const capacity = 5
	r := NewRing(capacity)
	for push := 1; push <= 3*capacity; push++ {
		r.Push(power.Watts(push), power.Seconds(push)/10)
		a, b := r.Segments()
		if len(a)+len(b) != r.Len() {
			t.Fatalf("push %d: segment lengths %d+%d != Len %d", push, len(a), len(b), r.Len())
		}
		if push <= capacity && b != nil {
			t.Fatalf("push %d: wrapped segment before first eviction", push)
		}
		joined := ringPowers(r)
		durs := ringDurations(r)
		for i := 0; i < r.Len(); i++ {
			p, d := r.At(i)
			if joined[i] != p || durs[i] != d {
				t.Fatalf("push %d index %d: segments (%v,%v) != At (%v,%v)", push, i, joined[i], durs[i], p, d)
			}
		}
	}
}

func TestRingAtAndLast(t *testing.T) {
	r := NewRing(4)
	r.Push(10, 2)
	r.Push(20, 3)
	p, d := r.At(0)
	if p != 10 || d != 2 {
		t.Errorf("At(0) = (%v,%v), want (10,2)", p, d)
	}
	p, d, ok := r.Last()
	if !ok || p != 20 || d != 3 {
		t.Errorf("Last = (%v,%v,%v), want (20,3,true)", p, d, ok)
	}
	var empty Ring
	_ = empty // the zero value is documented unusable; Last on a fresh ring:
	fresh := NewRing(2)
	if _, _, ok := fresh.Last(); ok {
		t.Error("Last on empty ring reported ok")
	}
}

func TestRingAtPanicsOutOfRange(t *testing.T) {
	r := NewRing(2)
	r.Push(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("At(1) on a 1-element ring did not panic")
		}
	}()
	r.At(1)
}

func TestNewRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestRingTailDuration(t *testing.T) {
	r := NewRing(5)
	for i := 1; i <= 4; i++ {
		r.Push(power.Watts(i), power.Seconds(i)) // durations 1,2,3,4
	}
	if got := r.TailDuration(2); got != 7 { // 3+4
		t.Errorf("TailDuration(2) = %v, want 7", got)
	}
	if got := r.TailDuration(100); got != 10 { // all
		t.Errorf("TailDuration(100) = %v, want 10", got)
	}
}

func TestRingPowersInto(t *testing.T) {
	r := NewRing(3)
	r.Push(5, 1)
	r.Push(6, 1)
	buf := make([]power.Watts, 0, 3)
	got := r.PowersInto(buf)
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("PowersInto = %v, want [5 6]", got)
	}
	// Small destination must not panic; a fresh slice is allocated.
	got = r.PowersInto(nil)
	if len(got) != 2 {
		t.Errorf("PowersInto(nil) len = %d, want 2", len(got))
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Push(1, 1)
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", r.Len())
	}
	r.Push(9, 1)
	if p, _ := r.At(0); p != 9 {
		t.Errorf("ring unusable after Reset: At(0) = %v", p)
	}
}

// TestRingPowersIntoWrapped checks the buffer-filling accessor agrees
// with the segment API across a wrap and reuses a large-enough buffer.
func TestRingPowersIntoWrapped(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ { // wraps twice
		r.Push(power.Watts(i), power.Seconds(i)/2)
	}
	want := ringPowers(r)
	got := r.PowersInto(nil)
	if len(got) != len(want) {
		t.Fatalf("PowersInto(nil) returned %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("index %d: PowersInto %v != segments %v", i, got[i], want[i])
		}
	}
	buf := make([]power.Watts, 0, 8)
	reused := r.PowersInto(buf)
	if &reused[0] != &buf[:1][0] {
		t.Error("PowersInto allocated despite sufficient capacity")
	}
	for i := range want {
		if reused[i] != want[i] {
			t.Errorf("index %d (reused buffer): %v != %v", i, reused[i], want[i])
		}
	}
}

// The ring always reports the most recent min(pushes, capacity) samples in
// push order, for any capacity and push count.
func TestRingWindowProperty(t *testing.T) {
	f := func(capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		n := int(nRaw % 64)
		r := NewRing(capacity)
		for i := 0; i < n; i++ {
			r.Push(power.Watts(i), 1)
		}
		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		if r.Len() != wantLen {
			return false
		}
		got := ringPowers(r)
		for i := 0; i < wantLen; i++ {
			if got[i] != power.Watts(n-wantLen+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRingIncrementalStatsMatchDirect is the property test pinning the
// tentpole contract: after any sequence of pushes, resets, evictions and
// tail-window configurations, the O(1) incremental statistics must agree
// with a direct recomputation over the stored samples to within the
// documented floating-point drift bound. Trials run long enough to cross
// the periodic exact-recompute boundary many times.
func TestRingIncrementalStatsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const eps = 1e-6
	near := func(a, b float64) bool {
		d := math.Abs(a - b)
		return d <= eps || d <= eps*math.Max(math.Abs(a), math.Abs(b))
	}
	for trial := 0; trial < 200; trial++ {
		capacity := 1 + rng.Intn(24)
		r := NewRing(capacity)
		if rng.Intn(2) == 0 {
			r.SetTailWindow(rng.Intn(capacity + 2))
		}
		steps := 1 + rng.Intn(3*recomputeEvery)
		for s := 0; s < steps; s++ {
			if rng.Intn(97) == 0 {
				r.Reset()
			}
			p := power.Watts(rng.Float64()*200 - 20)
			dt := power.Seconds(0.25 + rng.Float64()*3.75)
			r.Push(p, dt)
		}
		pows := ringPowers(r)
		durs := ringDurations(r)
		if got, want := float64(r.Mean()), float64(signal.Mean(pows)); !near(got, want) {
			t.Fatalf("trial %d: incremental Mean %v != direct %v", trial, got, want)
		}
		if got, want := float64(r.StdDev()), float64(signal.StdDev(pows)); !near(got, want) {
			t.Fatalf("trial %d: incremental StdDev %v != direct %v", trial, got, want)
		}
		for k := 0; k <= r.Len()+2; k++ {
			var want float64
			for i := r.Len() - min(k, r.Len()); i < r.Len(); i++ {
				want += float64(durs[i])
			}
			if got := float64(r.TailDuration(k)); !near(got, want) {
				t.Fatalf("trial %d: TailDuration(%d) = %v, want %v (tailWin=%d)", trial, k, got, want, r.TailWindow())
			}
		}
		for w := 2; w <= capacity+2; w++ {
			want := float64(signal.WindowedDerivative(pows, durs, w))
			if got := float64(r.WindowedDerivative(w)); !near(got, want) {
				t.Fatalf("trial %d: WindowedDerivative(%d) = %v, want %v", trial, w, got, want)
			}
		}
	}
}

// TestRingAggregatesAcrossEviction spells out the Push-after-eviction
// interplay on exact integer samples, where the incremental aggregates
// must match direct values bit-for-bit.
func TestRingAggregatesAcrossEviction(t *testing.T) {
	r := NewRing(3)
	r.SetTailWindow(2)
	r.Push(10, 1)
	r.Push(20, 2)
	r.Push(30, 3)
	r.Push(40, 4) // evicts (10, 1)
	if got := r.Mean(); got != 30 {
		t.Errorf("Mean after eviction = %v, want 30", got)
	}
	if got := r.TailDuration(3); got != 9 {
		t.Errorf("TailDuration(3) = %v, want 9", got)
	}
	if got := r.TailDuration(2); got != 7 {
		t.Errorf("TailDuration(2) = %v, want 7", got)
	}
	r.Push(50, 5) // evicts (20, 2)
	if got := r.Mean(); got != 40 {
		t.Errorf("Mean after second eviction = %v, want 40", got)
	}
	if got := r.TailDuration(2); got != 9 {
		t.Errorf("TailDuration(2) = %v, want 9", got)
	}
	if got := r.WindowedDerivative(3); got != (50-30)/power.Watts(9) {
		t.Errorf("WindowedDerivative(3) = %v, want %v", got, (50-30)/power.Watts(9))
	}
}

// TestRingResetRestartsAggregates: Reset must zero the running sums so a
// reused ring reports exact statistics for its new contents — even if the
// old aggregates had accumulated (here: injected) drift.
func TestRingResetRestartsAggregates(t *testing.T) {
	r := NewRing(4)
	r.SetTailWindow(1)
	for i := 0; i < 9; i++ {
		r.Push(power.Watts(7*i), 0.5)
	}
	r.sum += 1e9 // simulate pathological drift; Reset must not carry it over
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	r.Push(2, 1.5)
	r.Push(4, 2.5)
	if got := r.Mean(); got != 3 {
		t.Errorf("Mean after Reset+Push = %v, want exactly 3", got)
	}
	if got := r.StdDev(); got != 1 {
		t.Errorf("StdDev after Reset+Push = %v, want exactly 1", got)
	}
	if got := r.TailDuration(1); got != 2.5 {
		t.Errorf("TailDuration(1) after Reset = %v, want 2.5", got)
	}
	if got := r.TailWindow(); got != 1 {
		t.Errorf("Reset dropped the configured tail window: %d", got)
	}
}

// TestRingRecomputeClearsInjectedDrift pins the periodic exact-recompute
// trigger: drift injected into the running aggregates must be fully
// discarded within recomputeEvery further pushes.
func TestRingRecomputeClearsInjectedDrift(t *testing.T) {
	r := NewRing(8)
	r.SetTailWindow(2)
	for i := 0; i < 20; i++ {
		r.Push(power.Watts(i), 1)
	}
	r.sum += 512
	r.sumSq -= 256
	r.durSum += 64
	r.tailDur += 32
	if got := float64(r.Mean()); math.Abs(got-float64(signal.Mean(ringPowers(r)))) < 1 {
		t.Fatal("injected drift not visible; test is vacuous")
	}
	for i := 0; i < recomputeEvery; i++ {
		r.Push(power.Watts(100+i%3), 1)
	}
	pows := ringPowers(r)
	if got, want := float64(r.Mean()), float64(signal.Mean(pows)); math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean still drifted after recompute window: %v vs %v", got, want)
	}
	if got, want := float64(r.StdDev()), float64(signal.StdDev(pows)); math.Abs(got-want) > 1e-9 {
		t.Errorf("StdDev still drifted after recompute window: %v vs %v", got, want)
	}
	if got := float64(r.TailDuration(2)); math.Abs(got-2) > 1e-9 {
		t.Errorf("tail aggregate still drifted after recompute window: %v, want 2", got)
	}
	if got := float64(r.TailDuration(8)); math.Abs(got-8) > 1e-9 {
		t.Errorf("durSum still drifted after recompute window: %v, want 8", got)
	}
}

// TestRingSetTailWindowClampsAndRebuilds covers reconfiguration on a live
// ring: the aggregate is rebuilt from current contents and the window is
// clamped to the capacity.
func TestRingSetTailWindowClampsAndRebuilds(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ { // wraps
		r.Push(power.Watts(i), power.Seconds(i))
	}
	r.SetTailWindow(100)
	if got := r.TailWindow(); got != 4 {
		t.Errorf("TailWindow = %d, want clamp to capacity 4", got)
	}
	if got := r.TailDuration(4); got != 3+4+5+6 {
		t.Errorf("TailDuration(4) after SetTailWindow = %v, want 18", got)
	}
	r.SetTailWindow(-3)
	if got := r.TailWindow(); got != 0 {
		t.Errorf("negative window not disabled: %d", got)
	}
	r.SetTailWindow(2)
	if got := r.TailDuration(2); got != 11 {
		t.Errorf("TailDuration(2) after rebuild = %v, want 11", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSet(t *testing.T) {
	s := NewSet(3, 4)
	if s.Len() != 3 {
		t.Fatalf("Set.Len = %d, want 3", s.Len())
	}
	s.Push(1, 42, 1)
	if s.Unit(0).Len() != 0 {
		t.Error("push to unit 1 leaked into unit 0")
	}
	if p, _ := s.Unit(1).At(0); p != 42 {
		t.Errorf("Unit(1).At(0) = %v, want 42", p)
	}
}
