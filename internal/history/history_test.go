package history

import (
	"testing"
	"testing/quick"

	"dps/internal/power"
)

func TestRingPushAndOrder(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Full() {
		t.Fatalf("fresh ring: Len=%d Full=%v", r.Len(), r.Full())
	}
	r.Push(1, 1)
	r.Push(2, 1)
	if got := r.Powers(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Powers = %v, want [1 2]", got)
	}
	r.Push(3, 1)
	if !r.Full() {
		t.Error("ring with Cap samples not Full")
	}
	r.Push(4, 1) // evicts 1
	got := r.Powers()
	want := []power.Watts{2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after eviction Powers = %v, want %v", got, want)
		}
	}
}

func TestRingAtAndLast(t *testing.T) {
	r := NewRing(4)
	r.Push(10, 2)
	r.Push(20, 3)
	p, d := r.At(0)
	if p != 10 || d != 2 {
		t.Errorf("At(0) = (%v,%v), want (10,2)", p, d)
	}
	p, d, ok := r.Last()
	if !ok || p != 20 || d != 3 {
		t.Errorf("Last = (%v,%v,%v), want (20,3,true)", p, d, ok)
	}
	var empty Ring
	_ = empty // the zero value is documented unusable; Last on a fresh ring:
	fresh := NewRing(2)
	if _, _, ok := fresh.Last(); ok {
		t.Error("Last on empty ring reported ok")
	}
}

func TestRingAtPanicsOutOfRange(t *testing.T) {
	r := NewRing(2)
	r.Push(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("At(1) on a 1-element ring did not panic")
		}
	}()
	r.At(1)
}

func TestNewRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestRingTailDuration(t *testing.T) {
	r := NewRing(5)
	for i := 1; i <= 4; i++ {
		r.Push(power.Watts(i), power.Seconds(i)) // durations 1,2,3,4
	}
	if got := r.TailDuration(2); got != 7 { // 3+4
		t.Errorf("TailDuration(2) = %v, want 7", got)
	}
	if got := r.TailDuration(100); got != 10 { // all
		t.Errorf("TailDuration(100) = %v, want 10", got)
	}
}

func TestRingPowersInto(t *testing.T) {
	r := NewRing(3)
	r.Push(5, 1)
	r.Push(6, 1)
	buf := make([]power.Watts, 0, 3)
	got := r.PowersInto(buf)
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("PowersInto = %v, want [5 6]", got)
	}
	// Small destination must not panic; a fresh slice is allocated.
	got = r.PowersInto(nil)
	if len(got) != 2 {
		t.Errorf("PowersInto(nil) len = %d, want 2", len(got))
	}
}

func TestRingReset(t *testing.T) {
	r := NewRing(2)
	r.Push(1, 1)
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", r.Len())
	}
	r.Push(9, 1)
	if p, _ := r.At(0); p != 9 {
		t.Errorf("ring unusable after Reset: At(0) = %v", p)
	}
}

func TestRingDurations(t *testing.T) {
	r := NewRing(2)
	r.Push(1, 0.5)
	r.Push(2, 1.5)
	d := r.Durations()
	if len(d) != 2 || d[0] != 0.5 || d[1] != 1.5 {
		t.Errorf("Durations = %v, want [0.5 1.5]", d)
	}
}

// The ring always reports the most recent min(pushes, capacity) samples in
// push order, for any capacity and push count.
func TestRingWindowProperty(t *testing.T) {
	f := func(capRaw uint8, nRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		n := int(nRaw % 64)
		r := NewRing(capacity)
		for i := 0; i < n; i++ {
			r.Push(power.Watts(i), 1)
		}
		wantLen := n
		if wantLen > capacity {
			wantLen = capacity
		}
		if r.Len() != wantLen {
			return false
		}
		got := r.Powers()
		for i := 0; i < wantLen; i++ {
			if got[i] != power.Watts(n-wantLen+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSet(t *testing.T) {
	s := NewSet(3, 4)
	if s.Len() != 3 {
		t.Fatalf("Set.Len = %d, want 3", s.Len())
	}
	s.Push(1, 42, 1)
	if s.Unit(0).Len() != 0 {
		t.Error("push to unit 1 leaked into unit 0")
	}
	if p, _ := s.Unit(1).At(0); p != 42 {
		t.Errorf("Unit(1).At(0) = %v, want 42", p)
	}
}
