// Package metrics implements the paper's evaluation metrics: satisfaction
// (Equation 1), fairness (Equation 2), speedup relative to the constant
// allocation baseline, and harmonic-mean aggregation.
package metrics

import (
	"fmt"
	"math"

	"dps/internal/power"
)

// Satisfaction is Equation 1: the ratio of a workload's average power under
// its current caps to the average power it would draw uncapped, over the
// workload's lifetime. It is clamped to [0, 1]: measurement noise can push
// the raw ratio marginally above 1, which has no physical meaning.
func Satisfaction(avgCapped, avgUncapped power.Watts) float64 {
	if avgUncapped <= 0 {
		return 0
	}
	s := float64(avgCapped / avgUncapped)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Fairness is Equation 2: 1 − |satisfaction(i) − satisfaction(j)|, in
// [0, 1]. Two workloads whose demands are met in equal proportion have
// fairness 1; the paper observes fairness correlates positively with
// harmonic-mean performance.
func Fairness(satI, satJ float64) float64 {
	f := 1 - math.Abs(satI-satJ)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Speedup converts durations to the paper's performance metric: the
// baseline (constant allocation) mean throughput time divided by the
// measured mean throughput time. Values above 1 are gains.
func Speedup(baseline, measured power.Seconds) (float64, error) {
	if baseline <= 0 || measured <= 0 {
		return 0, fmt.Errorf("metrics: non-positive durations baseline=%v measured=%v", baseline, measured)
	}
	return float64(baseline / measured), nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HMean returns the harmonic mean of xs, the paper's aggregate for paired
// workload performance. Empty input or any non-positive entry yields 0.
func HMean(xs []float64) float64 { return power.HMean(xs) }

// HMeanDurations returns the harmonic mean of a slice of durations.
func HMeanDurations(ds []power.Seconds) power.Seconds {
	if len(ds) == 0 {
		return 0
	}
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = float64(d)
	}
	return power.Seconds(HMean(xs))
}

// MeanDurations returns the arithmetic mean of a slice of durations.
func MeanDurations(ds []power.Seconds) power.Seconds {
	if len(ds) == 0 {
		return 0
	}
	var s power.Seconds
	for _, d := range ds {
		s += d
	}
	return s / power.Seconds(len(ds))
}

// MinMax returns the smallest and largest entries of xs; ok is false for
// empty input.
func MinMax(xs []float64) (min, max float64, ok bool) {
	if len(xs) == 0 {
		return 0, 0, false
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, true
}
