package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"dps/internal/power"
)

func TestSatisfaction(t *testing.T) {
	if got := Satisfaction(110, 150); math.Abs(got-110.0/150.0) > 1e-12 {
		t.Errorf("Satisfaction(110,150) = %v", got)
	}
	if got := Satisfaction(150, 150); got != 1 {
		t.Errorf("fully met demand: %v, want 1", got)
	}
	// Noise can push the measured mean marginally above uncapped; clamp.
	if got := Satisfaction(151, 150); got != 1 {
		t.Errorf("Satisfaction above 1 not clamped: %v", got)
	}
	if got := Satisfaction(-5, 150); got != 0 {
		t.Errorf("negative power not clamped: %v", got)
	}
	if got := Satisfaction(100, 0); got != 0 {
		t.Errorf("zero uncapped power: %v, want 0", got)
	}
}

func TestFairness(t *testing.T) {
	if got := Fairness(0.9, 0.9); got != 1 {
		t.Errorf("equal satisfaction fairness = %v, want 1", got)
	}
	if got := Fairness(1.0, 0.75); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Fairness(1,0.75) = %v, want 0.75", got)
	}
}

// Fairness is symmetric and in [0,1] for any satisfactions in [0,1].
func TestFairnessSymmetryProperty(t *testing.T) {
	f := func(a, b float64) bool {
		si := math.Mod(math.Abs(a), 1)
		sj := math.Mod(math.Abs(b), 1)
		fij, fji := Fairness(si, sj), Fairness(sj, si)
		return fij == fji && fij >= 0 && fij <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(power.Seconds(120), power.Seconds(100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.2) > 1e-12 {
		t.Errorf("Speedup = %v, want 1.2", s)
	}
	if _, err := Speedup(0, 100); err == nil {
		t.Error("Speedup accepted a zero baseline")
	}
	if _, err := Speedup(100, 0); err == nil {
		t.Error("Speedup accepted a zero measurement")
	}
}

func TestMeanAndHMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := HMean([]float64{2, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("HMean = %v", got)
	}
}

func TestDurationAggregates(t *testing.T) {
	ds := []power.Seconds{100, 300}
	if got := MeanDurations(ds); got != 200 {
		t.Errorf("MeanDurations = %v", got)
	}
	if got := HMeanDurations(ds); math.Abs(float64(got)-150) > 1e-9 {
		t.Errorf("HMeanDurations = %v, want 150", got)
	}
	if MeanDurations(nil) != 0 || HMeanDurations(nil) != 0 {
		t.Error("empty duration aggregates non-zero")
	}
}

func TestMinMax(t *testing.T) {
	min, max, ok := MinMax([]float64{3, 1, 2})
	if !ok || min != 1 || max != 3 {
		t.Errorf("MinMax = %v %v %v", min, max, ok)
	}
	if _, _, ok := MinMax(nil); ok {
		t.Error("MinMax(nil) reported ok")
	}
}
