// Package trace is the control loop's causal debugging layer: a
// dependency-free, ring-buffered span recorder whose traces are scoped to
// decision rounds, plus the cap-provenance vocabulary that names *why* a
// unit's cap moved.
//
// The paper's algorithms are causal — Algorithm 1 cuts and raises,
// Algorithm 3 restores, Algorithm 4 grants or equalizes — and §6.5's
// overhead argument is about what one round costs end to end. Aggregate
// metrics (internal/telemetry) answer "how much"; this package answers
// "which module, in which round, for how long": every pipeline stage and
// every wire hop records a span carrying the round number as its trace ID,
// in the spirit of Dapper-style request tracing, and the recorder exports
// Chrome trace_event JSON that loads directly in Perfetto or
// chrome://tracing.
//
// The recorder is built to be free when off: On() is a nil-safe atomic
// load, no instrumentation site allocates or takes a lock unless the
// recorder is enabled, and the guard test in internal/core pins the warm
// decision round at 0 allocs/op with tracing disabled. Like the rest of
// the repository, nothing here imports outside the standard library.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Reason names the algorithm-level cause of one unit's cap change within a
// decision round — the vocabulary of cap provenance. The zero value means
// the cap did not move.
type Reason uint8

const (
	// ReasonNone: no module changed this unit's cap this round.
	ReasonNone Reason = iota
	// ReasonMIMDCut: Algorithm 1 cut the cap of a unit drawing well below
	// it (releasing budget).
	ReasonMIMDCut
	// ReasonMIMDRaise: Algorithm 1 raised the cap of a unit pressing
	// against it.
	ReasonMIMDRaise
	// ReasonRestore: Algorithm 3 reset the cap to the constant cap because
	// every unit in the system went quiet.
	ReasonRestore
	// ReasonReadjustGrant: Algorithm 4's budget-available branch granted
	// leftover budget to a high-priority unit.
	ReasonReadjustGrant
	// ReasonEqualize: Algorithm 4's exhausted-budget branch equalized
	// high-priority caps (or reclaimed low-priority surplus to do so).
	ReasonEqualize
	// ReasonHealthPin: the degraded-mode controller pinned a non-fresh
	// unit back to the cap its agent is still enforcing.
	ReasonHealthPin
	// ReasonDegradedDeliver: the daemon's delivery-side safety net pinned
	// the cap of a non-fresh unit on behalf of a health-blind manager.
	ReasonDegradedDeliver
	// ReasonClamp: the final safety clamp moved the cap (hardware-limit
	// clamping or the proportional budget rescale). The pipeline maintains
	// the budget invariant, so this should account for floating-point
	// drift only.
	ReasonClamp

	reasonCount
)

var reasonNames = [reasonCount]string{
	"none", "mimd_cut", "mimd_raise", "restore", "readjust_grant",
	"equalize", "health_pin", "degraded_deliver", "clamp",
}

// String returns the snake_case reason name used in flight-recorder rows
// and the /debug/why endpoint.
func (r Reason) String() string {
	if r >= reasonCount {
		return "unknown"
	}
	return reasonNames[r]
}

// CapChange is one unit's cap provenance for one decision round: the cap
// it entered the round with, the cap it left with, and the last module
// that moved it. Reason == ReasonNone implies Before == After (the
// conservation property pinned by internal/core's provenance test); the
// converse need not hold — a cap can be moved and moved back, leaving a
// reason with a zero net delta.
type CapChange struct {
	Reason        Reason
	Before, After float64 // watts
}

// Display lanes. Spans are laid out one lane ("thread" in the Chrome
// trace model) per subsystem so a round reads left to right in Perfetto:
// the agent's meter read, the server's ingest, the four decision stages,
// the push, and the agent's cap apply.
const (
	// LaneDecide holds the controller's per-round pipeline stages.
	LaneDecide int32 = iota
	// LaneIngest holds per-connection report read/sanitize spans.
	LaneIngest
	// LanePush holds per-connection cap push spans.
	LanePush
	// LaneAgent holds agent-side spans (meter read, cap apply).
	LaneAgent
	// LaneSim holds the simulator's per-step spans.
	LaneSim

	laneCount
)

var laneNames = [laneCount]string{"decide", "ingest", "push", "agent", "sim"}

// Canonical span names, one per instrumented step of the
// read→ingest→decide→push→apply path. Instrumentation sites must use
// static strings (these constants) so recording never allocates.
const (
	SpanRead      = "read"       // agent: meter read for one report
	SpanReport    = "report"     // agent: suppression decision + report write
	SpanIngest    = "ingest"     // server: sanitize+store one report batch
	SpanKalman    = "kalman"     // core: filtering plus history push
	SpanStateless = "stateless"  // core: Algorithm 1
	SpanPriority  = "priority"   // core: Algorithm 2
	SpanReadjust  = "readjust"   // core: Algorithms 3/4
	SpanHealthPin = "health_pin" // core: degraded-round pinning
	SpanDecide    = "decide"     // core: the whole decision round
	SpanPush      = "push"       // server: cap batch write to one agent
	SpanApply     = "apply"      // server: agent apply, inferred from the echo RTT
	SpanCapApply  = "cap_apply"  // agent: programming received caps, on the agent's clock
	SpanSimStep   = "sim_step"   // sim: one discrete step (machine+controller)
)

// Span is one recorded interval. Trace is the round-scoped trace ID (the
// decision round the span belongs to), Unit an optional unit attribution
// (-1 when the span covers many units), Start/Dur wall-clock nanoseconds.
type Span struct {
	Trace uint64
	Name  string
	Lane  int32
	Unit  int32
	Start int64 // ns since the Unix epoch
	Dur   int64 // ns
}

// Recorder is a fixed-capacity ring buffer of spans, safe for concurrent
// use. A nil *Recorder is a valid always-off recorder, so instrumented
// code guards every site with On() and needs no nil checks of its own.
type Recorder struct {
	enabled atomic.Bool

	mu    sync.Mutex
	buf   []Span
	n     int    // valid spans
	next  int    // slot the next Record writes
	total uint64 // lifetime records
}

// DefaultSpanCapacity holds roughly five minutes of a one-second control
// loop at ~12 spans per round.
const DefaultSpanCapacity = 4096

// NewRecorder returns a disabled recorder holding at most capacity spans
// (DefaultSpanCapacity if capacity <= 0). Enable it with SetEnabled.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Recorder{buf: make([]Span, capacity)}
}

// SetEnabled turns recording on or off. Disabling does not discard
// already-recorded spans.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// On reports whether spans should be recorded. It is nil-safe and
// lock-free: the hot path's only tracing cost when off.
func (r *Recorder) On() bool { return r != nil && r.enabled.Load() }

// Record appends one span, evicting the oldest when full. Callers pass
// static name strings and pre-taken timestamps, so a Record call never
// allocates. Calls on a nil or disabled recorder are dropped (Record
// tolerates racing a SetEnabled(false)).
func (r *Recorder) Record(traceID uint64, name string, lane, unit int32, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = Span{
		Trace: traceID,
		Name:  name,
		Lane:  lane,
		Unit:  unit,
		Start: start.UnixNano(),
		Dur:   int64(dur),
	}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of spans currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Total returns the lifetime number of recorded spans (>= Len once the
// ring evicts).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n spans in record order (oldest of the selection
// first). n <= 0 means all held spans.
func (r *Recorder) Last(n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	if n == 0 {
		return nil
	}
	out := make([]Span, n)
	// next-1 is the newest; the selection starts n-1 spans before it.
	first := r.next - n
	if first < 0 {
		first += len(r.buf)
	}
	for i := 0; i < n; i++ {
		j := first + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		out[i] = r.buf[j]
	}
	return out
}

// traceEvent is one entry of the Chrome trace_event format ("X" complete
// events for spans, "M" metadata events for lane names), the JSON
// Perfetto and chrome://tracing load natively.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`  // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object form of the trace_event format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTraceEvents renders the newest lastN spans (all held if lastN <= 0)
// as Chrome trace_event JSON. Every span becomes a complete ("X") event
// with its round as args.trace_id, preceded by metadata events naming the
// lanes, so the export opens in Perfetto with one named track per
// subsystem.
func (r *Recorder) WriteTraceEvents(w io.Writer, lastN int) error {
	spans := r.Last(lastN)
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(spans)+int(laneCount)+1)}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "dps"},
	})
	for lane := int32(0); lane < laneCount; lane++ {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lane,
			Args: map[string]any{"name": laneNames[lane]},
		})
	}
	for _, sp := range spans {
		ev := traceEvent{
			Name: sp.Name,
			Cat:  "dps",
			Ph:   "X",
			Pid:  1,
			Tid:  sp.Lane,
			Ts:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			Args: map[string]any{"trace_id": sp.Trace},
		}
		if sp.Unit >= 0 {
			ev.Args["unit"] = sp.Unit
		}
		tf.TraceEvents = append(tf.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// CountParam parses a positive record-count limit from a debug
// endpoint's query. The canonical parameter is n; last is accepted as an
// alias (the two debug endpoints historically disagreed on the
// spelling). Malformed values and supplying both spellings are a 400,
// written to w; ok is false when the caller should return without
// serving. An absent parameter yields the given default.
func CountParam(w http.ResponseWriter, req *http.Request, def int) (n int, ok bool) {
	q := req.URL.Query()
	nq, lq := q.Get("n"), q.Get("last")
	if nq != "" && lq != "" {
		http.Error(w, "specify n or last (n is canonical), not both", http.StatusBadRequest)
		return 0, false
	}
	if nq == "" {
		nq = lq
	}
	if nq == "" {
		return def, true
	}
	v, err := strconv.Atoi(nq)
	if err != nil || v <= 0 {
		http.Error(w, "n must be a positive integer", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// Handler serves the recorder for mounting at GET /debug/trace. The
// optional query parameter n (canonical; last is an accepted alias)
// limits the export to the newest N spans (default: all held). The
// response downloads as trace.json so it can be dragged straight into
// ui.perfetto.dev.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n, ok := CountParam(w, req, 0)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		if err := r.WriteTraceEvents(w, n); err != nil {
			http.Error(w, fmt.Sprintf("rendering trace: %v", err), http.StatusInternalServerError)
		}
	})
}
