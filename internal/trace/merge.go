package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file merges per-process trace exports into one fleet timeline.
// Every dps process — primary, standby, each agent — serves its own
// Chrome trace_event JSON at /debug/trace, each on its own clock. The
// merge puts them in one file with one process ("pid") per dps process,
// after shifting each non-reference process onto the reference clock.
//
// The clock offset needs no extra protocol: the server already records
// an "apply" span for each cap-apply echo, back-dated by the echoed
// apply duration — its start is the server-clock estimate of the moment
// the agent began applying. The agent's own "cap_apply" span records the
// same moment on the agent's clock, and FlagTraceCtx makes both carry
// the controller round plus the agent's first unit. Matching the pairs
// by (trace_id, unit) and taking the median of (server start − agent
// start) estimates the offset with the push latency as error — small,
// and median-robust against stragglers.

// Event is one Chrome trace_event entry as exported by WriteTraceEvents
// (and accepted by Perfetto): "X" complete events for spans, "M"
// metadata events for process/thread names. Field meanings and JSON tags
// mirror the trace_event format; Ts and Dur are microseconds.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ParseEvents decodes one process's /debug/trace export (a traceFile
// object, or a bare event array for tolerance).
func ParseEvents(data []byte) ([]Event, error) {
	var file struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &file); err == nil && file.TraceEvents != nil {
		return file.TraceEvents, nil
	}
	var events []Event
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("trace: not a trace_event export: %w", err)
	}
	return events, nil
}

// Process is one process's contribution to a merged trace.
type Process struct {
	// Name labels the process in the merged timeline (e.g. its address).
	Name   string
	Events []Event
}

// anchorKey identifies one cap-apply observation: the controller round
// and the agent's first unit, both carried in span args.
type anchorKey struct {
	trace uint64
	unit  int64
}

// argNum extracts a numeric arg (JSON numbers decode as float64; events
// built in-process may hold native integer types).
func argNum(args map[string]any, key string) (int64, bool) {
	switch v := args[key].(type) {
	case float64:
		return int64(v), true
	case int64:
		return v, true
	case uint64:
		return int64(v), true
	case int:
		return int64(v), true
	case int32:
		return int64(v), true
	default:
		return 0, false
	}
}

// anchors collects name-matching spans keyed by (trace_id, unit). Spans
// with round 0 carry no trace context and cannot anchor anything.
func anchors(events []Event, name string) map[anchorKey]float64 {
	out := make(map[anchorKey]float64)
	for _, ev := range events {
		if ev.Ph != "X" || ev.Name != name {
			continue
		}
		tr, ok := argNum(ev.Args, "trace_id")
		if !ok || tr == 0 {
			continue
		}
		unit, ok := argNum(ev.Args, "unit")
		if !ok {
			unit = -1
		}
		out[anchorKey{trace: uint64(tr), unit: unit}] = ev.Ts
	}
	return out
}

// EstimateOffsetUS estimates how far proc's clock is behind ref's, in
// microseconds: add the offset to proc timestamps to place them on ref's
// timeline. It matches ref's RTT-inferred "apply" spans against proc's
// locally-clocked "cap_apply" spans by (controller round, first unit)
// and returns the median difference. ok is false when no pair matches —
// the processes share no trace-context rounds — in which case spans can
// only be merged unaligned.
func EstimateOffsetUS(ref, proc []Event) (offsetUS float64, ok bool) {
	serverSide := anchors(ref, SpanApply)
	agentSide := anchors(proc, SpanCapApply)
	var diffs []float64
	for k, agentTs := range agentSide {
		if serverTs, found := serverSide[k]; found {
			diffs = append(diffs, serverTs-agentTs)
		}
	}
	if len(diffs) == 0 {
		return 0, false
	}
	sort.Float64s(diffs)
	return diffs[len(diffs)/2], true
}

// Merge writes one merged Chrome trace for the given processes.
// procs[0] is the reference timeline (offset zero, pid 1); every later
// process is clock-shifted onto it via EstimateOffsetUS (left unshifted
// when no anchor pair matches) and assigned pid i+1. Per-process
// metadata events are rewritten to the assigned pid, with a
// process_name event labeling each process, and span events are sorted
// by aligned timestamp so the output is deterministic for a given input.
func Merge(w io.Writer, procs []Process) error {
	var meta, spans []Event
	for i, p := range procs {
		pid := i + 1
		var offset float64
		if i > 0 {
			offset, _ = EstimateOffsetUS(procs[0].Events, p.Events)
		}
		meta = append(meta, Event{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": p.Name},
		})
		for _, ev := range p.Events {
			ev.Pid = pid
			switch ev.Ph {
			case "M":
				if ev.Name == "process_name" {
					continue // replaced by the labeled event above
				}
				meta = append(meta, ev)
			default:
				ev.Ts += offset
				spans = append(spans, ev)
			}
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Ts < spans[j].Ts })
	out := struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, spans...), DisplayTimeUnit: "ms"}
	if out.TraceEvents == nil {
		out.TraceEvents = []Event{}
	}
	return json.NewEncoder(w).Encode(out)
}
