package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonNone:            "none",
		ReasonMIMDCut:         "mimd_cut",
		ReasonMIMDRaise:       "mimd_raise",
		ReasonRestore:         "restore",
		ReasonReadjustGrant:   "readjust_grant",
		ReasonEqualize:        "equalize",
		ReasonHealthPin:       "health_pin",
		ReasonDegradedDeliver: "degraded_deliver",
		ReasonClamp:           "clamp",
	}
	if len(want) != int(reasonCount) {
		t.Fatalf("test covers %d reasons, enum has %d", len(want), reasonCount)
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), s)
		}
	}
	if Reason(200).String() != "unknown" {
		t.Errorf("out-of-range reason: got %q, want unknown", Reason(200).String())
	}
}

func TestNilAndDisabledRecorder(t *testing.T) {
	var nilRec *Recorder
	if nilRec.On() {
		t.Fatal("nil recorder reports On")
	}
	nilRec.Record(1, SpanDecide, LaneDecide, -1, time.Now(), time.Millisecond) // must not panic

	r := NewRecorder(4)
	if r.On() {
		t.Fatal("fresh recorder should start disabled")
	}
	r.SetEnabled(true)
	if !r.On() {
		t.Fatal("recorder should be on after SetEnabled(true)")
	}
	r.SetEnabled(false)
	if r.On() {
		t.Fatal("recorder should be off after SetEnabled(false)")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	r.SetEnabled(true)
	base := time.Unix(1700000000, 0)
	for i := 0; i < 5; i++ {
		r.Record(uint64(i), SpanKalman, LaneDecide, int32(i), base.Add(time.Duration(i)*time.Second), time.Millisecond)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	got := r.Last(0)
	if len(got) != 3 {
		t.Fatalf("Last(0) returned %d spans, want 3", len(got))
	}
	// Oldest survivors are traces 2,3,4 in record order.
	for i, want := range []uint64{2, 3, 4} {
		if got[i].Trace != want {
			t.Errorf("Last(0)[%d].Trace = %d, want %d", i, got[i].Trace, want)
		}
	}
	got = r.Last(2)
	if len(got) != 2 || got[0].Trace != 3 || got[1].Trace != 4 {
		t.Errorf("Last(2) = %+v, want traces 3,4", got)
	}
	if n := len(NewRecorder(8).Last(0)); n != 0 {
		t.Errorf("empty recorder Last(0) returned %d spans", n)
	}
}

// TestWriteTraceEventsShape asserts the export is valid Chrome
// trace_event JSON of the shape Perfetto accepts: a traceEvents array of
// "M" metadata and "X" complete events with microsecond ts/dur and
// consistent pid/tid lanes.
func TestWriteTraceEventsShape(t *testing.T) {
	r := NewRecorder(16)
	r.SetEnabled(true)
	base := time.Unix(1700000000, 0)
	r.Record(7, SpanKalman, LaneDecide, -1, base, 1500*time.Microsecond)
	r.Record(7, SpanApply, LaneAgent, 3, base.Add(2*time.Millisecond), 250*time.Microsecond)

	var buf bytes.Buffer
	if err := r.WriteTraceEvents(&buf, 0); err != nil {
		t.Fatalf("WriteTraceEvents: %v", err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int32          `json:"tid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", tf.DisplayTimeUnit)
	}
	var meta, complete int
	laneNamesSeen := map[int32]string{}
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name == "thread_name" {
				laneNamesSeen[ev.Tid] = ev.Args["name"].(string)
			}
		case "X":
			complete++
			if ev.Pid != 1 {
				t.Errorf("span %q pid = %d, want 1", ev.Name, ev.Pid)
			}
			if ev.Args["trace_id"] == nil {
				t.Errorf("span %q missing args.trace_id", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != int(laneCount)+1 {
		t.Errorf("got %d metadata events, want %d", meta, laneCount+1)
	}
	if complete != 2 {
		t.Errorf("got %d complete events, want 2", complete)
	}
	for lane, want := range map[int32]string{LaneDecide: "decide", LaneAgent: "agent"} {
		if laneNamesSeen[lane] != want {
			t.Errorf("lane %d named %q, want %q", lane, laneNamesSeen[lane], want)
		}
	}
	// Microsecond conversion: the kalman span is 1500µs long.
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == SpanKalman {
			if ev.Dur != 1500 {
				t.Errorf("kalman dur = %v µs, want 1500", ev.Dur)
			}
			if wantTs := float64(base.UnixNano()) / 1e3; ev.Ts != wantTs {
				t.Errorf("kalman ts = %v µs, want %v", ev.Ts, wantTs)
			}
		}
		if ev.Ph == "X" && ev.Name == SpanApply {
			if u, ok := ev.Args["unit"].(float64); !ok || u != 3 {
				t.Errorf("apply span unit arg = %v, want 3", ev.Args["unit"])
			}
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRecorder(8)
	r.SetEnabled(true)
	for i := 0; i < 5; i++ {
		r.Record(uint64(i), SpanPush, LanePush, -1, time.Unix(int64(i), 0), time.Millisecond)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?last=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type %q", ct)
	}
	var tf struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tf); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	var spans int
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans != 2 {
		t.Errorf("?last=2 exported %d spans, want 2", spans)
	}

	if resp, err := srv.Client().Get(srv.URL + "?last=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("?last=bogus status %d, want 400", resp.StatusCode)
		}
	}

	// n= is the canonical spelling; both at once is ambiguous.
	if resp, err := srv.Client().Get(srv.URL + "?n=2"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("?n=2 status %d, want 200", resp.StatusCode)
		}
	}
	if resp, err := srv.Client().Get(srv.URL + "?n=2&last=2"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("?n=2&last=2 status %d, want 400", resp.StatusCode)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(64)
	r.SetEnabled(true)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(uint64(i), SpanIngest, LaneIngest, int32(g), time.Unix(0, int64(i)), time.Microsecond)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteTraceEvents(&buf, 10); err != nil {
				t.Errorf("concurrent export: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Total() != 800 {
		t.Errorf("Total = %d, want 800", r.Total())
	}
}

// TestRecordNoAlloc pins that recording itself — with static names and
// pre-taken timestamps, as every instrumentation site does — performs no
// allocations, so enabling tracing costs time but not garbage.
func TestRecordNoAlloc(t *testing.T) {
	r := NewRecorder(128)
	r.SetEnabled(true)
	start := time.Unix(1700000000, 0)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(1, SpanKalman, LaneDecide, -1, start, time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("Record allocates %.1f allocs/op, want 0", allocs)
	}
	var nilRec *Recorder
	allocs = testing.AllocsPerRun(100, func() {
		if nilRec.On() {
			nilRec.Record(1, SpanKalman, LaneDecide, -1, start, time.Millisecond)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %.1f allocs/op, want 0", allocs)
	}
}
