package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// export runs a recorder through its own JSON exporter and parses the
// result back, so merge tests consume exactly what /debug/trace serves.
func export(t *testing.T, r *Recorder) []Event {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteTraceEvents(&buf, 0); err != nil {
		t.Fatal(err)
	}
	events, err := ParseEvents(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestEstimateOffsetUS(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	skew := -3 * time.Second // the agent's clock runs 3 s behind

	server := NewRecorder(64)
	server.SetEnabled(true)
	agent := NewRecorder(64)
	agent.SetEnabled(true)
	for round := uint64(1); round <= 5; round++ {
		applyAt := base.Add(time.Duration(round) * time.Second)
		// The server's RTT-inferred view of the same apply, off by the
		// one-way push latency.
		server.Record(round, SpanApply, LaneAgent, 0, applyAt.Add(200*time.Microsecond), time.Millisecond)
		agent.Record(round, SpanCapApply, LaneAgent, 0, applyAt.Add(skew), time.Millisecond)
	}
	// An unrelated agent span must not disturb the match.
	agent.Record(6, SpanRead, LaneAgent, 0, base.Add(skew), time.Millisecond)

	offset, ok := EstimateOffsetUS(export(t, server), export(t, agent))
	if !ok {
		t.Fatal("no anchor pair matched")
	}
	want := float64(-skew/time.Microsecond) + 200
	if offset != want {
		t.Fatalf("offset = %v µs, want %v", offset, want)
	}

	// No shared rounds → no estimate.
	lone := NewRecorder(8)
	lone.SetEnabled(true)
	lone.Record(99, SpanCapApply, LaneAgent, 0, base, time.Millisecond)
	if _, ok := EstimateOffsetUS(export(t, server), export(t, lone)); ok {
		t.Fatal("offset estimated with no matching rounds")
	}
}

func TestMergeAlignsAndOrders(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	skew := 2 * time.Second // agent clock runs 2 s ahead

	server := NewRecorder(64)
	server.SetEnabled(true)
	agent := NewRecorder(64)
	agent.SetEnabled(true)
	for round := uint64(1); round <= 3; round++ {
		start := base.Add(time.Duration(round) * time.Second)
		server.Record(round, SpanDecide, LaneDecide, -1, start, 2*time.Millisecond)
		server.Record(round, SpanPush, LanePush, 0, start.Add(2*time.Millisecond), 100*time.Microsecond)
		applyAt := start.Add(3 * time.Millisecond)
		server.Record(round, SpanApply, LaneAgent, 0, applyAt, time.Millisecond)
		agent.Record(round, SpanCapApply, LaneAgent, 0, applyAt.Add(skew), time.Millisecond)
	}

	var buf bytes.Buffer
	err := Merge(&buf, []Process{
		{Name: "primary:9070", Events: export(t, server)},
		{Name: "agent:9071", Events: export(t, agent)},
	})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := ParseEvents(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	names := map[int]string{}
	var prevTs float64
	sawSpan := false
	for _, ev := range merged {
		if ev.Ph == "M" {
			if sawSpan {
				t.Fatal("metadata event after span events")
			}
			if ev.Name == "process_name" {
				names[ev.Pid] = ev.Args["name"].(string)
			}
			continue
		}
		sawSpan = true
		if ev.Ts < prevTs {
			t.Fatalf("span events out of order: %v after %v", ev.Ts, prevTs)
		}
		prevTs = ev.Ts
	}
	if names[1] != "primary:9070" || names[2] != "agent:9071" {
		t.Fatalf("process names = %v", names)
	}

	// After alignment, each agent cap_apply lands at the server's
	// RTT-inferred apply time: nested inside [decide start, next decide)
	// of its own round.
	for _, ev := range merged {
		if ev.Ph != "X" || ev.Name != SpanCapApply {
			continue
		}
		if ev.Pid != 2 {
			t.Fatalf("cap_apply on pid %d, want the agent process 2", ev.Pid)
		}
		round, ok := argNum(ev.Args, "trace_id")
		if !ok {
			t.Fatal("cap_apply lost its trace_id")
		}
		roundStart := float64(base.Add(time.Duration(round)*time.Second).UnixNano()) / 1e3
		if ev.Ts < roundStart || ev.Ts > roundStart+1e6 {
			t.Fatalf("aligned cap_apply of round %d at %v µs, want within [%v, %v)",
				round, ev.Ts, roundStart, roundStart+1e6)
		}
	}
}

func TestParseEventsRejectsGarbage(t *testing.T) {
	if _, err := ParseEvents([]byte("not json")); err == nil {
		t.Fatal("accepted non-JSON")
	}
	events, err := ParseEvents([]byte(`[{"name":"x","ph":"X","pid":1,"tid":0,"ts":1}]`))
	if err != nil || len(events) != 1 {
		t.Fatalf("bare array: %v %v", events, err)
	}
}

func TestMergeDeterministic(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	r := NewRecorder(8)
	r.SetEnabled(true)
	r.Record(1, SpanDecide, LaneDecide, -1, base, time.Millisecond)
	events := export(t, r)
	var a, b bytes.Buffer
	if err := Merge(&a, []Process{{Name: "p", Events: events}}); err != nil {
		t.Fatal(err)
	}
	if err := Merge(&b, []Process{{Name: "p", Events: events}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merge output not deterministic")
	}
	var js map[string]any
	if err := json.Unmarshal(a.Bytes(), &js); err != nil {
		t.Fatalf("merged output is not valid JSON: %v", err)
	}
}
