package priority

import (
	"testing"

	"dps/internal/history"
	"dps/internal/power"
)

const constantCap = power.Watts(110)

// harness drives one unit through a power sequence and returns the module
// state afterwards. caps default to a value that never triggers the
// at-cap check unless the test opts in.
type harness struct {
	t    *testing.T
	m    *Module
	hist *history.Set
	caps power.Vector
	pow  power.Vector
}

func newHarness(t *testing.T, cfg Config, units int) *harness {
	t.Helper()
	m, err := New(cfg, units)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		t:    t,
		m:    m,
		hist: history.NewSet(units, 20),
		caps: power.NewVector(units, 165),
		pow:  power.NewVector(units, 0),
	}
}

// step feeds one estimated power sample for unit 0 and updates.
func (h *harness) step(p power.Watts) []bool {
	h.t.Helper()
	h.hist.Push(0, p, 1)
	h.pow[0] = p
	return h.m.Update(h.hist, h.pow, h.caps, constantCap)
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.DerivIncThreshold = 0 },
		func(c *Config) { c.DerivDecThreshold = 1 },
		func(c *Config) { c.StdThreshold = -1 },
		func(c *Config) { c.PeakProminence = 0 },
		func(c *Config) { c.PeakCountThreshold = 0 },
		func(c *Config) { c.DerivWindow = 1 },
		func(c *Config) { c.MinSamples = 1 },
		func(c *Config) { c.AtCapFraction = 1.5 },
		func(c *Config) { c.IdleRevertFraction = -0.1 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(DefaultConfig(), 0); err == nil {
		t.Error("New accepted zero units")
	}
}

func TestRisingDerivativeSetsHighPriority(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 1)
	h.step(60)
	h.step(60)
	prio := h.step(120) // +60 W in one second, far above the threshold
	if !prio[0] {
		t.Error("fast power rise did not set high priority")
	}
}

func TestFallingDerivativeClearsPriority(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 1)
	h.step(60)
	h.step(60)
	h.step(150)
	for i := 0; i < 3; i++ {
		h.step(150)
	}
	prio := h.step(60) // crash down
	if prio[0] {
		t.Error("fast power fall did not clear priority")
	}
}

func TestDeadZoneKeepsPriority(t *testing.T) {
	// After a rise, flat power must keep the unit high priority until the
	// power actually falls (Algorithm 2's design rationale).
	h := newHarness(t, DefaultConfig(), 1)
	h.step(60)
	h.step(60)
	h.step(150)
	for i := 0; i < 10; i++ {
		prio := h.step(150)
		if !prio[0] {
			t.Fatalf("priority dropped at flat step %d despite no power fall", i)
		}
	}
}

func TestMinSamplesGate(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 1)
	if prio := h.step(160); prio[0] {
		t.Error("unit classified with one history sample")
	}
}

func TestHighFrequencyDetectionAndStickiness(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, cfg, 1)
	// Oscillate fast: one 90 W peak every 4 samples.
	for cycle := 0; cycle < 5; cycle++ {
		h.step(60)
		h.step(150)
		h.step(150)
		h.step(60)
	}
	if !h.m.HighFrequency()[0] {
		t.Fatal("oscillating unit not flagged high-frequency")
	}
	if !h.m.Priorities()[0] {
		t.Fatal("high-frequency unit not high priority")
	}
	// One quiet sample must not clear the flag: the history still holds
	// peaks and a big stddev.
	h.step(60)
	if !h.m.HighFrequency()[0] {
		t.Error("high-frequency flag cleared after a single quiet sample")
	}
	// A long quiet stretch empties the history of peaks and shrinks the
	// stddev; the flag must clear.
	for i := 0; i < 25; i++ {
		h.step(60)
	}
	if h.m.HighFrequency()[0] {
		t.Error("high-frequency flag stuck after the history went quiet")
	}
}

func TestStdDevGuardsFlagClearing(t *testing.T) {
	// A history that swings violently without countable peaks (e.g. a slow
	// giant square wave) keeps the flag through the stddev check.
	cfg := DefaultConfig()
	h := newHarness(t, cfg, 1)
	for cycle := 0; cycle < 5; cycle++ {
		h.step(60)
		h.step(150)
		h.step(150)
		h.step(60)
	}
	if !h.m.HighFrequency()[0] {
		t.Fatal("setup failed: unit not high-frequency")
	}
	// Half a slow square wave: few peaks, but stddev stays huge.
	for i := 0; i < 10; i++ {
		h.step(150)
	}
	for i := 0; i < 8; i++ {
		h.step(60)
	}
	if !h.m.HighFrequency()[0] {
		t.Error("flag cleared while history stddev is still large")
	}
}

func TestDisableFrequency(t *testing.T) {
	cfg := DefaultConfig()
	h := newHarness(t, cfg, 1)
	h.m.DisableFrequency = true
	for cycle := 0; cycle < 6; cycle++ {
		h.step(60)
		h.step(150)
		h.step(150)
		h.step(60)
	}
	if h.m.HighFrequency()[0] {
		t.Error("frequency detection ran despite DisableFrequency")
	}
}

func TestAtCapSetsHighPriority(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 1)
	h.caps[0] = 80
	// Flat at the cap: no derivative signal at all, only throttling.
	for i := 0; i < 5; i++ {
		h.step(79)
	}
	if !h.m.Priorities()[0] {
		t.Error("unit pinned at its cap not high priority")
	}
}

func TestAtCapDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AtCapFraction = 0
	h := newHarness(t, cfg, 1)
	h.caps[0] = 80
	for i := 0; i < 5; i++ {
		h.step(79)
	}
	if h.m.Priorities()[0] {
		t.Error("at-cap check ran despite AtCapFraction = 0")
	}
}

func TestIdleReversion(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 1)
	// Ramp up to become high priority...
	h.step(60)
	h.step(60)
	h.step(150)
	if !h.m.Priorities()[0] {
		t.Fatal("setup failed: rise not detected")
	}
	// ...then drift down slowly (each step's windowed derivative stays
	// above the −5 W/s dead-zone edge) into true idle. Without idle
	// reversion the dead zone would preserve the flag forever.
	for _, p := range []power.Watts{145, 140, 135, 130, 125, 120} {
		h.step(p)
	}
	for i := 0; i < 6; i++ {
		h.step(40) // idle: below half the constant cap, far below cap 165
	}
	if h.m.Priorities()[0] {
		t.Error("idle unit kept high priority despite idle reversion")
	}
}

func TestIdleReversionDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleRevertFraction = 0
	h := newHarness(t, cfg, 1)
	h.step(60)
	h.step(60)
	h.step(150)
	// Freeze the history flat at a low level long enough that only the
	// dead zone applies.
	for i := 0; i < 25; i++ {
		h.step(40)
	}
	// The −110 W fall was a clear dec signal on the way down, so priority
	// correctly drops regardless; reconstruct the ambiguous case instead:
	h.m.Reset()
	h.hist.Unit(0).Reset()
	h.step(60)
	h.step(60)
	h.step(150)
	for _, p := range []power.Watts{145, 140, 135, 130, 125, 120, 115, 110, 105, 100, 95, 90, 85, 80, 75, 70, 65, 60, 55, 50, 45, 40} {
		h.step(p)
	}
	for i := 0; i < 5; i++ {
		if !h.step(40)[0] {
			t.Fatal("dead zone cleared priority with IdleRevertFraction = 0")
		}
	}
}

func TestUnitsAreIndependent(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 3)
	// Drive unit 2 up; units 0 and 1 stay quiet.
	for _, p := range []power.Watts{60, 60, 150} {
		h.hist.Push(2, p, 1)
		h.pow[2] = p
		h.hist.Push(0, 60, 1)
		h.hist.Push(1, 60, 1)
		h.m.Update(h.hist, h.pow, h.caps, constantCap)
	}
	prio := h.m.Priorities()
	if prio[0] || prio[1] || !prio[2] {
		t.Errorf("priorities = %v, want only unit 2 high", prio)
	}
}

func TestReset(t *testing.T) {
	h := newHarness(t, DefaultConfig(), 1)
	h.step(60)
	h.step(60)
	h.step(150)
	h.m.Reset()
	if h.m.Priorities()[0] || h.m.HighFrequency()[0] {
		t.Error("flags survived Reset")
	}
}

func TestUpdatePanicsOnSizeMismatch(t *testing.T) {
	m, err := New(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Update with wrong-sized history did not panic")
		}
	}()
	m.Update(history.NewSet(3, 20), power.NewVector(3, 0), power.NewVector(3, 165), constantCap)
}

// TestUpdateUnitMatchesUpdate drives two identical modules over the same
// histories — one through the batch Update, one through per-unit
// UpdateUnit calls split across two ranges, as two shards would issue
// them — and requires identical flags. This is the contract the sharded
// controller's priority stage depends on.
func TestUpdateUnitMatchesUpdate(t *testing.T) {
	const units = 12
	batch, err := New(DefaultConfig(), units)
	if err != nil {
		t.Fatal(err)
	}
	perUnit, err := New(DefaultConfig(), units)
	if err != nil {
		t.Fatal(err)
	}
	hist := history.NewSet(units, 20)
	pow := power.NewVector(units, 0)
	caps := power.NewVector(units, 120)

	// Distinct dynamics per unit: flippers, ramps, idlers, at-cap.
	for step := 0; step < 60; step++ {
		for u := 0; u < units; u++ {
			var p power.Watts
			switch u % 4 {
			case 0:
				if (step/3+u)%2 == 0 {
					p = 150
				} else {
					p = 20
				}
			case 1:
				p = power.Watts(20 + step*2 + u)
			case 2:
				p = 8
			default:
				p = 119 // pinned at cap
			}
			hist.Push(power.UnitID(u), p, 1)
			pow[u] = p
		}
		want := batch.Update(hist, pow, caps, constantCap)

		for u := 0; u < units; u++ {
			perUnit.UpdateUnit(power.UnitID(u), hist.Unit(power.UnitID(u)), pow[u], caps[u], constantCap)
		}
		got := perUnit.Priorities()
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("step %d unit %d: UpdateUnit %v != Update %v", step, u, got[u], want[u])
			}
		}
		for u, hf := range batch.HighFrequency() {
			if perUnit.HighFrequency()[u] != hf {
				t.Fatalf("step %d unit %d: highFreq mismatch", step, u)
			}
		}
	}
}
