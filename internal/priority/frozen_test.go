package priority

import (
	"math/rand"
	"testing"

	"dps/internal/history"
	"dps/internal/power"
)

// TestUpdateUnitFrozenMatchesUpdateUnit is the property the sparse
// decision path rests on: for any ring state, Freeze followed by
// UpdateUnitFrozen must produce exactly the priority and high-frequency
// transitions UpdateUnit produces from the live ring — across random
// live inputs (pNow, capNow) and random sticky-flag starting states.
// (The sparse path only calls this for settled rings, but the
// equivalence holds for any ring since both read the same statistics.)
func TestUpdateUnitFrozenMatchesUpdateUnit(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 3000; iter++ {
		ring := history.NewRing(2 + rng.Intn(20))
		ring.SetTailWindow(cfg.DerivWindow - 1)
		fill := rng.Intn(3 * ring.Cap())
		mode := rng.Intn(4)
		base := power.Watts(rng.Float64() * 150)
		for i := 0; i < fill; i++ {
			var p power.Watts
			switch mode {
			case 0: // constant (the settled shape)
				p = base
			case 1: // noisy
				p = base + power.Watts(rng.NormFloat64()*5)
			case 2: // flipper
				if i%4 < 2 {
					p = base + 60
				} else {
					p = base
				}
			default: // ramp
				p = base + power.Watts(i)
			}
			ring.Push(p, 1)
		}

		live, _ := New(cfg, 1)
		frozenM, _ := New(cfg, 1)
		// Random sticky starting state, identical in both modules.
		hf, pr := rng.Intn(2) == 1, rng.Intn(2) == 1
		live.highFreq[0], live.prio[0] = hf, pr
		frozenM.highFreq[0], frozenM.prio[0] = hf, pr

		fs := frozenM.Freeze(ring)
		for step := 0; step < 5; step++ {
			pNow := power.Watts(rng.Float64() * 200)
			capNow := power.Watts(10 + rng.Float64()*150)
			constantCap := power.Watts(110)
			live.UpdateUnit(0, ring, pNow, capNow, constantCap)
			frozenM.UpdateUnitFrozen(0, fs, pNow, capNow, constantCap)
			if live.prio[0] != frozenM.prio[0] || live.highFreq[0] != frozenM.highFreq[0] {
				t.Fatalf("iter %d step %d (mode=%d fill=%d): live prio=%v hf=%v, frozen prio=%v hf=%v",
					iter, step, mode, fill, live.prio[0], live.highFreq[0], frozenM.prio[0], frozenM.highFreq[0])
			}
		}
	}
}

// TestFreezeDisableFrequency: with the frequency detector ablated,
// Freeze must not run the peak scan and UpdateUnitFrozen must still
// mirror UpdateUnit.
func TestFreezeDisableFrequency(t *testing.T) {
	cfg := DefaultConfig()
	ring := history.NewRing(8)
	ring.SetTailWindow(cfg.DerivWindow - 1)
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			ring.Push(150, 1)
		} else {
			ring.Push(20, 1)
		}
	}
	live, _ := New(cfg, 1)
	live.DisableFrequency = true
	froz, _ := New(cfg, 1)
	froz.DisableFrequency = true
	fs := froz.Freeze(ring)
	if fs.HighFreqNow {
		t.Fatal("ablated Freeze ran the frequency detector")
	}
	live.UpdateUnit(0, ring, 80, 110, 110)
	froz.UpdateUnitFrozen(0, fs, 80, 110, 110)
	if live.prio[0] != froz.prio[0] {
		t.Fatalf("ablated: live %v vs frozen %v", live.prio[0], froz.prio[0])
	}
}
