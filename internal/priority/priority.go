// Package priority implements the paper's Algorithm 2: classifying every
// power-capping unit as high or low priority from its recent *power
// dynamics* — the frequency of its power changes and the first derivative
// of its power.
//
// Frequency first: a unit whose estimated power history shows more than
// PeakCountThreshold prominent peaks is flagged high-frequency and pinned
// to high priority, because the manager cannot react faster than such a
// unit's phases and must instead guarantee it headroom (this is the
// mechanism behind the constant-allocation lower bound). The flag is
// sticky: it clears only when both the peak count AND the standard
// deviation of the history fall below their thresholds — the extra stddev
// check catches histories that oscillate violently without producing
// countable peaks.
//
// Unpinned units are classified by the windowed average derivative of their
// power: a fast rise marks the unit high priority (it needs power now or
// soon), a fast fall marks it low priority (its tasks are draining), and
// anything in between leaves the previous priority untouched — a unit that
// ramped up stays high priority until its power actually comes back down.
//
// Two mechanisms realize the paper's "(1) need power now" case directly
// (§4.4; see DESIGN.md): a unit pinned at its cap (power within
// AtCapFraction of the cap) is high priority regardless of its derivative
// — throttling is the unambiguous need-power-now signal, and the
// derivative alone cannot see it because a capped unit's power is flat at
// its cap. Conversely, a unit that is unthrottled, flat, and drawing
// almost nothing (below IdleRevertFraction of the constant cap) reverts to
// low priority, so a noise-induced high flag cannot stick to an idle unit
// forever.
package priority

import (
	"fmt"
	"math"

	"dps/internal/history"
	"dps/internal/power"
	"dps/internal/signal"
)

// Config holds Algorithm 2's thresholds.
type Config struct {
	// DerivIncThreshold (W/s): a windowed derivative above this marks the
	// unit high priority.
	DerivIncThreshold power.Watts
	// DerivDecThreshold (W/s, negative): a windowed derivative below this
	// marks the unit low priority.
	DerivDecThreshold power.Watts
	// StdThreshold (W): the history's standard deviation must fall below
	// this (in addition to the peak count) to clear a high-frequency flag.
	StdThreshold power.Watts
	// PeakProminence (W): minimum prominence for a local maximum to count
	// as a peak.
	PeakProminence power.Watts
	// PeakCountThreshold: more prominent peaks than this in the history
	// flags the unit high-frequency.
	PeakCountThreshold int
	// DerivWindow (direv_length): number of history samples spanned by the
	// derivative estimate.
	DerivWindow int
	// MinSamples: units with fewer history samples keep their current
	// priority; the paper notes DPS needs at most one history length
	// (default 20 s) to start making desired decisions.
	MinSamples int
	// AtCapFraction: a unit whose measured power is at least this fraction
	// of its cap is throttled and therefore high priority ("needs power
	// now"). Zero disables the check (ablation).
	AtCapFraction float64
	// IdleRevertFraction: a unit that is not high-frequency, not at its
	// cap, has a dead-zone derivative, and draws less than this fraction
	// of the constant cap reverts to low priority. Zero disables the check.
	IdleRevertFraction float64
}

// DefaultConfig matches the reproduction's one-second loop and 20-sample
// history: a filtered phase ramp of 5 W/s is decisive (a capped unit's
// visible rise is only the gap between its cap and its previous power, ~25 %
// of the cap, further smoothed by the Kalman filter — thresholds must sit
// well below that but well above the ~1 W/s filtered noise floor), and
// three or more 20 W peaks in 20 s mean the unit flips faster than the
// manager can follow.
func DefaultConfig() Config {
	return Config{
		DerivIncThreshold:  5,
		DerivDecThreshold:  -5,
		StdThreshold:       15,
		PeakProminence:     20,
		PeakCountThreshold: 2,
		DerivWindow:        3,
		MinSamples:         3,
		AtCapFraction:      0.95,
		IdleRevertFraction: 0.5,
	}
}

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.DerivIncThreshold <= 0:
		return fmt.Errorf("priority: DerivIncThreshold %v must be positive", c.DerivIncThreshold)
	case c.DerivDecThreshold >= 0:
		return fmt.Errorf("priority: DerivDecThreshold %v must be negative", c.DerivDecThreshold)
	case c.StdThreshold < 0:
		return fmt.Errorf("priority: negative StdThreshold %v", c.StdThreshold)
	case c.PeakProminence <= 0:
		return fmt.Errorf("priority: PeakProminence %v must be positive", c.PeakProminence)
	case c.PeakCountThreshold < 1:
		return fmt.Errorf("priority: PeakCountThreshold %d must be at least 1", c.PeakCountThreshold)
	case c.DerivWindow < 2:
		return fmt.Errorf("priority: DerivWindow %d must be at least 2", c.DerivWindow)
	case c.MinSamples < 2:
		return fmt.Errorf("priority: MinSamples %d must be at least 2", c.MinSamples)
	case c.AtCapFraction < 0 || c.AtCapFraction > 1:
		return fmt.Errorf("priority: AtCapFraction %v outside [0,1]", c.AtCapFraction)
	case c.IdleRevertFraction < 0 || c.IdleRevertFraction > 1:
		return fmt.Errorf("priority: IdleRevertFraction %v outside [0,1]", c.IdleRevertFraction)
	}
	return nil
}

// Module tracks per-unit priorities across decision steps.
//
// Classification reads each unit's statistics straight off its history
// ring — peak scan over the ring's storage segments, O(1) incremental
// stddev and windowed derivative — so a steady-state update copies
// nothing and allocates nothing. Classification of *distinct* units is
// safe from concurrent goroutines: the sticky per-unit flags live at
// distinct slice indices, and the module keeps no shared scratch state.
type Module struct {
	cfg      Config
	highFreq []bool
	prio     []bool
	// DisableFrequency skips the peak/stddev classification entirely (an
	// ablation knob: priorities then come from the derivative alone).
	DisableFrequency bool
}

// New returns a module for n units; all units start low priority.
func New(cfg Config, n int) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("priority: non-positive unit count %d", n)
	}
	return &Module{
		cfg:      cfg,
		highFreq: make([]bool, n),
		prio:     make([]bool, n),
	}, nil
}

// Config returns the module's configuration.
func (m *Module) Config() Config { return m.cfg }

// Priorities returns the current priority flags (true = high priority).
// The returned slice is owned by the module; callers must not mutate it.
func (m *Module) Priorities() []bool { return m.prio }

// HighFrequency returns the current high-frequency flags. The returned
// slice is owned by the module; callers must not mutate it.
func (m *Module) HighFrequency() []bool { return m.highFreq }

// Update reclassifies every unit and returns the updated priority flags
// (true = high priority). hist holds the estimated power histories;
// powerNow and caps are the current measured power and programmed cap per
// unit (for the at-cap and idle-reversion checks); constantCap is the
// even-split cap. The returned slice is owned by the module.
func (m *Module) Update(hist *history.Set, powerNow, caps power.Vector, constantCap power.Watts) []bool {
	if hist.Len() != len(m.prio) {
		panic(fmt.Sprintf("priority: history for %d units, module for %d", hist.Len(), len(m.prio)))
	}
	if len(powerNow) != len(m.prio) || len(caps) != len(m.prio) {
		panic(fmt.Sprintf("priority: %d readings / %d caps for %d units", len(powerNow), len(caps), len(m.prio)))
	}
	for u := 0; u < hist.Len(); u++ {
		m.UpdateUnit(power.UnitID(u), hist.Unit(power.UnitID(u)), powerNow[u], caps[u], constantCap)
	}
	return m.prio
}

// UpdateUnit reclassifies one unit: the per-unit half of Update, exposed
// so a sharded controller can classify disjoint unit ranges concurrently.
// The cross-unit contract (every unit classified exactly once per round,
// against the same caps vector) is the caller's responsibility. The call
// is copy-free and allocation-free: the peak scan runs over the ring's
// storage segments and stddev/derivative read the ring's O(1) running
// aggregates.
func (m *Module) UpdateUnit(u power.UnitID, ring *history.Ring, pNow, capNow, constantCap power.Watts) {
	if ring.Len() < m.cfg.MinSamples {
		return // not enough dynamics yet; keep the current priority
	}

	if !m.DisableFrequency {
		// O(1) screen before the O(history) peak scan: any peak's
		// prominence is bounded by the series range R, and population
		// variance obeys σ² ≥ R²/(2n) (the two extremes alone contribute
		// R²/2 to n·σ²), so R ≤ σ√(2n). When σ√(2n) falls below the
		// prominence threshold the scan provably counts zero peaks — the
		// common case for every quiet, converged unit in a large cluster.
		// The 1e-6 W slack keeps the documented incremental-stddev drift
		// (DESIGN.md §8) from ever flipping the screen on the boundary.
		n := float64(ring.Len())
		highFreqNow := false
		if float64(ring.StdDev())*math.Sqrt(2*n) >= float64(m.cfg.PeakProminence)-1e-6 {
			pa, pb := ring.Segments()
			highFreqNow = signal.MoreProminentPeaksThan(pa, pb, m.cfg.PeakProminence, m.cfg.PeakCountThreshold)
		}
		if !m.highFreq[u] {
			if highFreqNow {
				m.highFreq[u] = true
				m.prio[u] = true
				return
			}
		} else {
			if !highFreqNow && ring.StdDev() < m.cfg.StdThreshold {
				m.highFreq[u] = false
				m.prio[u] = false
				// Fall through to the derivative check: the unit just
				// settled, and its slope decides its fresh priority.
			} else {
				m.prio[u] = true
				return
			}
		}
	}

	// Need-power-now: a unit pinned at its cap is throttled; its flat
	// power hides its true demand, so the derivative below would miss it.
	atCap := m.cfg.AtCapFraction > 0 && capNow > 0 && pNow >= capNow*power.Watts(m.cfg.AtCapFraction)
	if atCap {
		m.prio[u] = true
		return
	}

	// Derivative classification for low-frequency, unthrottled units,
	// fed by the ring's maintained tail-duration aggregate.
	d := ring.WindowedDerivative(m.cfg.DerivWindow)
	switch {
	case d > m.cfg.DerivIncThreshold:
		m.prio[u] = true
	case d < m.cfg.DerivDecThreshold:
		m.prio[u] = false
	default:
		// Dead zone: priority unchanged, per Algorithm 2 — after a power
		// rise the unit stays high priority until its power falls again.
		// Exception: an unthrottled unit drawing almost nothing is idle,
		// not anticipating; revert it so noise-induced flags cannot stick.
		if m.cfg.IdleRevertFraction > 0 && pNow < constantCap*power.Watts(m.cfg.IdleRevertFraction) {
			m.prio[u] = false
		}
	}
}

// FrozenStats caches the ring-derived inputs of one unit's
// classification, captured while the unit's history is settled (the ring
// bitwise-fixed under its per-round push). While that holds, UpdateUnit's
// ring reads return these exact values every round, so classification
// can run from the cache without touching the ring at all — the point at
// cluster scale, where the ring set is tens of megabytes and the frozen
// stats stream through cache. The cache holds only ring-derived values;
// live inputs (current power, current cap) stay parameters.
type FrozenStats struct {
	// N is ring.Len() at capture (the MinSamples gate input).
	N int
	// Std is ring.StdDev() at capture.
	Std power.Watts
	// Deriv is ring.WindowedDerivative(DerivWindow) at capture.
	Deriv power.Watts
	// HighFreqNow is the frequency detector's verdict at capture: the
	// stddev screen combined with the prominent-peak scan.
	HighFreqNow bool
}

// Freeze captures FrozenStats for a settled ring, evaluating the same
// screen and peak scan as UpdateUnit so a later UpdateUnitFrozen call
// reproduces UpdateUnit's decisions bit for bit.
func (m *Module) Freeze(ring *history.Ring) FrozenStats {
	fs := FrozenStats{
		N:     ring.Len(),
		Std:   ring.StdDev(),
		Deriv: ring.WindowedDerivative(m.cfg.DerivWindow),
	}
	if !m.DisableFrequency {
		n := float64(ring.Len())
		if float64(ring.StdDev())*math.Sqrt(2*n) >= float64(m.cfg.PeakProminence)-1e-6 {
			pa, pb := ring.Segments()
			fs.HighFreqNow = signal.MoreProminentPeaksThan(pa, pb, m.cfg.PeakProminence, m.cfg.PeakCountThreshold)
		}
	}
	return fs
}

// UpdateUnitFrozen is UpdateUnit with the ring reads replaced by a
// FrozenStats capture; branch for branch identical, so for a settled
// ring it produces exactly the priority/high-frequency transitions the
// dense path would. pNow and capNow are live — the at-cap and
// idle-reversion checks must see this round's values even when the
// history is frozen.
func (m *Module) UpdateUnitFrozen(u power.UnitID, fs FrozenStats, pNow, capNow, constantCap power.Watts) {
	if fs.N < m.cfg.MinSamples {
		return
	}

	if !m.DisableFrequency {
		highFreqNow := fs.HighFreqNow
		if !m.highFreq[u] {
			if highFreqNow {
				m.highFreq[u] = true
				m.prio[u] = true
				return
			}
		} else {
			if !highFreqNow && fs.Std < m.cfg.StdThreshold {
				m.highFreq[u] = false
				m.prio[u] = false
			} else {
				m.prio[u] = true
				return
			}
		}
	}

	atCap := m.cfg.AtCapFraction > 0 && capNow > 0 && pNow >= capNow*power.Watts(m.cfg.AtCapFraction)
	if atCap {
		m.prio[u] = true
		return
	}

	d := fs.Deriv
	switch {
	case d > m.cfg.DerivIncThreshold:
		m.prio[u] = true
	case d < m.cfg.DerivDecThreshold:
		m.prio[u] = false
	default:
		if m.cfg.IdleRevertFraction > 0 && pNow < constantCap*power.Watts(m.cfg.IdleRevertFraction) {
			m.prio[u] = false
		}
	}
}

// ExportState copies the module's sticky per-unit flags into the given
// slices, which must have the module's length. The flags are the
// module's entire cross-round state (the config is construction input).
func (m *Module) ExportState(highFreq, prio []bool) {
	if len(highFreq) != len(m.highFreq) || len(prio) != len(m.prio) {
		panic(fmt.Sprintf("priority: export buffers %d/%d for %d units", len(highFreq), len(prio), len(m.prio)))
	}
	copy(highFreq, m.highFreq)
	copy(prio, m.prio)
}

// ImportState overwrites the module's sticky flags. Future Update calls
// behave exactly as if this module had classified the exporting module's
// input history.
func (m *Module) ImportState(highFreq, prio []bool) error {
	if len(highFreq) != len(m.highFreq) || len(prio) != len(m.prio) {
		return fmt.Errorf("priority: state for %d/%d units, module for %d", len(highFreq), len(prio), len(m.prio))
	}
	copy(m.highFreq, highFreq)
	copy(m.prio, prio)
	return nil
}

// Reset clears all flags to the initial (low priority, low frequency)
// state.
func (m *Module) Reset() {
	for i := range m.prio {
		m.prio[i] = false
		m.highFreq[i] = false
	}
}
