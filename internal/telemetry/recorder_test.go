package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestFlightRecorderEviction(t *testing.T) {
	fr := NewFlightRecorder(3)
	for round := uint64(1); round <= 5; round++ {
		fr.Append(RoundRecord{Round: round})
	}
	if fr.Len() != 3 {
		t.Fatalf("len = %d, want 3", fr.Len())
	}
	if fr.Total() != 5 {
		t.Fatalf("total = %d, want 5", fr.Total())
	}
	recs := fr.Last(0)
	got := make([]uint64, len(recs))
	for i, r := range recs {
		got[i] = r.Round
	}
	// Newest first; rounds 1 and 2 were evicted.
	want := []uint64{5, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rounds = %v, want %v", got, want)
		}
	}
}

func TestFlightRecorderLastN(t *testing.T) {
	fr := NewFlightRecorder(4)
	if recs := fr.Last(2); recs != nil {
		t.Errorf("empty recorder returned %v", recs)
	}
	fr.Append(RoundRecord{Round: 1})
	fr.Append(RoundRecord{Round: 2})
	recs := fr.Last(1)
	if len(recs) != 1 || recs[0].Round != 2 {
		t.Errorf("Last(1) = %+v", recs)
	}
	if recs := fr.Last(10); len(recs) != 2 {
		t.Errorf("Last(10) returned %d records", len(recs))
	}
}

func TestFlightRecorderHandler(t *testing.T) {
	fr := NewFlightRecorder(8)
	for round := uint64(1); round <= 6; round++ {
		fr.Append(RoundRecord{Round: round, Units: []UnitRecord{{Unit: 0, CapW: 110}}})
	}

	rec := httptest.NewRecorder()
	fr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=2", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	var got []RoundRecord
	if err := json.NewDecoder(rec.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Round != 6 || got[1].Round != 5 {
		t.Errorf("records = %+v", got)
	}
	if len(got[0].Units) != 1 || got[0].Units[0].CapW != 110 {
		t.Errorf("unit record = %+v", got[0].Units)
	}

	rec = httptest.NewRecorder()
	fr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: code = %d", rec.Code)
	}

	// The last= spelling of the trace endpoint is accepted as an alias.
	rec = httptest.NewRecorder()
	fr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?last=2", nil))
	if rec.Code != 200 {
		t.Fatalf("?last=2: code = %d", rec.Code)
	}
	got = nil
	if err := json.NewDecoder(rec.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Round != 6 {
		t.Errorf("?last=2 records = %+v", got)
	}

	// Supplying both spellings is ambiguous, not silently resolved.
	rec = httptest.NewRecorder()
	fr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=2&last=3", nil))
	if rec.Code != 400 {
		t.Errorf("n+last: code = %d, want 400", rec.Code)
	}

	// Empty recorder serves [] rather than null.
	empty := NewFlightRecorder(2)
	rec = httptest.NewRecorder()
	empty.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds", nil))
	if body := rec.Body.String(); body != "[]\n" {
		t.Errorf("empty body = %q", body)
	}
}
