package telemetry

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("demo_total", "A demo counter.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("demo_gauge", "A demo gauge.", Label{"unit", "0"})
	g.Set(1.5)
	g.Add(-0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "# HELP demo_gauge A demo gauge.\n" +
		"# TYPE demo_gauge gauge\n" +
		"demo_gauge{unit=\"0\"} 1\n" +
		"# HELP demo_total A demo counter.\n" +
		"# TYPE demo_total counter\n" +
		"demo_total 3\n"
	if out != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", out, want)
	}
}

func TestRegistryLookupReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Error("same name+labels gave distinct counters")
	}
	g1 := r.Gauge("y", "y", Label{"unit", "1"})
	g2 := r.Gauge("y", "y", Label{"unit", "2"})
	if g1 == g2 {
		t.Error("distinct labels gave the same gauge")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}, Label{"stage", "kalman"})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Errorf("sum = %v", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{stage="kalman",le="0.1"} 1`,
		`lat_seconds_bucket{stage="kalman",le="1"} 3`,
		`lat_seconds_bucket{stage="kalman",le="10"} 4`,
		`lat_seconds_bucket{stage="kalman",le="+Inf"} 5`,
		`lat_seconds_sum{stage="kalman"} 56.05`,
		`lat_seconds_count{stage="kalman"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b_seconds", "b", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive, Prometheus semantics
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `b_seconds_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in inclusive bucket:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("esc", "esc", Label{"p", `a"b\c`}).Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc{p="a\"b\\c"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	h := r.Histogram("h_seconds", "h", nil)
	g := r.Gauge("g", "g")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(1e-4)
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d", h.Count())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "ok").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("code = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ok_total 1") {
		t.Errorf("body = %q", rec.Body.String())
	}
}

// TestScrapeWhileObservingAndRegistering races continuous scrapes against
// hot-path observations and — the path the snapshot restructure protects —
// first registrations of new series arriving mid-scrape. Run under -race
// (make ci does), any snapshot/registration interleaving bug fails it; the
// final exposition must carry every family touched.
func TestScrapeWhileObservingAndRegistering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "races")
	stop := make(chan struct{})
	ready := make(chan struct{}, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // hot path: observe relentlessly
		defer wg.Done()
		h := r.Histogram("race_seconds", "races", nil)
		for i := 0; ; i++ {
			c.Inc()
			h.Observe(1e-4)
			if i == 0 {
				ready <- struct{}{}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	go func() { // first registrations keep landing while scrapes render
		defer wg.Done()
		for i := 0; ; i++ {
			r.Gauge("race_gauge", "races", Label{"unit", strconv.Itoa(i % 512)}).Set(float64(i))
			if i == 0 {
				ready <- struct{}{}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	<-ready
	<-ready
	for i := 0; i < 100; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"race_total ", "race_seconds_count ", `race_gauge{unit="0"}`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("final exposition missing %q", want)
		}
	}
}
