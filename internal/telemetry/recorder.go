package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dps/internal/trace"
)

// StageSeconds is the wall time one decision round spent in each pipeline
// stage of the paper's Figure 3 (zero for managers without that stage).
type StageSeconds struct {
	Kalman    float64 `json:"kalman_s"`
	Stateless float64 `json:"stateless_s"`
	Priority  float64 `json:"priority_s"`
	Readjust  float64 `json:"readjust_s"`
	Total     float64 `json:"total_s"`
}

// UnitRecord is one unit's view of a decision round: what it reported,
// what it was assigned, and how the assignment moved.
type UnitRecord struct {
	Unit         int     `json:"unit"`
	ReadingW     float64 `json:"reading_w"`
	CapW         float64 `json:"cap_w"`
	CapDeltaW    float64 `json:"cap_delta_w"`
	HighPriority bool    `json:"high_priority,omitempty"`
	// Health is the unit's degraded state ("stale" or "dead"); empty for a
	// fresh unit or when health tracking is disabled.
	Health string `json:"health,omitempty"`
	// Reason names the module that last changed this unit's cap in the
	// round ("mimd_cut", "readjust_grant", "degraded_deliver", ...); empty
	// when the cap did not move or the manager records no provenance.
	Reason string `json:"reason,omitempty"`
}

// RoundRecord is one entry of the decision flight recorder: everything
// needed to answer "why did unit U get capped at C in round R" after the
// fact.
type RoundRecord struct {
	Round           uint64       `json:"round"`
	Time            time.Time    `json:"time"`
	IntervalS       float64      `json:"interval_s"`
	Stages          StageSeconds `json:"stage_seconds"`
	Restored        bool         `json:"restored,omitempty"`
	PriorityFlips   int          `json:"priority_flips,omitempty"`
	BudgetExhausted bool         `json:"budget_exhausted,omitempty"`
	BudgetClamped   bool         `json:"budget_clamped,omitempty"`
	StaleUnits      int          `json:"stale_units,omitempty"`
	DeadUnits       int          `json:"dead_units,omitempty"`
	// Sparse-round work counters: how many units the round's snapshot
	// marked changed and how many units the controller skipped under the
	// settled-unit contract. Zero (omitted) on dense controllers.
	DirtyUnits   int `json:"dirty_units,omitempty"`
	SkippedUnits int `json:"skipped_units,omitempty"`
	// UptimeRounds/StateAgeRounds split the round counter across process
	// generations: uptime is rounds this process decided, state age counts
	// rounds inherited through a snapshot restore or standby takeover too.
	// Omitted (equal to Round) on processes that never inherited state.
	UptimeRounds   uint64       `json:"uptime_rounds,omitempty"`
	StateAgeRounds uint64       `json:"state_age_rounds,omitempty"`
	BudgetW        float64      `json:"budget_w"`
	CapSumW        float64      `json:"cap_sum_w"`
	Units          []UnitRecord `json:"units"`
}

// FlightRecorder is a fixed-size ring buffer of decision records. Appends
// never allocate once the ring is full; the oldest record is evicted. It
// is safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []RoundRecord
	next  int    // index the next Append writes
	total uint64 // lifetime appends
}

// DefaultFlightRecorderSize keeps ~4 minutes of history at a one-second
// decision loop.
const DefaultFlightRecorderSize = 256

// NewFlightRecorder returns a recorder holding the last `capacity` rounds
// (DefaultFlightRecorderSize if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderSize
	}
	return &FlightRecorder{buf: make([]RoundRecord, 0, capacity)}
}

// Append records one round, evicting the oldest when full.
func (r *FlightRecorder) Append(rec RoundRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Len returns the number of records currently held.
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the lifetime number of appends (>= Len once evicting).
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Last returns up to n records, newest first. n <= 0 means all held.
func (r *FlightRecorder) Last(n int) []RoundRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := len(r.buf)
	if held == 0 {
		return nil
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]RoundRecord, 0, n)
	for i := 0; i < n; i++ {
		// next-1 is the newest; walk backwards through the ring.
		idx := (r.next - 1 - i + held) % held
		out = append(out, r.buf[idx])
	}
	return out
}

// Handler serves the recorder as JSON for mounting at GET /debug/rounds.
// The optional query parameter n (canonical; last is an accepted alias)
// limits the response to the newest n records (default 16); the optional
// unit parameter narrows each record's Units to that one unit, so a
// single unit's history can be pulled without shipping every other
// unit's rows to the client.
func (r *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n, ok := trace.CountParam(w, req, 16)
		if !ok {
			return
		}
		unit := -1
		if q := req.URL.Query().Get("unit"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "unit must be a non-negative integer", http.StatusBadRequest)
				return
			}
			unit = v
		}
		recs := r.Last(n)
		if unit >= 0 {
			// Re-slicing the returned records' Units headers never writes
			// the ring's backing arrays.
			for i := range recs {
				if unit < len(recs[i].Units) {
					recs[i].Units = recs[i].Units[unit : unit+1]
				} else {
					recs[i].Units = nil
				}
			}
		}
		if recs == nil {
			recs = []RoundRecord{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(recs); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
