package series

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dps/internal/telemetry"
)

func at(s int) time.Time { return time.Unix(1700000000+int64(s), 0).UTC() }

func TestStorePushQueryAndRollup(t *testing.T) {
	st := NewStore(Config{RawSamples: 8, RollupEvery: 4, RollupSamples: 4})
	for i := 0; i < 12; i++ {
		st.Push("g", KindGauge, at(i), float64(i))
	}

	// Raw ring holds the newest 8 points.
	out, ok := st.Query("g", 0, at(12))
	if !ok {
		t.Fatal("unknown series")
	}
	if out.Resolution != "raw" || len(out.Points) != 8 {
		t.Fatalf("raw query: resolution %q, %d points", out.Resolution, len(out.Points))
	}
	if out.Points[0].V != 4 || out.Points[7].V != 11 {
		t.Fatalf("raw window = [%g..%g], want [4..11]", out.Points[0].V, out.Points[7].V)
	}

	// 12 pushes at RollupEvery=4 → 3 rollup means: mean(0..3)=1.5,
	// mean(4..7)=5.5, mean(8..11)=9.5. A window wider than the raw span
	// (8 × 1s) selects the rollup ring.
	out, ok = st.Query("g", time.Hour, at(12))
	if !ok || out.Resolution != "rollup" {
		t.Fatalf("wide query: ok=%v resolution %q", ok, out.Resolution)
	}
	want := []float64{1.5, 5.5, 9.5}
	if len(out.Points) != len(want) {
		t.Fatalf("rollup points = %d, want %d", len(out.Points), len(want))
	}
	for i, p := range out.Points {
		if p.V != want[i] {
			t.Errorf("rollup[%d] = %g, want %g", i, p.V, want[i])
		}
	}

	if p, ok := st.Latest("g"); !ok || p.V != 11 {
		t.Fatalf("Latest = %+v %v, want 11", p, ok)
	}
	// Trailing-4s window covers pushes at t=8..11.
	if mean, n := st.WindowMean("g", 3*time.Second, at(11)); n != 4 || mean != 9.5 {
		t.Fatalf("WindowMean = %g over %d, want 9.5 over 4", mean, n)
	}
	if _, ok := st.Query("missing", 0, at(0)); ok {
		t.Fatal("unknown series reported ok")
	}
}

func TestStoreMaxSeriesDropsAndCounts(t *testing.T) {
	st := NewStore(Config{MaxSeries: 2, RawSamples: 4})
	st.Push("a", KindGauge, at(0), 1)
	st.Push("b", KindGauge, at(0), 2)
	st.Push("c", KindGauge, at(0), 3) // over the cap: dropped
	st.Push("a", KindGauge, at(1), 4) // existing series still accepted
	if st.Len() != 2 || st.Dropped() != 1 {
		t.Fatalf("len=%d dropped=%d, want 2 and 1", st.Len(), st.Dropped())
	}
	if names := st.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSamplerCountersBecomeRates(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("reqs_total", "test")
	g := reg.Gauge("level", "test")
	sm := NewSampler(reg, NewStore(Config{}))

	g.Set(7)
	sm.SampleOnce(at(0)) // seeds the counter baseline, stores the gauge
	if _, ok := sm.Store().Latest("reqs_total"); ok {
		t.Fatal("counter rate stored on the seeding scrape")
	}
	if p, ok := sm.Store().Latest("level"); !ok || p.V != 7 {
		t.Fatalf("gauge = %+v %v, want 7", p, ok)
	}

	c.Add(10)
	sm.SampleOnce(at(2)) // 10 counts over 2 s → 5/s
	if p, ok := sm.Store().Latest("reqs_total"); !ok || p.V != 5 {
		t.Fatalf("rate = %+v %v, want 5", p, ok)
	}
}

func TestSamplerCounterResetYieldsZero(t *testing.T) {
	// Two registries with the same counter name simulate a scraped
	// component restarting: the value goes backwards.
	reg1 := telemetry.NewRegistry()
	reg1.Counter("reqs_total", "test").Add(100)
	store := NewStore(Config{})
	sm := NewSampler(reg1, store)
	sm.SampleOnce(at(0))

	reg2 := telemetry.NewRegistry()
	reg2.Counter("reqs_total", "test").Add(3)
	sm.reg = reg2
	sm.SampleOnce(at(1))
	if p, ok := store.Latest("reqs_total"); !ok || p.V != 0 {
		t.Fatalf("post-reset rate = %+v %v, want 0", p, ok)
	}
}

func TestSamplerHistogramDerivedSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat", "test", []float64{0.1, 0.2, 0.4})
	sm := NewSampler(reg, NewStore(Config{}))
	sm.SampleOnce(at(0))

	// 100 observations in (0.1, 0.2]: p99 interpolates inside that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.15)
	}
	sm.SampleOnce(at(2))

	if p, ok := sm.Store().Latest("lat:count"); !ok || p.V != 50 {
		t.Fatalf("count rate = %+v %v, want 50/s", p, ok)
	}
	if p, ok := sm.Store().Latest("lat:sum"); !ok || math.Abs(p.V-7.5) > 1e-9 {
		t.Fatalf("sum rate = %+v %v, want 7.5/s", p, ok)
	}
	p, ok := sm.Store().Latest("lat:p99")
	if !ok {
		t.Fatal("no p99 series")
	}
	// rank 99 of 100 all in [0.1,0.2] → 0.1 + 0.99*0.1 = 0.199.
	if math.Abs(p.V-0.199) > 1e-9 {
		t.Fatalf("p99 = %g, want 0.199", p.V)
	}

	// Observations beyond the last finite bound clamp p99 to it.
	for i := 0; i < 100; i++ {
		h.Observe(9)
	}
	sm.SampleOnce(at(4))
	if p, _ = sm.Store().Latest("lat:p99"); p.V != 0.4 {
		t.Fatalf("overflow p99 = %g, want clamp to 0.4", p.V)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	bounds := []float64{1, 2, 4}
	// counts: 10 in (0,1], 10 in (1,2], 0 in (2,4], 0 overflow.
	counts := []uint64{10, 10, 0, 0}
	if got := quantile(0.5, bounds, counts, 20); got != 1 {
		t.Errorf("p50 = %g, want 1 (rank exactly at the first bucket's end)", got)
	}
	if got := quantile(0.75, bounds, counts, 20); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %g, want 1.5", got)
	}
	if got := quantile(0.99, nil, nil, 0); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	st := NewStore(Config{RawSamples: 16})
	for i := 0; i < 5; i++ {
		st.Push("m", KindGauge, at(i), float64(i))
	}
	h := st.Handler(func() time.Time { return at(5) })

	// Index.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series", nil))
	if rec.Code != 200 {
		t.Fatalf("index = %d", rec.Code)
	}
	var idx struct {
		Series  []string `json:"series"`
		Dropped uint64   `json:"dropped"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Series) != 1 || idx.Series[0] != "m" {
		t.Fatalf("index = %+v", idx)
	}

	// One series with a window.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?name=m&last=2s", nil))
	var out Series
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 2 || out.Points[0].V != 3 {
		t.Fatalf("windowed query = %+v", out.Points)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?name=nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown series = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?name=m&last=banana", nil))
	if rec.Code != 400 {
		t.Fatalf("bad duration = %d, want 400", rec.Code)
	}
}

// TestSamplerScrapeRace drives SampleOnce against concurrent metric
// registration and observation — the live daemon's situation, where agent
// connections register unit gauges and observe histograms while the
// sampler goroutine scrapes. Run under -race this is the data-race gate
// for the Registry.Each snapshot path.
func TestSamplerScrapeRace(t *testing.T) {
	reg := telemetry.NewRegistry()
	sm := NewSampler(reg, NewStore(Config{}))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			lbl := telemetry.Label{Key: "unit", Value: string(rune('a' + i%8))}
			reg.Counter("race_total", "test", lbl).Inc()
			reg.Gauge("race_level", "test", lbl).Set(float64(i))
			reg.Histogram("race_lat", "test", nil, lbl).Observe(float64(i%10) / 1000)
			i++
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			sm.SampleOnce(at(i))
		}
		close(stop)
	}()
	wg.Wait()
}
