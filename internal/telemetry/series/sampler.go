package series

import (
	"context"
	"time"

	"dps/internal/telemetry"
)

// Sampler scrapes a telemetry.Registry into a Store. Gauges are stored as
// levels under their exposition key (name plus label signature). Counters
// are stored as per-second rates between consecutive scrapes, so a counter
// reset (process restart of a scraped component) yields a zero point, not
// a negative spike. Histograms become three derived series:
//
//	<key>:count  observation rate (1/s)
//	<key>:sum    sum rate (unit/s)
//	<key>:p99    p99 estimated from the bucket deltas of the last interval
//
// The p99 is a linear interpolation inside the bucket holding the 99th
// percentile of the interval's observations; observations landing in the
// +Inf bucket clamp the estimate to the highest finite bound (a reason for
// registrants to bracket their path's full range — see the bucket-choice
// rule in the telemetry package comment).
//
// A Sampler is not safe for concurrent SampleOnce calls with itself (Run
// serializes them); it is safe against concurrent registry writers.
type Sampler struct {
	reg   *telemetry.Registry
	store *Store

	// prev holds the previous scrape's counter values and histogram
	// states, keyed by exposition key.
	prevT        time.Time
	prevCounters map[string]float64
	prevHists    map[string]*histState
}

// histState is the per-histogram carry between scrapes.
type histState struct {
	count   uint64
	sum     float64
	buckets []uint64 // non-cumulative, +Inf last
	deltas  []uint64 // scratch for the interval's bucket deltas
}

// NewSampler returns a sampler feeding store from reg. The first
// SampleOnce seeds counter/histogram baselines and stores only gauges;
// rates appear from the second scrape on.
func NewSampler(reg *telemetry.Registry, store *Store) *Sampler {
	return &Sampler{
		reg:          reg,
		store:        store,
		prevCounters: make(map[string]float64),
		prevHists:    make(map[string]*histState),
	}
}

// Store returns the store the sampler feeds.
func (sm *Sampler) Store() *Store { return sm.store }

// SampleOnce performs one scrape at time now.
func (sm *Sampler) SampleOnce(now time.Time) {
	dt := now.Sub(sm.prevT).Seconds()
	first := sm.prevT.IsZero()
	sm.reg.Each(func(s telemetry.Sample) {
		key := s.Name + s.Labels
		switch s.Kind {
		case telemetry.KindGauge:
			sm.store.Push(key, KindGauge, now, s.Value)
		case telemetry.KindCounter:
			prev, seen := sm.prevCounters[key]
			if seen && !first && dt > 0 {
				rate := (s.Value - prev) / dt
				if rate < 0 { // counter reset
					rate = 0
				}
				sm.store.Push(key, KindRate, now, rate)
			}
			sm.prevCounters[key] = s.Value
		case telemetry.KindHistogram:
			st, seen := sm.prevHists[key]
			if !seen {
				st = &histState{
					buckets: make([]uint64, len(s.BucketCounts)),
					deltas:  make([]uint64, len(s.BucketCounts)),
				}
				sm.prevHists[key] = st
			} else if !first && dt > 0 && s.Count >= st.count {
				dCount := s.Count - st.count
				sm.store.Push(key+":count", KindRate, now, float64(dCount)/dt)
				dSum := s.Value - st.sum
				if dSum < 0 {
					dSum = 0
				}
				sm.store.Push(key+":sum", KindRate, now, dSum/dt)
				if dCount > 0 {
					for i, c := range s.BucketCounts {
						st.deltas[i] = c - st.buckets[i]
					}
					sm.store.Push(key+":p99", KindP99, now, quantile(0.99, s.Bounds, st.deltas, dCount))
				}
			}
			st.count = s.Count
			st.sum = s.Value
			copy(st.buckets, s.BucketCounts)
		}
	})
	sm.prevT = now
}

// quantile estimates quantile q from non-cumulative bucket counts (the
// +Inf bucket last) holding total observations. Linear interpolation
// inside the chosen bucket; the +Inf bucket clamps to the highest finite
// bound, and an empty bounds slice yields 0.
func quantile(q float64, bounds []float64, counts []uint64, total uint64) float64 {
	if len(bounds) == 0 || total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(bounds) { // +Inf bucket
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if c == 0 {
			return hi
		}
		// Position of the rank inside this bucket's observations.
		frac := (rank - (cum - float64(c))) / float64(c)
		return lo + frac*(hi-lo)
	}
	return bounds[len(bounds)-1]
}

// Run scrapes every interval until ctx is done. now supplies the clock
// (nil selects time.Now).
func (sm *Sampler) Run(ctx context.Context, interval time.Duration, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	if interval <= 0 {
		interval = sm.store.Config().RawInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			sm.SampleOnce(now())
		}
	}
}
