// Package series is the daemon's embedded metric history: a fixed-memory,
// downsampling time-series store fed by a sampler that scrapes the
// process's own telemetry.Registry once per interval. It exists because an
// operator of a power controller needs the last minutes of every metric —
// "when did the cap sum start climbing", "what was the e2e latency before
// the alert" — without deploying an external TSDB next to a daemon whose
// whole design argument is having no heavyweight dependencies.
//
// Storage is two rings per series: a raw ring at the scrape interval
// (default 1 s × 10 min) and a rollup ring of fixed-width means (default
// 10 s × 1 h). Memory is bounded at construction: each series costs
// (RawSamples+RollupSamples) × 16 bytes and the store refuses new series
// past MaxSeries (counting refusals) rather than growing. Counters are
// stored as per-second rates, gauges as levels, and histograms as three
// derived series — count rate, sum rate, and a p99 estimated from the
// fixed buckets — so every stored point is directly plottable.
//
// Like the rest of the repository, nothing here imports outside the
// standard library.
package series

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Series kinds, recorded for display so a dashboard knows whether a point
// is a level or a rate.
const (
	KindGauge = "gauge" // instantaneous level
	KindRate  = "rate"  // per-second rate over the scrape interval
	KindP99   = "p99"   // estimated 99th percentile over the scrape interval
)

// Config sizes the store. The zero value of any field selects its default.
type Config struct {
	// RawInterval is the nominal scrape period, used only to decide which
	// ring serves a query window (points carry real timestamps). Default
	// 1 s, matching the paper's decision interval.
	RawInterval time.Duration
	// RawSamples is the raw ring length. Default 600 (10 min at 1 s).
	RawSamples int
	// RollupEvery is how many raw samples fold into one rollup mean.
	// Default 10.
	RollupEvery int
	// RollupSamples is the rollup ring length. Default 360 (1 h at 10 s).
	RollupSamples int
	// MaxSeries bounds the store's footprint: series first seen past the
	// cap are dropped and counted, never stored. Default 1024 (~16 MiB at
	// the default ring geometry).
	MaxSeries int
}

func (c Config) withDefaults() Config {
	if c.RawInterval <= 0 {
		c.RawInterval = time.Second
	}
	if c.RawSamples <= 0 {
		c.RawSamples = 600
	}
	if c.RollupEvery <= 0 {
		c.RollupEvery = 10
	}
	if c.RollupSamples <= 0 {
		c.RollupSamples = 360
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 1024
	}
	return c
}

// ring is a fixed-capacity circular buffer of (time, value) points.
// Pushes never allocate after construction.
type ring struct {
	times []int64 // unix nanoseconds
	vals  []float64
	n     int // valid points
	next  int // slot the next push writes
}

func newRing(capacity int) ring {
	return ring{times: make([]int64, capacity), vals: make([]float64, capacity)}
}

func (r *ring) push(t int64, v float64) {
	r.times[r.next] = t
	r.vals[r.next] = v
	r.next++
	if r.next == len(r.times) {
		r.next = 0
	}
	if r.n < len(r.times) {
		r.n++
	}
}

// appendSince appends the points with time >= since, oldest first.
func (r *ring) appendSince(out []Point, since int64) []Point {
	first := r.next - r.n
	if first < 0 {
		first += len(r.times)
	}
	for i := 0; i < r.n; i++ {
		j := first + i
		if j >= len(r.times) {
			j -= len(r.times)
		}
		if r.times[j] >= since {
			out = append(out, Point{T: r.times[j], V: r.vals[j]})
		}
	}
	return out
}

// latest returns the newest point, if any.
func (r *ring) latest() (Point, bool) {
	if r.n == 0 {
		return Point{}, false
	}
	j := r.next - 1
	if j < 0 {
		j += len(r.times)
	}
	return Point{T: r.times[j], V: r.vals[j]}, true
}

// oneSeries is one stored series: raw and rollup rings plus the rollup
// accumulator.
type oneSeries struct {
	key  string
	kind string
	raw  ring
	roll ring
	// accSum/accN accumulate raw pushes toward the next rollup mean.
	accSum float64
	accN   int
}

// Point is one stored sample.
type Point struct {
	T int64   `json:"t"` // unix nanoseconds
	V float64 `json:"v"`
}

// Series is one query result.
type Series struct {
	Name string `json:"name"`
	// Kind is KindGauge, KindRate or KindP99.
	Kind string `json:"kind"`
	// Resolution is the ring the points came from: "raw" or "rollup".
	Resolution string  `json:"resolution"`
	Points     []Point `json:"points"`
}

// Store holds every series. All methods are safe for concurrent use; the
// push path (Push on an existing series) takes one lock and never
// allocates.
type Store struct {
	cfg Config

	mu      sync.Mutex
	series  map[string]*oneSeries
	names   []string // sorted lazily on demand
	sorted  bool
	dropped uint64
}

// NewStore returns an empty store with the given geometry.
func NewStore(cfg Config) *Store {
	return &Store{cfg: cfg.withDefaults(), series: make(map[string]*oneSeries)}
}

// Config returns the store's resolved geometry.
func (s *Store) Config() Config { return s.cfg }

// Dropped returns the number of pushes refused because the series cap was
// reached.
func (s *Store) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Len returns the number of stored series.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series)
}

// Push appends one sample to the named series, creating it with the given
// kind on first sight (kind is fixed thereafter). Pushes beyond MaxSeries
// new series are dropped and counted.
func (s *Store) Push(key, kind string, t time.Time, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[key]
	if !ok {
		if len(s.series) >= s.cfg.MaxSeries {
			s.dropped++
			return
		}
		sr = &oneSeries{
			key:  key,
			kind: kind,
			raw:  newRing(s.cfg.RawSamples),
			roll: newRing(s.cfg.RollupSamples),
		}
		s.series[key] = sr
		s.names = append(s.names, key)
		s.sorted = false
	}
	sr.raw.push(t.UnixNano(), v)
	sr.accSum += v
	sr.accN++
	if sr.accN >= s.cfg.RollupEvery {
		sr.roll.push(t.UnixNano(), sr.accSum/float64(sr.accN))
		sr.accSum, sr.accN = 0, 0
	}
}

// Names returns every stored series key, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sorted {
		sort.Strings(s.names)
		s.sorted = true
	}
	return append([]string(nil), s.names...)
}

// Query returns the named series' points within the trailing window
// [now-last, now], raw-resolution when the window fits inside the raw
// ring's span and rollup-resolution otherwise. ok is false for an unknown
// series.
func (s *Store) Query(key string, last time.Duration, now time.Time) (Series, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[key]
	if !ok {
		return Series{}, false
	}
	if last <= 0 {
		last = time.Duration(s.cfg.RawSamples) * s.cfg.RawInterval
	}
	out := Series{Name: key, Kind: sr.kind, Resolution: "raw"}
	since := now.Add(-last).UnixNano()
	rawSpan := time.Duration(s.cfg.RawSamples) * s.cfg.RawInterval
	if last > rawSpan {
		out.Resolution = "rollup"
		out.Points = sr.roll.appendSince(make([]Point, 0, sr.roll.n), since)
	} else {
		out.Points = sr.raw.appendSince(make([]Point, 0, sr.raw.n), since)
	}
	return out, true
}

// Latest returns the newest raw sample of the named series.
func (s *Store) Latest(key string) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[key]
	if !ok {
		return Point{}, false
	}
	return sr.raw.latest()
}

// WindowMean returns the mean and count of raw samples with timestamps in
// [now-window, now] — the alert engine's burn-rate input.
func (s *Store) WindowMean(key string, window time.Duration, now time.Time) (mean float64, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[key]
	if !ok {
		return 0, 0
	}
	since := now.Add(-window).UnixNano()
	r := &sr.raw
	first := r.next - r.n
	if first < 0 {
		first += len(r.times)
	}
	var sum float64
	for i := 0; i < r.n; i++ {
		j := first + i
		if j >= len(r.times) {
			j -= len(r.times)
		}
		if r.times[j] >= since {
			sum += r.vals[j]
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// Handler serves the store for mounting at GET /debug/series:
//
//	GET /debug/series                  the sorted series index as JSON
//	GET /debug/series?name=K           one series, default window
//	GET /debug/series?name=K&last=5m   one series, trailing window
//
// now supplies the query-time clock (nil selects time.Now), so tests with
// a stubbed server clock get deterministic windows.
func (s *Store) Handler(now func() time.Time) http.Handler {
	if now == nil {
		now = time.Now
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		name := req.URL.Query().Get("name")
		if name == "" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct {
				Series  []string `json:"series"`
				Dropped uint64   `json:"dropped"`
			}{s.Names(), s.Dropped()})
			return
		}
		last := time.Duration(0)
		if q := req.URL.Query().Get("last"); q != "" {
			d, err := time.ParseDuration(q)
			if err != nil || d <= 0 {
				http.Error(w, "last must be a positive duration (e.g. 5m)", http.StatusBadRequest)
				return
			}
			last = d
		}
		out, ok := s.Query(name, last, now())
		if !ok {
			http.Error(w, fmt.Sprintf("unknown series %q", name), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
