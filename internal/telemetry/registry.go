// Package telemetry is the repository's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges, and
// fixed-bucket histograms with Prometheus text exposition) and a decision
// flight recorder (a ring buffer of per-round records served as JSON).
//
// The controller daemon, the node agent, and the simulator all publish
// through the same registry so one scrape format covers every deployment
// form. Nothing here imports outside the standard library: the paper's
// 3-byte protocol argues for a controller with no heavyweight
// dependencies, and the metrics path follows suit.
//
// # Histogram bucket choice
//
// Buckets are fixed at registration, so each histogram picks bounds for
// the path it measures rather than falling back to a generic layout. The
// rule: (1) the bucket range brackets the full plausible range of the
// measured path — the fastest value the hardware can produce to the
// slowest value that is still "working" rather than "stuck" — so the tail
// quantiles fall inside finite buckets and a p99 estimated from bucket
// counts (internal/telemetry/series) interpolates instead of saturating
// at +Inf; (2) bounds follow a 1–2.5–5 progression per decade, giving
// ~±25 % quantile resolution at every scale for ~3 buckets per decade;
// (3) the bucket count stays small (≤ ~20) because every series carries
// its full bucket vector in each exposition. DefSecondsBuckets applies
// the rule to in-process stage timings (1 µs–1 s); paths with different
// physics — e.g. the network-crossing apply-echo round trip — register
// their own bounds instead of reusing it.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric kinds, matching Prometheus TYPE annotations.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use; the lookup
// path (Counter/Gauge/Histogram with an existing name+labels) is
// lock-free after first registration only in the sense that the returned
// handles are, so callers should capture handles once and update them on
// the hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, kind string
	buckets          []float64 // histogram upper bounds, nil otherwise

	mu     sync.Mutex
	order  []string // label signatures in registration order
	series map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// labelSignature renders labels into the canonical `{k="v",...}` form used
// both as the series key and in the exposition output.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) family(name, help, kind string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	return f
}

func (f *family) series1(sig string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok {
		return s
	}
	s := mk()
	f.series[sig] = s
	f.order = append(f.order, sig)
	return s
}

// Counter registers (or looks up) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.series1(labelSignature(labels), func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or looks up) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.series1(labelSignature(labels), func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or looks up) a fixed-bucket histogram. The buckets
// are upper bounds in increasing order; a +Inf bucket is implicit. The
// bucket layout is fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if len(buckets) == 0 {
		buckets = DefSecondsBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not increasing at %d", name, i))
		}
	}
	f := r.family(name, help, kindHistogram, buckets)
	return f.series1(labelSignature(labels), func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// DefSecondsBuckets spans one microsecond to one second, the range of
// interest for a control loop with a one-second decision interval.
var DefSecondsBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta (CAS loop; fine off the hot path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// familySnapshot is one family's state captured for rendering: the
// metric handles are shared (their values are read atomically), the
// order slice is a copy.
type familySnapshot struct {
	name, help, kind string
	order            []string
	series           []any
}

// snapshot captures every family under the registry and family locks,
// holding each only long enough to copy slice headers and map entries —
// never while formatting. A first registration racing a scrape therefore
// waits for a few copies, not for the whole exposition to render.
func (r *Registry) snapshot() []familySnapshot {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	out := make([]familySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.Lock()
		snap := familySnapshot{
			name: f.name, help: f.help, kind: f.kind,
			order:  append([]string(nil), f.order...),
			series: make([]any, len(f.order)),
		}
		for i, sig := range f.order {
			snap.series[i] = f.series[sig]
		}
		f.mu.Unlock()
		out = append(out, snap)
	}
	return out
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name, series in registration order. The registry is
// snapshotted first and rendered lock-free, so a slow or huge scrape
// cannot stall hot-path first-registrations.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshot() {
		if len(f.order) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for i, sig := range f.order {
			switch m := f.series[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sig, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(&b, f.name, sig, m)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name, sig string, h *Histogram) {
	// sig is either "" or "{...}"; bucket series splice le into it.
	inner := ""
	if sig != "" {
		inner = sig[1:len(sig)-1] + ","
	}
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{%sle=\"%s\"} %d\n", name, inner, formatFloat(ub), cum)
	}
	fmt.Fprintf(b, "%s_bucket{%sle=\"+Inf\"} %d\n", name, inner, h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, sig, h.Count())
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Exported kind names, the values of Sample.Kind.
const (
	KindCounter   = kindCounter
	KindGauge     = kindGauge
	KindHistogram = kindHistogram
)

// Sample is one series' instantaneous state as delivered to Each: the
// scrape-side view a sampler turns into time-series history.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Labels is the canonical `{k="v",...}` signature, "" when unlabeled.
	Labels string
	// Kind is KindCounter, KindGauge or KindHistogram.
	Kind string
	// Value holds the counter count or gauge level; for histograms it is
	// the sum of observations.
	Value float64
	// Count is the histogram observation count (0 for other kinds).
	Count uint64
	// Bounds are the histogram's upper bucket bounds (shared with the
	// registry; callers must not mutate). Nil for other kinds.
	Bounds []float64
	// BucketCounts are the per-bucket (non-cumulative) observation counts,
	// len(Bounds)+1 with the +Inf bucket last. The slice is a buffer
	// reused across callbacks — copy it to retain it.
	BucketCounts []uint64
}

// Each calls fn once per registered series with its current value,
// families in name order and series in registration order. Like
// WritePrometheus it walks a snapshot, so a concurrent first registration
// never blocks on the visit; values are read atomically per series (a
// scrape is not a cross-series atomic cut, which is true of any
// Prometheus exposition too).
func (r *Registry) Each(fn func(Sample)) {
	var counts []uint64
	for _, f := range r.snapshot() {
		for i, sig := range f.order {
			s := Sample{Name: f.name, Labels: sig, Kind: f.kind}
			switch m := f.series[i].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				if cap(counts) < len(m.counts) {
					counts = make([]uint64, len(m.counts))
				}
				counts = counts[:len(m.counts)]
				for j := range m.counts {
					counts[j] = m.counts[j].Load()
				}
				s.Bounds = m.bounds
				s.BucketCounts = counts
				s.Count = m.Count()
				s.Value = m.Sum()
			}
			fn(s)
		}
	}
}

// Handler serves the registry at any path, for mounting as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
