// Package snapshot defines the controller's versioned state-snapshot
// format: everything a DPS controller and its daemon accumulate across
// decision rounds — caps, ring histories, Kalman bank, priority and
// frozen stats, sparse bookkeeping, PRNG position, provenance, health
// clocks — serialized so a restarted or warm-standby controller resumes
// bit-for-bit where the original stopped (DESIGN.md §14).
//
// # Wire format
//
// A snapshot is a fixed header followed by self-framed sections:
//
//	header:  magic "DPSS" | version u16 | flags u16 (reserved, zero)
//	section: id u16 | length u32 | payload [length] | crc32 u32
//
// All integers are little-endian; floats are IEEE-754 bit patterns (the
// format round-trips NaNs and signed zeros — restore equivalence is
// bitwise, not numeric). Each section's CRC covers its id, length, and
// payload, so a bit flip anywhere inside a section is caught at that
// section. Decoders skip sections whose id they do not recognize
// (forward compatibility: a newer writer can add sections without
// breaking older readers), but only after the CRC validates — corrupt
// bytes never parse as "unknown, ignore".
//
// # Incremental replication
//
// Sections are also the unit of delta replication: a primary daemon
// re-encodes its state every round and streams only the sections whose
// bytes changed; the standby overlays them onto its last full image
// (Sections / Assemble). Because each section is independently framed
// and checksummed, the overlay needs no format knowledge beyond the
// section ids.
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"dps/internal/history"
	"dps/internal/kalman"
	"dps/internal/power"
	"dps/internal/priority"
)

// Version is the current snapshot format version. Decoders reject
// snapshots with a newer version: a version bump signals an incompatible
// reinterpretation of existing sections (new sections alone do not need
// one — unknown ids are skipped).
const Version = 1

// magic identifies a DPS snapshot stream.
var magic = [4]byte{'D', 'P', 'S', 'S'}

// HeaderSize is the fixed prefix before the first section.
const HeaderSize = 8

// Section ids. Values are part of the wire format; never renumber.
const (
	SecConfig   uint16 = 0x0001 // config fingerprint + live budget
	SecCore     uint16 = 0x0002 // controller scalars (steps, flags)
	SecCaps     uint16 = 0x0003 // current cap vector
	SecKalman   uint16 = 0x0004 // filter bank state
	SecRings    uint16 = 0x0005 // power history rings, raw
	SecPriority uint16 = 0x0006 // priority flags + frozen stats
	SecSparse   uint16 = 0x0007 // sparse-round masks and caches
	SecRNG      uint16 = 0x0008 // stateless module PRNG position
	SecProv     uint16 = 0x0009 // provenance reasons + round baseline
	SecDaemon   uint16 = 0x000A // daemon round caches + health clocks
)

// Sanity bounds for decoded counts, so a corrupted or adversarial length
// field cannot demand absurd allocations before the CRC check would
// reject it anyway.
const (
	maxUnits   = 1 << 22
	maxRingCap = 1 << 16
)

// KalmanState is one unit's filter state (kalman.State): estimate,
// variance, primed flag.
type KalmanState = kalman.State

// RingState is one unit's power-history state (history.State): raw slots
// in physical order plus the running aggregates, bit for bit.
type RingState = history.State

// State is the in-memory form of a snapshot: the union of everything the
// format can carry. Producers fill the parts they own and set the
// corresponding Has* flags; Encode serializes only flagged parts, and
// Decode sets the flags for the sections it found. All slices are reused
// across Export/Encode cycles when their capacity suffices, so a warm
// snapshot round allocates nothing.
type State struct {
	// Config fingerprint (SecConfig). Units/Seed/UnitMax/UnitMin identify
	// the controller a snapshot belongs to; BudgetTotal is live state (it
	// changes under SetTotalBudget) and is restored, not checked.
	Units              int
	Seed               int64
	BudgetTotal        power.Watts
	UnitMax, UnitMin   power.Watts
	Sparse             bool
	SparseRefreshEvery int

	// Core controller state (SecCore, SecCaps, SecKalman, SecRings,
	// SecPriority, SecRNG, SecProv).
	HasCore       bool
	Steps         uint64
	LastRestored  bool
	ProvDirty     bool
	HeldAllocated bool
	Caps          power.Vector
	Kalman        []KalmanState
	RingCap       int
	Rings         []RingState
	Prio          []bool
	HighFreq      []bool
	PrevPrio      []bool
	Frozen        []priority.FrozenStats
	RNGSeed       int64
	RNGDraws      uint64
	Reasons       []uint8
	RoundBefore   power.Vector

	// Sparse-round bookkeeping (SecSparse), present only for sparse
	// controllers.
	HasSparse bool
	LastDT    power.Seconds
	HighCount int
	CachedSum power.Watts
	SumValid  bool
	SettledW  []uint64
	CapMovedW []uint64
	LastVal   power.Vector
	LastStep  []uint64

	// Daemon round caches (SecDaemon). Report ages are relative to
	// SavedUnixMS — wall clocks differ across hosts, ages do not.
	// Readings is the ingest front buffer at export time: a restored
	// daemon that decides before any agent reports must feed the
	// controller the same readings the primary would have, not zeros.
	HasDaemon   bool
	SavedUnixMS int64
	Rounds      uint64
	Health      []uint8
	ReportAgeMS []uint64
	LastCaps    power.Vector
	LastPushed  power.Vector
	Readings    power.Vector
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendBits packs a bool slice into 64-bit words, LSB of word 0 = index 0
// — the same layout the controller's own masks use.
func appendBits(b []byte, bits []bool) []byte {
	var w uint64
	for i, v := range bits {
		if v {
			w |= uint64(1) << uint(i&63)
		}
		if i&63 == 63 {
			b = appendU64(b, w)
			w = 0
		}
	}
	if len(bits)&63 != 0 {
		b = appendU64(b, w)
	}
	return b
}

// AppendHeader appends the snapshot header (magic + current version) to
// dst. Used by Encode and by the standby when reassembling a full image
// from replicated sections.
func AppendHeader(dst []byte) []byte {
	dst = append(dst, magic[:]...)
	dst = appendU16(dst, Version)
	dst = appendU16(dst, 0)
	return dst
}

// beginSection appends a section header with a zero length placeholder
// and returns the offset of the section start.
func beginSection(b []byte, id uint16) ([]byte, int) {
	start := len(b)
	b = appendU16(b, id)
	b = appendU32(b, 0)
	return b, start
}

// endSection backfills the section length and appends the CRC over
// id+length+payload.
func endSection(b []byte, start int) []byte {
	payloadLen := uint32(len(b) - start - 6)
	b[start+2] = byte(payloadLen)
	b[start+3] = byte(payloadLen >> 8)
	b[start+4] = byte(payloadLen >> 16)
	b[start+5] = byte(payloadLen >> 24)
	crc := crc32.Checksum(b[start:], crc32.IEEETable)
	return appendU32(b, crc)
}

// Encode serializes st into dst[:0] and returns the extended slice.
// Sections are emitted in id order, config first; reusing dst across
// calls makes a warm encode allocation-free. The output of
// encode→decode→encode is byte-identical (property-tested).
func Encode(dst []byte, st *State) []byte {
	b := AppendHeader(dst[:0])

	// SecConfig
	var start int
	b, start = beginSection(b, SecConfig)
	b = appendU32(b, uint32(st.Units))
	b = appendU64(b, uint64(st.Seed))
	b = appendF64(b, float64(st.BudgetTotal))
	b = appendF64(b, float64(st.UnitMax))
	b = appendF64(b, float64(st.UnitMin))
	b = appendBool(b, st.Sparse)
	b = appendU32(b, uint32(st.SparseRefreshEvery))
	b = endSection(b, start)

	if st.HasCore {
		b, start = beginSection(b, SecCore)
		b = appendU64(b, st.Steps)
		b = appendBool(b, st.LastRestored)
		b = appendBool(b, st.ProvDirty)
		b = appendBool(b, st.HeldAllocated)
		b = endSection(b, start)

		b, start = beginSection(b, SecCaps)
		for _, c := range st.Caps {
			b = appendF64(b, float64(c))
		}
		b = endSection(b, start)

		b, start = beginSection(b, SecKalman)
		for i := range st.Kalman {
			k := &st.Kalman[i]
			b = appendF64(b, float64(k.Estimate))
			b = appendF64(b, k.Variance)
			b = appendBool(b, k.Primed)
		}
		b = endSection(b, start)

		b, start = beginSection(b, SecRings)
		b = appendU32(b, uint32(st.RingCap))
		for i := range st.Rings {
			r := &st.Rings[i]
			b = appendU32(b, uint32(r.Head))
			b = appendU32(b, uint32(r.N))
			b = appendU32(b, uint32(r.Pushes))
			b = appendF64(b, r.Sum)
			b = appendF64(b, r.SumSq)
			b = appendF64(b, r.DurSum)
			b = appendF64(b, r.TailDur)
			for _, p := range r.Powers {
				b = appendF64(b, float64(p))
			}
			for _, d := range r.Durations {
				b = appendF64(b, float64(d))
			}
		}
		b = endSection(b, start)

		b, start = beginSection(b, SecPriority)
		b = appendBits(b, st.Prio)
		b = appendBits(b, st.HighFreq)
		b = appendBits(b, st.PrevPrio)
		for i := range st.Frozen {
			f := &st.Frozen[i]
			b = appendU32(b, uint32(f.N))
			b = appendF64(b, float64(f.Std))
			b = appendF64(b, float64(f.Deriv))
			b = appendBool(b, f.HighFreqNow)
		}
		b = endSection(b, start)

		b, start = beginSection(b, SecRNG)
		b = appendU64(b, uint64(st.RNGSeed))
		b = appendU64(b, st.RNGDraws)
		b = endSection(b, start)

		b, start = beginSection(b, SecProv)
		b = append(b, st.Reasons...)
		for _, c := range st.RoundBefore {
			b = appendF64(b, float64(c))
		}
		b = endSection(b, start)
	}

	if st.HasSparse {
		b, start = beginSection(b, SecSparse)
		b = appendF64(b, float64(st.LastDT))
		b = appendU64(b, uint64(int64(st.HighCount)))
		b = appendF64(b, float64(st.CachedSum))
		b = appendBool(b, st.SumValid)
		for _, w := range st.SettledW {
			b = appendU64(b, w)
		}
		for _, w := range st.CapMovedW {
			b = appendU64(b, w)
		}
		for _, v := range st.LastVal {
			b = appendF64(b, float64(v))
		}
		for _, s := range st.LastStep {
			b = appendU64(b, s)
		}
		b = endSection(b, start)
	}

	if st.HasDaemon {
		b, start = beginSection(b, SecDaemon)
		b = appendU64(b, uint64(st.SavedUnixMS))
		b = appendU64(b, st.Rounds)
		b = append(b, st.Health...)
		for _, a := range st.ReportAgeMS {
			b = appendU64(b, a)
		}
		for _, c := range st.LastCaps {
			b = appendF64(b, float64(c))
		}
		for _, c := range st.LastPushed {
			b = appendF64(b, float64(c))
		}
		for _, c := range st.Readings {
			b = appendF64(b, float64(c))
		}
		b = endSection(b, start)
	}

	return b
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

// Decode errors. ErrCorrupt wraps every structural failure (bad magic,
// truncation, CRC mismatch, inconsistent counts); ErrVersion marks a
// snapshot written by a newer format.
var (
	ErrCorrupt = errors.New("snapshot: corrupt")
	ErrVersion = errors.New("snapshot: unsupported version")
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// reader is a bounds-checked cursor over one section's payload. Reads
// past the end set err and return zero values — decoders check err once
// per section instead of after every field, and malformed input can only
// produce an error, never a panic.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = corruptf("truncated section payload at offset %d", r.off)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	b := r.b[r.off:]
	r.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// bits unpacks words(n) 64-bit words into dst (length n).
func (r *reader) bits(dst []bool) {
	var w uint64
	for i := range dst {
		if i&63 == 0 {
			w = r.u64()
		}
		dst[i] = w&(uint64(1)<<uint(i&63)) != 0
	}
}

// done errors unless the payload was consumed exactly: a known section
// with trailing bytes is a framing bug, not forward compatibility
// (format evolution adds sections, it does not extend old ones).
func (r *reader) done(id uint16) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return corruptf("section 0x%04x: %d trailing bytes", id, len(r.b)-r.off)
	}
	return nil
}

// Section is one framed section of a snapshot image. Raw spans the full
// framing (id, length, payload, CRC) and aliases the image it was split
// from; Payload is the inner payload alone.
type Section struct {
	ID      uint16
	Payload []byte
	Raw     []byte
}

// header validates the fixed prefix and returns the remainder.
func header(data []byte) ([]byte, error) {
	if len(data) < HeaderSize {
		return nil, corruptf("%d bytes, want at least the %d-byte header", len(data), HeaderSize)
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] || data[3] != magic[3] {
		return nil, corruptf("bad magic %q", data[:4])
	}
	v := uint16(data[4]) | uint16(data[5])<<8
	if v > Version {
		return nil, fmt.Errorf("%w: snapshot version %d, decoder supports <= %d", ErrVersion, v, Version)
	}
	return data[HeaderSize:], nil
}

// AppendSections validates data's header and splits it into CRC-checked
// sections appended to dst (reused across calls when its capacity
// suffices). Every section's CRC is verified — including sections with
// unknown ids — so a corrupted image fails here regardless of which
// section the damage landed in.
func AppendSections(dst []Section, data []byte) ([]Section, error) {
	rest, err := header(data)
	if err != nil {
		return dst, err
	}
	for len(rest) > 0 {
		if len(rest) < 6 {
			return dst, corruptf("%d-byte trailing fragment", len(rest))
		}
		id := uint16(rest[0]) | uint16(rest[1])<<8
		n := uint32(rest[2]) | uint32(rest[3])<<8 | uint32(rest[4])<<16 | uint32(rest[5])<<24
		total := uint64(6) + uint64(n) + 4
		if uint64(len(rest)) < total {
			return dst, corruptf("section 0x%04x: length %d exceeds remaining %d bytes", id, n, len(rest))
		}
		raw := rest[:total]
		crcOff := 6 + int(n)
		want := uint32(raw[crcOff]) | uint32(raw[crcOff+1])<<8 | uint32(raw[crcOff+2])<<16 | uint32(raw[crcOff+3])<<24
		if got := crc32.Checksum(raw[:crcOff], crc32.IEEETable); got != want {
			return dst, corruptf("section 0x%04x: CRC 0x%08x, want 0x%08x", id, got, want)
		}
		dst = append(dst, Section{ID: id, Payload: raw[6:crcOff], Raw: raw[:total]})
		rest = rest[total:]
	}
	return dst, nil
}

// Sections is AppendSections into a fresh slice.
func Sections(data []byte) ([]Section, error) { return AppendSections(nil, data) }

// Assemble builds a full snapshot image from raw section framings (each
// as produced by Sections' Raw), appending to dst. The standby uses it
// to materialize its overlay of replicated sections into a decodable
// snapshot.
func Assemble(dst []byte, raws ...[]byte) []byte {
	dst = AppendHeader(dst[:0])
	for _, r := range raws {
		dst = append(dst, r...)
	}
	return dst
}

// resizeF64 returns v with length n, reusing capacity.
func resizeVec(v power.Vector, n int) power.Vector {
	if cap(v) < n {
		return make(power.Vector, n)
	}
	return v[:n]
}

func resizeBool(v []bool, n int) []bool {
	if cap(v) < n {
		return make([]bool, n)
	}
	return v[:n]
}

func resizeU64(v []uint64, n int) []uint64 {
	if cap(v) < n {
		return make([]uint64, n)
	}
	return v[:n]
}

func resizeU8(v []uint8, n int) []uint8 {
	if cap(v) < n {
		return make([]uint8, n)
	}
	return v[:n]
}

// expectedLen returns the exact payload size a known section must have
// for a snapshot of `units` units (known=false for unknown ids). For
// SecRings the size depends on the ring capacity embedded in the payload
// prefix; an undersized prefix reports the prefix size itself, which
// cannot match a real payload.
func expectedLen(id uint16, units int, payload []byte) (want int, known bool) {
	words := (units + 63) / 64
	switch id {
	case SecConfig:
		return 4 + 8 + 3*8 + 1 + 4, true
	case SecCore:
		return 8 + 3, true
	case SecCaps:
		return units * 8, true
	case SecKalman:
		return units * 17, true
	case SecRings:
		if len(payload) < 4 {
			return 4, true
		}
		rc := int(uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24)
		return 4 + units*(3*4+4*8+rc*16), true
	case SecPriority:
		return 3*words*8 + units*21, true
	case SecRNG:
		return 16, true
	case SecProv:
		return units * 9, true
	case SecSparse:
		return 8 + 8 + 8 + 1 + 2*words*8 + units*16, true
	case SecDaemon:
		return 16 + units*33, true
	}
	return 0, false
}

// DecodeInto parses a snapshot image into st, reusing st's slices. It
// never panics on malformed input: every structural defect returns an
// error wrapping ErrCorrupt (or ErrVersion), and unknown section ids are
// skipped after their CRC validates. On error st's contents are
// unspecified; on success the Has* flags report which parts were
// present.
func DecodeInto(st *State, data []byte) error {
	rest, err := header(data)
	if err != nil {
		return err
	}
	st.HasCore, st.HasSparse, st.HasDaemon = false, false, false
	seenConfig := false
	var seen [11]bool // duplicate-section guard for known ids

	for len(rest) > 0 {
		if len(rest) < 6 {
			return corruptf("%d-byte trailing fragment", len(rest))
		}
		id := uint16(rest[0]) | uint16(rest[1])<<8
		n := uint32(rest[2]) | uint32(rest[3])<<8 | uint32(rest[4])<<16 | uint32(rest[5])<<24
		total := uint64(6) + uint64(n) + 4
		if uint64(len(rest)) < total {
			return corruptf("section 0x%04x: length %d exceeds remaining %d bytes", id, n, len(rest))
		}
		crcOff := 6 + int(n)
		want := uint32(rest[crcOff]) | uint32(rest[crcOff+1])<<8 | uint32(rest[crcOff+2])<<16 | uint32(rest[crcOff+3])<<24
		if got := crc32.Checksum(rest[:crcOff], crc32.IEEETable); got != want {
			return corruptf("section 0x%04x: CRC 0x%08x, want 0x%08x", id, got, want)
		}
		payload := rest[6:crcOff]
		rest = rest[total:]

		if int(id) < len(seen) {
			if seen[id] {
				return corruptf("duplicate section 0x%04x", id)
			}
			seen[id] = true
		}
		if id != SecConfig && int(id) < len(seen) && !seenConfig {
			return corruptf("section 0x%04x before config section", id)
		}
		// Known sections have a payload size fully determined by the unit
		// count (and, for rings, the embedded ring capacity). Checking it
		// up front means a tiny crafted payload can never trigger a large
		// per-unit allocation before failing.
		if want, known := expectedLen(id, st.Units, payload); known && len(payload) != want {
			return corruptf("section 0x%04x: payload %d bytes, want %d", id, len(payload), want)
		}

		r := reader{b: payload}
		switch id {
		case SecConfig:
			units := r.u32()
			if units == 0 || units > maxUnits {
				return corruptf("unit count %d outside [1,%d]", units, maxUnits)
			}
			st.Units = int(units)
			st.Seed = int64(r.u64())
			st.BudgetTotal = power.Watts(r.f64())
			st.UnitMax = power.Watts(r.f64())
			st.UnitMin = power.Watts(r.f64())
			st.Sparse = r.boolean()
			st.SparseRefreshEvery = int(r.u32())
			if err := r.done(id); err != nil {
				return err
			}
			seenConfig = true

		case SecCore:
			st.Steps = r.u64()
			st.LastRestored = r.boolean()
			st.ProvDirty = r.boolean()
			st.HeldAllocated = r.boolean()
			if err := r.done(id); err != nil {
				return err
			}
			st.HasCore = true

		case SecCaps:
			st.Caps = resizeVec(st.Caps, st.Units)
			for i := range st.Caps {
				st.Caps[i] = power.Watts(r.f64())
			}
			if err := r.done(id); err != nil {
				return err
			}

		case SecKalman:
			if cap(st.Kalman) < st.Units {
				st.Kalman = make([]KalmanState, st.Units)
			}
			st.Kalman = st.Kalman[:st.Units]
			for i := range st.Kalman {
				st.Kalman[i].Estimate = power.Watts(r.f64())
				st.Kalman[i].Variance = r.f64()
				st.Kalman[i].Primed = r.boolean()
			}
			if err := r.done(id); err != nil {
				return err
			}

		case SecRings:
			rc := r.u32()
			if r.err == nil && (rc == 0 || rc > maxRingCap) {
				return corruptf("ring capacity %d outside [1,%d]", rc, maxRingCap)
			}
			st.RingCap = int(rc)
			if cap(st.Rings) < st.Units {
				st.Rings = make([]RingState, st.Units)
			}
			st.Rings = st.Rings[:st.Units]
			for i := range st.Rings {
				g := &st.Rings[i]
				g.Head = int(r.u32())
				g.N = int(r.u32())
				g.Pushes = int(r.u32())
				g.Sum = r.f64()
				g.SumSq = r.f64()
				g.DurSum = r.f64()
				g.TailDur = r.f64()
				if r.err != nil {
					return r.err
				}
				if cap(g.Powers) < st.RingCap {
					g.Powers = make([]power.Watts, st.RingCap)
				}
				g.Powers = g.Powers[:st.RingCap]
				for j := range g.Powers {
					g.Powers[j] = power.Watts(r.f64())
				}
				if cap(g.Durations) < st.RingCap {
					g.Durations = make([]power.Seconds, st.RingCap)
				}
				g.Durations = g.Durations[:st.RingCap]
				for j := range g.Durations {
					g.Durations[j] = power.Seconds(r.f64())
				}
			}
			if err := r.done(id); err != nil {
				return err
			}

		case SecPriority:
			st.Prio = resizeBool(st.Prio, st.Units)
			st.HighFreq = resizeBool(st.HighFreq, st.Units)
			st.PrevPrio = resizeBool(st.PrevPrio, st.Units)
			r.bits(st.Prio)
			r.bits(st.HighFreq)
			r.bits(st.PrevPrio)
			if cap(st.Frozen) < st.Units {
				st.Frozen = make([]priority.FrozenStats, st.Units)
			}
			st.Frozen = st.Frozen[:st.Units]
			for i := range st.Frozen {
				st.Frozen[i].N = int(r.u32())
				st.Frozen[i].Std = power.Watts(r.f64())
				st.Frozen[i].Deriv = power.Watts(r.f64())
				st.Frozen[i].HighFreqNow = r.boolean()
			}
			if err := r.done(id); err != nil {
				return err
			}

		case SecRNG:
			st.RNGSeed = int64(r.u64())
			st.RNGDraws = r.u64()
			if err := r.done(id); err != nil {
				return err
			}

		case SecProv:
			st.Reasons = resizeU8(st.Reasons, st.Units)
			for i := range st.Reasons {
				st.Reasons[i] = r.u8()
			}
			st.RoundBefore = resizeVec(st.RoundBefore, st.Units)
			for i := range st.RoundBefore {
				st.RoundBefore[i] = power.Watts(r.f64())
			}
			if err := r.done(id); err != nil {
				return err
			}

		case SecSparse:
			st.LastDT = power.Seconds(r.f64())
			st.HighCount = int(int64(r.u64()))
			st.CachedSum = power.Watts(r.f64())
			st.SumValid = r.boolean()
			words := (st.Units + 63) / 64
			st.SettledW = resizeU64(st.SettledW, words)
			for i := range st.SettledW {
				st.SettledW[i] = r.u64()
			}
			st.CapMovedW = resizeU64(st.CapMovedW, words)
			for i := range st.CapMovedW {
				st.CapMovedW[i] = r.u64()
			}
			st.LastVal = resizeVec(st.LastVal, st.Units)
			for i := range st.LastVal {
				st.LastVal[i] = power.Watts(r.f64())
			}
			st.LastStep = resizeU64(st.LastStep, st.Units)
			for i := range st.LastStep {
				st.LastStep[i] = r.u64()
			}
			if err := r.done(id); err != nil {
				return err
			}
			st.HasSparse = true

		case SecDaemon:
			st.SavedUnixMS = int64(r.u64())
			st.Rounds = r.u64()
			st.Health = resizeU8(st.Health, st.Units)
			for i := range st.Health {
				st.Health[i] = r.u8()
			}
			st.ReportAgeMS = resizeU64(st.ReportAgeMS, st.Units)
			for i := range st.ReportAgeMS {
				st.ReportAgeMS[i] = r.u64()
			}
			st.LastCaps = resizeVec(st.LastCaps, st.Units)
			for i := range st.LastCaps {
				st.LastCaps[i] = power.Watts(r.f64())
			}
			st.LastPushed = resizeVec(st.LastPushed, st.Units)
			for i := range st.LastPushed {
				st.LastPushed[i] = power.Watts(r.f64())
			}
			st.Readings = resizeVec(st.Readings, st.Units)
			for i := range st.Readings {
				st.Readings[i] = power.Watts(r.f64())
			}
			if err := r.done(id); err != nil {
				return err
			}
			st.HasDaemon = true

		default:
			// Unknown section: CRC validated above, skip the payload.
		}
	}

	if !seenConfig {
		return corruptf("no config section")
	}
	if st.HasCore {
		// HasCore promises the full core section family; a snapshot with
		// SecCore but a missing companion is structurally incomplete.
		switch {
		case len(st.Caps) != st.Units, len(st.Kalman) != st.Units,
			len(st.Rings) != st.Units, len(st.Prio) != st.Units,
			len(st.Reasons) != st.Units:
			return corruptf("core sections incomplete for %d units", st.Units)
		}
	}
	return nil
}

// Decode is DecodeInto into a fresh State.
func Decode(data []byte) (*State, error) {
	st := &State{}
	if err := DecodeInto(st, data); err != nil {
		return nil, err
	}
	return st, nil
}
