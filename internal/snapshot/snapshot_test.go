package snapshot

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"dps/internal/power"
	"dps/internal/priority"
)

// fillState builds a fully-populated State with value patterns that
// exercise the bitwise contract: NaNs, signed zeros, denormals, extreme
// integers.
func fillState(units, ringCap int, seed int64) *State {
	rng := rand.New(rand.NewSource(seed))
	st := &State{
		Units:              units,
		Seed:               seed,
		BudgetTotal:        power.Watts(55 * units),
		UnitMax:            120,
		UnitMin:            power.Watts(math.Copysign(0, -1)), // -0.0 must round-trip
		Sparse:             true,
		SparseRefreshEvery: 64,

		HasCore:       true,
		Steps:         ^uint64(0) - 7,
		LastRestored:  true,
		ProvDirty:     true,
		HeldAllocated: true,
		RingCap:       ringCap,
		RNGSeed:       seed,
		RNGDraws:      1 << 40,

		HasSparse: true,
		LastDT:    1.0,
		HighCount: units / 3,
		CachedSum: power.Watts(math.NaN()),
		SumValid:  true,

		HasDaemon:   true,
		SavedUnixMS: 1_700_000_000_123,
		Rounds:      987654321,
	}
	words := (units + 63) / 64
	for i := 0; i < units; i++ {
		st.Caps = append(st.Caps, power.Watts(rng.NormFloat64()*40))
		st.Kalman = append(st.Kalman, KalmanState{
			Estimate: power.Watts(rng.Float64() * 100),
			Variance: rng.Float64(),
			Primed:   rng.Intn(2) == 0,
		})
		rs := RingState{
			Head:    rng.Intn(ringCap),
			N:       rng.Intn(ringCap + 1),
			Pushes:  rng.Intn(256),
			Sum:     rng.NormFloat64(),
			SumSq:   rng.Float64(),
			DurSum:  rng.Float64(),
			TailDur: rng.Float64(),
		}
		for j := 0; j < ringCap; j++ {
			rs.Powers = append(rs.Powers, power.Watts(rng.NormFloat64()))
			rs.Durations = append(rs.Durations, power.Seconds(rng.Float64()))
		}
		st.Rings = append(st.Rings, rs)
		st.Prio = append(st.Prio, rng.Intn(3) == 0)
		st.HighFreq = append(st.HighFreq, rng.Intn(4) == 0)
		st.PrevPrio = append(st.PrevPrio, rng.Intn(2) == 0)
		st.Frozen = append(st.Frozen, priority.FrozenStats{
			N:           rng.Intn(ringCap + 1),
			Std:         power.Watts(rng.Float64()),
			Deriv:       power.Watts(rng.NormFloat64()),
			HighFreqNow: rng.Intn(2) == 0,
		})
		st.Reasons = append(st.Reasons, uint8(rng.Intn(6)))
		st.RoundBefore = append(st.RoundBefore, power.Watts(rng.Float64()*55))
		st.LastVal = append(st.LastVal, power.Watts(rng.Float64()*60))
		st.LastStep = append(st.LastStep, rng.Uint64())
		st.Health = append(st.Health, uint8(rng.Intn(3)))
		st.ReportAgeMS = append(st.ReportAgeMS, uint64(rng.Intn(10_000)))
		st.LastCaps = append(st.LastCaps, power.Watts(rng.Float64()*55))
		st.LastPushed = append(st.LastPushed, power.Watts(rng.Float64()*55))
		st.Readings = append(st.Readings, power.Watts(rng.Float64()*150))
	}
	for i := 0; i < words; i++ {
		st.SettledW = append(st.SettledW, rng.Uint64())
		st.CapMovedW = append(st.CapMovedW, rng.Uint64())
	}
	// Mask the tail word down to valid bits, matching producer behavior.
	if tail := uint(units & 63); tail != 0 {
		m := (uint64(1) << tail) - 1
		st.SettledW[words-1] &= m
		st.CapMovedW[words-1] &= m
	}
	return st
}

// eqF64 compares float64s bitwise (NaN == NaN, -0 != +0).
func eqF64(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func assertStateEqual(t *testing.T, want, got *State) {
	t.Helper()
	if got.Units != want.Units || got.Seed != want.Seed ||
		!eqF64(float64(got.BudgetTotal), float64(want.BudgetTotal)) ||
		!eqF64(float64(got.UnitMax), float64(want.UnitMax)) ||
		!eqF64(float64(got.UnitMin), float64(want.UnitMin)) ||
		got.Sparse != want.Sparse || got.SparseRefreshEvery != want.SparseRefreshEvery {
		t.Fatalf("config mismatch: got %+v", got)
	}
	if got.HasCore != want.HasCore || got.HasSparse != want.HasSparse || got.HasDaemon != want.HasDaemon {
		t.Fatalf("presence flags: got %v/%v/%v want %v/%v/%v",
			got.HasCore, got.HasSparse, got.HasDaemon, want.HasCore, want.HasSparse, want.HasDaemon)
	}
	if got.Steps != want.Steps || got.LastRestored != want.LastRestored ||
		got.ProvDirty != want.ProvDirty || got.HeldAllocated != want.HeldAllocated {
		t.Fatalf("core scalars mismatch")
	}
	for u := range want.Caps {
		if !eqF64(float64(got.Caps[u]), float64(want.Caps[u])) {
			t.Fatalf("caps[%d]: got %v want %v", u, got.Caps[u], want.Caps[u])
		}
		if got.Kalman[u].Primed != want.Kalman[u].Primed ||
			!eqF64(float64(got.Kalman[u].Estimate), float64(want.Kalman[u].Estimate)) ||
			!eqF64(got.Kalman[u].Variance, want.Kalman[u].Variance) {
			t.Fatalf("kalman[%d] mismatch", u)
		}
		gw, ww := &got.Rings[u], &want.Rings[u]
		if gw.Head != ww.Head || gw.N != ww.N || gw.Pushes != ww.Pushes ||
			!eqF64(gw.Sum, ww.Sum) || !eqF64(gw.SumSq, ww.SumSq) ||
			!eqF64(gw.DurSum, ww.DurSum) || !eqF64(gw.TailDur, ww.TailDur) {
			t.Fatalf("ring[%d] scalars mismatch", u)
		}
		for j := range ww.Powers {
			if !eqF64(float64(gw.Powers[j]), float64(ww.Powers[j])) ||
				!eqF64(float64(gw.Durations[j]), float64(ww.Durations[j])) {
				t.Fatalf("ring[%d] slot %d mismatch", u, j)
			}
		}
		if got.Prio[u] != want.Prio[u] || got.HighFreq[u] != want.HighFreq[u] || got.PrevPrio[u] != want.PrevPrio[u] {
			t.Fatalf("priority flags[%d] mismatch", u)
		}
		if got.Frozen[u] != want.Frozen[u] {
			t.Fatalf("frozen[%d]: got %+v want %+v", u, got.Frozen[u], want.Frozen[u])
		}
		if got.Reasons[u] != want.Reasons[u] || !eqF64(float64(got.RoundBefore[u]), float64(want.RoundBefore[u])) {
			t.Fatalf("provenance[%d] mismatch", u)
		}
	}
	if got.RNGSeed != want.RNGSeed || got.RNGDraws != want.RNGDraws {
		t.Fatalf("rng: got %d/%d want %d/%d", got.RNGSeed, got.RNGDraws, want.RNGSeed, want.RNGDraws)
	}
	if want.HasSparse {
		if !eqF64(float64(got.LastDT), float64(want.LastDT)) || got.HighCount != want.HighCount ||
			!eqF64(float64(got.CachedSum), float64(want.CachedSum)) || got.SumValid != want.SumValid {
			t.Fatalf("sparse scalars mismatch")
		}
		for i := range want.SettledW {
			if got.SettledW[i] != want.SettledW[i] || got.CapMovedW[i] != want.CapMovedW[i] {
				t.Fatalf("sparse mask word %d mismatch", i)
			}
		}
		for u := range want.LastVal {
			if !eqF64(float64(got.LastVal[u]), float64(want.LastVal[u])) || got.LastStep[u] != want.LastStep[u] {
				t.Fatalf("sparse lastVal/lastStep[%d] mismatch", u)
			}
		}
	}
	if want.HasDaemon {
		if got.SavedUnixMS != want.SavedUnixMS || got.Rounds != want.Rounds {
			t.Fatalf("daemon scalars mismatch")
		}
		for u := range want.Health {
			if got.Health[u] != want.Health[u] || got.ReportAgeMS[u] != want.ReportAgeMS[u] ||
				!eqF64(float64(got.LastCaps[u]), float64(want.LastCaps[u])) ||
				!eqF64(float64(got.LastPushed[u]), float64(want.LastPushed[u])) ||
				!eqF64(float64(got.Readings[u]), float64(want.Readings[u])) {
				t.Fatalf("daemon unit %d mismatch", u)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	for _, units := range []int{1, 64, 96, 200} {
		st := fillState(units, 20, int64(units)+3)
		img := Encode(nil, st)
		got, err := Decode(img)
		if err != nil {
			t.Fatalf("units=%d: decode: %v", units, err)
		}
		assertStateEqual(t, st, got)
	}
}

// TestEncodeByteIdentity is the property test the replication differ
// depends on: encode→decode→encode produces the identical byte stream,
// so section-level comparison of consecutive encodes is meaningful.
func TestEncodeByteIdentity(t *testing.T) {
	st := fillState(96, 20, 11)
	img1 := Encode(nil, st)
	got, err := Decode(img1)
	if err != nil {
		t.Fatal(err)
	}
	img2 := Encode(nil, got)
	if !bytes.Equal(img1, img2) {
		t.Fatalf("encode→decode→encode changed bytes: %d vs %d", len(img1), len(img2))
	}
}

// TestEncodeReuseNoAlloc checks the warm-path contract: re-encoding into
// a retained buffer allocates nothing.
func TestEncodeReuseNoAlloc(t *testing.T) {
	st := fillState(128, 20, 5)
	buf := Encode(nil, st)
	allocs := testing.AllocsPerRun(10, func() {
		buf = Encode(buf, st)
	})
	if allocs != 0 {
		t.Fatalf("warm Encode allocates %v times", allocs)
	}
}

func TestPartialStates(t *testing.T) {
	full := fillState(40, 8, 9)

	configOnly := &State{}
	*configOnly = *full
	configOnly.HasCore, configOnly.HasSparse, configOnly.HasDaemon = false, false, false
	got, err := Decode(Encode(nil, configOnly))
	if err != nil {
		t.Fatalf("config-only: %v", err)
	}
	if got.HasCore || got.HasSparse || got.HasDaemon {
		t.Fatalf("config-only decode reported sections: %+v", got)
	}
	if got.Units != full.Units || got.Seed != full.Seed {
		t.Fatalf("config-only fingerprint lost")
	}

	noDaemon := &State{}
	*noDaemon = *full
	noDaemon.HasDaemon = false
	got, err = Decode(Encode(nil, noDaemon))
	if err != nil {
		t.Fatalf("core+sparse: %v", err)
	}
	if !got.HasCore || !got.HasSparse || got.HasDaemon {
		t.Fatalf("core+sparse flags wrong: %+v", got)
	}
}

func TestUnknownSectionSkipped(t *testing.T) {
	st := fillState(32, 8, 4)
	img := Encode(nil, st)

	// Append a future section (id 0x7777) with a valid CRC; the decoder
	// must skip it and still return the known state.
	var extra []byte
	extra, start := beginSection(img, 0x7777)
	extra = append(extra, []byte("future payload")...)
	extra = endSection(extra, start)

	got, err := Decode(extra)
	if err != nil {
		t.Fatalf("unknown section not skipped: %v", err)
	}
	assertStateEqual(t, st, got)

	// Same section with a corrupted payload byte must fail: unknown ids
	// are skipped, corrupt bytes are not.
	extra[len(extra)-6] ^= 0x01
	if _, err := Decode(extra); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt unknown section decoded: %v", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	st := fillState(48, 8, 6)
	img := Encode(nil, st)

	t.Run("bit flips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), img...)
			pos := rng.Intn(len(mut))
			mut[pos] ^= 1 << uint(rng.Intn(8))
			got, err := Decode(mut)
			if err == nil {
				// A flip inside the header version (downgrade) or a flag
				// byte can legitimately decode; state must then still
				// differ only where permitted. A flip below HeaderSize is
				// the only acceptable silent spot.
				if pos >= HeaderSize {
					t.Fatalf("trial %d: flip at %d decoded silently: %+v", trial, pos, got.Steps)
				}
			}
		}
	})

	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(img); cut += 7 {
			if _, err := Decode(img[:cut]); err == nil {
				t.Fatalf("truncation to %d bytes decoded", cut)
			}
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), img...)
		mut[0] = 'X'
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad magic: %v", err)
		}
	})

	t.Run("future version", func(t *testing.T) {
		mut := append([]byte(nil), img...)
		mut[4] = byte(Version + 1)
		if _, err := Decode(mut); !errors.Is(err, ErrVersion) {
			t.Fatalf("future version: %v", err)
		}
	})

	t.Run("duplicate section", func(t *testing.T) {
		secs, err := Sections(img)
		if err != nil {
			t.Fatal(err)
		}
		dup := append(append([]byte(nil), img...), secs[0].Raw...)
		if _, err := Decode(dup); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("duplicate config section: %v", err)
		}
	})
}

func TestSectionsAndAssemble(t *testing.T) {
	st := fillState(64, 12, 8)
	img := Encode(nil, st)
	secs, err := Sections(img)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []uint16{SecConfig, SecCore, SecCaps, SecKalman, SecRings, SecPriority, SecRNG, SecProv, SecSparse, SecDaemon}
	if len(secs) != len(wantIDs) {
		t.Fatalf("%d sections, want %d", len(secs), len(wantIDs))
	}
	raws := make([][]byte, len(secs))
	for i, s := range secs {
		if s.ID != wantIDs[i] {
			t.Fatalf("section %d id 0x%04x, want 0x%04x", i, s.ID, wantIDs[i])
		}
		raws[i] = s.Raw
	}
	// Reassembling the split sections must reproduce the image exactly —
	// the standby's overlay path depends on it.
	if got := Assemble(nil, raws...); !bytes.Equal(got, img) {
		t.Fatalf("assemble changed bytes")
	}
	// Overlaying an updated section yields a decodable image carrying
	// the update.
	st2 := fillState(64, 12, 8)
	st2.Rounds += 5
	img2 := Encode(nil, st2)
	secs2, err := Sections(img2)
	if err != nil {
		t.Fatal(err)
	}
	raws[len(raws)-1] = secs2[len(secs2)-1].Raw // SecDaemon
	merged, err := Decode(Assemble(nil, raws...))
	if err != nil {
		t.Fatalf("overlay: %v", err)
	}
	if merged.Rounds != st2.Rounds {
		t.Fatalf("overlay lost daemon update: rounds %d want %d", merged.Rounds, st2.Rounds)
	}
}

// FuzzSnapshotDecode asserts the decoder's only failure mode on
// arbitrary input is a returned error: no panics, no runaway
// allocations. Valid images must keep decoding.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DPSS"))
	img := Encode(nil, fillState(8, 4, 2))
	f.Add(img)
	trunc := img[:len(img)/2]
	f.Add(append([]byte(nil), trunc...))
	flip := append([]byte(nil), img...)
	flip[len(flip)/3] ^= 0x40
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		// Successful decodes must re-encode without panicking, and the
		// result must decode again (self-consistency on the happy path).
		if _, err := Decode(Encode(nil, st)); err != nil {
			t.Fatalf("re-encode of decoded state does not decode: %v", err)
		}
	})
}
