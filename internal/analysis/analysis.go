// Package analysis post-processes per-step experiment logs (the tracelog
// CSV format): per-unit power/cap statistics, throttling and priority
// occupancy, cluster-group balance, and ASCII time-series rendering. The
// paper's artifact ships equivalent plotting/analysis scripts for matching
// power data to workloads and computing fairness from the logs.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dps/internal/power"
	"dps/internal/signal"
	"dps/internal/tracelog"
)

// UnitSummary aggregates one unit's trajectory over a whole log.
type UnitSummary struct {
	Unit  power.UnitID
	Steps int
	// MeanPower and MeanCap are time-weighted over the log.
	MeanPower power.Watts
	MeanCap   power.Watts
	MaxPower  power.Watts
	// EnergyJ integrates measured power over the inter-record intervals.
	EnergyJ power.Joules
	// ThrottledFrac is the fraction of steps with power within 95 % of the
	// cap — the unit was being held back.
	ThrottledFrac float64
	// HighPriorityFrac is the fraction of steps DPS marked the unit high
	// priority (0 for other managers).
	HighPriorityFrac float64
	// CapChanges counts steps where the assigned cap moved by ≥ 0.1 W.
	CapChanges int
	// ProminentPeaks counts prominent power peaks (> 20 W) in the unit's
	// series — the high-frequency signature.
	ProminentPeaks int
	// StdDevPower is the population standard deviation of the unit's power
	// series — the other half of the high-frequency signature (the
	// priority module clears a sticky flag only when both the peak count
	// and the stddev fall below threshold).
	StdDevPower power.Watts
}

// Summary is a whole log digested.
type Summary struct {
	Units []UnitSummary
	// Duration is the time span covered by the log.
	Duration power.Seconds
	// Steps is the number of distinct timestamps.
	Steps int
	// MaxCapSum is the largest observed sum of caps at one timestamp; it
	// must never exceed the experiment's budget.
	MaxCapSum power.Watts
}

// Summarize digests a record stream. Records may arrive in any order; they
// are grouped by timestamp and unit. An empty input is an error.
func Summarize(recs []tracelog.Record) (Summary, error) {
	if len(recs) == 0 {
		return Summary{}, fmt.Errorf("analysis: empty log")
	}
	byUnit := map[power.UnitID][]tracelog.Record{}
	timestamps := map[power.Seconds]power.Watts{} // t → cap sum
	var tMin, tMax power.Seconds
	tMin = recs[0].Time
	for _, r := range recs {
		byUnit[r.Unit] = append(byUnit[r.Unit], r)
		timestamps[r.Time] += r.Cap
		if r.Time < tMin {
			tMin = r.Time
		}
		if r.Time > tMax {
			tMax = r.Time
		}
	}

	s := Summary{Duration: tMax - tMin, Steps: len(timestamps)}
	for _, sum := range timestamps {
		if sum > s.MaxCapSum {
			s.MaxCapSum = sum
		}
	}

	units := make([]power.UnitID, 0, len(byUnit))
	for u := range byUnit {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })

	for _, u := range units {
		series := byUnit[u]
		sort.Slice(series, func(i, j int) bool { return series[i].Time < series[j].Time })
		us := UnitSummary{Unit: u, Steps: len(series)}
		var powSum, capSum float64
		throttled := 0
		highPrio := 0
		powers := make([]power.Watts, len(series))
		var prevCap power.Watts
		for i, r := range series {
			powers[i] = r.Power
			powSum += float64(r.Power)
			capSum += float64(r.Cap)
			if r.Power > us.MaxPower {
				us.MaxPower = r.Power
			}
			if r.Cap > 0 && r.Power >= r.Cap*0.95 {
				throttled++
			}
			if r.HighPriority {
				highPrio++
			}
			if i > 0 {
				dt := float64(r.Time - series[i-1].Time)
				if dt > 0 {
					us.EnergyJ += power.Joules(float64(r.Power) * dt)
				}
				if math.Abs(float64(r.Cap-prevCap)) >= 0.1 {
					us.CapChanges++
				}
			}
			prevCap = r.Cap
		}
		n := float64(len(series))
		us.MeanPower = power.Watts(powSum / n)
		us.MeanCap = power.Watts(capSum / n)
		us.ThrottledFrac = float64(throttled) / n
		us.HighPriorityFrac = float64(highPrio) / n
		us.ProminentPeaks = signal.CountProminentPeaks(powers, 20)
		us.StdDevPower = signal.StdDev(powers)
		s.Units = append(s.Units, us)
	}
	return s, nil
}

// Group identifies a contiguous unit range, e.g. one cluster.
type Group struct {
	Name  string
	First power.UnitID
	Count int
}

// contains reports whether u falls in the group.
func (g Group) contains(u power.UnitID) bool {
	return u >= g.First && int(u) < int(g.First)+g.Count
}

// GroupStats aggregates a summary over a unit group.
type GroupStats struct {
	Group Group
	// MeanPower and MeanCap average the member units' means.
	MeanPower power.Watts
	MeanCap   power.Watts
	// ThrottledFrac averages member throttling occupancy — the proxy for
	// how hard the group was penalized.
	ThrottledFrac float64
	// EnergyJ totals member energy.
	EnergyJ power.Joules
}

// Balance compares two groups from a digested log. The returned score is
// 1 − |throttledA − throttledB|: the log-derived analogue of the paper's
// fairness (true satisfaction needs uncapped runs, which a deployment log
// cannot contain; throttling occupancy is the observable penalty).
func Balance(s Summary, a, b Group) (GroupStats, GroupStats, float64, error) {
	ga, err := groupStats(s, a)
	if err != nil {
		return GroupStats{}, GroupStats{}, 0, err
	}
	gb, err := groupStats(s, b)
	if err != nil {
		return GroupStats{}, GroupStats{}, 0, err
	}
	score := 1 - math.Abs(ga.ThrottledFrac-gb.ThrottledFrac)
	return ga, gb, score, nil
}

func groupStats(s Summary, g Group) (GroupStats, error) {
	if g.Count <= 0 {
		return GroupStats{}, fmt.Errorf("analysis: group %q has no units", g.Name)
	}
	out := GroupStats{Group: g}
	n := 0
	for _, us := range s.Units {
		if !g.contains(us.Unit) {
			continue
		}
		n++
		out.MeanPower += us.MeanPower
		out.MeanCap += us.MeanCap
		out.ThrottledFrac += us.ThrottledFrac
		out.EnergyJ += us.EnergyJ
	}
	if n == 0 {
		return GroupStats{}, fmt.Errorf("analysis: group %q matches no logged units", g.Name)
	}
	out.MeanPower /= power.Watts(n)
	out.MeanCap /= power.Watts(n)
	out.ThrottledFrac /= float64(n)
	return out, nil
}

// Series extracts one unit's (time, power, cap) trajectory in time order.
func Series(recs []tracelog.Record, unit power.UnitID) (times []power.Seconds, powers, caps []power.Watts) {
	var filtered []tracelog.Record
	for _, r := range recs {
		if r.Unit == unit {
			filtered = append(filtered, r)
		}
	}
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].Time < filtered[j].Time })
	for _, r := range filtered {
		times = append(times, r.Time)
		powers = append(powers, r.Power)
		caps = append(caps, r.Cap)
	}
	return times, powers, caps
}

// RenderSeries draws an ASCII strip chart of a unit's power (#) under its
// cap (-), downsampled to width columns.
func RenderSeries(powers, caps []power.Watts, width int) string {
	if len(powers) == 0 {
		return "(empty series)\n"
	}
	if width <= 0 {
		width = 80
	}
	max := power.Watts(1)
	for i := range powers {
		if powers[i] > max {
			max = powers[i]
		}
		if i < len(caps) && caps[i] > max {
			max = caps[i]
		}
	}
	const bands = 10
	cols := len(powers)
	if cols > width {
		cols = width
	}
	grid := make([][]byte, bands)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	level := func(w power.Watts) int {
		l := int(float64(w) / float64(max) * bands)
		if l >= bands {
			l = bands - 1
		}
		if l < 0 {
			l = 0
		}
		return l
	}
	for c := 0; c < cols; c++ {
		idx := c * len(powers) / cols
		pl := level(powers[idx])
		for r := 0; r <= pl; r++ {
			grid[bands-1-r][c] = '#'
		}
		if idx < len(caps) {
			cl := level(caps[idx])
			if grid[bands-1-cl][c] == ' ' {
				grid[bands-1-cl][c] = '-'
			}
		}
	}
	var b strings.Builder
	for r, row := range grid {
		fmt.Fprintf(&b, "%5.0fW |%s|\n", float64(max)*float64(bands-r)/bands, row)
	}
	return b.String()
}

// FormatSummary renders the per-unit table.
func FormatSummary(s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "log: %d steps over %.0f s, max cap sum %.1f W\n", s.Steps, s.Duration, s.MaxCapSum)
	fmt.Fprintf(&b, "%-5s %9s %9s %9s %9s %10s %9s %9s %7s\n",
		"unit", "meanW", "maxW", "stdW", "meanCapW", "throttled", "highPrio", "capMoves", "peaks")
	for _, u := range s.Units {
		fmt.Fprintf(&b, "%-5d %9.1f %9.1f %9.1f %9.1f %9.1f%% %8.1f%% %9d %7d\n",
			u.Unit, u.MeanPower, u.MaxPower, u.StdDevPower, u.MeanCap,
			u.ThrottledFrac*100, u.HighPriorityFrac*100, u.CapChanges, u.ProminentPeaks)
	}
	return b.String()
}
