package analysis

import (
	"strings"
	"testing"

	"dps/internal/power"
	"dps/internal/tracelog"
)

// makeLog builds a two-unit log: unit 0 throttled at its cap, unit 1 idle
// far below its cap.
func makeLog(steps int) []tracelog.Record {
	var recs []tracelog.Record
	for t := 0; t < steps; t++ {
		recs = append(recs,
			tracelog.Record{Time: power.Seconds(t), Unit: 0, Power: 110, Cap: 110, HighPriority: true},
			tracelog.Record{Time: power.Seconds(t), Unit: 1, Power: 30, Cap: 90},
		)
	}
	return recs
}

func TestSummarize(t *testing.T) {
	sum, err := Summarize(makeLog(10))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Steps != 10 {
		t.Errorf("Steps = %d", sum.Steps)
	}
	if sum.Duration != 9 {
		t.Errorf("Duration = %v", sum.Duration)
	}
	if sum.MaxCapSum != 200 {
		t.Errorf("MaxCapSum = %v", sum.MaxCapSum)
	}
	if len(sum.Units) != 2 {
		t.Fatalf("units: %d", len(sum.Units))
	}
	u0, u1 := sum.Units[0], sum.Units[1]
	if u0.Unit != 0 || u1.Unit != 1 {
		t.Fatalf("unit order: %d %d", u0.Unit, u1.Unit)
	}
	if u0.MeanPower != 110 || u0.ThrottledFrac != 1 || u0.HighPriorityFrac != 1 {
		t.Errorf("unit 0 summary: %+v", u0)
	}
	if u1.ThrottledFrac != 0 || u1.HighPriorityFrac != 0 {
		t.Errorf("unit 1 summary: %+v", u1)
	}
	// Energy: 9 intervals × 110 W for unit 0.
	if u0.EnergyJ != 990 {
		t.Errorf("unit 0 energy = %v, want 990", u0.EnergyJ)
	}
	if u0.CapChanges != 0 {
		t.Errorf("unit 0 cap changes = %d", u0.CapChanges)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize accepted an empty log")
	}
}

func TestSummarizeCountsCapChanges(t *testing.T) {
	recs := []tracelog.Record{
		{Time: 0, Unit: 0, Power: 50, Cap: 100},
		{Time: 1, Unit: 0, Power: 50, Cap: 110},
		{Time: 2, Unit: 0, Power: 50, Cap: 110},
		{Time: 3, Unit: 0, Power: 50, Cap: 90},
	}
	sum, err := Summarize(recs)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Units[0].CapChanges; got != 2 {
		t.Errorf("CapChanges = %d, want 2", got)
	}
}

func TestBalance(t *testing.T) {
	sum, err := Summarize(makeLog(5))
	if err != nil {
		t.Fatal(err)
	}
	a := Group{Name: "A", First: 0, Count: 1}
	b := Group{Name: "B", First: 1, Count: 1}
	sa, sb, score, err := Balance(sum, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// A fully throttled, B never: the balance score is 0.
	if score != 0 {
		t.Errorf("score = %v, want 0 for maximal imbalance", score)
	}
	if sa.MeanPower != 110 || sb.MeanPower != 30 {
		t.Errorf("group means: %v %v", sa.MeanPower, sb.MeanPower)
	}
	// Symmetric groups score 1.
	_, _, same, err := Balance(sum, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if same != 1 {
		t.Errorf("self-balance = %v, want 1", same)
	}
}

func TestBalanceErrors(t *testing.T) {
	sum, _ := Summarize(makeLog(2))
	if _, _, _, err := Balance(sum, Group{Name: "x", Count: 0}, Group{Name: "y", First: 1, Count: 1}); err == nil {
		t.Error("Balance accepted an empty group")
	}
	if _, _, _, err := Balance(sum, Group{Name: "x", First: 50, Count: 2}, Group{Name: "y", First: 1, Count: 1}); err == nil {
		t.Error("Balance accepted a group with no logged units")
	}
}

func TestSeries(t *testing.T) {
	recs := makeLog(4)
	times, powers, caps := Series(recs, 1)
	if len(times) != 4 || len(powers) != 4 || len(caps) != 4 {
		t.Fatalf("series lengths %d/%d/%d", len(times), len(powers), len(caps))
	}
	for i := range powers {
		if powers[i] != 30 || caps[i] != 90 {
			t.Errorf("sample %d = %v/%v", i, powers[i], caps[i])
		}
	}
	if _, p, _ := Series(recs, 99); p != nil {
		t.Error("series for an absent unit not empty")
	}
}

func TestRenderSeries(t *testing.T) {
	powers := []power.Watts{10, 50, 100, 150}
	caps := []power.Watts{160, 160, 160, 160}
	out := RenderSeries(powers, caps, 40)
	if !strings.Contains(out, "#") || !strings.Contains(out, "-") {
		t.Errorf("chart missing power or cap marks:\n%s", out)
	}
	if got := RenderSeries(nil, nil, 10); !strings.Contains(got, "empty") {
		t.Errorf("empty series rendering: %q", got)
	}
}

func TestFormatSummary(t *testing.T) {
	sum, _ := Summarize(makeLog(3))
	out := FormatSummary(sum)
	for _, want := range []string{"unit", "throttled", "100.0%", "max cap sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSummary missing %q:\n%s", want, out)
		}
	}
}
