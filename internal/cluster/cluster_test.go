package cluster

import (
	"math"
	"math/rand"
	"testing"

	"dps/internal/power"
	"dps/internal/workload"
)

// quietConfig returns a small, noise-free machine for exact arithmetic.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.Clusters = 2
	cfg.NodesPerCluster = 1
	cfg.SocketsPerNode = 2
	cfg.Rapl.NoiseStdDev = 0
	cfg.DemandJitterSD = 0
	return cfg
}

// specOf builds a jitter-free workload from an explicit phase list.
func specOf(phases ...workload.Phase) *workload.Spec {
	return workload.Custom("synthetic", phases)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Clusters = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero clusters")
	}
	bad = DefaultConfig()
	bad.DemandJitterSD = -1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted negative jitter")
	}
	if got := DefaultConfig().Units(); got != 20 {
		t.Errorf("default Units = %d, want 20 (2×5×2)", got)
	}
}

func TestIdleMachineDrawsIdlePower(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	readings, err := m.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	for u, r := range readings {
		if r != quietConfig().Rapl.IdlePower {
			t.Errorf("idle unit %d reads %v W, want the idle floor %v", u, r, quietConfig().Rapl.IdlePower)
		}
	}
}

func TestApplyCapsClampsThroughDevices(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	caps := power.NewVector(m.Units(), 500)
	if err := m.ApplyCaps(caps); err != nil {
		t.Fatal(err)
	}
	for u, c := range m.Caps() {
		if c != 165 {
			t.Errorf("cap[%d] = %v, want clamped to TDP", u, c)
		}
	}
	if err := m.ApplyCaps(power.Vector{1}); err == nil {
		t.Error("ApplyCaps accepted a short vector")
	}
}

func TestWorkloadDrivesDemandAndProgress(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := specOf(workload.Phase{Demand: 150, Work: 10})
	run := workload.NewRun(spec, rand.New(rand.NewSource(1)))
	m.Cluster(0).SetRun(run)

	// Uncapped: finishes in exactly 10 steps.
	steps := 0
	for !run.Done() && steps < 50 {
		if _, err := m.Step(1); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if steps != 10 {
		t.Errorf("uncapped run took %d steps, want 10", steps)
	}
	if got := run.Elapsed(); math.Abs(float64(got)-10) > 1e-9 {
		t.Errorf("Elapsed = %v, want 10", got)
	}
}

func TestCappedRunSlowsDown(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := specOf(workload.Phase{Demand: 150, Work: 10})
	run := workload.NewRun(spec, rand.New(rand.NewSource(1)))
	m.Cluster(0).SetRun(run)
	caps := power.NewVector(m.Units(), 110)
	if err := m.ApplyCaps(caps); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !run.Done() && steps < 100 {
		m.Step(1)
		steps++
	}
	perf := workload.DefaultPerfModel()
	want := int(math.Ceil(10 / perf.Speed(110, 150)))
	if steps != want {
		t.Errorf("capped run took %d steps, want %d", steps, want)
	}
}

func TestStragglerGatesWholeCluster(t *testing.T) {
	// BSP semantics: one starved socket slows the entire cluster's run.
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := specOf(workload.Phase{Demand: 150, Work: 10})
	run := workload.NewRun(spec, rand.New(rand.NewSource(1)))
	m.Cluster(0).SetRun(run)
	caps := power.NewVector(m.Units(), 165)
	caps[1] = 80 // the straggler
	if err := m.ApplyCaps(caps); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !run.Done() && steps < 100 {
		m.Step(1)
		steps++
	}
	perf := workload.DefaultPerfModel()
	want := int(math.Ceil(10 / perf.Speed(80, 150)))
	if steps != want {
		t.Errorf("straggled run took %d steps, want %d (gated by the slow socket)", steps, want)
	}
}

func TestReadingsReflectCapsAndDemand(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := specOf(workload.Phase{Demand: 150, Work: 1000})
	m.Cluster(0).SetRun(workload.NewRun(spec, rand.New(rand.NewSource(1))))
	caps := power.NewVector(m.Units(), 110)
	m.ApplyCaps(caps)
	readings, err := m.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0 (units 0,1) capped at 110 with demand 150: draws 110.
	for _, u := range m.Cluster(0).Units() {
		if readings[u] != 110 {
			t.Errorf("unit %d reads %v, want the cap 110", u, readings[u])
		}
	}
	// Cluster 1 idle: idle power.
	for _, u := range m.Cluster(1).Units() {
		if readings[u] != 20 {
			t.Errorf("idle unit %d reads %v, want 20", u, readings[u])
		}
	}
	// True demands visible to the oracle only.
	d := m.TrueDemands()
	for _, u := range m.Cluster(0).Units() {
		if d[u] != 150 {
			t.Errorf("true demand[%d] = %v, want 150", u, d[u])
		}
	}
}

func TestRunMeanPowerAccounting(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := specOf(workload.Phase{Demand: 150, Work: 1000})
	cl := m.Cluster(0)
	cl.SetRun(workload.NewRun(spec, rand.New(rand.NewSource(1))))
	caps := power.NewVector(m.Units(), 110)
	m.ApplyCaps(caps)
	for i := 0; i < 10; i++ {
		m.Step(1)
	}
	if got := cl.RunMeanPower(); math.Abs(float64(got)-110) > 1e-6 {
		t.Errorf("RunMeanPower = %v, want 110", got)
	}
	if got := cl.RunWall(); got != 10 {
		t.Errorf("RunWall = %v, want 10", got)
	}
	cl.SetRun(nil)
	if cl.RunMeanPower() != 0 || cl.RunWall() != 0 {
		t.Error("per-run accounting not reset by SetRun")
	}
}

func TestStepRejectsBadInterval(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(0); err == nil {
		t.Error("Step(0) did not error")
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() power.Vector {
		cfg := DefaultConfig()
		cfg.Seed = 77
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := specOf(workload.Phase{Demand: 150, Work: 500})
		m.Cluster(0).SetRun(workload.NewRun(spec, rand.New(rand.NewSource(1))))
		var last power.Vector
		for i := 0; i < 20; i++ {
			r, err := m.Step(1)
			if err != nil {
				t.Fatal(err)
			}
			last = r.Clone()
		}
		return last
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed machines diverged: %v vs %v", a, b)
		}
	}
}

func TestClusterAccessors(t *testing.T) {
	m, err := NewMachine(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumClusters() != 2 {
		t.Errorf("NumClusters = %d", m.NumClusters())
	}
	cl := m.Cluster(1)
	if cl.Index() != 1 {
		t.Errorf("Index = %d", cl.Index())
	}
	if len(cl.Units()) != 2 {
		t.Errorf("Units = %v", cl.Units())
	}
	if cl.Active() {
		t.Error("idle cluster reports Active")
	}
	if m.Elapsed() != 0 {
		t.Errorf("Elapsed = %v before any step", m.Elapsed())
	}
	m.Step(1)
	if m.Elapsed() != 1 {
		t.Errorf("Elapsed = %v after one step", m.Elapsed())
	}
}
