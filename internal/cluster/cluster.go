// Package cluster composes the simulated evaluation platform: co-located
// clusters of nodes whose sockets are RAPL power-capping units, executing
// workload runs under whatever caps a power manager sets.
//
// The paper's platform is one server node plus ten client nodes forming
// two clusters (5 nodes × 2 sockets each); a workload occupies one whole
// cluster, all of its sockets drawing the workload's phase demand (with
// small per-socket jitter). Progress is gated by the slowest socket — the
// bulk-synchronous behaviour of both Spark stages and NPB kernels — which
// is what makes skewed power allocations within a cluster wasteful and
// fair ones efficient.
package cluster

import (
	"fmt"
	"math/rand"

	"dps/internal/faultinject"
	"dps/internal/power"
	"dps/internal/rapl"
	"dps/internal/workload"
)

// Config describes the simulated machine.
type Config struct {
	// Clusters is the number of co-located clusters (the paper runs 2).
	Clusters int
	// NodesPerCluster is the node count per cluster (paper: 5).
	NodesPerCluster int
	// SocketsPerNode is the power-capping unit count per node (paper: 2).
	SocketsPerNode int
	// Rapl configures every simulated socket (per-socket seeds are derived
	// from Config.Seed).
	Rapl rapl.SimConfig
	// Perf is the power-to-speed model shared by all workloads.
	Perf workload.PerfModel
	// DemandJitterSD is the per-socket, per-step Gaussian jitter applied to
	// the cluster's phase demand, modelling load imbalance across sockets.
	DemandJitterSD power.Watts
	// Seed drives all randomness owned by the machine.
	Seed int64
	// DeviceFaults, if non-nil, wraps every socket's RAPL device with this
	// fault-injection schedule (per-socket seeds derived from Seed) so the
	// machine's meters — and any agent built over FaultDevice — see
	// transient errors, counter spikes, and crash-restarts.
	DeviceFaults *faultinject.DeviceConfig
	// MeterErrorTolerance is how many consecutive failed reads each
	// machine meter rides through on its last good sample. Zero selects a
	// small default when DeviceFaults is set and strict metering
	// otherwise.
	MeterErrorTolerance int
}

// DefaultConfig reproduces the paper's platform: 2 clusters × 5 nodes × 2
// sockets of 165 W TDP.
func DefaultConfig() Config {
	return Config{
		Clusters:        2,
		NodesPerCluster: 5,
		SocketsPerNode:  2,
		Rapl:            rapl.DefaultSimConfig(),
		Perf:            workload.DefaultPerfModel(),
		DemandJitterSD:  1.5,
		Seed:            1,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Clusters <= 0:
		return fmt.Errorf("cluster: non-positive cluster count %d", c.Clusters)
	case c.NodesPerCluster <= 0:
		return fmt.Errorf("cluster: non-positive nodes per cluster %d", c.NodesPerCluster)
	case c.SocketsPerNode <= 0:
		return fmt.Errorf("cluster: non-positive sockets per node %d", c.SocketsPerNode)
	case c.DemandJitterSD < 0:
		return fmt.Errorf("cluster: negative demand jitter %v", c.DemandJitterSD)
	}
	if err := c.Rapl.Validate(); err != nil {
		return err
	}
	return c.Perf.Validate()
}

// Units returns the machine's total power-capping unit count.
func (c Config) Units() int { return c.Clusters * c.NodesPerCluster * c.SocketsPerNode }

// Machine is the simulated co-located system. It is not safe for
// concurrent use; drive it from one goroutine (the simulator loop).
type Machine struct {
	cfg      Config
	devices  []*rapl.SimDevice
	faulted  []rapl.Device // measurement view: devices[i], possibly fault-wrapped
	meters   []*rapl.Meter
	clusters []*Cluster
	rng      *rand.Rand

	demands  power.Vector // per-unit true demand set during the last step
	readings power.Vector // per-unit measured average power of the last step
	elapsed  power.Seconds
}

// NewMachine builds the machine with every socket capped at TDP and no
// workloads loaded.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Units()
	m := &Machine{
		cfg:      cfg,
		devices:  make([]*rapl.SimDevice, n),
		faulted:  make([]rapl.Device, n),
		meters:   make([]*rapl.Meter, n),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		demands:  make(power.Vector, n),
		readings: make(power.Vector, n),
	}
	tolerance := cfg.MeterErrorTolerance
	if tolerance == 0 && cfg.DeviceFaults != nil {
		tolerance = 3
	}
	for i := range m.devices {
		rcfg := cfg.Rapl
		rcfg.Seed = cfg.Seed*31 + int64(i)
		dev, err := rapl.NewSimDevice(rcfg)
		if err != nil {
			return nil, err
		}
		m.devices[i] = dev
		m.faulted[i] = dev
		if cfg.DeviceFaults != nil {
			fcfg := *cfg.DeviceFaults
			fcfg.Seed = cfg.Seed*1_000_003 + int64(i)
			m.faulted[i] = faultinject.WrapDevice(dev, fcfg, nil)
		}
		m.meters[i] = rapl.NewTolerantMeter(m.faulted[i], tolerance)
		if _, err := m.meters[i].Read(1); err != nil {
			return nil, err
		}
	}
	perCluster := cfg.NodesPerCluster * cfg.SocketsPerNode
	m.clusters = make([]*Cluster, cfg.Clusters)
	for c := range m.clusters {
		units := make([]power.UnitID, perCluster)
		for i := range units {
			units[i] = power.UnitID(c*perCluster + i)
		}
		m.clusters[c] = &Cluster{
			machine: m,
			index:   c,
			units:   units,
			jitter:  make([]power.Watts, perCluster),
		}
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Units returns the total unit count.
func (m *Machine) Units() int { return len(m.devices) }

// NumClusters returns the cluster count.
func (m *Machine) NumClusters() int { return len(m.clusters) }

// Cluster returns cluster i.
func (m *Machine) Cluster(i int) *Cluster { return m.clusters[i] }

// Device returns unit u's RAPL device (tests and the daemon path use it).
func (m *Machine) Device(u power.UnitID) *rapl.SimDevice { return m.devices[u] }

// FaultDevice returns unit u's measurement-side device: the fault-wrapped
// view when DeviceFaults is configured, the bare simulated device
// otherwise. Agents built over the machine should meter this view so
// injected device faults reach their RAPL path.
func (m *Machine) FaultDevice(u power.UnitID) rapl.Device { return m.faulted[u] }

// Elapsed returns simulated time since construction.
func (m *Machine) Elapsed() power.Seconds { return m.elapsed }

// ApplyCaps programs every unit's RAPL limit. The devices clamp to the
// hardware range, exactly like the powercap driver.
func (m *Machine) ApplyCaps(caps power.Vector) error {
	if len(caps) != len(m.devices) {
		return fmt.Errorf("cluster: %d caps for %d units", len(caps), len(m.devices))
	}
	for u, c := range caps {
		if err := m.devices[u].SetCap(c); err != nil {
			return fmt.Errorf("cluster: capping unit %d: %w", u, err)
		}
	}
	return nil
}

// Caps reads back the programmed caps from the devices.
func (m *Machine) Caps() power.Vector {
	out := make(power.Vector, len(m.devices))
	for u, d := range m.devices {
		c, err := d.Cap()
		if err != nil {
			// SimDevice.Cap cannot fail; keep the zero value if it ever does.
			continue
		}
		out[u] = c
	}
	return out
}

// Step advances virtual time by dt: workloads progress under the currently
// programmed caps, sockets draw power and accrue (noisy) energy, and the
// per-unit measured average power for the interval is computed. The
// returned readings slice is owned by the machine and overwritten by the
// next Step.
func (m *Machine) Step(dt power.Seconds) (power.Vector, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("cluster: non-positive step %v", dt)
	}
	// Phase 1: refresh demands and program socket loads.
	for _, c := range m.clusters {
		c.refreshJitter(m.rng)
		base := c.currentDemand()
		for i, u := range c.units {
			d := base
			if d > 0 {
				d += c.jitter[i]
				if d < 0 {
					d = 0
				}
			}
			m.demands[u] = d
			m.devices[u].SetLoad(d)
		}
	}

	// Phase 2: advance workload runs, gated by the slowest socket, crossing
	// phase boundaries sub-step.
	for _, c := range m.clusters {
		c.advance(dt)
	}

	// Phase 3: sockets draw power for the interval; meters compute average
	// power; clusters account energy toward their active run.
	for u, dev := range m.devices {
		draw := dev.Advance(dt)
		r, err := m.meters[u].Read(dt)
		if err != nil {
			return nil, err
		}
		m.readings[u] = r
		_ = draw
	}
	for _, c := range m.clusters {
		if c.run != nil {
			for _, u := range c.units {
				c.runEnergy += power.Joules(float64(m.devices[u].LastDraw()) * float64(dt))
			}
			c.runWall += dt
		}
	}
	m.elapsed += dt
	return m.readings, nil
}

// Readings returns the last step's measured per-unit power (noisy, what a
// manager sees). Owned by the machine.
func (m *Machine) Readings() power.Vector { return m.readings }

// TrueDemands returns the last step's per-unit uncapped demand (ground
// truth; only the Oracle baseline may consume it). Owned by the machine.
func (m *Machine) TrueDemands() power.Vector { return m.demands }

// Cluster is one of the machine's co-located clusters: a fixed set of
// units plus at most one active workload run.
type Cluster struct {
	machine *Machine
	index   int
	units   []power.UnitID
	jitter  []power.Watts

	run       *workload.Run
	runEnergy power.Joules
	runWall   power.Seconds
}

// Index returns the cluster's position on the machine.
func (c *Cluster) Index() int { return c.index }

// Units returns the cluster's unit IDs (owned by the cluster).
func (c *Cluster) Units() []power.UnitID { return c.units }

// SetRun installs a workload run, resetting the per-run energy accounting.
// Pass nil to idle the cluster.
func (c *Cluster) SetRun(r *workload.Run) {
	c.run = r
	c.runEnergy = 0
	c.runWall = 0
}

// Run returns the active run (nil when idle).
func (c *Cluster) Run() *workload.Run { return c.run }

// Active reports whether a run is installed and unfinished.
func (c *Cluster) Active() bool { return c.run != nil && !c.run.Done() }

// RunMeanPower returns the average true power per socket over the active
// run so far — the numerator of the satisfaction metric.
func (c *Cluster) RunMeanPower() power.Watts {
	if c.runWall <= 0 || len(c.units) == 0 {
		return 0
	}
	return power.Watts(float64(c.runEnergy) / float64(c.runWall) / float64(len(c.units)))
}

// RunWall returns wall-clock seconds since the active run was installed.
func (c *Cluster) RunWall() power.Seconds { return c.runWall }

func (c *Cluster) refreshJitter(rng *rand.Rand) {
	sd := float64(c.machine.cfg.DemandJitterSD)
	for i := range c.jitter {
		if sd > 0 {
			c.jitter[i] = power.Watts(rng.NormFloat64() * sd)
		} else {
			c.jitter[i] = 0
		}
	}
}

func (c *Cluster) currentDemand() power.Watts {
	if c.run == nil || c.run.Done() {
		return 0
	}
	return c.run.Demand()
}

// advance progresses the cluster's run for dt wall-clock seconds at the
// speed of its slowest socket, re-evaluating the speed at each phase
// boundary.
func (c *Cluster) advance(dt power.Seconds) {
	if c.run == nil {
		return
	}
	perf := c.machine.cfg.Perf
	remaining := dt
	for remaining > 1e-9 && !c.run.Done() {
		d := c.run.Demand()
		speed := 1.0
		for i, u := range c.units {
			du := d
			if du > 0 {
				du += c.jitter[i]
				if du < 0 {
					du = 0
				}
			}
			capU, _ := c.machine.devices[u].Cap()
			if s := perf.Speed(capU, du); s < speed {
				speed = s
			}
		}
		used := c.run.Advance(speed, remaining)
		if used <= 0 {
			break
		}
		remaining -= used
	}
}
