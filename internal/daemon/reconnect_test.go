package daemon

import (
	"context"
	"net"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/rapl"
)

// TestRunWithReconnect kills the controller mid-session and verifies the
// agent rejoins a replacement on its own, continuing to apply caps.
func TestRunWithReconnect(t *testing.T) {
	units := 2
	startServer := func() (*Server, net.Listener) {
		mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
		if err != nil {
			t.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: 10 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv, l
	}

	srv1, l1 := startServer()
	addr := l1.Addr().String()

	devs := make([]rapl.Device, units)
	for i := range devs {
		cfg := rapl.DefaultSimConfig()
		cfg.NoiseStdDev = 0
		d, err := rapl.NewSimDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.SetLoad(120)
		devs[i] = d
	}
	agent, err := NewAgent(AgentConfig{FirstUnit: 0, Devices: devs, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- agent.RunWithReconnect(ctx, "tcp", addr, 20*time.Millisecond, 200*time.Millisecond)
	}()

	// Drive the devices so meters have energy to report.
	driver := time.NewTicker(5 * time.Millisecond)
	defer driver.Stop()
	drive := func(until func() bool, what string) {
		deadline := time.After(5 * time.Second)
		for !until() {
			select {
			case <-driver.C:
				for _, d := range devs {
					d.(*rapl.SimDevice).Advance(0.005)
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %s (applied=%d)", what, agent.Applied())
			}
		}
	}

	drive(func() bool { return agent.Applied() >= 3 }, "initial caps")
	before := agent.Applied()

	// Kill the first controller entirely.
	srv1.Close()
	l1.Close()
	time.Sleep(50 * time.Millisecond)

	// Start a replacement on a new port is not enough — the agent dials
	// the old address, so bind the replacement to it.
	mgr2, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(ServerConfig{Manager: mgr2, Units: units, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var l2 net.Listener
	for i := 0; i < 100; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go srv2.Serve(l2)
	defer func() { srv2.Close(); l2.Close() }()

	drive(func() bool { return agent.Applied() >= before+3 }, "caps after reconnect")

	cancel()
	if err := <-done; err != nil {
		t.Errorf("RunWithReconnect: %v", err)
	}
}
