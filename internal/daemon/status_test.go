package daemon

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"dps/internal/baseline"
	"dps/internal/core"
	"dps/internal/telemetry"
)

func TestStatusEndpoint(t *testing.T) {
	srv := newTestServer(t, 2)
	h := srv.StatusHandler()

	// Before any round: healthz must report not-ready.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("healthz before first round = %d, want 503", rec.Code)
	}

	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status = %d", rec.Code)
	}
	var st Status
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Policy != "DPS" || st.Units != 2 || st.Rounds != 1 {
		t.Errorf("status = %+v", st)
	}
	if len(st.Caps) != 2 || len(st.Readings) != 2 {
		t.Errorf("vectors: caps=%d readings=%d", len(st.Caps), len(st.Readings))
	}
	if st.CapSumW > st.BudgetW+1e-6 {
		t.Errorf("reported cap sum %v exceeds budget %v", st.CapSumW, st.BudgetW)
	}
	if st.Priority == nil {
		t.Error("DPS status missing priorities")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"dps_rounds_total 1",
		"dps_agents 0",
		"dps_budget_watts",
		"dps_unit_power_watts{unit=\"0\"}",
		"dps_unit_cap_watts{unit=\"1\"}",
		"dps_unit_high_priority{unit=\"0\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("healthz after a round = %d", rec.Code)
	}
}

func TestStatusForNonDPSPolicy(t *testing.T) {
	// A constant-allocation server has no priorities to report.
	mgr, err := baseline.NewConstant(2, testBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: 2, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}
	st := srv.Snapshot()
	if st.Priority != nil {
		t.Error("constant policy reported priorities")
	}
	if st.Policy != "Constant" {
		t.Errorf("policy = %q", st.Policy)
	}
}

// maskTimings blanks the values of wall-time histogram series whose
// observations depend on the machine's clock, and the toolchain-dependent
// goversion label of dps_build_info, keeping the exposition's structure
// (names, labels, ordering) exact.
func maskTimings(body string) string {
	lines := strings.Split(body, "\n")
	for i, ln := range lines {
		if strings.HasPrefix(ln, "dps_stage_seconds_bucket") ||
			strings.HasPrefix(ln, "dps_stage_seconds_sum") {
			if j := strings.LastIndexByte(ln, ' '); j >= 0 {
				lines[i] = ln[:j] + " <T>"
			}
		}
		if strings.HasPrefix(ln, "dps_build_info{") {
			lines[i] = strings.Replace(ln, runtime.Version(), "<GO>", 1)
		}
	}
	return strings.Join(lines, "\n")
}

func TestMetricsGolden(t *testing.T) {
	srv := newTestServer(t, 2)
	// Pin the server clock so dps_decide_seconds observes exactly 0 and
	// the flight-recorder timestamps are fixed; only the per-stage
	// histograms (timed inside core.DPS) stay wall-clock dependent and
	// are masked.
	srv.now = func() time.Time { return time.Unix(1700000000, 0).UTC() }
	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	got := maskTimings(rec.Body.String())

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from %s (UPDATE_GOLDEN=1 regenerates):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

func TestStageMetricsAndCounters(t *testing.T) {
	srv := newTestServer(t, 2)
	// Zero readings keep every unit quiet, so each round restores.
	const rounds = 3
	for i := 0; i < rounds; i++ {
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, stage := range []string{"kalman", "stateless", "priority", "readjust"} {
		want := fmt.Sprintf("dps_stage_seconds_count{stage=%q} %d", stage, rounds)
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, want := range []string{
		"dps_restore_total 3",
		"dps_budget_violations_total 0",
		"dps_readjust_exhausted_total 0",
		fmt.Sprintf("dps_decide_seconds_count %d", rounds),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugRoundsEndpoint(t *testing.T) {
	cfg := core.DefaultConfig(2, testBudget(2))
	mgr, err := core.NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: 2, Interval: time.Second, FlightRecorderSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.StatusHandler()

	// Before any round: an empty array, not an error.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Errorf("empty recorder: code=%d body=%q", rec.Code, rec.Body.String())
	}

	for i := 0; i < 5; i++ {
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/rounds = %d", rec.Code)
	}
	var recs []telemetry.RoundRecord
	if err := json.NewDecoder(rec.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	// Ring capacity 3: rounds 1-2 evicted, newest first.
	if len(recs) != 3 {
		t.Fatalf("%d records, want 3 (ring capacity)", len(recs))
	}
	for i, wantRound := range []uint64{5, 4, 3} {
		if recs[i].Round != wantRound {
			t.Errorf("record %d round = %d, want %d", i, recs[i].Round, wantRound)
		}
	}
	top := recs[0]
	if len(top.Units) != 2 {
		t.Fatalf("record carries %d units", len(top.Units))
	}
	if top.Units[1].Unit != 1 || top.Units[1].CapW <= 0 {
		t.Errorf("unit record = %+v", top.Units[1])
	}
	if top.Stages.Total <= 0 {
		t.Errorf("record stage timings = %+v, want positive total", top.Stages)
	}
	if top.CapSumW > top.BudgetW+1e-6 {
		t.Errorf("recorded cap sum %v exceeds budget %v", top.CapSumW, top.BudgetW)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=1", nil))
	recs = nil
	if err := json.NewDecoder(rec.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Round != 5 {
		t.Errorf("n=1 returned %+v", recs)
	}
}
