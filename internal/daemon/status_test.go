package daemon

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dps/internal/baseline"
)

func TestStatusEndpoint(t *testing.T) {
	srv := newTestServer(t, 2)
	h := srv.StatusHandler()

	// Before any round: healthz must report not-ready.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("healthz before first round = %d, want 503", rec.Code)
	}

	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status = %d", rec.Code)
	}
	var st Status
	if err := json.NewDecoder(rec.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Policy != "DPS" || st.Units != 2 || st.Rounds != 1 {
		t.Errorf("status = %+v", st)
	}
	if len(st.Caps) != 2 || len(st.Readings) != 2 {
		t.Errorf("vectors: caps=%d readings=%d", len(st.Caps), len(st.Readings))
	}
	if st.CapSumW > st.BudgetW+1e-6 {
		t.Errorf("reported cap sum %v exceeds budget %v", st.CapSumW, st.BudgetW)
	}
	if st.Priority == nil {
		t.Error("DPS status missing priorities")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"dps_rounds_total 1",
		"dps_agents 0",
		"dps_budget_watts",
		"dps_unit_power_watts{unit=\"0\"}",
		"dps_unit_cap_watts{unit=\"1\"}",
		"dps_unit_high_priority{unit=\"0\"}",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("healthz after a round = %d", rec.Code)
	}
}

func TestStatusForNonDPSPolicy(t *testing.T) {
	// A constant-allocation server has no priorities to report.
	mgr, err := baseline.NewConstant(2, testBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: 2, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}
	st := srv.Snapshot()
	if st.Priority != nil {
		t.Error("constant policy reported priorities")
	}
	if st.Policy != "Constant" {
		t.Errorf("policy = %q", st.Policy)
	}
}
