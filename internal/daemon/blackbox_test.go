package daemon

import (
	"math"
	"net"
	"testing"
	"time"

	"dps/internal/blackbox"
	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
	"dps/internal/telemetry"
	"dps/internal/trace"
)

// counterValue scrapes one unlabeled counter from a registry.
func counterValue(reg *telemetry.Registry, name string) float64 {
	var v float64
	reg.Each(func(s telemetry.Sample) {
		if s.Name == name && s.Labels == "" {
			v = s.Value
		}
	})
	return v
}

// TestServerBlackboxPersistsRounds drives decision rounds on a
// blackbox-enabled server and decodes the on-disk ring back, proving the
// persisted record matches what the controller decided — including
// across a Close/reopen process generation.
func TestServerBlackboxPersistsRounds(t *testing.T) {
	dir := t.TempDir()
	units := 3
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager: mgr, Units: units, Interval: time.Second,
		BlackboxPath: dir, BlackboxRounds: 64,
	})
	if err != nil {
		t.Fatal(err)
	}

	const roundsRun = 5
	var lastCaps power.Vector
	for i := 0; i < roundsRun; i++ {
		caps, err := srv.DecideOnce(1)
		if err != nil {
			t.Fatal(err)
		}
		lastCaps = caps.Clone()
	}
	if got := counterValue(srv.Telemetry(), "dps_blackbox_bytes_total"); got <= 0 {
		t.Errorf("dps_blackbox_bytes_total = %v, want > 0", got)
	}
	if got := counterValue(srv.Telemetry(), "dps_blackbox_dropped_rounds_total"); got != 0 {
		t.Errorf("dps_blackbox_dropped_rounds_total = %v, want 0", got)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	rounds, err := blackbox.Dump(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != roundsRun {
		t.Fatalf("dump recovered %d rounds, want %d", len(rounds), roundsRun)
	}
	for i, r := range rounds {
		if r.Round != uint64(i+1) {
			t.Errorf("record %d has round %d, want %d", i, r.Round, i+1)
		}
		if len(r.Units) != units {
			t.Errorf("round %d carries %d units, want %d", r.Round, len(r.Units), units)
		}
		if r.BudgetW != float64(testBudget(units).Total) {
			t.Errorf("round %d budget %v, want %v", r.Round, r.BudgetW, float64(testBudget(units).Total))
		}
	}
	last := rounds[len(rounds)-1]
	for u := range lastCaps {
		if want := proto.ToDeciwatts(lastCaps[u]); last.Units[u].CapDW != want {
			t.Errorf("unit %d persisted cap %d dW, decided %d dW", u, last.Units[u].CapDW, want)
		}
	}

	// A second server over the same directory starts a new segment and
	// keeps the previous generation's rounds in the ring.
	mgr2, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(ServerConfig{
		Manager: mgr2, Units: units, Interval: time.Second,
		BlackboxPath: dir, BlackboxRounds: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv2.DecideOnce(1); err != nil {
		t.Fatal(err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
	rounds, err = blackbox.Dump(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != roundsRun+1 {
		t.Fatalf("after restart dump recovered %d rounds, want %d", len(rounds), roundsRun+1)
	}
}

// TestEndToEndTraceCtx proves the wire correlation path: a TraceCtx
// agent's cap batches carry the controller round, the agent's cap_apply
// span is tagged with it, and the agent's round cache follows the wire —
// the anchor the fleet-wide trace merge aligns clocks with.
func TestEndToEndTraceCtx(t *testing.T) {
	srv := newTestServer(t, 2)
	agent, sims := newTestAgent(t, 0, 2)
	agent.cfg.TraceCtx = true
	agent.Trace().SetEnabled(true)

	client, server := net.Pipe()
	go srv.Handle(server)
	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}

	for _, d := range sims {
		d.SetLoad(120)
		d.Advance(1)
	}
	if err := agent.ReportOnce(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		r := srv.Readings()
		if math.Abs(float64(r[0]-120)) < 0.06 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("report never landed: %v", r)
		}
		time.Sleep(time.Millisecond)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := srv.DecideOnce(1)
		errc <- err
	}()
	if err := agent.ReceiveCaps(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	if got := agent.lastRound.Load(); got != 1 {
		t.Fatalf("agent lastRound = %d, want 1 (round prefix lost?)", got)
	}
	var sawCapApply bool
	for _, sp := range agent.Trace().Last(0) {
		if sp.Name == trace.SpanCapApply {
			sawCapApply = true
			if sp.Trace != 1 {
				t.Errorf("cap_apply span trace = %d, want round 1", sp.Trace)
			}
		}
	}
	if !sawCapApply {
		t.Error("agent recorded no cap_apply span")
	}
	if got := counterValue(agent.Telemetry(), "dps_agent_trace_spans_total"); got < 1 {
		t.Errorf("dps_agent_trace_spans_total = %v, want >= 1", got)
	}
	client.Close()
}
