package daemon

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
)

// ingestManager is the cheapest possible core.Manager: the ingest
// benchmarks never run a decision round, so the manager only has to
// answer Caps/Budget during server construction. Using a stub instead of
// a real core.DPS keeps 16k-unit benchmark setup out of the timing and
// out of the allocation noise.
type ingestManager struct {
	caps   power.Vector
	budget power.Budget
}

func (m *ingestManager) Name() string                      { return "bench" }
func (m *ingestManager) Decide(core.Snapshot) power.Vector { return m.caps }
func (m *ingestManager) Caps() power.Vector                { return m.caps }
func (m *ingestManager) Budget() power.Budget              { return m.budget }

// ingestBenchUnits is the cluster size of the ingest benchmarks: the
// acceptance bar for the batched data plane is stated at 16k units.
const ingestBenchUnits = 16384

// benchIngest measures server-side ingest throughput: `conns` agent
// connections over in-memory pipes, each owning `unitsPerConn` units,
// each writing pre-encoded report frames as fast as the server consumes
// them. One benchmark iteration lands one full reading per unit
// (ingestBenchUnits readings). writeFrames writes one full refresh for a
// connection (its pre-encoded bytes) and is the only per-mode code.
func benchIngest(b *testing.B, conns, unitsPerConn int, handshake func(c net.Conn, first power.UnitID, n int) ([]byte, error)) {
	units := conns * unitsPerConn
	if units != ingestBenchUnits {
		b.Fatalf("conns*unitsPerConn = %d, want %d", units, ingestBenchUnits)
	}
	mgr := &ingestManager{
		caps:   make(power.Vector, units),
		budget: power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10},
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	type client struct {
		conn  net.Conn
		frame []byte
	}
	clients := make([]client, conns)
	for i := range clients {
		cc, sc := net.Pipe()
		go srv.Handle(sc)
		frame, err := handshake(cc, power.UnitID(i*unitsPerConn), unitsPerConn)
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = client{conn: cc, frame: frame}
	}
	defer func() {
		for _, c := range clients {
			c.conn.Close()
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(conn net.Conn, frame []byte) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Write(frame); err != nil {
					b.Error(err)
					return
				}
			}
		}(c.conn, c.frame)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(conns), "conns")
	b.ReportMetric(float64(ingestBenchUnits)*float64(b.N)/b.Elapsed().Seconds(), "readings/s")
}

// rawHandshake performs a legacy (v1, capability-free) handshake and
// returns one pre-encoded raw report frame: unitsPerConn bare 3-byte
// records, no header — the wire format every pre-batch agent speaks.
func rawHandshake(c net.Conn, first power.UnitID, n int) ([]byte, error) {
	if err := proto.WriteHello(c, proto.Hello{FirstUnit: first, Units: n}); err != nil {
		return nil, err
	}
	if err := rawReadAck(c); err != nil {
		return nil, err
	}
	frame := make([]byte, n*proto.RecordSize)
	for i := 0; i < n; i++ {
		proto.PutRecord(frame[i*proto.RecordSize:], proto.Record{
			LocalUnit: uint8(i), Value: proto.ToDeciwatts(100.5),
		})
	}
	return frame, nil
}

// BenchmarkIngestPerReading is the per-reading-frame baseline the batch
// plane is measured against: one connection per unit, so every 3-byte
// reading costs its own socket write, frame read, and ingest lock.
func BenchmarkIngestPerReading(b *testing.B) {
	benchIngest(b, ingestBenchUnits, 1, rawHandshake)
}

// BenchmarkIngestNodeFrame is the pre-batch deployed shape: one
// connection per 128-unit node, readings amortized into one raw frame.
func BenchmarkIngestNodeFrame(b *testing.B) {
	benchIngest(b, ingestBenchUnits/128, 128, rawHandshake)
}

// batchHandshake negotiates a v2 batch session and returns one
// pre-encoded full-refresh batch frame (header, count, unitsPerConn
// records). The client session is released immediately: the benchmark
// loop writes raw pre-encoded bytes, it never reads caps.
func batchHandshake(c net.Conn, first power.UnitID, n int) ([]byte, error) {
	sess, err := proto.Connect(c, proto.Hello{FirstUnit: first, Units: n, Batch: true})
	if err != nil {
		return nil, err
	}
	sess.Release()
	recs := make([]proto.Record, n)
	for i := range recs {
		recs[i] = proto.Record{LocalUnit: uint8(i), Value: proto.ToDeciwatts(100.5)}
	}
	var buf bytes.Buffer
	if err := proto.WriteBatchFrame(&buf, recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// deltaHandshake negotiates a batch session and returns one sparse
// delta frame: 8 of the connection's units carried, the rest asserted
// unchanged by omission. One iteration still refreshes every unit (an
// omitted unit is live information), so readings/s stays comparable.
func deltaHandshake(c net.Conn, first power.UnitID, n int) ([]byte, error) {
	sess, err := proto.Connect(c, proto.Hello{FirstUnit: first, Units: n, Batch: true})
	if err != nil {
		return nil, err
	}
	sess.Release()
	recs := make([]proto.Record, 0, 8)
	for i := 0; i < n && len(recs) < cap(recs); i += n / 8 {
		recs = append(recs, proto.Record{LocalUnit: uint8(i), Value: proto.ToDeciwatts(100.5)})
	}
	var buf bytes.Buffer
	if err := proto.WriteBatchFrame(&buf, recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// BenchmarkIngestBatchNode is the batched data plane at the deployed
// shape: one v2 connection per 128-unit node, each refresh one framed
// batch carrying all 128 records.
func BenchmarkIngestBatchNode(b *testing.B) {
	benchIngest(b, ingestBenchUnits/128, 128, batchHandshake)
}

// BenchmarkIngestBatchDelta is the event-driven steady state: one v2
// connection per 128-unit node, each interval a sparse 8-record delta
// (quiet units suppressed at the agent).
func BenchmarkIngestBatchDelta(b *testing.B) {
	benchIngest(b, ingestBenchUnits/128, 128, deltaHandshake)
}
