package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"

	"dps/internal/core"
	"dps/internal/power"
)

// Status is the controller's observable state, served as JSON for
// dashboards and scrapers. Every deployed power manager needs this view:
// what each socket reported, what cap it was assigned, and whether the
// budget holds.
type Status struct {
	Policy   string    `json:"policy"`
	Units    int       `json:"units"`
	Agents   int       `json:"agents"`
	Rounds   uint64    `json:"rounds"`
	BudgetW  float64   `json:"budget_w"`
	CapSumW  float64   `json:"cap_sum_w"`
	Readings []float64 `json:"readings_w"`
	Caps     []float64 `json:"caps_w"`
	Priority []bool    `json:"high_priority,omitempty"`
	Restored bool      `json:"restored,omitempty"`
}

// Snapshot assembles the current Status.
func (s *Server) Snapshot() Status {
	s.mu.Lock()
	readings := s.readings.Clone()
	agents := len(s.conns)
	rounds := s.rounds
	caps := s.lastCaps.Clone()
	s.mu.Unlock()

	st := Status{
		Policy:   s.cfg.Manager.Name(),
		Units:    s.cfg.Units,
		Agents:   agents,
		Rounds:   rounds,
		BudgetW:  float64(s.cfg.Manager.Budget().Total),
		Readings: toFloats(readings),
		Caps:     toFloats(caps),
		CapSumW:  float64(caps.Sum()),
	}
	if d, ok := s.cfg.Manager.(*core.DPS); ok {
		// Priorities are read between decision rounds; the slice is only
		// mutated inside Decide, which Serve single-threads.
		st.Priority = append([]bool(nil), d.Priorities()...)
		st.Restored = d.Restored()
	}
	return st
}

func toFloats(v power.Vector) []float64 {
	out := make([]float64, len(v))
	for i, w := range v {
		out[i] = float64(w)
	}
	return out
}

// StatusHandler returns an http.Handler serving:
//
//	GET /status   controller state as JSON
//	GET /metrics  Prometheus-style plaintext gauges
//	GET /healthz  200 once at least one decision round has run
func (s *Server) StatusHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		st := s.Snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP dps_rounds_total Decision rounds completed.\n")
		fmt.Fprintf(w, "# TYPE dps_rounds_total counter\n")
		fmt.Fprintf(w, "dps_rounds_total %d\n", st.Rounds)
		fmt.Fprintf(w, "# HELP dps_agents Connected node agents.\n")
		fmt.Fprintf(w, "# TYPE dps_agents gauge\n")
		fmt.Fprintf(w, "dps_agents %d\n", st.Agents)
		fmt.Fprintf(w, "# HELP dps_budget_watts Cluster-wide power budget.\n")
		fmt.Fprintf(w, "# TYPE dps_budget_watts gauge\n")
		fmt.Fprintf(w, "dps_budget_watts %g\n", st.BudgetW)
		fmt.Fprintf(w, "# HELP dps_cap_sum_watts Sum of assigned caps.\n")
		fmt.Fprintf(w, "# TYPE dps_cap_sum_watts gauge\n")
		fmt.Fprintf(w, "dps_cap_sum_watts %g\n", st.CapSumW)
		fmt.Fprintf(w, "# HELP dps_unit_power_watts Last reported power per unit.\n")
		fmt.Fprintf(w, "# TYPE dps_unit_power_watts gauge\n")
		for u, p := range st.Readings {
			fmt.Fprintf(w, "dps_unit_power_watts{unit=\"%d\"} %g\n", u, p)
		}
		fmt.Fprintf(w, "# HELP dps_unit_cap_watts Assigned cap per unit.\n")
		fmt.Fprintf(w, "# TYPE dps_unit_cap_watts gauge\n")
		for u, c := range st.Caps {
			fmt.Fprintf(w, "dps_unit_cap_watts{unit=\"%d\"} %g\n", u, c)
		}
		if st.Priority != nil {
			fmt.Fprintf(w, "# HELP dps_unit_high_priority DPS priority flag per unit.\n")
			fmt.Fprintf(w, "# TYPE dps_unit_high_priority gauge\n")
			for u, hp := range st.Priority {
				v := 0
				if hp {
					v = 1
				}
				fmt.Fprintf(w, "dps_unit_high_priority{unit=\"%d\"} %d\n", u, v)
			}
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Rounds() == 0 {
			http.Error(w, "no decision rounds yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}
