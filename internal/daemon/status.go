package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dps/internal/core"
	"dps/internal/power"
)

// Status is the controller's observable state, served as JSON for
// dashboards and scrapers. Every deployed power manager needs this view:
// what each socket reported, what cap it was assigned, and whether the
// budget holds.
type Status struct {
	Policy string `json:"policy"`
	Units  int    `json:"units"`
	Agents int    `json:"agents"`
	Rounds uint64 `json:"rounds"`
	// UptimeRounds counts rounds decided by this process; StateAgeRounds
	// counts rounds the controller state has accumulated, including rounds
	// inherited through a snapshot restore or standby takeover. On a cold
	// boot the three round counters coincide.
	UptimeRounds   uint64    `json:"uptime_rounds"`
	StateAgeRounds uint64    `json:"state_age_rounds"`
	BudgetW        float64   `json:"budget_w"`
	CapSumW        float64   `json:"cap_sum_w"`
	Readings       []float64 `json:"readings_w"`
	Caps           []float64 `json:"caps_w"`
	Priority       []bool    `json:"high_priority,omitempty"`
	Restored       bool      `json:"restored,omitempty"`
	// Health is the per-unit degraded-mode state ("fresh"/"stale"/"dead");
	// omitted while health tracking is disabled.
	Health     []string `json:"health,omitempty"`
	StaleUnits int      `json:"stale_units,omitempty"`
	DeadUnits  int      `json:"dead_units,omitempty"`
	// Sparse-round work counters from the most recent decision round:
	// units the snapshot marked changed, units the controller skipped as
	// settled, and the dirty fraction. All omitted on dense controllers.
	DirtyUnits   int     `json:"dirty_units,omitempty"`
	SkippedUnits int     `json:"skipped_units,omitempty"`
	DirtyFrac    float64 `json:"dirty_frac,omitempty"`
	// AlertsFiring is the number of watchdog rules currently firing;
	// omitted (0) when the watchdog is disabled or everything is healthy.
	AlertsFiring int `json:"alerts_firing,omitempty"`
}

// Snapshot assembles the current Status. It reads only the server's own
// round cache, never the controller: a /status scrape may overlap a
// decision round, and the controller's accessors are not synchronized.
func (s *Server) Snapshot() Status {
	s.imu.Lock()
	readings := s.readings.Clone()
	s.imu.Unlock()
	rounds := s.rounds.Load()

	s.mu.Lock()
	agents := len(s.conns)
	caps := s.lastCaps.Clone()
	var prio []bool
	if s.lastPrio != nil {
		prio = append([]bool(nil), s.lastPrio...)
	}
	restored := s.lastRestored
	dirtyUnits, skippedUnits, dirtyFrac := s.lastDirtyUnits, s.lastSkippedUnits, s.lastDirtyFrac
	var health []string
	var stale, dead int
	if s.health != nil {
		health = make([]string, len(s.health))
		for u, h := range s.health {
			health[u] = h.String()
			switch h {
			case core.HealthStale:
				stale++
			case core.HealthDead:
				dead++
			}
		}
	}
	s.mu.Unlock()

	return Status{
		Policy:         s.cfg.Manager.Name(),
		Units:          s.cfg.Units,
		Agents:         agents,
		Rounds:         rounds,
		UptimeRounds:   rounds - s.inheritedRounds.Load(),
		StateAgeRounds: rounds,
		BudgetW:        float64(s.cfg.Manager.Budget().Total),
		Readings:       toFloats(readings),
		Caps:           toFloats(caps),
		CapSumW:        float64(caps.Sum()),
		Priority:       prio,
		Restored:       restored,
		Health:         health,
		StaleUnits:     stale,
		DeadUnits:      dead,
		DirtyUnits:     dirtyUnits,
		SkippedUnits:   skippedUnits,
		DirtyFrac:      dirtyFrac,
		AlertsFiring:   s.watcher.FiringCount(),
	}
}

func toFloats(v power.Vector) []float64 {
	out := make([]float64, len(v))
	for i, w := range v {
		out[i] = float64(w)
	}
	return out
}

// WhyRecord is one answer row of GET /debug/why: a round in which the
// queried unit's cap was changed by some module, and why.
type WhyRecord struct {
	Round     uint64    `json:"round"`
	Time      time.Time `json:"time"`
	Reason    string    `json:"reason"`
	CapW      float64   `json:"cap_w"`
	CapDeltaW float64   `json:"cap_delta_w"`
	ReadingW  float64   `json:"reading_w"`
	Health    string    `json:"health,omitempty"`
}

// Why answers "why did unit u's cap change?" from the flight recorder:
// the newest-first list of recorded rounds in which some module moved the
// unit's cap (or pinned it against the manager), each with its provenance
// reason. n <= 0 scans every held round.
func (s *Server) Why(u, n int) []WhyRecord {
	out := []WhyRecord{}
	for _, rec := range s.recorder.Last(n) {
		if u >= len(rec.Units) {
			continue
		}
		ur := rec.Units[u]
		if ur.Reason == "" {
			continue
		}
		out = append(out, WhyRecord{
			Round:     rec.Round,
			Time:      rec.Time,
			Reason:    ur.Reason,
			CapW:      ur.CapW,
			CapDeltaW: ur.CapDeltaW,
			ReadingW:  ur.ReadingW,
			Health:    ur.Health,
		})
	}
	return out
}

// StatusHandler returns the daemon's HTTP mux:
//
//	GET /status        controller state as JSON
//	GET /metrics       the telemetry registry in Prometheus text format
//	GET /healthz       200 once at least one decision round has run
//	GET /alerts        watchdog alert states as JSON ([] when disabled)
//	GET /debug/rounds  the decision flight recorder as JSON (?n=K&unit=U;
//	                   last= is an accepted alias for n=)
//	GET /debug/trace   recorded spans as Chrome trace_event JSON (?n=N;
//	                   last= is an accepted alias for n=)
//	GET /debug/why     cap-change provenance for one unit (?unit=K&n=N)
//	GET /debug/series  embedded metric history as JSON (?name=K&last=5m;
//	                   404 when the series store is disabled)
//
// Returning the concrete mux lets the daemon binary mount extra debug
// handlers (net/http/pprof) on the same listener.
func (s *Server) StatusHandler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("GET /metrics", s.tel.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Rounds() == 0 {
			http.Error(w, "no decision rounds yet", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("GET /alerts", s.watcher.Handler())
	mux.Handle("GET /debug/rounds", s.recorder.Handler())
	mux.Handle("GET /debug/trace", s.tracer.Handler())
	if s.store != nil {
		mux.Handle("GET /debug/series", s.store.Handler(func() time.Time { return s.now() }))
	}
	mux.HandleFunc("GET /debug/why", func(w http.ResponseWriter, r *http.Request) {
		u, err := strconv.Atoi(r.URL.Query().Get("unit"))
		if err != nil || u < 0 || u >= s.cfg.Units {
			http.Error(w, fmt.Sprintf("unit must be an integer in [0,%d)", s.cfg.Units), http.StatusBadRequest)
			return
		}
		n := 0 // all held rounds
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v <= 0 {
				http.Error(w, "n must be a positive integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(s.Why(u, n)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}
