package daemon

import (
	"flag"
	"fmt"

	"dps/internal/power"
)

// knob describes one operator setting across every surface it is exposed
// on: the dpsd command-line flag, the FileConfig JSON key, and the
// ServerConfig field both land in. New settings register here once —
// the flag, the file path, and the validation can then never drift apart
// (a table-driven parity test holds each row to that).
type knob struct {
	// Flag is the dpsd flag name; JSON is the FileConfig key.
	Flag, JSON string
	// register installs the flag on fs and returns a closure copying the
	// parsed value into a ServerConfig.
	register func(fs *flag.FlagSet) func(*ServerConfig)
	// fromFile copies the knob from a parsed (defaulted) FileConfig.
	fromFile func(fc FileConfig, sc *ServerConfig)
	// check validates the knob's file value, nil when any value the type
	// admits is legal. Cross-knob constraints stay in FileConfig.validate.
	check func(fc FileConfig) error
}

// serverKnobs is the registry of per-setting daemon knobs. Settings with
// structure beyond one value (policy selection, watch rules) or that
// name the process environment (listen addresses) stay hand-wired in
// dpsd; everything tuning the server itself belongs here.
var serverKnobs = []knob{
	{
		Flag: "stale-after", JSON: "stale_after_ms",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Duration("stale-after", 0, "freeze a unit's cap after this long without an accepted report (0 disables health tracking)")
			return func(sc *ServerConfig) { sc.StaleAfter = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.StaleAfter = fc.StaleAfter() },
		check: func(fc FileConfig) error {
			if fc.StaleAfterMS < 0 {
				return fmt.Errorf("negative stale_after_ms %d", fc.StaleAfterMS)
			}
			return nil
		},
	},
	{
		Flag: "dead-after", JSON: "dead_after_ms",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Duration("dead-after", 0, "reserve a unit's budget at its last delivered cap after this long without a report (0 disables)")
			return func(sc *ServerConfig) { sc.DeadAfter = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.DeadAfter = fc.DeadAfter() },
		check: func(fc FileConfig) error {
			if fc.DeadAfterMS < 0 {
				return fmt.Errorf("negative dead_after_ms %d", fc.DeadAfterMS)
			}
			return nil
		},
	},
	{
		Flag: "read-idle-timeout", JSON: "read_idle_timeout_ms",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Duration("read-idle-timeout", 0, "reap agent connections silent for this long (0 disables)")
			return func(sc *ServerConfig) { sc.ReadIdleTimeout = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.ReadIdleTimeout = fc.ReadIdleTimeout() },
		check: func(fc FileConfig) error {
			if fc.ReadIdleTimeoutMS < 0 {
				return fmt.Errorf("negative read_idle_timeout_ms %d", fc.ReadIdleTimeoutMS)
			}
			return nil
		},
	},
	{
		Flag: "max-reading", JSON: "max_reading_w",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Float64("max-reading", 0, "reject inbound power reports above this many watts (0 = twice unit-max)")
			return func(sc *ServerConfig) { sc.MaxReading = power.Watts(*v) }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.MaxReading = power.Watts(fc.MaxReadingW) },
		check: func(fc FileConfig) error {
			if fc.MaxReadingW < 0 {
				return fmt.Errorf("negative max_reading_w %v", fc.MaxReadingW)
			}
			return nil
		},
	},
	{
		Flag: "delta-epsilon", JSON: "delta_epsilon_w",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Float64("delta-epsilon", 0, "advertise this delta-suppression band in watts to batch-capable agents (0 = suppress only unchanged readings)")
			return func(sc *ServerConfig) { sc.DeltaEpsilon = power.Watts(*v) }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.DeltaEpsilon = power.Watts(fc.DeltaEpsilonW) },
		check: func(fc FileConfig) error {
			if fc.DeltaEpsilonW < 0 {
				return fmt.Errorf("negative delta_epsilon_w %v", fc.DeltaEpsilonW)
			}
			return nil
		},
	},
	{
		Flag: "disable-batch-ingest", JSON: "disable_batch_ingest",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Bool("disable-batch-ingest", false, "reject handshakes advertising the batch capability (force full per-interval reports)")
			return func(sc *ServerConfig) { sc.DisableBatchIngest = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.DisableBatchIngest = fc.DisableBatchIngest },
	},
	{
		Flag: "sparse-rounds", JSON: "sparse_rounds",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Bool("sparse-rounds", true, "run DPS decision rounds sparsely over the dirty set (-sparse-rounds=false restores dense rounds)")
			return func(sc *ServerConfig) { sc.SparseRounds = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.SparseRounds = fc.SparseRoundsEnabled() },
	},
	{
		Flag: "sparse-refresh-every", JSON: "sparse_refresh_every",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Int("sparse-refresh-every", 0, "force every unit through a full decision pass at least once per this many sparse rounds (0 = default)")
			return func(sc *ServerConfig) { sc.SparseRefreshEvery = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.SparseRefreshEvery = fc.SparseRefreshEvery },
		check: func(fc FileConfig) error {
			if fc.SparseRefreshEvery < 0 {
				return fmt.Errorf("negative sparse_refresh_every %d", fc.SparseRefreshEvery)
			}
			return nil
		},
	},
	{
		Flag: "trace", JSON: "trace",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Bool("trace", false, "record round-scoped spans for /debug/trace (toggleable at runtime)")
			return func(sc *ServerConfig) { sc.TraceEnabled = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.TraceEnabled = fc.Trace },
	},
	{
		Flag: "trace-spans", JSON: "trace_spans",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Int("trace-spans", 0, "span ring capacity (0 = default)")
			return func(sc *ServerConfig) { sc.TraceSpans = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.TraceSpans = fc.TraceSpans },
		check: func(fc FileConfig) error {
			if fc.TraceSpans < 0 {
				return fmt.Errorf("negative trace_spans %d", fc.TraceSpans)
			}
			return nil
		},
	},
	{
		Flag: "series", JSON: "series",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Bool("series", false, "sample the registry into the embedded metric history (/debug/series)")
			return func(sc *ServerConfig) { sc.SeriesEnabled = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.SeriesEnabled = fc.Series },
	},
	{
		Flag: "watch", JSON: "watch",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Bool("watch", false, "run the watchdog: invariant audits plus -watch-rule rules (/alerts)")
			return func(sc *ServerConfig) { sc.WatchEnabled = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.WatchEnabled = fc.Watch },
	},
	{
		Flag: "snapshot-path", JSON: "snapshot_path",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.String("snapshot-path", "", "write the controller state snapshot to this file on a round cadence and at shutdown (empty disables)")
			return func(sc *ServerConfig) { sc.SnapshotPath = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.SnapshotPath = fc.SnapshotPath },
	},
	{
		Flag: "snapshot-every", JSON: "snapshot_every",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Int("snapshot-every", 0, "rounds between snapshot file writes (0 = default)")
			return func(sc *ServerConfig) { sc.SnapshotEvery = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.SnapshotEvery = fc.SnapshotEvery },
		check: func(fc FileConfig) error {
			if fc.SnapshotEvery < 0 {
				return fmt.Errorf("negative snapshot_every %d", fc.SnapshotEvery)
			}
			return nil
		},
	},
	{
		Flag: "blackbox-path", JSON: "blackbox_path",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.String("blackbox-path", "", "append every decision round to the black-box flight recorder ring under this directory (empty disables)")
			return func(sc *ServerConfig) { sc.BlackboxPath = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.BlackboxPath = fc.BlackboxPath },
	},
	{
		Flag: "blackbox-rounds", JSON: "blackbox_rounds",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Int("blackbox-rounds", 0, "decision rounds the black-box ring retains (0 = default)")
			return func(sc *ServerConfig) { sc.BlackboxRounds = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.BlackboxRounds = fc.BlackboxRounds },
		check: func(fc FileConfig) error {
			if fc.BlackboxRounds < 0 {
				return fmt.Errorf("negative blackbox_rounds %d", fc.BlackboxRounds)
			}
			return nil
		},
	},
	{
		Flag: "restore-from", JSON: "restore_from",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.String("restore-from", "", "restore controller state from this snapshot file at boot (empty = cold start)")
			return func(sc *ServerConfig) { sc.RestoreFrom = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.RestoreFrom = fc.RestoreFrom },
	},
	{
		Flag: "standby-of", JSON: "standby_of",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.String("standby-of", "", "run as a warm standby replicating from the primary dpsd at this address; serve agents only after taking over")
			return func(sc *ServerConfig) { sc.StandbyOf = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.StandbyOf = fc.StandbyOf },
	},
	{
		Flag: "budget-tolerance", JSON: "budget_tolerance_w",
		register: func(fs *flag.FlagSet) func(*ServerConfig) {
			v := fs.Float64("budget-tolerance", 0, "slack in watts on the budget_conservation audit (0 = default)")
			return func(sc *ServerConfig) { sc.BudgetToleranceW = *v }
		},
		fromFile: func(fc FileConfig, sc *ServerConfig) { sc.BudgetToleranceW = fc.BudgetToleranceW },
		check: func(fc FileConfig) error {
			if fc.BudgetToleranceW < 0 {
				return fmt.Errorf("negative budget_tolerance_w %v", fc.BudgetToleranceW)
			}
			return nil
		},
	},
}

// RegisterServerFlags installs every table knob as a command-line flag
// on fs and returns a function copying the parsed values into a
// ServerConfig (call it after fs.Parse).
func RegisterServerFlags(fs *flag.FlagSet) func(*ServerConfig) {
	applies := make([]func(*ServerConfig), 0, len(serverKnobs))
	for _, k := range serverKnobs {
		applies = append(applies, k.register(fs))
	}
	return func(sc *ServerConfig) {
		for _, apply := range applies {
			apply(sc)
		}
	}
}

// ApplyKnobs copies every table knob from the file config into sc.
func (fc FileConfig) ApplyKnobs(sc *ServerConfig) {
	for _, k := range serverKnobs {
		k.fromFile(fc, sc)
	}
}

// validateKnobs runs every per-knob check.
func (fc FileConfig) validateKnobs() error {
	for _, k := range serverKnobs {
		if k.check == nil {
			continue
		}
		if err := k.check(fc); err != nil {
			return err
		}
	}
	return nil
}
