package daemon

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
)

// TestConcurrentDecideAndScrapes drives the decision loop — through the
// sharded controller and the stats-returning DecideStats path — while
// /metrics, /status and /debug/rounds are scraped concurrently. Run with
// -race, this is the proof that a decision round never races an observer:
// exactly the overlap a deployed daemon sees every interval.
func TestConcurrentDecideAndScrapes(t *testing.T) {
	const (
		units  = 64
		rounds = 60
	)
	budget := power.Budget{Total: power.Watts(units) * 80, UnitMax: 165, UnitMin: 10}
	cfg := core.DefaultConfig(units, budget)
	cfg.Shards = 4 // force the parallel pipeline under the race detector
	mgr, err := core.NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	h := srv.StatusHandler()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/status", "/debug/rounds"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				if rec.Code != 200 {
					t.Errorf("GET %s = %d", path, rec.Code)
					return
				}
			}
		}(path)
	}

	for i := 0; i < rounds; i++ {
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()

	if got := srv.Rounds(); got != rounds {
		t.Fatalf("Rounds() = %d, want %d", got, rounds)
	}
}
