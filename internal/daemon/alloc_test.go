package daemon

import (
	"math/rand"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
)

// TestDecideSamplerSteadyStateZeroAlloc extends the core hot-path
// allocation gate to the self-monitoring deployment shape: with the
// watchdog and series sampler wired into the daemon (watcher built,
// tracer attached, audits fed every round, registry scraped between
// rounds), the manager's warm decision round must still allocate nothing.
// The sampler and auditor run beside the decision path, never inside it —
// this test is that claim's regression gate.
func TestDecideSamplerSteadyStateZeroAlloc(t *testing.T) {
	const units = 128
	cfg := core.DefaultConfig(units, testBudget(units))
	cfg.Shards = 1 // sequential path, matching the core gate
	mgr, err := core.NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:       mgr,
		Units:         units,
		Interval:      time.Second,
		SeriesEnabled: true,
		WatchEnabled:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0).UTC()
	srv.now = func() time.Time { return now }

	rng := rand.New(rand.NewSource(1))
	readings := make(power.Vector, units)
	for u := range readings {
		readings[u] = power.Watts(40 + rng.Float64()*120)
	}
	// Warm through the full daemon round (metrics, flight recorder,
	// audits) plus sampler scrapes, so every self-monitoring structure has
	// grown to steady state.
	for i := 0; i < 30; i++ {
		readings[i%units] += power.Watts(rng.NormFloat64() * 2)
		setReadings(srv, readings)
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
		srv.SampleOnce()
		now = now.Add(time.Second)
	}

	snap := core.Snapshot{Power: readings, Interval: 1}
	allocs := testing.AllocsPerRun(100, func() {
		readings[0] += 0.01
		mgr.DecideStats(snap)
	})
	if allocs != 0 {
		t.Errorf("watchdog-attached steady-state DecideStats allocated %.1f times per round, want 0", allocs)
	}
}
