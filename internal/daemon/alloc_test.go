package daemon

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
)

// TestDecideSamplerSteadyStateZeroAlloc extends the core hot-path
// allocation gate to the self-monitoring deployment shape: with the
// watchdog and series sampler wired into the daemon (watcher built,
// tracer attached, audits fed every round, registry scraped between
// rounds), the manager's warm decision round must still allocate nothing.
// The sampler and auditor run beside the decision path, never inside it —
// this test is that claim's regression gate.
func TestDecideSamplerSteadyStateZeroAlloc(t *testing.T) {
	const units = 128
	cfg := core.DefaultConfig(units, testBudget(units))
	cfg.Shards = 1 // sequential path, matching the core gate
	mgr, err := core.NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:       mgr,
		Units:         units,
		Interval:      time.Second,
		SeriesEnabled: true,
		WatchEnabled:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0).UTC()
	srv.now = func() time.Time { return now }

	rng := rand.New(rand.NewSource(1))
	readings := make(power.Vector, units)
	for u := range readings {
		readings[u] = power.Watts(40 + rng.Float64()*120)
	}
	// Warm through the full daemon round (metrics, flight recorder,
	// audits) plus sampler scrapes, so every self-monitoring structure has
	// grown to steady state.
	for i := 0; i < 30; i++ {
		readings[i%units] += power.Watts(rng.NormFloat64() * 2)
		setReadings(srv, readings)
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
		srv.SampleOnce()
		now = now.Add(time.Second)
	}

	snap := core.Snapshot{Power: readings, Interval: 1}
	allocs := testing.AllocsPerRun(100, func() {
		readings[0] += 0.01
		mgr.DecideStats(snap)
	})
	if allocs != 0 {
		t.Errorf("watchdog-attached steady-state DecideStats allocated %.1f times per round, want 0", allocs)
	}
}

// ingestScriptConn is a synchronous net.Conn for the ingest alloc gate:
// reads replay an in-memory frame script, writes are discarded. It lets
// the test drive serveFrame on the calling goroutine, with no pipe or
// scheduler noise between the measurement and the path being measured.
type ingestScriptConn struct {
	r *bytes.Reader
}

func (c *ingestScriptConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *ingestScriptConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *ingestScriptConn) Close() error                     { return nil }
func (c *ingestScriptConn) LocalAddr() net.Addr              { return nil }
func (c *ingestScriptConn) RemoteAddr() net.Addr             { return nil }
func (c *ingestScriptConn) SetDeadline(time.Time) error      { return nil }
func (c *ingestScriptConn) SetReadDeadline(time.Time) error  { return nil }
func (c *ingestScriptConn) SetWriteDeadline(time.Time) error { return nil }

// TestIngestSteadyStateZeroAlloc is the batched-ingest allocation gate:
// once a batch session is warm, receiving and landing a full batch, a
// sparse delta, and a heartbeat must not allocate — the read buffers and
// record scratch are session-owned and pooled, and the staleness-clock
// walk is in-place. Health tracking is on so the gate covers the
// clock-refresh path, not just the value stores.
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	const units = 128
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:    mgr,
		Units:      units,
		Interval:   time.Second,
		StaleAfter: time.Minute,
		DeadAfter:  2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var hs bytes.Buffer
	if err := proto.WriteHello(&hs, proto.Hello{FirstUnit: 0, Units: units, Batch: true}); err != nil {
		t.Fatal(err)
	}
	conn := &ingestScriptConn{r: bytes.NewReader(hs.Bytes())}
	sess, err := proto.Accept(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Release()
	sc := &serverConn{conn: conn, sess: sess, hello: sess.Hello()}

	// The frame script: one full batch, one sparse delta, one heartbeat —
	// the three shapes a steady-state delta session produces.
	var fb bytes.Buffer
	full := make([]proto.Record, units)
	for u := range full {
		full[u] = proto.Record{LocalUnit: uint8(u), Value: uint16(900 + u)}
	}
	if err := proto.WriteBatchFrame(&fb, full); err != nil {
		t.Fatal(err)
	}
	sparse := []proto.Record{{LocalUnit: 3, Value: 850}, {LocalUnit: 77, Value: 1410}}
	if err := proto.WriteBatchFrame(&fb, sparse); err != nil {
		t.Fatal(err)
	}
	fb.WriteByte(proto.FrameHeartbeat)
	script := fb.Bytes()
	const frames = 3

	serve := func() {
		conn.r.Reset(script)
		for i := 0; i < frames; i++ {
			if err := srv.serveFrame(sc); err != nil {
				t.Fatal(err)
			}
		}
	}
	serve() // warm the session's read scratch through every frame shape

	if allocs := testing.AllocsPerRun(100, serve); allocs != 0 {
		t.Errorf("warm batch ingest allocated %.1f times per %d-frame script, want 0", allocs, frames)
	}
}
