package daemon

import (
	"math"
	"net"
	"testing"
	"time"

	"dps/internal/power"
	"dps/internal/rapl"
)

// newBatchTestAgent builds an agent with the batch/delta capability on.
func newBatchTestAgent(t *testing.T, first power.UnitID, n int, eps power.Watts, refresh int) (*Agent, []*rapl.SimDevice) {
	t.Helper()
	devs := make([]rapl.Device, n)
	sims := make([]*rapl.SimDevice, n)
	for i := range devs {
		cfg := rapl.DefaultSimConfig()
		cfg.NoiseStdDev = 0
		cfg.Seed = int64(i + 1)
		d, err := rapl.NewSimDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		sims[i] = d
	}
	a, err := NewAgent(AgentConfig{
		FirstUnit:    first,
		Devices:      devs,
		Interval:     100 * time.Millisecond,
		Batch:        true,
		DeltaEpsilon: eps,
		RefreshEvery: refresh,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, sims
}

// waitReadings polls until the server's reading table matches want within
// tol per unit (the conn goroutine ingests asynchronously).
func waitReadings(t *testing.T, srv *Server, want []float64, tol float64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		r := srv.Readings()
		ok := len(r) == len(want)
		for u := range want {
			if ok && math.Abs(float64(r[u])-want[u]) > tol {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("readings %v never reached %v", r, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchDeltaEndToEnd drives the batch/delta data plane over a pipe:
// a batch handshake, a full first report, epsilon suppression collapsing
// a quiet interval to a heartbeat, and a sparse delta when one unit
// moves — with the server's reading table tracking throughout.
func TestBatchDeltaEndToEnd(t *testing.T) {
	srv := newTestServer(t, 3)
	agent, sims := newBatchTestAgent(t, 0, 3, 1.0, -1)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(server) }()
	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}

	load := func(u int, w power.Watts) {
		sims[u].SetLoad(w)
		sims[u].Advance(1)
	}

	// First report: always the complete vector.
	for u := range sims {
		load(u, 120)
	}
	if err := agent.ReportOnce(1); err != nil {
		t.Fatal(err)
	}
	waitReadings(t, srv, []float64{120, 120, 120}, 0.06)
	if got := srv.metrics.ingestBatches.Value(); got != 1 {
		t.Fatalf("ingest batches = %d, want 1", got)
	}
	if got := srv.metrics.ingestRecords.Value(); got != 3 {
		t.Fatalf("ingest records = %d, want 3", got)
	}

	// Same load again: every unit within epsilon -> one heartbeat, no
	// records, readings stand.
	for u := range sims {
		load(u, 120)
	}
	if err := agent.ReportOnce(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.metrics.ingestHeartbeats.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	if got := agent.am.heartbeats.Value(); got != 1 {
		t.Fatalf("agent heartbeats = %d, want 1", got)
	}
	if got := agent.am.suppressed.Value(); got != 3 {
		t.Fatalf("agent suppressed readings = %d, want 3", got)
	}
	waitReadings(t, srv, []float64{120, 120, 120}, 0.06)

	// One unit jumps past epsilon: a sparse delta carrying only that unit.
	load(0, 140)
	load(1, 120)
	load(2, 120)
	if err := agent.ReportOnce(1); err != nil {
		t.Fatal(err)
	}
	waitReadings(t, srv, []float64{140, 120, 120}, 0.06)
	if got := srv.metrics.ingestRecords.Value(); got != 4 {
		t.Fatalf("ingest records = %d, want 4 (3 full + 1 delta)", got)
	}
	if got := srv.metrics.ingestBatches.Value(); got != 2 {
		t.Fatalf("ingest batches = %d, want 2", got)
	}

	client.Close()
	<-done
}

// TestBatchRefreshEvery pins the periodic full-refresh override: with
// RefreshEvery=2 a quiet agent still sends the complete vector every
// second report instead of heartbeating forever.
func TestBatchRefreshEvery(t *testing.T) {
	srv := newTestServer(t, 2)
	agent, sims := newBatchTestAgent(t, 0, 2, 5.0, 2)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(server) }()
	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 5; round++ {
		for _, d := range sims {
			d.SetLoad(120)
			d.Advance(1)
		}
		if err := agent.ReportOnce(1); err != nil {
			t.Fatal(err)
		}
	}
	// Rounds: 0 full, 1 heartbeat, 2 full (refresh), 3 heartbeat, 4 full.
	deadline := time.Now().Add(2 * time.Second)
	for srv.metrics.ingestBatches.Value() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("full refreshes = %d, want 3", srv.metrics.ingestBatches.Value())
		}
		time.Sleep(time.Millisecond)
	}
	if got := agent.am.heartbeats.Value(); got != 2 {
		t.Fatalf("agent heartbeats = %d, want 2", got)
	}

	client.Close()
	<-done
}

// TestDisableBatchIngest pins the operator escape hatch: a server run
// with DisableBatchIngest rejects batch hellos outright, and the agent's
// handshake fails cleanly rather than wedging mid-session.
func TestDisableBatchIngest(t *testing.T) {
	mgr := newTestServer(t, 2).cfg.Manager
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: 2, Interval: time.Second, DisableBatchIngest: true})
	if err != nil {
		t.Fatal(err)
	}
	agent, _ := newBatchTestAgent(t, 0, 2, 0, 0)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(server) }()
	if err := agent.Handshake(client); err == nil {
		t.Fatal("batch handshake succeeded against a server with batch ingest disabled")
	}
	if err := <-done; err == nil {
		t.Fatal("Handle returned nil for a rejected batch hello")
	}
	if got := srv.Connected(); got != 0 {
		t.Fatalf("Connected = %d after rejected handshake, want 0", got)
	}
}

// TestBatchHealthClock pins the heartbeat-vs-health contract on the
// batch plane: heartbeats from a quiet connection keep its units fresh
// well past DeadAfter (quiet is not dead — the agent is alive and
// asserting "unchanged"), while a genuinely silent batch connection
// walks the same fresh → stale → dead decay as a per-reading one.
func TestBatchHealthClock(t *testing.T) {
	const units = 3
	srv, now := newHealthServer(t, units, 3*time.Second, 10*time.Second)
	agent, sims := newBatchTestAgent(t, 0, units, 1.0, -1)

	client, server := net.Pipe()
	go srv.Handle(server)
	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}
	// Drain cap pushes: net.Pipe writes are synchronous, so DecideOnce
	// would otherwise block on its push.
	go func() {
		for agent.ReceiveCaps() == nil {
		}
	}()
	t.Cleanup(func() { client.Close() })

	load := func(w power.Watts) {
		for _, d := range sims {
			d.SetLoad(w)
			d.Advance(1)
		}
	}

	// Seed the reading table with a full first report (90 W per unit is
	// comfortably under the per-unit budget, so pushed caps never clamp
	// the draw and later intervals really are unchanged).
	load(90)
	if err := agent.ReportOnce(1); err != nil {
		t.Fatal(err)
	}
	waitReadings(t, srv, []float64{90, 90, 90}, 0.06)

	// Heartbeat through 10 s of (stubbed) wall clock — past DeadAfter.
	// Every round must classify all units fresh.
	for i := 0; i < 5; i++ {
		*now = now.Add(2 * time.Second)
		load(90) // unchanged within epsilon → heartbeat
		if err := agent.ReportOnce(1); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for srv.metrics.ingestHeartbeats.Value() < uint64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("heartbeat %d never reached the server", i+1)
			}
			time.Sleep(time.Millisecond)
		}
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
		if s := srv.Snapshot(); s.StaleUnits != 0 || s.DeadUnits != 0 {
			t.Fatalf("after heartbeat %d (%.0fs elapsed): %d stale / %d dead, want all fresh (%v)",
				i+1, float64((i+1)*2), s.StaleUnits, s.DeadUnits, s.Health)
		}
	}
	if hb := agent.am.heartbeats.Value(); hb != 5 {
		t.Fatalf("agent heartbeats = %d, want 5", hb)
	}

	// Real silence now: no frames at all. The same clocks must decay on
	// schedule — heartbeats bought freshness, not immortality.
	*now = now.Add(4 * time.Second)
	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}
	if s := srv.Snapshot(); s.StaleUnits != units {
		t.Fatalf("after 4s of silence: %d stale units, want %d (%v)", s.StaleUnits, units, s.Health)
	}
	*now = now.Add(7 * time.Second)
	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}
	if s := srv.Snapshot(); s.DeadUnits != units {
		t.Fatalf("after 11s of silence: %d dead units, want %d (%v)", s.DeadUnits, units, s.Health)
	}
}
