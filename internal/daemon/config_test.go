package daemon

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dpsd.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadFileConfigDefaults(t *testing.T) {
	fc, err := LoadFileConfig(writeConfig(t, `{"units": 20}`))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Listen != ":7891" || fc.Policy != "dps" {
		t.Errorf("defaults: %+v", fc)
	}
	if fc.BudgetW != 2200 {
		t.Errorf("default budget = %v, want 110 W × 20", fc.BudgetW)
	}
	if fc.Interval() != time.Second {
		t.Errorf("default interval = %v", fc.Interval())
	}
	b := fc.Budget()
	if b.Total != 2200 || b.UnitMax != 165 || b.UnitMin != 10 {
		t.Errorf("budget: %+v", b)
	}
}

func TestLoadFileConfigFull(t *testing.T) {
	fc, err := LoadFileConfig(writeConfig(t, `{
		"listen": ":9000",
		"http": ":9001",
		"units": 8,
		"budget_w": 900,
		"unit_max_w": 150,
		"unit_min_w": 12,
		"interval_ms": 500,
		"policy": "slurm",
		"seed": 99
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if fc.Listen != ":9000" || fc.HTTP != ":9001" || fc.Units != 8 || fc.Seed != 99 {
		t.Errorf("parsed: %+v", fc)
	}
	if fc.Interval() != 500*time.Millisecond {
		t.Errorf("interval = %v", fc.Interval())
	}
	mgr, err := fc.BuildManager()
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Name() != "SLURM" {
		t.Errorf("manager = %q", mgr.Name())
	}
}

func TestLoadFileConfigBuildsAllPolicies(t *testing.T) {
	for _, policy := range []string{"dps", "slurm", "constant"} {
		fc, err := LoadFileConfig(writeConfig(t, `{"units": 4, "policy": "`+policy+`"}`))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if _, err := fc.BuildManager(); err != nil {
			t.Errorf("%s: BuildManager: %v", policy, err)
		}
	}
}

func TestLoadFileConfigRejections(t *testing.T) {
	cases := map[string]string{
		"missing file":    "", // handled below
		"bad json":        `{units: 20}`,
		"unknown field":   `{"units": 20, "wattage": 1}`,
		"zero units":      `{"units": 0}`,
		"unknown policy":  `{"units": 4, "policy": "ml"}`,
		"invalid budget":  `{"units": 4, "budget_w": 1, "unit_min_w": 10}`,
		"negative period": `{"units": 4, "interval_ms": -5}`,
	}
	for name, content := range cases {
		if name == "missing file" {
			if _, err := LoadFileConfig(filepath.Join(t.TempDir(), "absent.json")); err == nil {
				t.Error("missing file accepted")
			}
			continue
		}
		if _, err := LoadFileConfig(writeConfig(t, content)); err == nil {
			t.Errorf("%s: config accepted: %s", name, content)
		}
	}
}

func TestDPSTuningFieldsApplied(t *testing.T) {
	fc, err := LoadFileConfig(writeConfig(t, `{"units": 4, "history_len": 40, "disable_restore": true}`))
	if err != nil {
		t.Fatal(err)
	}
	if fc.HistoryLen != 40 || !fc.DisableRestore {
		t.Errorf("tuning fields: %+v", fc)
	}
	if _, err := fc.BuildManager(); err != nil {
		t.Fatal(err)
	}
}
