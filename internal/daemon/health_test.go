package daemon

import (
	"math"
	"net"
	"strings"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
	"dps/internal/rapl"
)

// newHealthServer builds a server with health tracking enabled and a
// stubbed, manually advanced clock.
func newHealthServer(t *testing.T, units int, stale, dead time.Duration) (*Server, *time.Time) {
	t.Helper()
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:    mgr,
		Units:      units,
		Interval:   time.Second,
		StaleAfter: stale,
		DeadAfter:  dead,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	srv.now = func() time.Time { return now }
	srv.ResetHealthClocks()
	return srv, &now
}

// handshakeRaw performs the protocol handshake over a pipe, returning the
// client side and a drain goroutine for cap pushes (net.Pipe writes are
// synchronous, so DecideOnce needs a live reader).
func handshakeRaw(t *testing.T, srv *Server, first power.UnitID, units int) (net.Conn, chan error) {
	t.Helper()
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(server) }()
	if err := proto.WriteHello(client, proto.Hello{FirstUnit: first, Units: units}); err != nil {
		t.Fatal(err)
	}
	if err := rawReadAck(client); err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]power.Watts, units)
		for {
			if err := rawReadCaps(client, buf); err != nil {
				return
			}
		}
	}()
	return client, done
}

// report sends one reading batch and waits until it lands in the server's
// reading table (the conn goroutine is asynchronous).
func report(t *testing.T, srv *Server, conn net.Conn, first int, vals power.Vector, wantAccepted bool) {
	t.Helper()
	before := srv.metrics.badReadings.Value()
	if err := rawWriteReport(conn, vals); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if wantAccepted {
			r := srv.Readings()
			ok := true
			for i, v := range vals {
				if math.Abs(float64(r[first+i]-v)) > 0.06 {
					ok = false
					break
				}
			}
			if ok {
				return
			}
		} else if srv.metrics.badReadings.Value() > before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("report %v never registered (accepted=%v)", vals, wantAccepted)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHealthLifecycle walks one unit range through the whole state
// machine: fresh → stale → dead → fresh again on re-handshake, checking
// delivered caps, status JSON, and the exported gauges at each stage.
func TestHealthLifecycle(t *testing.T) {
	const units = 4
	srv, now := newHealthServer(t, units, 3*time.Second, 10*time.Second)
	conn, done := handshakeRaw(t, srv, 0, units)

	readings := power.Vector{120, 30, 90, 140}
	report(t, srv, conn, 0, readings, true)
	caps, err := srv.DecideOnce(1)
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Snapshot(); st.StaleUnits != 0 || st.DeadUnits != 0 {
		t.Fatalf("healthy round reports stale=%d dead=%d", st.StaleUnits, st.DeadUnits)
	}
	pinned := caps.Clone()

	// Silence past StaleAfter: everything the agent owns goes stale and
	// caps freeze at the last delivered values.
	*now = now.Add(5 * time.Second)
	capsStale, err := srv.DecideOnce(1)
	if err != nil {
		t.Fatal(err)
	}
	for u := range capsStale {
		if capsStale[u] != pinned[u] {
			t.Fatalf("stale unit %d cap moved %v -> %v", u, pinned[u], capsStale[u])
		}
	}
	st := srv.Snapshot()
	if st.StaleUnits != units || st.DeadUnits != 0 {
		t.Fatalf("stale round reports stale=%d dead=%d", st.StaleUnits, st.DeadUnits)
	}
	if st.Health[0] != "stale" {
		t.Fatalf("status health[0] = %q, want stale", st.Health[0])
	}
	if got := srv.metrics.staleUnits.Value(); got != units {
		t.Fatalf("dps_stale_units = %v, want %d", got, units)
	}

	// Silence past DeadAfter: dead, still pinned, budget still reserved.
	*now = now.Add(10 * time.Second)
	capsDead, err := srv.DecideOnce(1)
	if err != nil {
		t.Fatal(err)
	}
	for u := range capsDead {
		if capsDead[u] != pinned[u] {
			t.Fatalf("dead unit %d cap moved %v -> %v", u, pinned[u], capsDead[u])
		}
	}
	if st := srv.Snapshot(); st.DeadUnits != units {
		t.Fatalf("dead round reports dead=%d", st.DeadUnits)
	}
	if got := srv.metrics.deadUnits.Value(); got != units {
		t.Fatalf("dps_dead_units = %v, want %d", got, units)
	}
	freshToStale := srv.metrics.transitions[int(core.HealthFresh)*3+int(core.HealthStale)].Value()
	staleToDead := srv.metrics.transitions[int(core.HealthStale)*3+int(core.HealthDead)].Value()
	if freshToStale != units || staleToDead != units {
		t.Fatalf("transition counters fresh->stale=%d stale->dead=%d, want %d each", freshToStale, staleToDead, units)
	}

	// The flight recorder saw the degraded rounds.
	recs := srv.FlightRecorder().Last(1)
	if len(recs) != 1 || recs[0].DeadUnits != units {
		t.Fatalf("flight record dead units = %+v", recs)
	}
	if recs[0].Units[0].Health != "dead" {
		t.Fatalf("flight record unit health = %q", recs[0].Units[0].Health)
	}

	// Recovery: drop the dead session, re-handshake, report. The register
	// alone restamps the clock, so the unit is fresh by the next round.
	conn.Close()
	<-done
	conn2, _ := handshakeRaw(t, srv, 0, units)
	defer conn2.Close()
	report(t, srv, conn2, 0, power.Vector{15, 15, 15, 15}, true)
	capsBack, err := srv.DecideOnce(1)
	if err != nil {
		t.Fatal(err)
	}
	if st := srv.Snapshot(); st.StaleUnits != 0 || st.DeadUnits != 0 {
		t.Fatalf("recovered round reports stale=%d dead=%d", st.StaleUnits, st.DeadUnits)
	}
	moved := false
	for u := range capsBack {
		if capsBack[u] != pinned[u] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("caps still pinned one round after recovery")
	}
	deadToFresh := srv.metrics.transitions[int(core.HealthDead)*3+int(core.HealthFresh)].Value()
	if deadToFresh != units {
		t.Fatalf("dead->fresh transitions = %d, want %d", deadToFresh, units)
	}
}

// TestSanitizerRejectsGarbageReadings verifies the server boundary: a
// reading above the ceiling never reaches the reading table, is counted,
// and does not refresh the staleness clock — so a garbage-reporting agent
// quarantines itself into the stale state while a well-behaved one stays
// fresh.
func TestSanitizerRejectsGarbageReadings(t *testing.T) {
	const units = 2
	srv, now := newHealthServer(t, units, 3*time.Second, 10*time.Second)
	conn, _ := handshakeRaw(t, srv, 0, units)
	defer conn.Close()

	report(t, srv, conn, 0, power.Vector{100, 100}, true)
	if _, err := srv.DecideOnce(1); err != nil {
		t.Fatal(err)
	}

	// Unit 1 starts reporting garbage (over the 2×UnitMax=330 W ceiling);
	// unit 0 keeps reporting sanely. The wire can't carry NaN/Inf, so the
	// ceiling is the reachable rejection path end-to-end.
	for i := 0; i < 3; i++ {
		*now = now.Add(2 * time.Second)
		report(t, srv, conn, 0, power.Vector{100, 5000}, false)
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
	}
	r := srv.Readings()
	if r[1] > 330 {
		t.Fatalf("garbage reading %v entered the reading table", r[1])
	}
	if got := srv.metrics.badReadings.Value(); got < 3 {
		t.Fatalf("dps_server_bad_readings_total = %d, want >= 3", got)
	}
	st := srv.Snapshot()
	if st.Health[0] != "fresh" {
		t.Fatalf("well-behaved unit went %q", st.Health[0])
	}
	if st.Health[1] == "fresh" {
		t.Fatal("garbage-reporting unit stayed fresh; quarantine failed")
	}
}

// TestBadReadingDetection covers the sanitizer classes the wire format
// cannot deliver but the boundary must still reject.
func TestBadReadingDetection(t *testing.T) {
	ceiling := power.Watts(330)
	cases := []struct {
		v    power.Watts
		want bool
	}{
		{100, false},
		{0, false},
		{330, false},
		{-1, true},
		{331, true},
		{power.Watts(math.NaN()), true},
		{power.Watts(math.Inf(1)), true},
		{power.Watts(math.Inf(-1)), true},
	}
	for _, c := range cases {
		if got := badReading(c.v, ceiling); got != c.want {
			t.Errorf("badReading(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

// TestReadDeadlineReapsSilentConnection verifies the server-side idle
// deadline: a handshaken connection that never reports is closed, counted
// as reaped, and its units are released for a replacement agent.
func TestReadDeadlineReapsSilentConnection(t *testing.T) {
	const units = 2
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:         mgr,
		Units:           units,
		Interval:        time.Second,
		ReadIdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	client, server := net.Pipe()
	defer client.Close()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(server) }()
	if err := proto.WriteHello(client, proto.Hello{FirstUnit: 0, Units: units}); err != nil {
		t.Fatal(err)
	}
	if err := rawReadAck(client); err != nil {
		t.Fatal(err)
	}
	if got := srv.Connected(); got != 1 {
		t.Fatalf("Connected = %d, want 1", got)
	}

	// Stay silent. The deadline must fire and Handle must return a reap
	// error well before the test times out.
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Handle returned nil for a reaped connection")
		}
		if !strings.Contains(err.Error(), "reaping idle agent") {
			t.Fatalf("Handle error = %v, want a reap", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent connection was never reaped")
	}
	if got := srv.metrics.reaps.Value(); got != 1 {
		t.Fatalf("dps_conn_reaped_total = %d, want 1", got)
	}
	if got := srv.Connected(); got != 0 {
		t.Fatalf("Connected = %d after reap, want 0", got)
	}

	// The units are free again: a replacement claim succeeds.
	a2, _ := newTestAgent(t, 0, units)
	c2, s2 := net.Pipe()
	go srv.Handle(s2)
	if err := a2.Handshake(c2); err != nil {
		t.Fatalf("replacement agent rejected after reap: %v", err)
	}
	c2.Close()
}

// TestReadDeadlineReapsSilentHandshake verifies the deadline also guards
// the pre-handshake read: a connection that never says hello cannot hold
// a server goroutine forever.
func TestReadDeadlineReapsSilentHandshake(t *testing.T) {
	const units = 2
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:         mgr,
		Units:           units,
		Interval:        time.Second,
		ReadIdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	defer client.Close()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(server) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Handle returned nil for a silent handshake")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("silent handshake was never reaped")
	}
}

// newTestAgentDevices builds n noiseless simulated devices.
func newTestAgentDevices(t *testing.T, n int) []rapl.Device {
	t.Helper()
	devs := make([]rapl.Device, n)
	for i := range devs {
		cfg := rapl.DefaultSimConfig()
		cfg.NoiseStdDev = 0
		cfg.Seed = int64(i + 1)
		d, err := rapl.NewSimDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
	}
	return devs
}

// TestJitteredBackoff pins the equal-jitter schedule with a stubbed rand
// source: sleep ∈ [backoff/2, backoff), exact at the stub's values.
func TestJitteredBackoff(t *testing.T) {
	next := 0.0
	a, err := NewAgent(AgentConfig{
		FirstUnit:       0,
		Devices:         newTestAgentDevices(t, 1),
		Interval:        time.Second,
		ReconnectJitter: func() float64 { return next },
	})
	if err != nil {
		t.Fatal(err)
	}

	backoff := 800 * time.Millisecond
	next = 0
	if got := a.jitteredBackoff(backoff); got != 400*time.Millisecond {
		t.Fatalf("jitter 0: sleep = %v, want 400ms", got)
	}
	next = 0.5
	if got := a.jitteredBackoff(backoff); got != 600*time.Millisecond {
		t.Fatalf("jitter 0.5: sleep = %v, want 600ms", got)
	}
	next = 0.999
	got := a.jitteredBackoff(backoff)
	if got < 400*time.Millisecond || got >= backoff {
		t.Fatalf("jitter 0.999: sleep = %v, want in [400ms, 800ms)", got)
	}

	// Two agents with different draws sleep differently — the property
	// that breaks the thundering herd.
	b, err := NewAgent(AgentConfig{
		FirstUnit:       0,
		Devices:         newTestAgentDevices(t, 1),
		Interval:        time.Second,
		ReconnectJitter: func() float64 { return 0.25 },
	})
	if err != nil {
		t.Fatal(err)
	}
	next = 0.75
	if a.jitteredBackoff(backoff) == b.jitteredBackoff(backoff) {
		t.Fatal("distinct jitter draws produced identical sleeps")
	}

	// The default source stays inside the envelope too.
	c, err := NewAgent(AgentConfig{
		FirstUnit: 0,
		Devices:   newTestAgentDevices(t, 1),
		Interval:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got := c.jitteredBackoff(backoff)
		if got < 400*time.Millisecond || got >= backoff {
			t.Fatalf("default jitter draw %d: sleep = %v outside [400ms, 800ms)", i, got)
		}
	}
}
