package daemon

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/snapshot"
)

// benchRestoreServer builds a DPS server at cluster scale with health
// tracking off (the codec cost under measurement is the same either
// way) and a few warm rounds behind it, so the exported state is the
// settled mid-run shape, not a fresh-boot zero image.
func benchRestoreServer(b *testing.B, units int, snapPath string) *Server {
	b.Helper()
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Second, SnapshotPath: snapPath, SnapshotEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	readings := make(power.Vector, units)
	for u := range readings {
		readings[u] = power.Watts(40 + (u*7)%100)
	}
	setReadings(srv, readings)
	for i := 0; i < 3; i++ {
		if _, err := srv.DecideOnce(1); err != nil {
			b.Fatal(err)
		}
	}
	return srv
}

// benchSnapState builds a full snapshot State — controller plus daemon
// sections — straight from a core.DPS export, bypassing the daemon so
// the codec can be measured past the protocol's 64 Ki-unit ceiling.
func benchSnapState(b *testing.B, units int) *snapshot.State {
	b.Helper()
	d, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		b.Fatal(err)
	}
	st := &snapshot.State{}
	d.ExportState(st)
	st.HasDaemon = true
	st.SavedUnixMS = 1_700_000_000_000
	st.Rounds = 3
	st.LastCaps = make(power.Vector, units)
	st.LastPushed = make(power.Vector, units)
	st.Health = make([]uint8, units)
	st.ReportAgeMS = make([]uint64, units)
	st.Readings = make(power.Vector, units)
	for u := 0; u < units; u++ {
		st.LastCaps[u] = power.Watts(100 + u%60)
		st.LastPushed[u] = st.LastCaps[u]
		st.ReportAgeMS[u] = uint64(u % 900)
		st.Readings[u] = power.Watts(40 + (u*7)%100)
	}
	return st
}

// BenchmarkSnapshotCodec times the state image's encode and decode at
// cluster scale: the per-round cost a primary pays to assemble the
// image, and the boot-time cost a restore or takeover pays to parse it.
// Feeds scripts/bench_restore.sh.
func BenchmarkSnapshotCodec(b *testing.B) {
	for _, units := range []int{16384, 262144} {
		st := benchSnapState(b, units)
		img := snapshot.Encode(nil, st)
		b.Run(fmt.Sprintf("encode/N=%d", units), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(img)))
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf = snapshot.Encode(buf, st)
			}
		})
		b.Run(fmt.Sprintf("decode/N=%d", units), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(img)))
			var out snapshot.State
			for i := 0; i < b.N; i++ {
				if err := snapshot.DecodeInto(&out, img); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTakeoverFirstRound times time-to-first-caps for the two boot
// paths the HA design trades between: cold (a fresh controller's first
// round — the constant-allocation round every unit pays for) and warm
// (restore the snapshot, then decide — the takeover path, where the
// first round continues the donor's trajectory). Feeds
// scripts/bench_restore.sh.
func BenchmarkTakeoverFirstRound(b *testing.B) {
	// 65536 is the protocol's addressable ceiling; the codec benchmark
	// above covers scaling beyond it.
	for _, units := range []int{16384, 65536} {
		// Donor: a settled primary whose graceful shutdown leaves the
		// snapshot file a takeover would inherit.
		path := filepath.Join(b.TempDir(), fmt.Sprintf("state-%d.dps", units))
		donor := benchRestoreServer(b, units, path)
		if err := donor.Close(); err != nil {
			b.Fatal(err)
		}

		newBoot := func(b *testing.B) *Server {
			b.Helper()
			mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
			if err != nil {
				b.Fatal(err)
			}
			srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Second})
			if err != nil {
				b.Fatal(err)
			}
			return srv
		}

		b.Run(fmt.Sprintf("cold/N=%d", units), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv := newBoot(b)
				b.StartTimer()
				if _, err := srv.DecideOnce(1); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				srv.Close()
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("warm/N=%d", units), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv := newBoot(b)
				b.StartTimer()
				if err := srv.RestoreFromSnapshot(path); err != nil {
					b.Fatal(err)
				}
				if _, err := srv.DecideOnce(1); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				srv.Close()
				b.StartTimer()
			}
		})
	}
}
