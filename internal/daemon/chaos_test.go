package daemon

import (
	"context"
	"net"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/faultinject"
	"dps/internal/power"
	"dps/internal/rapl"
)

// TestChaosDeterministicKillRestart is the degraded-mode contract as a
// deterministic script: a stubbed clock, raw protocol sessions, and one
// agent killed mid-run. Every round must respect Σcaps ≤ budget, the dead
// units' reserved caps must never be redistributed, and the units must
// regain full participation within one round of re-handshake. It is fast
// and deterministic, so it runs under -short in CI.
func TestChaosDeterministicKillRestart(t *testing.T) {
	const units = 6
	srv, now := newHealthServer(t, units, 1*time.Second, 4*time.Second)
	budget := testBudget(units)
	const eps = 1e-6

	type session struct {
		conn  net.Conn
		done  chan error
		first int
		n     int
	}
	open := func(first, n int) *session {
		conn, done := handshakeRaw(t, srv, power.UnitID(first), n)
		return &session{conn: conn, done: done, first: first, n: n}
	}
	sessions := []*session{open(0, 2), open(2, 2), open(4, 2)}
	alive := []bool{true, true, true}

	var killCaps power.Vector // caps delivered to agent 1 in its last live round
	reading := func(round, u int) power.Watts {
		return power.Watts(40 + (round*13+u*7)%100)
	}

	for round := 1; round <= 18; round++ {
		*now = now.Add(time.Second)

		// Kill agent 1 at the start of round 7: its last delivery was round
		// 6, and the agent (in a real cluster) keeps enforcing those caps.
		if round == 7 {
			sessions[1].conn.Close()
			<-sessions[1].done
			alive[1] = false
		}
		// Restart it at round 15: a fresh handshake claims the same units.
		if round == 15 {
			sessions[1] = open(2, 2)
			alive[1] = true
		}

		vals := make(power.Vector, 2)
		for si, s := range sessions {
			if !alive[si] {
				continue
			}
			for i := 0; i < s.n; i++ {
				vals[i] = reading(round, s.first+i)
			}
			report(t, srv, s.conn, s.first, vals, true)
		}

		caps, err := srv.DecideOnce(1)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if caps.Sum() > budget.Total+eps {
			t.Fatalf("round %d: Σcaps %v exceeds budget %v", round, caps.Sum(), budget.Total)
		}

		switch {
		case round == 6:
			killCaps = power.Vector{caps[2], caps[3]}
		case round >= 7 && round < 15:
			// Stale from round 7 (age 1 s), dead from round 10 (age 4 s):
			// either way the reserved caps never move off what the killed
			// agent is still enforcing.
			if caps[2] != killCaps[0] || caps[3] != killCaps[1] {
				t.Fatalf("round %d: reserved caps redistributed: [%v %v], want %v",
					round, caps[2], caps[3], killCaps)
			}
			st := srv.Snapshot()
			if wantDead := round >= 10; wantDead {
				if st.DeadUnits != 2 {
					t.Fatalf("round %d: dead units = %d, want 2", round, st.DeadUnits)
				}
			} else if st.StaleUnits != 2 {
				t.Fatalf("round %d: stale units = %d, want 2", round, st.StaleUnits)
			}
		case round >= 15:
			// Full participation within one round of the re-handshake.
			st := srv.Snapshot()
			if st.StaleUnits != 0 || st.DeadUnits != 0 {
				t.Fatalf("round %d: still degraded after rejoin: stale=%d dead=%d",
					round, st.StaleUnits, st.DeadUnits)
			}
		}
	}

	// The rejoined units' caps moved again after recovery (they reported
	// far from the pinned level for several rounds).
	final := srv.Snapshot().Caps
	if final[2] == float64(killCaps[0]) && final[3] == float64(killCaps[1]) {
		t.Fatal("rejoined units never regained cap participation")
	}
	for _, s := range sessions {
		s.conn.Close()
	}
}

// TestChaosWallClock runs the full deployed stack — Serve loop, real TCP,
// reconnecting agents — under injected faults: connections that randomly
// drop and devices with transient read errors and crash-restarts. The
// budget invariant must hold at every observation, and once the chaos
// window closes the cluster must converge back to all-fresh. The watchdog
// rides along as a second, independent oracle: its builtin audits see
// every decision round (not just this test's 5 ms observations) and none
// of them may ever fire on a correct controller, chaos or not.
func TestChaosWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock chaos test skipped in -short")
	}
	const units = 4
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:         mgr,
		Units:           units,
		Interval:        10 * time.Millisecond,
		StaleAfter:      100 * time.Millisecond,
		DeadAfter:       300 * time.Millisecond,
		ReadIdleTimeout: 200 * time.Millisecond,
		SeriesEnabled:   true,
		WatchEnabled:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		l.Close()
		<-serveDone
	}()
	addr := l.Addr().String()
	budget := testBudget(units)

	counters := faultinject.NewCounters(srv.Telemetry())

	// Each agent meters fault-wrapped devices: transient errors the
	// tolerant meter rides through, plus occasional crash-restarts.
	newChaosAgent := func(first power.UnitID, seed int64) *Agent {
		devs := make([]rapl.Device, 2)
		for i := range devs {
			cfg := rapl.DefaultSimConfig()
			cfg.NoiseStdDev = 0
			cfg.Seed = seed*10 + int64(i)
			sim, err := rapl.NewSimDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim.SetLoad(120)
			devs[i] = faultinject.WrapDevice(sim, faultinject.DeviceConfig{
				Seed:       seed*100 + int64(i),
				ErrProb:    0.05,
				CrashEvery: 40,
			}, counters)
		}
		a, err := NewAgent(AgentConfig{
			FirstUnit: first,
			Devices:   devs,
			Interval:  10 * time.Millisecond,
			// Chaos runs on the batch/delta plane: suppression and
			// heartbeats must survive drops and re-handshakes with the
			// same invariants as full per-interval reports.
			Batch:        true,
			DeltaEpsilon: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	agents := []*Agent{newChaosAgent(0, 1), newChaosAgent(2, 2)}

	// Agents dial through fault-injected connections while chaos is on:
	// sessions drop mid-run and the loop re-handshakes — the kill/restart
	// cycle, driven by the seeded schedule.
	chaosCtx, stopChaos := context.WithCancel(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{}, len(agents))
	for i, a := range agents {
		go func(a *Agent, seed int64) {
			defer func() { runDone <- struct{}{} }()
			for ctx.Err() == nil {
				conn, err := net.Dial("tcp", addr)
				if err == nil {
					var c net.Conn = conn
					if chaosCtx.Err() == nil {
						c = faultinject.WrapConn(conn, faultinject.ConnConfig{
							Seed:     seed,
							DropProb: 0.01,
						}, counters)
					}
					if err := a.Handshake(c); err == nil {
						a.Run(ctx)
					}
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
		}(a, int64(i+1))
	}

	// Observe the invariant through the whole run: the sum of caps the
	// controller considers delivered never exceeds the budget.
	violations := 0
	observe := time.NewTicker(5 * time.Millisecond)
	defer observe.Stop()
	chaosUntil := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(chaosUntil) {
		<-observe.C
		if st := srv.Snapshot(); st.CapSumW > float64(budget.Total)+1e-6 {
			violations++
			t.Errorf("budget violated during chaos: Σcaps %v > %v", st.CapSumW, budget.Total)
		}
	}
	if violations > 0 {
		t.Fatalf("%d budget violations during chaos", violations)
	}
	stopChaos()

	// Convergence: with faults off (fresh, unwrapped connections), every
	// unit must return to fresh and caps must keep flowing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Snapshot()
		if st.Agents == len(agents) && st.StaleUnits == 0 && st.DeadUnits == 0 && st.Rounds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged after chaos: %+v", st)
		}
		if st.CapSumW > float64(budget.Total)+1e-6 {
			t.Fatalf("budget violated during recovery: Σcaps %v > %v", st.CapSumW, budget.Total)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The embedded auditor watched every round the loop ran, including the
	// ones between this test's coarse observations. A correct controller
	// never trips an invariant, so a single lifetime firing of any builtin
	// is a failure — the watchdog caught what the polling above missed.
	for _, a := range srv.Watcher().Alerts() {
		if a.FiredCount != 0 {
			t.Errorf("watchdog rule %s fired %d times during chaos (last: %s)",
				a.Rule, a.FiredCount, a.Message)
		}
	}

	cancel()
	for range agents {
		<-runDone
	}
}
