package daemon

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/telemetry"
	"dps/internal/trace"
)

// newTracingServer builds a 2-unit DPS server with the span recorder
// enabled from the start.
func newTracingServer(t *testing.T, units int) *Server {
	t.Helper()
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager: mgr, Units: units, Interval: time.Second,
		TraceEnabled: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// setReadings injects a reading vector directly, standing in for agent
// report batches in tests that exercise the decision path alone.
func setReadings(srv *Server, readings power.Vector) {
	srv.imu.Lock()
	copy(srv.readings, readings)
	srv.imu.Unlock()
}

// TestApplyEchoEndToEnd drives the full capability path over a pipe: a
// v2 handshake, a framed report, a cap push, and the agent's apply echo
// landing in the server's end-to-end latency histogram and span recorder.
func TestApplyEchoEndToEnd(t *testing.T) {
	srv := newTracingServer(t, 2)
	agent, sims := newTestAgent(t, 0, 2)
	agent.cfg.ApplyEcho = true

	client, server := net.Pipe()
	go srv.Handle(server)
	defer client.Close()

	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}
	for _, d := range sims {
		d.SetLoad(120)
		d.Advance(1)
	}
	if err := agent.ReportOnce(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Readings()[0] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("framed report never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := srv.DecideOnce(1)
		errc <- err
	}()
	if err := agent.ReceiveCaps(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	// The echo is consumed by the connection goroutine; wait for the
	// histogram sample to land.
	h := srv.StatusHandler()
	for {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if strings.Contains(rec.Body.String(), "dps_e2e_latency_seconds_count 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("apply echo never reached dps_e2e_latency_seconds")
		}
		time.Sleep(time.Millisecond)
	}

	// The wire round left its spans: ingest on the report, push on the cap
	// batch, apply from the echo — all scoped to round 1.
	seen := map[string]bool{}
	for _, sp := range srv.Trace().Last(0) {
		seen[sp.Name] = true
		if sp.Name == trace.SpanApply && sp.Trace != 1 {
			t.Errorf("apply span scoped to round %d, want 1", sp.Trace)
		}
	}
	for _, want := range []string{trace.SpanIngest, trace.SpanPush, trace.SpanApply, trace.SpanDecide} {
		if !seen[want] {
			t.Errorf("no %q span recorded; saw %v", want, seen)
		}
	}
}

// TestDebugTraceEndpoint asserts GET /debug/trace serves valid Chrome
// trace_event JSON with at least one complete event per pipeline stage
// per round.
func TestDebugTraceEndpoint(t *testing.T) {
	srv := newTracingServer(t, 2)
	const rounds = 3
	for i := 0; i < rounds; i++ {
		setReadings(srv, power.Vector{30, 100})
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace = %d", rec.Code)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/debug/trace is not valid trace_event JSON: %v", err)
	}
	perStage := map[string]map[float64]bool{} // stage -> set of trace ids
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M", "X":
		default:
			t.Errorf("unexpected phase %q in event %+v", ev.Ph, ev)
		}
		if ev.Ph != "X" {
			continue
		}
		id, ok := ev.Args["trace_id"].(float64)
		if !ok {
			t.Fatalf("complete event %q lacks a trace_id arg: %+v", ev.Name, ev)
		}
		if perStage[ev.Name] == nil {
			perStage[ev.Name] = map[float64]bool{}
		}
		perStage[ev.Name][id] = true
	}
	for _, stage := range []string{
		trace.SpanKalman, trace.SpanStateless, trace.SpanPriority,
		trace.SpanReadjust, trace.SpanDecide,
	} {
		if len(perStage[stage]) != rounds {
			t.Errorf("stage %q covers %d rounds, want %d", stage, len(perStage[stage]), rounds)
		}
	}

	rec = httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?last=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad last parameter = %d, want 400", rec.Code)
	}
}

// TestDebugWhyEndpoint asserts GET /debug/why answers the tentpole
// question for one unit from the flight recorder.
func TestDebugWhyEndpoint(t *testing.T) {
	srv := newTestServer(t, 2)
	h := srv.StatusHandler()

	// Idle unit 0 under a pressed unit 1: round after round of MIMD cuts
	// on unit 0.
	for i := 0; i < 3; i++ {
		setReadings(srv, power.Vector{20, 100})
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/why?unit=0", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/why = %d", rec.Code)
	}
	var rows []WhyRecord
	if err := json.NewDecoder(rec.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no provenance rows for a unit whose cap was cut every round")
	}
	for i, row := range rows {
		if row.Reason == "" {
			t.Errorf("row %d has an empty reason: %+v", i, row)
		}
		if i > 0 && rows[i-1].Round <= row.Round {
			t.Errorf("rows not newest-first: %d then %d", rows[i-1].Round, row.Round)
		}
	}

	for _, bad := range []string{
		"/debug/why",            // unit missing
		"/debug/why?unit=9",     // out of range
		"/debug/why?unit=-1",    // negative
		"/debug/why?unit=x",     // not an integer
		"/debug/why?unit=0&n=0", // bad n
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", bad, nil))
		if rec.Code != 400 {
			t.Errorf("GET %s = %d, want 400", bad, rec.Code)
		}
	}
}

// TestDebugRoundsGolden pins the /debug/rounds JSON shape — including the
// provenance reason field — the way testdata/metrics.golden pins the
// Prometheus exposition. Stage timings are the only wall-clock dependent
// values and are zeroed before comparison.
func TestDebugRoundsGolden(t *testing.T) {
	srv := newTestServer(t, 2)
	srv.now = func() time.Time { return time.Unix(1700000000, 0).UTC() }
	for i := 0; i < 2; i++ {
		setReadings(srv, power.Vector{30, 100})
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=2", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/rounds = %d", rec.Code)
	}
	var rounds []telemetry.RoundRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &rounds); err != nil {
		t.Fatal(err)
	}
	for i := range rounds {
		rounds[i].Stages = telemetry.StageSeconds{}
	}
	masked, err := json.MarshalIndent(rounds, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := string(masked) + "\n"
	if !strings.Contains(got, `"reason"`) {
		t.Error("no unit carries a reason field; the golden round moved caps")
	}

	golden := filepath.Join("testdata", "rounds.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("/debug/rounds drifted from %s (UPDATE_GOLDEN=1 regenerates):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}

	// The ?unit= filter narrows every record to that unit's row and
	// leaves the round-level fields untouched.
	rec = httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=2&unit=1", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/rounds?unit=1 = %d", rec.Code)
	}
	var filtered []telemetry.RoundRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered) != len(rounds) {
		t.Fatalf("unit filter changed record count: %d != %d", len(filtered), len(rounds))
	}
	for i, r := range filtered {
		if len(r.Units) != 1 || r.Units[0].Unit != 1 {
			t.Fatalf("record %d: want exactly unit 1, got %+v", i, r.Units)
		}
		if r.Round != rounds[i].Round || r.CapSumW != rounds[i].CapSumW {
			t.Fatalf("record %d: round-level fields drifted under the unit filter", i)
		}
		if r.Units[0].CapW != rounds[i].Units[1].CapW {
			t.Fatalf("record %d: filtered row differs from the unfiltered unit 1 row", i)
		}
	}

	rec = httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?unit=-1", nil))
	if rec.Code != 400 {
		t.Fatalf("/debug/rounds?unit=-1 = %d, want 400", rec.Code)
	}

	// A unit beyond every record's range yields records with no unit rows
	// rather than an error: the recorder does not know the unit universe.
	rec = httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/rounds?n=1&unit=99", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/rounds?unit=99 = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 1 || len(filtered[0].Units) != 0 {
		t.Fatalf("out-of-range unit filter: want 1 record with 0 unit rows, got %+v", filtered)
	}
}
