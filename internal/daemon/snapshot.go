package daemon

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
	"dps/internal/snapshot"
)

// This file is the primary's half of the high-availability plane
// (DESIGN.md §14): after every completed decision round the daemon
// exports its full state — the controller's internals plus its own round
// caches — into a versioned snapshot image, diffs it section-by-section
// against the previous round's image, writes the image to the snapshot
// file on the configured cadence, and streams the changed sections as a
// delta frame to every attached warm standby. Everything runs after the
// caps of the round are already pushed, on the decision goroutine, so it
// never races the manager and never delays a cap delivery; all buffers
// are retained, so a warm replication round allocates nothing.

// snapshotActive reports whether this round needs a state image. Caller
// holds snapMu.
func (s *Server) snapshotActive() bool {
	return s.cfg.SnapshotPath != "" || len(s.replicas) > 0
}

// snapshotEvery resolves the file-write cadence.
func (s *Server) snapshotEvery() uint64 {
	if s.cfg.SnapshotEvery > 0 {
		return uint64(s.cfg.SnapshotEvery)
	}
	return DefaultSnapshotEvery
}

// exportState fills s.snapState with the complete post-round state: the
// manager's controller state when it is a core.DPS (HasCore), and the
// daemon's own round caches either way (HasDaemon) — caps delivered,
// caps enforced, health, report ages, and the ingest front buffer, so a
// restored daemon's first round decides on the primary's readings
// rather than zeros. Runs on the decision goroutine only: the manager
// is quiescent between rounds.
func (s *Server) exportState(round uint64) {
	st := &s.snapState
	if d, ok := s.cfg.Manager.(*core.DPS); ok {
		d.ExportState(st)
	} else {
		b := s.cfg.Manager.Budget()
		st.Units = s.cfg.Units
		st.Seed = 0
		st.BudgetTotal, st.UnitMax, st.UnitMin = b.Total, b.UnitMax, b.UnitMin
		st.Sparse, st.SparseRefreshEvery = false, 0
		st.HasCore, st.HasSparse = false, false
	}
	st.HasDaemon = true
	now := s.now()
	st.SavedUnixMS = now.UnixMilli()
	st.Rounds = round

	n := s.cfg.Units
	st.LastCaps = reuseVec(st.LastCaps, n)
	st.LastPushed = reuseVec(st.LastPushed, n)
	st.Health = reuseU8(st.Health, n)
	s.mu.Lock()
	copy(st.LastCaps, s.lastCaps)
	copy(st.LastPushed, s.lastPushed)
	if s.health != nil {
		for u, h := range s.health {
			st.Health[u] = uint8(h)
		}
	} else {
		clear(st.Health)
	}
	s.mu.Unlock()

	st.Readings = reuseVec(st.Readings, n)
	st.ReportAgeMS = reuseU64(st.ReportAgeMS, n)
	s.imu.Lock()
	copy(st.Readings, s.readings)
	if s.lastReport != nil {
		for u := range st.ReportAgeMS {
			age := now.Sub(s.lastReport[u])
			if age < 0 {
				age = 0
			}
			st.ReportAgeMS[u] = uint64(age.Milliseconds())
		}
	} else {
		clear(st.ReportAgeMS)
	}
	s.imu.Unlock()
}

// replicateRound assembles the round's state image and fans it out: the
// snapshot file on its cadence, a full FrameSnapshot to replicas that
// have not yet been synced, and a FrameDelta carrying only the changed
// sections to everyone else. Called by DecideOnce after the round is
// published; a no-op unless a snapshot path is configured or a standby
// is attached.
func (s *Server) replicateRound(round uint64) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if !s.snapshotActive() {
		return
	}

	start := s.now()
	s.exportState(round)
	s.nextEnc = snapshot.Encode(s.nextEnc, &s.snapState)
	s.curSecs = splitImage(s.curSecs[:0], s.nextEnc)

	// Section diff against the previous image. The encoder emits a fixed
	// section sequence for a fixed configuration, so an index walk with
	// an id guard is exact; the first image (or any shape change) yields
	// a full-image "delta" which is never sent — unsynced replicas get
	// the complete frame instead.
	s.deltaBuf = s.deltaBuf[:0]
	s.deltaBuf = append(s.deltaBuf, 0, 0, 0, 0, 0, 0, 0, 0)
	proto.PutDeltaRound(s.deltaBuf, round)
	prevComplete := len(s.prevSecs) == len(s.curSecs)
	for i, sec := range s.curSecs {
		if prevComplete && sectionID(s.prevSecs[i]) == sectionID(sec) && bytesEqual(s.prevSecs[i], sec) {
			continue
		}
		s.deltaBuf = append(s.deltaBuf, sec...)
	}

	// Swap the image buffers: the just-encoded image becomes current and
	// the old current becomes next round's scratch. The section views
	// swap with the bytes they point into.
	s.snapEnc, s.nextEnc = s.nextEnc, s.snapEnc
	s.curSecs, s.prevSecs = s.prevSecs[:0], s.curSecs

	s.metrics.snapshotBytes.Set(float64(len(s.snapEnc)))
	s.metrics.snapshotDur.Observe(s.now().Sub(start).Seconds())

	for rc := range s.replicas {
		var err error
		if !rc.synced {
			if err = rc.writeFrame(proto.FrameSnapshot, s.snapEnc); err == nil {
				rc.synced = true
			}
		} else {
			err = rc.writeFrame(proto.FrameDelta, s.deltaBuf)
		}
		if err != nil {
			s.logf("daemon: dropping standby %v: %v", rc.conn.RemoteAddr(), err)
			rc.conn.Close()
			delete(s.replicas, rc)
		}
	}

	if s.cfg.SnapshotPath != "" && (s.lastFileRound == 0 || round-s.lastFileRound >= s.snapshotEvery()) {
		if err := writeFileAtomic(s.cfg.SnapshotPath, s.snapEnc); err != nil {
			s.logf("daemon: snapshot write: %v", err)
		} else {
			s.lastFileRound = round
		}
	}
}

// sectionID reads the id of a raw section framing.
func sectionID(raw []byte) uint16 {
	return uint16(raw[0]) | uint16(raw[1])<<8
}

// splitImage splits a snapshot image this server just encoded into raw
// section framings, appended to dst. No CRC verification: the bytes came
// out of our own encoder a moment ago (replicated input from elsewhere
// goes through snapshot.AppendSections, which does verify).
func splitImage(dst [][]byte, img []byte) [][]byte {
	rest := img[snapshot.HeaderSize:]
	for len(rest) >= 6 {
		n := uint32(rest[2]) | uint32(rest[3])<<8 | uint32(rest[4])<<16 | uint32(rest[5])<<24
		total := 6 + int(n) + 4
		if len(rest) < total {
			break
		}
		dst = append(dst, rest[:total])
		rest = rest[total:]
	}
	return dst
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, so a crash mid-write can never leave a torn snapshot where the
// next boot's -restore-from will find it.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// RestoreFromSnapshot loads a snapshot file into the server: the
// controller's state (required when the manager is a core.DPS) and the
// daemon's round caches, health clocks, and reading buffer. It must be
// called after NewServer and before any decision round — dpsd calls it
// at boot when -restore-from is set. Stale (older than SnapshotMaxAge
// by its own save stamp), corrupt, or mismatched files are rejected
// with an error and the server is left in its fresh-boot state.
func (s *Server) RestoreFromSnapshot(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("daemon: reading snapshot: %w", err)
	}
	st, err := snapshot.Decode(data)
	if err != nil {
		return fmt.Errorf("daemon: snapshot %s: %w", path, err)
	}
	if st.Units != s.cfg.Units {
		return fmt.Errorf("daemon: snapshot %s is for %d units, server has %d", path, st.Units, s.cfg.Units)
	}
	maxAge := s.cfg.SnapshotMaxAge
	if maxAge == 0 {
		maxAge = DefaultSnapshotMaxAge
	}
	if st.HasDaemon {
		if age := s.now().Sub(time.UnixMilli(st.SavedUnixMS)); age > maxAge {
			return fmt.Errorf("daemon: snapshot %s is stale: saved %v ago, limit %v", path, age.Round(time.Second), maxAge)
		}
	}
	if d, ok := s.cfg.Manager.(*core.DPS); ok {
		if !st.HasCore {
			return fmt.Errorf("daemon: snapshot %s carries no controller state", path)
		}
		if err := d.RestoreState(st); err != nil {
			return fmt.Errorf("daemon: snapshot %s: %w", path, err)
		}
	}
	s.adoptDaemonState(st)
	s.logf("daemon: restored state from %s: round %d, %d units, %d high-priority (saved %s)",
		path, st.Rounds, st.Units, core.ExportedHighCount(st),
		time.UnixMilli(st.SavedUnixMS).UTC().Format(time.RFC3339))
	return nil
}

// adoptDaemonState installs a snapshot's daemon section: the round
// counter (continued, with the inherited count recorded for the
// uptime_rounds/state_age_rounds split), the delivered- and enforced-cap
// caches the degraded-mode pins reference, health states, staleness
// clocks rebuilt from relative report ages, and the ingest front
// buffer. The ingest dirty mask is fully set afterwards: the mask's
// clear-bit guarantee ("byte-identical to the previous snapshot") is
// meaningless across a process boundary, and a full mask is the
// bitwise-safe superset.
func (s *Server) adoptDaemonState(st *snapshot.State) {
	if !st.HasDaemon {
		return
	}
	s.inheritedRounds.Store(st.Rounds)
	s.rounds.Store(st.Rounds)

	s.mu.Lock()
	copy(s.lastCaps, st.LastCaps)
	copy(s.lastPushed, st.LastPushed)
	if s.health != nil && len(st.Health) == len(s.health) {
		for u, h := range st.Health {
			if h > uint8(core.HealthDead) {
				h = uint8(core.HealthDead)
			}
			s.health[u] = core.UnitHealth(h)
		}
	}
	s.mu.Unlock()

	now := s.now()
	s.imu.Lock()
	copy(s.readings, st.Readings)
	if s.lastReport != nil && len(st.ReportAgeMS) == len(s.lastReport) {
		for u, age := range st.ReportAgeMS {
			s.lastReport[u] = now.Add(-time.Duration(age) * time.Millisecond)
		}
	}
	s.dirty.SetAll()
	s.imu.Unlock()
}

// handleReplica serves one warm-standby connection: acknowledge the
// handshake, hand the connection to the replication plane (the decision
// loop sends the full image on the next round, deltas after), and block
// until the standby disconnects. The standby sends nothing after its
// hello, so no read deadline is armed — a replica connection is
// write-mostly and reaped by write errors instead.
func (s *Server) handleReplica(conn net.Conn, sess *proto.Session) error {
	defer sess.Release()
	if s.isClosed() {
		conn.Close()
		return fmt.Errorf("daemon: server closed, rejecting standby %v", conn.RemoteAddr())
	}
	conn.SetReadDeadline(time.Time{})
	if err := sess.Ack(0); err != nil {
		conn.Close()
		return err
	}
	rc := &replicaConn{conn: conn}
	s.snapMu.Lock()
	s.replicas[rc] = struct{}{}
	s.snapMu.Unlock()
	s.logf("daemon: standby connected from %v", conn.RemoteAddr())

	defer func() {
		s.snapMu.Lock()
		delete(s.replicas, rc)
		s.snapMu.Unlock()
		conn.Close()
		s.logf("daemon: standby %v disconnected", conn.RemoteAddr())
	}()
	buf := make([]byte, 1)
	for {
		if _, err := conn.Read(buf); err != nil {
			if s.isClosed() {
				return nil
			}
			return nil // a standby hanging up is normal, not an error
		}
	}
}

// reuseVec, reuseU64 and reuseU8 are capacity-reusing resizes for the
// export scratch (the snapshot package has its own unexported set).
func reuseVec(v power.Vector, n int) power.Vector {
	if cap(v) < n {
		return make(power.Vector, n)
	}
	return v[:n]
}

func reuseU64(v []uint64, n int) []uint64 {
	if cap(v) < n {
		return make([]uint64, n)
	}
	return v[:n]
}

func reuseU8(v []uint8, n int) []uint8 {
	if cap(v) < n {
		return make([]uint8, n)
	}
	return v[:n]
}
