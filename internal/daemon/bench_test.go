package daemon

import (
	"net"
	"sync"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/rapl"
)

// benchRound measures one full decision round over real loopback TCP with
// `agents` connected 2-socket nodes: the §6.5 claim is that fan-out to
// 1,000 nodes costs milliseconds against a one-second loop.
func benchRound(b *testing.B, agents int) {
	units := agents * 2
	mgr, err := core.NewDPS(core.DefaultConfig(units, power.Budget{
		Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10,
	}))
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.Handle(conn)
		}
	}()

	// Connect the agents and run their cap-receiving loops so the server's
	// pushes drain.
	var wg sync.WaitGroup
	defer wg.Wait()
	defer srv.Close()
	agentList := make([]*Agent, agents)
	for i := 0; i < agents; i++ {
		devs := make([]rapl.Device, 2)
		for j := range devs {
			cfg := rapl.DefaultSimConfig()
			cfg.NoiseStdDev = 0
			d, err := rapl.NewSimDevice(cfg)
			if err != nil {
				b.Fatal(err)
			}
			d.SetLoad(120)
			d.Advance(1)
			devs[j] = d
		}
		a, err := Dial("tcp", l.Addr().String(), AgentConfig{
			FirstUnit: power.UnitID(i * 2),
			Devices:   devs,
			Interval:  time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		agentList[i] = a
		wg.Add(1)
		go func(a *Agent) {
			defer wg.Done()
			for a.ReceiveCaps() == nil {
			}
		}(a)
	}
	// One report each so the server has readings.
	for _, a := range agentList {
		if err := a.ReportOnce(1); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for all reports to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r := srv.Readings()
		ok := true
		for _, w := range r {
			if w == 0 {
				ok = false
				break
			}
		}
		if ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.DecideOnce(1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(agents), "nodes")
}

func BenchmarkDaemonRound10Nodes(b *testing.B)  { benchRound(b, 10) }
func BenchmarkDaemonRound100Nodes(b *testing.B) { benchRound(b, 100) }

// BenchmarkProtoBatchPerNode isolates one node's wire encoding per round.
func BenchmarkProtoBatchPerNode(b *testing.B) {
	srv, agent := func() (*Server, *Agent) {
		mgr, err := core.NewDPS(core.DefaultConfig(2, testBudget(2)))
		if err != nil {
			b.Fatal(err)
		}
		srv, err := NewServer(ServerConfig{Manager: mgr, Units: 2, Interval: time.Hour})
		if err != nil {
			b.Fatal(err)
		}
		a, devs := func() (*Agent, []*rapl.SimDevice) {
			devs := make([]rapl.Device, 2)
			sims := make([]*rapl.SimDevice, 2)
			for i := range devs {
				cfg := rapl.DefaultSimConfig()
				cfg.NoiseStdDev = 0
				d, err := rapl.NewSimDevice(cfg)
				if err != nil {
					b.Fatal(err)
				}
				d.SetLoad(120)
				devs[i] = d
				sims[i] = d
			}
			a, err := NewAgent(AgentConfig{FirstUnit: 0, Devices: devs, Interval: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			return a, sims
		}()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			conn, err := l.Accept()
			if err == nil {
				go srv.Handle(conn)
			}
			l.Close()
		}()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Handshake(conn); err != nil {
			b.Fatal(err)
		}
		_ = devs
		return srv, a
	}()
	defer srv.Close()

	go func() {
		for agent.ReceiveCaps() == nil {
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, dev := range agent.cfg.Devices {
			dev.(*rapl.SimDevice).Advance(0.001)
		}
		if err := agent.ReportOnce(0.001); err != nil {
			b.Fatal(err)
		}
		if i%64 == 0 {
			if _, err := srv.DecideOnce(1); err != nil {
				b.Fatal(err)
			}
		}
	}
	if srv.Rounds() == 0 {
		b.Fatal("no rounds completed")
	}
}
