package daemon

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/faultinject"
	"dps/internal/power"
	"dps/internal/rapl"
)

// TestFailoverSmoke is the wall-clock high-availability end-to-end
// (`make failover-smoke`): a primary serving real reconnecting agents
// over TCP, a warm standby following its replication stream through a
// fault-injected connection, and a deterministic injected crash of the
// replication link standing in for the primary's death. The standby must
// take over, the agents must rotate onto it through their ordinary
// failover address list, and the cluster must converge back to all-fresh
// — with the standby's watchdog, which audited every post-takeover
// round, completely silent.
func TestFailoverSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock failover smoke skipped in -short")
	}
	const units = 4
	const interval = 20 * time.Millisecond
	budget := testBudget(units)

	newServer := func(mutate func(*ServerConfig)) *Server {
		mgr, err := core.NewDPS(core.DefaultConfig(units, budget))
		if err != nil {
			t.Fatal(err)
		}
		cfg := ServerConfig{
			Manager:       mgr,
			Units:         units,
			Interval:      interval,
			StaleAfter:    100 * time.Millisecond,
			DeadAfter:     300 * time.Millisecond,
			SeriesEnabled: true,
			WatchEnabled:  true,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	primary := newServer(nil)
	primaryL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	primaryAddr := primaryL.Addr().String()
	serveDone := make(chan error, 1)
	go func() { serveDone <- primary.Serve(primaryL) }()

	// Reserve the standby's takeover address up front: the agents carry it
	// in their failover list from the start, exactly like a deployed
	// `-connect primary:7891,standby:7891`.
	tmpL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	standbyAddr := tmpL.Addr().String()
	tmpL.Close()

	standby := newServer(func(sc *ServerConfig) { sc.StandbyOf = primaryAddr })
	// The injected crash: the standby's replication connection is
	// fault-wrapped to die deterministically after a fixed number of
	// operations — from the standby's point of view, the primary failed
	// mid-stream.
	standby.dial = func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return faultinject.WrapConn(conn, faultinject.ConnConfig{Seed: 11, DropAfterOps: 120}, nil), nil
	}
	var lmu sync.Mutex
	var takeoverL net.Listener
	standbyDone := make(chan error, 1)
	go func() {
		standbyDone <- standby.RunStandby(context.Background(), func() (net.Listener, error) {
			l, err := net.Listen("tcp", standbyAddr)
			if err != nil {
				return nil, err
			}
			lmu.Lock()
			takeoverL = l
			lmu.Unlock()
			return l, nil
		})
	}()

	// Two sim-backed agents, each owning two units, reconnecting through
	// the ordinary failover rotation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agentDone := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		devs := make([]rapl.Device, 2)
		for j := range devs {
			cfg := rapl.DefaultSimConfig()
			cfg.NoiseStdDev = 0
			cfg.Seed = int64(i*10 + j + 1)
			sim, err := rapl.NewSimDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim.SetLoad(120)
			devs[j] = sim
		}
		a, err := NewAgent(AgentConfig{
			FirstUnit: power.UnitID(i * 2),
			Devices:   devs,
			Interval:  interval,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer func() { agentDone <- struct{}{} }()
			a.RunWithReconnectAddrs(ctx, "tcp", []string{primaryAddr, standbyAddr},
				5*time.Millisecond, 50*time.Millisecond)
		}()
	}

	waitState := func(what string, timeout time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (primary %+v, standby %+v)",
					what, primary.Snapshot(), standby.Snapshot())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Phase 1: steady state — both agents on the primary, the standby
	// synced and following.
	waitState("agents and standby attached to primary", 10*time.Second, func() bool {
		st := primary.Snapshot()
		primary.snapMu.Lock()
		replicas := len(primary.replicas)
		primary.snapMu.Unlock()
		return st.Agents == 2 && st.StaleUnits == 0 && st.DeadUnits == 0 && st.Rounds > 3 && replicas == 1
	})

	// Phase 2: the injected fault severs the replication link; the standby
	// declares the primary dead and takes over. The primary process is
	// then gone for real, so its agents drop and rotate.
	waitState("standby takeover", 20*time.Second, func() bool {
		return standby.metrics.failovers.Value() == 1
	})
	primary.Close()
	primaryL.Close()
	<-serveDone

	// Phase 3: convergence on the standby — every agent re-attached, all
	// units fresh, rounds flowing, budget intact.
	waitState("agents converged on standby", 20*time.Second, func() bool {
		st := standby.Snapshot()
		return st.Agents == 2 && st.StaleUnits == 0 && st.DeadUnits == 0 && st.UptimeRounds > 3
	})
	r1 := standby.Rounds()
	waitState("standby rounds advancing", 10*time.Second, func() bool {
		return standby.Rounds() > r1
	})
	st := standby.Snapshot()
	if st.CapSumW > float64(budget.Total)+1e-6 {
		t.Errorf("budget violated after failover: Σcaps %v > %v", st.CapSumW, budget.Total)
	}
	if st.UptimeRounds >= st.StateAgeRounds {
		t.Errorf("standby uptime %d not younger than its state age %d — inheritance not recorded",
			st.UptimeRounds, st.StateAgeRounds)
	}

	// The watchdog audited every round the standby decided, takeover
	// included. A budget-safe handover keeps every builtin silent.
	for _, a := range standby.Watcher().Alerts() {
		if a.FiredCount != 0 {
			t.Errorf("standby watchdog rule %s fired %d times across the failover (last: %s)",
				a.Rule, a.FiredCount, a.Message)
		}
	}
	if got := standby.metrics.failovers.Value(); got != 1 {
		t.Errorf("dps_failover_total = %d, want exactly 1", got)
	}

	cancel()
	standby.Close()
	lmu.Lock()
	if takeoverL != nil {
		takeoverL.Close()
	}
	lmu.Unlock()
	<-standbyDone
	<-agentDone
	<-agentDone
}
