package daemon

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"dps/internal/core"
	"dps/internal/proto"
	"dps/internal/snapshot"
)

// This file is the warm-standby half of the high-availability plane
// (DESIGN.md §14). A standby dpsd runs the same Server the primary does,
// but instead of serving agents it dials the primary with a Replicate
// hello and follows its state: one full snapshot image on connect, then
// one delta frame per primary round carrying only the sections that
// round changed. The standby keeps the latest raw section framings by
// id; when the link to the primary dies after at least one full sync,
// it assembles the overlay into a snapshot image, restores itself from
// it, and takes over — opening its agent listener only then, so agents
// cycling their reconnect address list land on it within one backoff.

// standbyRedialWait bounds the reconnect backoff while a standby cannot
// reach its primary before first sync.
const standbyRedialWait = 2 * time.Second

// RunStandby follows the primary named by StandbyOf until the link to it
// is lost, then takes over: it restores the server from the replicated
// state and serves agents on the listener that listen opens. The
// listener is created only at takeover — until then agents probing this
// address get a refused connection and rotate back to the primary.
//
// Returns nil when ctx is cancelled before a takeover. After a takeover
// it behaves exactly like Serve, and ctx is no longer consulted — the
// caller stops it with Close plus closing the listener, as for any
// server.
func (s *Server) RunStandby(ctx context.Context, listen func() (net.Listener, error)) error {
	if s.cfg.StandbyOf == "" {
		return fmt.Errorf("daemon: RunStandby without StandbyOf")
	}
	var (
		frameBuf  []byte                // ReadStateFrame reuse
		secs      = map[uint16][]byte{} // latest raw section framing by id
		scratch   snapshot.State        // decode target, reused
		synced    bool                  // at least one full image validated
		lastRound uint64                // primary round of the last frame
	)
	for {
		if ctx.Err() != nil {
			return nil
		}
		conn, err := s.dialStandby()
		if err != nil {
			s.logf("daemon: standby: dialing primary %s: %v", s.cfg.StandbyOf, err)
			if synced {
				return s.takeOver(&scratch, secs, lastRound, listen)
			}
			if !sleepCtx(ctx, standbyRedialWait) {
				return nil
			}
			continue
		}
		stop := context.AfterFunc(ctx, func() { conn.Close() })
		sess, err := proto.Connect(conn, proto.Hello{FirstUnit: 0, Units: 1, Replicate: true})
		if err != nil {
			stop()
			conn.Close()
			s.logf("daemon: standby: handshake with primary %s: %v", s.cfg.StandbyOf, err)
			if !sleepCtx(ctx, standbyRedialWait) {
				return nil
			}
			continue
		}
		s.logf("daemon: standby: following primary %s", s.cfg.StandbyOf)

		for {
			var frame byte
			var payload []byte
			frame, payload, frameBuf, err = proto.ReadStateFrame(conn, frameBuf)
			if err != nil {
				break
			}
			switch frame {
			case proto.FrameSnapshot:
				// Validate the complete image before adopting anything from
				// it: a snapshot that does not decode is a primary bug or a
				// torn stream, and following it would poison a takeover.
				if err = snapshot.DecodeInto(&scratch, payload); err != nil {
					s.logf("daemon: standby: rejecting snapshot from primary: %v", err)
					break
				}
				clear(secs)
				storeSections(secs, payload)
				synced = true
				lastRound = scratch.Rounds
				s.metrics.standbyLag.Set(0)
				s.logf("daemon: standby: synced full state (round %d, %d units, %d bytes)",
					scratch.Rounds, scratch.Units, len(payload))
			case proto.FrameDelta:
				if !synced {
					continue // deltas against state we never saw are noise
				}
				var round uint64
				var sections []byte
				round, sections, err = proto.DeltaRound(payload)
				if err != nil {
					break
				}
				overlaySections(secs, sections)
				// Consecutive rounds have lag 0; the gauge surfaces skipped
				// rounds, which with a per-round delta stream means frames
				// lost to the transport.
				if round > lastRound {
					s.metrics.standbyLag.Set(float64(round - lastRound - 1))
				}
				lastRound = round
			}
			if err != nil {
				break
			}
		}
		sess.Release()
		stop()
		conn.Close()
		if ctx.Err() != nil {
			return nil
		}
		if synced {
			return s.takeOver(&scratch, secs, lastRound, listen)
		}
		s.logf("daemon: standby: link to primary lost before first sync: %v", err)
		if !sleepCtx(ctx, standbyRedialWait) {
			return nil
		}
	}
}

func (s *Server) dialStandby() (net.Conn, error) {
	dial := s.dial
	if dial == nil {
		dial = net.Dial
	}
	return dial("tcp", s.cfg.StandbyOf)
}

// takeOver restores the server from the replicated section overlay and
// serves agents. The overlay is re-assembled into a full image and
// decoded from scratch — every section CRC is re-verified on the way —
// so a delta that slipped in corrupt fails the takeover loudly rather
// than silently running a damaged controller.
func (s *Server) takeOver(st *snapshot.State, secs map[uint16][]byte, round uint64, listen func() (net.Listener, error)) error {
	ids := make([]int, 0, len(secs))
	for id := range secs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	raws := make([][]byte, 0, len(ids))
	for _, id := range ids {
		raws = append(raws, secs[uint16(id)])
	}
	img := snapshot.Assemble(nil, raws...)
	if err := snapshot.DecodeInto(st, img); err != nil {
		return fmt.Errorf("daemon: standby takeover: replicated state: %w", err)
	}
	if st.Units != s.cfg.Units {
		return fmt.Errorf("daemon: standby takeover: primary ran %d units, this server %d", st.Units, s.cfg.Units)
	}
	if d, ok := s.cfg.Manager.(*core.DPS); ok {
		if !st.HasCore {
			return fmt.Errorf("daemon: standby takeover: replicated state carries no controller state")
		}
		if err := d.RestoreState(st); err != nil {
			return fmt.Errorf("daemon: standby takeover: %w", err)
		}
	}
	s.adoptDaemonState(st)
	s.metrics.failovers.Inc()
	s.logf("daemon: standby: primary gone, taking over at round %d (%d units, %d high-priority)",
		round, st.Units, core.ExportedHighCount(st))
	l, err := listen()
	if err != nil {
		return fmt.Errorf("daemon: standby takeover: listener: %w", err)
	}
	return s.Serve(l)
}

// storeSections splits a full snapshot image into its raw section
// framings and stores a private copy of each by id. The image was
// DecodeInto-validated just before, so the walk cannot fail.
func storeSections(secs map[uint16][]byte, img []byte) {
	rest := img[snapshot.HeaderSize:]
	for len(rest) >= 6 {
		n := uint32(rest[2]) | uint32(rest[3])<<8 | uint32(rest[4])<<16 | uint32(rest[5])<<24
		total := 6 + int(n) + 4
		if len(rest) < total {
			return
		}
		id := uint16(rest[0]) | uint16(rest[1])<<8
		secs[id] = append(secs[id][:0], rest[:total]...)
		rest = rest[total:]
	}
}

// overlaySections replaces stored section framings with the ones a delta
// frame carries (sections is a bare concatenation of raw framings, no
// header). Unknown ids are stored too: the standby faithfully relays
// forward-compatible sections it cannot interpret into its takeover
// image, where the decoder CRC-checks and skips them.
func overlaySections(secs map[uint16][]byte, sections []byte) {
	for len(sections) >= 6 {
		n := uint32(sections[2]) | uint32(sections[3])<<8 | uint32(sections[4])<<16 | uint32(sections[5])<<24
		total := 6 + int(n) + 4
		if len(sections) < total {
			return
		}
		id := uint16(sections[0]) | uint16(sections[1])<<8
		secs[id] = append(secs[id][:0], sections[:total]...)
		sections = sections[total:]
	}
}

// sleepCtx sleeps for d or until ctx is done; it reports false when the
// context ended the wait.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
