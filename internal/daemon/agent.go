package daemon

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dps/internal/power"
	"dps/internal/proto"
	"dps/internal/rapl"
	"dps/internal/telemetry"
	"dps/internal/trace"
)

// AgentConfig configures one node's client.
type AgentConfig struct {
	// FirstUnit is the node's first global unit ID; local unit i maps to
	// global FirstUnit+i.
	FirstUnit power.UnitID
	// Devices are the node's power-capping units, in local order.
	Devices []rapl.Device
	// Interval is the report period, matching the server's decision loop.
	Interval time.Duration
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// MeterErrorTolerance is the number of consecutive RAPL read errors
	// each meter rides through by holding its last good sample before an
	// error tears down the session. Zero selects the default
	// (DefaultMeterErrorTolerance); negative disables tolerance entirely.
	MeterErrorTolerance int
	// ReconnectJitter, if non-nil, replaces the rand source behind the
	// reconnect backoff jitter with a deterministic one (tests). It must
	// return values in [0, 1).
	ReconnectJitter func() float64
	// ApplyEcho advertises the cap-apply acknowledgement capability in the
	// handshake: after programming each cap batch the agent reports how
	// long the apply took, letting the server build a true reading→
	// enforced-cap latency histogram on its own clock. Off by default for
	// wire compatibility with version-1 servers.
	ApplyEcho bool
	// Batch advertises the batch/delta capability: reports travel as
	// sparse batch frames carrying only the units whose reading moved by
	// more than the delta epsilon since last sent, and a fully quiet
	// interval becomes a one-byte heartbeat. Off by default for wire
	// compatibility with version-1 servers.
	Batch bool
	// DeltaEpsilon is the local delta-suppression band in watts: a unit's
	// reading is withheld while it stays within ±epsilon of the last value
	// actually sent (compared in wire deciwatts, so epsilon 0 still
	// suppresses bit-identical readings and nothing else). Zero adopts the
	// epsilon the server advertises in its handshake ack; a positive value
	// overrides it. Ignored unless Batch is on.
	DeltaEpsilon power.Watts
	// RefreshEvery forces an unsuppressed full report every N reports on a
	// batch session, healing any divergence without waiting for readings
	// to move. Zero selects the default (DefaultRefreshEvery); negative
	// disables periodic refresh (pure delta — heartbeats alone keep the
	// session fresh). Ignored unless Batch is on.
	RefreshEvery int
	// TraceCtx advertises the trace-context capability: the controller
	// prefixes each cap batch with its round counter, so the agent's own
	// trace spans carry the round that caused them and a fleet-wide merge
	// (dpsctl trace --merge) can nest them under the right controller
	// round. Off by default for wire compatibility with version-1 servers.
	TraceCtx bool
	// Trace enables the agent's span recorder: meter read, report
	// decision, and cap apply each become a span in a local ring served
	// at GET /debug/trace. Off by default; recording is zero-cost when
	// off.
	Trace bool
	// TraceSpans caps the span ring (trace.DefaultSpanCapacity when 0).
	TraceSpans int
}

// DefaultMeterErrorTolerance is how many consecutive meter read errors an
// agent absorbs by default before surfacing the failure.
const DefaultMeterErrorTolerance = 3

// DefaultRefreshEvery is how often a batch-mode agent forces a full
// unsuppressed report by default: one complete refresh per 64 intervals
// bounds how long any divergence between the agent's and the controller's
// view of a quiet unit can persist.
const DefaultRefreshEvery = 64

// refreshEvery resolves the configured full-refresh period.
func (c AgentConfig) refreshEvery() int {
	switch {
	case c.RefreshEvery < 0:
		return 0
	case c.RefreshEvery == 0:
		return DefaultRefreshEvery
	}
	return c.RefreshEvery
}

// meterTolerance resolves the configured tolerance.
func (c AgentConfig) meterTolerance() int {
	switch {
	case c.MeterErrorTolerance < 0:
		return 0
	case c.MeterErrorTolerance == 0:
		return DefaultMeterErrorTolerance
	}
	return c.MeterErrorTolerance
}

func (c AgentConfig) validate() error {
	switch {
	case len(c.Devices) == 0:
		return errors.New("daemon: agent needs at least one device")
	case len(c.Devices) > 0xFF+1:
		return fmt.Errorf("daemon: %d devices exceed the protocol's per-node space", len(c.Devices))
	case c.Interval <= 0:
		return fmt.Errorf("daemon: non-positive agent interval %v", c.Interval)
	case c.DeltaEpsilon < 0 || math.IsNaN(float64(c.DeltaEpsilon)) || math.IsInf(float64(c.DeltaEpsilon), 0):
		return fmt.Errorf("daemon: invalid delta epsilon %v W", c.DeltaEpsilon)
	}
	return (proto.Hello{FirstUnit: c.FirstUnit, Units: len(c.Devices)}).Validate()
}

// Agent is a node client: it reads power from local RAPL devices, reports
// it, and applies the caps the controller pushes back. Reporting and cap
// application run on separate goroutines (see Run), so each direction owns
// its buffer and the counters are atomic.
type Agent struct {
	cfg    AgentConfig
	meters []*rapl.Meter
	conn   net.Conn
	sess   *proto.Session
	// writeMu serializes the two upstream writers that exist once the
	// apply-echo capability is on: report batches from the ticker goroutine
	// and echo frames from the cap-receiving goroutine.
	writeMu sync.Mutex

	reportBuf []power.Watts
	capBuf    []power.Watts
	// lastSent is the per-unit value last put on the wire, in deciwatts
	// (-1: never sent this session). Delta suppression compares against
	// it, so within-epsilon drift can never accumulate past epsilon.
	lastSent []int32
	recs     []proto.Record
	// sinceFull counts reports since the last complete vector went out;
	// at refreshEvery it forces an unsuppressed report.
	sinceFull int
	epsDW     uint16
	reports   atomic.Uint64
	applied   atomic.Uint64
	// lastRound is the newest controller round seen in a cap batch prefix
	// (trace-context sessions; stays 0 otherwise). Read by the report
	// goroutine to tag read/report spans, written by the cap goroutine.
	lastRound atomic.Uint64

	tel    *telemetry.Registry
	am     agentMetrics
	tracer *trace.Recorder
}

// agentMetrics are the node client's registry handles: liveness of the
// report/apply loops plus the reconnect machinery's state, enough to spot
// a flapping agent from a scrape alone.
type agentMetrics struct {
	reports      *telemetry.Counter
	applied      *telemetry.Counter
	reportErrors *telemetry.Counter
	reconnects   *telemetry.Counter
	suppressed   *telemetry.Counter
	heartbeats   *telemetry.Counter
	spans        *telemetry.Counter
	connected    *telemetry.Gauge
	backoff      *telemetry.Gauge
}

func newAgentMetrics(reg *telemetry.Registry) agentMetrics {
	registerBuildInfo(reg)
	return agentMetrics{
		reports:      reg.Counter("dps_agent_reports_total", "Power report batches sent."),
		applied:      reg.Counter("dps_agent_caps_applied_total", "Cap batches received and programmed."),
		reportErrors: reg.Counter("dps_agent_report_errors_total", "Failed meter reads or report sends."),
		reconnects:   reg.Counter("dps_agent_reconnects_total", "Connection attempts after a lost or failed session."),
		suppressed:   reg.Counter("dps_agent_suppressed_readings_total", "Per-unit readings withheld by delta suppression (unchanged within epsilon)."),
		heartbeats:   reg.Counter("dps_agent_heartbeats_total", "Heartbeat frames sent in place of fully-suppressed reports."),
		spans:        reg.Counter("dps_agent_trace_spans_total", "Spans recorded into the agent's trace ring."),
		connected:    reg.Gauge("dps_agent_connected", "1 while a handshaken controller session is live."),
		backoff:      reg.Gauge("dps_agent_backoff_seconds", "Current reconnect backoff (0 while connected)."),
	}
}

// NewAgent builds an agent over the node's devices.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	a := &Agent{
		cfg:       cfg,
		meters:    make([]*rapl.Meter, len(cfg.Devices)),
		reportBuf: make([]power.Watts, len(cfg.Devices)),
		capBuf:    make([]power.Watts, len(cfg.Devices)),
		lastSent:  make([]int32, len(cfg.Devices)),
		recs:      make([]proto.Record, 0, len(cfg.Devices)),
		tel:       reg,
		am:        newAgentMetrics(reg),
		tracer:    trace.NewRecorder(cfg.TraceSpans),
	}
	a.tracer.SetEnabled(cfg.Trace)
	for i, d := range cfg.Devices {
		a.meters[i] = rapl.NewTolerantMeter(d, cfg.meterTolerance())
	}
	return a, nil
}

// Telemetry returns the agent's metrics registry.
func (a *Agent) Telemetry() *telemetry.Registry { return a.tel }

// Trace returns the agent's span recorder (always non-nil; enabled per
// AgentConfig.Trace).
func (a *Agent) Trace() *trace.Recorder { return a.tracer }

// DebugHandler returns the agent's HTTP mux:
//
//	GET /metrics      agent counters in Prometheus text format
//	GET /healthz      200 while a controller session is live
//	GET /debug/trace  agent spans as Chrome trace_event JSON (?n=N)
//
// The concrete mux is returned so the agent binary can mount
// net/http/pprof alongside.
func (a *Agent) DebugHandler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", a.tel.Handler())
	mux.Handle("GET /debug/trace", a.tracer.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if a.am.connected.Value() == 0 {
			http.Error(w, "not connected to a controller", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Handshake introduces the agent on conn and waits for the server's
// acknowledgement. The connection is retained for subsequent rounds. On a
// batch session the delta epsilon resolves here: the local configured
// value when positive, else whatever the server's ack advertised.
func (a *Agent) Handshake(conn net.Conn) error {
	h := proto.Hello{
		FirstUnit: a.cfg.FirstUnit,
		Units:     len(a.cfg.Devices),
		ApplyEcho: a.cfg.ApplyEcho,
		Batch:     a.cfg.Batch,
		TraceCtx:  a.cfg.TraceCtx,
	}
	sess, err := proto.Connect(conn, h)
	if err != nil {
		conn.Close()
		return fmt.Errorf("daemon: agent handshake: %w", err)
	}
	// Prime the meters so the first report is a real interval average. A
	// priming failure must leave no half-open session behind: close the
	// socket and keep a.conn nil so a reconnecting caller retries from a
	// clean state instead of reusing a connection the server still
	// considers registered.
	for _, m := range a.meters {
		if _, err := m.Read(power.Seconds(a.cfg.Interval.Seconds())); err != nil {
			sess.Release()
			conn.Close()
			return fmt.Errorf("daemon: priming meter: %w", err)
		}
	}
	a.conn = conn
	a.sess = sess
	a.epsDW = 0
	if a.cfg.Batch {
		eps := a.cfg.DeltaEpsilon
		if eps <= 0 {
			eps = sess.DeltaEpsilon()
		}
		a.epsDW = proto.ToDeciwatts(eps)
	}
	// A fresh session starts from nothing: the first report is always a
	// complete vector, whatever the suppression state of the last one.
	for i := range a.lastSent {
		a.lastSent[i] = -1
	}
	a.sinceFull = 0
	a.am.connected.Set(1)
	return nil
}

// ReportOnce reads every local meter over the given elapsed interval and
// sends one power report batch. With tracing on, the meter read and the
// report decision each record a span tagged with the round the report
// will feed: the last round seen on the wire plus one (0+1 until the
// first trace-context cap batch arrives).
func (a *Agent) ReportOnce(elapsed power.Seconds) error {
	if a.sess == nil {
		return errors.New("daemon: agent not connected")
	}
	traceOn := a.tracer.On()
	round := a.lastRound.Load() + 1
	var readStart time.Time
	if traceOn {
		readStart = time.Now()
	}
	for i, m := range a.meters {
		w, err := m.Read(elapsed)
		if err != nil {
			a.am.reportErrors.Inc()
			return fmt.Errorf("daemon: reading unit %d: %w", int(a.cfg.FirstUnit)+i, err)
		}
		a.reportBuf[i] = w
	}
	var reportStart time.Time
	if traceOn {
		reportStart = time.Now()
		a.tracer.Record(round, trace.SpanRead, trace.LaneAgent,
			int32(a.cfg.FirstUnit), readStart, reportStart.Sub(readStart))
	}
	a.writeMu.Lock()
	err := a.writeReportLocked()
	a.writeMu.Unlock()
	if err != nil {
		a.am.reportErrors.Inc()
		return fmt.Errorf("daemon: sending report: %w", err)
	}
	if traceOn {
		a.tracer.Record(round, trace.SpanReport, trace.LaneAgent,
			int32(a.cfg.FirstUnit), reportStart, time.Since(reportStart))
		a.am.spans.Add(2)
	}
	a.reports.Add(1)
	a.am.reports.Inc()
	return nil
}

// writeReportLocked sends one report. On a non-batch session that is the
// classic full batch (framed iff apply-echo negotiated). On a batch
// session it is a delta: only units whose reading moved past epsilon
// since their last sent value go on the wire — an omitted unit tells the
// server "unchanged within epsilon, my reading stands" — and a fully
// suppressed interval collapses to a one-byte heartbeat so liveness
// never depends on readings moving. Caller holds writeMu.
func (a *Agent) writeReportLocked() error {
	if !a.cfg.Batch {
		return a.sess.WriteReport(a.reportBuf)
	}
	full := a.lastSent[0] < 0
	if n := a.cfg.refreshEvery(); n > 0 && a.sinceFull+1 >= n {
		full = true
	}
	recs := a.recs[:0]
	suppressed := 0
	for i, w := range a.reportBuf {
		dw := int32(proto.ToDeciwatts(w))
		if !full && a.lastSent[i] >= 0 && absDelta(dw, a.lastSent[i]) <= int32(a.epsDW) {
			suppressed++
			continue
		}
		recs = append(recs, proto.Record{LocalUnit: uint8(i), Value: uint16(dw)})
		a.lastSent[i] = dw
	}
	if suppressed > 0 {
		a.am.suppressed.Add(uint64(suppressed))
	}
	if len(recs) == len(a.reportBuf) {
		a.sinceFull = 0
	} else {
		a.sinceFull++
	}
	if len(recs) == 0 {
		a.am.heartbeats.Inc()
		return a.sess.WriteHeartbeat()
	}
	return a.sess.WriteDelta(recs)
}

func absDelta(a, b int32) int32 {
	if a < b {
		return b - a
	}
	return a - b
}

// ReceiveCaps blocks for one cap batch from the controller and programs
// every local device. On a trace-context session the batch's round
// prefix updates the agent's round clock and tags the cap_apply span —
// the agent-clock twin of the server's RTT-inferred apply span, which is
// what lets a fleet trace merge estimate the clock offset.
func (a *Agent) ReceiveCaps() error {
	if a.sess == nil {
		return errors.New("daemon: agent not connected")
	}
	round, err := a.sess.ReadCapsRound(a.capBuf)
	if err != nil {
		return fmt.Errorf("daemon: receiving caps: %w", err)
	}
	if round > 0 {
		a.lastRound.Store(round)
	}
	applyStart := time.Now()
	for i, c := range a.capBuf {
		if err := a.cfg.Devices[i].SetCap(c); err != nil {
			return fmt.Errorf("daemon: capping unit %d: %w", int(a.cfg.FirstUnit)+i, err)
		}
	}
	applyDur := time.Since(applyStart)
	if a.tracer.On() {
		a.tracer.Record(round, trace.SpanCapApply, trace.LaneAgent,
			int32(a.cfg.FirstUnit), applyStart, applyDur)
		a.am.spans.Inc()
	}
	a.applied.Add(1)
	a.am.applied.Inc()
	if a.cfg.ApplyEcho {
		a.writeMu.Lock()
		err := a.sess.WriteApplyEcho(applyDur)
		a.writeMu.Unlock()
		if err != nil {
			return fmt.Errorf("daemon: sending apply echo: %w", err)
		}
	}
	return nil
}

// Reports returns the number of report batches sent. Safe to call from
// any goroutine.
func (a *Agent) Reports() uint64 { return a.reports.Load() }

// Applied returns the number of cap batches applied. Safe to call from
// any goroutine.
func (a *Agent) Applied() uint64 { return a.applied.Load() }

// Run drives the agent until ctx is done or the connection fails: a
// reporting ticker on one side, a cap-applying read loop on the other.
// The connection must already be handshaken.
func (a *Agent) Run(ctx context.Context) error {
	if a.sess == nil {
		return errors.New("daemon: agent not connected")
	}
	errc := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(2)

	go func() {
		defer wg.Done()
		ticker := time.NewTicker(a.cfg.Interval)
		defer ticker.Stop()
		last := time.Now()
		for {
			select {
			case <-ctx.Done():
				errc <- ctx.Err()
				return
			case now := <-ticker.C:
				elapsed := power.Seconds(now.Sub(last).Seconds())
				last = now
				if err := a.ReportOnce(elapsed); err != nil {
					errc <- err
					return
				}
			}
		}
	}()

	go func() {
		defer wg.Done()
		for {
			if err := a.ReceiveCaps(); err != nil {
				errc <- err
				return
			}
		}
	}()

	// Join both directions before returning: a reconnecting caller will
	// reuse the agent's buffers, so no goroutine from this session may
	// outlive it. Only then can the session's scratch go back to the pool.
	err := <-errc
	a.conn.Close()
	wg.Wait()
	a.sess.Release()
	a.sess = nil
	a.am.connected.Set(0)
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil
	}
	return err
}

// jitteredBackoff spreads a nominal backoff over [backoff/2, backoff)
// (equal jitter). A controller restart disconnects every agent in the
// same instant; without jitter they all redial on the same doubling
// schedule and arrive as a thundering herd, forever synchronized.
func (a *Agent) jitteredBackoff(backoff time.Duration) time.Duration {
	j := a.cfg.ReconnectJitter
	if j == nil {
		j = rand.Float64
	}
	half := backoff / 2
	return half + time.Duration(j()*float64(half))
}

// RunWithReconnect keeps the agent connected until ctx is done: it dials,
// handshakes, runs, and on any failure retries with jittered exponential
// backoff (baseBackoff doubling up to maxBackoff; each sleep is drawn
// from [backoff/2, backoff) so a cluster of agents de-synchronizes after
// a controller restart). A node whose controller restarts rejoins by
// itself — during the outage its sockets coast on their last caps, which
// is the safe direction (caps can only be stale, never absent). Counters
// (Reports/Applied) accumulate across reconnections.
func (a *Agent) RunWithReconnect(ctx context.Context, network, addr string, baseBackoff, maxBackoff time.Duration) error {
	return a.RunWithReconnectAddrs(ctx, network, []string{addr}, baseBackoff, maxBackoff)
}

// RunWithReconnectAddrs is RunWithReconnect over an ordered controller
// address list — typically [primary, standby]. Each reconnect attempt
// targets the next address in rotation, so when the primary dies and its
// warm standby takes over (DESIGN.md §14), agents land on the standby
// within a backoff or two with no reconfiguration. Dial and handshake
// are bounded by a deadline: a standby that has not taken over yet
// refuses connections instantly, but a half-dead primary that accepts
// and then hangs must not pin the agent to it forever.
func (a *Agent) RunWithReconnectAddrs(ctx context.Context, network string, addrs []string, baseBackoff, maxBackoff time.Duration) error {
	if len(addrs) == 0 {
		return errors.New("daemon: no controller addresses")
	}
	if baseBackoff <= 0 {
		baseBackoff = 250 * time.Millisecond
	}
	if maxBackoff < baseBackoff {
		maxBackoff = 8 * time.Second
	}
	hsTimeout := 10 * a.cfg.Interval
	if hsTimeout < 2*time.Second {
		hsTimeout = 2 * time.Second
	}
	backoff := baseBackoff
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil
		}
		addr := addrs[attempt%len(addrs)]
		conn, err := net.DialTimeout(network, addr, hsTimeout)
		if err == nil {
			conn.SetDeadline(time.Now().Add(hsTimeout))
			if err = a.Handshake(conn); err == nil {
				conn.SetDeadline(time.Time{})
			}
		}
		if err == nil {
			backoff = baseBackoff
			a.am.backoff.Set(0)
			a.logf("daemon: agent connected to %s", addr)
			err = a.Run(ctx)
			if ctx.Err() != nil {
				return nil
			}
		}
		a.am.reconnects.Inc()
		a.am.backoff.Set(backoff.Seconds())
		a.logf("daemon: agent connection to %s lost (%v); retrying in %v", addr, err, backoff)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(a.jitteredBackoff(backoff)):
		}
		// With one address this is plain exponential backoff; with several
		// the doubling applies per full rotation, so trying the standby is
		// never slower than retrying the dead primary would have been.
		if attempt%len(addrs) == len(addrs)-1 {
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
	}
}

// Dial connects, handshakes, and returns a ready agent in one call.
func Dial(network, addr string, cfg AgentConfig) (*Agent, error) {
	a, err := NewAgent(cfg)
	if err != nil {
		return nil, err
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: dialing controller: %w", err)
	}
	if err := a.Handshake(conn); err != nil {
		return nil, err
	}
	return a, nil
}
