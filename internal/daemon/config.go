package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"dps/internal/baseline"
	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/stateless"
	"dps/internal/watch"
)

// FileConfig is dpsd's JSON configuration: everything the daemon needs to
// come up without flags, checked into a cluster's configuration management
// the way production services are deployed.
//
//	{
//	  "listen": ":7891",
//	  "http": ":7892",
//	  "units": 20,
//	  "budget_w": 2200,
//	  "unit_max_w": 165,
//	  "unit_min_w": 10,
//	  "interval_ms": 1000,
//	  "policy": "dps",
//	  "seed": 1,
//	  "history_len": 20,
//	  "disable_restore": false,
//	  "stale_after_ms": 3000,
//	  "dead_after_ms": 10000,
//	  "read_idle_timeout_ms": 5000,
//	  "max_reading_w": 330,
//	  "delta_epsilon_w": 0.5,
//	  "disable_batch_ingest": false
//	}
type FileConfig struct {
	Listen     string  `json:"listen"`
	HTTP       string  `json:"http,omitempty"`
	Units      int     `json:"units"`
	BudgetW    float64 `json:"budget_w,omitempty"`
	UnitMaxW   float64 `json:"unit_max_w,omitempty"`
	UnitMinW   float64 `json:"unit_min_w,omitempty"`
	IntervalMS int     `json:"interval_ms,omitempty"`
	Policy     string  `json:"policy,omitempty"`
	Seed       int64   `json:"seed,omitempty"`

	// DPS-specific tuning (ignored by other policies).
	HistoryLen     int  `json:"history_len,omitempty"`
	DisableRestore bool `json:"disable_restore,omitempty"`
	// Shards sets the controller's worker-shard count: 0 auto-sizes from
	// GOMAXPROCS and the unit count, 1 forces the sequential path.
	Shards int `json:"shards,omitempty"`

	// Degraded-mode control plane. StaleAfterMS freezes a silent unit's
	// cap, DeadAfterMS reserves its budget at the last delivered cap; both
	// zero disables health tracking. ReadIdleTimeoutMS reaps connections
	// that stay silent past the deadline. MaxReadingW rejects inbound
	// readings above the ceiling (0 = twice unit_max_w).
	StaleAfterMS      int     `json:"stale_after_ms,omitempty"`
	DeadAfterMS       int     `json:"dead_after_ms,omitempty"`
	ReadIdleTimeoutMS int     `json:"read_idle_timeout_ms,omitempty"`
	MaxReadingW       float64 `json:"max_reading_w,omitempty"`

	// Batched ingest. DeltaEpsilonW is the delta-suppression band
	// advertised to batch-capable agents in the handshake ack;
	// DisableBatchIngest rejects the batch capability outright, forcing
	// full per-interval report frames.
	DeltaEpsilonW      float64 `json:"delta_epsilon_w,omitempty"`
	DisableBatchIngest bool    `json:"disable_batch_ingest,omitempty"`

	// Sparse decision rounds (DPS policy only). SparseRounds is a pointer
	// so "absent" (default on) is distinguishable from an explicit false —
	// the rollback setting. SparseRefreshEvery forces every unit through a
	// full decision pass at least once per this many rounds (0 = the core
	// default).
	SparseRounds       *bool `json:"sparse_rounds,omitempty"`
	SparseRefreshEvery int   `json:"sparse_refresh_every,omitempty"`

	// Trace starts the round-scoped span recorder enabled (it can also be
	// toggled at runtime). TraceSpans sets the span ring capacity
	// (0 = trace.DefaultSpanCapacity).
	Trace      bool `json:"trace,omitempty"`
	TraceSpans int  `json:"trace_spans,omitempty"`

	// Self-monitoring. Series enables the embedded metric-history store
	// and sampler (GET /debug/series); Watch enables the watchdog's
	// built-in invariant audits plus WatchRules (GET /alerts). Any
	// configured rule implies the series store. BudgetToleranceW is the
	// slack on the budget_conservation audit (0 = the watch default).
	//
	//	"watch": true,
	//	"series": true,
	//	"watch_rules": [
	//	  {"name": "cap_sum_high", "kind": "threshold",
	//	   "series": "dps_cap_sum_watts", "op": ">", "value": 2100,
	//	   "for_ms": 5000}
	//	]
	Series           bool         `json:"series,omitempty"`
	Watch            bool         `json:"watch,omitempty"`
	WatchRules       []watch.Rule `json:"watch_rules,omitempty"`
	BudgetToleranceW float64      `json:"budget_tolerance_w,omitempty"`

	// High availability (DESIGN.md §14). SnapshotPath enables the periodic
	// state snapshot file (written every SnapshotEvery rounds, 0 = the
	// daemon default, plus once at graceful shutdown); RestoreFrom loads a
	// snapshot at boot; StandbyOf runs this dpsd as a warm standby of the
	// primary at that address, serving agents only after taking over.
	SnapshotPath  string `json:"snapshot_path,omitempty"`
	SnapshotEvery int    `json:"snapshot_every,omitempty"`
	RestoreFrom   string `json:"restore_from,omitempty"`
	StandbyOf     string `json:"standby_of,omitempty"`

	// Fleet observability (DESIGN.md §15). BlackboxPath enables the
	// persistent black-box flight recorder: a segmented on-disk ring of
	// the last BlackboxRounds decision rounds (0 = the daemon default),
	// decodable offline with `dpsctl blackbox dump`.
	BlackboxPath   string `json:"blackbox_path,omitempty"`
	BlackboxRounds int    `json:"blackbox_rounds,omitempty"`
}

// LoadFileConfig parses and normalizes a config file.
func LoadFileConfig(path string) (FileConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return FileConfig{}, fmt.Errorf("daemon: reading config: %w", err)
	}
	var fc FileConfig
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return FileConfig{}, fmt.Errorf("daemon: parsing config %s: %w", path, err)
	}
	fc.applyDefaults()
	if err := fc.validate(); err != nil {
		return FileConfig{}, fmt.Errorf("daemon: config %s: %w", path, err)
	}
	return fc, nil
}

func (fc *FileConfig) applyDefaults() {
	if fc.Listen == "" {
		fc.Listen = ":7891"
	}
	if fc.BudgetW == 0 {
		fc.BudgetW = 110 * float64(fc.Units)
	}
	if fc.UnitMaxW == 0 {
		fc.UnitMaxW = 165
	}
	if fc.UnitMinW == 0 {
		fc.UnitMinW = 10
	}
	if fc.IntervalMS == 0 {
		fc.IntervalMS = 1000
	}
	if fc.Policy == "" {
		fc.Policy = "dps"
	}
	if fc.Seed == 0 {
		fc.Seed = 1
	}
	if fc.HistoryLen == 0 {
		fc.HistoryLen = 20
	}
}

func (fc FileConfig) validate() error {
	switch {
	case fc.Units <= 0:
		return fmt.Errorf("non-positive units %d", fc.Units)
	case fc.IntervalMS <= 0:
		return fmt.Errorf("non-positive interval %d ms", fc.IntervalMS)
	case fc.Shards < 0:
		return fmt.Errorf("negative shards %d", fc.Shards)
	}
	// Per-knob range checks live in the knob table; only cross-field
	// constraints remain here.
	if err := fc.validateKnobs(); err != nil {
		return err
	}
	if fc.StaleAfterMS > 0 && fc.DeadAfterMS > 0 && fc.DeadAfterMS < fc.StaleAfterMS {
		return fmt.Errorf("dead_after_ms %d below stale_after_ms %d", fc.DeadAfterMS, fc.StaleAfterMS)
	}
	if fc.StandbyOf != "" && fc.RestoreFrom != "" {
		return fmt.Errorf("standby_of and restore_from are mutually exclusive (a standby inherits state from its primary)")
	}
	switch fc.Policy {
	case "dps", "slurm", "constant":
	default:
		return fmt.Errorf("unknown policy %q (want dps, slurm or constant)", fc.Policy)
	}
	if len(fc.WatchRules) > 0 && !fc.Watch {
		return fmt.Errorf("watch_rules set but watch is false")
	}
	seen := make(map[string]bool, len(fc.WatchRules))
	for _, r := range fc.WatchRules {
		if err := r.Validate(); err != nil {
			return err
		}
		if seen[r.Name] {
			return fmt.Errorf("duplicate watch rule %q", r.Name)
		}
		seen[r.Name] = true
	}
	return fc.Budget().Validate(fc.Units)
}

// SparseRoundsEnabled resolves the tri-state sparse_rounds key: absent
// means on (the default), an explicit false is the rollback.
func (fc FileConfig) SparseRoundsEnabled() bool {
	return fc.SparseRounds == nil || *fc.SparseRounds
}

// Budget derives the power envelope.
func (fc FileConfig) Budget() power.Budget {
	return power.Budget{
		Total:   power.Watts(fc.BudgetW),
		UnitMax: power.Watts(fc.UnitMaxW),
		UnitMin: power.Watts(fc.UnitMinW),
	}
}

// Interval derives the decision period.
func (fc FileConfig) Interval() time.Duration {
	return time.Duration(fc.IntervalMS) * time.Millisecond
}

// StaleAfter derives the staleness threshold (zero disables).
func (fc FileConfig) StaleAfter() time.Duration {
	return time.Duration(fc.StaleAfterMS) * time.Millisecond
}

// DeadAfter derives the death threshold (zero disables).
func (fc FileConfig) DeadAfter() time.Duration {
	return time.Duration(fc.DeadAfterMS) * time.Millisecond
}

// ReadIdleTimeout derives the connection-reaping deadline (zero disables).
func (fc FileConfig) ReadIdleTimeout() time.Duration {
	return time.Duration(fc.ReadIdleTimeoutMS) * time.Millisecond
}

// BuildManager constructs the configured policy.
func (fc FileConfig) BuildManager() (core.Manager, error) {
	budget := fc.Budget()
	switch fc.Policy {
	case "dps":
		cfg := core.DefaultConfig(fc.Units, budget)
		cfg.Seed = fc.Seed
		cfg.HistoryLen = fc.HistoryLen
		cfg.DisableRestore = fc.DisableRestore
		cfg.Shards = fc.Shards
		cfg.SparseRounds = fc.SparseRoundsEnabled()
		cfg.SparseRefreshEvery = fc.SparseRefreshEvery
		return core.NewDPS(cfg)
	case "slurm":
		return baseline.NewSLURM(fc.Units, budget, stateless.DefaultConfig(), fc.Seed)
	case "constant":
		return baseline.NewConstant(fc.Units, budget)
	}
	return nil, fmt.Errorf("daemon: unknown policy %q", fc.Policy)
}
