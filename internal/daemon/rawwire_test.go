package daemon

import (
	"fmt"
	"io"

	"dps/internal/power"
	"dps/internal/proto"
)

// Raw version-1 wire helpers for tests that deliberately speak the
// legacy capability-free protocol byte-for-byte — a raw client against a
// modern server, or a fake server half against a real agent. Production
// code negotiates through proto.Session; these exist so the tests stay
// pinned to the wire bytes rather than to whatever the session layer
// currently does.

// rawWriteAck sends the classic 2-byte handshake acknowledgement.
func rawWriteAck(w io.Writer) error {
	_, err := w.Write([]byte("OK"))
	return err
}

// rawReadAck consumes and validates the classic 2-byte acknowledgement.
func rawReadAck(r io.Reader) error {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("reading ack: %w", err)
	}
	if buf != [2]byte{'O', 'K'} {
		return fmt.Errorf("bad ack %q", buf[:])
	}
	return nil
}

// rawWriteReport writes a bare version-1 report batch: one 3-byte record
// per entry of vals, local unit i carrying vals[i], no framing.
func rawWriteReport(w io.Writer, vals []power.Watts) error {
	buf := make([]byte, len(vals)*proto.RecordSize)
	for i, v := range vals {
		proto.PutRecord(buf[i*proto.RecordSize:], proto.Record{LocalUnit: uint8(i), Value: proto.ToDeciwatts(v)})
	}
	_, err := w.Write(buf)
	return err
}

// rawReadCaps reads one downstream cap batch of len(dst) records into
// dst by local unit (the version-1 downstream wire format).
func rawReadCaps(r io.Reader, dst []power.Watts) error {
	n := len(dst)
	buf := make([]byte, n*proto.RecordSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rec := proto.GetRecord(buf[i*proto.RecordSize:])
		if int(rec.LocalUnit) >= n {
			return fmt.Errorf("record for local unit %d in a %d-unit batch", rec.LocalUnit, n)
		}
		dst[rec.LocalUnit] = proto.FromDeciwatts(rec.Value)
	}
	return nil
}
