package daemon

import (
	"net"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/rapl"
)

// newSparseHarness is newDeltaHarness with the controller's sparse mode
// and the server's delta band under test control: a batch+delta agent
// over scripted devices, against a DPS manager built dense or sparse.
func newSparseHarness(t *testing.T, units int, sparse bool, eps power.Watts) *deltaHarness {
	t.Helper()
	ccfg := core.DefaultConfig(units, testBudget(units))
	ccfg.SparseRounds = sparse
	mgr, err := core.NewDPS(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Second, DeltaEpsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*scriptDevice, units)
	devices := make([]rapl.Device, units)
	for i := range devs {
		devs[i] = &scriptDevice{}
		devices[i] = devs[i]
	}
	agent, err := NewAgent(AgentConfig{
		FirstUnit:    0,
		Devices:      devices,
		Interval:     time.Second,
		Batch:        true,
		RefreshEvery: -1, // pure delta: suppression is what builds the sparse rounds
	})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.Handle(server)
	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}
	go func() {
		for agent.ReceiveCaps() == nil {
		}
	}()
	t.Cleanup(func() {
		client.Close()
		srv.Close()
	})
	return &deltaHarness{srv: srv, agent: agent, devs: devs}
}

// TestSparseRoundsDaemonEquivalence drives the full deployed pipeline —
// delta agent, batched ingest, dirty-mask snapshot assembly, sparse
// decision rounds — against an identical pipeline feeding a dense
// controller. Caps must stay bitwise identical every round, and the
// sparse side must demonstrably skip settled units (the masks arriving
// from ingest, not the compare fallback, sized the rounds).
func TestSparseRoundsDaemonEquivalence(t *testing.T) {
	const (
		units = 32
		steps = 160
		eps   = power.Watts(0.5)
	)
	dense := newSparseHarness(t, units, false, eps)
	sparse := newSparseHarness(t, units, true, eps)

	waitFrames := func(h *deltaHarness, n uint64) {
		deadline := time.Now().Add(5 * time.Second)
		for h.frames() < n {
			if time.Now().After(deadline) {
				t.Fatalf("server ingested %d frames, want %d", h.frames(), n)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	for step := 0; step < steps; step++ {
		for _, h := range []*deltaHarness{dense, sparse} {
			for u, d := range h.devs {
				if u < 8 {
					// The dirty block: an in-band oscillation that reports
					// every interval.
					d.advance(power.Watts(92 + (step*13+u*7)%5))
				} else {
					// Quiet majority: constant draw, suppressed after the
					// first report, settling on the sparse side.
					d.advance(power.Watts(40 + u))
				}
			}
			if err := h.agent.ReportOnce(1); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			waitFrames(h, uint64(step+1))
		}
		capsD, err := dense.srv.DecideOnce(1)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		capsS, err := sparse.srv.DecideOnce(1)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for u := range capsD {
			if capsD[u] != capsS[u] {
				t.Fatalf("step %d unit %d: sparse cap %v, dense %v", step, u, capsS[u], capsD[u])
			}
		}
	}

	// The sparse pipeline must have done sparse work: rounds whose dirty
	// set was a strict subset of the units (delta suppression reached the
	// mask) and rounds that skipped settled units.
	var subsetRounds, skipped int
	for _, rec := range sparse.srv.FlightRecorder().Last(0) {
		if rec.DirtyUnits > 0 && rec.DirtyUnits < units {
			subsetRounds++
		}
		skipped += rec.SkippedUnits
	}
	if subsetRounds == 0 {
		t.Error("no round saw a strict-subset dirty mask; suppression never reached the controller")
	}
	if skipped == 0 {
		t.Error("sparse controller never skipped a unit-round")
	}
	// The round cache behind /status carries the counters too.
	st := sparse.srv.Snapshot()
	if st.DirtyUnits == 0 || st.DirtyFrac <= 0 || st.DirtyFrac > 1 {
		t.Errorf("status sparse counters unpopulated: dirty=%d frac=%v", st.DirtyUnits, st.DirtyFrac)
	}
	if stD := dense.srv.Snapshot(); stD.DirtyUnits != 0 || stD.SkippedUnits != 0 || stD.DirtyFrac != 0 {
		t.Errorf("dense status reports sparse counters: %+v", stD)
	}
}
