package daemon

import (
	"errors"
	"net"
	"testing"
	"time"

	"dps/internal/power"
	"dps/internal/proto"
	"dps/internal/rapl"
)

// brokenDevice fails every energy read, simulating a RAPL counter that
// disappears (e.g. a sysfs file going away) between dial and priming.
type brokenDevice struct{}

func (brokenDevice) EnergyMicroJoules() (uint64, error) { return 0, errors.New("counter gone") }
func (brokenDevice) SetCap(power.Watts) error           { return nil }
func (brokenDevice) Cap() (power.Watts, error)          { return 165, nil }
func (brokenDevice) MaxPower() power.Watts              { return 165 }
func (brokenDevice) MinPower() power.Watts              { return 10 }

var _ rapl.Device = brokenDevice{}

// TestHandshakePrimeFailureCleansUp pins the reconnect-safety contract: a
// meter-priming failure during Handshake must close the socket and leave
// the agent disconnected, so RunWithReconnect's next attempt starts from
// a clean dial instead of reusing a half-open session the server still
// has registered.
func TestHandshakePrimeFailureCleansUp(t *testing.T) {
	a, err := NewAgent(AgentConfig{
		FirstUnit: 0,
		Devices:   []rapl.Device{brokenDevice{}},
		Interval:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	agentSide, serverSide := net.Pipe()
	defer serverSide.Close()
	// Fake the server half of the handshake: accept the hello, ack it.
	srvErr := make(chan error, 1)
	go func() {
		if _, err := proto.ReadHello(serverSide); err != nil {
			srvErr <- err
			return
		}
		srvErr <- rawWriteAck(serverSide)
	}()

	if err := a.Handshake(agentSide); err == nil {
		t.Fatal("Handshake succeeded despite a broken meter")
	}
	if err := <-srvErr; err != nil {
		t.Fatalf("fake server: %v", err)
	}
	if a.conn != nil {
		t.Error("failed Handshake left a.conn set")
	}
	if err := a.ReportOnce(1); err == nil {
		t.Error("ReportOnce succeeded on a disconnected agent")
	}
	// The socket must actually be closed, not just forgotten: the server
	// side sees EOF instead of hanging on a half-open connection.
	serverSide.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := serverSide.Read(buf); err == nil {
		t.Error("agent socket still open after failed handshake")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Error("agent socket left half-open (read timed out instead of EOF)")
	}
}
