package daemon

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/faultinject"
	"dps/internal/power"
	"dps/internal/proto"
)

// testClock is a mutex-guarded manual clock: the HA tests advance it from
// the driving goroutine while a standby's takeover goroutine reads it.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newHAServer builds a health-tracking server on the given manual clock.
func newHAServer(t *testing.T, units int, clk *testClock, mutate func(*ServerConfig)) *Server {
	t.Helper()
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfig{
		Manager:    mgr,
		Units:      units,
		Interval:   time.Second,
		StaleAfter: 1 * time.Second,
		DeadAfter:  4 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.now = clk.Now
	srv.ResetHealthClocks()
	return srv
}

// haSession is one raw agent connection to a server.
type haSession struct {
	conn  net.Conn
	done  chan error
	first int
	n     int
}

func openHASession(t *testing.T, srv *Server, first, n int) *haSession {
	t.Helper()
	conn, done := handshakeRaw(t, srv, power.UnitID(first), n)
	return &haSession{conn: conn, done: done, first: first, n: n}
}

// haReading is the deterministic per-round reading script shared by every
// server in a test, so twins see bitwise-identical inputs.
func haReading(round, u int) power.Watts {
	return power.Watts(40 + (round*13+u*7)%100)
}

// TestChaosKillRestore is the snapshot/restore keystone as a chaos
// script: a primary with a per-round snapshot file and an uninterrupted
// twin run in lockstep on the same reading trace; one agent is killed on
// both (pinning its units); the primary is then shut down mid-trace and
// a fresh process restored from its final snapshot. From the first
// post-restore round on, the restored server's caps must be bitwise
// identical to the twin that never died — which subsumes "no cold
// constant-allocation round" — while Σcaps ≤ budget holds every round,
// the killed units stay pinned, and the late rejoin clears degraded
// state within one round on both servers.
func TestChaosKillRestore(t *testing.T) {
	const units = 6
	budget := testBudget(units)
	const eps = 1e-6
	snapPath := filepath.Join(t.TempDir(), "state.dps")

	clk := newTestClock()
	primary := newHAServer(t, units, clk, func(sc *ServerConfig) {
		sc.SnapshotPath = snapPath
		sc.SnapshotEvery = 1
	})
	twin := newHAServer(t, units, clk, nil)

	type pair struct{ p, t *haSession }
	open := func(first, n int) *pair {
		return &pair{p: openHASession(t, primary, first, n), t: openHASession(t, twin, first, n)}
	}
	sessions := []*pair{open(0, 2), open(2, 2), open(4, 2)}
	alive := []bool{true, true, true}

	var killCaps power.Vector
	runRound := func(a, b *Server, round int) (capsA, capsB power.Vector) {
		t.Helper()
		clk.Advance(time.Second)
		vals := make(power.Vector, 2)
		for si, s := range sessions {
			if !alive[si] {
				continue
			}
			for i := 0; i < s.p.n; i++ {
				vals[i] = haReading(round, s.p.first+i)
			}
			report(t, a, s.p.conn, s.p.first, vals, true)
			report(t, b, s.t.conn, s.t.first, vals, true)
		}
		capsA, err := a.DecideOnce(1)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		capsB, err = b.DecideOnce(1)
		if err != nil {
			t.Fatalf("round %d (twin): %v", round, err)
		}
		if capsA.Sum() > budget.Total+eps || capsB.Sum() > budget.Total+eps {
			t.Fatalf("round %d: budget violated: %v / %v > %v", round, capsA.Sum(), capsB.Sum(), budget.Total)
		}
		return capsA, capsB
	}

	for round := 1; round <= 8; round++ {
		if round == 5 {
			// Kill agent 1 on both servers: its units pin at the round-4
			// caps, which the restore must carry across the process
			// boundary.
			sessions[1].p.conn.Close()
			sessions[1].t.conn.Close()
			<-sessions[1].p.done
			<-sessions[1].t.done
			alive[1] = false
		}
		caps, twinCaps := runRound(primary, twin, round)
		for u := range caps {
			if caps[u] != twinCaps[u] {
				t.Fatalf("round %d: primary and twin diverged before the kill test even started: unit %d %v vs %v",
					round, u, caps[u], twinCaps[u])
			}
		}
		if round == 4 {
			killCaps = power.Vector{caps[2], caps[3]}
		}
	}

	// Graceful shutdown: Close writes the final snapshot (round 8).
	for si, s := range sessions {
		if alive[si] {
			s.p.conn.Close()
		}
	}
	if err := primary.Close(); err != nil {
		t.Fatalf("primary close: %v", err)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("final snapshot not written: %v", err)
	}

	// A fresh process restores from the file. Its round counter continues
	// the primary's numbering; none of those rounds are its own uptime.
	restored := newHAServer(t, units, clk, nil)
	if err := restored.RestoreFromSnapshot(snapPath); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := restored.Rounds(); got != 8 {
		t.Fatalf("restored round counter = %d, want 8", got)
	}
	if st := restored.Snapshot(); st.UptimeRounds != 0 || st.StateAgeRounds != 8 {
		t.Fatalf("restored uptime/state-age = %d/%d, want 0/8", st.UptimeRounds, st.StateAgeRounds)
	}

	// The surviving agents re-handshake against the restored server.
	for si, s := range sessions {
		if alive[si] {
			s.p = openHASession(t, restored, s.p.first, s.p.n)
			_ = si
		}
	}

	for round := 9; round <= 16; round++ {
		if round == 14 {
			// The killed agent finally rejoins — on both servers, so the
			// trace stays identical.
			sessions[1].p = openHASession(t, restored, 2, 2)
			sessions[1].t = openHASession(t, twin, 2, 2)
			alive[1] = true
		}
		caps, twinCaps := runRound(restored, twin, round)
		for u := range caps {
			if caps[u] != twinCaps[u] {
				t.Fatalf("round %d: restored server diverged from uninterrupted twin: unit %d %v vs %v",
					round, u, caps[u], twinCaps[u])
			}
		}
		switch {
		case round < 14:
			if caps[2] != killCaps[0] || caps[3] != killCaps[1] {
				t.Fatalf("round %d: restore lost the health pins: [%v %v], want %v",
					round, caps[2], caps[3], killCaps)
			}
			if st := restored.Snapshot(); st.Restored {
				t.Fatalf("round %d: restored server ran a constant-allocation reset round", round)
			}
		case round >= 15:
			if st := restored.Snapshot(); st.StaleUnits != 0 || st.DeadUnits != 0 {
				t.Fatalf("round %d: still degraded after rejoin: stale=%d dead=%d",
					round, st.StaleUnits, st.DeadUnits)
			}
		}
	}
	if st := restored.Snapshot(); st.UptimeRounds != 8 || st.StateAgeRounds != 16 {
		t.Fatalf("final uptime/state-age = %d/%d, want 8/16", st.UptimeRounds, st.StateAgeRounds)
	}
	for _, s := range sessions {
		s.p.conn.Close()
		s.t.conn.Close()
	}
}

// TestChaosStandbyTakeover runs a warm standby against an in-process
// primary over a fault-injected replication link: the standby syncs the
// full snapshot, follows per-round deltas, and — when the injected fault
// kills the link deterministically — takes over with the primary's
// state. The budget must hold from the standby's very first round, the
// units pinned by a pre-failover agent kill must stay pinned bitwise,
// the takeover round must not be a constant-allocation reset, and agents
// re-handshaking against the standby must clear degraded state within
// one round.
func TestChaosStandbyTakeover(t *testing.T) {
	const units = 6
	budget := testBudget(units)
	const eps = 1e-6
	clk := newTestClock()

	primary := newHAServer(t, units, clk, nil)
	standby := newHAServer(t, units, clk, func(sc *ServerConfig) {
		sc.StandbyOf = "primary-in-process"
		// The post-takeover Serve loop must not race this test's manual
		// DecideOnce calls, so its ticker never fires.
		sc.Interval = time.Hour
	})

	// The standby dials the primary through a pipe whose standby side is
	// fault-injected: after DropAfterOps operations the next read fails
	// and closes the pipe, severing the link mid-stream — the injected
	// primary crash.
	standby.dial = func(network, addr string) (net.Conn, error) {
		client, server := net.Pipe()
		go primary.Handle(server)
		return faultinject.WrapConn(client, faultinject.ConnConfig{Seed: 7, DropAfterOps: 40}, nil), nil
	}
	var lmu sync.Mutex
	var takeoverL net.Listener
	standbyDone := make(chan error, 1)
	go func() {
		standbyDone <- standby.RunStandby(context.Background(), func() (net.Listener, error) {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			lmu.Lock()
			takeoverL = l
			lmu.Unlock()
			return l, nil
		})
	}()

	// Wait for the replica to register so round 1 already replicates.
	waitUntil(t, "standby registered on primary", func() bool {
		primary.snapMu.Lock()
		defer primary.snapMu.Unlock()
		return len(primary.replicas) == 1
	})

	sessions := []*haSession{
		openHASession(t, primary, 0, 2),
		openHASession(t, primary, 2, 2),
		openHASession(t, primary, 4, 2),
	}
	alive := []bool{true, true, true}
	var killCaps power.Vector

	// Drive primary rounds until the injected fault severs the link and
	// the standby takes over. Agent 1 dies at round 4, so the pinned caps
	// are part of the replicated state whenever the failover lands.
	round := 0
	for standby.metrics.failovers.Value() == 0 {
		round++
		if round > 60 {
			t.Fatal("standby never took over")
		}
		if round == 4 {
			sessions[1].conn.Close()
			<-sessions[1].done
			alive[1] = false
		}
		clk.Advance(time.Second)
		vals := make(power.Vector, 2)
		for si, s := range sessions {
			if !alive[si] {
				continue
			}
			for i := 0; i < s.n; i++ {
				vals[i] = haReading(round, s.first+i)
			}
			report(t, primary, s.conn, s.first, vals, true)
		}
		caps, err := primary.DecideOnce(1)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round == 3 {
			killCaps = power.Vector{caps[2], caps[3]}
		}
		// Give the takeover goroutine a moment to observe the severed
		// link before the next round replicates into nothing.
		if standby.metrics.failovers.Value() > 0 {
			break
		}
	}
	if round < 5 {
		t.Fatalf("link died at round %d, before the kill was replicated", round)
	}
	waitUntil(t, "takeover listener open", func() bool {
		lmu.Lock()
		defer lmu.Unlock()
		return takeoverL != nil
	})

	// The standby took over within a round of the primary's last state.
	primaryRounds := primary.Rounds()
	inherited := standby.Rounds()
	if inherited < primaryRounds-1 || inherited > primaryRounds {
		t.Fatalf("standby inherited round %d, primary died at %d (want lag <= 1)", inherited, primaryRounds)
	}
	if lag := standby.metrics.standbyLag.Value(); lag != 0 {
		t.Fatalf("standby lag gauge = %v after consecutive deltas, want 0", lag)
	}
	if st := standby.Snapshot(); st.UptimeRounds != 0 || st.StateAgeRounds != inherited {
		t.Fatalf("post-takeover uptime/state-age = %d/%d, want 0/%d", st.UptimeRounds, st.StateAgeRounds, inherited)
	}

	// Retire the primary entirely; agents re-handshake on the standby.
	for si, s := range sessions {
		if alive[si] {
			s.conn.Close()
		}
	}
	primary.Close()
	sessions[0] = openHASession(t, standby, 0, 2)
	sessions[2] = openHASession(t, standby, 4, 2)

	base := int(inherited)
	for r := 1; r <= 6; r++ {
		round := base + r
		if r == 4 {
			sessions[1] = openHASession(t, standby, 2, 2)
			alive[1] = true
		}
		clk.Advance(time.Second)
		vals := make(power.Vector, 2)
		for si, s := range sessions {
			if !alive[si] {
				continue
			}
			for i := 0; i < s.n; i++ {
				vals[i] = haReading(round, s.first+i)
			}
			report(t, standby, s.conn, s.first, vals, true)
		}
		caps, err := standby.DecideOnce(1)
		if err != nil {
			t.Fatalf("standby round %d: %v", round, err)
		}
		if caps.Sum() > budget.Total+eps {
			t.Fatalf("standby round %d: Σcaps %v exceeds budget %v through handover", round, caps.Sum(), budget.Total)
		}
		st := standby.Snapshot()
		if st.Restored {
			t.Fatalf("standby round %d: takeover ran a constant-allocation reset round", round)
		}
		if r < 4 {
			if caps[2] != killCaps[0] || caps[3] != killCaps[1] {
				t.Fatalf("standby round %d: handover lost the health pins: [%v %v], want %v",
					round, caps[2], caps[3], killCaps)
			}
		}
		if r >= 5 {
			if st.StaleUnits != 0 || st.DeadUnits != 0 {
				t.Fatalf("standby round %d: still degraded after rejoin: stale=%d dead=%d",
					round, st.StaleUnits, st.DeadUnits)
			}
		}
		if st.UptimeRounds != uint64(r) || st.StateAgeRounds != uint64(round) {
			t.Fatalf("standby round %d: uptime/state-age = %d/%d, want %d/%d",
				round, st.UptimeRounds, st.StateAgeRounds, r, round)
		}
	}
	if got := standby.metrics.failovers.Value(); got != 1 {
		t.Fatalf("dps_failover_total = %d, want 1", got)
	}

	for si, s := range sessions {
		if alive[si] {
			s.conn.Close()
		}
	}
	standby.Close()
	lmu.Lock()
	takeoverL.Close()
	lmu.Unlock()
	if err := <-standbyDone; err != nil {
		t.Fatalf("RunStandby: %v", err)
	}
}

// TestRestoreRejections exercises the boot-time guard rails: a restored
// file must be recent, structurally sound, and shaped for this server.
func TestRestoreRejections(t *testing.T) {
	const units = 4
	dir := t.TempDir()
	path := filepath.Join(dir, "state.dps")

	clk := newTestClock()
	src := newHAServer(t, units, clk, func(sc *ServerConfig) {
		sc.SnapshotPath = path
		sc.SnapshotEvery = 1
	})
	conn, _ := handshakeRaw(t, src, 0, units)
	clk.Advance(time.Second)
	report(t, src, conn, 0, power.Vector{90, 110, 70, 130}, true)
	if _, err := src.DecideOnce(1); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	t.Run("clean restore", func(t *testing.T) {
		srv := newHAServer(t, units, clk, nil)
		if err := srv.RestoreFromSnapshot(path); err != nil {
			t.Fatalf("restore of a fresh snapshot failed: %v", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		srv := newHAServer(t, units, clk, nil)
		if err := srv.RestoreFromSnapshot(filepath.Join(dir, "absent.dps")); err == nil {
			t.Fatal("restore of a missing file succeeded")
		}
	})
	t.Run("corrupt file", func(t *testing.T) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bad := append([]byte(nil), data...)
		bad[len(bad)/2] ^= 0xFF
		badPath := filepath.Join(dir, "corrupt.dps")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		srv := newHAServer(t, units, clk, nil)
		if err := srv.RestoreFromSnapshot(badPath); err == nil {
			t.Fatal("restore of a corrupted snapshot succeeded")
		}
	})
	t.Run("unit mismatch", func(t *testing.T) {
		srv := newHAServer(t, units+2, clk, nil)
		if err := srv.RestoreFromSnapshot(path); err == nil {
			t.Fatal("restore into a differently sized server succeeded")
		}
	})
	t.Run("stale snapshot", func(t *testing.T) {
		srv := newHAServer(t, units, clk, nil)
		clk.Advance(25 * time.Hour)
		defer clk.Advance(-25 * time.Hour)
		if err := srv.RestoreFromSnapshot(path); err == nil {
			t.Fatal("restore of a snapshot past SnapshotMaxAge succeeded")
		}
	})
}

// TestReplicateSteadyStateZeroAlloc is the replication plane's allocation
// gate: with a warm standby attached and the per-round state image
// assembled, diffed, and streamed as a delta, a steady-state replication
// round must not allocate — the image double buffer, the section views,
// and the delta scratch are all retained.
func TestReplicateSteadyStateZeroAlloc(t *testing.T) {
	const units = 128
	clk := newTestClock()
	srv := newHAServer(t, units, clk, func(sc *ServerConfig) {
		// No file path: os file writes allocate by nature; the gate is the
		// in-memory assembly and the replica stream.
		sc.StaleAfter = 0
		sc.DeadAfter = 0
	})

	// A raw replica subscriber: handshake with the Replicate capability,
	// then drain state frames forever.
	client, server := net.Pipe()
	go srv.Handle(server)
	if err := proto.WriteHello(client, proto.Hello{FirstUnit: 0, Units: 1, Replicate: true}); err != nil {
		t.Fatal(err)
	}
	if err := rawReadAck(client); err != nil {
		t.Fatal(err)
	}
	go func() {
		var buf []byte
		for {
			var err error
			if _, _, buf, err = proto.ReadStateFrame(client, buf); err != nil {
				return
			}
		}
	}()
	waitUntil(t, "replica registered", func() bool {
		srv.snapMu.Lock()
		defer srv.snapMu.Unlock()
		return len(srv.replicas) == 1
	})

	readings := make(power.Vector, units)
	for u := range readings {
		readings[u] = power.Watts(40 + (u*7)%100)
	}
	setReadings(srv, readings)
	round := uint64(0)
	// Warm: full snapshot to the pending replica, then deltas, growing
	// every retained buffer to steady state.
	for i := 0; i < 5; i++ {
		round++
		clk.Advance(time.Second)
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
	}
	round = srv.Rounds()

	allocs := testing.AllocsPerRun(100, func() {
		round++
		srv.replicateRound(round)
	})
	if allocs != 0 {
		t.Errorf("warm replication round allocated %.1f times, want 0", allocs)
	}
	client.Close()
	srv.Close()
}

// waitUntil polls cond until it holds or a deadline expires.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
