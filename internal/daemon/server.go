// Package daemon implements the deployed form of DPS (paper §4.3): a
// controller server on a central node and one agent per compute node. The
// agent reads socket power through RAPL and reports it over the paper's
// 3-byte-per-unit protocol; the server runs the control system once per
// decision interval and pushes new caps back; the agent programs them.
//
// The pieces are factored so tests can drive them deterministically
// without wall-clock time: Server.Handle serves one connection,
// Server.DecideOnce runs one decision round, Agent.ReportOnce and
// Agent.ReceiveCaps perform one half-step each. Serve and Run compose
// those with real listeners and tickers.
package daemon

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
)

// ServerConfig configures the controller daemon.
type ServerConfig struct {
	// Manager is the decision policy (normally a core.DPS). The server is
	// its only caller, from the control loop goroutine.
	Manager core.Manager
	// Units is the total number of power-capping units across all nodes.
	Units int
	// Interval is the decision loop period (paper: one second).
	Interval time.Duration
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c ServerConfig) validate() error {
	switch {
	case c.Manager == nil:
		return errors.New("daemon: ServerConfig.Manager is nil")
	case c.Units <= 0:
		return fmt.Errorf("daemon: non-positive unit count %d", c.Units)
	case c.Units > 0x10000:
		return fmt.Errorf("daemon: %d units exceed the protocol's addressable space", c.Units)
	case c.Interval <= 0:
		return fmt.Errorf("daemon: non-positive interval %v", c.Interval)
	}
	return nil
}

// Server is the DPS controller daemon.
type Server struct {
	cfg ServerConfig

	mu       sync.Mutex
	readings power.Vector
	lastCaps power.Vector  // caps from the most recent decision round
	owner    []*serverConn // per-unit owning connection, nil if unclaimed
	conns    map[*serverConn]struct{}
	closed   bool
	rounds   uint64
}

type serverConn struct {
	conn    net.Conn
	hello   proto.Hello
	writeMu sync.Mutex
	scratch []power.Watts
}

// NewServer builds a controller daemon around a manager.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:      cfg,
		readings: make(power.Vector, cfg.Units),
		lastCaps: cfg.Manager.Caps().Clone(),
		owner:    make([]*serverConn, cfg.Units),
		conns:    make(map[*serverConn]struct{}),
	}, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handle serves one agent connection: handshake, then a report-reading
// loop until the connection fails or the server closes. It blocks; run it
// in its own goroutine per connection (Serve does).
func (s *Server) Handle(conn net.Conn) error {
	hello, err := proto.ReadHello(conn)
	if err != nil {
		conn.Close()
		return err
	}
	sc := &serverConn{conn: conn, hello: hello, scratch: make([]power.Watts, hello.Units)}
	if err := s.register(sc); err != nil {
		conn.Close()
		return err
	}
	if err := proto.WriteAck(conn); err != nil {
		s.unregister(sc)
		conn.Close()
		return err
	}
	s.logf("daemon: agent connected, units [%d,%d)", hello.FirstUnit, int(hello.FirstUnit)+hello.Units)

	defer func() {
		s.unregister(sc)
		conn.Close()
		s.logf("daemon: agent for units [%d,%d) disconnected", hello.FirstUnit, int(hello.FirstUnit)+hello.Units)
	}()
	for {
		if err := proto.ReadBatch(conn, sc.scratch); err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		for i, v := range sc.scratch {
			s.readings[int(hello.FirstUnit)+i] = v
		}
		s.mu.Unlock()
	}
}

func (s *Server) register(sc *serverConn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("daemon: server closed")
	}
	first, n := int(sc.hello.FirstUnit), sc.hello.Units
	if first+n > len(s.owner) {
		return fmt.Errorf("daemon: agent claims units [%d,%d) beyond the configured %d", first, first+n, len(s.owner))
	}
	for u := first; u < first+n; u++ {
		if s.owner[u] != nil {
			return fmt.Errorf("daemon: unit %d already owned by another agent", u)
		}
	}
	for u := first; u < first+n; u++ {
		s.owner[u] = sc
	}
	s.conns[sc] = struct{}{}
	return nil
}

func (s *Server) unregister(sc *serverConn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	first, n := int(sc.hello.FirstUnit), sc.hello.Units
	for u := first; u < first+n; u++ {
		if s.owner[u] == sc {
			s.owner[u] = nil
		}
	}
	delete(s.conns, sc)
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Connected returns the number of live agent connections.
func (s *Server) Connected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Rounds returns the number of completed decision rounds.
func (s *Server) Rounds() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rounds
}

// Readings returns a copy of the latest per-unit power reports.
func (s *Server) Readings() power.Vector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readings.Clone()
}

// DecideOnce runs one decision round: snapshot the latest readings, run
// the manager, and push each connected agent its cap assignments. Units
// without a live agent still participate in the decision (their last
// report persists) but receive no message. It returns the caps decided.
//
// DecideOnce must not be called concurrently with itself (the manager is
// single-threaded); Serve guarantees that by calling it from one loop.
func (s *Server) DecideOnce(interval power.Seconds) (power.Vector, error) {
	s.mu.Lock()
	snap := core.Snapshot{Power: s.readings.Clone(), Interval: interval}
	targets := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		targets = append(targets, sc)
	}
	s.mu.Unlock()

	caps := s.cfg.Manager.Decide(snap)

	var firstErr error
	for _, sc := range targets {
		first, n := int(sc.hello.FirstUnit), sc.hello.Units
		sc.writeMu.Lock()
		err := proto.WriteBatch(sc.conn, caps[first:first+n])
		sc.writeMu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("daemon: pushing caps to units [%d,%d): %w", first, first+n, err)
		}
	}
	s.mu.Lock()
	s.rounds++
	copy(s.lastCaps, caps)
	s.mu.Unlock()
	return caps, firstErr
}

// Serve accepts agent connections on l and runs the decision loop until
// Close. It blocks. Push errors to individual agents are logged, not
// fatal — a dead agent's units coast on their last caps, exactly like a
// real cluster losing a node.
func (s *Server) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()

	// Close unblocks Accept by closing the listener.
	done := make(chan struct{})
	defer close(done)
	go func() {
		ticker := time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if _, err := s.DecideOnce(power.Seconds(s.cfg.Interval.Seconds())); err != nil {
					s.logf("daemon: decision round: %v", err)
				}
			}
		}
	}()

	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Handle(conn); err != nil {
				s.logf("daemon: connection: %v", err)
			}
		}()
	}
}

// Close marks the server closed and drops all agent connections. The
// caller should also close the listener passed to Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.conn.Close()
	}
	return nil
}
