// Package daemon implements the deployed form of DPS (paper §4.3): a
// controller server on a central node and one agent per compute node. The
// agent reads socket power through RAPL and reports it over the paper's
// 3-byte-per-unit protocol; the server runs the control system once per
// decision interval and pushes new caps back; the agent programs them.
//
// The pieces are factored so tests can drive them deterministically
// without wall-clock time: Server.Handle serves one connection,
// Server.DecideOnce runs one decision round, Agent.ReportOnce and
// Agent.ReceiveCaps perform one half-step each. Serve and Run compose
// those with real listeners and tickers.
package daemon

import (
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dps/internal/blackbox"
	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/proto"
	"dps/internal/snapshot"
	"dps/internal/telemetry"
	"dps/internal/telemetry/series"
	"dps/internal/trace"
	"dps/internal/version"
	"dps/internal/watch"
)

// ServerConfig configures the controller daemon.
type ServerConfig struct {
	// Manager is the decision policy (normally a core.DPS). The server is
	// its only caller, from the control loop goroutine.
	Manager core.Manager
	// Units is the total number of power-capping units across all nodes.
	Units int
	// Interval is the decision loop period (paper: one second).
	Interval time.Duration
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// FlightRecorderSize is the number of decision rounds the flight
	// recorder retains for GET /debug/rounds. Zero selects
	// telemetry.DefaultFlightRecorderSize.
	FlightRecorderSize int

	// StaleAfter marks a unit stale once no accepted reading has arrived
	// for this long: its cap freezes at the last delivered value until the
	// agent reports again. Zero (with DeadAfter zero) disables health
	// tracking entirely — every unit is fresh forever, the pre-health
	// behaviour.
	StaleAfter time.Duration
	// DeadAfter marks a unit dead after this long without an accepted
	// reading. A dead unit's budget stays reserved at its last delivered
	// cap: the agent (or firmware) is still enforcing that cap, so
	// redistributing the watts would over-commit the physical budget.
	DeadAfter time.Duration
	// ReadIdleTimeout bounds how long the server waits on a connection
	// read (handshake or report batch). A connection that stays silent
	// past the deadline is reaped: closed and its units released for a
	// fresh claim. Zero disables the deadline.
	ReadIdleTimeout time.Duration
	// MaxReading is the sanity ceiling on inbound power reports; readings
	// above it (or NaN/Inf/negative — impossible on the wire, but the
	// boundary defends regardless of transport) are rejected before they
	// reach the filter and do not refresh the unit's staleness clock.
	// Zero selects twice the budget's per-unit maximum.
	MaxReading power.Watts
	// DeltaEpsilon is the report-suppression band advertised to
	// batch-capable agents in the handshake ack: an agent may suppress a
	// unit's report while the reading stays within this many watts of the
	// last value it sent (quantized to deciwatts on the wire). Zero means
	// "report exact changes only" — an agent still suppresses byte-identical
	// readings but any movement is reported.
	DeltaEpsilon power.Watts
	// DisableBatchIngest rejects handshakes advertising the batch
	// capability, forcing every agent onto full per-interval report frames.
	// An escape hatch for debugging the delta plane; off by default.
	DisableBatchIngest bool
	// SparseRounds and SparseRefreshEvery are manager-construction inputs:
	// dpsd reads them when it builds a DPS controller (core.Config
	// SparseRounds / SparseRefreshEvery), so the -sparse-rounds=false
	// rollback knob reaches the decision engine on both the flag and the
	// config-file path. NewServer itself does not consult them — the
	// Manager it receives already embodies the choice, and the server's
	// ingest-side dirty mask is maintained either way (a dense manager
	// ignores it). SparseRounds defaults to true on every config surface.
	SparseRounds       bool
	SparseRefreshEvery int

	// TraceEnabled starts the span recorder on. The recorder always
	// exists (GET /debug/trace always mounts, and it can be enabled at
	// runtime via Trace().SetEnabled); this only sets its initial state.
	// Off, tracing costs one atomic load per instrumented site.
	TraceEnabled bool
	// TraceSpans is the span ring capacity. Zero selects
	// trace.DefaultSpanCapacity.
	TraceSpans int

	// SeriesEnabled starts the embedded metric-history sampler: a
	// goroutine beside (never inside) the decision loop scrapes the
	// registry into a fixed-memory series store served at
	// GET /debug/series. Off, no store exists and nothing is scraped.
	SeriesEnabled bool
	// SeriesConfig sizes the series store. The zero value selects the
	// defaults, except RawInterval, which defaults to Interval (scrape
	// once per decision round).
	SeriesConfig series.Config
	// WatchEnabled turns on the watchdog: built-in invariant audits fed
	// from every decision round plus the WatchRules evaluated after every
	// sampler scrape. Off, the watcher is nil and ObserveRound calls on it
	// are no-ops.
	WatchEnabled bool
	// WatchRules are the configured alert rules. Rules reference the
	// series store, so setting any implies a store and sampler even when
	// SeriesEnabled is false.
	WatchRules []watch.Rule
	// BudgetToleranceW is the slack on the budget_conservation audit
	// (absorbs float drift from the proportional rescale). Zero selects
	// the watch package default (1e-3 W).
	BudgetToleranceW float64

	// High-availability state continuity (DESIGN.md §14). SnapshotPath,
	// when set, makes the daemon assemble its full versioned state image
	// after every decision round, write it to this file every
	// SnapshotEvery rounds, and write it one final time on Close.
	// RestoreFrom names a snapshot file for RestoreFromSnapshot (dpsd
	// calls it at boot when -restore-from is set; NewServer itself does
	// not, so callers control when the clock source is in place).
	// StandbyOf marks this daemon a warm standby of the primary at that
	// address: RunStandby subscribes to the primary's replication stream
	// and serves agents only after takeover.
	SnapshotPath  string
	SnapshotEvery int
	RestoreFrom   string
	StandbyOf     string
	// SnapshotMaxAge bounds how old (by its own save stamp) a snapshot
	// file may be and still be restored; older files are rejected as
	// stale. Zero selects DefaultSnapshotMaxAge. Deliberately not a CLI
	// knob: an operator who wants an ancient snapshot back can touch up
	// the config, but the default must protect the boot path from caps
	// and health clocks from another epoch.
	SnapshotMaxAge time.Duration

	// BlackboxPath, when set, enables the persistent black-box flight
	// recorder (DESIGN.md §15): every completed decision round is
	// appended to a segmented on-disk ring under this directory, off the
	// decide path, so the last BlackboxRounds rounds survive a crash,
	// kill -9, or standby takeover and can be decoded offline with
	// `dpsctl blackbox dump`. BlackboxRounds bounds the ring's retention
	// (blackbox.DefaultRounds when 0).
	BlackboxPath   string
	BlackboxRounds int
}

// DefaultSnapshotEvery is the default number of decision rounds between
// snapshot file writes when SnapshotPath is set.
const DefaultSnapshotEvery = 10

// DefaultSnapshotMaxAge is the default rejection threshold for restoring
// stale snapshot files.
const DefaultSnapshotMaxAge = 24 * time.Hour

func (c ServerConfig) validate() error {
	switch {
	case c.Manager == nil:
		return errors.New("daemon: ServerConfig.Manager is nil")
	case c.Units <= 0:
		return fmt.Errorf("daemon: non-positive unit count %d", c.Units)
	case c.Units > 0x10000:
		return fmt.Errorf("daemon: %d units exceed the protocol's addressable space", c.Units)
	case c.Interval <= 0:
		return fmt.Errorf("daemon: non-positive interval %v", c.Interval)
	case c.DeltaEpsilon < 0 || math.IsNaN(float64(c.DeltaEpsilon)) || math.IsInf(float64(c.DeltaEpsilon), 0):
		return fmt.Errorf("daemon: invalid delta epsilon %v", c.DeltaEpsilon)
	case c.SnapshotEvery < 0:
		return fmt.Errorf("daemon: negative snapshot-every %d", c.SnapshotEvery)
	case c.SnapshotMaxAge < 0:
		return fmt.Errorf("daemon: negative snapshot max age %v", c.SnapshotMaxAge)
	case c.BlackboxRounds < 0:
		return fmt.Errorf("daemon: negative blackbox-rounds %d", c.BlackboxRounds)
	}
	for _, r := range c.WatchRules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("daemon: %w", err)
		}
	}
	return nil
}

// Server is the DPS controller daemon.
type Server struct {
	cfg ServerConfig

	tel      *telemetry.Registry
	recorder *telemetry.FlightRecorder
	tracer   *trace.Recorder
	metrics  serverMetrics
	now      func() time.Time // stubbed in tests for deterministic records

	// store/sampler exist when SeriesEnabled or any watch rule needs the
	// history; watcher exists when WatchEnabled. All are read-only after
	// NewServer, and all run off the decision hot path.
	store   *series.Store
	sampler *series.Sampler
	watcher *watch.Watcher

	// The server's shared state is split across two locks so the ingest
	// plane never contends with decision bookkeeping. Lock order: a
	// goroutine holding mu may take imu (register does); never the
	// reverse.
	//
	// imu guards the ingest plane — the front buffer connection
	// goroutines write every report frame into, and the staleness clocks
	// those frames refresh. The decision loop holds it only long enough
	// to copy the front buffer into its private snapshot (snapBuf) and
	// classify health, so a decision round blocks ingest for one memcpy,
	// and ingest never waits on conns/round bookkeeping.
	imu      sync.Mutex
	readings power.Vector
	// dirty marks the units whose reading was rewritten since the last
	// decision snapshot — the ingest half of the sparse decision path's
	// dirty-set contract (a clear bit guarantees the unit's reading is
	// byte-identical to the previous snapshot). Maintained unconditionally:
	// marking is one word-OR per accepted record, and managers that don't
	// do sparse rounds simply ignore the mask.
	dirty *core.DirtyMask
	// lastReport is the per-unit staleness clock: the time of the last
	// accepted (sanitized) reading or covering heartbeat, refreshed on
	// (re-)registration so a re-handshaken agent rejoins fresh within one
	// round.
	lastReport []time.Time

	// snapBuf, dirtyBuf and healthBuf are the decision loop's private back
	// buffers (double buffering): DecideOnce is never concurrent with
	// itself, so they need no lock once the imu-guarded copy completes.
	snapBuf   power.Vector
	dirtyBuf  *core.DirtyMask
	healthBuf []core.UnitHealth

	// mu guards the control plane: connections, ownership, and the
	// per-round caches.
	mu       sync.Mutex
	lastCaps power.Vector // caps from the most recent decision round
	// lastPushed tracks, per unit, the cap most recently delivered to an
	// agent — what the node is actually enforcing. Degraded rounds pin
	// non-fresh units here, and the budget-reservation argument is stated
	// against this vector.
	lastPushed power.Vector
	// health is the per-unit state machine output of the previous round,
	// kept to detect transitions. Nil while health tracking is disabled.
	health []core.UnitHealth
	// lastPrio and lastRestored cache the DPS view of the most recent
	// round so /status never reads the controller concurrently with a
	// decision (nil/false for non-DPS managers).
	lastPrio     []bool
	lastRestored bool
	// lastDirtyUnits/lastSkippedUnits/lastDirtyFrac cache the most recent
	// round's sparse work counters for /status (zero on dense managers).
	lastDirtyUnits   int
	lastSkippedUnits int
	lastDirtyFrac    float64
	owner            []*serverConn // per-unit owning connection, nil if unclaimed
	conns            map[*serverConn]struct{}
	closed           bool
	rounds           atomic.Uint64 // advanced under mu; loaded lock-free by ingest tracing

	// inheritedRounds is how many of the round counter's rounds were run
	// by a previous process (restored from a snapshot or inherited at
	// standby takeover): uptime_rounds = rounds - inheritedRounds, while
	// state_age_rounds = rounds. Zero on a fresh boot.
	inheritedRounds atomic.Uint64

	// The snapshot/replication plane (DESIGN.md §14), guarded by snapMu.
	// Lock order: snapMu → mu → imu; only the decision loop (via
	// replicateRound) and replica (un)registration take snapMu, so
	// neither ingest nor cap pushes ever contend on it. All the buffers
	// are reused round over round — a warm replication round allocates
	// nothing.
	snapMu    sync.Mutex
	snapState snapshot.State // reused export target
	snapEnc   []byte         // latest assembled image (complete rounds only)
	nextEnc   []byte         // scratch the next image encodes into
	curSecs   [][]byte       // section framings of snapEnc
	prevSecs  [][]byte       // section framings of the previous image
	deltaBuf  []byte         // FrameDelta payload scratch
	replicas  map[*replicaConn]struct{}
	// lastFileRound is the round of the most recent snapshot file write.
	lastFileRound uint64
	// Black-box flight recorder (DESIGN.md §15): bb is the on-disk round
	// ring, nil when BlackboxPath is unset. bbRound is the retained
	// encode target — its Units slice is preallocated to cfg.Units in
	// NewServer and re-filled every round, so a warm append allocates
	// nothing. bbClosed stops appends racing the final flush in Close.
	bb       *blackbox.Writer
	bbRound  blackbox.Round
	bbClosed bool

	// dial is the standby's outbound connector toward its primary; tests
	// override it to interpose fault injection. Nil means net.Dial.
	dial func(network, addr string) (net.Conn, error)
}

// replicaConn is one warm-standby subscriber. synced flips once the full
// snapshot image went out; until then the replica receives no deltas (a
// delta against state it never saw would be garbage).
type replicaConn struct {
	conn   net.Conn
	synced bool
	// hdr is the frame-header scratch: heap storage retained with the
	// connection, so a per-round frame write never allocates.
	hdr [proto.StateFrameHeaderSize]byte
}

// writeFrame sends one state frame on the replica connection, staging
// the header through the retained scratch.
func (rc *replicaConn) writeFrame(frame byte, payload []byte) error {
	var err error
	rc.hdr, err = proto.StateFrameHeader(frame, len(payload))
	if err != nil {
		return err
	}
	if _, err := rc.conn.Write(rc.hdr[:]); err != nil {
		return err
	}
	_, err = rc.conn.Write(payload)
	return err
}

// healthEnabled reports whether the per-unit health state machine is
// active (either threshold configured).
func (s *Server) healthEnabled() bool {
	return s.cfg.StaleAfter > 0 || s.cfg.DeadAfter > 0
}

// maxReading resolves the inbound reading ceiling.
func (s *Server) maxReading() power.Watts {
	if s.cfg.MaxReading > 0 {
		return s.cfg.MaxReading
	}
	return 2 * s.cfg.Manager.Budget().UnitMax
}

// serverMetrics holds the registry handles the control loop updates every
// round; capturing them once keeps the hot path free of map lookups.
type serverMetrics struct {
	rounds      *telemetry.Counter
	agents      *telemetry.Gauge
	budget      *telemetry.Gauge
	capSum      *telemetry.Gauge
	decide      *telemetry.Histogram
	e2eLatency  *telemetry.Histogram
	stages      map[string]*telemetry.Histogram // keyed by pipeline stage
	restores    *telemetry.Counter
	prioFlips   *telemetry.Counter
	exhausted   *telemetry.Counter
	violations  *telemetry.Counter
	pushErrors  *telemetry.Counter
	connects    *telemetry.Counter
	disconnects *telemetry.Counter
	badReadings *telemetry.Counter
	reaps       *telemetry.Counter
	// Ingest-plane counters: one frame counter per upstream frame kind
	// plus the total record count they carried.
	ingestReports    *telemetry.Counter
	ingestBatches    *telemetry.Counter
	ingestHeartbeats *telemetry.Counter
	ingestRecords    *telemetry.Counter
	staleUnits       *telemetry.Gauge
	deadUnits        *telemetry.Gauge
	// Sparse-round work gauges: the most recent round's dirty and skipped
	// unit counts (both stay 0 on dense controllers).
	dirtyUnits   *telemetry.Gauge
	skippedUnits *telemetry.Gauge
	// High-availability instrumentation: size and assembly time of the
	// state snapshot, takeovers performed by this process, and (on a
	// standby) how many primary rounds the replication stream skipped.
	snapshotBytes *telemetry.Gauge
	snapshotDur   *telemetry.Histogram
	failovers     *telemetry.Counter
	standbyLag    *telemetry.Gauge
	// Black-box flight recorder accounting: bytes appended to the
	// on-disk ring and rounds it failed to persist.
	bbBytes   *telemetry.Counter
	bbDropped *telemetry.Counter
	// transitions indexes dps_health_transitions_total{from,to} by
	// from*3+to for the six possible state changes (nil where from == to).
	transitions [9]*telemetry.Counter
	unitPower   []*telemetry.Gauge
	unitCap     []*telemetry.Gauge
	unitPrio    []*telemetry.Gauge // nil unless the manager is a core.DPS
	unitHealth  []*telemetry.Gauge // nil unless health tracking is enabled
}

// pipeline stage names, the label values of dps_stage_seconds.
const (
	stageKalman    = "kalman"
	stageStateless = "stateless"
	stagePriority  = "priority"
	stageReadjust  = "readjust"
)

// e2eLatencyBuckets brackets the reading-snapshot→enforced-cap apply-echo
// path: two network hops plus an agent-side cap program, so unlike the
// in-process DefSecondsBuckets it starts at 100 µs (same-host loopback)
// and runs to 2.5 s (a WAN'd or heavily loaded agent several decision
// intervals late). See the bucket-choice rule in the telemetry package
// comment.
var e2eLatencyBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5,
}

// registerBuildInfo publishes the dps_build_info gauge: constant 1, with
// the interesting data in the labels (the Prometheus *_info convention),
// so dashboards can join any metric against the running build.
func registerBuildInfo(reg *telemetry.Registry) {
	reg.Gauge("dps_build_info", "Build metadata; the value is always 1.",
		telemetry.Label{Key: "version", Value: version.Version},
		telemetry.Label{Key: "goversion", Value: runtime.Version()}).Set(1)
}

func newServerMetrics(reg *telemetry.Registry, cfg ServerConfig) serverMetrics {
	registerBuildInfo(reg)
	m := serverMetrics{
		rounds:      reg.Counter("dps_rounds_total", "Decision rounds completed."),
		agents:      reg.Gauge("dps_agents", "Connected node agents."),
		budget:      reg.Gauge("dps_budget_watts", "Cluster-wide power budget."),
		capSum:      reg.Gauge("dps_cap_sum_watts", "Sum of assigned caps."),
		decide:      reg.Histogram("dps_decide_seconds", "Wall time of one full decision round.", nil),
		e2eLatency:  reg.Histogram("dps_e2e_latency_seconds", "Reading snapshot to enforced-cap echo, measured on the server clock (needs agents with apply-echo enabled).", e2eLatencyBuckets),
		restores:    reg.Counter("dps_restore_total", "Algorithm 3 restorations (all units quiet, caps reset)."),
		prioFlips:   reg.Counter("dps_priority_flips_total", "Per-unit priority changes across rounds."),
		exhausted:   reg.Counter("dps_readjust_exhausted_total", "Readjust rounds that equalized because no budget was left."),
		violations:  reg.Counter("dps_budget_violations_total", "Rounds whose cap sum exceeded the budget before the final clamp (should stay 0)."),
		pushErrors:  reg.Counter("dps_push_errors_total", "Failed cap pushes to agents."),
		connects:    reg.Counter("dps_agent_connects_total", "Agent connections accepted."),
		disconnects: reg.Counter("dps_agent_disconnects_total", "Agent connections lost."),
		badReadings: reg.Counter("dps_server_bad_readings_total", "Inbound readings rejected at the server boundary (NaN/Inf/negative/over-ceiling)."),
		reaps:       reg.Counter("dps_conn_reaped_total", "Connections closed by the server-side idle read deadline."),
		ingestReports: reg.Counter("dps_ingest_frames_total", "Upstream frames ingested, by frame kind.",
			telemetry.Label{Key: "kind", Value: "report"}),
		ingestBatches: reg.Counter("dps_ingest_frames_total", "Upstream frames ingested, by frame kind.",
			telemetry.Label{Key: "kind", Value: "batch"}),
		ingestHeartbeats: reg.Counter("dps_ingest_frames_total", "Upstream frames ingested, by frame kind.",
			telemetry.Label{Key: "kind", Value: "heartbeat"}),
		ingestRecords: reg.Counter("dps_ingest_records_total", "Power records carried by ingested report and batch frames."),
		staleUnits:    reg.Gauge("dps_stale_units", "Units currently stale (cap frozen, awaiting reports)."),
		deadUnits:     reg.Gauge("dps_dead_units", "Units currently dead (budget reserved at last delivered cap)."),
		dirtyUnits:    reg.Gauge("dps_decide_dirty_units", "Units whose reading changed since the previous decision snapshot (sparse rounds only)."),
		skippedUnits:  reg.Gauge("dps_decide_skipped_units", "Units the controller skipped as settled in the last round (sparse rounds only)."),
		snapshotBytes: reg.Gauge("dps_snapshot_bytes", "Size of the last assembled state snapshot image (0 until one is assembled)."),
		snapshotDur:   reg.Histogram("dps_snapshot_duration_seconds", "Wall time to export and encode one state snapshot.", nil),
		failovers:     reg.Counter("dps_failover_total", "Standby takeovers performed by this process."),
		standbyLag:    reg.Gauge("dps_standby_lag_rounds", "Primary rounds the replication stream skipped between consecutive deltas (standby only; should stay 0)."),
		bbBytes:       reg.Counter("dps_blackbox_bytes_total", "Bytes appended to the black-box flight recorder's on-disk ring."),
		bbDropped:     reg.Counter("dps_blackbox_dropped_rounds_total", "Rounds the black-box recorder failed to persist (append errors; should stay 0)."),
		stages:        make(map[string]*telemetry.Histogram, 4),
	}
	healthEnabled := cfg.StaleAfter > 0 || cfg.DeadAfter > 0
	if healthEnabled {
		for from := core.HealthFresh; from <= core.HealthDead; from++ {
			for to := core.HealthFresh; to <= core.HealthDead; to++ {
				if from == to {
					continue
				}
				m.transitions[int(from)*3+int(to)] = reg.Counter(
					"dps_health_transitions_total", "Per-unit health state transitions.",
					telemetry.Label{Key: "from", Value: from.String()},
					telemetry.Label{Key: "to", Value: to.String()})
			}
		}
	}
	for _, stage := range []string{stageKalman, stageStateless, stagePriority, stageReadjust} {
		m.stages[stage] = reg.Histogram("dps_stage_seconds",
			"Wall time per pipeline stage per decision round.", nil,
			telemetry.Label{Key: "stage", Value: stage})
	}
	m.budget.Set(float64(cfg.Manager.Budget().Total))
	_, isDPS := cfg.Manager.(*core.DPS)
	initialCaps := cfg.Manager.Caps()
	for u := 0; u < cfg.Units; u++ {
		lbl := telemetry.Label{Key: "unit", Value: strconv.Itoa(u)}
		m.unitPower = append(m.unitPower, reg.Gauge("dps_unit_power_watts", "Last reported power per unit.", lbl))
		m.unitCap = append(m.unitCap, reg.Gauge("dps_unit_cap_watts", "Assigned cap per unit.", lbl))
		m.unitCap[u].Set(float64(initialCaps[u]))
		if isDPS {
			m.unitPrio = append(m.unitPrio, reg.Gauge("dps_unit_high_priority", "DPS priority flag per unit.", lbl))
		}
		if healthEnabled {
			m.unitHealth = append(m.unitHealth, reg.Gauge("dps_unit_health", "Unit health state (0 fresh, 1 stale, 2 dead).", lbl))
		}
	}
	return m
}

type serverConn struct {
	conn    net.Conn
	sess    *proto.Session
	hello   proto.Hello
	writeMu sync.Mutex

	// Apply-echo bookkeeping (capability connections only): the reading
	// snapshot time and round of the last successful cap push, so an
	// inbound echo can be turned into a reading→enforced-cap latency on
	// the server's own clock. Atomics: stored by the decision loop, read
	// by the connection's Handle goroutine.
	lastSnapNano  atomic.Int64
	lastPushRound atomic.Uint64
}

// NewServer builds a controller daemon around a manager.
func NewServer(cfg ServerConfig) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reg := telemetry.NewRegistry()
	tracer := trace.NewRecorder(cfg.TraceSpans)
	tracer.SetEnabled(cfg.TraceEnabled)
	if d, ok := cfg.Manager.(*core.DPS); ok {
		d.SetTracer(tracer)
	}
	s := &Server{
		cfg:        cfg,
		tel:        reg,
		recorder:   telemetry.NewFlightRecorder(cfg.FlightRecorderSize),
		tracer:     tracer,
		metrics:    newServerMetrics(reg, cfg),
		now:        time.Now,
		readings:   make(power.Vector, cfg.Units),
		dirty:      core.NewDirtyMask(cfg.Units),
		snapBuf:    make(power.Vector, cfg.Units),
		dirtyBuf:   core.NewDirtyMask(cfg.Units),
		lastCaps:   cfg.Manager.Caps().Clone(),
		lastPushed: cfg.Manager.Caps().Clone(),
		owner:      make([]*serverConn, cfg.Units),
		conns:      make(map[*serverConn]struct{}),
		replicas:   make(map[*replicaConn]struct{}),
	}
	if s.healthEnabled() {
		s.health = make([]core.UnitHealth, cfg.Units)
		s.healthBuf = make([]core.UnitHealth, cfg.Units)
		s.lastReport = make([]time.Time, cfg.Units)
		// Units start with a full staleness clock: a unit that never
		// registers an agent drifts to stale/dead on its own, reserved at
		// its initial cap.
		start := time.Now()
		for u := range s.lastReport {
			s.lastReport[u] = start
		}
	}
	// Configured watch rules read the series store, so they imply one even
	// when the operator didn't ask for /debug/series explicitly.
	if cfg.SeriesEnabled || (cfg.WatchEnabled && len(cfg.WatchRules) > 0) {
		scfg := cfg.SeriesConfig
		if scfg.RawInterval <= 0 {
			scfg.RawInterval = cfg.Interval
		}
		s.store = series.NewStore(scfg)
		s.sampler = series.NewSampler(reg, s.store)
	}
	if cfg.WatchEnabled {
		s.watcher = watch.New(watch.Config{
			Rules:            cfg.WatchRules,
			Store:            s.store,
			Registry:         reg,
			Logf:             cfg.Logf,
			BudgetToleranceW: cfg.BudgetToleranceW,
		})
	}
	if cfg.BlackboxPath != "" {
		bb, err := blackbox.Open(cfg.BlackboxPath, cfg.BlackboxRounds)
		if err != nil {
			return nil, fmt.Errorf("daemon: opening black box: %w", err)
		}
		s.bb = bb
		s.bbRound.Units = make([]blackbox.UnitRound, cfg.Units)
	}
	return s, nil
}

// ResetHealthClocks restamps every unit's staleness clock with the
// server's clock source. Tests that stub the clock call this after the
// stub is installed so construction-time stamps don't skew the first
// round.
func (s *Server) ResetHealthClocks() {
	s.imu.Lock()
	defer s.imu.Unlock()
	now := s.now()
	for u := range s.lastReport {
		s.lastReport[u] = now
	}
}

// Telemetry returns the server's metrics registry, for serving on
// /metrics or folding into a larger exposition.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// FlightRecorder returns the decision flight recorder backing
// GET /debug/rounds.
func (s *Server) FlightRecorder() *telemetry.FlightRecorder { return s.recorder }

// Trace returns the span recorder backing GET /debug/trace. It exists
// even when tracing started disabled, so an operator can flip it on at
// runtime (Trace().SetEnabled(true)) without restarting the daemon.
func (s *Server) Trace() *trace.Recorder { return s.tracer }

// Series returns the embedded metric-history store backing
// GET /debug/series, nil when neither SeriesEnabled nor a watch rule
// asked for one.
func (s *Server) Series() *series.Store { return s.store }

// Watcher returns the alerting engine backing GET /alerts, nil when
// WatchEnabled is false (watch.Watcher methods are nil-safe).
func (s *Server) Watcher() *watch.Watcher { return s.watcher }

// SampleOnce performs one sampler scrape plus one watch-rule evaluation
// at the server clock's current time — the unit Serve's sampler loop runs
// every scrape interval, exported so tests and embedders can drive it
// deterministically. A no-op when the series store is disabled.
func (s *Server) SampleOnce() {
	if s.sampler == nil {
		return
	}
	now := s.now()
	s.sampler.SampleOnce(now)
	s.watcher.Evaluate(now)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Handle serves one agent connection: handshake, then a frame-reading
// loop until the connection fails or the server closes. It blocks; run it
// in its own goroutine per connection (Serve does).
func (s *Server) Handle(conn net.Conn) error {
	s.armReadDeadline(conn)
	sess, err := proto.Accept(conn)
	if err != nil {
		conn.Close()
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.metrics.reaps.Inc()
		}
		return err
	}
	hello := sess.Hello()
	if hello.Replicate {
		// Not an agent at all: a warm standby subscribing to the state
		// stream. It claims no units and sends no frames.
		return s.handleReplica(conn, sess)
	}
	if hello.Batch && s.cfg.DisableBatchIngest {
		sess.Release()
		conn.Close()
		return fmt.Errorf("daemon: batch ingest disabled, rejecting batch agent for units [%d,%d)",
			hello.FirstUnit, int(hello.FirstUnit)+hello.Units)
	}
	sc := &serverConn{conn: conn, sess: sess, hello: hello}
	if err := s.register(sc); err != nil {
		sess.Release()
		conn.Close()
		return err
	}
	if err := sess.Ack(s.cfg.DeltaEpsilon); err != nil {
		s.unregister(sc)
		sess.Release()
		conn.Close()
		return err
	}
	s.logf("daemon: agent connected, units [%d,%d)", hello.FirstUnit, int(hello.FirstUnit)+hello.Units)

	defer func() {
		s.unregister(sc)
		conn.Close()
		sess.Release()
		s.logf("daemon: agent for units [%d,%d) disconnected", hello.FirstUnit, int(hello.FirstUnit)+hello.Units)
	}()
	for {
		if err := s.serveFrame(sc); err != nil {
			return s.connReadErr(hello, err)
		}
	}
}

// serveFrame reads and dispatches one upstream frame from a connection:
// the hot receive path, factored out of Handle's loop so tests can drive
// it synchronously and pin its per-reading allocation cost (zero, once
// the session is warm).
func (s *Server) serveFrame(sc *serverConn) error {
	s.armReadDeadline(sc.conn)
	frame, err := sc.sess.ReadFrame()
	if err != nil {
		return err
	}
	switch frame.Kind {
	case proto.KindApply:
		s.observeApplyEcho(sc, frame.ApplyDur)
	case proto.KindHeartbeat:
		// Touch before counting: once the counter is visible, the clock
		// refresh is too (tests synchronize on the counters).
		s.touchUnits(sc.hello)
		s.metrics.ingestHeartbeats.Inc()
	default:
		s.ingest(sc, frame)
	}
	return nil
}

// ingest lands one report or batch frame in the front reading buffer.
//
// Staleness-clock rule: a frame refreshes the clock of every unit it
// carries an *accepted* record for, and — on delta batches — of every
// unit it omits: omission under delta reporting is the agent asserting
// "unchanged within epsilon", which is live information. A unit whose
// record is rejected by the sanitizer gets no refresh from its own
// garbage (self-quarantine), exactly as on the full-report path.
func (s *Server) ingest(sc *serverConn, frame proto.Frame) {
	traceOn := s.tracer.On()
	var ingestStart time.Time
	if traceOn {
		ingestStart = time.Now()
	}
	hello := sc.hello
	first := int(hello.FirstUnit)
	now := s.now()
	ceiling := s.maxReading()
	s.imu.Lock()
	switch frame.Kind {
	case proto.KindReport:
		for _, rec := range frame.Records {
			v := proto.FromDeciwatts(rec.Value)
			u := first + int(rec.LocalUnit)
			if badReading(v, ceiling) {
				// Rejected readings never reach the filter and never refresh
				// the staleness clock: a garbage-reporting agent quarantines
				// itself into the stale state.
				s.metrics.badReadings.Inc()
				continue
			}
			s.readings[u] = v
			s.dirty.Mark(u)
			if s.lastReport != nil {
				s.lastReport[u] = now
			}
		}
	case proto.KindBatch:
		// Records arrive strictly increasing (the canonical encoding), so
		// one walk covers both the carried units and the suppressed gaps
		// between them.
		next := 0
		for _, rec := range frame.Records {
			lu := int(rec.LocalUnit)
			if s.lastReport != nil {
				for ; next < lu; next++ {
					s.lastReport[first+next] = now
				}
			}
			next = lu + 1
			v := proto.FromDeciwatts(rec.Value)
			if badReading(v, ceiling) {
				s.metrics.badReadings.Inc()
				continue
			}
			s.readings[first+lu] = v
			s.dirty.Mark(first + lu)
			if s.lastReport != nil {
				s.lastReport[first+lu] = now
			}
		}
		if s.lastReport != nil {
			for ; next < hello.Units; next++ {
				s.lastReport[first+next] = now
			}
		}
	}
	s.imu.Unlock()
	if frame.Kind == proto.KindBatch {
		s.metrics.ingestBatches.Inc()
	} else {
		s.metrics.ingestReports.Inc()
	}
	s.metrics.ingestRecords.Add(uint64(len(frame.Records)))
	if traceOn {
		// the decision round this frame will feed
		round := s.rounds.Load() + 1
		s.tracer.Record(round, trace.SpanIngest, trace.LaneIngest,
			int32(hello.FirstUnit), ingestStart, time.Since(ingestStart))
	}
}

// touchUnits refreshes the staleness clock for every unit of a
// connection — a heartbeat's whole meaning: alive, readings stand.
func (s *Server) touchUnits(hello proto.Hello) {
	if s.lastReport == nil {
		return
	}
	now := s.now()
	first := int(hello.FirstUnit)
	s.imu.Lock()
	for u := first; u < first+hello.Units; u++ {
		s.lastReport[u] = now
	}
	s.imu.Unlock()
}

// connReadErr classifies a failed read on an established agent
// connection: nil on server shutdown, a reap on idle timeout (so the
// units can be re-claimed by a fresh session instead of staying owned by
// a hung socket forever), the error itself otherwise.
func (s *Server) connReadErr(hello proto.Hello, err error) error {
	if s.isClosed() {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.metrics.reaps.Inc()
		return fmt.Errorf("daemon: reaping idle agent for units [%d,%d): %w",
			hello.FirstUnit, int(hello.FirstUnit)+hello.Units, err)
	}
	return err
}

// observeApplyEcho turns an agent's cap-apply acknowledgement into the
// end-to-end latency sample the paper's deployment section asks for:
// reading snapshot → caps enforced on the node, both endpoints stamped on
// the server's clock so no cross-machine clock sync is needed. Echoes
// arriving before the connection's first cap push carry no reference
// snapshot and are dropped.
func (s *Server) observeApplyEcho(sc *serverConn, applyDur time.Duration) {
	snapNano := sc.lastSnapNano.Load()
	if snapNano == 0 {
		return
	}
	now := s.now()
	e2e := now.Sub(time.Unix(0, snapNano))
	if e2e < 0 {
		e2e = 0
	}
	s.metrics.e2eLatency.Observe(e2e.Seconds())
	if s.tracer.On() {
		s.tracer.Record(sc.lastPushRound.Load(), trace.SpanApply, trace.LaneAgent,
			int32(sc.hello.FirstUnit), now.Add(-applyDur), applyDur)
	}
}

// armReadDeadline applies the configured idle read deadline to conn, or
// clears it when disabled.
func (s *Server) armReadDeadline(conn net.Conn) {
	if t := s.cfg.ReadIdleTimeout; t > 0 {
		conn.SetReadDeadline(time.Now().Add(t))
	}
}

// badReading reports whether an inbound power report is garbage the
// boundary must reject: NaN, ±Inf, negative, or above the ceiling.
func badReading(v, ceiling power.Watts) bool {
	f := float64(v)
	return math.IsNaN(f) || math.IsInf(f, 0) || v < 0 || v > ceiling
}

func (s *Server) register(sc *serverConn) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("daemon: server closed")
	}
	first, n := int(sc.hello.FirstUnit), sc.hello.Units
	if first+n > len(s.owner) {
		return fmt.Errorf("daemon: agent claims units [%d,%d) beyond the configured %d", first, first+n, len(s.owner))
	}
	for u := first; u < first+n; u++ {
		if s.owner[u] != nil {
			return fmt.Errorf("daemon: unit %d already owned by another agent", u)
		}
	}
	for u := first; u < first+n; u++ {
		s.owner[u] = sc
	}
	// A (re-)handshake restarts the staleness clock so the unit is fresh
	// again by the next decision round, before its first report even
	// lands. (Lock order: mu held, imu nested inside.)
	if s.lastReport != nil {
		now := s.now()
		s.imu.Lock()
		for u := first; u < first+n; u++ {
			s.lastReport[u] = now
		}
		s.imu.Unlock()
	}
	s.conns[sc] = struct{}{}
	s.metrics.connects.Inc()
	s.metrics.agents.Set(float64(len(s.conns)))
	return nil
}

func (s *Server) unregister(sc *serverConn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	first, n := int(sc.hello.FirstUnit), sc.hello.Units
	for u := first; u < first+n; u++ {
		if s.owner[u] == sc {
			s.owner[u] = nil
		}
	}
	if _, ok := s.conns[sc]; ok {
		delete(s.conns, sc)
		s.metrics.disconnects.Inc()
		s.metrics.agents.Set(float64(len(s.conns)))
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Connected returns the number of live agent connections.
func (s *Server) Connected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Rounds returns the number of completed decision rounds.
func (s *Server) Rounds() uint64 {
	return s.rounds.Load()
}

// Readings returns a copy of the latest per-unit power reports.
func (s *Server) Readings() power.Vector {
	s.imu.Lock()
	defer s.imu.Unlock()
	return s.readings.Clone()
}

// statsDecider is the stats-returning decision API a manager may offer
// beyond core.Manager (core.DPS does). The server prefers it over plain
// Decide: the stats arrive atomically with the caps, so overlapping
// observers can never read a stale round.
type statsDecider interface {
	DecideStats(core.Snapshot) (power.Vector, core.RoundStats)
}

// DecideOnce runs one decision round: snapshot the latest readings, run
// the manager, and push each connected agent its cap assignments. Units
// without a live agent still participate in the decision (their last
// report persists) but receive no message. It returns the caps decided.
//
// DecideOnce must not be called concurrently with itself (the manager is
// single-threaded); Serve guarantees that by calling it from one loop.
func (s *Server) DecideOnce(interval power.Seconds) (power.Vector, error) {
	snapTime := s.now() // reading-snapshot stamp, the e2e latency origin

	// Flip the double buffer: copy the ingest plane's front buffer into
	// the decision loop's private back buffer and classify health from
	// the report clocks. This is the only time the decision path holds
	// imu, and it holds nothing else while it does.
	s.imu.Lock()
	copy(s.snapBuf, s.readings)
	// Flip the dirty mask with the readings it describes: the front mask
	// restarts empty for the next inter-round window, and the back copy
	// tells the manager exactly which units this snapshot changed.
	s.dirtyBuf.CopyFrom(s.dirty)
	s.dirty.Reset()
	health := s.classifyHealthLocked()
	s.imu.Unlock()

	s.mu.Lock()
	round := s.rounds.Load() + 1
	s.recordHealthLocked(health)
	snap := core.Snapshot{Power: s.snapBuf, Interval: interval, Health: health, Dirty: s.dirtyBuf}
	prevCaps := s.lastCaps.Clone()
	var lastPushed power.Vector
	if health != nil {
		lastPushed = s.lastPushed.Clone()
	}
	targets := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		targets = append(targets, sc)
	}
	s.mu.Unlock()

	started := s.now()
	var caps power.Vector
	var st core.RoundStats
	hasStats := false
	if sd, ok := s.cfg.Manager.(statsDecider); ok {
		caps, st = sd.DecideStats(snap)
		hasStats = true
	} else {
		caps = s.cfg.Manager.Decide(snap)
	}
	elapsed := s.now().Sub(started)
	managerCaps := caps
	caps = s.degradedDeliver(caps, health, lastPushed)

	traceOn := s.tracer.On()
	var firstErr error
	pushed := make([]*serverConn, 0, len(targets))
	for _, sc := range targets {
		first, n := int(sc.hello.FirstUnit), sc.hello.Units
		if sc.hello.ApplyEcho {
			// Stamp before the push so an echo racing the store can never
			// pair with a snapshot newer than the caps it acknowledges.
			sc.lastSnapNano.Store(snapTime.UnixNano())
			sc.lastPushRound.Store(round)
		}
		var pushStart time.Time
		if traceOn {
			pushStart = time.Now()
		}
		sc.writeMu.Lock()
		err := sc.sess.WriteCapsRound(round, caps[first:first+n])
		sc.writeMu.Unlock()
		if traceOn {
			s.tracer.Record(round, trace.SpanPush, trace.LanePush,
				int32(first), pushStart, time.Since(pushStart))
		}
		if err != nil {
			s.metrics.pushErrors.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("daemon: pushing caps to units [%d,%d): %w", first, first+n, err)
			}
			continue
		}
		pushed = append(pushed, sc)
	}
	s.mu.Lock()
	s.rounds.Store(round)
	copy(s.lastCaps, caps)
	for _, sc := range pushed {
		first, n := int(sc.hello.FirstUnit), sc.hello.Units
		copy(s.lastPushed[first:first+n], caps[first:first+n])
	}
	if d, ok := s.cfg.Manager.(*core.DPS); ok {
		s.lastPrio = append(s.lastPrio[:0], d.Priorities()...)
		s.lastRestored = d.Restored()
	}
	s.lastDirtyUnits, s.lastSkippedUnits, s.lastDirtyFrac = st.DirtyUnits, st.SkippedUnits, st.DirtyFrac
	s.mu.Unlock()
	// The round is complete and published: assemble the state snapshot
	// off the decision path proper and fan it out (file + replicas). A
	// no-op unless snapshotting is configured or a standby is attached.
	s.replicateRound(round)
	s.observeRound(round, started, elapsed, interval, snap.Power, prevCaps, managerCaps, caps, health, lastPushed, st, hasStats)
	return caps, firstErr
}

// classifyHealthLocked advances the per-unit health classification from
// the staleness clocks into the decision loop's private health buffer
// and returns it (nil while health tracking is disabled). Caller holds
// s.imu; the buffer is valid until the next decision round.
func (s *Server) classifyHealthLocked() []core.UnitHealth {
	if s.healthBuf == nil {
		return nil
	}
	now := s.now()
	for u := range s.healthBuf {
		age := now.Sub(s.lastReport[u])
		h := core.HealthFresh
		switch {
		case s.cfg.DeadAfter > 0 && age >= s.cfg.DeadAfter:
			h = core.HealthDead
		case s.cfg.StaleAfter > 0 && age >= s.cfg.StaleAfter:
			h = core.HealthStale
		}
		s.healthBuf[u] = h
	}
	return s.healthBuf
}

// recordHealthLocked diffs the round's health classification against the
// previous round's retained state, publishing transitions, gauges, and
// logs. Caller holds s.mu.
func (s *Server) recordHealthLocked(health []core.UnitHealth) {
	if health == nil {
		return
	}
	stale, dead := 0, 0
	for u, h := range health {
		if prev := s.health[u]; h != prev {
			if c := s.metrics.transitions[int(prev)*3+int(h)]; c != nil {
				c.Inc()
			}
			s.health[u] = h
			s.logf("daemon: unit %d health %s -> %s", u, prev, h)
		}
		s.metrics.unitHealth[u].Set(float64(h))
		switch h {
		case core.HealthStale:
			stale++
		case core.HealthDead:
			dead++
		}
	}
	s.metrics.staleUnits.Set(float64(stale))
	s.metrics.deadUnits.Set(float64(dead))
}

// degradedDeliver is the delivery-side guarantee of the degraded-mode
// contract: whatever the manager decided, every non-fresh unit's
// delivered cap equals what its agent is already enforcing (lastPushed),
// and the fresh units are rescaled toward UnitMin if that pinning pushed
// the sum over the budget. A health-aware manager (core.DPS) already
// returns such a vector and passes through untouched; this is the safety
// net for health-blind policies. The manager owns the caps vector, so a
// correction works on a clone.
func (s *Server) degradedDeliver(caps power.Vector, health []core.UnitHealth, lastPushed power.Vector) power.Vector {
	if health == nil {
		return caps
	}
	const eps = 1e-9
	budget := s.cfg.Manager.Budget()
	needsPin := false
	for u, h := range health {
		if h != core.HealthFresh && caps[u] != lastPushed[u] {
			needsPin = true
			break
		}
	}
	if !needsPin && caps.Sum() <= budget.Total+eps {
		return caps
	}
	out := caps.Clone()
	for u, h := range health {
		if h != core.HealthFresh {
			out[u] = lastPushed[u]
		}
	}
	if excess := out.Sum() - budget.Total; excess > eps {
		var headroom power.Watts
		for u, h := range health {
			if h == core.HealthFresh && out[u] > budget.UnitMin {
				headroom += out[u] - budget.UnitMin
			}
		}
		if headroom > 0 {
			frac := excess / headroom
			if frac > 1 {
				frac = 1
			}
			for u, h := range health {
				if h == core.HealthFresh && out[u] > budget.UnitMin {
					out[u] -= frac * (out[u] - budget.UnitMin)
				}
			}
		}
	}
	return out
}

// observeRound publishes one decision round to the metrics registry, the
// flight recorder, and the watchdog's invariant audits. Called from the
// decision loop only, after the round counter advanced. st carries the
// round's controller stats when hasStats is true (the manager implements
// statsDecider). managerCaps is the vector the manager decided; caps is
// what was delivered — they differ only when degradedDeliver corrected a
// health-blind policy, and the difference is what earns a unit the
// degraded_deliver reason. lastPushed is the pre-round delivered-cap
// vector (nil while health tracking is off), the reference the
// health-pin audit checks non-fresh units against.
func (s *Server) observeRound(round uint64, started time.Time, elapsed time.Duration, interval power.Seconds, readings, prevCaps, managerCaps, caps power.Vector, health []core.UnitHealth, lastPushed power.Vector, st core.RoundStats, hasStats bool) {
	m := &s.metrics
	m.rounds.Inc()
	m.decide.Observe(elapsed.Seconds())
	m.capSum.Set(float64(caps.Sum()))
	// Budget can change at runtime (hierarchical deployments re-assign
	// group budgets); refresh the gauge every round.
	m.budget.Set(float64(s.cfg.Manager.Budget().Total))
	for u := range readings {
		m.unitPower[u].Set(float64(readings[u]))
		m.unitCap[u].Set(float64(caps[u]))
	}

	rec := telemetry.RoundRecord{
		Round:     round,
		Time:      started,
		IntervalS: float64(interval),
		Stages:    telemetry.StageSeconds{Total: elapsed.Seconds()},
		BudgetW:   float64(s.cfg.Manager.Budget().Total),
		CapSumW:   float64(caps.Sum()),
		Units:     make([]telemetry.UnitRecord, len(caps)),
	}
	if inherited := s.inheritedRounds.Load(); inherited != 0 {
		rec.UptimeRounds = round - inherited
		rec.StateAgeRounds = round
	}
	for _, h := range health {
		switch h {
		case core.HealthStale:
			rec.StaleUnits++
		case core.HealthDead:
			rec.DeadUnits++
		}
	}
	var prio []bool
	if hasStats {
		rec.Stages = telemetry.StageSeconds{
			Kalman:    st.Timings.Kalman.Seconds(),
			Stateless: st.Timings.Stateless.Seconds(),
			Priority:  st.Timings.Priority.Seconds(),
			Readjust:  st.Timings.Readjust.Seconds(),
			Total:     elapsed.Seconds(),
		}
		rec.Restored = st.Restored
		rec.PriorityFlips = st.PriorityFlips
		rec.BudgetExhausted = st.BudgetExhausted
		rec.BudgetClamped = st.BudgetClamped
		rec.DirtyUnits = st.DirtyUnits
		rec.SkippedUnits = st.SkippedUnits

		m.stages[stageKalman].Observe(rec.Stages.Kalman)
		m.stages[stageStateless].Observe(rec.Stages.Stateless)
		m.stages[stagePriority].Observe(rec.Stages.Priority)
		m.stages[stageReadjust].Observe(rec.Stages.Readjust)
		if st.Restored {
			m.restores.Inc()
		}
		m.prioFlips.Add(uint64(st.PriorityFlips))
		if st.BudgetExhausted {
			m.exhausted.Inc()
		}
		if st.BudgetClamped {
			m.violations.Inc()
		}
		m.dirtyUnits.Set(float64(st.DirtyUnits))
		m.skippedUnits.Set(float64(st.SkippedUnits))
	}
	var prov []trace.CapChange
	if d, ok := s.cfg.Manager.(*core.DPS); ok {
		prio = d.Priorities()
		prov = d.Provenance()
		for u, hp := range prio {
			v := 0.0
			if hp {
				v = 1
			}
			m.unitPrio[u].Set(v)
		}
	}
	for u := range caps {
		ur := telemetry.UnitRecord{
			Unit:      u,
			ReadingW:  float64(readings[u]),
			CapW:      float64(caps[u]),
			CapDeltaW: float64(caps[u] - prevCaps[u]),
		}
		if prio != nil {
			ur.HighPriority = prio[u]
		}
		if health != nil && health[u] != core.HealthFresh {
			ur.Health = health[u].String()
		}
		if prov != nil && prov[u].Reason != trace.ReasonNone {
			ur.Reason = prov[u].Reason.String()
		}
		if caps[u] != managerCaps[u] {
			// Delivery-side pin or rescale overrode the manager: the last
			// mover for this unit was degradedDeliver, whatever the manager
			// thought it was doing.
			ur.Reason = trace.ReasonDegradedDeliver.String()
		}
		rec.Units[u] = ur
	}
	s.recorder.Append(rec)

	if s.watcher != nil {
		audit := watch.RoundAudit{
			Round:             round,
			Time:              started,
			BudgetW:           rec.BudgetW,
			CapSumW:           rec.CapSumW,
			ProvenanceAudited: prov != nil,
		}
		for u := range caps {
			if health != nil && health[u] != core.HealthFresh {
				audit.PinAudited++
				if caps[u] != lastPushed[u] {
					audit.PinViolations++
				}
			}
			if audit.ProvenanceAudited && rec.Units[u].CapDeltaW != 0 && rec.Units[u].Reason == "" {
				audit.ProvenanceViolations++
			}
		}
		s.watcher.ObserveRound(audit)
	}

	s.appendBlackbox(&rec, readings, caps, managerCaps, health, prio, prov)
}

// appendBlackbox writes one completed round into the black-box flight
// recorder's on-disk ring. It runs on the decision goroutine after the
// round is published, re-filling the retained s.bbRound so a warm append
// allocates nothing; a failed append drops the round (counted by
// dps_blackbox_dropped_rounds_total) rather than stalling the control
// loop. snapMu orders it against the final flush in Close.
func (s *Server) appendBlackbox(rec *telemetry.RoundRecord, readings, caps, managerCaps power.Vector, health []core.UnitHealth, prio []bool, prov []trace.CapChange) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.bb == nil || s.bbClosed {
		return
	}
	r := &s.bbRound
	r.Round = rec.Round
	r.UnixNano = rec.Time.UnixNano()
	r.IntervalS = rec.IntervalS
	r.BudgetW = rec.BudgetW
	r.CapSumW = rec.CapSumW
	r.KalmanS = rec.Stages.Kalman
	r.StatelessS = rec.Stages.Stateless
	r.PriorityS = rec.Stages.Priority
	r.ReadjustS = rec.Stages.Readjust
	r.TotalS = rec.Stages.Total
	r.Restored = rec.Restored
	r.BudgetExhausted = rec.BudgetExhausted
	r.BudgetClamped = rec.BudgetClamped
	r.PriorityFlips = rec.PriorityFlips
	r.StaleUnits = rec.StaleUnits
	r.DeadUnits = rec.DeadUnits
	r.DirtyUnits = rec.DirtyUnits
	r.SkippedUnits = rec.SkippedUnits
	r.Units = r.Units[:len(caps)]
	for u := range caps {
		ur := &r.Units[u]
		ur.ReadingDW = proto.ToDeciwatts(readings[u])
		ur.CapDW = proto.ToDeciwatts(caps[u])
		ur.Prio = prio != nil && prio[u]
		ur.Health = 0
		if health != nil {
			ur.Health = uint8(health[u])
		}
		ur.Reason = trace.ReasonNone
		if prov != nil {
			ur.Reason = prov[u].Reason
		}
		if caps[u] != managerCaps[u] {
			ur.Reason = trace.ReasonDegradedDeliver
		}
	}
	wrote, _, err := s.bb.Append(r)
	if err != nil {
		s.metrics.bbDropped.Inc()
		s.logf("daemon: blackbox append: %v", err)
		return
	}
	s.metrics.bbBytes.Add(uint64(wrote))
}

// Serve accepts agent connections on l and runs the decision loop until
// Close. It blocks. Push errors to individual agents are logged, not
// fatal — a dead agent's units coast on their last caps, exactly like a
// real cluster losing a node.
func (s *Server) Serve(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()

	// Close unblocks Accept by closing the listener.
	done := make(chan struct{})
	defer close(done)
	go func() {
		ticker := time.NewTicker(s.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if _, err := s.DecideOnce(power.Seconds(s.cfg.Interval.Seconds())); err != nil {
					s.logf("daemon: decision round: %v", err)
				}
			}
		}
	}()
	if s.sampler != nil {
		// The sampler gets its own goroutine and ticker: scraping the
		// registry and evaluating watch rules never shares the decision
		// loop's schedule, so self-monitoring cannot delay a round.
		go func() {
			ticker := time.NewTicker(s.store.Config().RawInterval)
			defer ticker.Stop()
			for {
				select {
				case <-done:
					return
				case <-ticker.C:
					s.SampleOnce()
				}
			}
		}()
	}

	for {
		conn, err := l.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Handle(conn); err != nil {
				s.logf("daemon: connection: %v", err)
			}
		}()
	}
}

// Close marks the server closed, drops all agent and replica
// connections, and — when SnapshotPath is configured — writes the last
// assembled state image as the final snapshot, so a graceful shutdown
// loses at most the round that was in flight. The caller should also
// close the listener passed to Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.conn.Close()
	}
	s.snapMu.Lock()
	for rc := range s.replicas {
		rc.conn.Close()
		delete(s.replicas, rc)
	}
	var err error
	if s.cfg.SnapshotPath != "" {
		if len(s.snapEnc) == 0 {
			s.logf("daemon: no completed round to snapshot on shutdown")
		} else if err = writeFileAtomic(s.cfg.SnapshotPath, s.snapEnc); err != nil {
			s.logf("daemon: final snapshot: %v", err)
		} else {
			s.logf("daemon: final snapshot written to %s (%d bytes, round %d)",
				s.cfg.SnapshotPath, len(s.snapEnc), s.rounds.Load())
		}
	}
	if s.bb != nil && !s.bbClosed {
		s.bbClosed = true
		if cerr := s.bb.Close(); cerr != nil {
			s.logf("daemon: closing black box: %v", cerr)
			if err == nil {
				err = cerr
			}
		}
	}
	s.snapMu.Unlock()
	return err
}
