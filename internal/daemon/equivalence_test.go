package daemon

import (
	"net"
	"testing"
	"time"

	"dps/internal/cluster"
	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/rapl"
	"dps/internal/sim"
	"dps/internal/workload"
)

// scriptDevice is a Device whose energy counter is advanced by the test,
// so an agent's meters read back exactly the wattage the test scripts —
// the same sequence can then be replayed bit-identically into two
// differently-negotiated sessions.
type scriptDevice struct {
	uj  float64
	cap power.Watts
}

func (d *scriptDevice) EnergyMicroJoules() (uint64, error) {
	return uint64(d.uj) % rapl.CounterWrap, nil
}
func (d *scriptDevice) SetCap(w power.Watts) error { d.cap = w; return nil }
func (d *scriptDevice) Cap() (power.Watts, error)  { return d.cap, nil }
func (d *scriptDevice) MaxPower() power.Watts      { return 165 }
func (d *scriptDevice) MinPower() power.Watts      { return 10 }

// advance adds one interval at w average watts (1 s intervals).
func (d *scriptDevice) advance(w power.Watts) { d.uj += float64(w) * 1e6 }

// deltaHarness is one server+agent pair fed by scripted devices.
type deltaHarness struct {
	srv   *Server
	agent *Agent
	devs  []*scriptDevice
}

// frames returns how many upstream frames the server has ingested.
func (h *deltaHarness) frames() uint64 {
	return h.srv.metrics.ingestReports.Value() +
		h.srv.metrics.ingestBatches.Value() +
		h.srv.metrics.ingestHeartbeats.Value()
}

func newDeltaHarness(t *testing.T, units int, batch bool) *deltaHarness {
	t.Helper()
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]*scriptDevice, units)
	devices := make([]rapl.Device, units)
	for i := range devs {
		devs[i] = &scriptDevice{}
		devices[i] = devs[i]
	}
	agent, err := NewAgent(AgentConfig{
		FirstUnit:    0,
		Devices:      devices,
		Interval:     time.Second,
		Batch:        batch,
		RefreshEvery: -1, // pure delta: nothing hides behind periodic refreshes
	})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.Handle(server)
	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}
	// Drain cap pushes: net.Pipe writes are synchronous, so DecideOnce
	// would otherwise block forever on its push.
	go func() {
		for agent.ReceiveCaps() == nil {
		}
	}()
	t.Cleanup(func() {
		client.Close()
		srv.Close()
	})
	return &deltaHarness{srv: srv, agent: agent, devs: devs}
}

// TestBatchDeltaEquivalence is the data-plane correctness theorem: over a
// 500-step simulated reading trace, a batch+delta session with epsilon 0
// must leave the controller with bitwise-identical inputs and outputs to
// a classic per-interval full-report session. Delta suppression with
// epsilon 0 only ever omits a value equal (in wire deciwatts) to the one
// the server already holds, so the two ingest paths may differ in bytes
// on the wire but never in the snapshot the controller decides on.
func TestBatchDeltaEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("500-step closed-loop equivalence run")
	}
	lda, err := workload.ByName("LDA")
	if err != nil {
		t.Fatal(err)
	}
	gmm, err := workload.ByName("GMM")
	if err != nil {
		t.Fatal(err)
	}
	const steps = 500
	var rows []power.Vector
	machine := cluster.DefaultConfig()
	machine.Rapl.NoiseStdDev = 0 // quiet idle gaps, so deltas actually suppress
	cfg := sim.PairConfig{
		Machine:   machine,
		WorkloadA: lda,
		WorkloadB: gmm,
		Repeats:   1 << 20, // never the stop condition; MaxSteps is
		MaxSteps:  steps,
		Seed:      7,
		StepHook: func(_ power.Seconds, readings, _ power.Vector) {
			rows = append(rows, append(power.Vector(nil), readings...))
		},
	}
	if _, err := sim.RunPair(cfg, sim.DPSFactory()); err != nil {
		t.Fatal(err)
	}
	if len(rows) != steps {
		t.Fatalf("trace has %d steps, want %d", len(rows), steps)
	}
	units := len(rows[0])

	plain := newDeltaHarness(t, units, false)
	delta := newDeltaHarness(t, units, true)

	waitFrames := func(h *deltaHarness, n uint64) {
		deadline := time.Now().Add(5 * time.Second)
		for h.frames() < n {
			if time.Now().After(deadline) {
				t.Fatalf("server ingested %d frames, want %d", h.frames(), n)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	for step, row := range rows {
		for _, h := range []*deltaHarness{plain, delta} {
			for i, d := range h.devs {
				d.advance(row[i])
			}
			if err := h.agent.ReportOnce(1); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			waitFrames(h, uint64(step+1))
		}
		rp, rd := plain.srv.Readings(), delta.srv.Readings()
		for u := range rp {
			if rp[u] != rd[u] {
				t.Fatalf("step %d: readings diverge at unit %d: per-reading %v, delta %v", step, u, rp[u], rd[u])
			}
		}
		capsP, err := plain.srv.DecideOnce(1)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		capsD, err := delta.srv.DecideOnce(1)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for u := range capsP {
			if capsP[u] != capsD[u] {
				t.Fatalf("step %d: caps diverge at unit %d: per-reading %v, delta %v", step, u, capsP[u], capsD[u])
			}
		}
	}

	// The equivalence is only interesting if the delta plane actually
	// suppressed something: the trace's idle gaps must have collapsed
	// into sparse frames or heartbeats.
	suppressed := delta.agent.am.suppressed.Value()
	if suppressed == 0 {
		t.Error("delta session suppressed nothing over the whole trace; equivalence was vacuous")
	}
	sent := delta.srv.metrics.ingestRecords.Value()
	full := plain.srv.metrics.ingestRecords.Value()
	if sent >= full {
		t.Errorf("delta session sent %d records vs %d per-reading; expected fewer", sent, full)
	}
	t.Logf("delta plane: %d/%d records on the wire (%.1f%% suppressed), %d heartbeats",
		sent, full, 100*float64(suppressed)/float64(full), delta.agent.am.heartbeats.Value())
}
