package daemon

import (
	"context"
	"math"
	"net"
	"testing"
	"time"

	"dps/internal/baseline"
	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/rapl"
)

func testBudget(units int) power.Budget {
	return power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
}

func newTestServer(t *testing.T, units int) *Server {
	t.Helper()
	cfg := core.DefaultConfig(units, testBudget(units))
	mgr, err := core.NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestAgent(t *testing.T, first power.UnitID, n int) (*Agent, []*rapl.SimDevice) {
	t.Helper()
	devs := make([]rapl.Device, n)
	sims := make([]*rapl.SimDevice, n)
	for i := range devs {
		cfg := rapl.DefaultSimConfig()
		cfg.NoiseStdDev = 0
		cfg.Seed = int64(i + 1)
		d, err := rapl.NewSimDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		devs[i] = d
		sims[i] = d
	}
	a, err := NewAgent(AgentConfig{FirstUnit: first, Devices: devs, Interval: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return a, sims
}

func TestServerConfigValidation(t *testing.T) {
	mgr, _ := baseline.NewConstant(2, testBudget(2))
	bad := []ServerConfig{
		{Manager: nil, Units: 2, Interval: time.Second},
		{Manager: mgr, Units: 0, Interval: time.Second},
		{Manager: mgr, Units: 2, Interval: 0},
		{Manager: mgr, Units: 1 << 17, Interval: time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d: NewServer accepted %+v", i, cfg)
		}
	}
}

func TestAgentConfigValidation(t *testing.T) {
	dev, _ := rapl.NewSimDevice(rapl.DefaultSimConfig())
	bad := []AgentConfig{
		{Devices: nil, Interval: time.Second},
		{Devices: []rapl.Device{dev}, Interval: 0},
		{Devices: []rapl.Device{dev}, FirstUnit: -1, Interval: time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewAgent(cfg); err == nil {
			t.Errorf("case %d: NewAgent accepted %+v", i, cfg)
		}
	}
}

// TestEndToEndOverPipe drives one full control round deterministically:
// handshake, power report, decision, cap application — no wall clock.
func TestEndToEndOverPipe(t *testing.T) {
	srv := newTestServer(t, 2)
	agent, sims := newTestAgent(t, 0, 2)

	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(server) }()

	if err := agent.Handshake(client); err != nil {
		t.Fatal(err)
	}
	if got := srv.Connected(); got != 1 {
		t.Fatalf("Connected = %d, want 1", got)
	}

	// The node draws 120 W for one second.
	for _, d := range sims {
		d.SetLoad(120)
		d.Advance(1)
	}
	if err := agent.ReportOnce(1); err != nil {
		t.Fatal(err)
	}
	// Wait until the report lands in the server's reading table (the conn
	// goroutine is asynchronous).
	deadline := time.Now().Add(2 * time.Second)
	for {
		r := srv.Readings()
		if math.Abs(float64(r[0]-120)) < 0.06 && math.Abs(float64(r[1]-120)) < 0.06 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("report never reached the server: readings %v", r)
		}
		time.Sleep(time.Millisecond)
	}

	// One decision round; the agent applies the pushed caps. net.Pipe is
	// synchronous, so the cap push and its receipt must run concurrently.
	type decided struct {
		caps power.Vector
		err  error
	}
	decc := make(chan decided, 1)
	go func() {
		caps, err := srv.DecideOnce(1)
		decc <- decided{caps.Clone(), err}
	}()
	if err := agent.ReceiveCaps(); err != nil {
		t.Fatal(err)
	}
	dec := <-decc
	if dec.err != nil {
		t.Fatal(dec.err)
	}
	capsDecided := dec.caps
	for i, d := range sims {
		c, _ := d.Cap()
		if math.Abs(float64(c-capsDecided[i])) > 0.06 {
			t.Errorf("device %d cap = %v, decided %v", i, c, capsDecided[i])
		}
	}
	if agent.Reports() != 1 || agent.Applied() != 1 {
		t.Errorf("agent counters: reports=%d applied=%d", agent.Reports(), agent.Applied())
	}
	if srv.Rounds() != 1 {
		t.Errorf("server rounds = %d", srv.Rounds())
	}

	client.Close()
	if err := <-done; err == nil {
		t.Log("handle returned nil after peer close (acceptable on EOF)")
	}
	if got := srv.Connected(); got != 0 {
		t.Errorf("Connected = %d after disconnect, want 0", got)
	}
}

func TestServerRejectsOverlappingUnitRanges(t *testing.T) {
	srv := newTestServer(t, 4)
	a1, _ := newTestAgent(t, 0, 2)
	c1, s1 := net.Pipe()
	go srv.Handle(s1)
	if err := a1.Handshake(c1); err != nil {
		t.Fatal(err)
	}

	// Second agent claims units [1,3): overlaps unit 1.
	a2, _ := newTestAgent(t, 1, 2)
	c2, s2 := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- srv.Handle(s2) }()
	if err := a2.Handshake(c2); err == nil {
		t.Error("overlapping agent handshake succeeded")
	}
	if err := <-errc; err == nil {
		t.Error("server accepted an overlapping unit range")
	}
	c1.Close()
}

func TestServerRejectsOutOfRangeUnits(t *testing.T) {
	srv := newTestServer(t, 2)
	a, _ := newTestAgent(t, 1, 2) // claims [1,3) on a 2-unit server
	c, s := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- srv.Handle(s) }()
	if err := a.Handshake(c); err == nil {
		t.Error("out-of-range handshake succeeded")
	}
	if err := <-errc; err == nil {
		t.Error("server accepted an out-of-range unit claim")
	}
}

func TestUnitRangeFreedAfterDisconnect(t *testing.T) {
	srv := newTestServer(t, 2)
	a1, _ := newTestAgent(t, 0, 2)
	c1, s1 := net.Pipe()
	done := make(chan struct{})
	go func() { srv.Handle(s1); close(done) }()
	if err := a1.Handshake(c1); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	<-done

	// A replacement agent for the same units must be accepted.
	a2, _ := newTestAgent(t, 0, 2)
	c2, s2 := net.Pipe()
	go srv.Handle(s2)
	if err := a2.Handshake(c2); err != nil {
		t.Errorf("replacement agent rejected: %v", err)
	}
	c2.Close()
}

func TestAgentMethodsRequireConnection(t *testing.T) {
	a, _ := newTestAgent(t, 0, 1)
	if err := a.ReportOnce(1); err == nil {
		t.Error("ReportOnce succeeded without a connection")
	}
	if err := a.ReceiveCaps(); err == nil {
		t.Error("ReceiveCaps succeeded without a connection")
	}
	if err := a.Run(context.Background()); err == nil {
		t.Error("Run succeeded without a connection")
	}
}

// TestServeOverTCP exercises the composed real-time path: listener, accept
// loop, ticker-driven decisions, agent Run loop — briefly, with a fast
// interval.
func TestServeOverTCP(t *testing.T) {
	units := 2
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Manager: mgr, Units: units, Interval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	devs := make([]rapl.Device, units)
	sims := make([]*rapl.SimDevice, units)
	for i := range devs {
		cfg := rapl.DefaultSimConfig()
		cfg.NoiseStdDev = 0
		d, err := rapl.NewSimDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.SetLoad(140)
		devs[i] = d
		sims[i] = d
	}
	agent, err := Dial("tcp", l.Addr().String(), AgentConfig{
		FirstUnit: 0,
		Devices:   devs,
		Interval:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- agent.Run(ctx) }()

	// Keep the devices drawing power in real time.
	driver := time.NewTicker(5 * time.Millisecond)
	defer driver.Stop()
	deadline := time.After(3 * time.Second)
	for agent.Applied() < 5 {
		select {
		case <-driver.C:
			for _, d := range sims {
				d.Advance(0.005)
			}
		case <-deadline:
			t.Fatalf("agent applied only %d cap batches in 3 s", agent.Applied())
		}
	}

	cancel()
	if err := <-runDone; err != nil {
		t.Errorf("agent.Run: %v", err)
	}
	srv.Close()
	l.Close()
	if err := <-serveDone; err != nil {
		t.Errorf("Serve: %v", err)
	}
	if srv.Rounds() < 5 {
		t.Errorf("server completed %d rounds", srv.Rounds())
	}
}
