package daemon

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"dps/internal/core"
	"dps/internal/faultinject"
	"dps/internal/power"
	"dps/internal/telemetry/series"
	"dps/internal/watch"
)

// newWatchServer builds a watch+series-enabled server around mgr with a
// stubbed, manually advanced clock.
func newWatchServer(t *testing.T, mgr core.Manager, units int) (*Server, *time.Time) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Manager:       mgr,
		Units:         units,
		Interval:      time.Second,
		SeriesEnabled: true,
		WatchEnabled:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0).UTC()
	srv.now = func() time.Time { return now }
	return srv, &now
}

func watchAlert(t *testing.T, srv *Server, rule string) watch.Alert {
	t.Helper()
	for _, a := range srv.Watcher().Alerts() {
		if a.Rule == rule {
			return a
		}
	}
	t.Fatalf("no alert %q", rule)
	return watch.Alert{}
}

// TestWatchBudgetFaultFiresWithinOneRound is the acceptance-criteria
// chaos test at the daemon layer: a fault-injected manager inflates its
// caps past the budget at a known round; budget_conservation must fire
// within that exact round and resolve within one round of recovery.
func TestWatchBudgetFaultFiresWithinOneRound(t *testing.T) {
	const units = 4
	inner, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	// Fault window: rounds [3,5). Scale 1.5 pushes the cap sum ~50% over.
	mgr, err := faultinject.WrapManager(inner, faultinject.ManagerConfig{
		FromRound: 3, UntilRound: 5, Scale: 1.5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, now := newWatchServer(t, mgr, units)

	states := make([]string, 0, 7)
	for round := 1; round <= 7; round++ {
		setReadings(srv, power.Vector{120, 120, 120, 120})
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
		states = append(states, watchAlert(t, srv, watch.RuleBudgetConservation).State)
		*now = now.Add(time.Second)
	}

	want := []string{
		watch.StateInactive, watch.StateInactive, // healthy rounds 1-2
		watch.StateFiring, watch.StateFiring, // faulted rounds 3-4
		watch.StateResolved, watch.StateResolved, watch.StateResolved, // recovered
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("budget_conservation per round = %v, want %v", states, want)
		}
	}
	if a := watchAlert(t, srv, watch.RuleBudgetConservation); a.FiredCount != 1 {
		t.Errorf("fired %d times across one fault window, want 1", a.FiredCount)
	}

	// The lifecycle is visible in /status and the exposition.
	if s := srv.Snapshot(); s.AlertsFiring != 0 {
		t.Errorf("alerts_firing = %d after recovery, want 0", s.AlertsFiring)
	}
	rec := httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	var alerts []watch.Alert
	if err := json.Unmarshal(rec.Body.Bytes(), &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 3 {
		t.Fatalf("/alerts returned %d rules, want the 3 builtins", len(alerts))
	}
}

// TestWatchCleanRoundsStayQuiet pins the no-false-positive side: a healthy
// DPS daemon run never moves any builtin audit off inactive.
func TestWatchCleanRoundsStayQuiet(t *testing.T) {
	const units = 4
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, now := newWatchServer(t, mgr, units)
	for round := 0; round < 20; round++ {
		setReadings(srv, power.Vector{30, 160, 90, 140})
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
		*now = now.Add(time.Second)
	}
	for _, a := range srv.Watcher().Alerts() {
		if a.State != watch.StateInactive {
			t.Errorf("rule %s = %s after clean rounds (value %g, %s)", a.Rule, a.State, a.Value, a.Message)
		}
	}
}

// TestWatchRuleOverSampledSeries drives the full self-monitoring path:
// decision rounds update registry gauges, SampleOnce scrapes them into
// the series store, and a configured threshold rule with a for-duration
// walks pending → firing on the sampled history.
func TestWatchRuleOverSampledSeries(t *testing.T) {
	const units = 2
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Manager:      mgr,
		Units:        units,
		Interval:     time.Second,
		WatchEnabled: true,
		WatchRules: []watch.Rule{{
			Name: "cap_sum_low", Kind: watch.KindThreshold,
			Series: "dps_cap_sum_watts", Op: "<", Value: 1000, ForMS: 2000,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Series() == nil {
		t.Fatal("configured watch rules did not imply a series store")
	}
	now := time.Unix(1_700_000_000, 0).UTC()
	srv.now = func() time.Time { return now }

	states := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		setReadings(srv, power.Vector{100, 100})
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
		srv.SampleOnce()
		states = append(states, watchAlert(t, srv, "cap_sum_low").State)
		now = now.Add(time.Second)
	}
	want := []string{watch.StatePending, watch.StatePending, watch.StateFiring, watch.StateFiring}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("cap_sum_low per scrape = %v, want %v", states, want)
		}
	}
}

// TestDebugSeriesEndpoint pins the /debug/series wiring: sampled daemon
// metrics are queryable over HTTP with deterministic timestamps.
func TestDebugSeriesEndpoint(t *testing.T) {
	srv, now := newWatchServer(t, mustDPS(t, 2), 2)
	for i := 0; i < 3; i++ {
		setReadings(srv, power.Vector{50, 60})
		if _, err := srv.DecideOnce(1); err != nil {
			t.Fatal(err)
		}
		srv.SampleOnce()
		*now = now.Add(time.Second)
	}

	rec := httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series?name=dps_cap_sum_watts", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/series = %d: %s", rec.Code, rec.Body.String())
	}
	var out series.Series
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 3 || out.Kind != series.KindGauge {
		t.Fatalf("dps_cap_sum_watts history = %+v", out)
	}

	// The index lists sampled series; per-unit gauges carry their label
	// signature in the key.
	rec = httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series", nil))
	var idx struct {
		Series []string `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range idx.Series {
		if name == `dps_unit_cap_watts{unit="1"}` {
			found = true
		}
	}
	if !found {
		t.Fatalf("index missing labeled unit series: %v", idx.Series)
	}
}

// TestDebugSeriesAbsentWhenDisabled pins the zero-cost-off contract's
// visible half: without SeriesEnabled there is no store and no endpoint.
func TestDebugSeriesAbsentWhenDisabled(t *testing.T) {
	srv := newTestServer(t, 2)
	if srv.Series() != nil || srv.Watcher() != nil {
		t.Fatal("disabled server built self-monitoring state")
	}
	srv.SampleOnce() // must be a no-op, not a panic
	rec := httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/series", nil))
	if rec.Code != 404 {
		t.Fatalf("/debug/series on a disabled server = %d, want 404", rec.Code)
	}
	// /alerts still exists and serves an empty list.
	rec = httptest.NewRecorder()
	srv.StatusHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("/alerts on a disabled server = %d, want 200", rec.Code)
	}
}

func mustDPS(t *testing.T, units int) *core.DPS {
	t.Helper()
	mgr, err := core.NewDPS(core.DefaultConfig(units, testBudget(units)))
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}
