package daemon

import (
	"time"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/telemetry/series"
	"dps/internal/watch"
)

// Option adjusts one field of a ServerConfig. Options compose left to
// right over the defaults, mirroring dps.New:
//
//	srv, err := daemon.New(mgr,
//	    daemon.WithInterval(time.Second),
//	    daemon.WithStaleAfter(3*time.Second),
//	    daemon.WithDeltaEpsilon(0.5),
//	)
//
// NewServer(ServerConfig) remains the low-level path for callers that
// build the whole config themselves.
type Option func(*ServerConfig)

// New builds a controller daemon for the manager's units: the unit count
// comes from the manager's cap vector, the decision interval defaults to
// the paper's one second, and the options are applied in order.
func New(mgr core.Manager, opts ...Option) (*Server, error) {
	cfg := ServerConfig{Manager: mgr, Interval: time.Second}
	if mgr != nil {
		cfg.Units = len(mgr.Caps())
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return NewServer(cfg)
}

// WithUnits overrides the unit count derived from the manager (callers
// whose manager is sized lazily).
func WithUnits(n int) Option {
	return func(c *ServerConfig) { c.Units = n }
}

// WithInterval sets the decision loop period.
func WithInterval(d time.Duration) Option {
	return func(c *ServerConfig) { c.Interval = d }
}

// WithLogf routes operational log lines.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(c *ServerConfig) { c.Logf = logf }
}

// WithFlightRecorderSize sets how many decision rounds the flight
// recorder retains for GET /debug/rounds.
func WithFlightRecorderSize(n int) Option {
	return func(c *ServerConfig) { c.FlightRecorderSize = n }
}

// WithStaleAfter freezes a unit's cap after this long without an
// accepted report (0, with WithDeadAfter 0, disables health tracking).
func WithStaleAfter(d time.Duration) Option {
	return func(c *ServerConfig) { c.StaleAfter = d }
}

// WithDeadAfter reserves a unit's budget at its last delivered cap after
// this long without a report.
func WithDeadAfter(d time.Duration) Option {
	return func(c *ServerConfig) { c.DeadAfter = d }
}

// WithReadIdleTimeout reaps agent connections silent for this long.
func WithReadIdleTimeout(d time.Duration) Option {
	return func(c *ServerConfig) { c.ReadIdleTimeout = d }
}

// WithMaxReading rejects inbound power reports above the ceiling.
func WithMaxReading(w power.Watts) Option {
	return func(c *ServerConfig) { c.MaxReading = w }
}

// WithDeltaEpsilon advertises the report-suppression band to
// batch-capable agents.
func WithDeltaEpsilon(w power.Watts) Option {
	return func(c *ServerConfig) { c.DeltaEpsilon = w }
}

// WithoutBatchIngest rejects handshakes advertising the batch capability
// (the delta-plane escape hatch).
func WithoutBatchIngest() Option {
	return func(c *ServerConfig) { c.DisableBatchIngest = true }
}

// WithTrace starts the round-scoped span recorder enabled, with the
// given span ring capacity (0 = default).
func WithTrace(spans int) Option {
	return func(c *ServerConfig) {
		c.TraceEnabled = true
		c.TraceSpans = spans
	}
}

// WithSeries enables the embedded metric-history store and sampler.
func WithSeries(cfg series.Config) Option {
	return func(c *ServerConfig) {
		c.SeriesEnabled = true
		c.SeriesConfig = cfg
	}
}

// WithWatch enables the watchdog's invariant audits plus the given alert
// rules.
func WithWatch(rules ...watch.Rule) Option {
	return func(c *ServerConfig) {
		c.WatchEnabled = true
		c.WatchRules = append(c.WatchRules, rules...)
	}
}

// WithBudgetTolerance sets the slack on the budget_conservation audit.
func WithBudgetTolerance(w float64) Option {
	return func(c *ServerConfig) { c.BudgetToleranceW = w }
}

// WithSnapshotFile writes the controller state snapshot to path every
// `every` rounds (0 = the daemon default) and once at graceful shutdown.
func WithSnapshotFile(path string, every int) Option {
	return func(c *ServerConfig) {
		c.SnapshotPath = path
		c.SnapshotEvery = every
	}
}

// WithRestoreFrom loads a snapshot file at boot (the caller still
// invokes RestoreFromSnapshot; this records the path in the config).
func WithRestoreFrom(path string) Option {
	return func(c *ServerConfig) { c.RestoreFrom = path }
}

// WithStandbyOf runs the server as a warm standby of the primary dpsd at
// addr; it serves agents only after taking over (see RunStandby).
func WithStandbyOf(addr string) Option {
	return func(c *ServerConfig) { c.StandbyOf = addr }
}
