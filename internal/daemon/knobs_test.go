package daemon

import (
	"encoding/json"
	"flag"
	"io"
	"reflect"
	"testing"
	"time"

	"dps/internal/power"
)

// knobParityCases drives one row per table knob: the flag argument and
// the JSON fragment that must land the same value in a ServerConfig. A
// knob missing here fails the completeness check below.
var knobParityCases = []struct {
	flag     string // knob.Flag
	flagArg  string // -flag=value as passed on a command line
	jsonFrag string // "key": value as written in a config file
	want     func(sc ServerConfig) bool
}{
	{
		flag: "stale-after", flagArg: "-stale-after=3s", jsonFrag: `"stale_after_ms": 3000`,
		want: func(sc ServerConfig) bool { return sc.StaleAfter == 3*time.Second },
	},
	{
		flag: "dead-after", flagArg: "-dead-after=10s", jsonFrag: `"dead_after_ms": 10000`,
		want: func(sc ServerConfig) bool { return sc.DeadAfter == 10*time.Second },
	},
	{
		flag: "read-idle-timeout", flagArg: "-read-idle-timeout=5s", jsonFrag: `"read_idle_timeout_ms": 5000`,
		want: func(sc ServerConfig) bool { return sc.ReadIdleTimeout == 5*time.Second },
	},
	{
		flag: "max-reading", flagArg: "-max-reading=330", jsonFrag: `"max_reading_w": 330`,
		want: func(sc ServerConfig) bool { return sc.MaxReading == 330 },
	},
	{
		flag: "delta-epsilon", flagArg: "-delta-epsilon=0.5", jsonFrag: `"delta_epsilon_w": 0.5`,
		want: func(sc ServerConfig) bool { return sc.DeltaEpsilon == 0.5 },
	},
	{
		flag: "disable-batch-ingest", flagArg: "-disable-batch-ingest", jsonFrag: `"disable_batch_ingest": true`,
		want: func(sc ServerConfig) bool { return sc.DisableBatchIngest },
	},
	{
		flag: "sparse-rounds", flagArg: "-sparse-rounds=false", jsonFrag: `"sparse_rounds": false`,
		want: func(sc ServerConfig) bool { return !sc.SparseRounds },
	},
	{
		flag: "sparse-refresh-every", flagArg: "-sparse-refresh-every=16", jsonFrag: `"sparse_refresh_every": 16`,
		want: func(sc ServerConfig) bool { return sc.SparseRefreshEvery == 16 },
	},
	{
		flag: "trace", flagArg: "-trace", jsonFrag: `"trace": true`,
		want: func(sc ServerConfig) bool { return sc.TraceEnabled },
	},
	{
		flag: "trace-spans", flagArg: "-trace-spans=512", jsonFrag: `"trace_spans": 512`,
		want: func(sc ServerConfig) bool { return sc.TraceSpans == 512 },
	},
	{
		flag: "series", flagArg: "-series", jsonFrag: `"series": true`,
		want: func(sc ServerConfig) bool { return sc.SeriesEnabled },
	},
	{
		flag: "watch", flagArg: "-watch", jsonFrag: `"watch": true`,
		want: func(sc ServerConfig) bool { return sc.WatchEnabled },
	},
	{
		flag: "budget-tolerance", flagArg: "-budget-tolerance=0.01", jsonFrag: `"budget_tolerance_w": 0.01`,
		want: func(sc ServerConfig) bool { return sc.BudgetToleranceW == 0.01 },
	},
	{
		flag: "snapshot-path", flagArg: "-snapshot-path=/var/lib/dps/state.dps", jsonFrag: `"snapshot_path": "/var/lib/dps/state.dps"`,
		want: func(sc ServerConfig) bool { return sc.SnapshotPath == "/var/lib/dps/state.dps" },
	},
	{
		flag: "snapshot-every", flagArg: "-snapshot-every=25", jsonFrag: `"snapshot_every": 25`,
		want: func(sc ServerConfig) bool { return sc.SnapshotEvery == 25 },
	},
	{
		flag: "blackbox-path", flagArg: "-blackbox-path=/var/lib/dps/blackbox", jsonFrag: `"blackbox_path": "/var/lib/dps/blackbox"`,
		want: func(sc ServerConfig) bool { return sc.BlackboxPath == "/var/lib/dps/blackbox" },
	},
	{
		flag: "blackbox-rounds", flagArg: "-blackbox-rounds=1024", jsonFrag: `"blackbox_rounds": 1024`,
		want: func(sc ServerConfig) bool { return sc.BlackboxRounds == 1024 },
	},
	{
		flag: "restore-from", flagArg: "-restore-from=/var/lib/dps/state.dps", jsonFrag: `"restore_from": "/var/lib/dps/state.dps"`,
		want: func(sc ServerConfig) bool { return sc.RestoreFrom == "/var/lib/dps/state.dps" },
	},
	{
		flag: "standby-of", flagArg: "-standby-of=primary:7891", jsonFrag: `"standby_of": "primary:7891"`,
		want: func(sc ServerConfig) bool { return sc.StandbyOf == "primary:7891" },
	},
}

// TestKnobFlagJSONParity proves, knob by knob, that the command-line
// flag and the config-file key produce identical ServerConfigs — the
// property the knob table exists to hold.
func TestKnobFlagJSONParity(t *testing.T) {
	// The baseline a single-knob parse is compared against for the no-op
	// check: flag defaults only. Not the zero ServerConfig — default-true
	// knobs (sparse-rounds) make the two differ.
	defFS := flag.NewFlagSet("dpsd", flag.ContinueOnError)
	applyDefaults := RegisterServerFlags(defFS)
	if err := defFS.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var defaults ServerConfig
	applyDefaults(&defaults)

	covered := map[string]bool{}
	for _, tc := range knobParityCases {
		covered[tc.flag] = true

		// Flag surface.
		fs := flag.NewFlagSet("dpsd", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		apply := RegisterServerFlags(fs)
		if err := fs.Parse([]string{tc.flagArg}); err != nil {
			t.Errorf("%s: parsing %q: %v", tc.flag, tc.flagArg, err)
			continue
		}
		var fromFlags ServerConfig
		apply(&fromFlags)

		// File surface.
		var fc FileConfig
		if err := json.Unmarshal([]byte(`{`+tc.jsonFrag+`}`), &fc); err != nil {
			t.Errorf("%s: parsing {%s}: %v", tc.flag, tc.jsonFrag, err)
			continue
		}
		var fromFile ServerConfig
		fc.ApplyKnobs(&fromFile)

		if !tc.want(fromFlags) {
			t.Errorf("%s: flag %q did not land in ServerConfig: %+v", tc.flag, tc.flagArg, fromFlags)
		}
		if !tc.want(fromFile) {
			t.Errorf("%s: JSON {%s} did not land in ServerConfig: %+v", tc.flag, tc.jsonFrag, fromFile)
		}
		if !reflect.DeepEqual(fromFlags, fromFile) {
			t.Errorf("%s: flag and JSON configs diverge:\nflags: %+v\nfile:  %+v", tc.flag, fromFlags, fromFile)
		}
		if reflect.DeepEqual(fromFlags, defaults) {
			t.Errorf("%s: flag %q was a no-op", tc.flag, tc.flagArg)
		}
	}
	for _, k := range serverKnobs {
		if !covered[k.Flag] {
			t.Errorf("knob %q (json %q) has no parity case", k.Flag, k.JSON)
		}
	}
	if len(knobParityCases) != len(serverKnobs) {
		t.Errorf("%d parity cases for %d knobs", len(knobParityCases), len(serverKnobs))
	}
}

// TestKnobTableNames pins each knob's declared names to the names its
// registration actually uses, so a renamed flag or retagged JSON field
// cannot silently detach from the table.
func TestKnobTableNames(t *testing.T) {
	fs := flag.NewFlagSet("dpsd", flag.ContinueOnError)
	RegisterServerFlags(fs)
	for _, k := range serverKnobs {
		if fs.Lookup(k.Flag) == nil {
			t.Errorf("knob %q registers no flag by that name", k.Flag)
		}
	}

	// Every JSON key in the table must be a real FileConfig tag.
	tags := map[string]bool{}
	rt := reflect.TypeOf(FileConfig{})
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		for j, c := range tag {
			if c == ',' {
				tag = tag[:j]
				break
			}
		}
		tags[tag] = true
	}
	for _, k := range serverKnobs {
		if !tags[k.JSON] {
			t.Errorf("knob %q names JSON key %q, which is not a FileConfig field tag", k.Flag, k.JSON)
		}
	}
}

// TestKnobValidation exercises the table-driven range checks through
// FileConfig.validate.
func TestKnobValidation(t *testing.T) {
	base := FileConfig{Units: 2, IntervalMS: 1000, Policy: "dps"}
	bad := []func(*FileConfig){
		func(fc *FileConfig) { fc.StaleAfterMS = -1 },
		func(fc *FileConfig) { fc.DeadAfterMS = -1 },
		func(fc *FileConfig) { fc.ReadIdleTimeoutMS = -1 },
		func(fc *FileConfig) { fc.MaxReadingW = -1 },
		func(fc *FileConfig) { fc.DeltaEpsilonW = -0.5 },
		func(fc *FileConfig) { fc.SparseRefreshEvery = -1 },
		func(fc *FileConfig) { fc.TraceSpans = -1 },
		func(fc *FileConfig) { fc.BudgetToleranceW = -1 },
		func(fc *FileConfig) { fc.SnapshotEvery = -1 },
	}
	for i, mutate := range bad {
		fc := base
		mutate(&fc)
		if err := fc.validate(); err == nil {
			t.Errorf("case %d: validate accepted %+v", i, fc)
		}
	}
	good := base
	good.DeltaEpsilonW = 0.5
	good.DisableBatchIngest = true
	good.applyDefaults()
	if err := good.validate(); err != nil {
		t.Errorf("validate rejected %+v: %v", good, err)
	}
}

// TestServerOptions exercises daemon.New: units derived from the
// manager, defaults applied, options landing in the config.
func TestServerOptions(t *testing.T) {
	mgr := newTestServer(t, 4).cfg.Manager
	srv, err := New(mgr,
		WithStaleAfter(3*time.Second),
		WithDeadAfter(10*time.Second),
		WithReadIdleTimeout(5*time.Second),
		WithMaxReading(330),
		WithDeltaEpsilon(0.5),
		WithoutBatchIngest(),
		WithTrace(128),
		WithBudgetTolerance(0.01),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cfg := srv.cfg
	checks := []struct {
		name string
		ok   bool
	}{
		{"units from manager", cfg.Units == 4},
		{"default interval", cfg.Interval == time.Second},
		{"stale-after", cfg.StaleAfter == 3*time.Second},
		{"dead-after", cfg.DeadAfter == 10*time.Second},
		{"read-idle-timeout", cfg.ReadIdleTimeout == 5*time.Second},
		{"max-reading", cfg.MaxReading == power.Watts(330)},
		{"delta-epsilon", cfg.DeltaEpsilon == 0.5},
		{"disable-batch-ingest", cfg.DisableBatchIngest},
		{"trace enabled", cfg.TraceEnabled && cfg.TraceSpans == 128},
		{"budget tolerance", cfg.BudgetToleranceW == 0.01},
	}
	for _, c := range checks {
		if !c.ok {
			t.Errorf("%s: not applied (config %+v)", c.name, cfg)
		}
	}

	if _, err := New(nil); err == nil {
		t.Error("New accepted a nil manager")
	}
}
