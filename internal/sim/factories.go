package sim

import (
	"fmt"

	"dps/internal/baseline"
	"dps/internal/core"
	"dps/internal/hier"
	"dps/internal/p2p"
	"dps/internal/power"
	"dps/internal/stateless"
)

// ConstantFactory builds the constant-allocation baseline.
func ConstantFactory() ManagerFactory {
	return func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		return baseline.NewConstant(units, budget)
	}
}

// SLURMFactory builds the stateless MIMD baseline with the default
// Algorithm 1 parameters.
func SLURMFactory() ManagerFactory {
	return SLURMFactoryWith(stateless.DefaultConfig())
}

// SLURMFactoryWith builds the stateless baseline with explicit parameters.
func SLURMFactoryWith(cfg stateless.Config) ManagerFactory {
	return func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		return baseline.NewSLURM(units, budget, cfg, seed)
	}
}

// OracleFactory builds the demand-proportional oracle.
func OracleFactory() ManagerFactory {
	return func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		return baseline.NewOracle(units, budget, baseline.DefaultOracleConfig())
	}
}

// DPSFactory builds a DPS controller with the paper's defaults.
func DPSFactory() ManagerFactory {
	return DPSFactoryWith(nil)
}

// DPSFactoryWith builds DPS after letting modify adjust the default
// configuration (for ablations: disable the Kalman filter, frequency
// detection, restore, or the whole priority path).
func DPSFactoryWith(modify func(*core.Config)) ManagerFactory {
	return func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		cfg := core.DefaultConfig(units, budget)
		cfg.Seed = seed
		if modify != nil {
			modify(&cfg)
		}
		return core.NewDPS(cfg)
	}
}

// P2PFactory builds the decentralized peer-to-peer manager.
func P2PFactory() ManagerFactory {
	return func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		cfg := p2p.DefaultConfig(units, budget)
		cfg.Seed = seed
		return p2p.New(cfg)
	}
}

// FeedbackFactory builds the PShifter-style feedback baseline.
func FeedbackFactory() ManagerFactory {
	return func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		return baseline.NewFeedback(units, budget, baseline.DefaultFeedbackConfig())
	}
}

// HierarchicalDPSFactory builds the two-level DPS with the given group
// count. The unit count must divide evenly into groups.
func HierarchicalDPSFactory(groups, epoch int) ManagerFactory {
	return func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		if groups <= 0 || units%groups != 0 {
			return nil, fmt.Errorf("sim: %d units do not partition into %d groups", units, groups)
		}
		cfg := hier.DefaultConfig(groups, units/groups, budget)
		cfg.Seed = seed
		if epoch > 0 {
			cfg.Epoch = epoch
		}
		return hier.New(cfg)
	}
}

// StandardFactories returns the paper's manager lineup in presentation
// order. withOracle adds the oracle (only computable/meaningful in the
// low-utility scenario, §5.2).
func StandardFactories(withOracle bool) map[string]ManagerFactory {
	m := map[string]ManagerFactory{
		"Constant": ConstantFactory(),
		"SLURM":    SLURMFactory(),
		"DPS":      DPSFactory(),
	}
	if withOracle {
		m["Oracle"] = OracleFactory()
	}
	return m
}
