package sim

import (
	"testing"

	"dps/internal/workload"
)

// TestSmokeHighUtilityPair sanity-checks the closed loop on the paper's
// hardest scenario shape: a high-power workload (GMM) co-executing with a
// mid-power one (LDA). It asserts the structural properties every later
// experiment relies on; the quantitative shape is asserted in the exp
// package's tests.
func TestSmokeHighUtilityPair(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-step simulation")
	}
	gmm, err := workload.ByName("GMM")
	if err != nil {
		t.Fatal(err)
	}
	lda, err := workload.ByName("LDA")
	if err != nil {
		t.Fatal(err)
	}
	cfg := PairConfig{WorkloadA: lda, WorkloadB: gmm, Repeats: 2, Seed: 7}

	results := map[string]PairResult{}
	for name, f := range StandardFactories(true) {
		res, err := RunPair(cfg, f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TimedOut {
			t.Errorf("%s: experiment timed out after %v steps", name, res.Steps)
		}
		if res.BudgetViolations != 0 {
			t.Errorf("%s: %d budget violations", name, res.BudgetViolations)
		}
		if len(res.A.Runs) < cfg.Repeats || len(res.B.Runs) < cfg.Repeats {
			t.Errorf("%s: incomplete runs A=%d B=%d", name, len(res.A.Runs), len(res.B.Runs))
		}
		results[name] = res
		t.Logf("%-8s A(%s): mean=%7.1fs sat=%.3f  B(%s): mean=%7.1fs sat=%.3f  fairness=%.3f steps=%d",
			name, res.A.Workload, res.A.MeanDuration, res.A.MeanSatisfaction,
			res.B.Workload, res.B.MeanDuration, res.B.MeanSatisfaction, res.Fairness, res.Steps)
	}

	// DPS must be at least as fair as SLURM under contention (paper §6.4).
	if results["DPS"].Fairness < results["SLURM"].Fairness-0.02 {
		t.Errorf("DPS fairness %.3f below SLURM %.3f", results["DPS"].Fairness, results["SLURM"].Fairness)
	}
}
