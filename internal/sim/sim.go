// Package sim is the discrete-time experiment engine: it wires a simulated
// machine (clusters of RAPL sockets running workloads) to a power manager
// in closed loop and measures what the paper measures — per-run throughput
// times, satisfaction, and fairness.
//
// The loop per decision interval (dT, default 1 s) mirrors the deployed
// system: sockets draw power under the currently programmed caps, the
// controller receives the measured (noisy) per-unit average power, decides
// new caps, and programs them. Workload runs launch back-to-back on each
// cluster with a short idle gap, exactly like the paper's experiment
// scripts repeating each workload in a pair.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"dps/internal/cluster"
	"dps/internal/core"
	"dps/internal/faultinject"
	"dps/internal/metrics"
	"dps/internal/power"
	"dps/internal/trace"
	"dps/internal/watch"
	"dps/internal/workload"
)

// ManagerFactory builds a power manager for a machine of `units` units
// under `budget`. Factories exist so one experiment description can be
// replayed against every policy.
type ManagerFactory func(units int, budget power.Budget, seed int64) (core.Manager, error)

// PairConfig describes one co-execution experiment: workload A on cluster
// 0 and workload B on cluster 1.
type PairConfig struct {
	// Machine is the simulated platform (default: the paper's 2×5×2
	// sockets).
	Machine cluster.Config
	// Budget is the cluster-wide envelope. The zero value selects the
	// paper's 66.7 % limit: 110 W per socket.
	Budget power.Budget
	// WorkloadA runs on cluster 0, WorkloadB on cluster 1.
	WorkloadA, WorkloadB *workload.Spec
	// Repeats is the minimum number of completed runs per cluster before
	// the experiment stops (the paper repeats each workload ≥10 times).
	Repeats int
	// Gap is the idle time between consecutive runs on a cluster.
	Gap power.Seconds
	// StartOffsetB delays cluster 1's first run to decorrelate phases.
	StartOffsetB power.Seconds
	// DT is the decision interval (default 1 s).
	DT power.Seconds
	// Seed drives all experiment randomness (workload jitter, RAPL noise,
	// manager tie-breaking).
	Seed int64
	// MaxTime aborts a runaway experiment. Zero selects a generous bound
	// derived from the workloads' table durations.
	MaxTime power.Seconds
	// MaxSteps, when positive, stops the experiment after this many
	// decision intervals even if repeats are unfinished — fixed-length
	// traces for tests and benchmarks, without overloading the MaxTime
	// safety stop.
	MaxSteps int
	// StepHook, if non-nil, observes every step after caps are applied:
	// virtual time, measured readings, and programmed caps. Slices are
	// owned by the engine and only valid during the call.
	StepHook func(t power.Seconds, readings, caps power.Vector)
	// ReadingFaults, if non-nil, corrupts the measured readings with this
	// seeded schedule before the manager sees them — the garbage a broken
	// sensor stack would report, for robustness experiments. The machine's
	// ground truth (demands, energy accounting) is untouched.
	ReadingFaults *faultinject.ReadingConfig
	// Tracer, if non-nil, receives round-scoped spans: one sim_step span
	// per decision interval on the sim lane, plus the controller's
	// per-stage spans when the manager is a core.DPS.
	Tracer *trace.Recorder
	// Watcher, if non-nil, receives one RoundAudit per step (budget vs
	// programmed cap sum, provenance when the manager is a core.DPS) so
	// chaos experiments can use the watchdog itself as the oracle. Audit
	// timestamps are virtual time mapped onto the Unix epoch, keeping the
	// alert lifecycle deterministic for a fixed configuration.
	Watcher *watch.Watcher
}

// withDefaults fills zero fields.
func (c PairConfig) withDefaults() PairConfig {
	if c.Machine.Clusters == 0 {
		c.Machine = cluster.DefaultConfig()
		c.Machine.Seed = c.Seed
	}
	if c.Budget.Total == 0 {
		units := c.Machine.Units()
		c.Budget = power.Budget{
			Total:   power.Watts(units) * 110,
			UnitMax: c.Machine.Rapl.TDP,
			UnitMin: c.Machine.Rapl.MinCap,
		}
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if c.Gap == 0 {
		c.Gap = 8
	}
	if c.DT == 0 {
		c.DT = 1
	}
	if c.MaxTime == 0 {
		perRun := float64(c.WorkloadA.TableDuration + c.WorkloadB.TableDuration)
		c.MaxTime = power.Seconds(float64(c.Repeats)*perRun*4 + 3600)
	}
	return c
}

// Validate reports whether the configuration is runnable.
func (c PairConfig) Validate() error {
	if c.WorkloadA == nil || c.WorkloadB == nil {
		return fmt.Errorf("sim: pair needs two workloads (A=%v B=%v)", c.WorkloadA, c.WorkloadB)
	}
	if c.Machine.Clusters < 2 {
		return fmt.Errorf("sim: pair experiment needs at least 2 clusters, have %d", c.Machine.Clusters)
	}
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	return c.Budget.Validate(c.Machine.Units())
}

// RunRecord is one completed workload run.
type RunRecord struct {
	// Index is the run's position on its cluster (0-based).
	Index int
	// Duration is the run's wall-clock completion time (the paper's
	// "throughput time").
	Duration power.Seconds
	// MeanPower is the average true power per socket during the run.
	MeanPower power.Watts
	// UncappedMeanPower is what the run would have averaged with no caps.
	UncappedMeanPower power.Watts
	// Satisfaction is Equation 1 for this run.
	Satisfaction float64
}

// ClusterResult aggregates one cluster's runs in a pair experiment.
type ClusterResult struct {
	Workload string
	Runs     []RunRecord
	// MeanDuration is the arithmetic mean completion time of completed
	// runs (the paper's per-workload metric).
	MeanDuration power.Seconds
	// HMeanDuration is the harmonic mean of completion times.
	HMeanDuration power.Seconds
	// MeanSatisfaction averages per-run satisfaction.
	MeanSatisfaction float64
}

// PairResult is the outcome of one pair experiment under one manager.
type PairResult struct {
	Manager string
	A, B    ClusterResult
	// Fairness is Equation 2 between the two clusters' mean satisfactions.
	Fairness float64
	// Steps is the number of decision intervals simulated.
	Steps int
	// SimTime is the total virtual time.
	SimTime power.Seconds
	// BudgetViolations counts steps whose programmed caps exceeded the
	// budget (must be 0; the paper reports caps were always respected).
	BudgetViolations int
	// TimedOut reports the MaxTime safety stop fired before both clusters
	// finished their repeats.
	TimedOut bool
	// Stages carries per-stage controller timing accumulated over the
	// experiment. Nil unless the manager is a core.DPS.
	Stages *StageBreakdown
}

// clusterState tracks run scheduling for one cluster during an experiment.
type clusterState struct {
	spec      *workload.Spec
	rng       *rand.Rand
	completed []RunRecord
	nextStart power.Seconds
	launched  int
}

// RunPair executes one pair experiment under the manager the factory
// builds. It is deterministic for a fixed configuration.
func RunPair(cfg PairConfig, factory ManagerFactory) (PairResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return PairResult{}, err
	}
	mach, err := cluster.NewMachine(cfg.Machine)
	if err != nil {
		return PairResult{}, err
	}
	units := mach.Units()
	mgr, err := factory(units, cfg.Budget, cfg.Seed)
	if err != nil {
		return PairResult{}, err
	}
	if err := mach.ApplyCaps(mgr.Caps()); err != nil {
		return PairResult{}, err
	}

	states := []*clusterState{
		{spec: cfg.WorkloadA, rng: rand.New(rand.NewSource(cfg.Seed*1_000_003 + 1))},
		{spec: cfg.WorkloadB, rng: rand.New(rand.NewSource(cfg.Seed*1_000_003 + 2)), nextStart: cfg.StartOffsetB},
	}

	res := PairResult{Manager: mgr.Name()}
	dpsMgr, _ := mgr.(*core.DPS)
	if dpsMgr != nil {
		res.Stages = &StageBreakdown{}
		dpsMgr.SetTracer(cfg.Tracer)
	}
	var corrupter *faultinject.Readings
	var corrupted power.Vector
	if cfg.ReadingFaults != nil {
		corrupter = faultinject.NewReadings(*cfg.ReadingFaults, nil)
		corrupted = make(power.Vector, units)
	}
	var t power.Seconds
	eps := power.Watts(1e-6)

	done := func() bool {
		for _, s := range states {
			if len(s.completed) < cfg.Repeats {
				return false
			}
		}
		return true
	}

	for !done() {
		if cfg.MaxSteps > 0 && res.Steps >= cfg.MaxSteps {
			break
		}
		if t >= cfg.MaxTime {
			res.TimedOut = true
			break
		}
		traceOn := cfg.Tracer.On()
		var stepStart time.Time
		if traceOn {
			stepStart = time.Now()
		}
		// Launch runs that are due.
		for ci, s := range states {
			cl := mach.Cluster(ci)
			if cl.Run() == nil && t >= s.nextStart && len(s.completed) < cfg.Repeats {
				cl.SetRun(workload.NewRun(s.spec, s.rng))
				s.launched++
			}
		}

		// Advance the platform one interval under the current caps.
		readings, err := mach.Step(cfg.DT)
		if err != nil {
			return PairResult{}, err
		}
		if corrupter != nil {
			// Corrupt a copy: the machine owns the readings slice and uses
			// it for its own accounting.
			copy(corrupted, readings)
			corrupter.Corrupt(corrupted)
			readings = corrupted
		}

		// Harvest completed runs.
		for ci, s := range states {
			cl := mach.Cluster(ci)
			run := cl.Run()
			if run != nil && run.Done() {
				rec := RunRecord{
					Index:             len(s.completed),
					Duration:          run.Elapsed(),
					MeanPower:         cl.RunMeanPower(),
					UncappedMeanPower: run.UncappedMeanPower(),
				}
				rec.Satisfaction = metrics.Satisfaction(rec.MeanPower, rec.UncappedMeanPower)
				s.completed = append(s.completed, rec)
				cl.SetRun(nil)
				s.nextStart = t + cfg.DT + cfg.Gap
			}
		}

		// Controller pass: readings in, caps out, caps programmed. A DPS
		// manager goes through the stats-returning API so the stage
		// breakdown is taken from the round it belongs to.
		snap := core.Snapshot{
			Power:    readings,
			Interval: cfg.DT,
			Demand:   mach.TrueDemands(),
		}
		var caps power.Vector
		if dpsMgr != nil {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			before := ms.Mallocs
			var st core.RoundStats
			caps, st = dpsMgr.DecideStats(snap)
			runtime.ReadMemStats(&ms)
			res.Stages.Add(st)
			res.Stages.AddMallocs(ms.Mallocs - before)
		} else {
			caps = mgr.Decide(snap)
		}
		if caps.Sum() > cfg.Budget.Total+eps {
			res.BudgetViolations++
		}
		if err := mach.ApplyCaps(caps); err != nil {
			return PairResult{}, err
		}
		if cfg.Watcher != nil {
			// Audited before StepHook so a hook can read the alert state the
			// step produced.
			audit := watch.RoundAudit{
				Round:   uint64(res.Steps + 1),
				Time:    time.Unix(0, 0).Add(time.Duration(float64(t) * float64(time.Second))).UTC(),
				BudgetW: float64(cfg.Budget.Total),
				CapSumW: float64(caps.Sum()),
			}
			if dpsMgr != nil {
				audit.ProvenanceAudited = true
				for _, ch := range dpsMgr.Provenance() {
					if ch.Reason == trace.ReasonNone && ch.Before != ch.After {
						audit.ProvenanceViolations++
					}
				}
			}
			cfg.Watcher.ObserveRound(audit)
		}
		if cfg.StepHook != nil {
			cfg.StepHook(t, readings, caps)
		}

		t += cfg.DT
		res.Steps++
		if traceOn {
			// Scoped to the same trace id as the controller's stage spans:
			// DPS advances its round counter once per DecideStats call.
			cfg.Tracer.Record(uint64(res.Steps), trace.SpanSimStep, trace.LaneSim,
				-1, stepStart, time.Since(stepStart))
		}
	}

	res.SimTime = t
	res.A = summarize(states[0])
	res.B = summarize(states[1])
	res.Fairness = metrics.Fairness(res.A.MeanSatisfaction, res.B.MeanSatisfaction)
	return res, nil
}

func summarize(s *clusterState) ClusterResult {
	out := ClusterResult{Workload: s.spec.Name, Runs: s.completed}
	if len(s.completed) == 0 {
		return out
	}
	durs := make([]power.Seconds, len(s.completed))
	sats := make([]float64, len(s.completed))
	for i, r := range s.completed {
		durs[i] = r.Duration
		sats[i] = r.Satisfaction
	}
	out.MeanDuration = metrics.MeanDurations(durs)
	out.HMeanDuration = metrics.HMeanDurations(durs)
	out.MeanSatisfaction = metrics.Mean(sats)
	return out
}
