package sim

import (
	"testing"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/workload"
)

func pairCfg(t *testing.T, a, b string, repeats int, seed int64) PairConfig {
	t.Helper()
	wa, err := workload.ByName(a)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := workload.ByName(b)
	if err != nil {
		t.Fatal(err)
	}
	return PairConfig{WorkloadA: wa, WorkloadB: wb, Repeats: repeats, Seed: seed}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	if err := (PairConfig{}).Validate(); err == nil {
		t.Error("Validate accepted a pairless config")
	}
	cfg := pairCfg(t, "Sort", "Wordcount", 1, 1)
	cfg = cfg.withDefaults()
	cfg.Machine.Clusters = 1
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a single-cluster pair experiment")
	}
}

func TestShortPairCompletesAllRuns(t *testing.T) {
	// Two low-power micro workloads: seconds of virtual time, fast test.
	cfg := pairCfg(t, "Sort", "Wordcount", 3, 5)
	res, err := RunPair(cfg, ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Error("short experiment timed out")
	}
	if len(res.A.Runs) < 3 || len(res.B.Runs) < 3 {
		t.Fatalf("runs completed: A=%d B=%d, want ≥3 each", len(res.A.Runs), len(res.B.Runs))
	}
	if res.Manager != "Constant" {
		t.Errorf("Manager = %q", res.Manager)
	}
	// Low-power workloads under a 110 W cap are never throttled: durations
	// near the table values and satisfaction near 1.
	if res.A.MeanSatisfaction < 0.95 {
		t.Errorf("low-power satisfaction %v, want ~1", res.A.MeanSatisfaction)
	}
	if res.Fairness < 0.9 {
		t.Errorf("fairness %v for two unthrottled workloads", res.Fairness)
	}
	for _, r := range res.A.Runs {
		if r.Duration <= 0 || r.MeanPower <= 0 || r.UncappedMeanPower <= 0 {
			t.Errorf("degenerate run record %+v", r)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() PairResult {
		res, err := RunPair(pairCfg(t, "Sort", "Terasort", 2, 9), DPSFactory())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.SimTime != b.SimTime {
		t.Fatalf("same-seed experiments differ: %d/%v vs %d/%v", a.Steps, a.SimTime, b.Steps, b.SimTime)
	}
	for i := range a.A.Runs {
		if a.A.Runs[i].Duration != b.A.Runs[i].Duration {
			t.Fatalf("run %d durations differ: %v vs %v", i, a.A.Runs[i].Duration, b.A.Runs[i].Duration)
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	r1, err := RunPair(pairCfg(t, "Sort", "Terasort", 2, 1), DPSFactory())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunPair(pairCfg(t, "Sort", "Terasort", 2, 2), DPSFactory())
	if err != nil {
		t.Fatal(err)
	}
	if r1.A.MeanDuration == r2.A.MeanDuration && r1.B.MeanDuration == r2.B.MeanDuration {
		t.Error("different seeds produced identical durations; jitter not wired through")
	}
}

func TestStepHookObservesEveryStep(t *testing.T) {
	cfg := pairCfg(t, "Sort", "Wordcount", 1, 3)
	var calls int
	var lastCaps power.Vector
	cfg.StepHook = func(tm power.Seconds, readings, caps power.Vector) {
		calls++
		if len(readings) != 20 || len(caps) != 20 {
			t.Fatalf("hook saw %d readings / %d caps", len(readings), len(caps))
		}
		lastCaps = caps.Clone()
	}
	res, err := RunPair(cfg, ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	if calls != res.Steps {
		t.Errorf("hook called %d times for %d steps", calls, res.Steps)
	}
	for _, c := range lastCaps {
		if c != 110 {
			t.Errorf("constant manager caps = %v", lastCaps)
			break
		}
	}
}

func TestMaxTimeAborts(t *testing.T) {
	cfg := pairCfg(t, "GMM", "EP", 5, 1)
	cfg.MaxTime = 50 // far too short for these workloads
	res, err := RunPair(cfg, ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Error("experiment did not report the MaxTime stop")
	}
	if res.SimTime > 51 {
		t.Errorf("SimTime %v ran past MaxTime", res.SimTime)
	}
}

func TestStartOffsetDelaysClusterB(t *testing.T) {
	cfg := pairCfg(t, "Sort", "Wordcount", 1, 3)
	cfg.StartOffsetB = 30
	res, err := RunPair(cfg, ConstantFactory())
	if err != nil {
		t.Fatal(err)
	}
	// B started 30 s late, so the experiment runs at least that much
	// longer than B's duration alone.
	if float64(res.SimTime) < 30+float64(res.B.MeanDuration) {
		t.Errorf("SimTime %v too short for a 30 s offset + run %v", res.SimTime, res.B.MeanDuration)
	}
}

func TestAllManagersRespectBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("several simulated experiments")
	}
	for name, f := range StandardFactories(true) {
		res, err := RunPair(pairCfg(t, "Bayes", "RF", 2, 13), f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.BudgetViolations != 0 {
			t.Errorf("%s: %d budget violations", name, res.BudgetViolations)
		}
	}
}

func TestDPSFactoryWithAblation(t *testing.T) {
	f := DPSFactoryWith(func(c *core.Config) { c.DisablePriority = true })
	mgr, err := f(4, power.Budget{Total: 440, UnitMax: 165, UnitMin: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.Name() != "DPS(stateless-only)" {
		t.Errorf("ablated manager name = %q", mgr.Name())
	}
}

func TestStandardFactories(t *testing.T) {
	with := StandardFactories(true)
	if len(with) != 4 {
		t.Errorf("with oracle: %d factories", len(with))
	}
	without := StandardFactories(false)
	if len(without) != 3 {
		t.Errorf("without oracle: %d factories", len(without))
	}
	if _, ok := without["Oracle"]; ok {
		t.Error("oracle present despite withOracle=false")
	}
}
