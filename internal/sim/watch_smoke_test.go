package sim

import (
	"testing"

	"dps/internal/core"
	"dps/internal/faultinject"
	"dps/internal/power"
	"dps/internal/watch"
	"dps/internal/workload"
)

// TestWatchSmoke is the self-monitoring end-to-end gate (also run by
// `make watch-smoke`): a daemon+sim closed loop runs with the watchdog as
// the oracle, a budget fault is injected for a known round window, and
// the budget_conservation alert must fire within one round of the first
// faulted step and resolve within one round of recovery. The whole
// schedule is deterministic: fixed seed, fixed fault window, virtual
// time.
func TestWatchSmoke(t *testing.T) {
	gmm, err := workload.ByName("GMM")
	if err != nil {
		t.Fatal(err)
	}
	lda, err := workload.ByName("LDA")
	if err != nil {
		t.Fatal(err)
	}

	const faultFrom, faultUntil = 10, 15 // 1-based decision rounds
	watcher := watch.New(watch.Config{})
	cfg := PairConfig{
		WorkloadA: lda, WorkloadB: gmm,
		Repeats: 1, Seed: 7,
		MaxTime: 60,
		Watcher: watcher,
	}

	// Wrap the DPS factory with the scheduled budget fault. The wrapper is
	// not a *core.DPS, so the engine uses the plain Decide path — the
	// corrupted caps flow to the machine exactly as a buggy controller's
	// would.
	factory := func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		inner, err := DPSFactory()(units, budget, seed)
		if err != nil {
			return nil, err
		}
		return faultinject.WrapManager(inner, faultinject.ManagerConfig{
			FromRound: faultFrom, UntilRound: faultUntil, Scale: 1.5,
		}, nil)
	}

	// The StepHook runs right after the engine audited the step, so the
	// per-round alert state is exactly the watchdog's view of that round.
	states := []string{}
	cfg.StepHook = func(tm power.Seconds, readings, caps power.Vector) {
		for _, a := range watcher.Alerts() {
			if a.Rule == watch.RuleBudgetConservation {
				states = append(states, a.State)
			}
		}
	}

	res, err := RunPair(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < faultUntil {
		t.Fatalf("simulation stopped after %d steps, before the fault window closed", res.Steps)
	}
	wantViolations := faultUntil - faultFrom
	if res.BudgetViolations != wantViolations {
		t.Fatalf("BudgetViolations = %d, want %d (the engine and the watchdog must agree)",
			res.BudgetViolations, wantViolations)
	}

	for round := 1; round <= res.Steps && round <= len(states); round++ {
		st := states[round-1]
		var want string
		switch {
		case round < faultFrom:
			want = watch.StateInactive
		case round < faultUntil:
			want = watch.StateFiring
		default:
			want = watch.StateResolved
		}
		if st != want {
			t.Fatalf("round %d: budget_conservation = %q, want %q (full timeline %v)",
				round, st, want, states)
		}
	}

	final := watcher.Alerts()
	for _, a := range final {
		switch a.Rule {
		case watch.RuleBudgetConservation:
			if a.State != watch.StateResolved || a.FiredCount != 1 {
				t.Errorf("budget_conservation ended %q after %d firings, want resolved after 1", a.State, a.FiredCount)
			}
		case watch.RuleProvenanceCoverage, watch.RuleHealthPinIntegrity:
			// The wrapper hides the DPS stats API, so these audits carry no
			// evidence and must never fire.
			if a.State != watch.StateInactive {
				t.Errorf("%s = %q on a run with no evidence, want inactive", a.Rule, a.State)
			}
		}
	}
}

// TestWatchOracleCleanRun is the false-positive gate: a healthy DPS pair
// experiment with the watchdog attached must end with every builtin audit
// inactive — in particular, provenance coverage is audited on every round
// (the manager is a real core.DPS here) and must hold throughout.
func TestWatchOracleCleanRun(t *testing.T) {
	gmm, err := workload.ByName("GMM")
	if err != nil {
		t.Fatal(err)
	}
	lda, err := workload.ByName("LDA")
	if err != nil {
		t.Fatal(err)
	}
	watcher := watch.New(watch.Config{})
	cfg := PairConfig{
		WorkloadA: lda, WorkloadB: gmm,
		Repeats: 1, Seed: 11,
		MaxTime: 120,
		Watcher: watcher,
	}
	res, err := RunPair(cfg, DPSFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.BudgetViolations != 0 {
		t.Fatalf("clean run reported %d budget violations", res.BudgetViolations)
	}
	for _, a := range watcher.Alerts() {
		if a.State != watch.StateInactive || a.FiredCount != 0 {
			t.Errorf("rule %s = %s (fired %d) on a clean run, want inactive", a.Rule, a.State, a.FiredCount)
		}
	}
}
