package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"dps/internal/trace"
	"dps/internal/workload"
)

// TestTraceSmoke is the tracing end-to-end gate (also run by `make
// trace-smoke`): a short traced simulation must export Chrome trace_event
// JSON that parses, and every simulated round must carry at least one
// span per enabled pipeline stage.
func TestTraceSmoke(t *testing.T) {
	gmm, err := workload.ByName("GMM")
	if err != nil {
		t.Fatal(err)
	}
	lda, err := workload.ByName("LDA")
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(1 << 14)
	rec.SetEnabled(true)
	cfg := PairConfig{
		WorkloadA: lda, WorkloadB: gmm,
		Repeats: 1, Seed: 7,
		MaxTime: 60, // a smoke run, not an experiment: ~60 rounds is plenty
		Tracer:  rec,
	}
	res, err := RunPair(cfg, DPSFactory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("simulation took no steps")
	}

	var buf bytes.Buffer
	if err := rec.WriteTraceEvents(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	// rounds[traceID][stage] counts spans per round.
	rounds := map[uint64]map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id, ok := ev.Args["trace_id"].(float64)
		if !ok {
			t.Fatalf("span %q lacks a trace_id arg", ev.Name)
		}
		r := uint64(id)
		if rounds[r] == nil {
			rounds[r] = map[string]int{}
		}
		rounds[r][ev.Name]++
	}
	if len(rounds) != res.Steps {
		t.Fatalf("trace covers %d rounds, simulation took %d steps", len(rounds), res.Steps)
	}
	enabled := []string{
		trace.SpanKalman, trace.SpanStateless, trace.SpanPriority,
		trace.SpanReadjust, trace.SpanDecide, trace.SpanSimStep,
	}
	for r := uint64(1); r <= uint64(res.Steps); r++ {
		stages, ok := rounds[r]
		if !ok {
			t.Fatalf("round %d has no spans", r)
		}
		for _, stage := range enabled {
			if stages[stage] == 0 {
				t.Errorf("round %d has no %q span", r, stage)
			}
		}
	}
}
