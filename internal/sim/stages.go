package sim

import (
	"fmt"
	"strings"

	"dps/internal/core"
)

// StageBreakdown accumulates DPS per-stage wall time across an
// experiment's decision steps, so benchmark output can report where the
// controller actually spends its microseconds instead of one opaque
// us_per_step number.
type StageBreakdown struct {
	// Rounds is the number of Decide calls accumulated.
	Rounds uint64 `json:"rounds"`
	// Per-stage cumulative wall time, seconds.
	KalmanS    float64 `json:"kalman_s"`
	StatelessS float64 `json:"stateless_s"`
	PriorityS  float64 `json:"priority_s"`
	ReadjustS  float64 `json:"readjust_s"`
	TotalS     float64 `json:"total_s"`
	// Decision outcome tallies.
	Restores        uint64 `json:"restores"`
	PriorityFlips   uint64 `json:"priority_flips"`
	BudgetExhausted uint64 `json:"budget_exhausted"`
	BudgetClamped   uint64 `json:"budget_clamped"`
	// Sparse-round work totals: unit-rounds the snapshots marked changed
	// and unit-rounds the controller skipped as settled. Both stay zero
	// for dense controllers.
	DirtyUnits   uint64 `json:"dirty_units"`
	SkippedUnits uint64 `json:"skipped_units"`
	// ControllerMallocs counts heap allocations made by the controller's
	// decision rounds (runtime.MemStats.Mallocs delta around each call).
	// The sequential steady-state path is allocation-free (see
	// internal/core/alloc_test.go); a sharded controller reports its
	// per-round fork/join cost here instead.
	ControllerMallocs uint64 `json:"controller_mallocs"`
}

// Add folds one round's stats into the breakdown.
func (b *StageBreakdown) Add(st core.RoundStats) {
	b.Rounds++
	b.KalmanS += st.Timings.Kalman.Seconds()
	b.StatelessS += st.Timings.Stateless.Seconds()
	b.PriorityS += st.Timings.Priority.Seconds()
	b.ReadjustS += st.Timings.Readjust.Seconds()
	b.TotalS += st.Total.Seconds()
	if st.Restored {
		b.Restores++
	}
	b.PriorityFlips += uint64(st.PriorityFlips)
	if st.BudgetExhausted {
		b.BudgetExhausted++
	}
	if st.BudgetClamped {
		b.BudgetClamped++
	}
	b.DirtyUnits += uint64(st.DirtyUnits)
	b.SkippedUnits += uint64(st.SkippedUnits)
}

// AddMallocs folds one round's controller heap-allocation count into the
// breakdown.
func (b *StageBreakdown) AddMallocs(n uint64) { b.ControllerMallocs += n }

// MeanMicros returns the mean per-round microseconds of one accumulated
// stage total.
func (b *StageBreakdown) MeanMicros(stageSeconds float64) float64 {
	if b.Rounds == 0 {
		return 0
	}
	return stageSeconds * 1e6 / float64(b.Rounds)
}

// Format renders the breakdown as a one-line-per-stage summary.
func (b *StageBreakdown) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "controller stage timing over %d rounds (mean µs/round):\n", b.Rounds)
	for _, row := range []struct {
		name string
		s    float64
	}{
		{"kalman", b.KalmanS},
		{"stateless", b.StatelessS},
		{"priority", b.PriorityS},
		{"readjust", b.ReadjustS},
		{"total", b.TotalS},
	} {
		fmt.Fprintf(&sb, "  %-10s %8.2f\n", row.name, b.MeanMicros(row.s))
	}
	allocsPerRound := 0.0
	if b.Rounds > 0 {
		allocsPerRound = float64(b.ControllerMallocs) / float64(b.Rounds)
	}
	fmt.Fprintf(&sb, "  restores=%d priority_flips=%d budget_exhausted=%d budget_clamped=%d allocs_per_round=%.2f",
		b.Restores, b.PriorityFlips, b.BudgetExhausted, b.BudgetClamped, allocsPerRound)
	if b.DirtyUnits > 0 || b.SkippedUnits > 0 {
		fmt.Fprintf(&sb, "\n  sparse: dirty_units=%d skipped_units=%d", b.DirtyUnits, b.SkippedUnits)
	}
	return sb.String()
}
