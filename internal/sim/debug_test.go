package sim

import (
	"testing"

	"dps/internal/core"
	"dps/internal/power"
	"dps/internal/workload"
)

// TestDebugCapSpread inspects DPS cap symmetry within a cluster: all
// sockets of one cluster run the same workload, so their caps should stay
// close. Large spreads starve the whole cluster through the slowest
// socket. This is a diagnostic that prints the worst spread observed and
// where it happened.
func TestDebugCapSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	lda, _ := workload.ByName("LDA")
	gmm, _ := workload.ByName("GMM")

	var dpsRef *core.DPS
	factory := func(units int, budget power.Budget, seed int64) (core.Manager, error) {
		cfg := core.DefaultConfig(units, budget)
		cfg.Seed = seed
		d, err := core.NewDPS(cfg)
		dpsRef = d
		return d, err
	}

	type spreadInfo struct {
		t          power.Seconds
		minC, maxC power.Watts
		prioCount  int
	}
	worstA := spreadInfo{}
	samples := 0
	bigSpreadSteps := 0

	cfg := PairConfig{WorkloadA: lda, WorkloadB: gmm, Repeats: 2, Seed: 7}
	cfg.StepHook = func(tm power.Seconds, readings, caps power.Vector) {
		samples++
		// Cluster A = units 0..9.
		a := caps[:10]
		min, max := a.Min(), a.Max()
		prio := 0
		for _, p := range dpsRef.Priorities()[:10] {
			if p {
				prio++
			}
		}
		if max-min > worstA.maxC-worstA.minC {
			worstA = spreadInfo{tm, min, max, prio}
		}
		if max-min > 20 {
			bigSpreadSteps++
		}
	}
	res, err := RunPair(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("A mean=%.1f steps=%d; worst cluster-A cap spread %.1f..%.1f W at t=%.0fs (prio=%d/10); steps with spread>20W: %d/%d",
		res.A.MeanDuration, res.Steps, worstA.minC, worstA.maxC, worstA.t, worstA.prioCount, bigSpreadSteps, samples)
}
