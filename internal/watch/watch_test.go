package watch

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dps/internal/telemetry"
	"dps/internal/telemetry/series"
)

func at(s int) time.Time { return time.Unix(1700000000+int64(s), 0).UTC() }

func alertState(t *testing.T, w *Watcher, rule string) Alert {
	t.Helper()
	for _, a := range w.Alerts() {
		if a.Rule == rule {
			return a
		}
	}
	t.Fatalf("no alert for rule %q", rule)
	return Alert{}
}

// TestRuleLifecycle is the table-driven state-transition test: each case
// feeds a timeline of per-second observations into one threshold rule and
// checks the state after every evaluation, covering immediate firing
// (for_ms=0), `for`-hysteresis, flap suppression (pending that lets go
// before `for` elapses never fires), resolution, and re-firing after
// resolve.
func TestRuleLifecycle(t *testing.T) {
	cases := []struct {
		name   string
		forMS  int64
		values []float64 // latest sample at t=0,1,2,... (threshold: > 10)
		states []string
		fired  uint64 // lifetime firing transitions at the end
	}{
		{
			name:   "immediate_fire_and_resolve",
			forMS:  0,
			values: []float64{5, 20, 20, 5, 5},
			states: []string{StateInactive, StateFiring, StateFiring, StateResolved, StateResolved},
			fired:  1,
		},
		{
			name:   "for_duration_holds_then_fires",
			forMS:  2000,
			values: []float64{20, 20, 20, 20},
			states: []string{StatePending, StatePending, StateFiring, StateFiring},
			fired:  1,
		},
		{
			name:   "flap_suppressed_by_for",
			forMS:  3000,
			values: []float64{20, 20, 5, 20, 20, 5},
			states: []string{StatePending, StatePending, StateInactive, StatePending, StatePending, StateInactive},
			fired:  0,
		},
		{
			name:   "refire_after_resolve",
			forMS:  0,
			values: []float64{20, 5, 20},
			states: []string{StateFiring, StateResolved, StateFiring},
			fired:  2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := series.NewStore(series.Config{})
			w := New(Config{
				Rules: []Rule{{
					Name: "r", Kind: KindThreshold, Series: "m",
					Op: ">", Value: 10, ForMS: tc.forMS,
				}},
				Store:          store,
				DisableBuiltin: true,
			})
			for i, v := range tc.values {
				store.Push("m", series.KindGauge, at(i), v)
				w.Evaluate(at(i))
				if got := alertState(t, w, "r"); got.State != tc.states[i] {
					t.Fatalf("t=%d (value %g): state %q, want %q", i, v, got.State, tc.states[i])
				}
			}
			if got := alertState(t, w, "r"); got.FiredCount != tc.fired {
				t.Errorf("fired %d times, want %d", got.FiredCount, tc.fired)
			}
		})
	}
}

func TestAbsenceRule(t *testing.T) {
	store := series.NewStore(series.Config{})
	w := New(Config{
		Rules: []Rule{{
			Name: "quiet", Kind: KindAbsence, Series: "m", MaxAgeMS: 2000,
		}},
		Store:          store,
		DisableBuiltin: true,
	})

	// Never-ingested series holds the absence condition immediately.
	w.Evaluate(at(0))
	if got := alertState(t, w, "quiet"); got.State != StateFiring {
		t.Fatalf("never-ingested: %q, want firing", got.State)
	}

	// Ingest resolves it; going silent past max_age fires it again.
	store.Push("m", series.KindGauge, at(1), 1)
	w.Evaluate(at(1))
	if got := alertState(t, w, "quiet"); got.State != StateResolved {
		t.Fatalf("after ingest: %q, want resolved", got.State)
	}
	w.Evaluate(at(2))
	if got := alertState(t, w, "quiet"); got.State != StateResolved {
		t.Fatalf("within max_age: %q, want resolved", got.State)
	}
	w.Evaluate(at(5))
	if got := alertState(t, w, "quiet"); got.State != StateFiring {
		t.Fatalf("stale: %q, want firing", got.State)
	}
}

func TestBurnRule(t *testing.T) {
	store := series.NewStore(series.Config{})
	w := New(Config{
		Rules: []Rule{{
			Name: "burn", Kind: KindBurn, Series: "err_rate",
			Op: ">", Value: 1, WindowMS: 3000,
		}},
		Store:          store,
		DisableBuiltin: true,
	})

	// One spike does not push a 4-sample window mean over 1.
	for i, v := range []float64{0, 3, 0, 0} {
		store.Push("err_rate", series.KindRate, at(i), v)
	}
	w.Evaluate(at(3))
	if got := alertState(t, w, "burn"); got.State != StateInactive {
		t.Fatalf("spike: %q (value %g), want inactive", got.State, got.Value)
	}
	// A sustained rate does.
	for i := 4; i < 8; i++ {
		store.Push("err_rate", series.KindRate, at(i), 2)
	}
	w.Evaluate(at(7))
	if got := alertState(t, w, "burn"); got.State != StateFiring {
		t.Fatalf("sustained: %q (value %g), want firing", got.State, got.Value)
	}
}

func TestBuiltinAudits(t *testing.T) {
	var logs []string
	reg := telemetry.NewRegistry()
	w := New(Config{
		Registry:         reg,
		BudgetToleranceW: 0.5,
		Logf:             func(f string, a ...any) { logs = append(logs, f) },
	})

	// A clean round keeps everything inactive.
	w.ObserveRound(RoundAudit{Round: 1, Time: at(0), BudgetW: 100, CapSumW: 100.2, ProvenanceAudited: true})
	for _, name := range []string{RuleBudgetConservation, RuleHealthPinIntegrity, RuleProvenanceCoverage} {
		if got := alertState(t, w, name); got.State != StateInactive {
			t.Fatalf("clean round: %s = %q", name, got.State)
		}
	}

	// Violate all three invariants in round 2: each fires within the round
	// (builtins carry no `for` grace).
	w.ObserveRound(RoundAudit{
		Round: 2, Time: at(1), BudgetW: 100, CapSumW: 103,
		PinAudited: 2, PinViolations: 1,
		ProvenanceAudited: true, ProvenanceViolations: 3,
	})
	for _, name := range []string{RuleBudgetConservation, RuleHealthPinIntegrity, RuleProvenanceCoverage} {
		if got := alertState(t, w, name); got.State != StateFiring {
			t.Fatalf("violated round: %s = %q, want firing", name, got.State)
		}
	}
	if w.FiringCount() != 3 {
		t.Fatalf("FiringCount = %d, want 3", w.FiringCount())
	}

	// Recovery resolves within one round.
	w.ObserveRound(RoundAudit{Round: 3, Time: at(2), BudgetW: 100, CapSumW: 99, ProvenanceAudited: true})
	for _, name := range []string{RuleBudgetConservation, RuleHealthPinIntegrity, RuleProvenanceCoverage} {
		if got := alertState(t, w, name); got.State != StateResolved {
			t.Fatalf("recovered round: %s = %q, want resolved", name, got.State)
		}
	}

	// A provenance-blind round (no evidence) never fires the coverage
	// audit, whatever the cap deltas were.
	w.ObserveRound(RoundAudit{Round: 4, Time: at(3), BudgetW: 100, CapSumW: 99, ProvenanceViolations: 5})
	if got := alertState(t, w, RuleProvenanceCoverage); got.State != StateResolved {
		t.Fatalf("unaudited round moved provenance_coverage to %q", got.State)
	}

	// Metrics and logs observed the lifecycle.
	var exp strings.Builder
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dps_alerts_firing{rule="budget_conservation"} 0`,
		`dps_alert_transitions_total{rule="budget_conservation",to="firing"} 1`,
		`dps_alert_transitions_total{rule="budget_conservation",to="resolved"} 1`,
	} {
		if !strings.Contains(exp.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if len(logs) == 0 {
		t.Error("no transition log lines emitted")
	}
}

func TestBudgetToleranceAbsorbsDrift(t *testing.T) {
	w := New(Config{}) // default tolerance 1e-3 W
	w.ObserveRound(RoundAudit{Round: 1, Time: at(0), BudgetW: 100, CapSumW: 100 + 1e-9})
	if got := alertState(t, w, RuleBudgetConservation); got.State != StateInactive {
		t.Fatalf("float drift fired budget_conservation (%q)", got.State)
	}
}

func TestRuleValidate(t *testing.T) {
	good := Rule{Name: "r", Kind: KindThreshold, Series: "m", Value: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	bad := []Rule{
		{Kind: KindThreshold, Series: "m"},                              // no name
		{Name: "r", Kind: KindThreshold},                                // no series
		{Name: "r", Kind: "nope", Series: "m"},                          // bad kind
		{Name: "r", Kind: KindThreshold, Series: "m", Op: ">="},         // bad op
		{Name: "r", Kind: KindThreshold, Series: "m", ForMS: -1},        // negative for
		{Name: "r", Kind: KindAbsence, Series: "m"},                     // absence without max_age
		{Name: "r", Kind: KindBurn, Series: "m"},                        // burn without window
		{Name: RuleBudgetConservation, Kind: KindThreshold, Series: "m"}, // builtin collision
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad rule %d validated: %+v", i, r)
		}
	}
}

func TestNilWatcherIsSafe(t *testing.T) {
	var w *Watcher
	w.ObserveRound(RoundAudit{Round: 1})
	w.Evaluate(at(0))
	if w.Alerts() != nil || w.FiringCount() != 0 {
		t.Fatal("nil watcher returned state")
	}
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("nil watcher /alerts = %d %q, want 200 []", rec.Code, rec.Body.String())
	}
}

func TestHandlerJSON(t *testing.T) {
	w := New(Config{})
	w.ObserveRound(RoundAudit{Round: 1, Time: at(0), BudgetW: 100, CapSumW: 150})
	rec := httptest.NewRecorder()
	w.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("/alerts = %d", rec.Code)
	}
	var alerts []Alert
	if err := json.Unmarshal(rec.Body.Bytes(), &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 3 {
		t.Fatalf("%d alerts, want the 3 builtins", len(alerts))
	}
	// Sorted by rule name, so budget_conservation leads.
	if alerts[0].Rule != RuleBudgetConservation || alerts[0].State != StateFiring {
		t.Fatalf("alerts[0] = %+v", alerts[0])
	}
	if alerts[0].Message == "" {
		t.Error("firing alert carries no message")
	}
}
