// Package watch is the daemon's alerting engine and runtime invariant
// auditor. It turns the paper's safety argument — the enforced cap sum
// never exceeds the cluster budget — from a property asserted in tests
// into one audited on every live decision round, and gives operators a
// Prometheus-style alert lifecycle (pending → firing → resolved, with
// `for`-duration hysteresis against flapping) without deploying an
// external alertmanager next to a dependency-free daemon.
//
// Two inputs feed the engine. Rules declared in configuration evaluate
// against the embedded metric history (internal/telemetry/series) in one
// of three forms: a threshold over a series' latest sample, absence
// (ingest staleness) of a series, and a windowed mean ("burn") over the
// raw ring. Built-in audits evaluate against a RoundAudit the daemon
// submits after each decision round, checking the budget-conservation
// invariant, that health-pinned units were actually held at their last
// delivered cap, and that every cap change carried exactly one provenance
// reason. Built-ins have no `for` grace: a violated invariant fires
// within the round that violated it.
//
// Alert state surfaces four ways: GET /alerts JSON (Handler), the
// dps_alerts_firing{rule} gauge and dps_alert_transitions_total{rule,to}
// counters, structured key=value log lines on every transition, and the
// alerts_firing count in /status. Everything is nil-safe: a nil *Watcher
// accepts ObserveRound/Evaluate calls and does nothing, so the daemon's
// hot path carries no conditionals when the watchdog is off.
//
// Like the rest of the repository, nothing here imports outside the
// standard library.
package watch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"dps/internal/telemetry"
	"dps/internal/telemetry/series"
)

// Rule kinds.
const (
	// KindThreshold compares the series' latest sample against Value with
	// Op. The condition is false while the series has no samples.
	KindThreshold = "threshold"
	// KindAbsence holds when the series has received no sample for longer
	// than MaxAgeMS (or has never received one).
	KindAbsence = "absence"
	// KindBurn compares the mean of the series' raw samples over the
	// trailing WindowMS against Value with Op.
	KindBurn = "burn"
)

// Alert states.
const (
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Built-in invariant audit rule names.
const (
	// RuleBudgetConservation fires when a round's delivered cap sum
	// exceeds the budget beyond tolerance.
	RuleBudgetConservation = "budget_conservation"
	// RuleHealthPinIntegrity fires when a non-fresh unit's delivered cap
	// moved off the cap its agent is known to be enforcing.
	RuleHealthPinIntegrity = "health_pin_integrity"
	// RuleProvenanceCoverage fires when a round changed a unit's cap
	// without recording a provenance reason.
	RuleProvenanceCoverage = "provenance_coverage"
)

// Rule is one configured alert rule, JSON-shaped for dpsd's config file
// (`watch_rules`) and -watch-rule flags.
type Rule struct {
	// Name identifies the alert; it must be unique and not collide with a
	// built-in audit name.
	Name string `json:"name"`
	// Kind is KindThreshold, KindAbsence or KindBurn.
	Kind string `json:"kind"`
	// Series is the series-store key the rule reads, e.g.
	// "dps_cap_sum_watts" or "dps_e2e_latency_seconds:p99".
	Series string `json:"series"`
	// Op is ">" (default) or "<" for threshold and burn rules.
	Op string `json:"op,omitempty"`
	// Value is the threshold for threshold and burn rules.
	Value float64 `json:"value,omitempty"`
	// ForMS is the hysteresis: the condition must hold this long before
	// pending becomes firing. 0 fires immediately.
	ForMS int64 `json:"for_ms,omitempty"`
	// WindowMS is the trailing mean window for burn rules.
	WindowMS int64 `json:"window_ms,omitempty"`
	// MaxAgeMS is the staleness bound for absence rules.
	MaxAgeMS int64 `json:"max_age_ms,omitempty"`
}

// Validate reports whether the rule is well-formed.
func (r Rule) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("watch rule: name must be set")
	}
	switch r.Name {
	case RuleBudgetConservation, RuleHealthPinIntegrity, RuleProvenanceCoverage:
		return fmt.Errorf("watch rule %q: name collides with a built-in audit", r.Name)
	}
	if r.Series == "" {
		return fmt.Errorf("watch rule %q: series must be set", r.Name)
	}
	if r.Op != "" && r.Op != ">" && r.Op != "<" {
		return fmt.Errorf("watch rule %q: op must be \">\" or \"<\", got %q", r.Name, r.Op)
	}
	if r.ForMS < 0 {
		return fmt.Errorf("watch rule %q: for_ms must be >= 0", r.Name)
	}
	switch r.Kind {
	case KindThreshold:
	case KindAbsence:
		if r.MaxAgeMS <= 0 {
			return fmt.Errorf("watch rule %q: absence rules need max_age_ms > 0", r.Name)
		}
	case KindBurn:
		if r.WindowMS <= 0 {
			return fmt.Errorf("watch rule %q: burn rules need window_ms > 0", r.Name)
		}
	default:
		return fmt.Errorf("watch rule %q: kind must be %q, %q or %q, got %q",
			r.Name, KindThreshold, KindAbsence, KindBurn, r.Kind)
	}
	return nil
}

// RoundAudit is one decision round's invariant evidence, submitted by the
// daemon after delivery. Violation counts of zero with Audited true mean
// the invariant held; Audited false means the round carried no evidence
// for that invariant (e.g. a manager without provenance), which never
// fires an alert.
type RoundAudit struct {
	Round   uint64
	Time    time.Time
	BudgetW float64
	CapSumW float64 // sum of delivered caps

	// PinAudited counts non-fresh units checked against their last
	// delivered cap; PinViolations counts those that moved anyway.
	PinAudited    int
	PinViolations int

	// ProvenanceAudited reports whether the round carried provenance;
	// ProvenanceViolations counts units whose cap moved with no reason.
	ProvenanceAudited    bool
	ProvenanceViolations int
}

// Alert is one rule's externally visible state.
type Alert struct {
	Rule  string `json:"rule"`
	Kind  string `json:"kind"`
	State string `json:"state"` // "inactive", "pending", "firing", "resolved"
	// Since is when the current state was entered.
	Since time.Time `json:"since,omitzero"`
	// Value is the observation that drove the last evaluation.
	Value float64 `json:"value"`
	// Message describes the last condition evaluation.
	Message string `json:"message,omitempty"`
	// FiredCount is the lifetime number of pending/inactive→firing
	// transitions.
	FiredCount uint64 `json:"fired_count,omitempty"`
}

// StateInactive is the initial state: the rule's condition has never held
// (or flapped away before its `for` elapsed).
const StateInactive = "inactive"

// Config assembles a Watcher.
type Config struct {
	// Rules are the configured series rules. Built-in audits are always
	// present unless DisableBuiltin.
	Rules []Rule
	// Store is the series store series rules read. Required when Rules is
	// non-empty.
	Store *series.Store
	// Registry receives dps_alerts_firing / dps_alert_transitions_total.
	// Optional.
	Registry *telemetry.Registry
	// Logf receives one structured line per state transition. Optional.
	Logf func(format string, args ...any)
	// BudgetToleranceW is the slack allowed on Σcaps ≤ budget before
	// budget_conservation trips; it absorbs float drift from the
	// proportional rescale. Default 1e-3 W.
	BudgetToleranceW float64
	// DisableBuiltin drops the built-in invariant audits, leaving only
	// the configured series rules.
	DisableBuiltin bool
}

// ruleState is one rule's live state machine.
type ruleState struct {
	rule    Rule
	builtin bool

	state      string
	since      time.Time
	pendingAt  time.Time // when the condition started holding (pending entry)
	value      float64
	message    string
	firedCount uint64

	firing      *telemetry.Gauge
	toPending   *telemetry.Counter
	toFiring    *telemetry.Counter
	toResolved  *telemetry.Counter
	toInactive_ *telemetry.Counter
}

// Watcher evaluates rules and audits and holds alert state. All methods
// are safe for concurrent use and nil-safe.
type Watcher struct {
	cfg   Config
	tolW  float64
	logf  func(string, ...any)
	store *series.Store

	mu    sync.Mutex
	rules []*ruleState
	index map[string]*ruleState
	// lastRound remembers the newest audited round for /alerts context.
	lastRound uint64
}

// New builds a watcher. Rules must already be validated; New panics on a
// duplicate rule name (a configuration bug, caught by config validation
// in normal operation).
func New(cfg Config) *Watcher {
	w := &Watcher{
		cfg:   cfg,
		tolW:  cfg.BudgetToleranceW,
		logf:  cfg.Logf,
		store: cfg.Store,
		index: make(map[string]*ruleState),
	}
	if w.tolW <= 0 {
		w.tolW = 1e-3
	}
	if w.logf == nil {
		w.logf = func(string, ...any) {}
	}
	if !cfg.DisableBuiltin {
		for _, name := range []string{RuleBudgetConservation, RuleHealthPinIntegrity, RuleProvenanceCoverage} {
			w.addRule(Rule{Name: name, Kind: "builtin"}, true)
		}
	}
	for _, r := range cfg.Rules {
		w.addRule(r, false)
	}
	return w
}

func (w *Watcher) addRule(r Rule, builtin bool) {
	if _, dup := w.index[r.Name]; dup {
		panic(fmt.Sprintf("watch: duplicate rule %q", r.Name))
	}
	rs := &ruleState{rule: r, builtin: builtin, state: StateInactive}
	if reg := w.cfg.Registry; reg != nil {
		lbl := telemetry.Label{Key: "rule", Value: r.Name}
		rs.firing = reg.Gauge("dps_alerts_firing", "1 while the alert rule is firing, else 0.", lbl)
		mk := func(to string) *telemetry.Counter {
			return reg.Counter("dps_alert_transitions_total", "Alert state transitions.",
				lbl, telemetry.Label{Key: "to", Value: to})
		}
		rs.toPending = mk(StatePending)
		rs.toFiring = mk(StateFiring)
		rs.toResolved = mk(StateResolved)
		rs.toInactive_ = mk(StateInactive)
	}
	w.rules = append(w.rules, rs)
	w.index[r.Name] = rs
}

// transition moves rs to state at now, updating metrics and logging.
// Callers hold w.mu.
func (w *Watcher) transition(rs *ruleState, state string, now time.Time) {
	from := rs.state
	rs.state = state
	rs.since = now
	switch state {
	case StateFiring:
		rs.firedCount++
		if rs.firing != nil {
			rs.firing.Set(1)
		}
		if rs.toFiring != nil {
			rs.toFiring.Inc()
		}
	case StatePending:
		if rs.toPending != nil {
			rs.toPending.Inc()
		}
	case StateResolved:
		if rs.firing != nil {
			rs.firing.Set(0)
		}
		if rs.toResolved != nil {
			rs.toResolved.Inc()
		}
	case StateInactive:
		if rs.toInactive_ != nil {
			rs.toInactive_.Inc()
		}
	}
	w.logf("watch: alert rule=%s state=%s from=%s value=%g msg=%q", rs.rule.Name, state, from, rs.value, rs.message)
}

// step advances one rule's state machine given the condition's truth at
// now. Callers hold w.mu.
func (w *Watcher) step(rs *ruleState, cond bool, now time.Time) {
	forDur := time.Duration(rs.rule.ForMS) * time.Millisecond
	switch rs.state {
	case StateInactive, StateResolved:
		if cond {
			rs.pendingAt = now
			if forDur <= 0 {
				w.transition(rs, StateFiring, now)
			} else {
				w.transition(rs, StatePending, now)
			}
		}
	case StatePending:
		if !cond {
			// Flap suppressed: the condition let go before `for` elapsed,
			// so the alert never fires.
			w.transition(rs, StateInactive, now)
		} else if now.Sub(rs.pendingAt) >= forDur {
			w.transition(rs, StateFiring, now)
		}
	case StateFiring:
		if !cond {
			w.transition(rs, StateResolved, now)
		}
	}
}

// ObserveRound submits one decision round's invariant evidence. Built-in
// audits evaluate immediately; a violated invariant fires within this
// call. Nil-safe.
func (w *Watcher) ObserveRound(a RoundAudit) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastRound = a.Round
	if rs, ok := w.index[RuleBudgetConservation]; ok {
		over := a.CapSumW - a.BudgetW
		rs.value = over
		rs.message = fmt.Sprintf("round %d: cap sum %.3f W vs budget %.3f W (tolerance %g W)",
			a.Round, a.CapSumW, a.BudgetW, w.tolW)
		w.step(rs, over > w.tolW, a.Time)
	}
	if rs, ok := w.index[RuleHealthPinIntegrity]; ok {
		rs.value = float64(a.PinViolations)
		rs.message = fmt.Sprintf("round %d: %d of %d non-fresh units moved off their delivered cap",
			a.Round, a.PinViolations, a.PinAudited)
		w.step(rs, a.PinViolations > 0, a.Time)
	}
	if rs, ok := w.index[RuleProvenanceCoverage]; ok {
		rs.value = float64(a.ProvenanceViolations)
		rs.message = fmt.Sprintf("round %d: %d cap changes without a recorded reason",
			a.Round, a.ProvenanceViolations)
		w.step(rs, a.ProvenanceAudited && a.ProvenanceViolations > 0, a.Time)
	}
}

// Evaluate runs every configured series rule against the store at now.
// The daemon calls it after each sampler scrape. Nil-safe.
func (w *Watcher) Evaluate(now time.Time) {
	if w == nil || w.store == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rs := range w.rules {
		if rs.builtin {
			continue
		}
		cond := false
		switch rs.rule.Kind {
		case KindThreshold:
			p, ok := w.store.Latest(rs.rule.Series)
			if ok {
				rs.value = p.V
				cond = compare(rs.rule.Op, p.V, rs.rule.Value)
				rs.message = fmt.Sprintf("latest %s = %g (want not %s %g)",
					rs.rule.Series, p.V, opOrDefault(rs.rule.Op), rs.rule.Value)
			} else {
				rs.message = fmt.Sprintf("series %s has no samples", rs.rule.Series)
			}
		case KindAbsence:
			maxAge := time.Duration(rs.rule.MaxAgeMS) * time.Millisecond
			p, ok := w.store.Latest(rs.rule.Series)
			if !ok {
				cond = true
				rs.value = 0
				rs.message = fmt.Sprintf("series %s has never been ingested", rs.rule.Series)
			} else {
				age := now.Sub(time.Unix(0, p.T))
				rs.value = age.Seconds()
				cond = age > maxAge
				rs.message = fmt.Sprintf("series %s last ingested %.3fs ago (max %.3fs)",
					rs.rule.Series, age.Seconds(), maxAge.Seconds())
			}
		case KindBurn:
			window := time.Duration(rs.rule.WindowMS) * time.Millisecond
			mean, n := w.store.WindowMean(rs.rule.Series, window, now)
			if n > 0 {
				rs.value = mean
				cond = compare(rs.rule.Op, mean, rs.rule.Value)
				rs.message = fmt.Sprintf("mean(%s, %s) = %g over %d samples (want not %s %g)",
					rs.rule.Series, window, mean, n, opOrDefault(rs.rule.Op), rs.rule.Value)
			} else {
				rs.message = fmt.Sprintf("series %s has no samples in window %s", rs.rule.Series, window)
			}
		}
		w.step(rs, cond, now)
	}
}

func opOrDefault(op string) string {
	if op == "" {
		return ">"
	}
	return op
}

func compare(op string, v, threshold float64) bool {
	if op == "<" {
		return v < threshold
	}
	return v > threshold
}

// Alerts returns every rule's state, sorted by rule name. Nil-safe (nil
// watcher → nil slice).
func (w *Watcher) Alerts() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Alert, 0, len(w.rules))
	for _, rs := range w.rules {
		kind := rs.rule.Kind
		out = append(out, Alert{
			Rule:       rs.rule.Name,
			Kind:       kind,
			State:      rs.state,
			Since:      rs.since,
			Value:      rs.value,
			Message:    rs.message,
			FiredCount: rs.firedCount,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// FiringCount returns how many rules are currently firing. Nil-safe.
func (w *Watcher) FiringCount() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, rs := range w.rules {
		if rs.state == StateFiring {
			n++
		}
	}
	return n
}

// Handler serves the watcher's alerts for mounting at GET /alerts. A nil
// watcher serves an empty list, so the endpoint exists whether or not the
// watchdog is enabled.
func (w *Watcher) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		alerts := w.Alerts()
		if alerts == nil {
			alerts = []Alert{}
		}
		rw.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(rw).Encode(alerts); err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
		}
	})
}
