package core

import (
	"testing"

	"dps/internal/power"
)

// runDeltaTrace drives one controller closed-loop over the demand trace
// through a simulated report-on-change delta agent: each unit draws
// min(demand, cap), but the controller sees a new value only when the
// drawn power moved more than eps from the last reported value —
// exactly the daemon's delta-suppression plane. With useMask the
// snapshot carries a DirtyMask marking the units whose reported value
// was rewritten this round (the daemon's ingest-side bookkeeping);
// without it the controller must derive the changed set itself.
func runDeltaTrace(t *testing.T, d *DPS, demand [][]power.Watts, eps power.Watts, useMask bool) ([]power.Vector, []RoundStats) {
	t.Helper()
	units := len(demand[0])
	capsOut := make([]power.Vector, len(demand))
	statsOut := make([]RoundStats, len(demand))
	caps := d.Caps().Clone()
	reported := make(power.Vector, units)
	var mask *DirtyMask
	if useMask {
		mask = NewDirtyMask(units)
	}
	for step, row := range demand {
		if mask != nil {
			mask.Reset()
		}
		for u := range reported {
			drawn := row[u]
			if drawn > caps[u] {
				drawn = caps[u]
			}
			diff := drawn - reported[u]
			if diff < 0 {
				diff = -diff
			}
			if step == 0 || diff > eps {
				reported[u] = drawn
				if mask != nil {
					mask.Mark(u)
				}
			}
		}
		snap := Snapshot{Power: reported, Interval: 1, Dirty: mask}
		next, st := d.DecideStats(snap)
		capsOut[step] = next.Clone()
		statsOut[step] = st
		copy(caps, next)
	}
	return capsOut, statsOut
}

// assertSameDecisions compares two closed-loop runs round by round:
// bitwise-identical caps and identical decision outcomes. Stage timings
// and the sparse-only work counters are exempt — they are what is
// allowed to differ.
func assertSameDecisions(t *testing.T, name string, wantCaps, gotCaps []power.Vector, wantStats, gotStats []RoundStats) {
	t.Helper()
	for step := range wantCaps {
		for u := range wantCaps[step] {
			if wantCaps[step][u] != gotCaps[step][u] {
				t.Fatalf("%s: step %d unit %d: cap %v, dense %v", name, step, u, gotCaps[step][u], wantCaps[step][u])
			}
		}
		w, g := wantStats[step], gotStats[step]
		if g.Restored != w.Restored || g.HighPriority != w.HighPriority ||
			g.PriorityFlips != w.PriorityFlips || g.BudgetExhausted != w.BudgetExhausted ||
			g.BudgetClamped != w.BudgetClamped || g.StaleUnits != w.StaleUnits || g.DeadUnits != w.DeadUnits {
			t.Fatalf("%s: step %d stats diverged:\nsparse %+v\ndense  %+v", name, step, g, w)
		}
	}
}

// TestSparseDenseEquivalence is the sparse path's exactness gate: over a
// 600-step closed-loop run behind simulated delta agents, the sparse
// controller must produce bitwise-identical cap vectors and identical
// decision outcomes to the dense controller — at epsilon 0 (report any
// change), the daemon default band, and a large band; with and without
// the ingest dirty mask; across refresh periods including every-round
// and longer-than-the-run; and on the sharded path.
func TestSparseDenseEquivalence(t *testing.T) {
	const (
		units = 96
		steps = 600
	)
	budget := power.Budget{Total: power.Watts(units) * 55, UnitMax: 165, UnitMin: 10}
	demand := mixedTrace(steps, units, 42)

	build := func(sparse bool, refresh, shards int) *DPS {
		cfg := DefaultConfig(units, budget)
		cfg.Seed = 7
		cfg.Shards = shards
		cfg.SparseRounds = sparse
		cfg.SparseRefreshEvery = refresh
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatalf("NewDPS: %v", err)
		}
		return d
	}

	cases := []struct {
		name    string
		eps     power.Watts
		refresh int
		shards  int
		mask    bool
	}{
		{"eps=0/mask", 0, 0, 1, true},
		{"eps=0/nomask", 0, 0, 1, false},
		{"eps=default/mask", 2.5, 0, 1, true},
		{"eps=default/nomask", 2.5, 0, 1, false},
		{"eps=large/mask", 25, 0, 1, true},
		{"refresh=1", 2.5, 1, 1, true},
		{"refresh=3", 2.5, 3, 1, true},
		{"refresh=longer-than-run", 2.5, 1000, 1, true},
		{"shards=4", 2.5, 0, 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dense := build(false, 0, 1)
			defer dense.Close()
			wantCaps, wantStats := runDeltaTrace(t, dense, demand, tc.eps, false)

			sparse := build(true, tc.refresh, tc.shards)
			defer sparse.Close()
			gotCaps, gotStats := runDeltaTrace(t, sparse, demand, tc.eps, tc.mask)

			assertSameDecisions(t, tc.name, wantCaps, gotCaps, wantStats, gotStats)

			// Non-vacuity: the run must exercise both the skip path and
			// the interesting decision paths, or the proof is empty.
			skipped, restores, flips := 0, 0, 0
			for _, st := range gotStats {
				skipped += st.SkippedUnits
				if st.Restored {
					restores++
				}
				flips += st.PriorityFlips
			}
			// At eps=0 the trace's per-step noise makes every unit dirty
			// every round — the designed degenerate case where sparse IS
			// dense — so only banded runs must demonstrate real skipping.
			if tc.eps > 0 && tc.refresh != 1 && skipped == 0 {
				t.Fatalf("sparse run skipped no unit-rounds; equivalence is vacuous")
			}
			if flips == 0 {
				t.Fatalf("trace too tame: no priority flips")
			}
			// A large band suppresses the quiet window, so only runs at or
			// below the default band must exercise the restore path.
			if tc.eps <= 2.5 && restores == 0 {
				t.Fatalf("trace too tame: no restores")
			}
			if st := gotStats[steps-1]; st.DirtyFrac < 0 || st.DirtyFrac > 1 {
				t.Fatalf("DirtyFrac %v outside [0,1]", st.DirtyFrac)
			}
		})
	}
}

// TestSparseDegradedEquivalence drives dense and sparse controllers
// through health degradation: a unit dies while clean and settled (its
// pinned cap must come from materialized state), another flaps stale,
// and the dead unit revives with a jumped reading — the re-handshake
// case: a fresh value lands mid-pending-window and must void the unit's
// settle certificate.
func TestSparseDegradedEquivalence(t *testing.T) {
	const (
		units = 64
		steps = 400
	)
	budget := power.Budget{Total: power.Watts(units) * 55, UnitMax: 165, UnitMin: 10}
	demand := mixedTrace(steps, units, 11)
	// Unit 9 holds a constant in-band draw so it settles before dying.
	for tstep := range demand {
		demand[tstep][9] = 47
	}

	healthAt := func(step int) []UnitHealth {
		h := make([]UnitHealth, units)
		switch {
		case step >= 120 && step < 200:
			h[9] = HealthDead // dies while clean
		case step >= 150 && step < 170:
			h[21] = HealthStale
		}
		return h
	}

	run := func(d *DPS, useMask bool) ([]power.Vector, []RoundStats) {
		capsOut := make([]power.Vector, steps)
		statsOut := make([]RoundStats, steps)
		caps := d.Caps().Clone()
		reported := make(power.Vector, units)
		var mask *DirtyMask
		if useMask {
			mask = NewDirtyMask(units)
		}
		for step := range demand {
			if mask != nil {
				mask.Reset()
			}
			health := healthAt(step)
			for u := range reported {
				if health[u] != HealthFresh {
					continue // non-fresh: last reported value replays
				}
				drawn := demand[step][u]
				if drawn > caps[u] {
					drawn = caps[u]
				}
				if u == 9 && step == 200 {
					drawn = 150 // revival with a jumped reading
				}
				if step == 0 || drawn != reported[u] {
					reported[u] = drawn
					if mask != nil {
						mask.Mark(u)
					}
				}
			}
			next, st := d.DecideStats(Snapshot{Power: reported, Interval: 1, Health: health, Dirty: mask})
			capsOut[step] = next.Clone()
			statsOut[step] = st
			copy(caps, next)
		}
		return capsOut, statsOut
	}

	build := func(sparse bool) *DPS {
		cfg := DefaultConfig(units, budget)
		cfg.Seed = 3
		cfg.SparseRounds = sparse
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	dense := build(false)
	wantCaps, wantStats := run(dense, false)
	sparse := build(true)
	gotCaps, gotStats := run(sparse, true)
	assertSameDecisions(t, "degraded", wantCaps, gotCaps, wantStats, gotStats)

	// The dead unit's cap must hold bitwise steady across the outage at
	// its last delivered (materialized) value.
	pinned := wantCaps[120][9]
	for step := 121; step < 200; step++ {
		if gotCaps[step][9] != pinned {
			t.Fatalf("step %d: dead unit cap %v, want pinned %v", step, gotCaps[step][9], pinned)
		}
	}
	degraded := 0
	for _, st := range gotStats {
		if st.DeadUnits > 0 || st.StaleUnits > 0 {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("health schedule never degraded a round")
	}
}

// TestSparseRefreshBoundary pins the refresh schedule: with every unit
// settled under constant readings, round r refreshes exactly block
// (r−1) mod E, the blocks tile [0, units) over E consecutive rounds,
// and SkippedUnits accounts for precisely the off-block units. E=1 must
// leave no unit skipped (a full dense round every round).
func TestSparseRefreshBoundary(t *testing.T) {
	const units = 70 // deliberately not a multiple of 64 or E
	budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
	for _, E := range []int{1, 3, 64, units + 5} {
		cfg := DefaultConfig(units, budget)
		cfg.SparseRounds = true
		cfg.SparseRefreshEvery = E
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		readings := make(power.Vector, units)
		for u := range readings {
			readings[u] = 95
		}
		snap := Snapshot{Power: readings, Interval: 1}
		// Warm until everything settles (filter fixed point + full ring).
		warm := 0
		for ; warm < 400; warm++ {
			_, st := d.DecideStats(snap)
			if st.SkippedUnits > 0 && st.DirtyUnits == 0 {
				break
			}
		}
		if warm == 400 && E != 1 {
			t.Fatalf("E=%d: no round ever skipped a unit", E)
		}
		// From a settled state, verify E consecutive rounds tile the
		// unit range with refresh blocks.
		refreshed := 0
		for i := 0; i < E; i++ {
			_, st := d.DecideStats(snap)
			if st.DirtyUnits != 0 {
				t.Fatalf("E=%d: constant readings reported %d dirty units", E, st.DirtyUnits)
			}
			block := units - st.SkippedUnits
			refreshed += block
			if E == 1 && st.SkippedUnits != 0 {
				t.Fatalf("E=1 must refresh every unit every round; skipped %d", st.SkippedUnits)
			}
		}
		if refreshed != units {
			t.Fatalf("E=%d: %d unit-refreshes over E rounds, want exactly %d", E, refreshed, units)
		}
		d.Close()
	}
}

// TestSparseStatsPopulation pins which mode populates the sparsity
// stats: sparse rounds report DirtyUnits/SkippedUnits/DirtyFrac, dense
// rounds leave them zero (so downstream JSON with omitempty — flight
// recorder, /status — is byte-stable for dense deployments).
func TestSparseStatsPopulation(t *testing.T) {
	const units = 32
	budget := power.Budget{Total: units * 110, UnitMax: 165, UnitMin: 10}
	readings := make(power.Vector, units)
	for u := range readings {
		readings[u] = 60
	}

	dense, err := NewDPS(DefaultConfig(units, budget))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		readings[0] = power.Watts(60 + i)
		if _, st := dense.DecideStats(Snapshot{Power: readings, Interval: 1}); st.DirtyUnits != 0 || st.SkippedUnits != 0 || st.DirtyFrac != 0 {
			t.Fatalf("dense round %d populated sparsity stats: %+v", i, st)
		}
	}

	cfg := DefaultConfig(units, budget)
	cfg.SparseRounds = true
	sparse, err := NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sawDirty bool
	for i := 0; i < 5; i++ {
		readings[0] = power.Watts(60 + i)
		_, st := sparse.DecideStats(Snapshot{Power: readings, Interval: 1})
		if st.DirtyUnits > 0 {
			sawDirty = true
			if want := float64(st.DirtyUnits) / units; st.DirtyFrac != want {
				t.Fatalf("DirtyFrac %v, want %v", st.DirtyFrac, want)
			}
		}
	}
	if !sawDirty {
		t.Fatal("sparse rounds never reported dirty units")
	}
}

// TestSparseBudgetChange covers SetTotalBudget against the sparse
// path's cached masks: after a budget change every unit must be
// revisited (the idle-revert floor moved), and the caps must keep
// matching the dense controller's bitwise.
func TestSparseBudgetChange(t *testing.T) {
	const (
		units = 48
		steps = 300
	)
	budget := power.Budget{Total: power.Watts(units) * 80, UnitMax: 165, UnitMin: 10}
	demand := mixedTrace(steps, units, 5)

	run := func(sparse bool) ([]power.Vector, []RoundStats) {
		cfg := DefaultConfig(units, budget)
		cfg.Seed = 9
		cfg.SparseRounds = sparse
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatal(err)
		}
		capsOut := make([]power.Vector, steps)
		statsOut := make([]RoundStats, steps)
		caps := d.Caps().Clone()
		reported := make(power.Vector, units)
		for step := range demand {
			if step == 150 {
				if err := d.SetTotalBudget(power.Watts(units) * 60); err != nil {
					t.Fatal(err)
				}
			}
			for u := range reported {
				drawn := demand[step][u]
				if drawn > caps[u] {
					drawn = caps[u]
				}
				diff := drawn - reported[u]
				if diff < 0 {
					diff = -diff
				}
				if step == 0 || diff > 2.5 {
					reported[u] = drawn
				}
			}
			next, st := d.DecideStats(Snapshot{Power: reported, Interval: 1})
			capsOut[step] = next.Clone()
			statsOut[step] = st
			copy(caps, next)
		}
		return capsOut, statsOut
	}

	wantCaps, wantStats := run(false)
	gotCaps, gotStats := run(true)
	assertSameDecisions(t, "budget-change", wantCaps, gotCaps, wantStats, gotStats)
}

// TestDirtyMask covers the mask's bookkeeping: idempotent marking, the
// incremental count against a direct popcount, copy/reset, and the
// tail-word handling of SetAll.
func TestDirtyMask(t *testing.T) {
	m := NewDirtyMask(70)
	if m.Len() != 70 || m.Count() != 0 {
		t.Fatalf("fresh mask: len=%d count=%d", m.Len(), m.Count())
	}
	for _, u := range []int{0, 63, 64, 69, 69, -1, 70, 1000} {
		m.Mark(u)
	}
	if m.Count() != 4 || m.Count() != m.popcount() {
		t.Fatalf("count %d (popcount %d), want 4", m.Count(), m.popcount())
	}
	for _, u := range []int{0, 63, 64, 69} {
		if !m.Get(u) {
			t.Fatalf("unit %d not marked", u)
		}
	}
	if m.Get(1) || m.Get(70) || m.Get(-1) {
		t.Fatal("unexpected marks")
	}
	cp := NewDirtyMask(70)
	cp.CopyFrom(m)
	m.Reset()
	if m.Count() != 0 || m.popcount() != 0 {
		t.Fatal("reset left bits")
	}
	if cp.Count() != 4 || !cp.Get(69) {
		t.Fatal("copy lost bits")
	}
	cp.SetAll()
	if cp.Count() != 70 || cp.popcount() != 70 {
		t.Fatalf("SetAll: count=%d popcount=%d", cp.Count(), cp.popcount())
	}
}
