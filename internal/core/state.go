package core

import (
	"fmt"

	"dps/internal/power"
	"dps/internal/priority"
	"dps/internal/snapshot"
	"dps/internal/trace"
)

// This file implements the controller side of the high-availability
// snapshot contract (DESIGN.md §14): ExportState captures everything a
// DPS controller accumulates across rounds, RestoreState rebuilds a
// controller from that capture, and the keystone guarantee is bitwise —
// a controller restored from the state exported after round R produces
// caps and decision outcomes identical to the uninterrupted controller
// from round R+1 onward, for any input sequence.
//
// The export is taken *between* rounds, which is the controller's
// quiescent point: stageCaps == caps (every cap-moving stage re-syncs
// the diff baseline), the per-round scratch masks (dirtyW, visitW,
// roundMovedW) are dead values the next round overwrites, and capMovedW
// already holds the next round's revisit set (DecideStats swaps it with
// roundMovedW on the way out). So the snapshot stores caps, the swapped
// capMovedW, and the provenance residue (reasons, roundBefore,
// provDirty) — and nothing that is recomputed from scratch each round.
//
// Cross-mode restores (dense snapshot into a sparse controller or vice
// versa) are supported conservatively: the sparse bookkeeping is reset
// to "revisit everything" — settle certificates dropped, capMovedW
// fully set, lastStep pinned to the restored round so the elided-push
// accounting never underflows. Extra visits of settled units are proven
// bitwise no-ops (DESIGN.md §13), so the conservative reset trades one
// expensive round for the same bit-exact cap stream.

// ExportState fills st with the controller's complete post-round state,
// reusing st's slices when their capacity suffices — a warm export into
// a retained State allocates nothing. It must be called between Decide
// rounds (the controller's only externally observable points), never
// concurrently with one.
func (d *DPS) ExportState(st *snapshot.State) {
	n := d.cfg.Units
	st.Units = n
	st.Seed = d.cfg.Seed
	st.BudgetTotal = d.cfg.Budget.Total
	st.UnitMax = d.cfg.Budget.UnitMax
	st.UnitMin = d.cfg.Budget.UnitMin
	st.Sparse = d.sparse
	st.SparseRefreshEvery = d.refreshEvery

	st.HasCore = true
	st.Steps = d.steps
	st.LastRestored = d.lastRestored
	st.ProvDirty = d.provDirty
	st.HeldAllocated = d.held != nil

	st.Caps = appendVec(st.Caps, d.caps)

	if cap(st.Kalman) < n {
		st.Kalman = make([]snapshot.KalmanState, n)
	}
	st.Kalman = st.Kalman[:n]
	for u := 0; u < n; u++ {
		st.Kalman[u] = d.filters.Unit(power.UnitID(u)).ExportState()
	}

	st.RingCap = d.cfg.HistoryLen
	if cap(st.Rings) < n {
		st.Rings = make([]snapshot.RingState, n)
	}
	st.Rings = st.Rings[:n]
	for u := 0; u < n; u++ {
		d.hist.Unit(power.UnitID(u)).ExportState(&st.Rings[u])
	}

	st.HighFreq = resizeBools(st.HighFreq, n)
	st.Prio = resizeBools(st.Prio, n)
	d.priorityM.ExportState(st.HighFreq, st.Prio)
	st.PrevPrio = resizeBools(st.PrevPrio, n)
	copy(st.PrevPrio, d.prevPrio)
	if cap(st.Frozen) < n {
		st.Frozen = make([]priority.FrozenStats, n)
	}
	st.Frozen = st.Frozen[:n]
	if d.sparse {
		copy(st.Frozen, d.frozen)
	} else {
		clear(st.Frozen)
	}

	st.RNGSeed = d.cfg.Seed
	st.RNGDraws = d.statelessM.RNGDraws()

	if cap(st.Reasons) < n {
		st.Reasons = make([]uint8, n)
	}
	st.Reasons = st.Reasons[:n]
	for u := 0; u < n; u++ {
		st.Reasons[u] = uint8(d.reasons[u])
	}
	st.RoundBefore = appendVec(st.RoundBefore, d.roundBefore)

	st.HasSparse = d.sparse
	if d.sparse {
		st.LastDT = d.lastDT
		st.HighCount = d.highCount
		st.CachedSum = d.cachedSum
		st.SumValid = d.sumValid
		st.SettledW = appendU64s(st.SettledW, d.settledW)
		st.CapMovedW = appendU64s(st.CapMovedW, d.capMovedW)
		st.LastVal = appendVec(st.LastVal, d.lastVal)
		st.LastStep = appendU64s(st.LastStep, d.lastStep)
	}
}

func appendVec(dst power.Vector, src power.Vector) power.Vector {
	if cap(dst) < len(src) {
		dst = make(power.Vector, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func appendU64s(dst, src []uint64) []uint64 {
	if cap(dst) < len(src) {
		dst = make([]uint64, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

func resizeBools(dst []bool, n int) []bool {
	if cap(dst) < n {
		return make([]bool, n)
	}
	return dst[:n]
}

// RestoreState overwrites the controller's state from st. The snapshot
// must come from a controller with the same identity — unit count, seed,
// per-unit cap bounds, and history length — or an error is returned and
// the controller is left unchanged (identity checks run before any
// mutation). The budget total is live state and is adopted from the
// snapshot, not checked.
//
// After a successful restore of a same-mode snapshot, the controller's
// future decisions are bitwise identical to the exporting controller's;
// cross-mode restores are bitwise too, via the conservative
// revisit-everything reset described in the file comment.
func (d *DPS) RestoreState(st *snapshot.State) error {
	if !st.HasCore {
		return fmt.Errorf("core: snapshot carries no controller state")
	}
	if st.Units != d.cfg.Units {
		return fmt.Errorf("core: snapshot for %d units, controller has %d", st.Units, d.cfg.Units)
	}
	if st.Seed != d.cfg.Seed {
		return fmt.Errorf("core: snapshot seed %d, controller seeded %d", st.Seed, d.cfg.Seed)
	}
	if st.RingCap != d.cfg.HistoryLen {
		return fmt.Errorf("core: snapshot history length %d, controller has %d", st.RingCap, d.cfg.HistoryLen)
	}
	if st.UnitMax != d.cfg.Budget.UnitMax || st.UnitMin != d.cfg.Budget.UnitMin {
		return fmt.Errorf("core: snapshot unit bounds [%v,%v], controller has [%v,%v]",
			st.UnitMin, st.UnitMax, d.cfg.Budget.UnitMin, d.cfg.Budget.UnitMax)
	}
	b := d.cfg.Budget
	b.Total = st.BudgetTotal
	if err := b.Validate(d.cfg.Units); err != nil {
		return fmt.Errorf("core: snapshot budget: %w", err)
	}
	if len(st.Caps) != d.cfg.Units || len(st.Kalman) != d.cfg.Units ||
		len(st.Rings) != d.cfg.Units || len(st.Prio) != d.cfg.Units ||
		len(st.HighFreq) != d.cfg.Units || len(st.PrevPrio) != d.cfg.Units ||
		len(st.Reasons) != d.cfg.Units || len(st.RoundBefore) != d.cfg.Units {
		return fmt.Errorf("core: snapshot core sections incomplete for %d units", d.cfg.Units)
	}
	// Ring geometry is validated for every unit before any ring is
	// touched, so a malformed snapshot cannot leave the bank
	// half-restored.
	for u := 0; u < d.cfg.Units; u++ {
		if err := d.hist.Unit(power.UnitID(u)).CheckState(&st.Rings[u]); err != nil {
			return fmt.Errorf("core: unit %d: %w", u, err)
		}
	}
	if d.sparse && st.HasSparse {
		words := (d.cfg.Units + 63) / 64
		if len(st.SettledW) != words || len(st.CapMovedW) != words ||
			len(st.LastVal) != d.cfg.Units || len(st.LastStep) != d.cfg.Units ||
			len(st.Frozen) != d.cfg.Units {
			return fmt.Errorf("core: snapshot sparse section incomplete for %d units", d.cfg.Units)
		}
	}
	for u := 0; u < d.cfg.Units; u++ {
		if err := d.hist.Unit(power.UnitID(u)).ImportState(&st.Rings[u]); err != nil {
			panic(fmt.Sprintf("core: ring %d import failed after CheckState: %v", u, err))
		}
	}

	d.cfg.Budget = b
	d.constantCap = b.ConstantCap(d.cfg.Units)
	d.steps = st.Steps
	d.lastRestored = st.LastRestored
	d.provDirty = st.ProvDirty

	copy(d.caps, st.Caps)
	// Between rounds every cap-moving stage has re-synced the diff
	// baseline, so stageCaps == caps is an invariant of the quiescent
	// point the export was taken at.
	copy(d.stageCaps, d.caps)
	copy(d.roundBefore, st.RoundBefore)
	for u := range d.reasons {
		d.reasons[u] = trace.Reason(st.Reasons[u])
	}

	for u := 0; u < d.cfg.Units; u++ {
		d.filters.Unit(power.UnitID(u)).ImportState(st.Kalman[u])
	}
	if err := d.priorityM.ImportState(st.HighFreq, st.Prio); err != nil {
		panic(fmt.Sprintf("core: priority import failed after length checks: %v", err))
	}
	d.statelessM.RestoreRNG(st.RNGSeed, st.RNGDraws)

	if st.HeldAllocated && d.held == nil {
		// Preserve the exporting controller's allocation profile: it had
		// already paid for its degraded-round scratch, so the restored
		// one must not re-pay it inside a decision round.
		d.held = power.NewVector(d.cfg.Units, 0)
	}

	if d.sparse {
		if st.HasSparse {
			// Same-mode restore: adopt the sparse bookkeeping bitwise,
			// settle certificates included.
			d.lastDT = st.LastDT
			d.highCount = st.HighCount
			d.cachedSum = st.CachedSum
			d.sumValid = st.SumValid
			copy(d.settledW, st.SettledW)
			copy(d.capMovedW, st.CapMovedW)
			copy(d.lastVal, st.LastVal)
			copy(d.lastStep, st.LastStep)
			copy(d.frozen, st.Frozen)
			copy(d.prevPrio, st.PrevPrio)
		} else {
			// Dense snapshot into a sparse controller: no certificates
			// travel, so reset to revisit-everything. lastStep pins to
			// the restored round — the elided-push accounting subtracts
			// it from the current round and must never underflow.
			clear(d.settledW)
			d.setAllWords(d.capMovedW)
			clear(d.lastVal)
			for u := range d.lastStep {
				d.lastStep[u] = st.Steps
			}
			clear(d.frozen)
			d.lastDT = 0
			d.sumValid = false
			d.highCount = 0
			for _, p := range st.Prio {
				if p {
					d.highCount++
				}
			}
			copy(d.prevPrio, st.PrevPrio)
		}
		clear(d.dirtyW)
		clear(d.roundMovedW)
		d.anyMove = false
	} else {
		if st.HasSparse {
			// Sparse snapshot into a dense controller: the sparse path
			// never maintains prevPrio, so seed the dense flip counter
			// from the current priorities instead of the stale vector.
			copy(d.prevPrio, st.Prio)
		} else {
			copy(d.prevPrio, st.PrevPrio)
		}
	}
	return nil
}

// ExportedHighCount returns the number of high-priority units in st —
// the daemon's status plane wants it without re-deriving controller
// internals.
func ExportedHighCount(st *snapshot.State) int {
	n := 0
	for _, p := range st.Prio {
		if p {
			n++
		}
	}
	return n
}
