package core

import (
	"math/rand"
	"runtime"
	"testing"

	"dps/internal/power"
)

// mixedTrace builds a steps×units demand matrix exercising every decision
// path: high-frequency flippers (sticky flag set and cleared), slow
// ramps (derivative classification up and down), bursty mostly-idle
// units (idle reversion), steady draws pinned at their cap (at-cap
// priority), noisy units, and a global quiet window that fires Algorithm
// 3's restoration. Deterministic for a seed.
func mixedTrace(steps, units int, seed int64) [][]power.Watts {
	rng := rand.New(rand.NewSource(seed))
	demand := make([][]power.Watts, steps)
	for t := range demand {
		row := make([]power.Watts, units)
		for u := range row {
			var d float64
			switch u % 5 {
			case 0: // high-frequency flipper
				if (t/3+u)%2 == 0 {
					d = 150
				} else {
					d = 20
				}
			case 1: // triangular ramp, phase-shifted per unit
				phase := (t + 7*u) % 80
				if phase < 40 {
					d = 30 + float64(phase)*3.25
				} else {
					d = 160 - float64(phase-40)*3.25
				}
			case 2: // mostly idle with bursts
				if (t+u)%50 < 10 {
					d = 140
				} else {
					d = 8
				}
			case 3: // steady heavy draw (pins at cap)
				d = 160
			default: // noisy moderate draw
				d = 70
			}
			d += rng.NormFloat64() * 2
			// Global quiet window: everything close to idle, so restore
			// (Algorithm 3) fires and caps reset to the constant cap.
			if t >= 300 && t < 312 {
				d = 4 + rng.Float64()
			}
			if d < 0 {
				d = 0
			}
			row[u] = power.Watts(d)
		}
		demand[t] = row
	}
	return demand
}

// runTrace drives one controller closed-loop over the demand trace: each
// unit draws min(demand, cap), like a RAPL socket. It returns the cap
// vector after every step plus the per-step stats.
func runTrace(t *testing.T, d *DPS, demand [][]power.Watts) ([]power.Vector, []RoundStats) {
	t.Helper()
	units := len(demand[0])
	capsOut := make([]power.Vector, len(demand))
	statsOut := make([]RoundStats, len(demand))
	caps := d.Caps().Clone()
	drawn := make(power.Vector, units)
	for step, row := range demand {
		for u := range drawn {
			drawn[u] = row[u]
			if drawn[u] > caps[u] {
				drawn[u] = caps[u]
			}
		}
		next, st := d.DecideStats(Snapshot{Power: drawn, Interval: 1})
		capsOut[step] = next.Clone()
		statsOut[step] = st
		copy(caps, next)
	}
	return capsOut, statsOut
}

// TestShardedEquivalence is the determinism contract of the sharded
// pipeline: for a fixed seed, controllers with 2, 4 and 7 shards must
// produce bitwise-identical cap vectors and identical decision outcomes
// to the sequential controller on every step of a 600-step mixed trace.
func TestShardedEquivalence(t *testing.T) {
	const (
		units = 96
		steps = 600
	)
	// A tight envelope (55 W per unit against demands up to 160 W) forces
	// Algorithm 4's budget-exhausted equalize branch alongside grants.
	budget := power.Budget{Total: power.Watts(units) * 55, UnitMax: 165, UnitMin: 10}
	demand := mixedTrace(steps, units, 42)

	build := func(shards int) *DPS {
		cfg := DefaultConfig(units, budget)
		cfg.Seed = 7
		cfg.Shards = shards
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatalf("NewDPS(shards=%d): %v", shards, err)
		}
		return d
	}

	seq := build(1)
	defer seq.Close()
	wantCaps, wantStats := runTrace(t, seq, demand)

	// Sanity: the trace must exercise the interesting paths, or the
	// equivalence proof is vacuous.
	var restores, exhausted, flips, high int
	for _, st := range wantStats {
		if st.Restored {
			restores++
		}
		if st.BudgetExhausted {
			exhausted++
		}
		flips += st.PriorityFlips
		high += st.HighPriority
	}
	if restores == 0 || exhausted == 0 || flips == 0 || high == 0 {
		t.Fatalf("trace too tame: restores=%d exhausted=%d flips=%d high=%d", restores, exhausted, flips, high)
	}

	for _, shards := range []int{2, 4, 7} {
		d := build(shards)
		if got := d.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		gotCaps, gotStats := runTrace(t, d, demand)
		d.Close()
		for step := range wantCaps {
			for u := range wantCaps[step] {
				if gotCaps[step][u] != wantCaps[step][u] {
					t.Fatalf("shards=%d step=%d unit=%d: cap %v != sequential %v",
						shards, step, u, gotCaps[step][u], wantCaps[step][u])
				}
			}
			g, w := gotStats[step], wantStats[step]
			if g.HighPriority != w.HighPriority || g.PriorityFlips != w.PriorityFlips ||
				g.Restored != w.Restored || g.BudgetExhausted != w.BudgetExhausted ||
				g.BudgetClamped != w.BudgetClamped || g.Step != w.Step {
				t.Fatalf("shards=%d step=%d: stats %+v != sequential %+v", shards, step, g, w)
			}
		}
	}
}

// TestShardCountResolution pins the Config.Shards contract: 1 is
// sequential, explicit counts are honored (clamped to the unit count),
// and auto selection never splits below shardMinUnits units per shard.
func TestShardCountResolution(t *testing.T) {
	cases := []struct {
		units, shards, want int
	}{
		{units: 20, shards: 1, want: 1},
		{units: 20, shards: 7, want: 7},
		{units: 4, shards: 7, want: 4}, // clamped to units
		{units: 20, shards: 0, want: 1},
	}
	for _, c := range cases {
		cfg := Config{Units: c.units, Shards: c.shards}
		if got := cfg.shardCount(); got != c.want {
			t.Errorf("shardCount(units=%d, shards=%d) = %d, want %d", c.units, c.shards, got, c.want)
		}
	}
	// Auto mode at cluster scale uses up to GOMAXPROCS shards.
	cfg := Config{Units: shardMinUnits * 64}
	if got, max := cfg.shardCount(), runtime.GOMAXPROCS(0); got != max && got != 64 {
		t.Errorf("auto shardCount(units=%d) = %d, want min(GOMAXPROCS=%d, 64)", cfg.Units, got, max)
	}
}

// TestShardRangeCoversAllUnits checks the balanced partition is a true
// partition for awkward unit/shard combinations.
func TestShardRangeCoversAllUnits(t *testing.T) {
	for _, n := range []int{1, 7, 96, 1000} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			if p > n {
				continue
			}
			next := 0
			for s := 0; s < p; s++ {
				lo, hi := shardRange(s, p, n)
				if lo != next {
					t.Fatalf("n=%d p=%d shard %d starts at %d, want %d", n, p, s, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d p=%d shard %d empty range [%d,%d)", n, p, s, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d p=%d covers %d units", n, p, next)
			}
		}
	}
}

// TestDecideStatsStepAndShards checks the stats returned with each round
// carry the round counter and the shard count actually used.
func TestDecideStatsStepAndShards(t *testing.T) {
	budget := power.Budget{Total: 440, UnitMax: 165, UnitMin: 10}
	d, err := NewDPS(DefaultConfig(4, budget))
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{Power: power.Vector{100, 90, 40, 20}, Interval: 1}
	for i := 0; i < 5; i++ {
		_, st := d.DecideStats(snap)
		if st.Step != uint64(i+1) {
			t.Fatalf("round %d: Step = %d", i, st.Step)
		}
		if st.Shards != 1 {
			t.Fatalf("round %d: Shards = %d, want 1 for a 4-unit controller", i, st.Shards)
		}
	}
}

// TestCloseIdempotent: Close twice, then again after decisions, must not
// panic, and a sharded controller still decides before Close.
func TestCloseIdempotent(t *testing.T) {
	const units = 32
	budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
	cfg := DefaultConfig(units, budget)
	cfg.Shards = 4
	d, err := NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	readings := power.NewVector(units, 100)
	for i := 0; i < 3; i++ {
		d.Decide(Snapshot{Power: readings, Interval: 1})
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
