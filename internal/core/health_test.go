package core

import (
	"math"
	"testing"

	"dps/internal/power"
)

func healthTestConfig(units int) Config {
	cfg := DefaultConfig(units, power.Budget{
		Total:   power.Watts(units) * 110,
		UnitMax: 165,
		UnitMin: 10,
	})
	return cfg
}

// warmUp runs healthy rounds so the controller has real state (primed
// filters, populated history) before a test degrades it.
func warmUp(t *testing.T, d *DPS, readings power.Vector, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		d.Decide(Snapshot{Power: readings, Interval: 1})
	}
}

// TestHealthAllFreshMatchesNil pins that an all-fresh health slice takes
// the exact healthy code path: two identical controllers, one fed nil
// health and one fed explicit HealthFresh everywhere, stay bitwise
// identical.
func TestHealthAllFreshMatchesNil(t *testing.T) {
	const units = 6
	a, err := NewDPS(healthTestConfig(units))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDPS(healthTestConfig(units))
	if err != nil {
		t.Fatal(err)
	}
	health := make([]UnitHealth, units)
	readings := make(power.Vector, units)
	for step := 0; step < 50; step++ {
		for u := range readings {
			readings[u] = power.Watts(40 + 10*((step+u)%7))
		}
		capsA := a.Decide(Snapshot{Power: readings, Interval: 1})
		capsB := b.Decide(Snapshot{Power: readings, Interval: 1, Health: health})
		for u := range capsA {
			if capsA[u] != capsB[u] {
				t.Fatalf("step %d unit %d: nil-health cap %v != all-fresh cap %v", step, u, capsA[u], capsB[u])
			}
		}
	}
}

// TestHealthPinsNonFreshCaps verifies the freeze/reserve semantics: once a
// unit goes stale or dead its cap never moves, no matter what the fresh
// units' readings do, and the budget invariant holds every round.
func TestHealthPinsNonFreshCaps(t *testing.T) {
	const units = 5
	d, err := NewDPS(healthTestConfig(units))
	if err != nil {
		t.Fatal(err)
	}
	budget := d.Budget()
	readings := power.Vector{120, 30, 90, 140, 60}
	warmUp(t, d, readings, 10)

	pinnedStale := d.Caps()[1]
	pinnedDead := d.Caps()[3]
	health := []UnitHealth{HealthFresh, HealthStale, HealthFresh, HealthDead, HealthFresh}

	for step := 0; step < 40; step++ {
		// Fresh readings churn; the non-fresh units replay stale values.
		readings[0] = power.Watts(60 + 5*(step%9))
		readings[2] = power.Watts(150 - 3*(step%11))
		readings[4] = power.Watts(20 + 7*(step%13))
		caps, st := d.DecideStats(Snapshot{Power: readings, Interval: 1, Health: health})
		if caps[1] != pinnedStale {
			t.Fatalf("step %d: stale unit cap moved %v -> %v", step, pinnedStale, caps[1])
		}
		if caps[3] != pinnedDead {
			t.Fatalf("step %d: dead unit cap moved %v -> %v", step, pinnedDead, caps[3])
		}
		if !budget.Respected(caps, 1e-6) {
			t.Fatalf("step %d: degraded caps violate budget: sum=%v budget=%v", step, caps.Sum(), budget.Total)
		}
		if st.StaleUnits != 1 || st.DeadUnits != 1 {
			t.Fatalf("step %d: stats stale=%d dead=%d, want 1/1", step, st.StaleUnits, st.DeadUnits)
		}
		if st.BudgetClamped {
			t.Fatalf("step %d: masked rescale failed to absorb the degraded excess", step)
		}
	}
}

// TestDeadReservationBudgetProof is the budget-reservation argument as a
// test. A dead unit's agent keeps enforcing the last cap it was pushed.
// A health-blind controller keeps consuming the dead unit's frozen (low)
// reading, walks its book cap down, and re-grants the freed watts to the
// hungry fresh units — but those watts were never actually freed, so the
// sum of caps *physically enforced* in the cluster exceeds the budget.
// The health-aware controller reserves the dead unit's budget at its last
// delivered cap and never violates.
func TestDeadReservationBudgetProof(t *testing.T) {
	const units = 4
	const dead = 0
	naive, err := NewDPS(healthTestConfig(units))
	if err != nil {
		t.Fatal(err)
	}
	aware, err := NewDPS(healthTestConfig(units))
	if err != nil {
		t.Fatal(err)
	}
	budget := naive.Budget()

	// Before the failure: the soon-to-die unit idles at 20 W, the rest run
	// hot at their caps (always asking for more).
	readings := make(power.Vector, units)
	hot := func(caps power.Vector) {
		readings[dead] = 20
		for u := 1; u < units; u++ {
			readings[u] = caps[u]
		}
	}
	hot(naive.Caps())
	warmUp(t, naive, readings, 5)
	hot(aware.Caps())
	warmUp(t, aware, readings, 5)

	// The unit dies. Its agent keeps applying the last delivered cap.
	appliedDeadNaive := naive.Caps()[dead]
	appliedDeadAware := aware.Caps()[dead]
	health := make([]UnitHealth, units)
	health[dead] = HealthDead

	violated := false
	for step := 0; step < 60; step++ {
		// The dead unit's reading is frozen at its last report (20 W);
		// fresh units keep reporting at-cap consumption.
		hotN := naive.Caps().Clone()
		hotN[dead] = 20
		readings = hotN
		readings[dead] = 20
		capsNaive := naive.Decide(Snapshot{Power: readings, Interval: 1})

		// What the cluster physically enforces under the naive controller:
		// the fresh units' new caps plus the cap the dead node still holds.
		enforced := capsNaive.Sum() - capsNaive[dead] + appliedDeadNaive
		if enforced > budget.Total+1e-6 {
			violated = true
		}

		readingsAware := aware.Caps().Clone()
		readingsAware[dead] = 20
		capsAware, _ := aware.DecideStats(Snapshot{Power: readingsAware, Interval: 1, Health: health})
		if capsAware[dead] != appliedDeadAware {
			t.Fatalf("step %d: health-aware controller moved the dead unit's cap %v -> %v",
				step, appliedDeadAware, capsAware[dead])
		}
		enforcedAware := capsAware.Sum() // pinned cap == applied cap by construction
		if enforcedAware > budget.Total+1e-6 {
			t.Fatalf("step %d: health-aware enforced sum %v exceeds budget %v",
				step, enforcedAware, budget.Total)
		}
	}
	if !violated {
		t.Fatal("naive controller never over-committed the enforced budget; the reservation argument test lost its teeth")
	}
}

// TestHealthRecoveryRejoinsNextRound verifies full participation returns
// within one round of health going fresh again: the previously pinned cap
// becomes re-decidable immediately.
func TestHealthRecoveryRejoinsNextRound(t *testing.T) {
	const units = 3
	d, err := NewDPS(healthTestConfig(units))
	if err != nil {
		t.Fatal(err)
	}
	readings := power.Vector{130, 130, 130}
	warmUp(t, d, readings, 8)

	health := []UnitHealth{HealthFresh, HealthDead, HealthFresh}
	for step := 0; step < 10; step++ {
		d.DecideStats(Snapshot{Power: readings, Interval: 1, Health: health})
	}
	pinned := d.Caps()[1]

	// Recovery: the unit reports again, far below its pinned cap. The very
	// next round must move its cap (the stateless MIMD stage alone pulls a
	// cap toward a reading this far under it).
	health[1] = HealthFresh
	readings[1] = 15
	caps, st := d.DecideStats(Snapshot{Power: readings, Interval: 1, Health: health})
	if st.StaleUnits != 0 || st.DeadUnits != 0 {
		t.Fatalf("recovered round still reports stale=%d dead=%d", st.StaleUnits, st.DeadUnits)
	}
	if caps[1] == pinned {
		t.Fatalf("recovered unit still pinned at %v one round after going fresh", pinned)
	}
	if !d.Budget().Respected(caps, 1e-6) {
		t.Fatalf("post-recovery caps violate budget: %v", caps.Sum())
	}
}

// TestHealthShardedMatchesSequential extends the sharding equivalence
// contract to degraded rounds: the masked pipeline must stay bitwise
// identical at any shard count.
func TestHealthShardedMatchesSequential(t *testing.T) {
	const units = 64
	seqCfg := healthTestConfig(units)
	seqCfg.Shards = 1
	shCfg := healthTestConfig(units)
	shCfg.Shards = 4

	seq, err := NewDPS(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewDPS(shCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	health := make([]UnitHealth, units)
	readings := make(power.Vector, units)
	for step := 0; step < 120; step++ {
		for u := range readings {
			readings[u] = power.Watts(30 + (step*7+u*13)%120)
		}
		// A rolling pattern of stale and dead units, including transitions
		// back to fresh.
		for u := range health {
			switch (step / 10 * 31 / (u + 1)) % 5 {
			case 1:
				health[u] = HealthStale
			case 2:
				health[u] = HealthDead
			default:
				health[u] = HealthFresh
			}
		}
		capsSeq := seq.Decide(Snapshot{Power: readings, Interval: 1, Health: health})
		capsSh := sh.Decide(Snapshot{Power: readings, Interval: 1, Health: health})
		for u := range capsSeq {
			if math.Float64bits(float64(capsSeq[u])) != math.Float64bits(float64(capsSh[u])) {
				t.Fatalf("step %d unit %d: sequential %v != sharded %v", step, u, capsSeq[u], capsSh[u])
			}
		}
	}
}
