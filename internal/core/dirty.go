package core

import "math/bits"

// DirtyMask marks which units' readings changed since the previous
// snapshot. The daemon's ingest path marks a unit whenever an accepted
// report writes its reading slot; delta-suppressed gaps, heartbeats, and
// liveness touches refresh clocks only and leave the bit clear. A clear
// bit is therefore a guarantee: the unit's Power value in this snapshot
// is bitwise identical to the previous one. The sparse decision path
// leans on exactly that guarantee, so Mark must be called for every
// reading write, even when the new value happens to equal the old.
type DirtyMask struct {
	words []uint64
	n     int // unit count (bit capacity)
	count int // set bits
}

// NewDirtyMask returns a mask covering units [0, n).
func NewDirtyMask(n int) *DirtyMask {
	if n < 0 {
		n = 0
	}
	return &DirtyMask{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the unit count the mask covers.
func (m *DirtyMask) Len() int { return m.n }

// Count returns the number of marked units.
func (m *DirtyMask) Count() int { return m.count }

// Mark flags unit u as changed. Out-of-range units are ignored;
// re-marking is idempotent.
func (m *DirtyMask) Mark(u int) {
	if u < 0 || u >= m.n {
		return
	}
	w, b := u>>6, uint64(1)<<(u&63)
	if m.words[w]&b == 0 {
		m.words[w] |= b
		m.count++
	}
}

// Get reports whether unit u is marked.
func (m *DirtyMask) Get(u int) bool {
	if u < 0 || u >= m.n {
		return false
	}
	return m.words[u>>6]&(uint64(1)<<(u&63)) != 0
}

// Reset clears every bit.
func (m *DirtyMask) Reset() {
	clear(m.words)
	m.count = 0
}

// SetAll marks every unit. The daemon uses this for snapshots whose
// provenance it cannot vouch for (e.g. immediately after a restart),
// turning the sparse path conservative rather than wrong.
func (m *DirtyMask) SetAll() {
	for i := range m.words {
		m.words[i] = ^uint64(0)
	}
	if tail := uint(m.n & 63); tail != 0 && len(m.words) > 0 {
		m.words[len(m.words)-1] = (uint64(1) << tail) - 1
	}
	m.count = m.n
}

// CopyFrom makes m a copy of src. The masks must cover the same unit
// count; the daemon uses this to double-buffer the live mask into the
// snapshot the controller reads while ingest keeps marking the original.
func (m *DirtyMask) CopyFrom(src *DirtyMask) {
	copy(m.words, src.words)
	m.count = src.count
}

// Words exposes the underlying bit words, least-significant bit of
// words[0] being unit 0. The controller reads these directly; callers
// must not mutate the slice.
func (m *DirtyMask) Words() []uint64 { return m.words }

// popcount is Count recomputed from the words; used by tests to check
// the incremental counter.
func (m *DirtyMask) popcount() int {
	total := 0
	for _, w := range m.words {
		total += bits.OnesCount64(w)
	}
	return total
}
