package core

import (
	"fmt"
	"math/bits"

	"dps/internal/power"
)

// This file holds the sparse decision path's per-round machinery: the
// dirty-set intake, the masked Kalman/history stage, and the masked
// classification stage, plus the dense sharded stage bodies (which share
// the prebuilt-closure plumbing). The exactness contract — sparse caps
// bitwise identical to dense caps for any input sequence — is documented
// in DESIGN.md §13; the short version is that a unit is skipped only
// when skipping is provably a bitwise no-op:
//
//   - its reading is unchanged (dirty bit clear, backed by the daemon's
//     ingest marking or by direct comparison against lastVal),
//   - its Kalman filter is at a bitwise fixed point (kalman.StepSettled),
//   - its history ring is settled: full, uniform at exactly (est, dt),
//     and closed under Push's and recompute's float arithmetic
//     (history.Ring.SettledFor), and
//   - its classification inputs are unchanged (settled ring, unchanged
//     reading, cap untouched since its last classification) — cached as
//     priority.FrozenStats for the rounds where only the cap moved.
//
// Elided ring pushes are accounted via Ring.AdvancePushes so the
// periodic recompute fires on the same round as the dense path's.

// beginSparseRound loads the round's dirty set, maintains the settle
// bookkeeping that depends on round inputs (dt changes, non-fresh
// units), clears the round-mover scratch mask, and computes the forced
// refresh block.
func (d *DPS) beginSparseRound(snap Snapshot, dt power.Seconds, health []UnitHealth, stats *RoundStats) {
	units := d.cfg.Units
	// A settle certificate is specific to the interval it was issued
	// under (the ring must be uniform at exactly dt); a different
	// interval voids all of them.
	if dt != d.lastDT {
		clear(d.settledW)
		d.lastDT = dt
	}
	if snap.Dirty != nil {
		if snap.Dirty.Len() != units {
			panic(fmt.Sprintf("core: dirty mask for %d units, controller has %d", snap.Dirty.Len(), units))
		}
		copy(d.dirtyW, snap.Dirty.Words())
		stats.DirtyUnits = snap.Dirty.Count()
	} else {
		// No provenance for the snapshot: derive the changed set by
		// comparing against the last materialized values. O(N) compares,
		// but still cheaper than dense processing — and it keeps the
		// sparse path exact for callers (sim, tests) that never build a
		// mask.
		dirty := 0
		for wi := 0; wi < d.nWords; wi++ {
			base := wi << 6
			end := min(base+64, units)
			var w uint64
			for u := base; u < end; u++ {
				if snap.Power[u] != d.lastVal[u] {
					w |= uint64(1) << uint(u-base)
				}
			}
			d.dirtyW[wi] = w
			dirty += bits.OnesCount64(w)
		}
		stats.DirtyUnits = dirty
	}
	clear(d.roundMovedW)
	// The refresh block: round r forces block (r−1) mod E through full
	// dense processing, so every unit is re-verified against its live
	// ring at least once per E rounds.
	k := int((d.steps - 1) % uint64(d.refreshEvery))
	d.rRefreshLo, d.rRefreshHi = shardRange(k, d.refreshEvery, units)
	if health != nil {
		// Non-fresh units receive no push in either path, so their
		// elided-push accounting must not cover these rounds: pin
		// lastStep to now. A dirty non-fresh unit cannot happen through
		// the daemon (an accepted report makes a unit fresh in the same
		// snapshot), but if a caller hands us one, void its certificate
		// — clearing is always safe.
		for u, h := range health {
			if h != HealthFresh {
				d.lastStep[u] = d.steps
				wi, bit := u>>6, uint64(1)<<uint(u&63)
				if d.dirtyW[wi]&bit != 0 {
					d.settledW[wi] &^= bit
				}
			}
		}
	}
}

// wordMaskForRange returns the bits of word wi (covering units
// [wi*64, wi*64+64)) that fall inside the half-open unit range [lo, hi).
func wordMaskForRange(lo, hi, base int) uint64 {
	if hi <= base || lo >= base+64 {
		return 0
	}
	s := lo - base
	if s < 0 {
		s = 0
	}
	e := hi - base
	if e > 64 {
		e = 64
	}
	m := ^uint64(0) >> uint(64-(e-s))
	return m << uint(s)
}

// validWord returns the in-range unit bits of mask word wi.
func (d *DPS) validWord(wi int) uint64 {
	if wi == d.nWords-1 {
		return d.tailMask
	}
	return ^uint64(0)
}

// sparseKalmanWords runs the masked Kalman/history stage over mask words
// [wlo, whi): every dirty, unsettled, or refresh-due fresh unit gets the
// full dense treatment (filter step, ring push) plus settle detection;
// everything else is skipped under the bitwise no-op contract.
func (d *DPS) sparseKalmanWords(wlo, whi int, t *shardTally) {
	snapP, health, dt := d.rPower, d.rHealth, d.rDT
	rlo, rhi := d.rRefreshLo, d.rRefreshHi
	processed, dirtyCount := 0, 0
	for wi := wlo; wi < whi; wi++ {
		valid := d.validWord(wi)
		base := wi << 6
		dw := d.dirtyW[wi]
		dirtyCount += bits.OnesCount64(dw & valid)
		work := (dw | ^d.settledW[wi] | wordMaskForRange(rlo, rhi, base)) & valid
		for w := work; w != 0; w &= w - 1 {
			u := base + bits.TrailingZeros64(w)
			if health != nil && health[u] != HealthFresh {
				continue
			}
			bit := uint64(1) << uint(u&63)
			p := snapP[u]
			ring := d.hist.Unit(power.UnitID(u))
			wasSettled := d.settledW[wi]&bit != 0
			if wasSettled {
				// Catch up the recompute schedule for the pushes elided
				// while the unit was settled (each one a proven no-op).
				if elided := d.steps - 1 - d.lastStep[u]; elided > 0 {
					ring.AdvancePushes(int(elided))
				}
			}
			est := p
			fixed := true
			if !d.cfg.DisableKalman {
				est, fixed = d.filters.StepSettled(power.UnitID(u), p)
			}
			ring.Push(est, dt)
			d.lastStep[u] = d.steps
			processed++
			if p == d.lastVal[u] && fixed && ring.SettledFor(est, dt) {
				if !wasSettled {
					d.settledW[wi] |= bit
					d.frozen[u] = d.priorityM.Freeze(ring)
				}
				// Already settled: the ring is unchanged, so the frozen
				// stats are still exact.
			} else {
				d.settledW[wi] &^= bit
			}
			d.lastVal[u] = p
		}
	}
	t.processed, t.dirty = processed, dirtyCount
}

// sparseClassifyWords runs the masked classification stage over mask
// words [wlo, whi). A unit is reclassified when any input can have
// changed: dirty reading, unsettled ring, cap moved last round (by any
// stage) or this round (by the MIMD pass), or refresh-due. Settled
// off-refresh units classify from their FrozenStats without touching the
// ring; refresh-due units take the dense path as a self-audit. The tally
// records priority flips and the net high-count delta.
func (d *DPS) sparseClassifyWords(wlo, whi int, t *shardTally) {
	snapP, health := d.rPower, d.rHealth
	rlo, rhi := d.rRefreshLo, d.rRefreshHi
	prio := d.priorityM.Priorities()
	flips, highDelta := 0, 0
	for wi := wlo; wi < whi; wi++ {
		base := wi << 6
		refresh := wordMaskForRange(rlo, rhi, base)
		work := (d.dirtyW[wi] | ^d.settledW[wi] | d.capMovedW[wi] | d.roundMovedW[wi] | refresh) & d.validWord(wi)
		for w := work; w != 0; w &= w - 1 {
			u := base + bits.TrailingZeros64(w)
			if health != nil && health[u] != HealthFresh {
				continue
			}
			bit := uint64(1) << uint(u&63)
			before := prio[u]
			if d.settledW[wi]&bit != 0 && refresh&bit == 0 {
				d.priorityM.UpdateUnitFrozen(power.UnitID(u), d.frozen[u], snapP[u], d.caps[u], d.constantCap)
			} else {
				d.priorityM.UpdateUnit(power.UnitID(u), d.hist.Unit(power.UnitID(u)), snapP[u], d.caps[u], d.constantCap)
			}
			if after := prio[u]; after != before {
				flips++
				if after {
					highDelta++
				} else {
					highDelta--
				}
			}
		}
	}
	t.flips, t.high = flips, highDelta
}

// denseKalmanShard is the dense sharded Kalman/history stage body for
// one shard, reading its per-round inputs from the controller's r*
// fields (set by DecideStats before pool.run).
func (d *DPS) denseKalmanShard(s int) {
	snapP, health, dt := d.rPower, d.rHealth, d.rDT
	lo, hi := shardRange(s, d.shards, d.cfg.Units)
	for u := lo; u < hi; u++ {
		if health != nil && health[u] != HealthFresh {
			continue
		}
		est := snapP[u]
		if !d.cfg.DisableKalman {
			est = d.filters.Step(power.UnitID(u), est)
		}
		d.hist.Push(power.UnitID(u), est, dt)
	}
}

// denseClassifyShard is the dense sharded classification stage body for
// one shard: reclassify every fresh unit, tallying absolute high counts
// and flips against prevPrio into the shard's padded tally slot.
func (d *DPS) denseClassifyShard(s int) {
	snapP, health := d.rPower, d.rHealth
	prio := d.priorityM.Priorities()
	lo, hi := shardRange(s, d.shards, d.cfg.Units)
	high, flips := 0, 0
	for u := lo; u < hi; u++ {
		if health == nil || health[u] == HealthFresh {
			d.priorityM.UpdateUnit(power.UnitID(u), d.hist.Unit(power.UnitID(u)), snapP[u], d.caps[u], d.constantCap)
		}
		p := prio[u]
		if p {
			high++
		}
		if p != d.prevPrio[u] {
			flips++
		}
		d.prevPrio[u] = p
	}
	d.tallies[s].high, d.tallies[s].flips = high, flips
}
