package core

import (
	"strings"
	"testing"

	"dps/internal/power"
	"dps/internal/snapshot"
)

// loopState is the world-side state of a closed-loop delta-agent trace:
// the caps currently applied and the last values each agent reported.
// It survives a controller swap, exactly as real agents survive a
// failover — they keep reporting to whoever holds the caps.
type loopState struct {
	caps     power.Vector
	reported power.Vector
	mask     *DirtyMask
	eps      power.Watts
}

func newLoopState(d *DPS, eps power.Watts, useMask bool) *loopState {
	ls := &loopState{
		caps:     d.Caps().Clone(),
		reported: make(power.Vector, len(d.Caps())),
		eps:      eps,
	}
	if useMask {
		ls.mask = NewDirtyMask(len(d.Caps()))
	}
	return ls
}

// drive runs d closed-loop over demand rows [lo, hi), continuing the
// loop state from wherever it stands, and appends each round's caps and
// stats to the returned slices. health, when non-nil, supplies the
// per-round health vector.
func drive(t *testing.T, d *DPS, demand [][]power.Watts, lo, hi int, ls *loopState, health func(step int) []UnitHealth) ([]power.Vector, []RoundStats) {
	t.Helper()
	capsOut := make([]power.Vector, 0, hi-lo)
	statsOut := make([]RoundStats, 0, hi-lo)
	for step := lo; step < hi; step++ {
		row := demand[step]
		var hv []UnitHealth
		if health != nil {
			hv = health(step)
		}
		if ls.mask != nil {
			ls.mask.Reset()
		}
		for u := range ls.reported {
			drawn := row[u]
			if drawn > ls.caps[u] {
				drawn = ls.caps[u]
			}
			if hv != nil && hv[u] != HealthFresh {
				// A non-reporting agent's last value stays on the books.
				continue
			}
			diff := drawn - ls.reported[u]
			if diff < 0 {
				diff = -diff
			}
			if step == 0 || diff > ls.eps {
				ls.reported[u] = drawn
				if ls.mask != nil {
					ls.mask.Mark(u)
				}
			}
		}
		next, st := d.DecideStats(Snapshot{Power: ls.reported, Interval: 1, Dirty: ls.mask, Health: hv})
		capsOut = append(capsOut, next.Clone())
		statsOut = append(statsOut, st)
		copy(ls.caps, next)
	}
	return capsOut, statsOut
}

// snapshotThrough round-trips d's state through the wire format and
// restores it into into, failing the test on any step that errors. The
// byte round trip is deliberate: the equivalence proof must cover the
// serialized form, not just the in-memory State.
func snapshotThrough(t *testing.T, d, into *DPS) {
	t.Helper()
	var st snapshot.State
	d.ExportState(&st)
	img := snapshot.Encode(nil, &st)
	got, err := snapshot.Decode(img)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := into.RestoreState(got); err != nil {
		t.Fatalf("restore: %v", err)
	}
}

// TestRestoreEquivalence is the keystone high-availability gate: a
// controller restored from the snapshot taken after round R produces
// bitwise-identical caps and decision outcomes to the uninterrupted twin
// from round R+1 onward, over a 600-step closed-loop trace, across
// dense/sparse, sequential/sharded, masked/derived-dirty configurations
// — including a budget change before the snapshot point and a second
// one after the restore.
func TestRestoreEquivalence(t *testing.T) {
	const (
		units   = 96
		steps   = 600
		cutAt   = 250 // snapshot after this many rounds
		budget1 = power.Watts(units) * 55
		budget2 = power.Watts(units) * 48
		budget3 = power.Watts(units) * 60
	)
	bud := power.Budget{Total: budget1, UnitMax: 165, UnitMin: 10}
	demand := mixedTrace(steps, units, 42)

	build := func(sparse bool, refresh, shards int) *DPS {
		cfg := DefaultConfig(units, bud)
		cfg.Seed = 7
		cfg.Shards = shards
		cfg.SparseRounds = sparse
		cfg.SparseRefreshEvery = refresh
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatalf("NewDPS: %v", err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}

	cases := []struct {
		name    string
		sparse  bool
		refresh int
		shards  int
		eps     power.Watts
		useMask bool
	}{
		{name: "dense seq", sparse: false, shards: 1, eps: 0.5},
		{name: "sparse seq default band", sparse: true, refresh: 64, shards: 1, eps: 0.5},
		{name: "sparse seq masked", sparse: true, refresh: 64, shards: 1, eps: 0.5, useMask: true},
		{name: "sparse seq refresh every round", sparse: true, refresh: 1, shards: 1, eps: 0},
		{name: "sparse sharded", sparse: true, refresh: 64, shards: 4, eps: 0.5, useMask: true},
		{name: "dense sharded", sparse: false, shards: 4, eps: 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Twin A: uninterrupted, with budget changes at 150 and 400.
			a := build(tc.sparse, tc.refresh, tc.shards)
			lsA := newLoopState(a, tc.eps, tc.useMask)
			capsA1, statsA1 := drive(t, a, demand, 0, 150, lsA, nil)
			if err := a.SetTotalBudget(budget2); err != nil {
				t.Fatal(err)
			}
			capsA2, statsA2 := drive(t, a, demand, 150, 400, lsA, nil)
			if err := a.SetTotalBudget(budget3); err != nil {
				t.Fatal(err)
			}
			capsA3, statsA3 := drive(t, a, demand, 400, steps, lsA, nil)
			capsA := append(append(capsA1, capsA2...), capsA3...)
			statsA := append(append(statsA1, statsA2...), statsA3...)

			// Twin B: identical through round cutAt, then its state moves
			// through the wire format into a freshly built controller
			// that finishes the trace.
			b := build(tc.sparse, tc.refresh, tc.shards)
			lsB := newLoopState(b, tc.eps, tc.useMask)
			capsB1, statsB1 := drive(t, b, demand, 0, 150, lsB, nil)
			if err := b.SetTotalBudget(budget2); err != nil {
				t.Fatal(err)
			}
			capsB2, statsB2 := drive(t, b, demand, 150, cutAt, lsB, nil)

			c := build(tc.sparse, tc.refresh, tc.shards)
			snapshotThrough(t, b, c)
			if got, want := c.Steps(), uint64(cutAt); got != want {
				t.Fatalf("restored steps %d, want %d", got, want)
			}
			if got := c.Budget().Total; got != budget2 {
				t.Fatalf("restored budget %v, want %v", got, budget2)
			}
			capsB3, statsB3 := drive(t, c, demand, cutAt, 400, lsB, nil)
			if err := c.SetTotalBudget(budget3); err != nil {
				t.Fatal(err)
			}
			capsB4, statsB4 := drive(t, c, demand, 400, steps, lsB, nil)

			capsB := append(append(append(capsB1, capsB2...), capsB3...), capsB4...)
			statsB := append(append(append(statsB1, statsB2...), statsB3...), statsB4...)
			assertSameDecisions(t, tc.name, capsA, capsB, statsA, statsB)

			// Non-vacuity: the post-restore segment must exercise real
			// decision work.
			moved := false
			for s := cutAt + 1; s < steps && !moved; s++ {
				for u := range capsA[s] {
					if capsA[s][u] != capsA[s-1][u] {
						moved = true
						break
					}
				}
			}
			if !moved {
				t.Fatalf("%s: no cap moved after the restore point; test is vacuous", tc.name)
			}
		})
	}
}

// TestRestoreEquivalenceCrossMode checks the conservative cross-mode
// restores: a dense snapshot into a sparse controller and a sparse
// snapshot into a dense controller both continue the exporter's cap
// stream bitwise (the revisit-everything reset is a proven no-op, not a
// behavioral change).
func TestRestoreEquivalenceCrossMode(t *testing.T) {
	const (
		units = 96
		steps = 400
		cutAt = 150
	)
	bud := power.Budget{Total: power.Watts(units) * 55, UnitMax: 165, UnitMin: 10}
	demand := mixedTrace(steps, units, 42)
	build := func(sparse bool) *DPS {
		cfg := DefaultConfig(units, bud)
		cfg.Seed = 7
		cfg.SparseRounds = sparse
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatalf("NewDPS: %v", err)
		}
		return d
	}

	for _, tc := range []struct {
		name               string
		exporter, restorer bool // sparse flags
	}{
		{"dense snapshot into sparse controller", false, true},
		{"sparse snapshot into dense controller", true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The reference twin runs the *restorer's* mode throughout —
			// sparse and dense are bitwise equivalent, so it is also the
			// exporter's uninterrupted cap stream.
			a := build(tc.restorer)
			lsA := newLoopState(a, 0.5, false)
			capsA, statsA := drive(t, a, demand, 0, steps, lsA, nil)

			b := build(tc.exporter)
			lsB := newLoopState(b, 0.5, false)
			capsB1, statsB1 := drive(t, b, demand, 0, cutAt, lsB, nil)
			c := build(tc.restorer)
			snapshotThrough(t, b, c)
			capsB2, statsB2 := drive(t, c, demand, cutAt, steps, lsB, nil)

			capsB := append(capsB1, capsB2...)
			statsB := append(statsB1, statsB2...)
			assertSameDecisions(t, tc.name, capsA, capsB, statsA, statsB)
		})
	}
}

// TestRestoreEquivalenceDegraded runs the trace with a health schedule
// straddling the snapshot point: units go stale/dead before the cut and
// recover after it, so the restored controller inherits health-pinned
// caps and must keep them pinned bitwise.
func TestRestoreEquivalenceDegraded(t *testing.T) {
	const (
		units = 64
		steps = 300
		cutAt = 140
	)
	bud := power.Budget{Total: power.Watts(units) * 55, UnitMax: 165, UnitMin: 10}
	demand := mixedTrace(steps, units, 17)
	health := func(step int) []UnitHealth {
		if step < 100 || step >= 220 {
			return nil
		}
		hv := make([]UnitHealth, units)
		hv[3] = HealthStale
		hv[11] = HealthDead
		if step >= 160 {
			hv[20] = HealthStale
		}
		return hv
	}
	build := func() *DPS {
		cfg := DefaultConfig(units, bud)
		cfg.Seed = 7
		cfg.SparseRounds = true
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatalf("NewDPS: %v", err)
		}
		return d
	}

	a := build()
	lsA := newLoopState(a, 0.5, true)
	capsA, statsA := drive(t, a, demand, 0, steps, lsA, health)

	b := build()
	lsB := newLoopState(b, 0.5, true)
	capsB1, statsB1 := drive(t, b, demand, 0, cutAt, lsB, health)
	c := build()
	snapshotThrough(t, b, c)
	capsB2, statsB2 := drive(t, c, demand, cutAt, steps, lsB, health)
	assertSameDecisions(t, "degraded", capsA, append(capsB1, capsB2...), statsA, append(statsB1, statsB2...))

	// Non-vacuity: the schedule must actually have pinned units at the
	// cut (their caps held constant through it).
	if statsA[cutAt].StaleUnits == 0 || statsA[cutAt].DeadUnits == 0 {
		t.Fatalf("health schedule not active at the snapshot point")
	}
}

// TestExportStateWarmNoAlloc is the hot-path gate for the snapshot loop:
// exporting into a retained State and re-encoding into a retained buffer
// allocates nothing once warm, so a primary can assemble its replication
// image every round without disturbing the decide loop's 0-alloc
// contract.
func TestExportStateWarmNoAlloc(t *testing.T) {
	const units = 512
	bud := power.Budget{Total: power.Watts(units) * 55, UnitMax: 165, UnitMin: 10}
	cfg := DefaultConfig(units, bud)
	cfg.SparseRounds = true
	d, err := NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	demand := mixedTrace(40, units, 3)
	ls := newLoopState(d, 0.5, true)
	drive(t, d, demand, 0, 40, ls, nil)

	var st snapshot.State
	d.ExportState(&st)
	buf := snapshot.Encode(nil, &st)
	allocs := testing.AllocsPerRun(20, func() {
		d.ExportState(&st)
		buf = snapshot.Encode(buf, &st)
	})
	if allocs != 0 {
		t.Fatalf("warm export+encode allocates %v times", allocs)
	}
}

// TestRestoreStateRejects exercises every identity check: a snapshot
// from a different controller shape must be refused without mutating the
// restorer.
func TestRestoreStateRejects(t *testing.T) {
	const units = 32
	bud := power.Budget{Total: power.Watts(units) * 55, UnitMax: 165, UnitMin: 10}
	newC := func(mut func(*Config)) *DPS {
		cfg := DefaultConfig(units, bud)
		cfg.Seed = 7
		cfg.SparseRounds = true
		if mut != nil {
			mut(&cfg)
		}
		d, err := NewDPS(cfg)
		if err != nil {
			t.Fatalf("NewDPS: %v", err)
		}
		return d
	}

	src := newC(nil)
	demand := mixedTrace(30, units, 5)
	ls := newLoopState(src, 0.5, false)
	drive(t, src, demand, 0, 30, ls, nil)
	var good snapshot.State
	src.ExportState(&good)

	cases := []struct {
		name string
		dst  *DPS
		mut  func(*snapshot.State)
		want string
	}{
		{"no core", newC(nil), func(s *snapshot.State) { s.HasCore = false }, "no controller state"},
		{"unit mismatch", newC(nil), func(s *snapshot.State) { s.Units = units + 1 }, "units"},
		{"seed mismatch", newC(func(c *Config) { c.Seed = 8 }), nil, "seed"},
		{"history mismatch", newC(func(c *Config) { c.HistoryLen = 10 }), nil, "history length"},
		{"bounds mismatch", newC(func(c *Config) { c.Budget.UnitMax = 170 }), nil, "bounds"},
		{"bad budget", newC(nil), func(s *snapshot.State) { s.BudgetTotal = -1 }, "budget"},
		{"bad ring geometry", newC(nil), func(s *snapshot.State) { s.Rings[5].Head = 99 }, "unit 5"},
		{"short section", newC(nil), func(s *snapshot.State) { s.Caps = s.Caps[:units-1] }, "incomplete"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := good // shallow copy; muts that touch slices clone first
			if tc.mut != nil {
				if tc.name == "bad ring geometry" {
					rings := append([]snapshot.RingState(nil), good.Rings...)
					st.Rings = rings
				}
				tc.mut(&st)
			}
			before := tc.dst.Caps().Clone()
			err := tc.dst.RestoreState(&st)
			if err == nil {
				t.Fatalf("restore accepted a %s snapshot", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			for u, c := range tc.dst.Caps() {
				if c != before[u] {
					t.Fatalf("rejected restore mutated caps[%d]", u)
				}
			}
			if tc.dst.Steps() != 0 {
				t.Fatalf("rejected restore advanced steps to %d", tc.dst.Steps())
			}
		})
	}

	// And the happy path on a fresh twin still works after all that.
	ok := newC(nil)
	if err := ok.RestoreState(&good); err != nil {
		t.Fatalf("valid restore failed: %v", err)
	}
	if ok.Steps() != 30 {
		t.Fatalf("restored steps %d, want 30", ok.Steps())
	}
}
