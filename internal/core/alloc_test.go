package core

import (
	"math/rand"
	"testing"

	"dps/internal/power"
)

// TestDecideStatsSteadyStateZeroAlloc is the allocation-regression gate
// for the decision hot path: once the history rings are warm, a
// sequential DecideStats round must not allocate at all — every statistic
// the priority stage reads is incremental ring state, the peak scan runs
// over ring storage in place, and every module reuses its own buffers.
// A failure here means a copy or scratch buffer crept back into the
// per-round path.
func TestDecideStatsSteadyStateZeroAlloc(t *testing.T) {
	const units = 512
	budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
	cfg := DefaultConfig(units, budget)
	cfg.Shards = 1 // the sequential path; the sharded path's fork/join is measured separately
	d, err := NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	readings := make(power.Vector, units)
	for i := range readings {
		readings[i] = power.Watts(40 + rng.Float64()*120)
	}
	snap := Snapshot{Power: readings, Interval: 1}
	// Warm up past every cold-start growth path (history fill, priority
	// MinSamples) with perturbed readings so all decision branches run.
	for i := 0; i < 30; i++ {
		readings[i%units] += power.Watts(rng.NormFloat64() * 2)
		d.Decide(snap)
	}
	allocs := testing.AllocsPerRun(100, func() {
		readings[0] += 0.01
		d.DecideStats(snap)
	})
	if allocs != 0 {
		t.Errorf("steady-state DecideStats allocated %.1f times per round, want 0", allocs)
	}
}

// warmAllocController builds a controller with the given shard and
// sparse settings and warms it past every cold-start growth path.
func warmAllocController(t *testing.T, shards int, sparse bool) (*DPS, power.Vector) {
	t.Helper()
	const units = 512
	budget := power.Budget{Total: power.Watts(units) * 110, UnitMax: 165, UnitMin: 10}
	cfg := DefaultConfig(units, budget)
	cfg.Shards = shards
	cfg.SparseRounds = sparse
	d, err := NewDPS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	readings := make(power.Vector, units)
	for i := range readings {
		readings[i] = power.Watts(40 + rng.Float64()*120)
	}
	snap := Snapshot{Power: readings, Interval: 1}
	for i := 0; i < 30; i++ {
		readings[i%units] += power.Watts(rng.NormFloat64() * 2)
		d.Decide(snap)
	}
	return d, readings
}

// TestDecideShardedSteadyStateZeroAlloc extends the allocation gate to
// the parallel path: the fork/join itself must be allocation-free — the
// task structs are all scalars, the WaitGroup lives in the pool, and the
// stage closures are prebuilt at construction.
func TestDecideShardedSteadyStateZeroAlloc(t *testing.T) {
	d, readings := warmAllocController(t, 4, false)
	defer d.Close()
	snap := Snapshot{Power: readings, Interval: 1}
	allocs := testing.AllocsPerRun(100, func() {
		readings[0] += 0.01
		d.DecideStats(snap)
	})
	if allocs != 0 {
		t.Errorf("sharded steady-state DecideStats allocated %.1f times per round, want 0", allocs)
	}
}

// TestDecideSparseSteadyStateZeroAlloc covers the sparse path's warm
// round, with and without an ingest dirty mask: the masked stages, the
// settle bookkeeping, and the lazy provenance baseline must all run out
// of preallocated state.
func TestDecideSparseSteadyStateZeroAlloc(t *testing.T) {
	d, readings := warmAllocController(t, 1, true)
	defer d.Close()
	mask := NewDirtyMask(len(readings))
	snap := Snapshot{Power: readings, Interval: 1, Dirty: mask}
	allocs := testing.AllocsPerRun(100, func() {
		mask.Reset()
		readings[0] += 0.01
		mask.Mark(0)
		d.DecideStats(snap)
	})
	if allocs != 0 {
		t.Errorf("sparse steady-state DecideStats allocated %.1f times per round, want 0", allocs)
	}
	snap.Dirty = nil // compare-fallback path
	allocs = testing.AllocsPerRun(100, func() {
		readings[0] += 0.01
		d.DecideStats(snap)
	})
	if allocs != 0 {
		t.Errorf("sparse maskless DecideStats allocated %.1f times per round, want 0", allocs)
	}
}

// TestDecideSparseShardedSteadyStateZeroAlloc combines both axes.
func TestDecideSparseShardedSteadyStateZeroAlloc(t *testing.T) {
	d, readings := warmAllocController(t, 4, true)
	defer d.Close()
	mask := NewDirtyMask(len(readings))
	snap := Snapshot{Power: readings, Interval: 1, Dirty: mask}
	allocs := testing.AllocsPerRun(100, func() {
		mask.Reset()
		readings[0] += 0.01
		mask.Mark(0)
		d.DecideStats(snap)
	})
	if allocs != 0 {
		t.Errorf("sparse sharded DecideStats allocated %.1f times per round, want 0", allocs)
	}
}
